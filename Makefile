# Tier-1 verification and hot-path bench harness.

GO ?= go
OBS_PORT ?= 8080
ADDR ?= 127.0.0.1:8263
WAL ?= /tmp/cinderella.wal

.PHONY: verify build vet test race bench-hotpath bench-obs bench-server bench-shard bench-read bench-wire bench-scan bench-trace bench-recluster bench-tier run-server obs-demo

# verify is the tier-1 gate: build everything, vet, full test suite under
# the race detector.
verify:
	./scripts/verify.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-hotpath regenerates the hot-path baseline the repo tracks in
# BENCH_hotpath.json (see cmd/cinderella-bench -exp hotpath).
bench-hotpath:
	$(GO) run ./cmd/cinderella-bench -exp hotpath -entities 50000 -json BENCH_hotpath.json

# bench-obs measures the telemetry layer's overhead (instrumented vs.
# uninstrumented load + query replay) and regenerates BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/cinderella-bench -exp obs -entities 50000 -json BENCH_obs.json

# bench-server measures the group-commit win of the service layer —
# durable-insert throughput of 64 concurrent clients with per-op fsync
# vs. the batching committer — and regenerates BENCH_server.json (see
# cmd/cinderella-bench -exp server). The tracked result must show
# group_speedup >= 3.
bench-server:
	$(GO) run ./cmd/cinderella-bench -exp server -json BENCH_server.json

# bench-shard measures write-path scaling across 1/2/4/8 hash-routed
# shards (aggregate insert throughput, EFFICIENCY under fan-out, and the
# drain-loses-nothing recount) and regenerates BENCH_shard.json (see
# cmd/cinderella-bench -exp shard). The tracked result must show
# speedup_8x >= 3 with efficiency_delta_8x_vs_1 <= 0.10.
bench-shard:
	$(GO) run ./cmd/cinderella-bench -exp shard -entities 200000 -json BENCH_shard.json

# bench-read measures the lock-free snapshot read path — writer p99
# latency under a continuous 8-reader full-scan load, snapshot mode vs.
# the RWMutex baseline, plus the sidecar's decode-avoided fraction — and
# regenerates BENCH_read.json (see cmd/cinderella-bench -exp read). The
# tracked result must show writer_p99_improvement >= 5 with
# selective_decode_avoided_fraction >= 0.80.
bench-read:
	$(GO) run ./cmd/cinderella-bench -exp read -entities 50000 -json BENCH_read.json

# bench-wire exercises the binary wire protocol: the steady-state
# zero-allocation decode microbenchmark, then the end-to-end server
# comparison (which re-records BENCH_server.json, now including the
# binary batched-write numbers). The tracked result must show
# wire_vs_http_group >= 3 at 64 clients.
bench-wire:
	$(GO) test -run - -bench BenchmarkWireDecode -benchmem ./internal/wire
	$(GO) run ./cmd/cinderella-bench -exp server -json BENCH_server.json

# bench-scan measures the word-parallel bitmap scan kernel against the
# per-record sidecar baseline — selective query throughput on the
# coarse-partitioned Fig. 5 arm, the bitmap-vs-sidecar equivalence
# sweep, and the frozen-partition zero-cold-byte prune probe — and
# regenerates BENCH_scan.json (see cmd/cinderella-bench -exp scan). The
# tracked result must show within_budget=true (speedup >= 3x) with
# equivalence_ok=true and prune_zero_cold_ok=true.
bench-scan:
	$(GO) run ./cmd/cinderella-bench -exp scan -entities 100000 -json BENCH_scan.json

# bench-trace measures the query-tracing subsystem's overhead — 1-in-64
# span sampling plus the always-on partition heat map, against a
# trace-disabled registry — and regenerates BENCH_trace.json (see
# cmd/cinderella-bench -exp trace). The tracked result must show
# within_budget=true (<= 5% query-path overhead, with 50 µs/query of
# absolute headroom against timer noise).
bench-trace:
	$(GO) run ./cmd/cinderella-bench -exp trace -entities 50000 -json BENCH_trace.json

# bench-recluster measures the background reclusterer: EFFICIENCY
# recovery after an adversarial workload shift (adapted → frozen →
# reclustered), writer p99 with the governed reclusterer running vs.
# idle, and the reopen integrity recount — and regenerates
# BENCH_recluster.json (see cmd/cinderella-bench -exp recluster). The
# tracked result must show recovered_ok=true (>= 50% of the lost
# EFFICIENCY recovered) with writer_p99_within_budget=true.
bench-recluster:
	$(GO) run ./cmd/cinderella-bench -exp recluster -entities 20000 -json BENCH_recluster.json

# bench-tier measures heat-driven tiered storage under a Zipf-skewed
# read mix: the tiering manager must get the resident footprint under
# half the working set, the frozen partitions must compress below 0.6,
# hot-set p99 must stay within 10% of the untiered baseline, queries
# pruning the cold tier must charge zero cold bytes, and a reopen must
# recount exactly with the frozen set restored — and regenerates
# BENCH_tier.json (see cmd/cinderella-bench -exp tier).
bench-tier:
	$(GO) run ./cmd/cinderella-bench -exp tier -entities 20000 -json BENCH_tier.json

# run-server starts cinderellad in the foreground on $(ADDR) with the
# WAL at $(WAL). Drive it with `cinderella-load -target http://$(ADDR)`
# or the client package; SIGTERM (ctrl-C) drains gracefully.
run-server:
	$(GO) run ./cmd/cinderellad -addr $(ADDR) -wal $(WAL)

# obs-demo loads synthetic data with the ops endpoint live, curls
# /metrics, and exits — the README "Operations" walkthrough.
obs-demo:
	$(GO) build -o /tmp/cinderella-load ./cmd/cinderella-load
	/tmp/cinderella-load -entities 20000 -obs :$(OBS_PORT) -hold & \
	pid=$$!; \
	sleep 8; \
	curl -s localhost:$(OBS_PORT)/metrics | head -40; \
	kill $$pid
