# Tier-1 verification and hot-path bench harness.

GO ?= go

.PHONY: verify build vet test race bench-hotpath

# verify is the tier-1 gate: build everything, vet, full test suite under
# the race detector.
verify:
	./scripts/verify.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-hotpath regenerates the hot-path baseline the repo tracks in
# BENCH_hotpath.json (see cmd/cinderella-bench -exp hotpath).
bench-hotpath:
	$(GO) run ./cmd/cinderella-bench -exp hotpath -entities 50000 -json BENCH_hotpath.json
