// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablation benchmarks for the design choices called out
// in DESIGN.md. Custom metrics carry the experiment's shape numbers
// (partitions, splits, speedups) alongside wall time:
//
//	go test -bench=. -benchmem
//
// The benchmarks run at a reduced scale (the full paper scale is driven
// by cmd/cinderella-bench); the shapes are scale-invariant.
package cinderella_test

import (
	"math/rand"
	"testing"

	"cinderella"
	"cinderella/internal/core"
	"cinderella/internal/datagen"
	"cinderella/internal/experiments"
)

// benchOpts is the reduced scale used by the benchmark harness.
func benchOpts() experiments.Options {
	return experiments.Options{Entities: 10000, Seed: 1, TPCHSF: 0.002}
}

// BenchmarkFig4Distribution regenerates Figure 4 (attribute distribution
// of the irregular data set).
func BenchmarkFig4Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(benchOpts())
		b.ReportMetric(r.Sparseness, "sparseness")
		b.ReportMetric(r.Freq[0], "top-attr-freq")
	}
}

// BenchmarkFig5QueryTimeVsB regenerates Figure 5 (query time vs.
// selectivity for B ∈ {500, 5000, 50000} against the universal table).
func BenchmarkFig5QueryTimeVsB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(benchOpts())
		b.ReportMetric(r.MeanSpeedupBelow("B=500", 0.2), "speedup-B500-sel<0.2")
		b.ReportMetric(float64(r.Series[1].Partitions), "partitions-B500")
	}
}

// BenchmarkFig6QueryTimeVsW regenerates Figure 6 (query time vs.
// selectivity for w ∈ {0.2, 0.5, 0.8}).
func BenchmarkFig6QueryTimeVsW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(benchOpts())
		b.ReportMetric(r.MeanSpeedupBelow("w=0.2", 0.2), "speedup-w0.2-sel<0.2")
	}
}

// BenchmarkFig7WeightInfluence regenerates Figure 7 (weight sweep:
// partition count, fill, attributes, sparseness).
func BenchmarkFig7WeightInfluence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(benchOpts())
		b.ReportMetric(float64(r.Rows[0].Partitions), "partitions-w0")
		b.ReportMetric(float64(r.Rows[5].Partitions), "partitions-w0.5")
		b.ReportMetric(r.Rows[5].SparsenessP.Median, "sparseness-w0.5")
	}
}

// BenchmarkFig8InsertTime regenerates Figure 8 (insert latency
// distribution and split counts per B).
func BenchmarkFig8InsertTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchOpts())
		b.ReportMetric(float64(r.Rows[0].Splits), "splits-B500")
		b.ReportMetric(float64(r.Rows[1].Splits), "splits-B5000")
		b.ReportMetric(float64(r.Rows[2].Splits), "splits-B50000")
	}
}

// BenchmarkTableITPCH regenerates Table I (22 TPC-H queries: regular
// tables vs. Cinderella views at B ∈ {500, 2000, 10000}).
func BenchmarkTableITPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableI(benchOpts())
		b.ReportMetric(r.Rows[1].Percent, "pct-B500")
		b.ReportMetric(r.Rows[2].Percent, "pct-B2000")
		b.ReportMetric(r.Rows[3].Percent, "pct-B10000")
		pure := 1.0
		for _, row := range r.Rows[1:] {
			if !row.PureSchema {
				pure = 0
			}
		}
		b.ReportMetric(pure, "schema-pure")
	}
}

// BenchmarkEfficiencyMetric computes Definition 1 across strategies.
func BenchmarkEfficiencyMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Efficiency(benchOpts())
		b.ReportMetric(r.Get("universal"), "eff-universal")
		b.ReportMetric(r.Get("cinderella w=0.2"), "eff-cinderella")
	}
}

// --- ablation benchmarks (DESIGN.md section 5) ---

// loadSynthetic inserts n irregular entities into a core partitioner and
// returns the partition count.
func loadSynthetic(b *testing.B, cfg core.Config, n int) int {
	b.Helper()
	ds, err := datagen.Generate(datagen.Config{NumEntities: n, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	c := core.NewCinderella(cfg)
	for i, e := range ds.Entities {
		c.Insert(core.Entity{ID: core.EntityID(i + 1), Syn: e.Synopsis(), Size: e.Size()})
	}
	return c.NumPartitions()
}

// BenchmarkAblationNormalization compares the global rating (normalized)
// against raw local ratings.
func BenchmarkAblationNormalization(b *testing.B) {
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"normalized", core.Config{Weight: 0.3, MaxSize: 500}},
		{"raw-local", core.Config{Weight: 0.3, MaxSize: 500, DisableNormalization: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parts := loadSynthetic(b, cfg.c, 5000)
				b.ReportMetric(float64(parts), "partitions")
			}
		})
	}
}

// BenchmarkAblationSplitStarters compares the paper's incremental starter
// heuristic with the exact quadratic pair and a random pair.
func BenchmarkAblationSplitStarters(b *testing.B) {
	for _, pol := range []struct {
		name string
		p    core.StarterPolicy
	}{
		{"incremental", core.StarterIncremental},
		{"exact", core.StarterExact},
		{"random", core.StarterRandom},
	} {
		b.Run(pol.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parts := loadSynthetic(b, core.Config{
					Weight: 0.3, MaxSize: 200, StarterPolicy: pol.p, RandSeed: 9,
				}, 5000)
				b.ReportMetric(float64(parts), "partitions")
			}
		})
	}
}

// BenchmarkAblationCatalogIndex compares the linear catalog scan against
// the inverted attribute index for candidate lookup.
func BenchmarkAblationCatalogIndex(b *testing.B) {
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"linear-scan", core.Config{Weight: 0.2, MaxSize: 200}},
		{"attr-index", core.Config{Weight: 0.2, MaxSize: 200, UseCatalogIndex: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loadSynthetic(b, cfg.c, 10000)
			}
		})
	}
}

// BenchmarkAblationWorkloadBased compares entity-based against
// workload-based partitioning on query read volume.
func BenchmarkAblationWorkloadBased(b *testing.B) {
	probe := [][]string{{"team"}, {"party"}, {"genre"}}
	mkDocs := func() []cinderella.Doc {
		rng := rand.New(rand.NewSource(5))
		attrs := [][]string{
			{"team", "position", "league"},
			{"party", "office", "term"},
			{"genre", "instrument", "label"},
		}
		docs := make([]cinderella.Doc, 0, 6000)
		for i := 0; i < 6000; i++ {
			set := attrs[rng.Intn(len(attrs))]
			d := cinderella.Doc{"name": i}
			for _, a := range set {
				if rng.Float64() < 0.8 {
					d[a] = rng.Intn(100)
				}
			}
			docs = append(docs, d)
		}
		return docs
	}
	run := func(b *testing.B, cfg cinderella.Config) {
		docs := mkDocs()
		for i := 0; i < b.N; i++ {
			tbl := cinderella.Open(cfg)
			for _, d := range docs {
				tbl.Insert(d)
			}
			tbl.ResetIOStats()
			for _, q := range probe {
				tbl.Query(q...)
			}
			_, _, br, _ := tbl.IOStats()
			b.ReportMetric(float64(br)/1024, "KB-read")
			b.ReportMetric(float64(len(tbl.Partitions())), "partitions")
		}
	}
	b.Run("entity-based", func(b *testing.B) {
		run(b, cinderella.Config{Weight: 0.3, PartitionSizeLimit: 1000})
	})
	b.Run("workload-based", func(b *testing.B) {
		run(b, cinderella.Config{Weight: 0.3, PartitionSizeLimit: 1000, WorkloadQueries: probe})
	})
}

// BenchmarkInsertThroughput measures sustained insert rate through the
// public API at the paper's default settings.
func BenchmarkInsertThroughput(b *testing.B) {
	ds, err := datagen.Generate(datagen.Config{NumEntities: 4096, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	tbl := cinderella.Open(cinderella.Config{Weight: 0.5, PartitionSizeLimit: 5000})
	docs := make([]cinderella.Doc, len(ds.Entities))
	names := ds.Dict.Names()
	for i, e := range ds.Entities {
		d := cinderella.Doc{}
		for _, f := range e.Fields() {
			d[names[f.Attr]] = f.Value.String()
		}
		docs[i] = d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(docs[i%len(docs)])
	}
}

// BenchmarkSelectiveQuery measures a rare-attribute query through the
// public API against a loaded table.
func BenchmarkSelectiveQuery(b *testing.B) {
	ds, err := datagen.Generate(datagen.Config{NumEntities: 20000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	tbl := cinderella.Open(cinderella.Config{Weight: 0.2, PartitionSizeLimit: 500})
	names := ds.Dict.Names()
	for _, e := range ds.Entities {
		d := cinderella.Doc{}
		for _, f := range e.Fields() {
			d[names[f.Attr]] = f.Value.String()
		}
		tbl.Insert(d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Query("rare_42")
	}
}

// BenchmarkCacheLocality regenerates the buffer-cache locality
// comparison (paper future work "caching").
func BenchmarkCacheLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.CacheLocality(benchOpts())
		b.ReportMetric(r.Get("universal"), "hit-universal")
		b.ReportMetric(r.Get("cinderella w=0.2"), "hit-cinderella")
	}
}

// BenchmarkChurn regenerates the modification-churn trajectory
// (Definition 2's full operation mix, with and without compaction).
func BenchmarkChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Churn(benchOpts())
		if p, ok := r.Final("cinderella"); ok {
			b.ReportMetric(p.Efficiency, "eff-plain")
			b.ReportMetric(float64(p.Partitions), "parts-plain")
		}
		if p, ok := r.Final("cinderella+compact"); ok {
			b.ReportMetric(p.Efficiency, "eff-compact")
			b.ReportMetric(float64(p.Partitions), "parts-compact")
		}
	}
}
