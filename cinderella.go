// Package cinderella is an embedded universal-table store with adaptive
// online horizontal partitioning, reproducing
//
//	K. Herrmann, H. Voigt, W. Lehner:
//	"Cinderella — Adaptive Online Partitioning of Irregularly Structured
//	Data", ICDE Workshops 2014.
//
// A Table stores schema-flexible records (string→value documents). While
// records are inserted, updated, and deleted, the Cinderella algorithm
// incrementally groups records with similar attribute sets into bounded
// partitions and maintains a per-partition attribute synopsis. Queries
// that touch only a subset of attributes prune all partitions whose
// synopsis is disjoint from the query, which makes selective queries on
// sparse, irregular data dramatically cheaper than scanning the whole
// universal table.
//
// The minimal workflow:
//
//	tbl := cinderella.Open(cinderella.Config{})
//	id := tbl.Insert(cinderella.Doc{"name": "Canon S120", "aperture": 2.0})
//	hits := tbl.Query("aperture")
//
// See the examples/ directory for complete programs and DESIGN.md for the
// mapping between this library and the paper.
package cinderella

import (
	"fmt"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
)

// ID identifies a record in a Table.
type ID = core.EntityID

// Doc is a schema-flexible record: attribute name → value. Supported
// value types are int, int64, float64, and string; nil values are
// treated as absent attributes.
type Doc map[string]any

// Strategy selects the partitioning algorithm.
type Strategy int

// Available strategies. StrategyCinderella is the paper's algorithm; the
// others are the baselines used in the evaluation.
const (
	StrategyCinderella Strategy = iota
	// StrategyUniversal keeps all records in a single partition (the
	// unpartitioned universal table).
	StrategyUniversal
	// StrategyHash spreads records over a fixed number of partitions by
	// record id, like web-scale key-value stores.
	StrategyHash
	// StrategyRoundRobin fills bounded partitions in arrival order.
	StrategyRoundRobin
	// StrategySchemaExact groups records by exact attribute signature
	// (the w = 0 limit of Cinderella).
	StrategySchemaExact
)

// Config parameterizes a Table. The zero value gives Cinderella with the
// paper's default settings (w = 0.5, B = 5000 records).
type Config struct {
	// Strategy selects the partitioner. Default StrategyCinderella.
	Strategy Strategy
	// Weight is Cinderella's w ∈ [0,1] balancing positive against
	// negative evidence. Default 0.5. The paper finds 0.2–0.5 reasonable;
	// lower weights give more, purer partitions.
	Weight float64
	// PartitionSizeLimit is B: the maximum partition size in records (or
	// bytes when SizeInBytes). Default 5000.
	PartitionSizeLimit int64
	// SizeInBytes switches SIZE() from record counts to byte footprints.
	SizeInBytes bool
	// HashPartitions is the partition count for StrategyHash. Default 16.
	HashPartitions int
	// WorkloadQueries switches Cinderella to workload-based partitioning:
	// records relevant to the same queries cluster together. Each query
	// is the attribute set it references.
	WorkloadQueries [][]string
	// UseCatalogIndex enables the inverted attribute index for candidate
	// partition lookup (faster inserts on large catalogs).
	UseCatalogIndex bool
	// CachePages, when positive, routes all page accesses through a
	// simulated LRU buffer cache of that many pages; CacheStats reports
	// hit ratios. Zero disables the cache.
	CachePages int
	// Parallelism bounds the worker pool that scans non-pruned partitions
	// in Query/QueryWhere. 0 (default) uses GOMAXPROCS; 1 scans serially.
	// Results and reports are identical either way.
	Parallelism int
	// Obs, when non-nil, attaches a telemetry registry: operation and
	// query counters, latency histograms, the streaming EFFICIENCY
	// estimator, and the partitioner event trace. See internal/obs. A nil
	// registry costs one pointer check per operation.
	Obs *obs.Registry
}

// Table is a partitioned universal table. It is safe for concurrent use.
type Table struct {
	inner *table.Table
	dict  *entity.Dictionary
	cache *storage.BufferCache
	obsr  *obs.Registry
}

// Open creates a new in-memory table from cfg.
func Open(cfg Config) *Table {
	if cfg.Weight == 0 {
		cfg.Weight = 0.5
	}
	if cfg.PartitionSizeLimit == 0 {
		cfg.PartitionSizeLimit = 5000
	}
	if cfg.HashPartitions == 0 {
		cfg.HashPartitions = 16
	}
	mode := core.SizeCount
	if cfg.SizeInBytes {
		mode = core.SizeBytes
	}

	var assigner core.Assigner
	switch cfg.Strategy {
	case StrategyCinderella:
		assigner = core.NewCinderella(core.Config{
			Weight:          cfg.Weight,
			MaxSize:         cfg.PartitionSizeLimit,
			SizeMode:        mode,
			UseCatalogIndex: cfg.UseCatalogIndex,
		})
	case StrategyUniversal:
		assigner = core.NewSingle(mode)
	case StrategyHash:
		assigner = core.NewHash(cfg.HashPartitions, mode)
	case StrategyRoundRobin:
		assigner = core.NewRoundRobin(cfg.PartitionSizeLimit, mode)
	case StrategySchemaExact:
		assigner = core.NewSchemaExact(cfg.PartitionSizeLimit, mode)
	default:
		panic(fmt.Sprintf("cinderella: unknown strategy %d", cfg.Strategy))
	}

	dict := entity.NewDictionary()
	tcfg := table.Config{Partitioner: assigner, Dict: dict, Parallelism: cfg.Parallelism, Obs: cfg.Obs}
	var cache *storage.BufferCache
	if cfg.CachePages > 0 {
		cache = storage.NewBufferCache(cfg.CachePages)
		tcfg.Cache = cache
	}
	if len(cfg.WorkloadQueries) > 0 {
		queries := make([]*synopsis.Set, len(cfg.WorkloadQueries))
		for i, attrs := range cfg.WorkloadQueries {
			ids := make([]int, len(attrs))
			for j, a := range attrs {
				ids[j] = dict.ID(a)
			}
			queries[i] = synopsis.Of(ids...)
		}
		tcfg.Synopsizer = table.WorkloadBased{Queries: queries}
	}
	return &Table{inner: table.New(tcfg), dict: dict, cache: cache, obsr: cfg.Obs}
}

// SetObserver attaches (or replaces) a telemetry registry after Open —
// useful to exclude a bulk load from the measured window. Safe with
// concurrent readers and writers.
func (t *Table) SetObserver(r *obs.Registry) {
	t.obsr = r
	t.inner.SetObserver(r)
}

// Observer returns the attached telemetry registry (nil if none).
func (t *Table) Observer() *obs.Registry { return t.obsr }

// NewObserver returns a telemetry registry with default options (256-query
// efficiency window, 4096-event trace ring), ready to pass as Config.Obs
// or to SetObserver. The obs package itself is internal, so this is the
// way to create a registry from outside the module; every method on the
// returned value (Serve, Mux, Snapshot, Efficiency, TraceDump, ...) is
// callable through it.
func NewObserver() *obs.Registry { return obs.New(obs.Options{}) }

// CacheStats returns the buffer cache's cumulative hits and misses; zeros
// when no cache is configured.
func (t *Table) CacheStats() (hits, misses int64) {
	if t.cache == nil {
		return 0, 0
	}
	return t.cache.Stats()
}

// toEntity converts a Doc, assigning attribute ids.
func (t *Table) toEntity(doc Doc) *entity.Entity {
	e := &entity.Entity{}
	for name, v := range doc {
		val, err := toValue(v)
		if err != nil {
			panic(fmt.Sprintf("cinderella: attribute %q: %v", name, err))
		}
		if val.IsNull() {
			continue
		}
		e.Set(t.dict.ID(name), val)
	}
	return e
}

func toValue(v any) (entity.Value, error) {
	switch x := v.(type) {
	case nil:
		return entity.Null(), nil
	case int:
		return entity.Int(int64(x)), nil
	case int64:
		return entity.Int(x), nil
	case float64:
		return entity.Float(x), nil
	case string:
		return entity.Str(x), nil
	default:
		return entity.Null(), fmt.Errorf("unsupported value type %T", v)
	}
}

func (t *Table) toDoc(e *entity.Entity) Doc {
	doc := make(Doc, e.NumAttrs())
	for _, f := range e.Fields() {
		name := t.dict.Name(f.Attr)
		switch f.Value.Kind() {
		case entity.KindInt:
			doc[name] = f.Value.AsInt()
		case entity.KindFloat:
			doc[name] = f.Value.AsFloat()
		case entity.KindString:
			doc[name] = f.Value.AsString()
		}
	}
	return doc
}

// Insert stores doc and returns its id. Documents with unsupported value
// types panic (programmer error).
func (t *Table) Insert(doc Doc) ID {
	return t.inner.Insert(t.toEntity(doc))
}

// Get returns the document with the given id.
func (t *Table) Get(id ID) (Doc, bool) {
	e, ok := t.inner.Get(id)
	if !ok {
		return nil, false
	}
	return t.toDoc(e), true
}

// Update replaces the document's content. The partitioner may move the
// record to a better-fitting partition. It reports whether id existed.
func (t *Table) Update(id ID, doc Doc) bool {
	return t.inner.Update(id, t.toEntity(doc))
}

// Delete removes the document. It reports whether id existed.
func (t *Table) Delete(id ID) bool {
	return t.inner.Delete(id)
}

// Len returns the number of live documents.
func (t *Table) Len() int { return t.inner.Len() }

// LastID returns the highest entity id ever assigned or inserted (0 when
// the table never held a document). Sharded recovery seeds its global id
// allocator from the per-shard maxima.
func (t *Table) LastID() ID { return t.inner.LastID() }

// Record is one query result.
type Record struct {
	ID  ID
	Doc Doc
}

// Query returns all documents instantiating at least one of the given
// attributes (SELECT … WHERE a1 IS NOT NULL OR a2 IS NOT NULL …),
// pruning partitions whose synopsis is disjoint from the attribute set.
// Unknown attribute names simply match nothing.
func (t *Table) Query(attrs ...string) []Record {
	ids := t.attrIDs(attrs)
	if len(ids) == 0 {
		return nil
	}
	return t.toRecords(t.inner.Select(ids...))
}

// QuerySpanned is Query filling an externally created query span — the
// shard coordinator's fan-out children come through here. sp may be
// nil. A query with no known attributes returns nil without touching
// the table; the span then stays empty.
func (t *Table) QuerySpanned(sp *obs.QuerySpan, attrs ...string) []Record {
	ids := t.attrIDs(attrs)
	if len(ids) == 0 {
		return nil
	}
	res, _ := t.inner.SelectSpanned(synopsis.Of(ids...), sp)
	return t.toRecords(res)
}

// QueryReport describes one query's execution.
type QueryReport = table.QueryReport

// QueryWithReport runs Query and also returns pruning counters.
func (t *Table) QueryWithReport(attrs ...string) ([]Record, QueryReport) {
	res, rep := t.inner.SelectWithReport(synopsis.Of(t.attrIDs(attrs)...))
	return t.toRecords(res), rep
}

// QueryWithReportSpanned runs QueryWithReport filling an externally
// created query span — the shard coordinator's fan-out children and the
// service layer's forced traces come through here. sp may be nil.
func (t *Table) QueryWithReportSpanned(sp *obs.QuerySpan, attrs ...string) ([]Record, QueryReport) {
	res, rep := t.inner.SelectSpanned(synopsis.Of(t.attrIDs(attrs)...), sp)
	return t.toRecords(res), rep
}

// QueryTraced runs QueryWithReport under a forced trace: the query
// always gets a fully detailed span (sampling bypassed), returned
// inline alongside the results. The span is nil when the table is
// uninstrumented. Backs the server's ?trace=1 and the wire protocol's
// trace flag.
func (t *Table) QueryTraced(attrs ...string) ([]Record, QueryReport, *obs.QuerySpan) {
	sp := t.obsr.StartQueryForced(obs.KindSelect)
	recs, rep := t.QueryWithReportSpanned(sp, attrs...)
	return recs, rep, sp
}

func (t *Table) attrIDs(attrs []string) []int {
	ids := make([]int, 0, len(attrs))
	for _, a := range attrs {
		if id, ok := t.dict.Lookup(a); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

func (t *Table) toRecords(res []table.Result) []Record {
	out := make([]Record, len(res))
	for i, r := range res {
		out[i] = Record{ID: r.ID, Doc: t.toDoc(r.Entity)}
	}
	return out
}

// Dict returns the table's attribute dictionary. The binary wire layer
// (internal/wire) uses it to negotiate attribute ids with clients so
// records cross the network in the entity codec's format; external
// module users cannot name the internal type and go through Doc instead.
func (t *Table) Dict() *entity.Dictionary { return t.dict }

// EntityRecord is one query result at the entity layer: the record id
// plus the decoded entity, attribute ids in the table dictionary's
// space. It exists for the binary wire path, which re-encodes entities
// with the internal codec instead of converting through Doc maps.
type EntityRecord struct {
	ID     ID
	Entity *entity.Entity
}

// QueryEntities is Query without the Doc conversion: results keep their
// decoded entities. The entities are fresh per-query decodes, owned by
// the caller.
func (t *Table) QueryEntities(attrs ...string) []EntityRecord {
	ids := t.attrIDs(attrs)
	if len(ids) == 0 {
		return nil
	}
	res := t.inner.Select(ids...)
	out := make([]EntityRecord, len(res))
	for i, r := range res {
		out[i] = EntityRecord{ID: r.ID, Entity: r.Entity}
	}
	return out
}

// QueryEntitiesSpanned is QueryEntities filling an externally created
// query span (sp may be nil). A query with no known attributes returns
// nil without touching the table; the span then stays empty.
func (t *Table) QueryEntitiesSpanned(sp *obs.QuerySpan, attrs ...string) []EntityRecord {
	ids := t.attrIDs(attrs)
	if len(ids) == 0 {
		return nil
	}
	res, _ := t.inner.SelectSpanned(synopsis.Of(ids...), sp)
	out := make([]EntityRecord, len(res))
	for i, r := range res {
		out[i] = EntityRecord{ID: r.ID, Entity: r.Entity}
	}
	return out
}

// QueryEntitiesTraced is QueryEntities under a forced trace (see
// QueryTraced); the span is nil when the table is uninstrumented.
func (t *Table) QueryEntitiesTraced(attrs ...string) ([]EntityRecord, *obs.QuerySpan) {
	sp := t.obsr.StartQueryForced(obs.KindSelect)
	return t.QueryEntitiesSpanned(sp, attrs...), sp
}

// GetEntity is Get without the Doc conversion. The returned entity is a
// fresh decode owned by the caller.
func (t *Table) GetEntity(id ID) (*entity.Entity, bool) {
	return t.inner.Get(id)
}

// InsertEntity stores a pre-built entity whose attribute ids come from
// this table's dictionary and returns its id. It rejects entities
// referencing unregistered attribute ids — the binary ingest path
// decodes untrusted bytes, so the id-space check is the trust boundary.
// The entity is not retained; callers may reuse it.
func (t *Table) InsertEntity(e *entity.Entity) (ID, error) {
	if err := t.checkEntityAttrs(e); err != nil {
		return 0, err
	}
	return t.inner.Insert(e), nil
}

// UpdateEntity replaces a document with a pre-built entity (see
// InsertEntity). It reports whether id existed.
func (t *Table) UpdateEntity(id ID, e *entity.Entity) (bool, error) {
	if err := t.checkEntityAttrs(e); err != nil {
		return false, err
	}
	return t.inner.Update(id, e), nil
}

// checkEntityAttrs verifies every attribute id is registered. Fields are
// sorted, so checking the last suffices.
func (t *Table) checkEntityAttrs(e *entity.Entity) error {
	if fs := e.Fields(); len(fs) > 0 {
		if max := fs[len(fs)-1].Attr; max >= t.dict.Len() {
			return fmt.Errorf("cinderella: entity references unregistered attribute id %d (dictionary has %d)", max, t.dict.Len())
		}
	}
	return nil
}

// ScanAll returns every live document (a full scan over all partitions;
// no pruning is possible). Like Query it runs lock-free against a
// consistent snapshot by default, so a long scan never stalls writers.
func (t *Table) ScanAll() []Record {
	return t.toRecords(t.inner.ScanAll())
}

// ScanAllSpanned is ScanAll filling an externally created query span
// (sp may be nil) — the shard coordinator's fan-out children.
func (t *Table) ScanAllSpanned(sp *obs.QuerySpan) []Record {
	return t.toRecords(t.inner.ScanAllSpanned(sp))
}

// SetLockedReads switches Query/QueryWhere/ScanAll between the default
// lock-free snapshot mode and the historical mode where reads hold the
// table's shared lock for the whole scan. Results and reports are
// identical in both modes; the locked mode exists as the comparison
// baseline for benchmarks (cinderella-bench -exp read).
func (t *Table) SetLockedReads(locked bool) { t.inner.SetLockedReads(locked) }

// SetBitmapScans switches snapshot Query/QueryWhere scans between the
// word-parallel bitmap kernel (default, on) and the per-record sidecar
// path. Results and reports are identical in both modes; the sidecar
// path exists as the comparison baseline for benchmarks
// (cinderella-bench -exp scan) and the equivalence tests.
func (t *Table) SetBitmapScans(on bool) { t.inner.SetBitmapScans(on) }

// PartitionStat describes one partition. The json tags are the
// service-layer wire format (GET /v1/partitions).
type PartitionStat struct {
	Records    int      `json:"records"`
	Bytes      int64    `json:"bytes"`
	Pages      int      `json:"pages"`
	Attributes []string `json:"attributes"`
}

// Partitions returns the current partitioning, ordered by partition id.
func (t *Table) Partitions() []PartitionStat {
	views := t.inner.Partitions()
	out := make([]PartitionStat, len(views))
	for i, pv := range views {
		st := PartitionStat{Records: pv.Entities, Bytes: pv.Bytes, Pages: pv.Pages}
		for _, a := range pv.Synopsis.Elements(nil) {
			st.Attributes = append(st.Attributes, t.dict.Name(a))
		}
		out[i] = st
	}
	return out
}

// Compact merges underfilled partitions (fill fraction below threshold,
// e.g. 0.25) into well-fitting peers. Useful after heavy deletion, which
// leaves small partitions that inflate query overhead. Only effective
// with StrategyCinderella; other strategies return 0.
func (t *Table) Compact(threshold float64) int {
	return t.inner.Compact(threshold)
}

// IOStats returns cumulative simulated-I/O counters.
func (t *Table) IOStats() (pagesRead, pagesWritten, bytesRead, bytesWritten int64) {
	pr, pw, br, bw, _ := t.inner.Stats().Snapshot()
	return pr, pw, br, bw
}

// ResetIOStats zeroes the I/O counters.
func (t *Table) ResetIOStats() { t.inner.Stats().Reset() }

// ColdIOStats returns the cumulative cold-tier read charge: pages
// inflated and raw bytes decompressed from frozen partitions. Queries
// that prune every frozen partition charge nothing here — that is the
// tiering design's central claim, gated by the tier benchmark.
func (t *Table) ColdIOStats() (pagesRead, bytesRead int64) {
	return t.inner.Stats().ColdSnapshot()
}
