package cinderella

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestOpenDefaultsAndCRUD(t *testing.T) {
	tbl := Open(Config{})
	id := tbl.Insert(Doc{"name": "Canon PowerShot S120", "aperture": 2.0, "screen": 3})
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	doc, ok := tbl.Get(id)
	if !ok {
		t.Fatal("Get missed")
	}
	if doc["name"] != "Canon PowerShot S120" || doc["aperture"] != 2.0 || doc["screen"] != int64(3) {
		t.Fatalf("doc = %v", doc)
	}
	if !tbl.Update(id, Doc{"name": "updated", "weight": 198}) {
		t.Fatal("Update failed")
	}
	doc, _ = tbl.Get(id)
	if doc["name"] != "updated" || doc["weight"] != int64(198) {
		t.Fatalf("doc after update = %v", doc)
	}
	if _, has := doc["aperture"]; has {
		t.Fatal("update kept removed attribute")
	}
	if !tbl.Delete(id) || tbl.Delete(id) {
		t.Fatal("Delete semantics wrong")
	}
	if _, ok := tbl.Get(id); ok {
		t.Fatal("Get after Delete")
	}
}

func TestNilValuesIgnored(t *testing.T) {
	tbl := Open(Config{})
	id := tbl.Insert(Doc{"a": 1, "b": nil})
	doc, _ := tbl.Get(id)
	if _, has := doc["b"]; has {
		t.Fatal("nil attribute stored")
	}
}

func TestUnsupportedValuePanics(t *testing.T) {
	tbl := Open(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported value accepted")
		}
	}()
	tbl.Insert(Doc{"a": []int{1}})
}

func TestUnknownStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown strategy accepted")
		}
	}()
	Open(Config{Strategy: Strategy(99)})
}

func TestQueryORSemantics(t *testing.T) {
	tbl := Open(Config{})
	tbl.Insert(Doc{"aperture": 2.0, "sensor": "CMOS"})
	tbl.Insert(Doc{"tuner": "DVB-T"})
	tbl.Insert(Doc{"aperture": 1.8})
	if got := len(tbl.Query("aperture")); got != 2 {
		t.Fatalf("Query(aperture) = %d", got)
	}
	if got := len(tbl.Query("aperture", "tuner")); got != 3 {
		t.Fatalf("Query(aperture, tuner) = %d", got)
	}
	if got := len(tbl.Query("nonexistent")); got != 0 {
		t.Fatalf("Query(nonexistent) = %d", got)
	}
	if got := len(tbl.Query()); got != 0 {
		t.Fatalf("Query() = %d", got)
	}
}

func TestPartitioningSeparatesSchemas(t *testing.T) {
	tbl := Open(Config{PartitionSizeLimit: 100})
	for i := 0; i < 20; i++ {
		tbl.Insert(Doc{"name": "camera", "aperture": 2.0, "sensor": "CMOS"})
		tbl.Insert(Doc{"name": "disk", "rpm": 7200, "capacity": "4TB"})
	}
	parts := tbl.Partitions()
	if len(parts) != 2 {
		t.Fatalf("partitions = %d, want 2", len(parts))
	}
	_, rep := tbl.QueryWithReport("rpm")
	if rep.PartitionsPruned != 1 || rep.PartitionsTouched != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestStrategies(t *testing.T) {
	for _, s := range []Strategy{
		StrategyCinderella, StrategyUniversal, StrategyHash,
		StrategyRoundRobin, StrategySchemaExact,
	} {
		tbl := Open(Config{Strategy: s, PartitionSizeLimit: 10})
		var ids []ID
		for i := 0; i < 50; i++ {
			ids = append(ids, tbl.Insert(Doc{
				fmt.Sprintf("attr%d", i%4): i,
				"common":                   "x",
			}))
		}
		if tbl.Len() != 50 {
			t.Fatalf("strategy %d: Len = %d", s, tbl.Len())
		}
		if got := len(tbl.Query("common")); got != 50 {
			t.Fatalf("strategy %d: Query = %d", s, got)
		}
		tbl.Delete(ids[0])
		if got := len(tbl.Query("common")); got != 49 {
			t.Fatalf("strategy %d: Query after delete = %d", s, got)
		}
	}
}

func TestWorkloadBasedConfig(t *testing.T) {
	tbl := Open(Config{
		WorkloadQueries: [][]string{{"aperture"}, {"rpm"}},
	})
	tbl.Insert(Doc{"aperture": 2.0, "x": 1})
	tbl.Insert(Doc{"aperture": 1.8, "y": 2})
	tbl.Insert(Doc{"rpm": 7200})
	if got := len(tbl.Partitions()); got != 2 {
		t.Fatalf("workload-based partitions = %d, want 2", got)
	}
}

func TestIOStats(t *testing.T) {
	tbl := Open(Config{})
	tbl.Insert(Doc{"a": 1})
	_, pw, _, bw := tbl.IOStats()
	if pw == 0 || bw == 0 {
		t.Fatalf("write stats empty: %d %d", pw, bw)
	}
	tbl.ResetIOStats()
	tbl.Query("a")
	pr, _, br, _ := tbl.IOStats()
	if pr == 0 || br == 0 {
		t.Fatalf("read stats empty: %d %d", pr, br)
	}
}

func TestPartitionStats(t *testing.T) {
	tbl := Open(Config{})
	tbl.Insert(Doc{"a": 1, "b": "two"})
	parts := tbl.Partitions()
	if len(parts) != 1 || parts[0].Records != 1 {
		t.Fatalf("parts = %+v", parts)
	}
	if len(parts[0].Attributes) != 2 {
		t.Fatalf("attrs = %v", parts[0].Attributes)
	}
	if parts[0].Bytes <= 0 || parts[0].Pages <= 0 {
		t.Fatalf("sizes = %+v", parts[0])
	}
}

func TestConcurrentUse(t *testing.T) {
	tbl := Open(Config{PartitionSizeLimit: 50})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				id := tbl.Insert(Doc{
					fmt.Sprintf("attr%d", rng.Intn(6)): i,
					"shared":                           g,
				})
				if rng.Intn(4) == 0 {
					tbl.Delete(id)
				}
				if rng.Intn(8) == 0 {
					tbl.Query("shared")
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(tbl.Query("shared")); got != tbl.Len() {
		t.Fatalf("Query(shared) = %d, Len = %d", got, tbl.Len())
	}
}

func TestQueryWhere(t *testing.T) {
	tbl := Open(Config{})
	tbl.Insert(Doc{"price": 10.0, "category": "camera"})
	tbl.Insert(Doc{"price": 99.5, "category": "camera"})
	tbl.Insert(Doc{"price": 50.0, "category": "tv"})

	rows, _ := tbl.QueryWhere(Where("price", "<", 60.0))
	if len(rows) != 2 {
		t.Fatalf("price<60 = %d", len(rows))
	}
	rows, _ = tbl.QueryWhere(Where("price", ">=", 50.0), Where("category", "=", "camera"))
	if len(rows) != 1 || rows[0].Doc["price"] != 99.5 {
		t.Fatalf("conjunction = %v", rows)
	}
	rows, _ = tbl.QueryWhere(Where("never_seen", "=", 1))
	if len(rows) != 0 {
		t.Fatalf("unknown attr = %d", len(rows))
	}
	tbl.RebuildZoneMaps()
	rows, _ = tbl.QueryWhere(Where("price", "=", 50.0))
	if len(rows) != 1 {
		t.Fatalf("after rebuild = %d", len(rows))
	}
}

func TestQueryWhereBadOpPanics(t *testing.T) {
	tbl := Open(Config{})
	tbl.Insert(Doc{"a": 1})
	defer func() {
		if recover() == nil {
			t.Fatal("bad operator accepted")
		}
	}()
	tbl.QueryWhere(Where("a", "!=", 1))
}

func TestQueryWhereEmptyPanics(t *testing.T) {
	tbl := Open(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("empty QueryWhere accepted")
		}
	}()
	tbl.QueryWhere()
}

func TestCompactFacade(t *testing.T) {
	tbl := Open(Config{PartitionSizeLimit: 50})
	var ids []ID
	for i := 0; i < 200; i++ {
		ids = append(ids, tbl.Insert(Doc{"a": 1, "b": 2}))
	}
	for i, id := range ids {
		if i%40 != 0 {
			tbl.Delete(id)
		}
	}
	before := len(tbl.Partitions())
	merges := tbl.Compact(0.3)
	if before > 1 && merges == 0 {
		t.Fatalf("no merges on %d fragmented partitions", before)
	}
	if got := len(tbl.Query("a")); got != 5 {
		t.Fatalf("Query after compact = %d", got)
	}
	// Non-Cinderella strategies are a no-op.
	u := Open(Config{Strategy: StrategyUniversal})
	u.Insert(Doc{"a": 1})
	if u.Compact(1.0) != 0 {
		t.Fatal("universal strategy compacted")
	}
}

func TestCacheStatsFacade(t *testing.T) {
	tbl := Open(Config{CachePages: 8})
	for i := 0; i < 100; i++ {
		tbl.Insert(Doc{"a": i})
	}
	tbl.Query("a")
	tbl.Query("a")
	h, m := tbl.CacheStats()
	if m == 0 || h == 0 {
		t.Fatalf("cache stats = %d/%d", h, m)
	}
	// Without a cache: zeros.
	plain := Open(Config{})
	plain.Insert(Doc{"a": 1})
	plain.Query("a")
	if h, m := plain.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("uncached stats = %d/%d", h, m)
	}
}
