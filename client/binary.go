package client

// The binary transport: a typed client for cinderellad's length-prefixed
// wire protocol (internal/wire). Compared to the HTTP/JSON client it
// keeps persistent pooled connections, marshals documents once into the
// server's native entity record format, batches concurrent writes into
// single frames (flush on count, bytes, or linger — "natural" batching
// sends immediately when nothing is in flight, so a lone writer pays no
// added latency while many writers self-tune to the round-trip), and
// pipelines requests, matching responses by sequence number.
//
// Retry semantics mirror the HTTP client: only provably-unapplied
// failures retry — StatusRetry frames (server draining or overloaded:
// nothing applied), connection-refused dials, and the ResUnapplied
// suffix of a partially failed batch. StatusNotDurable and mid-flight
// transport failures surface to the caller, because the write may have
// been applied.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cinderella/internal/entity"
	"cinderella/internal/wire"
)

// WireError is a non-OK response frame from the server.
type WireError struct {
	Status  byte // wire.StatusError, StatusRetry, or StatusNotDurable
	Message string
}

func (e *WireError) Error() string {
	kind := "error"
	switch e.Status {
	case wire.StatusRetry:
		kind = "retry"
	case wire.StatusNotDurable:
		kind = "not durable"
	}
	return fmt.Sprintf("cinderellad wire: %s: %s", kind, e.Message)
}

// OpError is one operation's failure inside a batch.
type OpError struct {
	Code    byte // wire.ResFailed or wire.ResUnapplied
	Message string
}

func (e *OpError) Error() string {
	if e.Code == wire.ResUnapplied {
		return "cinderellad wire: op not applied: " + e.Message
	}
	return "cinderellad wire: op failed: " + e.Message
}

// Binary talks to one cinderellad over the binary wire protocol. It is
// safe for concurrent use; concurrent writes batch into shared frames.
type Binary struct {
	addr       string
	timeout    time.Duration
	maxRetries int
	backoff    time.Duration
	maxBackoff time.Duration
	maxFrame   int

	// Connection pool. Slots dial lazily; a broken connection clears its
	// slot so the next user redials.
	connMu sync.Mutex
	pool   []*bconn
	next   atomic.Uint64 // round-robin cursor

	// Attribute id negotiation: name→wire-id (for encoding writes and
	// queries) and id→name (for decoding read responses, fed by
	// dictionary deltas). Guarded by attrMu. token is the server session;
	// a changed token on redial invalidates both maps.
	attrMu   sync.Mutex
	attrs    map[string]int
	idToName []string
	token    uint64
	haveTok  bool

	bat batcher

	bytesOut atomic.Int64 // frame bytes written
	bytesIn  atomic.Int64 // frame bytes read

	closed atomic.Bool
}

// BinaryOption customizes a Binary client.
type BinaryOption func(*Binary)

// WithBinaryTimeout sets the per-exchange deadline (default 10s).
func WithBinaryTimeout(d time.Duration) BinaryOption {
	return func(b *Binary) { b.timeout = d }
}

// WithBinaryRetries bounds retry attempts after the first try (default
// 4; 0 disables retries).
func WithBinaryRetries(n int) BinaryOption {
	return func(b *Binary) { b.maxRetries = n }
}

// WithBinaryBackoff sets the initial retry backoff (default 25ms,
// doubling per attempt, capped at 1s).
func WithBinaryBackoff(d time.Duration) BinaryOption {
	return func(b *Binary) { b.backoff = d }
}

// WithConns sets the connection pool size (default 2).
func WithConns(n int) BinaryOption {
	return func(b *Binary) {
		if n > 0 {
			b.pool = make([]*bconn, n)
		}
	}
}

// WithBatch tunes client-side write batching: flush when a batch
// reaches maxOps operations or maxBytes payload bytes, or when linger
// elapses after the first queued op. Zero keeps a parameter's default
// (256 ops, 512 KiB, 1ms).
func WithBatch(maxOps, maxBytes int, linger time.Duration) BinaryOption {
	return func(b *Binary) {
		if maxOps > 0 {
			b.bat.maxOps = maxOps
		}
		if maxBytes > 0 {
			b.bat.maxBytes = maxBytes
		}
		if linger > 0 {
			b.bat.linger = linger
		}
	}
}

// NewBinary returns a binary-protocol client for addr (host:port).
func NewBinary(addr string, opts ...BinaryOption) (*Binary, error) {
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return nil, fmt.Errorf("client: bad binary address %q: %v", addr, err)
	}
	b := &Binary{
		addr:       addr,
		timeout:    10 * time.Second,
		maxRetries: 4,
		backoff:    25 * time.Millisecond,
		maxBackoff: time.Second,
		maxFrame:   wire.DefaultMaxFrame,
		pool:       make([]*bconn, 2),
		attrs:      make(map[string]int),
	}
	b.bat = batcher{b: b, maxOps: 256, maxBytes: 512 << 10, linger: time.Millisecond}
	for _, o := range opts {
		o(b)
	}
	return b, nil
}

// Close closes all pooled connections. In-flight exchanges fail.
func (b *Binary) Close() error {
	b.closed.Store(true)
	// Detach the conns under the lock, close them outside it — close
	// re-takes connMu to clear its pool slot.
	b.connMu.Lock()
	conns := make([]*bconn, 0, len(b.pool))
	for i, c := range b.pool {
		if c != nil {
			conns = append(conns, c)
			b.pool[i] = nil
		}
	}
	b.connMu.Unlock()
	for _, c := range conns {
		c.close(errors.New("client closed"))
	}
	return nil
}

// BytesSent and BytesReceived report cumulative transport bytes — the
// load generator's bytes/op accounting.
func (b *Binary) BytesSent() int64     { return b.bytesOut.Load() }
func (b *Binary) BytesReceived() int64 { return b.bytesIn.Load() }

// ---- connection pool ----

// bconn is one pooled connection with a reader goroutine that completes
// pipelined calls by sequence number.
type bconn struct {
	nc  net.Conn
	b   *Binary
	seq atomic.Uint64

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint64]*call
	dead    error // non-nil once the connection is unusable

	slot int
}

// call is one in-flight request awaiting its response frame.
type call struct {
	done    chan struct{}
	status  byte
	payload []byte // copied out of the read buffer
	err     error
}

// getConn returns a live pooled connection, dialing (and running the
// Hello handshake) if the slot is empty.
func (b *Binary) getConn(ctx context.Context) (*bconn, error) {
	if b.closed.Load() {
		return nil, errors.New("client: closed")
	}
	slot := int(b.next.Add(1)) % len(b.pool)
	b.connMu.Lock()
	if c := b.pool[slot]; c != nil {
		b.connMu.Unlock()
		return c, nil
	}
	b.connMu.Unlock()

	// Dial outside the pool lock; losers of a dial race just close.
	d := net.Dialer{}
	deadline := time.Now().Add(b.timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	dctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	nc, err := d.DialContext(dctx, "tcp", b.addr)
	if err != nil {
		return nil, &dialError{err}
	}
	c := &bconn{nc: nc, b: b, pending: make(map[uint64]*call), slot: slot}
	go c.readLoop()
	if err := b.hello(ctx, c); err != nil {
		c.close(err)
		return nil, err
	}
	b.connMu.Lock()
	if b.pool[slot] == nil && !b.closed.Load() {
		b.pool[slot] = c
		b.connMu.Unlock()
		return c, nil
	}
	existing := b.pool[slot]
	b.connMu.Unlock()
	if existing != nil {
		c.close(errors.New("duplicate dial"))
		return existing, nil
	}
	c.close(errors.New("client closed"))
	return nil, errors.New("client: closed")
}

// dialError marks a connection-refused-style failure: the request
// provably never reached a server, so even writes may retry.
type dialError struct{ err error }

func (e *dialError) Error() string { return "client: dial: " + e.err.Error() }
func (e *dialError) Unwrap() error { return e.err }

// hello runs the session handshake on a fresh connection and
// invalidates the attribute cache when the server's token changed
// (restart): wire attribute ids are session-scoped.
func (b *Binary) hello(ctx context.Context, c *bconn) error {
	status, payload, err := c.roundTrip(ctx, wire.OpHello, nil, b.timeout)
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return &WireError{Status: status, Message: wire.DecodeErrorPayload(payload)}
	}
	tok, err := wire.DecodeHello(payload)
	if err != nil {
		return err
	}
	b.attrMu.Lock()
	if b.haveTok && b.token != tok {
		b.attrs = make(map[string]int)
		b.idToName = nil
	}
	b.token = tok
	b.haveTok = true
	b.attrMu.Unlock()
	return nil
}

// readLoop is the connection's response dispatcher.
func (c *bconn) readLoop() {
	var buf []byte
	for {
		f, err := wire.ReadFrame(c.nc, &buf, c.b.maxFrame)
		if err != nil {
			c.close(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		c.b.bytesIn.Add(int64(4 + 10 + len(f.Payload)))
		c.pmu.Lock()
		call := c.pending[f.Seq]
		delete(c.pending, f.Seq)
		c.pmu.Unlock()
		if call == nil {
			continue // caller gave up (deadline); drop the orphan
		}
		call.status = f.Kind
		call.payload = append([]byte(nil), f.Payload...)
		close(call.done)
	}
}

// close marks the connection dead, fails every pending call, clears the
// pool slot, and closes the socket. Idempotent.
func (c *bconn) close(cause error) {
	c.pmu.Lock()
	if c.dead != nil {
		c.pmu.Unlock()
		return
	}
	c.dead = cause
	pending := c.pending
	c.pending = nil
	c.pmu.Unlock()
	for _, call := range pending {
		call.err = cause
		close(call.done)
	}
	c.b.connMu.Lock()
	if c.b.pool[c.slot] == c {
		c.b.pool[c.slot] = nil
	}
	c.b.connMu.Unlock()
	c.nc.Close()
}

// roundTrip sends one frame and waits for its response. The returned
// payload is owned by the caller.
func (c *bconn) roundTrip(ctx context.Context, op byte, payload []byte, timeout time.Duration) (byte, []byte, error) {
	seq := c.seq.Add(1)
	call := &call{done: make(chan struct{})}
	c.pmu.Lock()
	if c.dead != nil {
		err := c.dead
		c.pmu.Unlock()
		return 0, nil, err
	}
	c.pending[seq] = call
	c.pmu.Unlock()

	frame := wire.AppendFrame(nil, op, seq, payload)
	c.wmu.Lock()
	_, err := c.nc.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		c.close(fmt.Errorf("client: write: %w", err))
		c.pmu.Lock()
		delete(c.pending, seq)
		c.pmu.Unlock()
		return 0, nil, fmt.Errorf("client: write: %w", err)
	}
	c.b.bytesOut.Add(int64(len(frame)))

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-call.done:
		return call.status, call.payload, call.err
	case <-ctx.Done():
		c.forget(seq)
		return 0, nil, ctx.Err()
	case <-t.C:
		c.forget(seq)
		return 0, nil, fmt.Errorf("client: %s: timeout after %v", b2op(op), timeout)
	}
}

func (c *bconn) forget(seq uint64) {
	c.pmu.Lock()
	delete(c.pending, seq)
	c.pmu.Unlock()
}

func b2op(op byte) string {
	switch op {
	case wire.OpHello:
		return "hello"
	case wire.OpAttrs:
		return "attrs"
	case wire.OpBatch:
		return "batch"
	case wire.OpGet:
		return "get"
	case wire.OpQuery:
		return "query"
	case wire.OpPing:
		return "ping"
	}
	return "op"
}

// exchange is the retrying read-side round trip: reads are idempotent,
// so any transport failure redials and retries.
func (b *Binary) exchange(ctx context.Context, op byte, payload []byte) (byte, []byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		c, err := b.getConn(ctx)
		if err == nil {
			var status byte
			var resp []byte
			status, resp, err = c.roundTrip(ctx, op, payload, b.timeout)
			if err == nil {
				if status == wire.StatusRetry && attempt < b.maxRetries {
					lastErr = &WireError{Status: status, Message: wire.DecodeErrorPayload(resp)}
					if !b.sleep(ctx, attempt) {
						return 0, nil, lastErr
					}
					continue
				}
				return status, resp, nil
			}
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || attempt >= b.maxRetries {
			return 0, nil, lastErr
		}
		if !b.sleep(ctx, attempt) {
			return 0, nil, lastErr
		}
	}
}

func (b *Binary) sleep(ctx context.Context, attempt int) bool {
	wait := b.backoff << attempt
	if wait > b.maxBackoff {
		wait = b.maxBackoff
	}
	select {
	case <-time.After(wait):
		return true
	case <-ctx.Done():
		return false
	}
}

// ---- attribute negotiation ----

// ensureAttrs resolves names to wire ids, registering unknown ones with
// one OpAttrs round trip. Steady state (all names cached) takes the
// mutex and allocates nothing.
func (b *Binary) ensureAttrs(ctx context.Context, names []string) error {
	b.attrMu.Lock()
	var missing []string
	for _, n := range names {
		if _, ok := b.attrs[n]; !ok {
			missing = append(missing, n)
		}
	}
	b.attrMu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	payload := wire.AppendAttrsRequest(nil, missing)
	status, resp, err := b.exchange(ctx, wire.OpAttrs, payload)
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return &WireError{Status: status, Message: wire.DecodeErrorPayload(resp)}
	}
	ids, err := wire.DecodeAttrsResponse(resp)
	if err != nil {
		return err
	}
	if len(ids) != len(missing) {
		return fmt.Errorf("client: attrs response has %d ids for %d names", len(ids), len(missing))
	}
	b.attrMu.Lock()
	for i, n := range missing {
		b.attrs[n] = ids[i]
		b.setIDName(ids[i], n)
	}
	b.attrMu.Unlock()
	return nil
}

// setIDName records id→name. Callers hold attrMu.
func (b *Binary) setIDName(id int, name string) {
	for len(b.idToName) <= id {
		b.idToName = append(b.idToName, "")
	}
	b.idToName[id] = name
}

// applyDelta folds a response's dictionary delta into the id→name map.
func (b *Binary) applyDelta(p []byte) (int, error) {
	b.attrMu.Lock()
	defer b.attrMu.Unlock()
	return wire.DecodeDictDelta(p, 0, func(id int, name string) {
		b.setIDName(id, name)
		b.attrs[name] = id
	})
}

// toEntity converts a Doc into an entity in the wire id space. The
// caller has already ensured every attribute name is registered.
func (b *Binary) toEntity(doc Doc) (*entity.Entity, error) {
	e := &entity.Entity{}
	b.attrMu.Lock()
	defer b.attrMu.Unlock()
	for name, v := range doc {
		id, ok := b.attrs[name]
		if !ok {
			return nil, fmt.Errorf("client: attribute %q not registered", name)
		}
		switch x := v.(type) {
		case nil:
			continue
		case int:
			e.Set(id, entity.Int(int64(x)))
		case int64:
			e.Set(id, entity.Int(x))
		case float64:
			e.Set(id, entity.Float(x))
		case string:
			e.Set(id, entity.Str(x))
		default:
			return nil, fmt.Errorf("client: attribute %q: unsupported value type %T", name, v)
		}
	}
	return e, nil
}

// toDoc converts a wire entity into a Doc via the id→name map.
func (b *Binary) toDoc(e *entity.Entity) (Doc, error) {
	doc := make(Doc, e.NumAttrs())
	b.attrMu.Lock()
	defer b.attrMu.Unlock()
	for _, f := range e.Fields() {
		if f.Attr >= len(b.idToName) || b.idToName[f.Attr] == "" {
			return nil, fmt.Errorf("client: response references unknown attribute id %d", f.Attr)
		}
		name := b.idToName[f.Attr]
		switch f.Value.Kind() {
		case entity.KindInt:
			doc[name] = f.Value.AsInt()
		case entity.KindFloat:
			doc[name] = f.Value.AsFloat()
		case entity.KindString:
			doc[name] = f.Value.AsString()
		}
	}
	return doc, nil
}

// docNames collects doc's attribute names into scratch.
func docNames(doc Doc, scratch []string) []string {
	scratch = scratch[:0]
	for name := range doc {
		scratch = append(scratch, name)
	}
	return scratch
}

// ---- public API ----

// Insert stores doc durably and returns its id. A nil error means the
// server acknowledged the write as applied and fsynced. Concurrent
// inserts share batch frames and group commits.
func (b *Binary) Insert(ctx context.Context, doc Doc) (ID, error) {
	res, err := b.writeOp(ctx, wire.BatchInsert, 0, doc)
	return res.id, err
}

// Update replaces a document durably. It reports whether id existed.
func (b *Binary) Update(ctx context.Context, id ID, doc Doc) (bool, error) {
	res, err := b.writeOp(ctx, wire.BatchUpdate, id, doc)
	return res.found, err
}

// Delete removes a document durably. It reports whether id existed.
func (b *Binary) Delete(ctx context.Context, id ID) (bool, error) {
	res, err := b.writeOp(ctx, wire.BatchDelete, id, nil)
	return res.found, err
}

// writeOp enqueues one mutation into the batcher and waits for its
// acknowledged result.
func (b *Binary) writeOp(ctx context.Context, kind byte, id ID, doc Doc) (opResult, error) {
	var rec []byte
	if doc != nil {
		if err := b.ensureAttrs(ctx, docNames(doc, nil)); err != nil {
			return opResult{}, err
		}
		e, err := b.toEntity(doc)
		if err != nil {
			return opResult{}, err
		}
		rec = e.Marshal(nil)
	}
	op := &pendingOp{kind: kind, id: id, rec: rec, res: make(chan opResult, 1)}
	b.bat.enqueue(op)
	select {
	case res := <-op.res:
		return res, res.err
	case <-ctx.Done():
		// The batch may still land; the result channel is buffered so
		// the batcher never blocks on an abandoned op.
		return opResult{}, ctx.Err()
	}
}

// InsertMany stores docs durably and returns their ids in order. The
// ops ride the shared batcher, so one call becomes few frames and fewer
// fsyncs. The first failed op's error is returned (later ops may still
// have been applied; inspect ids[i] != 0 for insert success).
func (b *Binary) InsertMany(ctx context.Context, docs []Doc) ([]ID, error) {
	// Register the union of attribute names in one round trip.
	seen := make(map[string]struct{}, 16)
	var names []string
	for _, d := range docs {
		for n := range d {
			if _, ok := seen[n]; !ok {
				seen[n] = struct{}{}
				names = append(names, n)
			}
		}
	}
	if err := b.ensureAttrs(ctx, names); err != nil {
		return nil, err
	}
	ops := make([]*pendingOp, len(docs))
	for i, d := range docs {
		e, err := b.toEntity(d)
		if err != nil {
			return nil, err
		}
		ops[i] = &pendingOp{kind: wire.BatchInsert, rec: e.Marshal(nil), res: make(chan opResult, 1)}
		b.bat.enqueue(ops[i])
	}
	ids := make([]ID, len(docs))
	var firstErr error
	for i, op := range ops {
		select {
		case res := <-op.res:
			ids[i] = res.id
			if res.err != nil && firstErr == nil {
				firstErr = res.err
			}
		case <-ctx.Done():
			return ids, ctx.Err()
		}
	}
	return ids, firstErr
}

// Get fetches one document. The boolean is false when id is unknown.
func (b *Binary) Get(ctx context.Context, id ID) (Doc, bool, error) {
	payload := binary.AppendUvarint(nil, uint64(id))
	status, resp, err := b.exchange(ctx, wire.OpGet, payload)
	if err != nil {
		return nil, false, err
	}
	if status != wire.StatusOK {
		return nil, false, &WireError{Status: status, Message: wire.DecodeErrorPayload(resp)}
	}
	off, err := b.applyDelta(resp)
	if err != nil {
		return nil, false, err
	}
	if off >= len(resp) {
		return nil, false, errors.New("client: truncated get response")
	}
	if resp[off] == 0 {
		return nil, false, nil
	}
	e, _, err := entity.Unmarshal(resp[off+1:])
	if err != nil {
		return nil, false, err
	}
	doc, err := b.toDoc(e)
	return doc, err == nil, err
}

// Query returns all documents instantiating at least one attribute.
// Unknown attribute names match nothing.
func (b *Binary) Query(ctx context.Context, attrs ...string) ([]Record, error) {
	recs, _, err := b.query(ctx, attrs, 0)
	return recs, err
}

// QueryTraced is Query with an inline server-side trace: the wire
// request carries the trace flag, and the server returns the query's
// full span tree (sampling bypassed) as JSON alongside the records.
// The trace is nil when the server is uninstrumented.
func (b *Binary) QueryTraced(ctx context.Context, attrs ...string) ([]Record, json.RawMessage, error) {
	return b.query(ctx, attrs, wire.QueryFlagTrace)
}

func (b *Binary) query(ctx context.Context, attrs []string, flags byte) ([]Record, json.RawMessage, error) {
	// Register so the server can resolve the ids; names the server has
	// never seen just match nothing, same as HTTP.
	if err := b.ensureAttrs(ctx, attrs); err != nil {
		return nil, nil, err
	}
	b.attrMu.Lock()
	payload := binary.AppendUvarint(nil, uint64(len(attrs)))
	for _, a := range attrs {
		payload = binary.AppendUvarint(payload, uint64(b.attrs[a]))
	}
	b.attrMu.Unlock()
	if flags != 0 {
		payload = append(payload, flags)
	}
	status, resp, err := b.exchange(ctx, wire.OpQuery, payload)
	if err != nil {
		return nil, nil, err
	}
	if status != wire.StatusOK {
		return nil, nil, &WireError{Status: status, Message: wire.DecodeErrorPayload(resp)}
	}
	off, err := b.applyDelta(resp)
	if err != nil {
		return nil, nil, err
	}
	n, off, err := wire.ReadUvarint(resp, off)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(resp)-off) {
		return nil, nil, errors.New("client: record count exceeds query response")
	}
	out := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		var id uint64
		if id, off, err = wire.ReadUvarint(resp, off); err != nil {
			return nil, nil, err
		}
		e, used, err := entity.Unmarshal(resp[off:])
		if err != nil {
			return nil, nil, err
		}
		off += used
		doc, err := b.toDoc(e)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, Record{ID: ID(id), Doc: doc})
	}
	var trace json.RawMessage
	if flags&wire.QueryFlagTrace != 0 {
		s, _, err := wire.ReadString(resp, off)
		if err != nil {
			return nil, nil, fmt.Errorf("client: traced query response missing trace: %w", err)
		}
		if s != "" {
			trace = json.RawMessage(s)
		}
	}
	return out, trace, nil
}

// Ping round-trips an empty frame — the binary health probe.
func (b *Binary) Ping(ctx context.Context) error {
	status, resp, err := b.exchange(ctx, wire.OpPing, nil)
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return &WireError{Status: status, Message: wire.DecodeErrorPayload(resp)}
	}
	return nil
}

// ---- write batching ----

// pendingOp is one queued mutation.
type pendingOp struct {
	kind byte
	id   ID     // update/delete target
	rec  []byte // marshaled entity (insert/update)
	res  chan opResult
}

type opResult struct {
	id    ID   // insert result
	found bool // update/delete result
	err   error
}

// batcher coalesces concurrent writes into batch frames. Natural
// batching: a batch flushes immediately when no batch is in flight,
// otherwise ops accumulate until the in-flight batch completes, the
// size/byte cap hits, or the linger timer fires.
type batcher struct {
	b        *Binary
	maxOps   int
	maxBytes int
	linger   time.Duration

	mu       sync.Mutex
	cur      []*pendingOp
	curBytes int
	inflight int
	timer    *time.Timer
}

func (t *batcher) enqueue(op *pendingOp) {
	t.mu.Lock()
	t.cur = append(t.cur, op)
	t.curBytes += len(op.rec) + 16
	var batch []*pendingOp
	if len(t.cur) >= t.maxOps || t.curBytes >= t.maxBytes || t.inflight == 0 {
		batch = t.take()
	} else if len(t.cur) == 1 {
		if t.timer == nil {
			t.timer = time.AfterFunc(t.linger, t.onLinger)
		} else {
			t.timer.Reset(t.linger)
		}
	}
	t.mu.Unlock()
	if batch != nil {
		go t.send(batch)
	}
}

// take claims the current batch and counts it in flight. Callers hold mu.
func (t *batcher) take() []*pendingOp {
	batch := t.cur
	t.cur = nil
	t.curBytes = 0
	t.inflight++
	return batch
}

func (t *batcher) onLinger() {
	t.mu.Lock()
	var batch []*pendingOp
	if len(t.cur) > 0 {
		batch = t.take()
	}
	t.mu.Unlock()
	if batch != nil {
		go t.send(batch)
	}
}

func (t *batcher) send(ops []*pendingOp) {
	t.b.sendBatch(ops)
	t.mu.Lock()
	t.inflight--
	var batch []*pendingOp
	if len(t.cur) > 0 && t.inflight == 0 {
		batch = t.take()
	}
	t.mu.Unlock()
	if batch != nil {
		go t.send(batch)
	}
}

// buildBatch encodes ops into an OpBatch payload.
func buildBatch(ops []*pendingOp) []byte {
	p := binary.AppendUvarint(nil, uint64(len(ops)))
	for _, op := range ops {
		p = append(p, op.kind)
		switch op.kind {
		case wire.BatchInsert:
			p = append(p, op.rec...)
		case wire.BatchUpdate:
			p = binary.AppendUvarint(p, uint64(op.id))
			p = append(p, op.rec...)
		case wire.BatchDelete:
			p = binary.AppendUvarint(p, uint64(op.id))
		}
	}
	return p
}

// sendBatch exchanges one batch and distributes per-op results,
// retrying only what the server provably did not apply: the whole
// batch after StatusRetry or a refused dial, the ResUnapplied suffix
// after a partial failure.
func (b *Binary) sendBatch(ops []*pendingOp) {
	ctx := context.Background()
	for attempt := 0; ; attempt++ {
		status, resp, xerr := b.batchOnce(ctx, ops)
		if xerr != nil {
			var de *dialError
			if errors.As(xerr, &de) && attempt < b.maxRetries && b.sleep(ctx, attempt) {
				continue // provably unapplied: no server ever saw it
			}
			failAll(ops, xerr)
			return
		}
		switch status {
		case wire.StatusOK:
			rest, perr := deliverResults(ops, resp)
			if perr != nil {
				failAll(ops, perr)
				return
			}
			if len(rest) == 0 {
				return
			}
			// Retry only the unapplied suffix.
			if attempt >= b.maxRetries || !b.sleep(ctx, attempt) {
				failAll(rest, &OpError{Code: wire.ResUnapplied, Message: "gave up after retries"})
				return
			}
			ops = rest
		case wire.StatusRetry:
			// Nothing applied (draining/overload): safe to retry whole.
			if attempt >= b.maxRetries || !b.sleep(ctx, attempt) {
				failAll(ops, &WireError{Status: status, Message: wire.DecodeErrorPayload(resp)})
				return
			}
		default:
			// StatusError (terminal) or StatusNotDurable (applied but not
			// provably fsynced — retrying could double-apply).
			failAll(ops, &WireError{Status: status, Message: wire.DecodeErrorPayload(resp)})
			return
		}
	}
}

// batchOnce performs one batch exchange on one connection.
func (b *Binary) batchOnce(ctx context.Context, ops []*pendingOp) (byte, []byte, error) {
	c, err := b.getConn(ctx)
	if err != nil {
		return 0, nil, err
	}
	return c.roundTrip(ctx, wire.OpBatch, buildBatch(ops), b.timeout)
}

// failAll completes every op with err.
func failAll(ops []*pendingOp, err error) {
	for _, op := range ops {
		op.res <- opResult{err: err}
	}
}

// deliverResults parses a batch response, completes every op with a
// final result, and returns the retryable ResUnapplied suffix.
func deliverResults(ops []*pendingOp, resp []byte) ([]*pendingOp, error) {
	n, off, err := wire.ReadUvarint(resp, 0)
	if err != nil {
		return nil, err
	}
	if n != uint64(len(ops)) {
		return nil, fmt.Errorf("client: batch response has %d results for %d ops", n, len(ops))
	}
	var rest []*pendingOp
	for _, op := range ops {
		if off >= len(resp) {
			return nil, errors.New("client: truncated batch response")
		}
		code := resp[off]
		off++
		switch code {
		case wire.ResOK:
			res := opResult{found: true}
			if op.kind == wire.BatchInsert {
				var id uint64
				if id, off, err = wire.ReadUvarint(resp, off); err != nil {
					return nil, err
				}
				if id > math.MaxInt64 {
					return nil, fmt.Errorf("client: implausible id %d in batch response", id)
				}
				res.id = ID(id)
			}
			op.res <- res
		case wire.ResNotFound:
			op.res <- opResult{found: false}
		case wire.ResFailed:
			var msg string
			if msg, off, err = wire.ReadString(resp, off); err != nil {
				return nil, err
			}
			op.res <- opResult{err: &OpError{Code: wire.ResFailed, Message: msg}}
		case wire.ResUnapplied:
			rest = append(rest, op)
		default:
			return nil, fmt.Errorf("client: unknown batch result code %d", code)
		}
	}
	return rest, nil
}
