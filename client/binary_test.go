package client

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cinderella"
	"cinderella/internal/entity"
	"cinderella/internal/wire"
)

// ---- scripted wire server: deterministic responses for retry tests ----

// scriptedServer speaks just enough of the wire protocol to hand each
// non-hello request frame to a test-provided handler. A handler
// returning status closeConn drops the connection instead of replying.
const closeConn byte = 0xFF

type scriptedServer struct {
	t      *testing.T
	ln     net.Listener
	token  func() uint64
	handle func(f wire.Frame) (status byte, payload []byte)
}

func newScriptedServer(t *testing.T, token func() uint64, handle func(wire.Frame) (byte, []byte)) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{t: t, ln: ln, token: token, handle: handle}
	go s.acceptLoop()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *scriptedServer) addr() string { return s.ln.Addr().String() }

func (s *scriptedServer) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(nc)
	}
}

func (s *scriptedServer) serve(nc net.Conn) {
	defer nc.Close()
	var buf []byte
	for {
		f, err := wire.ReadFrame(nc, &buf, wire.DefaultMaxFrame)
		if err != nil {
			return
		}
		var status byte
		var payload []byte
		if f.Kind == wire.OpHello {
			status, payload = wire.StatusOK, wire.AppendHello(nil, s.token())
		} else {
			status, payload = s.handle(f)
			if status == closeConn {
				return
			}
		}
		if _, err := nc.Write(wire.AppendFrame(nil, status, f.Seq, payload)); err != nil {
			return
		}
	}
}

// insertOp builds a pendingOp for an insert of a single int attribute.
func insertOp(attr int, val int64) *pendingOp {
	e := &entity.Entity{}
	e.Set(attr, entity.Int(val))
	return &pendingOp{kind: wire.BatchInsert, rec: e.Marshal(nil), res: make(chan opResult, 1)}
}

// decodeBatchOps parses an OpBatch payload into (kind, first-attr-value)
// pairs so tests can check exactly which ops a frame carried.
func decodeBatchOps(t *testing.T, p []byte) []int64 {
	t.Helper()
	n, off, err := wire.ReadUvarint(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var vals []int64
	var scratch entity.Entity
	for i := uint64(0); i < n; i++ {
		if p[off] != wire.BatchInsert {
			t.Fatalf("op %d kind %d, want insert", i, p[off])
		}
		off++
		used, err := entity.UnmarshalInto(&scratch, p[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += used
		v, ok := scratch.Get(0)
		if !ok {
			t.Fatalf("op %d has no attr 0", i)
		}
		vals = append(vals, v.AsInt())
	}
	return vals
}

func resOK(ids ...uint64) []byte {
	p := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		p = append(p, wire.ResOK)
		p = binary.AppendUvarint(p, id)
	}
	return p
}

func testBinary(t *testing.T, addr string, opts ...BinaryOption) *Binary {
	t.Helper()
	opts = append([]BinaryOption{
		WithBinaryBackoff(time.Millisecond),
		WithBinaryTimeout(5 * time.Second),
	}, opts...)
	b, err := NewBinary(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

// TestBinaryPartialFailureRetriesOnlySuffix is the batched-write
// partial-failure contract: after a batch response marks op1 failed and
// op2 unapplied, the client must resend ONLY op2 — op0 was applied and
// acked, op1 failed terminally.
func TestBinaryPartialFailureRetriesOnlySuffix(t *testing.T) {
	var batches atomic.Int64
	var mu sync.Mutex
	var frames [][]int64

	srv := newScriptedServer(t, func() uint64 { return 1 }, func(f wire.Frame) (byte, []byte) {
		if f.Kind != wire.OpBatch {
			return wire.StatusError, wire.AppendErrorPayload(nil, "unexpected opcode")
		}
		mu.Lock()
		frames = append(frames, decodeBatchOps(t, append([]byte(nil), f.Payload...)))
		mu.Unlock()
		switch batches.Add(1) {
		case 1:
			p := binary.AppendUvarint(nil, 3)
			p = append(p, wire.ResOK)
			p = binary.AppendUvarint(p, 11)
			p = append(p, wire.ResFailed)
			p = wire.AppendString(p, "boom")
			p = append(p, wire.ResUnapplied)
			return wire.StatusOK, p
		default:
			return wire.StatusOK, resOK(12)
		}
	})

	b := testBinary(t, srv.addr())
	ops := []*pendingOp{insertOp(0, 100), insertOp(0, 200), insertOp(0, 300)}
	b.sendBatch(ops)

	r0 := <-ops[0].res
	if r0.err != nil || r0.id != 11 {
		t.Fatalf("op0: %+v", r0)
	}
	r1 := <-ops[1].res
	var oe *OpError
	if !errors.As(r1.err, &oe) || oe.Code != wire.ResFailed || oe.Message != "boom" {
		t.Fatalf("op1: %v", r1.err)
	}
	r2 := <-ops[2].res
	if r2.err != nil || r2.id != 12 {
		t.Fatalf("op2 must succeed on retry: %+v", r2)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(frames) != 2 {
		t.Fatalf("sent %d batch frames, want 2", len(frames))
	}
	if len(frames[1]) != 1 || frames[1][0] != 300 {
		t.Fatalf("retry frame carried %v, want only the unapplied op [300]", frames[1])
	}
}

// TestBinaryStatusRetryResendsWholeBatch: StatusRetry means nothing was
// applied, so the whole batch goes again.
func TestBinaryStatusRetryResendsWholeBatch(t *testing.T) {
	var batches atomic.Int64
	srv := newScriptedServer(t, func() uint64 { return 1 }, func(f wire.Frame) (byte, []byte) {
		if batches.Add(1) == 1 {
			return wire.StatusRetry, wire.AppendErrorPayload(nil, "draining")
		}
		n, _, _ := wire.ReadUvarint(f.Payload, 0)
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = uint64(20 + i)
		}
		return wire.StatusOK, resOK(ids...)
	})

	b := testBinary(t, srv.addr())
	ops := []*pendingOp{insertOp(0, 1), insertOp(0, 2)}
	b.sendBatch(ops)
	for i, op := range ops {
		r := <-op.res
		if r.err != nil {
			t.Fatalf("op%d: %v", i, r.err)
		}
	}
	if got := batches.Load(); got != 2 {
		t.Fatalf("%d batch frames, want 2 (one retry)", got)
	}
}

// TestBinaryNotDurableIsNotRetried: StatusNotDurable means the batch
// may be applied — resending could double-apply, so the error surfaces.
func TestBinaryNotDurableIsNotRetried(t *testing.T) {
	var batches atomic.Int64
	srv := newScriptedServer(t, func() uint64 { return 1 }, func(f wire.Frame) (byte, []byte) {
		batches.Add(1)
		return wire.StatusNotDurable, wire.AppendErrorPayload(nil, "fsync failed")
	})

	b := testBinary(t, srv.addr())
	ops := []*pendingOp{insertOp(0, 1)}
	b.sendBatch(ops)
	r := <-ops[0].res
	var we *WireError
	if !errors.As(r.err, &we) || we.Status != wire.StatusNotDurable {
		t.Fatalf("want WireError(NotDurable), got %v", r.err)
	}
	if got := batches.Load(); got != 1 {
		t.Fatalf("%d batch frames, want 1 (no retry)", got)
	}
}

// TestBinaryRetriesAreBounded: endless StatusRetry eventually surfaces
// instead of looping forever.
func TestBinaryRetriesAreBounded(t *testing.T) {
	var batches atomic.Int64
	srv := newScriptedServer(t, func() uint64 { return 1 }, func(f wire.Frame) (byte, []byte) {
		batches.Add(1)
		return wire.StatusRetry, wire.AppendErrorPayload(nil, "busy")
	})

	b := testBinary(t, srv.addr(), WithBinaryRetries(2))
	ops := []*pendingOp{insertOp(0, 1)}
	b.sendBatch(ops)
	r := <-ops[0].res
	var we *WireError
	if !errors.As(r.err, &we) || we.Status != wire.StatusRetry {
		t.Fatalf("want surfaced retry error, got %v", r.err)
	}
	if got := batches.Load(); got != 3 { // 1 try + 2 retries
		t.Fatalf("%d batch frames, want 3", got)
	}
}

// TestBinaryTokenChangeInvalidatesAttrCache: a server restart (new
// session token on the next hello) must clear the cached name→id map —
// wire ids are session-scoped.
func TestBinaryTokenChangeInvalidatesAttrCache(t *testing.T) {
	var token atomic.Uint64
	token.Store(1)
	var attrReqs atomic.Int64
	var dropNext atomic.Bool
	srv := newScriptedServer(t, token.Load, func(f wire.Frame) (byte, []byte) {
		switch f.Kind {
		case wire.OpAttrs:
			attrReqs.Add(1)
			names, err := wire.DecodeAttrsRequest(f.Payload)
			if err != nil {
				return wire.StatusError, wire.AppendErrorPayload(nil, err.Error())
			}
			ids := make([]int, len(names))
			for i := range ids {
				ids[i] = i
			}
			return wire.StatusOK, wire.AppendAttrsResponse(nil, ids)
		case wire.OpPing:
			if dropNext.CompareAndSwap(true, false) {
				return closeConn, nil
			}
			return wire.StatusOK, nil
		}
		return wire.StatusError, wire.AppendErrorPayload(nil, "unexpected")
	})

	b := testBinary(t, srv.addr(), WithConns(1))
	ctx := context.Background()
	if err := b.ensureAttrs(ctx, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := b.ensureAttrs(ctx, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := attrReqs.Load(); got != 1 {
		t.Fatalf("%d attr requests, want 1 (cache hit)", got)
	}

	// Simulate a server restart: drop the connection, change the token.
	dropNext.Store(true)
	token.Store(2)
	b.Ping(ctx) // fails on the dropped conn, then redials and sees token 2

	if err := b.ensureAttrs(ctx, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := attrReqs.Load(); got != 2 {
		t.Fatalf("%d attr requests after restart, want 2 (cache invalidated)", got)
	}
}

// ---- end-to-end against the real wire server ----

func startWireServer(t *testing.T) (string, *wire.Server, *cinderella.DurableTable) {
	t.Helper()
	d, err := cinderella.OpenFile(filepath.Join(t.TempDir(), "t.wal"),
		cinderella.Config{Weight: 0.3, PartitionSizeLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.New(d, nil, wire.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		d.Close()
	})
	return ln.Addr().String(), srv, d
}

func TestBinaryEndToEnd(t *testing.T) {
	addr, _, _ := startWireServer(t)
	b := testBinary(t, addr)
	ctx := context.Background()

	id, err := b.Insert(ctx, Doc{"name": "camera", "aperture": 2.0, "zoom": int64(4)})
	if err != nil {
		t.Fatal(err)
	}
	doc, ok, err := b.Get(ctx, id)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if doc["name"] != "camera" || doc["aperture"] != 2.0 || doc["zoom"] != int64(4) {
		t.Fatalf("round trip mangled doc: %v", doc)
	}

	ok, err = b.Update(ctx, id, Doc{"name": "camera2", "wifi": int64(1)})
	if err != nil || !ok {
		t.Fatalf("update: ok=%v err=%v", ok, err)
	}
	doc, _, _ = b.Get(ctx, id)
	if doc["name"] != "camera2" || doc["wifi"] != int64(1) {
		t.Fatalf("update lost: %v", doc)
	}
	if _, ok := doc["aperture"]; ok {
		t.Fatalf("update is a replace; aperture should be gone: %v", doc)
	}

	recs, err := b.Query(ctx, "wifi")
	if err != nil || len(recs) != 1 || recs[0].ID != id {
		t.Fatalf("query: %v err=%v", recs, err)
	}

	ok, err = b.Delete(ctx, id)
	if err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := b.Get(ctx, id); ok {
		t.Fatal("deleted doc still readable")
	}
	if ok, err := b.Delete(ctx, id); err != nil || ok {
		t.Fatalf("double delete: ok=%v err=%v", ok, err)
	}
	if err := b.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryConcurrentInsertsShareBatches(t *testing.T) {
	addr, _, d := startWireServer(t)
	b := testBinary(t, addr, WithBatch(32, 0, 2*time.Millisecond))
	ctx := context.Background()

	const n = 120
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Insert(ctx, Doc{"k": int64(i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if got := d.Len(); got != n {
		t.Fatalf("table has %d docs, want %d", got, n)
	}
	recs, err := b.Query(ctx, "k")
	if err != nil || len(recs) != n {
		t.Fatalf("query returned %d, want %d (err %v)", len(recs), n, err)
	}
}

func TestBinaryInsertMany(t *testing.T) {
	addr, _, d := startWireServer(t)
	b := testBinary(t, addr, WithBatch(16, 0, 0))
	ctx := context.Background()

	docs := make([]Doc, 50)
	for i := range docs {
		docs[i] = Doc{"v": int64(i), "tag": "bulk"}
	}
	ids, err := b.InsertMany(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id == 0 {
			t.Fatalf("doc %d has no id", i)
		}
	}
	if got := d.Len(); got != 50 {
		t.Fatalf("table has %d docs, want 50", got)
	}
	// Durability: acked means fsynced.
	if d.DurableLSN() < d.LastLSN() {
		t.Fatalf("acked writes not durable: %d < %d", d.DurableLSN(), d.LastLSN())
	}
}
