package client

import (
	"context"
	"encoding/json"
	"net"
	"path/filepath"
	"testing"
	"time"

	"cinderella"
	"cinderella/internal/obs"
	"cinderella/internal/wire"
)

// startInstrumentedWireServer is startWireServer with an obs registry
// wired through, so OpQuery's trace flag has a tracer to talk to.
func startInstrumentedWireServer(t *testing.T) (string, *obs.Registry) {
	t.Helper()
	reg := obs.New(obs.Options{})
	d, err := cinderella.OpenFile(filepath.Join(t.TempDir(), "t.wal"),
		cinderella.Config{Weight: 0.3, PartitionSizeLimit: 100, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.New(d, nil, wire.Config{Obs: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		d.Close()
	})
	return ln.Addr().String(), reg
}

// TestBinaryQueryTraced round-trips OpQuery's trailing trace flag: the
// traced call returns records plus an inline span tree, while the
// untraced call's response shape is byte-identical to the pre-flag
// protocol.
func TestBinaryQueryTraced(t *testing.T) {
	addr, reg := startInstrumentedWireServer(t)
	b := testBinary(t, addr)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := b.Insert(ctx, Doc{"rpm": int64(7200 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Insert(ctx, Doc{"wifi": int64(1)}); err != nil {
		t.Fatal(err)
	}

	recs, trace, err := b.QueryTraced(ctx, "rpm")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("traced query returned %d records, want 3", len(recs))
	}
	if trace == nil {
		t.Fatal("traced query returned no span from an instrumented server")
	}
	var sp obs.QuerySpan
	if err := json.Unmarshal(trace, &sp); err != nil {
		t.Fatalf("trace is not a span tree: %v\n%s", err, trace)
	}
	if sp.Kind != obs.KindSelect || !sp.Sampled {
		t.Fatalf("span = kind %q sampled %v, want forced select", sp.Kind, sp.Sampled)
	}
	if sp.EntitiesReturned != 3 || len(sp.Parts) == 0 {
		t.Fatalf("span not filled: %+v", sp)
	}

	// The untraced path through the same connection still works and
	// returns the same records — the flag byte is strictly additive.
	plain, err := b.Query(ctx, "rpm")
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(recs) {
		t.Fatalf("plain query returned %d records, traced returned %d", len(plain), len(recs))
	}

	// Forced wire traces land in normal retention too.
	if got := reg.Counter(obs.CTraceSampled); got < 1 {
		t.Fatalf("CTraceSampled = %d, want >= 1", got)
	}
	if heat := reg.HeatSnapshot(); len(heat) == 0 {
		t.Fatal("no heat rows after a traced wire query")
	}
}

// TestBinaryQueryTracedUninstrumented pins the degraded mode: a server
// with no registry answers the trace flag with an empty trace, and the
// client surfaces that as nil rather than an error.
func TestBinaryQueryTracedUninstrumented(t *testing.T) {
	addr, _, _ := startWireServer(t)
	b := testBinary(t, addr)
	ctx := context.Background()
	if _, err := b.Insert(ctx, Doc{"rpm": int64(1)}); err != nil {
		t.Fatal(err)
	}
	recs, trace, err := b.QueryTraced(ctx, "rpm")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if trace != nil {
		t.Fatalf("uninstrumented server produced a trace: %s", trace)
	}
}
