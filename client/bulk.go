package client

import (
	"context"
	"fmt"
)

// BulkOp is one operation in a /v1/bulk request. Op is "insert",
// "update", or "delete"; insert needs Doc, update needs ID+Doc, delete
// needs ID.
type BulkOp struct {
	Op  string `json:"op"`
	ID  ID     `json:"id,omitempty"`
	Doc Doc    `json:"doc,omitempty"`
}

// BulkResult is one operation's outcome from a bulk request. Exactly
// one of ID / Updated / Deleted / Error is meaningful, keyed by the
// op's kind. Unapplied marks ops the server never attempted because an
// earlier op failed — only those are safe to resend; everything before
// the failure is applied and durable once the call returns nil.
type BulkResult struct {
	ID        ID     `json:"id,omitempty"`
	Updated   *bool  `json:"updated,omitempty"`
	Deleted   *bool  `json:"deleted,omitempty"`
	Error     string `json:"error,omitempty"`
	Unapplied bool   `json:"unapplied,omitempty"`
}

// Bulk sends a batch of mutations in one request: the JSON fallback for
// batched writes when the binary protocol is unavailable. Ops apply in
// order under one group-commit ack. A nil error means the response
// arrived; inspect each result for per-op outcomes (partial failure
// does not fail the call).
func (c *Client) Bulk(ctx context.Context, ops []BulkOp) ([]BulkResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	var resp struct {
		Results []BulkResult `json:"results"`
	}
	req := map[string]any{"ops": ops}
	if err := c.do(ctx, "POST", "/v1/bulk", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(ops) {
		return nil, fmt.Errorf("client: bulk response has %d results for %d ops", len(resp.Results), len(ops))
	}
	return resp.Results, nil
}
