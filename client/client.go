// Package client is the typed Go client for cinderellad (see
// internal/server for the wire format). One Client is safe for
// concurrent use and reuses connections through a shared
// http.Transport; every request gets a per-call deadline, and requests
// the server provably did not apply — 503 admission rejections and
// connection-refused dials — are retried with bounded exponential
// backoff, honouring Retry-After.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"cinderella"
)

// Doc, ID, Record, and QueryReport mirror the embedded API so code can
// move between the library and the service without translation.
type (
	Doc         = cinderella.Doc
	ID          = cinderella.ID
	QueryReport = cinderella.QueryReport
)

// Record is one query hit.
type Record struct {
	ID  ID  `json:"id"`
	Doc Doc `json:"doc"`
}

// StatusError is a non-2xx response from the server.
type StatusError struct {
	Code    int
	Message string

	retryAfter int // Retry-After seconds; transport hint, not contract
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cinderellad: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// Client talks to one cinderellad.
type Client struct {
	base       string
	hc         *http.Client
	timeout    time.Duration
	maxRetries int
	backoff    time.Duration
	maxBackoff time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithTimeout sets the per-request deadline (default 10s).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithRetries bounds retry attempts after the first try (default 4; 0
// disables retries).
func WithRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the initial retry backoff (default 25ms, doubling
// per attempt, capped at 1s or the server's Retry-After).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithHTTPClient substitutes the underlying http.Client (tests,
// custom transports).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New returns a client for baseURL (e.g. "http://127.0.0.1:8263").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: bad base URL %q", baseURL)
	}
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         &http.Client{},
		timeout:    10 * time.Second,
		maxRetries: 4,
		backoff:    25 * time.Millisecond,
		maxBackoff: time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Insert stores doc durably on the server and returns its id. A nil
// error means the server acknowledged the write as fsynced.
func (c *Client) Insert(ctx context.Context, doc Doc) (ID, error) {
	var resp struct {
		ID uint64 `json:"id"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/insert", map[string]any{"doc": doc}, &resp)
	return ID(resp.ID), err
}

// Get fetches one document. The boolean is false when id is unknown.
func (c *Client) Get(ctx context.Context, id ID) (Doc, bool, error) {
	var resp struct {
		Doc map[string]any `json:"doc"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/doc?id="+strconv.FormatUint(uint64(id), 10), nil, &resp)
	var se *StatusError
	if errors.As(err, &se) && se.Code == http.StatusNotFound {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	doc, err := fromWire(resp.Doc)
	return doc, err == nil, err
}

// Update replaces a document durably. It reports whether id existed.
func (c *Client) Update(ctx context.Context, id ID, doc Doc) (bool, error) {
	var resp struct {
		Updated bool `json:"updated"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/update", map[string]any{"id": uint64(id), "doc": doc}, &resp)
	return resp.Updated, err
}

// Delete removes a document durably. It reports whether id existed.
func (c *Client) Delete(ctx context.Context, id ID) (bool, error) {
	var resp struct {
		Deleted bool `json:"deleted"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/delete", map[string]any{"id": uint64(id)}, &resp)
	return resp.Deleted, err
}

// Query returns all documents instantiating at least one attribute.
func (c *Client) Query(ctx context.Context, attrs ...string) ([]Record, error) {
	recs, _, _, err := c.query(ctx, "/v1/query", attrs, false)
	return recs, err
}

// QueryWithReport also returns the server-side pruning report.
func (c *Client) QueryWithReport(ctx context.Context, attrs ...string) ([]Record, QueryReport, error) {
	recs, rep, _, err := c.query(ctx, "/v1/query-report", attrs, false)
	return recs, rep, err
}

// QueryTraced is QueryWithReport with an inline server-side trace
// (?trace=1): the server bypasses trace sampling and returns the
// query's full span tree — per-partition scan stats, prune rationale,
// per-shard children — as raw JSON. The trace is nil when the server is
// uninstrumented.
func (c *Client) QueryTraced(ctx context.Context, attrs ...string) ([]Record, QueryReport, json.RawMessage, error) {
	return c.query(ctx, "/v1/query-report", attrs, true)
}

func (c *Client) query(ctx context.Context, path string, attrs []string, trace bool) ([]Record, QueryReport, json.RawMessage, error) {
	var resp struct {
		Records []struct {
			ID  uint64         `json:"id"`
			Doc map[string]any `json:"doc"`
		} `json:"records"`
		Report QueryReport     `json:"report"`
		Trace  json.RawMessage `json:"trace"`
	}
	q := path + "?attrs=" + url.QueryEscape(strings.Join(attrs, ","))
	if trace {
		q += "&trace=1"
	}
	if err := c.do(ctx, http.MethodGet, q, nil, &resp); err != nil {
		return nil, QueryReport{}, nil, err
	}
	out := make([]Record, len(resp.Records))
	for i, r := range resp.Records {
		doc, err := fromWire(r.Doc)
		if err != nil {
			return nil, QueryReport{}, nil, err
		}
		out[i] = Record{ID: ID(r.ID), Doc: doc}
	}
	return out, resp.Report, resp.Trace, nil
}

// Partitions returns the server's current partitioning.
func (c *Client) Partitions(ctx context.Context) ([]cinderella.PartitionStat, error) {
	var resp struct {
		Partitions []cinderella.PartitionStat `json:"partitions"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/partitions", nil, &resp)
	return resp.Partitions, err
}

// Compact durably merges underfilled partitions below threshold and
// returns how many merges ran.
func (c *Client) Compact(ctx context.Context, threshold float64) (int, error) {
	var resp struct {
		Merged int `json:"merged"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/compact", map[string]any{"threshold": threshold}, &resp)
	return resp.Merged, err
}

// Checkpoint compacts the server's WAL to the live contents.
func (c *Client) Checkpoint(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/checkpoint", map[string]any{}, nil)
}

// Health describes the server's liveness.
type Health struct {
	Status     string `json:"status"`
	Docs       int    `json:"docs"`
	DurableLSN uint64 `json:"durable_lsn"`
	LastLSN    uint64 `json:"last_lsn"`
}

// Health probes /v1/health (never queued server-side, so it answers
// even under full admission load or drain).
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/v1/health", nil, &h)
	return h, err
}

// do runs one request with deadline, decoding, and the retry loop. The
// body is marshalled once so retries resend identical bytes.
func (c *Client) do(ctx context.Context, method, path string, body, into any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, payload, into)
		if err == nil {
			return nil
		}
		lastErr = err
		retry, wait := c.retryable(method, err, attempt)
		if !retry || attempt >= c.maxRetries {
			return lastErr
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// once performs a single HTTP exchange under the per-request deadline.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, into any) error {
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) // drain so the connection is reused
		resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		se := &StatusError{Code: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil {
			se.Message = e.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			se.retryAfter, _ = strconv.Atoi(ra)
		}
		return se
	}
	if into == nil {
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// retryable decides whether err is safe to retry — i.e. the server
// cannot have applied the operation — and how long to wait first.
func (c *Client) retryable(method string, err error, attempt int) (bool, time.Duration) {
	wait := c.backoff << attempt
	if wait > c.maxBackoff {
		wait = c.maxBackoff
	}
	var se *StatusError
	if errors.As(err, &se) {
		// 503 means admission rejection or drain: the op was never
		// applied. Everything else is a real answer — don't retry.
		if se.Code != http.StatusServiceUnavailable {
			return false, 0
		}
		if se.retryAfter > 0 {
			if ra := time.Duration(se.retryAfter) * time.Second; ra < wait {
				wait = ra
			}
		}
		return true, wait
	}
	// Transport errors. Reads are idempotent: always retry. Mutations
	// retry only when the request provably never reached a server
	// (connection refused during dial); a mid-flight failure may have
	// applied the op, so surface it instead.
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false, 0
	}
	if method == http.MethodGet {
		return true, wait
	}
	if strings.Contains(err.Error(), "connection refused") {
		return true, wait
	}
	return false, 0
}

// fromWire converts a decoded JSON document (json.Number values) into a
// Doc with int64/float64/string values.
func fromWire(obj map[string]any) (Doc, error) {
	doc := make(Doc, len(obj))
	for k, v := range obj {
		switch x := v.(type) {
		case json.Number:
			if i, err := strconv.ParseInt(x.String(), 10, 64); err == nil {
				doc[k] = i
			} else if f, err := x.Float64(); err == nil {
				doc[k] = f
			} else {
				return nil, fmt.Errorf("client: attribute %q: bad number %q", k, x.String())
			}
		case string:
			doc[k] = x
		default:
			return nil, fmt.Errorf("client: attribute %q: unexpected wire type %T", k, v)
		}
	}
	return doc, nil
}
