package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestClientRetriesOn503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "admission queue full"})
			return
		}
		json.NewEncoder(w).Encode(map[string]uint64{"id": 7})
	}))
	defer ts.Close()

	c, err := New(ts.URL, WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Insert(context.Background(), Doc{"a": int64(1)})
	if err != nil {
		t.Fatalf("insert should have survived two 503s: %v", err)
	}
	if id != 7 || calls.Load() != 3 {
		t.Fatalf("id=%d calls=%d, want 7 and 3", id, calls.Load())
	}
}

func TestClientRetriesAreBounded(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
	}))
	defer ts.Close()

	c, _ := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	_, err := c.Insert(context.Background(), Doc{"a": int64(1)})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want surfaced 503, got %v", err)
	}
	if got := calls.Load(); got != 3 { // 1 try + 2 retries
		t.Fatalf("made %d calls, want 3", got)
	}
}

func TestClientDoesNotRetryRealErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "nope"})
	}))
	defer ts.Close()

	c, _ := New(ts.URL, WithBackoff(time.Millisecond))
	_, err := c.Insert(context.Background(), Doc{"a": int64(1)})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("want 400 surfaced, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried (%d calls)", calls.Load())
	}
}

func TestClientRetriesConnectionRefused(t *testing.T) {
	// Reserve a port, then close the listener: connect must be refused.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	c, _ := New(url, WithRetries(2), WithBackoff(time.Millisecond))
	start := time.Now()
	_, err := c.Insert(context.Background(), Doc{"a": int64(1)})
	if err == nil {
		t.Fatal("insert against dead server succeeded")
	}
	// 1 try + 2 retries with 1ms/2ms backoff: the retry loop must have
	// actually waited.
	if time.Since(start) < 3*time.Millisecond {
		t.Fatal("no backoff observed")
	}
}

func TestClientPerRequestDeadline(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer func() { close(release); ts.Close() }()

	c, _ := New(ts.URL, WithTimeout(30*time.Millisecond), WithRetries(0))
	start := time.Now()
	_, _, err := c.QueryWithReport(context.Background(), "a")
	if err == nil {
		t.Fatal("hung request returned nil error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline not enforced (took %v)", d)
	}
}

func TestClientBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/relative"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}
