// Command cinderella-bench regenerates the paper's evaluation artifacts
// (Figures 4–8, Table I, and the EFFICIENCY comparison) and prints the
// same rows/series the paper reports.
//
// Usage:
//
//	cinderella-bench [-exp all|fig4|fig5|fig6|fig7|fig8|tab1|efficiency]
//	                 [-entities N] [-sf F] [-seed S]
//
// The defaults reproduce the paper's scale (100 000 DBpedia-like
// entities); use -entities to run faster at smaller scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cinderella/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig4, fig5, fig6, fig7, fig8, tab1, efficiency, cache, churn")
	entities := flag.Int("entities", 100000, "DBpedia-like entity count")
	sf := flag.Float64("sf", 0.02, "TPC-H-style scale factor for tab1")
	seed := flag.Int64("seed", 1, "PRNG seed")
	flag.Parse()

	o := experiments.Options{Entities: *entities, Seed: *seed, TPCHSF: *sf}

	run := func(name string, f func()) {
		start := time.Now()
		f()
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	any := false
	want := func(name string) bool {
		if *exp == "all" || *exp == name {
			any = true
			return true
		}
		return false
	}

	if want("fig4") {
		run("fig4", func() { experiments.Fig4(o).Print(os.Stdout) })
	}
	if want("fig5") {
		run("fig5", func() { experiments.Fig5(o).Print(os.Stdout) })
	}
	if want("fig6") {
		run("fig6", func() { experiments.Fig6(o).Print(os.Stdout) })
	}
	if want("fig7") {
		run("fig7", func() { experiments.Fig7(o).Print(os.Stdout) })
	}
	if want("fig8") {
		run("fig8", func() { experiments.Fig8(o).Print(os.Stdout) })
	}
	if want("tab1") {
		run("tab1", func() { experiments.TableI(o).Print(os.Stdout) })
	}
	if want("efficiency") {
		run("efficiency", func() { experiments.Efficiency(o).Print(os.Stdout) })
	}
	if want("churn") {
		run("churn", func() { experiments.Churn(o).Print(os.Stdout) })
	}
	if want("cache") {
		run("cache", func() { experiments.CacheLocality(o).Print(os.Stdout) })
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
