// Command cinderella-bench regenerates the paper's evaluation artifacts
// (Figures 4–8, Table I, and the EFFICIENCY comparison) and prints the
// same rows/series the paper reports.
//
// Usage:
//
//	cinderella-bench [-exp all|fig4|fig5|fig6|fig7|fig8|tab1|efficiency|hotpath|obs|server|shard|read|scan|trace|recluster|tier]
//	                 [-entities N] [-sf F] [-seed S] [-json FILE] [-obs :PORT]
//	                 [-allow-serial] [-cpuprofile FILE] [-memprofile FILE]
//
// The defaults reproduce the paper's scale (100 000 DBpedia-like
// entities); use -entities to run faster at smaller scale.
//
// The hotpath experiment benchmarks the fused rating kernel, the insert
// path, and the serial-vs-parallel query scan; -json writes its result as
// a machine-readable baseline (the repo tracks one in BENCH_hotpath.json)
// so successive PRs can compare trajectories. Because hotpath's headline
// number is a serial-vs-parallel comparison, it refuses to run with
// GOMAXPROCS < 2 (exit 2) unless -allow-serial is given — a baseline
// recorded on a serial box would silently report speedup 1.0x. The obs
// experiment measures the telemetry layer's overhead (instrumented vs.
// uninstrumented; the repo tracks BENCH_obs.json). The shard experiment
// measures write-path scaling across 1/2/4/8 hash-routed shards (the
// repo tracks BENCH_shard.json). The read experiment races a mixed
// 8-writer/8-reader workload to compare writer tail latency between
// lock-free snapshot reads and the historical RWMutex read path, and
// reports the fraction of record decodes the synopsis sidecar avoids
// (the repo tracks BENCH_read.json). The scan experiment measures the
// word-parallel bitmap scan kernel against the per-record sidecar
// baseline on the selective query bucket, checks result equivalence,
// and verifies a fully pruned frozen partition charges zero cold bytes
// (the repo tracks BENCH_scan.json). With -obs :PORT the process serves the
// ops endpoint (/metrics, /debug/vars, /debug/pprof) while experiments
// run. -cpuprofile and -memprofile write pprof profiles of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cinderella/internal/experiments"
	"cinderella/internal/obs"
)

var knownExps = []string{
	"all", "fig4", "fig5", "fig6", "fig7", "fig8", "tab1",
	"efficiency", "cache", "churn", "hotpath", "obs", "server", "shard",
	"read", "scan", "trace", "recluster", "tier",
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig4, fig5, fig6, fig7, fig8, tab1, efficiency, cache, churn, hotpath, obs, server, shard, read, scan, trace, recluster, tier")
	entities := flag.Int("entities", 100000, "DBpedia-like entity count")
	sf := flag.Float64("sf", 0.02, "TPC-H-style scale factor for tab1")
	seed := flag.Int64("seed", 1, "PRNG seed")
	jsonPath := flag.String("json", "", "write the hotpath/obs/server result as JSON to this file")
	obsAddr := flag.String("obs", "", "serve the ops endpoint on this address (e.g. :8080) while running")
	allowSerial := flag.Bool("allow-serial", false, "let hotpath run with GOMAXPROCS < 2 (its serial-vs-parallel comparison degenerates to 1.0x)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the experiments finish) to this file")
	flag.Parse()

	// Validate up front: a typo'd -exp must fail before minutes of data
	// generation, not after.
	known := false
	for _, k := range knownExps {
		known = known || k == *exp
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %v)\n", *exp, knownExps)
		flag.Usage()
		os.Exit(2)
	}
	if *entities <= 0 {
		fmt.Fprintf(os.Stderr, "-entities must be positive, got %d\n", *entities)
		os.Exit(2)
	}
	if *sf <= 0 {
		fmt.Fprintf(os.Stderr, "-sf must be positive, got %v\n", *sf)
		os.Exit(2)
	}
	// hotpath's headline number is a serial-vs-parallel comparison; a
	// baseline recorded at GOMAXPROCS=1 would report select_speedup
	// ~1.0x and poison trajectory comparisons. Fail fast, before any
	// experiment burns minutes of data generation.
	if *exp == "all" || *exp == "hotpath" {
		if procs := runtime.GOMAXPROCS(0); procs < 2 && !*allowSerial {
			fmt.Fprintf(os.Stderr,
				"hotpath: GOMAXPROCS=%d < 2 — the serial-vs-parallel comparison is degenerate; rerun with -allow-serial to record anyway\n", procs)
			os.Exit(2)
		}
	}

	// Profiling covers the whole experiment run: the bitmap/sidecar scan
	// phases are where -exp scan spends its time, so -cpuprofile on that
	// experiment profiles the kernel directly.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			fmt.Printf("wrote %s\n", *memProfile)
		}()
	}

	o := experiments.Options{Entities: *entities, Seed: *seed, TPCHSF: *sf}
	if *obsAddr != "" {
		reg := obs.New(obs.Options{})
		o.Obs = reg
		go func() {
			if err := reg.Serve(*obsAddr); err != nil {
				fmt.Fprintf(os.Stderr, "obs endpoint: %v\n", err)
			}
		}()
		fmt.Printf("ops endpoint on %s (/metrics /debug/vars /debug/pprof)\n\n", *obsAddr)
	}

	writeJSON := func(v any) {
		if *jsonPath == "" {
			return
		}
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			panic(err)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	run := func(name string, f func()) {
		start := time.Now()
		f()
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool {
		return *exp == "all" || *exp == name
	}

	if want("fig4") {
		run("fig4", func() { experiments.Fig4(o).Print(os.Stdout) })
	}
	if want("fig5") {
		run("fig5", func() { experiments.Fig5(o).Print(os.Stdout) })
	}
	if want("fig6") {
		run("fig6", func() { experiments.Fig6(o).Print(os.Stdout) })
	}
	if want("fig7") {
		run("fig7", func() { experiments.Fig7(o).Print(os.Stdout) })
	}
	if want("fig8") {
		run("fig8", func() { experiments.Fig8(o).Print(os.Stdout) })
	}
	if want("tab1") {
		run("tab1", func() { experiments.TableI(o).Print(os.Stdout) })
	}
	if want("efficiency") {
		run("efficiency", func() { experiments.Efficiency(o).Print(os.Stdout) })
	}
	if want("churn") {
		run("churn", func() { experiments.Churn(o).Print(os.Stdout) })
	}
	if want("cache") {
		run("cache", func() { experiments.CacheLocality(o).Print(os.Stdout) })
	}
	if want("hotpath") {
		run("hotpath", func() {
			r := experiments.Hotpath(o)
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
	if want("obs") {
		run("obs", func() {
			r := experiments.ObsOverhead(o)
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
	if want("server") {
		run("server", func() {
			r := experiments.ServerBench(o)
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
	if want("shard") {
		run("shard", func() {
			r := experiments.ShardBench(o)
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
	if want("read") {
		run("read", func() {
			r := experiments.ReadBench(o)
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
	if want("scan") {
		run("scan", func() {
			r := experiments.ScanBench(o)
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
	if want("trace") {
		run("trace", func() {
			r := experiments.TraceBench(o)
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
	if want("recluster") {
		run("recluster", func() {
			r, err := experiments.ReclusterBench(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "recluster: %v\n", err)
				os.Exit(1)
			}
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
	if want("tier") {
		run("tier", func() {
			r, err := experiments.TierBench(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tier: %v\n", err)
				os.Exit(1)
			}
			r.Print(os.Stdout)
			writeJSON(r)
		})
	}
}
