// Command cinderella-load loads a data set — synthetic irregular data by
// default, or newline-delimited JSON via -json — into a
// Cinderella-partitioned universal table and dumps the resulting
// partitioning: partition sizes, attribute counts, sparseness, and the
// pruning behaviour of a few probe queries.
//
// Usage:
//
//	cinderella-load [-entities N] [-w W] [-b B] [-json FILE]
//	                [-strategy cinderella|universal|hash|roundrobin|schemaexact]
//	                [-obs :PORT] [-hold]
//
// With -obs the process serves the live ops endpoint (Prometheus
// /metrics, /debug/vars, /debug/pprof) while loading and probing; -hold
// keeps it serving after the report so the endpoint can be inspected:
//
//	cinderella-load -obs :8080 -hold &
//	curl localhost:8080/metrics
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/datagen"
	"cinderella/internal/entity"
	"cinderella/internal/metrics"
	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
)

// loadJSONL reads flat JSON objects (one per line) into a data set using
// the given dictionary.
func loadJSONL(path string, dict *entity.Dictionary) (*datagen.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds := &datagen.Dataset{Dict: dict}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		e := &entity.Entity{}
		for k, v := range obj {
			switch x := v.(type) {
			case float64:
				e.Set(dict.ID(k), entity.Float(x))
			case string:
				e.Set(dict.ID(k), entity.Str(x))
			case bool:
				n := int64(0)
				if x {
					n = 1
				}
				e.Set(dict.ID(k), entity.Int(n))
			case nil:
				// skip
			default:
				return nil, fmt.Errorf("line %d: attribute %q has non-scalar value", line, k)
			}
		}
		ds.Entities = append(ds.Entities, e)
	}
	return ds, sc.Err()
}

func main() {
	entities := flag.Int("entities", 20000, "entity count (synthetic data)")
	w := flag.Float64("w", 0.2, "Cinderella weight")
	b := flag.Int64("b", 500, "partition size limit (entities)")
	strategy := flag.String("strategy", "cinderella", "partitioning strategy")
	seed := flag.Int64("seed", 1, "PRNG seed")
	jsonl := flag.String("json", "", "load newline-delimited JSON from this file instead of synthetic data")
	obsAddr := flag.String("obs", "", "serve the ops endpoint on this address (e.g. :8080)")
	hold := flag.Bool("hold", false, "with -obs: keep serving after the report until interrupted")
	flag.Parse()

	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.New(obs.Options{})
		go func() {
			if err := reg.Serve(*obsAddr); err != nil {
				fmt.Fprintf(os.Stderr, "obs endpoint: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("ops endpoint on %s (/metrics /debug/vars /debug/pprof)\n", *obsAddr)
	}

	var ds *datagen.Dataset
	if *jsonl != "" {
		var err error
		ds, err = loadJSONL(*jsonl, entity.NewDictionary())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		var err error
		ds, err = datagen.Generate(datagen.Config{NumEntities: *entities, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ds.Shuffle(*seed + 1)
	}

	var assigner core.Assigner
	switch *strategy {
	case "cinderella":
		assigner = core.NewCinderella(core.Config{Weight: *w, MaxSize: *b})
	case "universal":
		assigner = core.NewSingle(core.SizeCount)
	case "hash":
		assigner = core.NewHash(16, core.SizeCount)
	case "roundrobin":
		assigner = core.NewRoundRobin(*b, core.SizeCount)
	case "schemaexact":
		assigner = core.NewSchemaExact(0, core.SizeCount)
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	tbl := table.New(table.Config{Dict: ds.Dict, Partitioner: assigner, Obs: reg})
	start := time.Now()
	for _, e := range ds.Entities {
		tbl.Insert(e)
	}
	loadTime := time.Since(start)

	fmt.Printf("loaded %d entities in %v (%s, w=%.2f, B=%d)\n",
		tbl.Len(), loadTime.Round(time.Millisecond), *strategy, *w, *b)
	fmt.Printf("data set sparseness: %.3f\n", ds.Sparseness())
	fmt.Printf("partitions: %d\n\n", tbl.NumPartitions())

	fmt.Printf("%-6s %10s %10s %8s %12s\n", "part", "entities", "attrs", "pages", "sparseness")
	shown := 0
	for _, pv := range tbl.Partitions() {
		if shown >= 25 {
			fmt.Printf("… (%d more partitions)\n", tbl.NumPartitions()-shown)
			break
		}
		sp := metrics.Sparseness(tbl.MemberSynopses(pv.ID))
		fmt.Printf("%-6d %10d %10d %8d %12.3f\n", pv.ID, pv.Entities, pv.Synopsis.Len(), pv.Pages, sp)
		shown++
	}

	// Probe queries: one common, one medium, one rare attribute.
	fmt.Printf("\nprobe queries (OR of attributes; pruning report)\n")
	for _, name := range []string{"universal_00", "common_05", "rare_50"} {
		id, ok := ds.Dict.Lookup(name)
		if !ok {
			continue
		}
		tbl.Stats().Reset()
		start := time.Now()
		_, rep := tbl.SelectWithReport(synopsis.Of(id))
		d := time.Since(start)
		_, _, bytes, _, _ := tbl.Stats().Snapshot()
		fmt.Printf("  %-14s rows=%-6d touched=%-4d pruned=%-4d read=%dKB time=%v\n",
			name, rep.EntitiesReturned, rep.PartitionsTouched, rep.PartitionsPruned,
			bytes/1024, d.Round(time.Microsecond))
	}

	if reg != nil {
		winEff, winN := reg.WindowEfficiency()
		fmt.Printf("\ntelemetry: efficiency=%.4f (window %.4f over %d queries) "+
			"ratings=%d splits=%d partitions=%d trace-events=%d\n",
			reg.Efficiency(), winEff, winN,
			reg.Counter(obs.CRatings), reg.Counter(obs.CSplits),
			reg.Partitions(), reg.TraceSeq())
		if *hold {
			fmt.Printf("holding; ops endpoint stays on %s (interrupt to exit)\n", *obsAddr)
			select {}
		}
	}
}
