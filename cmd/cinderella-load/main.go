// Command cinderella-load loads a data set — synthetic irregular data by
// default, or newline-delimited JSON via -json — into a
// Cinderella-partitioned universal table and dumps the resulting
// partitioning: partition sizes, attribute counts, sparseness, and the
// pruning behaviour of a few probe queries.
//
// Usage:
//
//	cinderella-load [-entities N] [-w W] [-b B] [-json FILE]
//	                [-strategy cinderella|universal|hash|roundrobin|schemaexact]
//	                [-obs :PORT] [-hold] [-slow-query D]
//	cinderella-load -target http://HOST:PORT [-entities N] [-clients N]
//	                [-readers N] [-shift-at N] [-zipf S] [-json FILE] [-trace]
//
// With -target the data set is driven through a running cinderellad
// instead of an embedded table: -clients concurrent workers insert over
// HTTP (each 2xx ack means the write is fsynced server-side), then the
// probe queries run through GET /v1/query-report and the partition
// listing comes from the server. -readers N adds N concurrent query
// workers that hammer GET /v1/query for the whole duration of the
// insert phase — the mixed read/write workload the lock-free snapshot
// path is built for — and reports read throughput next to the insert
// numbers. -shift-at N flips the readers' attribute mix (first half of
// the attribute list → second half) once N inserts have been acked: an
// adversarial workload shift for driving the server's background
// reclusterer (cinderellad -recluster) and the recluster e2e smoke.
// -zipf S (S > 1) skews the readers' attribute choice with a Zipf
// distribution so a few attributes absorb most of the heat — the
// workload shape that lets the server's tiering manager
// (cinderellad -tier) freeze the partitions the readers never touch.
// Local-only flags (-w, -b, -strategy,
// -obs, -hold) are rejected in this mode: the server owns partitioning.
//
// With -obs the process serves the live ops endpoint (Prometheus
// /metrics, /debug/vars, /debug/pprof) while loading and probing; -hold
// keeps it serving after the report so the endpoint can be inspected:
//
//	cinderella-load -obs :8080 -hold &
//	curl localhost:8080/metrics
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cinderella/client"
	"cinderella/internal/core"
	"cinderella/internal/datagen"
	"cinderella/internal/entity"
	"cinderella/internal/metrics"
	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
)

var knownStrategies = map[string]bool{
	"cinderella": true, "universal": true, "hash": true,
	"roundrobin": true, "schemaexact": true,
}

// loadJSONL reads flat JSON objects (one per line) into a data set using
// the given dictionary.
func loadJSONL(path string, dict *entity.Dictionary) (*datagen.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds := &datagen.Dataset{Dict: dict}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		e := &entity.Entity{}
		for k, v := range obj {
			switch x := v.(type) {
			case float64:
				e.Set(dict.ID(k), entity.Float(x))
			case string:
				e.Set(dict.ID(k), entity.Str(x))
			case bool:
				n := int64(0)
				if x {
					n = 1
				}
				e.Set(dict.ID(k), entity.Int(n))
			case nil:
				// skip
			default:
				return nil, fmt.Errorf("line %d: attribute %q has non-scalar value", line, k)
			}
		}
		ds.Entities = append(ds.Entities, e)
	}
	return ds, sc.Err()
}

// entityDoc converts a data-set entity into the wire Doc shape.
func entityDoc(e *entity.Entity, dict *entity.Dictionary) client.Doc {
	doc := make(client.Doc, e.NumAttrs())
	for _, f := range e.Fields() {
		name := dict.Name(f.Attr)
		switch f.Value.Kind() {
		case entity.KindInt:
			doc[name] = f.Value.AsInt()
		case entity.KindFloat:
			doc[name] = f.Value.AsFloat()
		case entity.KindString:
			doc[name] = f.Value.AsString()
		}
	}
	return doc
}

func fail(msgs ...string) {
	for _, m := range msgs {
		fmt.Fprintln(os.Stderr, "cinderella-load: "+m)
	}
	flag.Usage()
	os.Exit(2)
}

func main() {
	entities := flag.Int("entities", 20000, "entity count (synthetic data)")
	w := flag.Float64("w", 0.2, "Cinderella weight")
	b := flag.Int64("b", 500, "partition size limit (entities)")
	strategy := flag.String("strategy", "cinderella", "partitioning strategy")
	seed := flag.Int64("seed", 1, "PRNG seed")
	jsonl := flag.String("json", "", "load newline-delimited JSON from this file instead of synthetic data")
	obsAddr := flag.String("obs", "", "serve the ops endpoint on this address (e.g. :8080)")
	hold := flag.Bool("hold", false, "with -obs: keep serving after the report until interrupted")
	slowQuery := flag.Duration("slow-query", 0, "with -obs: retain queries slower than this in the slow-query ring (/debug/slow)")
	trace := flag.Bool("trace", false, "with -target: run the probe queries with an inline server-side trace")
	target := flag.String("target", "", "drive a running cinderellad at this base URL instead of an embedded table (with -proto binary: a host:port)")
	clients := flag.Int("clients", 16, "with -target: concurrent insert workers")
	readers := flag.Int("readers", 0, "with -target: concurrent query workers running alongside the inserts")
	zipf := flag.Float64("zipf", 0, "with -target and -readers: Zipf skew exponent for the readers' attribute choice (0 = uniform round-robin; must be > 1, e.g. 1.2)")
	shiftAt := flag.Int("shift-at", 0, "with -target and -readers: flip the readers' query attribute mix after N acked inserts (adversarial workload shift)")
	proto := flag.String("proto", "http", "with -target: protocol to drive, http or binary")
	batch := flag.Int("batch", 1, "with -target: ops per client-side batch (http >1 uses /v1/bulk)")
	payload := flag.Int("payload", 0, "with -target: extra pad bytes added to every document")
	sweep := flag.Bool("sweep", false, "with -target: run the clients×payload×batch sweep instead of a single run")
	sweepClients := flag.String("sweep-clients", "1,16,64", "with -sweep: comma-separated client counts")
	sweepPayloads := flag.String("sweep-payloads", "0,256", "with -sweep: comma-separated pad byte sizes")
	sweepBatches := flag.String("sweep-batches", "1,16,128", "with -sweep: comma-separated batch sizes")
	flag.Parse()

	// Validate everything up front so bad invocations fail fast with a
	// usage message instead of after seconds of data generation.
	var errs []string
	if flag.NArg() > 0 {
		errs = append(errs, fmt.Sprintf("unexpected arguments: %v", flag.Args()))
	}
	if !knownStrategies[*strategy] {
		errs = append(errs, fmt.Sprintf("unknown strategy %q", *strategy))
	}
	if *entities <= 0 {
		errs = append(errs, fmt.Sprintf("-entities must be positive, got %d", *entities))
	}
	if *w < 0 || *w > 1 {
		errs = append(errs, fmt.Sprintf("-w must be in [0,1], got %v", *w))
	}
	if *b <= 0 {
		errs = append(errs, fmt.Sprintf("-b must be positive, got %d", *b))
	}
	if *clients <= 0 {
		errs = append(errs, fmt.Sprintf("-clients must be positive, got %d", *clients))
	}
	if *readers < 0 {
		errs = append(errs, fmt.Sprintf("-readers must be non-negative, got %d", *readers))
	}
	if *readers > 0 && *target == "" {
		errs = append(errs, "-readers requires -target (it drives reads against a live daemon)")
	}
	if *shiftAt < 0 {
		errs = append(errs, fmt.Sprintf("-shift-at must be non-negative, got %d", *shiftAt))
	}
	if *shiftAt > 0 && *readers == 0 {
		errs = append(errs, "-shift-at requires -readers (it flips the readers' query mix)")
	}
	if *zipf != 0 && *zipf <= 1 {
		errs = append(errs, fmt.Sprintf("-zipf must be > 1 (Zipf exponent; 0 disables skew), got %v", *zipf))
	}
	if *zipf != 0 && *readers == 0 {
		errs = append(errs, "-zipf requires -readers (it skews the readers' attribute choice)")
	}
	if *hold && *obsAddr == "" {
		errs = append(errs, "-hold requires -obs")
	}
	if *slowQuery > 0 && *obsAddr == "" {
		errs = append(errs, "-slow-query requires -obs (the slow ring lives in the telemetry registry)")
	}
	if *trace && *target == "" {
		errs = append(errs, "-trace requires -target (it asks the server for inline traces)")
	}
	if *proto != "http" && *proto != "binary" {
		errs = append(errs, fmt.Sprintf("-proto must be http or binary, got %q", *proto))
	}
	if *batch < 1 {
		errs = append(errs, fmt.Sprintf("-batch must be >= 1, got %d", *batch))
	}
	if *payload < 0 {
		errs = append(errs, fmt.Sprintf("-payload must be non-negative, got %d", *payload))
	}
	if *target != "" {
		if *proto == "binary" {
			if _, _, err := net.SplitHostPort(*target); err != nil {
				errs = append(errs, fmt.Sprintf("-target with -proto binary must be host:port, got %q", *target))
			}
		} else if u, err := url.Parse(*target); err != nil || u.Scheme == "" || u.Host == "" {
			errs = append(errs, fmt.Sprintf("-target must be a base URL like http://127.0.0.1:8263, got %q", *target))
		}
		if *obsAddr != "" || *hold {
			errs = append(errs, "-obs/-hold apply only to local mode (the server has its own /metrics)")
		}
	} else if *proto != "http" || *batch > 1 || *payload > 0 || *sweep {
		errs = append(errs, "-proto/-batch/-payload/-sweep require -target (they drive a live daemon)")
	}
	var clientsList, payloadList, batchList []int
	if *sweep {
		var err error
		if clientsList, err = parseIntList(*sweepClients); err != nil {
			errs = append(errs, "-sweep-clients: "+err.Error())
		}
		if payloadList, err = parseIntList(*sweepPayloads); err != nil {
			errs = append(errs, "-sweep-payloads: "+err.Error())
		}
		if batchList, err = parseIntList(*sweepBatches); err != nil {
			errs = append(errs, "-sweep-batches: "+err.Error())
		}
		if *readers > 0 {
			errs = append(errs, "-readers applies only to the single-run http mode, not -sweep")
		}
	}
	if len(errs) > 0 {
		fail(errs...)
	}

	var ds *datagen.Dataset
	if *jsonl != "" {
		var err error
		ds, err = loadJSONL(*jsonl, entity.NewDictionary())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		var err error
		ds, err = datagen.Generate(datagen.Config{NumEntities: *entities, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ds.Shuffle(*seed + 1)
	}

	if *target != "" {
		// The bench-harness path: any cell shape beyond the plain
		// single-run HTTP load, or an explicit sweep.
		if *sweep || *proto == "binary" || *batch > 1 || *payload > 0 {
			cells := buildCells(*sweep, *clients, *payload, *batch, clientsList, payloadList, batchList)
			if err := runNetBench(*proto, *target, ds, cells); err != nil {
				fmt.Fprintln(os.Stderr, "cinderella-load: "+err.Error())
				os.Exit(1)
			}
			return
		}
		if err := runTarget(*target, ds, *clients, *readers, *shiftAt, *zipf, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "cinderella-load: "+err.Error())
			os.Exit(1)
		}
		return
	}

	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.New(obs.Options{})
		if *slowQuery > 0 {
			reg.SetSlowThreshold(*slowQuery)
		}
		go func() {
			if err := reg.Serve(*obsAddr); err != nil {
				fmt.Fprintf(os.Stderr, "obs endpoint: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("ops endpoint on %s (/metrics /debug/vars /debug/pprof)\n", *obsAddr)
	}

	var assigner core.Assigner
	switch *strategy {
	case "cinderella":
		assigner = core.NewCinderella(core.Config{Weight: *w, MaxSize: *b})
	case "universal":
		assigner = core.NewSingle(core.SizeCount)
	case "hash":
		assigner = core.NewHash(16, core.SizeCount)
	case "roundrobin":
		assigner = core.NewRoundRobin(*b, core.SizeCount)
	case "schemaexact":
		assigner = core.NewSchemaExact(0, core.SizeCount)
	}

	tbl := table.New(table.Config{Dict: ds.Dict, Partitioner: assigner, Obs: reg})
	start := time.Now()
	for _, e := range ds.Entities {
		tbl.Insert(e)
	}
	loadTime := time.Since(start)

	fmt.Printf("loaded %d entities in %v (%s, w=%.2f, B=%d)\n",
		tbl.Len(), loadTime.Round(time.Millisecond), *strategy, *w, *b)
	fmt.Printf("data set sparseness: %.3f\n", ds.Sparseness())
	fmt.Printf("partitions: %d\n\n", tbl.NumPartitions())

	fmt.Printf("%-6s %10s %10s %8s %12s\n", "part", "entities", "attrs", "pages", "sparseness")
	shown := 0
	for _, pv := range tbl.Partitions() {
		if shown >= 25 {
			fmt.Printf("… (%d more partitions)\n", tbl.NumPartitions()-shown)
			break
		}
		sp := metrics.Sparseness(tbl.MemberSynopses(pv.ID))
		fmt.Printf("%-6d %10d %10d %8d %12.3f\n", pv.ID, pv.Entities, pv.Synopsis.Len(), pv.Pages, sp)
		shown++
	}

	// Probe queries: one common, one medium, one rare attribute.
	fmt.Printf("\nprobe queries (OR of attributes; pruning report)\n")
	for _, name := range []string{"universal_00", "common_05", "rare_50"} {
		id, ok := ds.Dict.Lookup(name)
		if !ok {
			continue
		}
		tbl.Stats().Reset()
		start := time.Now()
		_, rep := tbl.SelectWithReport(synopsis.Of(id))
		d := time.Since(start)
		_, _, bytes, _, _ := tbl.Stats().Snapshot()
		fmt.Printf("  %-14s rows=%-6d touched=%-4d pruned=%-4d read=%dKB time=%v\n",
			name, rep.EntitiesReturned, rep.PartitionsTouched, rep.PartitionsPruned,
			bytes/1024, d.Round(time.Microsecond))
	}

	if reg != nil {
		winEff, winN := reg.WindowEfficiency()
		fmt.Printf("\ntelemetry: efficiency=%.4f (window %.4f over %d queries) "+
			"ratings=%d splits=%d partitions=%d trace-events=%d\n",
			reg.Efficiency(), winEff, winN,
			reg.Counter(obs.CRatings), reg.Counter(obs.CSplits),
			reg.Partitions(), reg.TraceSeq())
		if heat := reg.ColdestPartitions(10, 1); len(heat) > 0 {
			fmt.Printf("\npartition heat, coldest first (lowest relevant/read — recluster candidates)\n")
			fmt.Printf("%-6s %8s %12s %12s %12s %8s\n", "part", "queries", "read", "relevant", "skipped", "ratio")
			for _, h := range heat {
				fmt.Printf("%-6d %8d %12d %12d %12d %8.3f\n",
					h.Partition, h.Queries, h.RecordsRead, h.RecordsRelevant, h.RecordsSkipped, h.ReadRatio)
			}
		}
		if slow, total := reg.SlowDump(); total > 0 {
			fmt.Printf("\nslow queries (>= %v): %d total, %d retained\n", reg.SlowThreshold(), total, len(slow))
		}
		if *hold {
			fmt.Printf("holding; ops endpoint stays on %s (interrupt to exit)\n", *obsAddr)
			select {}
		}
	}
}

// runTarget drives the data set through a running cinderellad: concurrent
// durable inserts (with optional concurrent query readers for a mixed
// read/write workload), then the probe queries server-side (traced
// inline when trace is set). With shiftAt > 0 the readers start on the
// first half of the attribute list and flip to the second half once
// shiftAt inserts have been acked — an adversarial workload shift that
// invalidates whatever layout the partitioner adapted to, which is the
// scenario the background reclusterer exists to recover from. With
// zipf > 1 the readers draw attribute indices from a Zipf distribution
// with that exponent instead of cycling uniformly, concentrating heat
// on a few attributes — the skewed read mix that leaves the rest of the
// partitions cold enough for the server's tiering manager
// (cinderellad -tier) to freeze.
func runTarget(base string, ds *datagen.Dataset, workers, readers, shiftAt int, zipf float64, trace bool) error {
	ctx := context.Background()
	c, err := client.New(base)
	if err != nil {
		return err
	}
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("probing %s: %w", base, err)
	}
	fmt.Printf("target %s: status=%s docs=%d durable_lsn=%d\n", base, h.Status, h.Docs, h.DurableLSN)

	docs := make([]client.Doc, len(ds.Entities))
	for i, e := range ds.Entities {
		docs[i] = entityDoc(e, ds.Dict)
	}

	// Query readers cycle over real attribute names from the data set so
	// the mixed workload exercises the same pruning the probes report.
	var attrNames []string
	seen := map[string]bool{}
	for _, e := range ds.Entities {
		for _, f := range e.Fields() {
			if name := ds.Dict.Name(f.Attr); !seen[name] {
				seen[name] = true
				attrNames = append(attrNames, name)
			}
		}
		if len(attrNames) >= 64 {
			break
		}
	}

	// The pre- and post-shift query mixes: without -shift-at both halves
	// are the whole list and the readers behave as before; with it, the
	// readers hammer the first half until shiftAt inserts are acked,
	// then abruptly switch to attributes they have never queried.
	preMix, postMix := attrNames, attrNames
	if shiftAt > 0 && len(attrNames) >= 2 {
		preMix = attrNames[:len(attrNames)/2]
		postMix = attrNames[len(attrNames)/2:]
	}

	var next, acked, failed atomic.Int64
	var reads, readFails, preReads, postReads atomic.Int64
	var shifted atomic.Bool
	var firstErr, firstReadErr atomic.Value
	stopReads := make(chan struct{})
	start := time.Now()
	var wg, rwg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				if _, err := c.Insert(ctx, docs[i]); err != nil {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				acked.Add(1)
			}
		}()
	}
	for i := 0; i < readers && len(attrNames) > 0; i++ {
		rwg.Add(1)
		go func(k int) {
			defer rwg.Done()
			// rand.Zipf is not safe for concurrent use, so each reader
			// owns one. Ranking the full attribute list and folding into
			// the current mix keeps the skew shape across a -shift-at
			// flip even though the halves differ in length.
			var zr *rand.Zipf
			if zipf > 1 {
				zr = rand.NewZipf(rand.New(rand.NewSource(int64(k)+1)), zipf, 1, uint64(len(attrNames)-1))
			}
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				mix, phase := preMix, &preReads
				if shiftAt > 0 && acked.Load() >= int64(shiftAt) {
					mix, phase = postMix, &postReads
					if shifted.CompareAndSwap(false, true) {
						fmt.Printf("workload shift at %d acked inserts: readers now query the second attribute half (%d attrs)\n",
							acked.Load(), len(postMix))
					}
				}
				idx := k % len(mix)
				if zr != nil {
					idx = int(zr.Uint64()) % len(mix)
				}
				if _, err := c.Query(ctx, mix[idx]); err != nil {
					readFails.Add(1)
					firstReadErr.CompareAndSwap(nil, err)
				} else {
					reads.Add(1)
					phase.Add(1)
				}
				k++
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopReads)
	rwg.Wait()

	fmt.Printf("inserted %d/%d docs durably in %v (%.0f acked ops/s, %d clients)\n",
		acked.Load(), len(docs), elapsed.Round(time.Millisecond),
		float64(acked.Load())/elapsed.Seconds(), workers)
	if n := failed.Load(); n > 0 {
		fmt.Printf("  %d inserts failed (first: %v)\n", n, firstErr.Load())
	}
	if readers > 0 {
		skew := "uniform"
		if zipf > 1 {
			skew = fmt.Sprintf("zipf s=%g", zipf)
		}
		fmt.Printf("concurrent reads: %d queries in %v (%.0f reads/s, %d readers, %s)\n",
			reads.Load(), elapsed.Round(time.Millisecond),
			float64(reads.Load())/elapsed.Seconds(), readers, skew)
		if shiftAt > 0 {
			fmt.Printf("  workload shift at %d acked: %d pre-shift reads, %d post-shift reads\n",
				shiftAt, preReads.Load(), postReads.Load())
		}
		if n := readFails.Load(); n > 0 {
			fmt.Printf("  %d reads failed (first: %v)\n", n, firstReadErr.Load())
		}
	}

	parts, err := c.Partitions(ctx)
	if err != nil {
		return fmt.Errorf("listing partitions: %w", err)
	}
	fmt.Printf("server partitions: %d\n\n", len(parts))
	fmt.Printf("%-6s %10s %10s %8s\n", "part", "entities", "attrs", "pages")
	for i, pv := range parts {
		if i >= 25 {
			fmt.Printf("… (%d more partitions)\n", len(parts)-i)
			break
		}
		fmt.Printf("%-6d %10d %10d %8d\n", i, pv.Records, len(pv.Attributes), pv.Pages)
	}

	fmt.Printf("\nprobe queries (server-side pruning report)\n")
	for _, name := range []string{"universal_00", "common_05", "rare_50"} {
		if _, ok := ds.Dict.Lookup(name); !ok {
			continue
		}
		start := time.Now()
		var recs []client.Record
		var rep client.QueryReport
		var spJSON json.RawMessage
		var err error
		if trace {
			recs, rep, spJSON, err = c.QueryTraced(ctx, name)
		} else {
			recs, rep, err = c.QueryWithReport(ctx, name)
		}
		if err != nil {
			return fmt.Errorf("query %s: %w", name, err)
		}
		d := time.Since(start)
		fmt.Printf("  %-14s rows=%-6d touched=%-4d pruned=%-4d read=%dKB time=%v\n",
			name, len(recs), rep.PartitionsTouched, rep.PartitionsPruned,
			rep.BytesRead/1024, d.Round(time.Microsecond))
		printTrace(spJSON)
	}

	if h, err = c.Health(ctx); err == nil {
		fmt.Printf("\nfinal: docs=%d durable_lsn=%d last_lsn=%d\n", h.Docs, h.DurableLSN, h.LastLSN)
	}
	return nil
}

// printTrace renders a server-side inline trace: the root span plus one
// line per shard child and the first few prune verdicts. Silently skips
// nil (untraced or uninstrumented) and undecodable payloads.
func printTrace(raw json.RawMessage) {
	if len(raw) == 0 {
		return
	}
	var sp obs.QuerySpan
	if err := json.Unmarshal(raw, &sp); err != nil {
		return
	}
	fmt.Printf("    trace %d (%s): %.2fms scanned=%d returned=%d\n",
		sp.ID, sp.Kind, float64(sp.DurationNs)/1e6, sp.EntitiesScanned, sp.EntitiesReturned)
	for _, ch := range sp.Children {
		fmt.Printf("      shard %d: %.2fms touched=%d pruned=%d scanned=%d returned=%d\n",
			ch.Shard, float64(ch.DurationNs)/1e6, ch.PartitionsTouched,
			ch.PartitionsPruned, ch.EntitiesScanned, ch.EntitiesReturned)
	}
	if len(sp.Children) == 0 && len(sp.Prunes) > 0 {
		shown := sp.Prunes
		if len(shown) > 5 {
			shown = shown[:5]
		}
		for _, pr := range shown {
			fmt.Printf("      pruned partition %d: %s\n", pr.Partition, pr.Reason)
		}
		if len(sp.Prunes) > 5 {
			fmt.Printf("      … (%d more pruned)\n", len(sp.Prunes)-5)
		}
	}
}
