package main

// The network bench harness behind -proto/-batch/-payload/-sweep: drives
// a running cinderellad over HTTP/JSON or the binary wire protocol and
// reports per-cell throughput, ack-latency percentiles, and transport
// bytes per operation. A "cell" is one (clients, payload, batch) point;
// -sweep crosses the three axes so one invocation maps the whole
// surface for a protocol.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cinderella/client"
	"cinderella/internal/datagen"
)

// benchCell is one sweep point.
type benchCell struct {
	clients int
	payload int // extra pad bytes added to every document
	batch   int // ops per client-side batch
}

// cellResult is one cell's measurements.
type cellResult struct {
	acked      int64
	failed     int64
	elapsed    time.Duration
	p50, p99   time.Duration
	bytesPerOp float64
	firstErr   error
}

func (r cellResult) opsPerSec() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.acked) / r.elapsed.Seconds()
}

// parseIntList parses "1,8,64" into ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad list element %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}

// padDocs returns docs with an extra pad attribute of padBytes, leaving
// the originals untouched. padBytes 0 returns docs as-is.
func padDocs(docs []client.Doc, padBytes int) []client.Doc {
	if padBytes <= 0 {
		return docs
	}
	pad := strings.Repeat("x", padBytes)
	out := make([]client.Doc, len(docs))
	for i, d := range docs {
		nd := make(client.Doc, len(d)+1)
		for k, v := range d {
			nd[k] = v
		}
		nd["pad"] = pad
		out[i] = nd
	}
	return out
}

// latRecorder collects per-op ack latencies for percentile reporting.
// One slice per worker, merged at the end — no contention on the hot
// path.
type latRecorder struct {
	per [][]int64
}

func newLatRecorder(workers int) *latRecorder {
	return &latRecorder{per: make([][]int64, workers)}
}

func (l *latRecorder) add(worker int, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		l.per[worker] = append(l.per[worker], int64(d))
	}
}

func (l *latRecorder) percentiles() (p50, p99 time.Duration) {
	var all []int64
	for _, s := range l.per {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	idx := func(q float64) int64 {
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	return time.Duration(idx(0.50)), time.Duration(idx(0.99))
}

// runNetBench runs every cell against target and prints one row per
// cell. proto selects the transport; target is a base URL for http and
// a host:port for binary.
func runNetBench(proto, target string, ds *datagen.Dataset, cells []benchCell) error {
	baseDocs := make([]client.Doc, len(ds.Entities))
	for i, e := range ds.Entities {
		baseDocs[i] = entityDoc(e, ds.Dict)
	}

	fmt.Printf("%-7s %8s %8s %6s %12s %10s %10s %10s\n",
		"proto", "clients", "payload", "batch", "ops/s", "p50", "p99", "bytes/op")
	for _, cell := range cells {
		docs := padDocs(baseDocs, cell.payload)
		var res cellResult
		var err error
		switch proto {
		case "binary":
			res, err = runCellBinary(target, docs, cell)
		default:
			res, err = runCellHTTP(target, docs, cell)
		}
		if err != nil {
			return fmt.Errorf("cell clients=%d payload=%d batch=%d: %w",
				cell.clients, cell.payload, cell.batch, err)
		}
		fmt.Printf("%-7s %8d %8d %6d %12.1f %10v %10v %10.1f\n",
			proto, cell.clients, cell.payload, cell.batch,
			res.opsPerSec(), res.p50.Round(time.Microsecond), res.p99.Round(time.Microsecond),
			res.bytesPerOp)
		if res.failed > 0 {
			fmt.Printf("  %d ops failed (first: %v)\n", res.failed, res.firstErr)
		}
	}
	return nil
}

// runCellBinary drives one cell over the binary protocol: each worker
// claims a contiguous chunk of `batch` docs and inserts it with
// InsertMany, so the client-side batcher fills frames to the configured
// size while concurrent workers share frames and group commits.
func runCellBinary(target string, docs []client.Doc, cell benchCell) (cellResult, error) {
	conns := cell.clients/8 + 1
	if conns > 16 {
		conns = 16
	}
	bc, err := client.NewBinary(target,
		client.WithConns(conns),
		client.WithBatch(cell.batch, 0, 0))
	if err != nil {
		return cellResult{}, err
	}
	defer bc.Close()
	ctx := context.Background()
	if err := bc.Ping(ctx); err != nil {
		return cellResult{}, fmt.Errorf("probing %s: %w", target, err)
	}

	var res cellResult
	var next atomic.Int64
	var acked, failed atomic.Int64
	var firstErr atomic.Value
	lat := newLatRecorder(cell.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cell.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(cell.batch))) - cell.batch
				if lo >= len(docs) {
					return
				}
				hi := lo + cell.batch
				if hi > len(docs) {
					hi = len(docs)
				}
				t0 := time.Now()
				ids, err := bc.InsertMany(ctx, docs[lo:hi])
				d := time.Since(t0)
				ok := 0
				for _, id := range ids {
					if id != 0 {
						ok++
					}
				}
				acked.Add(int64(ok))
				if n := hi - lo - ok; n > 0 {
					failed.Add(int64(n))
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
					}
				}
				lat.add(w, d, ok)
			}
		}(w)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	res.acked = acked.Load()
	res.failed = failed.Load()
	if e, _ := firstErr.Load().(error); e != nil {
		res.firstErr = e
	}
	res.p50, res.p99 = lat.percentiles()
	if res.acked > 0 {
		res.bytesPerOp = float64(bc.BytesSent()+bc.BytesReceived()) / float64(res.acked)
	}
	return res, nil
}

// runCellHTTP drives one cell over HTTP/JSON: batch 1 uses /v1/insert,
// larger batches use the /v1/bulk fallback. Transport bytes are counted
// by a wrapping RoundTripper (bodies exactly, headers estimated from
// their serialized form).
func runCellHTTP(target string, docs []client.Doc, cell benchCell) (cellResult, error) {
	ct := &countingTransport{rt: &http.Transport{
		MaxIdleConns:        cell.clients * 2,
		MaxIdleConnsPerHost: cell.clients * 2,
	}}
	c, err := client.New(target, client.WithHTTPClient(&http.Client{Transport: ct}))
	if err != nil {
		return cellResult{}, err
	}
	ctx := context.Background()
	if _, err := c.Health(ctx); err != nil {
		return cellResult{}, fmt.Errorf("probing %s: %w", target, err)
	}

	var res cellResult
	var next atomic.Int64
	var acked, failed atomic.Int64
	var firstErr atomic.Value
	lat := newLatRecorder(cell.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cell.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(cell.batch))) - cell.batch
				if lo >= len(docs) {
					return
				}
				hi := lo + cell.batch
				if hi > len(docs) {
					hi = len(docs)
				}
				t0 := time.Now()
				if cell.batch == 1 {
					_, err := c.Insert(ctx, docs[lo])
					d := time.Since(t0)
					if err != nil {
						failed.Add(1)
						firstErr.CompareAndSwap(nil, err)
						continue
					}
					acked.Add(1)
					lat.add(w, d, 1)
					continue
				}
				ops := make([]client.BulkOp, hi-lo)
				for i := range ops {
					ops[i] = client.BulkOp{Op: "insert", Doc: docs[lo+i]}
				}
				results, err := c.Bulk(ctx, ops)
				d := time.Since(t0)
				if err != nil {
					failed.Add(int64(hi - lo))
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				ok := 0
				for _, r := range results {
					if r.Error == "" && !r.Unapplied {
						ok++
					}
				}
				acked.Add(int64(ok))
				if n := hi - lo - ok; n > 0 {
					failed.Add(int64(n))
				}
				lat.add(w, d, ok)
			}
		}(w)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	res.acked = acked.Load()
	res.failed = failed.Load()
	if e, _ := firstErr.Load().(error); e != nil {
		res.firstErr = e
	}
	res.p50, res.p99 = lat.percentiles()
	if res.acked > 0 {
		res.bytesPerOp = float64(ct.in.Load()+ct.out.Load()) / float64(res.acked)
	}
	return res, nil
}

// countingTransport counts transport bytes: request/response bodies
// exactly, headers by their serialized size (status/request line plus
// "k: v\r\n" per header) — close enough for bytes/op comparisons.
type countingTransport struct {
	rt      http.RoundTripper
	in, out atomic.Int64
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	hdr := int64(len(req.Method) + len(req.URL.RequestURI()) + 12)
	for k, vs := range req.Header {
		for _, v := range vs {
			hdr += int64(len(k) + len(v) + 4)
		}
	}
	t.out.Add(hdr + req.ContentLength)
	resp, err := t.rt.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	rhdr := int64(len(resp.Status) + 11)
	for k, vs := range resp.Header {
		for _, v := range vs {
			rhdr += int64(len(k) + len(v) + 4)
		}
	}
	t.in.Add(rhdr)
	resp.Body = &countingBody{rc: resp.Body, n: &t.in}
	return resp, nil
}

type countingBody struct {
	rc interface {
		Read([]byte) (int, error)
		Close() error
	}
	n *atomic.Int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	b.n.Add(int64(n))
	return n, err
}

func (b *countingBody) Close() error { return b.rc.Close() }

// buildCells crosses the sweep axes (or yields the single configured
// cell when -sweep is off).
func buildCells(sweep bool, clients, payload, batch int, clientsList, payloadList, batchList []int) []benchCell {
	if !sweep {
		return []benchCell{{clients: clients, payload: payload, batch: batch}}
	}
	var cells []benchCell
	for _, c := range clientsList {
		for _, p := range payloadList {
			for _, b := range batchList {
				cells = append(cells, benchCell{clients: c, payload: p, batch: b})
			}
		}
	}
	return cells
}
