// Command cinderellad serves a durable Cinderella-partitioned table over
// HTTP/JSON (see internal/server for the wire format and the client
// package for a typed caller). Writes are group-committed: many
// concurrent inserts share one WAL fsync, and a 2xx answer means the
// operation is on disk.
//
// Usage:
//
//	cinderellad -wal table.wal [-addr :8263] [-w W] [-b B] [-shards N]
//	            [-bin-addr :8264] [-bin-addr-file PATH]
//	            [-strategy cinderella|universal|hash|roundrobin|schemaexact]
//	            [-inflight N] [-read-inflight N] [-queue N]
//	            [-commit-delay D] [-commit-max N]
//	            [-per-op-sync] [-addr-file PATH] [-checkpoint-on-exit=false]
//	            [-slow-query D] [-trace-sample N]
//	            [-recluster] [-recluster-interval D] [-recluster-batch N]
//	            [-recluster-rate R] [-recluster-alpha A] [-recluster-halflife D]
//	            [-tier] [-tier-interval D] [-tier-target-bytes N]
//	            [-tier-max-freezes N] [-tier-idle-ticks N] [-tier-reheat N]
//
// -recluster starts the background workload-aware reclusterer
// (internal/recluster): every -recluster-interval it snapshots the
// partition heat map, picks the partitions wasting the most read
// volume, and re-rates their entities against a rating blended with
// the recent query mix (-recluster-alpha), migrating at most
// -recluster-rate entities per second. -recluster-halflife ages the
// heat map so old workloads fade. Live status, per-victim outcomes,
// and counters are served at /debug/recluster; the reclusterer pauses
// when a drain begins.
//
// -tier starts the background tiering manager (internal/tier): every
// -tier-interval it compares the partition heat map against the tier
// states and freezes partitions that have gone query-idle for
// -tier-idle-ticks ticks into compressed, read-only cold segments —
// until the hot tier fits -tier-target-bytes (0 = freeze all idle),
// at most -tier-max-freezes per tick. Frozen partitions that absorb
// -tier-reheat cold block reads within a tick are thawed back; any
// write reaching a frozen partition thaws it immediately. Live status
// is served at /debug/tier; with -recluster the reclusterer skips
// frozen partitions. Freeze/thaw transitions are durable (a manifest
// and the compressed images live next to the WAL) and survive restart.
//
// -bin-addr additionally serves the length-prefixed binary protocol
// (package internal/wire) on its own port. Both protocols share one
// store and one group committer, so a binary batch and an HTTP insert
// can ride the same fsync. -bin-addr-file mirrors -addr-file.
//
// With -shards N (N > 1) the daemon runs N independent Cinderella
// partitioners, hash-routing documents by id and striping durability
// across one WAL per shard; -wal then names a directory. The wire
// format is identical either way — clients cannot tell the difference.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops admitting
// writes (503 + Retry-After), finishes the in-flight ones, flushes the
// group-commit pipeline, checkpoints the WAL, and exits 0. Read routes
// run behind their own -read-inflight bound, outside the write
// admission queue, and keep being served for as long as the listener
// is up — a drain never turns queries away. A second signal aborts
// immediately.
//
// -addr-file writes the actually bound address (useful with -addr
// 127.0.0.1:0) to a file so scripts can find the server.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cinderella"
	"cinderella/internal/obs"
	"cinderella/internal/recluster"
	"cinderella/internal/server"
	"cinderella/internal/shard"
	"cinderella/internal/tier"
	"cinderella/internal/wire"
)

var strategies = map[string]cinderella.Strategy{
	"cinderella":  cinderella.StrategyCinderella,
	"universal":   cinderella.StrategyUniversal,
	"hash":        cinderella.StrategyHash,
	"roundrobin":  cinderella.StrategyRoundRobin,
	"schemaexact": cinderella.StrategySchemaExact,
}

func main() {
	addr := flag.String("addr", ":8263", "listen address (use 127.0.0.1:0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	binAddr := flag.String("bin-addr", "", "binary wire protocol listen address (empty = HTTP only)")
	binAddrFile := flag.String("bin-addr-file", "", "write the bound binary address to this file once listening")
	walPath := flag.String("wal", "cinderella.wal", "write-ahead log path (with -shards >1: a directory of striped WALs)")
	shards := flag.Int("shards", 1, "number of independent shards (>1 stripes the WAL and runs one partitioner per shard)")
	w := flag.Float64("w", 0.5, "Cinderella weight w ∈ [0,1]")
	b := flag.Int64("b", 5000, "partition size limit B (records)")
	strategy := flag.String("strategy", "cinderella", "partitioning strategy")
	inflight := flag.Int("inflight", 0, "max concurrently served requests (0 = default)")
	readInflight := flag.Int("read-inflight", 0, "max concurrently served read requests (0 = default: match -inflight)")
	queue := flag.Int("queue", 0, "admission queue depth beyond -inflight (0 = default)")
	commitDelay := flag.Duration("commit-delay", 0, "group-commit window (0 = default)")
	commitMax := flag.Int("commit-max", 0, "max ops per group commit (0 = default)")
	perOpSync := flag.Bool("per-op-sync", false, "fsync every write individually instead of group-committing")
	reqTimeout := flag.Duration("timeout", 0, "per-request server-side timeout (0 = default)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this to the slow-query ring (/debug/slow); 0 disables")
	traceSample := flag.Int("trace-sample", 0, "trace every Nth query (0 = default 64, <0 disables tracing)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	checkpointOnExit := flag.Bool("checkpoint-on-exit", true, "compact the WAL to a checkpoint during graceful shutdown")
	reclusterOn := flag.Bool("recluster", false, "run the background workload-aware reclusterer (see /debug/recluster)")
	reclusterInterval := flag.Duration("recluster-interval", 0, "reclusterer tick interval (0 = default 5s; requires -recluster)")
	reclusterBatch := flag.Int("recluster-batch", 0, "entities re-rated per victim partition per tick (0 = default; requires -recluster)")
	reclusterRate := flag.Float64("recluster-rate", 0, "max migrations per second, 0 = unlimited (requires -recluster)")
	reclusterAlpha := flag.Float64("recluster-alpha", 0, "workload-blend weight α ∈ [0,1] (0 = default 0.5; requires -recluster)")
	reclusterHalfLife := flag.Duration("recluster-halflife", 0, "partition heat exponential-decay half-life (0 = no decay; requires -recluster)")
	tierOn := flag.Bool("tier", false, "run the background tiering manager: freeze idle partitions into the compressed cold tier (see /debug/tier)")
	tierInterval := flag.Duration("tier-interval", 0, "tiering tick interval (0 = default 10s; requires -tier)")
	tierTargetBytes := flag.Int64("tier-target-bytes", 0, "hot-tier resident byte budget; 0 = freeze by idleness alone (requires -tier)")
	tierMaxFreezes := flag.Int("tier-max-freezes", 0, "max partitions frozen per tick (0 = default 4; requires -tier)")
	tierIdleTicks := flag.Int("tier-idle-ticks", 0, "consecutive query-idle ticks before a partition freezes (0 = default 2; requires -tier)")
	tierReheat := flag.Int64("tier-reheat", 0, "cold block reads per tick that reheat a frozen partition (0 = default 4; requires -tier)")
	flag.Parse()

	st, ok := strategies[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "cinderellad: unknown strategy %q\n", *strategy)
		flag.Usage()
		os.Exit(2)
	}
	if *w < 0 || *w > 1 {
		fmt.Fprintf(os.Stderr, "cinderellad: -w must be in [0,1], got %v\n", *w)
		os.Exit(2)
	}
	if *b <= 0 {
		fmt.Fprintf(os.Stderr, "cinderellad: -b must be positive, got %d\n", *b)
		os.Exit(2)
	}
	if *inflight < 0 || *readInflight < 0 || *queue < 0 || *commitMax < 0 {
		fmt.Fprintln(os.Stderr, "cinderellad: -inflight, -read-inflight, -queue, and -commit-max must be non-negative")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "cinderellad: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	if !*reclusterOn && (*reclusterInterval != 0 || *reclusterBatch != 0 ||
		*reclusterRate != 0 || *reclusterAlpha != 0 || *reclusterHalfLife != 0) {
		fmt.Fprintln(os.Stderr, "cinderellad: -recluster-* tuning flags require -recluster")
		os.Exit(2)
	}
	if *reclusterInterval < 0 || *reclusterBatch < 0 || *reclusterRate < 0 || *reclusterHalfLife < 0 {
		fmt.Fprintln(os.Stderr, "cinderellad: -recluster-interval, -recluster-batch, -recluster-rate, and -recluster-halflife must be non-negative")
		os.Exit(2)
	}
	if *reclusterAlpha < 0 || *reclusterAlpha > 1 {
		fmt.Fprintf(os.Stderr, "cinderellad: -recluster-alpha must be in [0,1], got %v\n", *reclusterAlpha)
		os.Exit(2)
	}
	if !*tierOn && (*tierInterval != 0 || *tierTargetBytes != 0 || *tierMaxFreezes != 0 ||
		*tierIdleTicks != 0 || *tierReheat != 0) {
		fmt.Fprintln(os.Stderr, "cinderellad: -tier-* tuning flags require -tier")
		os.Exit(2)
	}
	if *tierInterval < 0 || *tierTargetBytes < 0 || *tierMaxFreezes < 0 || *tierIdleTicks < 0 || *tierReheat < 0 {
		fmt.Fprintln(os.Stderr, "cinderellad: -tier-* values must be non-negative")
		os.Exit(2)
	}

	reg := obs.New(obs.Options{TraceSampleEvery: *traceSample})
	if *slowQuery > 0 {
		reg.SetSlowThreshold(*slowQuery)
	}
	cfg := cinderella.Config{
		Strategy:           st,
		Weight:             *w,
		PartitionSizeLimit: *b,
		Obs:                reg,
	}
	var d server.Store
	var ws wire.Store      // entity-level view of the same store, for -bin-addr
	var rs recluster.Store // migration view of the same store, for -recluster
	var ts tier.Store      // tiering view of the same store, for -tier
	var err error
	if *shards > 1 {
		sh, serr := shard.Open(*walPath, shard.Options{Shards: *shards, Config: cfg})
		d, ws, rs, ts, err = sh, sh, sh, sh, serr
	} else {
		dt, derr := cinderella.OpenFile(*walPath, cfg)
		d, ws, rs, err = dt, dt, dt, derr
		if derr == nil {
			ts = tier.Single(dt)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cinderellad: opening %s: %v\n", *walPath, err)
		os.Exit(1)
	}
	fmt.Printf("cinderellad: wal %s replayed (%d shards), %d docs, %d partitions\n",
		*walPath, *shards, d.Len(), len(d.Partitions()))

	// Background tiering manager: freezes partitions the workload has
	// gone quiet on into the compressed cold tier, reheats frozen ones
	// the workload comes back to. Status is served at /debug/tier.
	var tmgr *tier.Manager
	var tmgrCancel context.CancelFunc
	if *tierOn {
		tmgr = tier.New(ts, reg, tier.Config{
			Interval:            *tierInterval,
			TargetResidentBytes: *tierTargetBytes,
			MaxFreezesPerTick:   *tierMaxFreezes,
			MinIdleTicks:        *tierIdleTicks,
			ReheatColdReads:     *tierReheat,
		})
		var tctx context.Context
		tctx, tmgrCancel = context.WithCancel(context.Background())
		go tmgr.Run(tctx)
		fmt.Printf("cinderellad: tiering on (interval %v)\n", tmgr.Status().Interval)
	}

	// Background reclusterer: observes the partition heat map, migrates
	// the worst read-efficiency offenders toward the live query mix.
	// Status and outcomes are served at /debug/recluster. With -tier it
	// skips frozen partitions — re-rating members would thaw them.
	var mgr *recluster.Manager
	var mgrCancel context.CancelFunc
	if *reclusterOn {
		rcfg := recluster.Config{
			Interval:       *reclusterInterval,
			BatchSize:      *reclusterBatch,
			MaxMovesPerSec: *reclusterRate,
			Alpha:          *reclusterAlpha,
			HeatHalfLife:   *reclusterHalfLife,
		}
		if tmgr != nil {
			rcfg.VictimFilter = func(shard int32, pid uint64) bool {
				return !tmgr.IsFrozen(int(shard), pid)
			}
		}
		mgr = recluster.New(rs, reg, rcfg)
		var rctx context.Context
		rctx, mgrCancel = context.WithCancel(context.Background())
		go mgr.Run(rctx)
		fmt.Printf("cinderellad: reclusterer on (interval %v)\n", mgr.Status().Interval)
	}

	srv := server.New(d, server.Config{
		MaxInflight:     *inflight,
		MaxReadInflight: *readInflight,
		MaxQueue:        *queue,
		RequestTimeout:  *reqTimeout,
		CommitDelay:     *commitDelay,
		CommitMaxOps:    *commitMax,
		PerOpSync:       *perOpSync,
		Obs:             reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cinderellad: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	fmt.Printf("cinderellad: serving on %s\n", bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cinderellad: writing -addr-file: %v\n", err)
			os.Exit(1)
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// Binary wire protocol listener: same store, same group committer —
	// a binary batch and an HTTP insert can share one fsync.
	var wsrv *wire.Server
	if *binAddr != "" {
		var ack wire.Acker
		if com := srv.Committer(); com != nil {
			ack = com
		}
		wsrv = wire.New(ws, ack, wire.Config{Obs: reg})
		bln, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cinderellad: listen %s: %v\n", *binAddr, err)
			os.Exit(1)
		}
		binBound := bln.Addr().String()
		fmt.Printf("cinderellad: binary protocol on %s\n", binBound)
		if *binAddrFile != "" {
			if err := os.WriteFile(*binAddrFile, []byte(binBound+"\n"), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "cinderellad: writing -bin-addr-file: %v\n", err)
				os.Exit(1)
			}
		}
		go func() {
			if err := wsrv.Serve(bln); err != nil {
				serveErr <- err
			}
		}()
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		fmt.Printf("cinderellad: %v — draining (in-flight finish, new requests get 503)\n", sig)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "cinderellad: serve: %v\n", err)
		os.Exit(1)
	}

	// Drain: reject new work first so Shutdown only waits on requests
	// already admitted. A second signal cuts the wait short. The
	// reclusterer pauses before the store winds down — a migration
	// started after the final checkpoint would be lost work.
	if mgr != nil {
		mgr.Pause()
		mgrCancel()
		mgr.Close()
	}
	if tmgr != nil {
		tmgr.Pause()
		tmgrCancel()
		tmgr.Close()
	}
	srv.BeginDrain()
	if wsrv != nil {
		wsrv.BeginDrain() // binary writes now get StatusRetry; reads keep working
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sigc
		cancel()
	}()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "cinderellad: shutdown: %v\n", err)
	}
	if wsrv != nil {
		// The committer is still running, so in-flight binary batches get
		// their durability acks before the connections close.
		if err := wsrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "cinderellad: wire shutdown: %v\n", err)
		}
	}
	cancel()

	if err := srv.Finish(*checkpointOnExit); err != nil {
		fmt.Fprintf(os.Stderr, "cinderellad: finish: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("cinderellad: drained, %d docs durable, bye\n", d.Len())
}
