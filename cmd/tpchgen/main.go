// Command tpchgen generates the TPC-H-style data set as pipe-separated
// .tbl files (the dbgen output format), one file per table.
//
// Usage:
//
//	tpchgen [-sf F] [-seed S] [-out DIR]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cinderella/internal/entity"
	"cinderella/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	seed := flag.Int64("seed", 1, "PRNG seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	d := tpch.Generate(*sf, *seed)
	for _, name := range tpch.TableNames {
		path := filepath.Join(*out, name+".tbl")
		if err := writeTable(path, d, name); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %8d rows -> %s\n", name, len(d.Rows(name)), path)
	}
}

func writeTable(path string, d *tpch.Data, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, row := range d.Rows(name) {
		for i, v := range row {
			if i > 0 {
				w.WriteByte('|')
			}
			w.WriteString(render(v))
		}
		w.WriteByte('\n')
	}
	return w.Flush()
}

// render formats a value for .tbl output; date-typed columns stay as day
// numbers unless converted here.
func render(v entity.Value) string {
	switch v.Kind() {
	case entity.KindInt:
		return fmt.Sprintf("%d", v.AsInt())
	case entity.KindFloat:
		return fmt.Sprintf("%.2f", v.AsFloat())
	case entity.KindString:
		return v.AsString()
	}
	return ""
}
