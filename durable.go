package cinderella

import (
	"fmt"
	"io"
	"math"
	"sync"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/wal"
)

// DurableTable is a Table backed by a write-ahead log. Every mutating
// operation is appended to the log before it is applied; OpenFile replays
// the log on startup, and because Cinderella's placement decisions are
// deterministic, the recovered partitioning matches the pre-crash one.
//
// Durability granularity: operations are buffered and made durable by
// Sync, Checkpoint, and Close. Call Sync after operations that must
// survive a crash, or set Config-independent sync points in the caller.
type DurableTable struct {
	*Table
	mu     sync.Mutex
	w      *wal.Writer
	path   string
	logged int // attribute names already logged
}

// OpenFile opens (or creates) a durable table at path. An existing log
// is replayed first; cfg must match the configuration the log was
// written under, otherwise the recovered partitioning will be valid but
// different (documents and ids are still recovered exactly).
func OpenFile(path string, cfg Config) (*DurableTable, error) {
	t := Open(cfg)
	d := &DurableTable{Table: t, path: path}

	r, err := wal.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	for {
		op, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cinderella: replaying %s: %w", path, err)
		}
		if err := d.apply(op); err != nil {
			return nil, fmt.Errorf("cinderella: replaying %s: %w", path, err)
		}
	}
	d.logged = t.dict.Len()

	w, err := wal.Create(path)
	if err != nil {
		return nil, err
	}
	if t.obsr != nil {
		w.SetObserver(t.obsr)
	}
	d.w = w
	return d, nil
}

// SetObserver attaches (or replaces) a telemetry registry, covering both
// the in-memory table and the WAL writer.
func (d *DurableTable) SetObserver(r *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Table.SetObserver(r)
	d.w.SetObserver(r)
}

// apply executes one replayed operation against the in-memory table.
func (d *DurableTable) apply(op wal.Op) error {
	switch op.Kind {
	case wal.KindAttr:
		// Attribute registration: names must resolve to the same dense
		// ids they had when logged.
		want := int(op.ID)
		got := d.dict.ID(string(op.Data))
		if got != want {
			return fmt.Errorf("attribute %q replayed to id %d, logged as %d", op.Data, got, want)
		}
	case wal.KindInsert:
		e, _, err := entity.Unmarshal(op.Data)
		if err != nil {
			return err
		}
		d.inner.InsertWithID(core.EntityID(op.ID), e)
	case wal.KindUpdate:
		e, _, err := entity.Unmarshal(op.Data)
		if err != nil {
			return err
		}
		if !d.inner.Update(core.EntityID(op.ID), e) {
			return fmt.Errorf("update of unknown entity %d", op.ID)
		}
	case wal.KindDelete:
		if !d.inner.Delete(core.EntityID(op.ID)) {
			return fmt.Errorf("delete of unknown entity %d", op.ID)
		}
	case wal.KindCompact:
		d.inner.Compact(math.Float64frombits(op.ID))
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

// logNewAttrs appends registrations for attribute names assigned since
// the last mutation, keeping the log self-describing.
func (d *DurableTable) logNewAttrs() error {
	n := d.dict.Len()
	for ; d.logged < n; d.logged++ {
		err := d.w.Append(wal.Op{
			Kind: wal.KindAttr,
			ID:   uint64(d.logged),
			Data: []byte(d.dict.Name(d.logged)),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Insert stores doc durably and returns its id.
func (d *DurableTable) Insert(doc Doc) (ID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.toEntity(doc)
	if err := d.logNewAttrs(); err != nil {
		return 0, err
	}
	// The id the table will assign is deterministic; log after applying
	// so the id is known, then the caller syncs when durability matters.
	id := d.inner.Insert(e)
	if err := d.w.Append(wal.Op{Kind: wal.KindInsert, ID: uint64(id), Data: e.Marshal(nil)}); err != nil {
		return 0, err
	}
	return id, nil
}

// Update replaces the document durably.
func (d *DurableTable) Update(id ID, doc Doc) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.toEntity(doc)
	if err := d.logNewAttrs(); err != nil {
		return false, err
	}
	if !d.inner.Update(id, e) {
		return false, nil
	}
	if err := d.w.Append(wal.Op{Kind: wal.KindUpdate, ID: uint64(id), Data: e.Marshal(nil)}); err != nil {
		return false, err
	}
	return true, nil
}

// Delete removes the document durably.
func (d *DurableTable) Delete(id ID) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.inner.Delete(id) {
		return false, nil
	}
	if err := d.w.Append(wal.Op{Kind: wal.KindDelete, ID: uint64(id)}); err != nil {
		return false, err
	}
	return true, nil
}

// Compact merges underfilled partitions durably: the operation is logged
// so recovery reproduces the merged layout.
func (d *DurableTable) Compact(threshold float64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.inner.Compact(threshold)
	if n == 0 {
		return 0, nil
	}
	err := d.w.Append(wal.Op{Kind: wal.KindCompact, ID: math.Float64bits(threshold)})
	return n, err
}

// Sync makes all appended operations durable.
func (d *DurableTable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.w.Sync()
}

// Checkpoint compacts the log to the current live contents: attribute
// registrations followed by one insert per live document. Ids are
// preserved. The log shrinks to O(live data) regardless of history.
func (d *DurableTable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.w.Sync(); err != nil {
		return err
	}
	var ops []wal.Op
	for i := 0; i < d.dict.Len(); i++ {
		ops = append(ops, wal.Op{Kind: wal.KindAttr, ID: uint64(i), Data: []byte(d.dict.Name(i))})
	}
	for _, r := range d.inner.ScanAll() {
		ops = append(ops, wal.Op{Kind: wal.KindInsert, ID: uint64(r.ID), Data: r.Entity.Marshal(nil)})
	}
	if err := d.w.Close(); err != nil {
		return err
	}
	if err := wal.Rewrite(d.path, ops); err != nil {
		return err
	}
	w, err := wal.Create(d.path)
	if err != nil {
		return err
	}
	if d.obsr != nil {
		w.SetObserver(d.obsr)
	}
	d.w = w
	d.logged = d.dict.Len()
	return nil
}

// Close syncs and closes the log. The table remains readable in memory.
func (d *DurableTable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.w.Close()
}
