package cinderella

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/table"
	"cinderella/internal/wal"
)

// ErrClosed is returned by mutating operations, Sync, and Checkpoint on
// a closed DurableTable. Close itself is idempotent: closing twice is a
// no-op, which lets a server's drain path and a defer race safely.
var ErrClosed = errors.New("cinderella: durable table is closed")

// DurableTable is a Table backed by a write-ahead log. Every mutating
// operation is appended to the log before it is applied; OpenFile replays
// the log on startup, and because Cinderella's placement decisions are
// deterministic, the recovered partitioning matches the pre-crash one.
//
// Durability granularity: operations are buffered and made durable by
// Sync, Checkpoint, and Close. Call Sync after operations that must
// survive a crash, or use LastLSN/SyncTo to let a group committer
// acknowledge many concurrent writers with one fsync (see
// internal/server).
type DurableTable struct {
	*Table
	mu sync.Mutex
	// syncMu serializes SyncTo's out-of-lock fsync against writer swaps
	// (Checkpoint) and Close, so the file being fsynced cannot be closed
	// underneath the syscall. Lock order: syncMu before mu; never the
	// reverse.
	syncMu sync.Mutex
	w      *wal.Writer
	path   string
	logged int  // attribute names already logged
	closed bool // set by Close; all later mutations return ErrClosed

	// LSN bookkeeping for group commit. An LSN counts WAL records
	// appended over the table's lifetime; base carries the count across
	// Checkpoint's writer swap (the new log starts at record 0 but every
	// pre-checkpoint LSN is durable by construction). appendLSN and
	// durableLSN are written under mu but read lock-free by SyncTo's
	// fast path and by monitoring.
	base       uint64
	appendLSN  atomic.Uint64
	durableLSN atomic.Uint64
}

// OpenFile opens (or creates) a durable table at path. An existing log
// is replayed first; cfg must match the configuration the log was
// written under, otherwise the recovered partitioning will be valid but
// different (documents and ids are still recovered exactly).
func OpenFile(path string, cfg Config) (*DurableTable, error) {
	t := Open(cfg)
	d := &DurableTable{Table: t, path: path}

	r, err := wal.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	for {
		op, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cinderella: replaying %s: %w", path, err)
		}
		if err := d.apply(op); err != nil {
			return nil, fmt.Errorf("cinderella: replaying %s: %w", path, err)
		}
	}
	d.logged = t.dict.Len()

	// Restore the cold tier: verify every manifest-listed image and
	// re-freeze the listed partitions from the replayed rows. A corrupt
	// image refuses the open (see recoverTier).
	if err := d.recoverTier(); err != nil {
		return nil, err
	}

	w, err := wal.Create(path)
	if err != nil {
		return nil, err
	}
	if t.obsr != nil {
		w.SetObserver(t.obsr)
	}
	d.w = w
	return d, nil
}

// SetObserver attaches (or replaces) a telemetry registry, covering both
// the in-memory table and the WAL writer.
func (d *DurableTable) SetObserver(r *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Table.SetObserver(r)
	d.w.SetObserver(r)
}

// apply executes one replayed operation against the in-memory table.
func (d *DurableTable) apply(op wal.Op) error {
	switch op.Kind {
	case wal.KindAttr:
		// Attribute registration: names must resolve to the same dense
		// ids they had when logged.
		want := int(op.ID)
		got := d.dict.ID(string(op.Data))
		if got != want {
			return fmt.Errorf("attribute %q replayed to id %d, logged as %d", op.Data, got, want)
		}
	case wal.KindInsert:
		e, _, err := entity.Unmarshal(op.Data)
		if err != nil {
			return err
		}
		d.inner.InsertWithID(core.EntityID(op.ID), e)
	case wal.KindUpdate:
		e, _, err := entity.Unmarshal(op.Data)
		if err != nil {
			return err
		}
		if !d.inner.Update(core.EntityID(op.ID), e) {
			return fmt.Errorf("update of unknown entity %d", op.ID)
		}
	case wal.KindDelete:
		if !d.inner.Delete(core.EntityID(op.ID)) {
			return fmt.Errorf("delete of unknown entity %d", op.ID)
		}
	case wal.KindCompact:
		d.inner.Compact(math.Float64frombits(op.ID))
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

// logNewAttrs appends registrations for attribute names assigned since
// the last mutation, keeping the log self-describing.
func (d *DurableTable) logNewAttrs() error {
	n := d.dict.Len()
	for ; d.logged < n; d.logged++ {
		err := d.w.Append(wal.Op{
			Kind: wal.KindAttr,
			ID:   uint64(d.logged),
			Data: []byte(d.dict.Name(d.logged)),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// noteAppend refreshes the append LSN after one or more successful WAL
// appends. Callers hold d.mu.
func (d *DurableTable) noteAppend() {
	d.appendLSN.Store(d.base + d.w.Seq())
}

// noteSynced refreshes the durable LSN after a successful sync (or a
// close/checkpoint, which imply one). Callers hold d.mu.
func (d *DurableTable) noteSynced() {
	d.durableLSN.Store(d.base + d.w.Synced())
}

// Insert stores doc durably and returns its id.
func (d *DurableTable) Insert(doc Doc) (ID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	e := d.toEntity(doc)
	if err := d.logNewAttrs(); err != nil {
		return 0, err
	}
	// The id the table will assign is deterministic; log after applying
	// so the id is known, then the caller syncs when durability matters.
	id := d.inner.Insert(e)
	if err := d.w.Append(wal.Op{Kind: wal.KindInsert, ID: uint64(id), Data: e.Marshal(nil)}); err != nil {
		return 0, err
	}
	d.noteAppend()
	return id, nil
}

// InsertWithID stores doc durably under a caller-chosen id. Like
// Table.InsertWithID it panics if id is zero or already live — callers
// (the sharded router, which allocates ids from a global counter before
// routing) own id uniqueness.
func (d *DurableTable) InsertWithID(id ID, doc Doc) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	e := d.toEntity(doc)
	if err := d.logNewAttrs(); err != nil {
		return err
	}
	d.inner.InsertWithID(id, e)
	if err := d.w.Append(wal.Op{Kind: wal.KindInsert, ID: uint64(id), Data: e.Marshal(nil)}); err != nil {
		return err
	}
	d.noteAppend()
	return nil
}

// InsertEntity stores a pre-built entity durably (see Table.InsertEntity
// for the id-space contract) and returns its id. The binary wire path
// uses it so a decoded record goes straight into the table and the WAL
// without a Doc round trip. The entity is not retained.
func (d *DurableTable) InsertEntity(e *entity.Entity) (ID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if err := d.Table.checkEntityAttrs(e); err != nil {
		return 0, err
	}
	if err := d.logNewAttrs(); err != nil {
		return 0, err
	}
	id := d.inner.Insert(e)
	if err := d.w.Append(wal.Op{Kind: wal.KindInsert, ID: uint64(id), Data: e.Marshal(nil)}); err != nil {
		return 0, err
	}
	d.noteAppend()
	return id, nil
}

// InsertEntityWithID stores a pre-built entity durably under a
// caller-chosen id (the sharded router's binary ingest path). Like
// InsertWithID it panics if id is zero or already live.
func (d *DurableTable) InsertEntityWithID(id ID, e *entity.Entity) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.Table.checkEntityAttrs(e); err != nil {
		return err
	}
	if err := d.logNewAttrs(); err != nil {
		return err
	}
	d.inner.InsertWithID(id, e)
	if err := d.w.Append(wal.Op{Kind: wal.KindInsert, ID: uint64(id), Data: e.Marshal(nil)}); err != nil {
		return err
	}
	d.noteAppend()
	return nil
}

// UpdateEntity replaces a document durably with a pre-built entity.
func (d *DurableTable) UpdateEntity(id ID, e *entity.Entity) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if err := d.Table.checkEntityAttrs(e); err != nil {
		return false, err
	}
	if err := d.logNewAttrs(); err != nil {
		return false, err
	}
	if !d.inner.Update(id, e) {
		return false, nil
	}
	if err := d.w.Append(wal.Op{Kind: wal.KindUpdate, ID: uint64(id), Data: e.Marshal(nil)}); err != nil {
		return false, err
	}
	d.noteAppend()
	return true, nil
}

// Update replaces the document durably.
func (d *DurableTable) Update(id ID, doc Doc) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	e := d.toEntity(doc)
	if err := d.logNewAttrs(); err != nil {
		return false, err
	}
	if !d.inner.Update(id, e) {
		return false, nil
	}
	if err := d.w.Append(wal.Op{Kind: wal.KindUpdate, ID: uint64(id), Data: e.Marshal(nil)}); err != nil {
		return false, err
	}
	d.noteAppend()
	return true, nil
}

// Delete removes the document durably.
func (d *DurableTable) Delete(id ID) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if !d.inner.Delete(id) {
		return false, nil
	}
	if err := d.w.Append(wal.Op{Kind: wal.KindDelete, ID: uint64(id)}); err != nil {
		return false, err
	}
	d.noteAppend()
	return true, nil
}

// Compact merges underfilled partitions durably: the operation is logged
// so recovery reproduces the merged layout.
func (d *DurableTable) Compact(threshold float64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	n := d.inner.Compact(threshold)
	if n == 0 {
		return 0, nil
	}
	err := d.w.Append(wal.Op{Kind: wal.KindCompact, ID: math.Float64bits(threshold)})
	if err == nil {
		d.noteAppend()
	}
	return n, err
}

// ReclusterPartition re-rates up to max members of one victim
// partition against the workload-blended objective, logging every
// entity that moved as a WAL update op so recovery replays it (replay
// re-places the entity with the plain attribute rating — a valid,
// possibly different partition; contents and liveness are exact).
// Locking and logging are per entity: concurrent writers interleave
// between moves instead of stalling for the whole batch. The shard
// parameter satisfies the reclusterer's store interface; an unsharded
// table ignores it (heat rows report shard -1).
func (d *DurableTable) ReclusterPartition(shard int, pid uint64, max int, blender core.RatingBlender) (table.ReclusterResult, error) {
	_ = shard
	members := d.inner.PartitionMembers(core.PartitionID(pid))
	if max > 0 && len(members) > max {
		members = members[:max]
	}
	var res table.ReclusterResult
	for _, id := range members {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return res, ErrClosed
		}
		mv, examined, moved := d.inner.ReclusterEntity(id, core.PartitionID(pid), blender)
		if examined {
			res.Examined++
		}
		if moved {
			if err := d.w.Append(wal.Op{Kind: wal.KindUpdate, ID: uint64(mv.ID), Data: mv.Data}); err != nil {
				d.mu.Unlock()
				return res, err
			}
			d.noteAppend()
			res.Moved++
			res.Moves = append(res.Moves, mv)
		}
		d.mu.Unlock()
	}
	return res, nil
}

// Sync makes all appended operations durable.
func (d *DurableTable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.w.Sync(); err != nil {
		return err
	}
	d.noteSynced()
	return nil
}

// LastLSN returns the log sequence number of the most recent append. A
// writer that just mutated the table reads LastLSN and passes it to
// SyncTo (or a group committer) to wait for exactly that much history to
// become durable. LSNs are monotonic across Checkpoint.
func (d *DurableTable) LastLSN() uint64 { return d.appendLSN.Load() }

// DurableLSN returns the highest LSN known durable: every operation
// appended at or before it has been fsynced (or captured by a
// checkpoint).
func (d *DurableTable) DurableLSN() uint64 { return d.durableLSN.Load() }

// SyncTo makes every operation appended at or before lsn durable. When a
// concurrent SyncTo, Sync, or Checkpoint already covered lsn it returns
// immediately without touching the file — the coalescing that makes
// group commit turn N concurrent fsyncs into one. The fsync itself runs
// outside the table lock, so concurrent mutations proceed during the
// disk wait and pile into the next batch. Calling SyncTo on a closed
// table succeeds if lsn was already durable (Close syncs), and returns
// ErrClosed otherwise.
func (d *DurableTable) SyncTo(lsn uint64) error {
	if d.durableLSN.Load() >= lsn {
		return nil
	}
	// syncMu keeps the writer alive across the out-of-lock fsync:
	// Checkpoint and Close, which swap or close the file, queue behind
	// it. It also serializes concurrent SyncTo callers, though the
	// committer normally funnels them into one goroutine anyway.
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	if d.durableLSN.Load() >= lsn {
		return nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	w := d.w
	seq, err := w.Flush()
	d.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.SyncFile(); err != nil {
		return err
	}
	d.mu.Lock()
	w.MarkSynced(seq)
	d.noteSynced()
	d.mu.Unlock()
	return nil
}

// Checkpoint compacts the log to the current live contents: attribute
// registrations followed by one insert per live document. Ids are
// preserved. The log shrinks to O(live data) regardless of history.
func (d *DurableTable) Checkpoint() error {
	d.syncMu.Lock() // wait out any in-flight SyncTo fsync before swapping the writer
	defer d.syncMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.w.Sync(); err != nil {
		return err
	}
	var ops []wal.Op
	for i := 0; i < d.dict.Len(); i++ {
		ops = append(ops, wal.Op{Kind: wal.KindAttr, ID: uint64(i), Data: []byte(d.dict.Name(i))})
	}
	for _, r := range d.inner.ScanAll() {
		ops = append(ops, wal.Op{Kind: wal.KindInsert, ID: uint64(r.ID), Data: r.Entity.Marshal(nil)})
	}
	if err := d.w.Close(); err != nil {
		return err
	}
	if err := wal.Rewrite(d.path, ops); err != nil {
		return err
	}
	w, err := wal.Create(d.path)
	if err != nil {
		return err
	}
	if d.obsr != nil {
		w.SetObserver(d.obsr)
	}
	d.w = w
	d.logged = d.dict.Len()
	// The rewritten log captured everything ever appended: carry the LSN
	// clock across the writer swap and mark all of it durable.
	d.base = d.appendLSN.Load()
	d.durableLSN.Store(d.base)
	// Reconcile the tier manifest with the live frozen set (implicit
	// thaws leave it over-reporting until now) and refresh the images.
	frozen := d.inner.FrozenPartitions()
	pids := make([]uint64, len(frozen))
	for i, p := range frozen {
		pids[i] = uint64(p)
	}
	return d.persistTier(pids...)
}

// Close syncs and closes the log. The table remains readable in memory.
// Close is idempotent — a second Close is a no-op returning nil — and
// safe to race with Sync, Checkpoint, and mutations: whoever loses the
// race to a completed Close gets ErrClosed.
func (d *DurableTable) Close() error {
	d.syncMu.Lock() // wait out any in-flight SyncTo fsync before closing the file
	defer d.syncMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.w.Close()
	if err == nil {
		d.noteSynced()
	}
	return err
}
