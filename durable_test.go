package cinderella

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"cinderella/internal/obs"
)

func openDurable(t *testing.T, path string, cfg Config) *DurableTable {
	t.Helper()
	d, err := OpenFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDurableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	cfg := Config{Weight: 0.3, PartitionSizeLimit: 100}

	d := openDurable(t, path, cfg)
	id1, err := d.Insert(Doc{"name": "camera", "aperture": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := d.Insert(Doc{"name": "disk", "rotation": 7200})
	if _, err := d.Update(id1, Doc{"name": "camera2", "aperture": 1.8, "wifi": 1}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Delete(id2); !ok {
		t.Fatal("delete failed")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything recovered, same ids, same content.
	d2 := openDurable(t, path, cfg)
	defer d2.Close()
	if d2.Len() != 1 {
		t.Fatalf("recovered Len = %d", d2.Len())
	}
	doc, ok := d2.Get(id1)
	if !ok {
		t.Fatal("recovered Get missed")
	}
	if doc["name"] != "camera2" || doc["wifi"] != int64(1) {
		t.Fatalf("recovered doc = %v", doc)
	}
	if _, ok := d2.Get(id2); ok {
		t.Fatal("deleted doc recovered")
	}
	// New inserts continue the id sequence (no reuse).
	id3, _ := d2.Insert(Doc{"x": 1})
	if id3 <= id2 {
		t.Fatalf("id3 = %d not beyond %d", id3, id2)
	}
}

func TestDurableRecoversPartitioning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	cfg := Config{Weight: 0.2, PartitionSizeLimit: 50}

	d := openDurable(t, path, cfg)
	for i := 0; i < 500; i++ {
		attrs := []string{"camera_a", "camera_b"}
		if i%2 == 1 {
			attrs = []string{"disk_a", "disk_b"}
		}
		doc := Doc{"name": i}
		for _, a := range attrs {
			doc[a] = i
		}
		if _, err := d.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	before := partitionShape(d.Table)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, path, cfg)
	defer d2.Close()
	after := partitionShape(d2.Table)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("partitioning changed across recovery:\nbefore %v\nafter  %v", before, after)
	}
	// Queries behave identically.
	if got := len(d2.Query("camera_a")); got != 250 {
		t.Fatalf("Query(camera_a) = %d", got)
	}
}

// partitionShape summarizes a partitioning as sorted "records:attrs"
// signatures.
func partitionShape(t *Table) []string {
	var out []string
	for _, p := range t.Partitions() {
		attrs := append([]string(nil), p.Attributes...)
		sort.Strings(attrs)
		out = append(out, fmt.Sprintf("%d:%v", p.Records, attrs))
	}
	sort.Strings(out)
	return out
}

func TestDurableTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	cfg := Config{}
	d := openDurable(t, path, cfg)
	d.Insert(Doc{"a": 1})
	d.Insert(Doc{"b": 2})
	d.Close()

	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, path, cfg)
	defer d2.Close()
	if d2.Len() != 1 {
		t.Fatalf("after torn tail Len = %d, want 1 (durable prefix)", d2.Len())
	}
}

func TestDurableCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	cfg := Config{Weight: 0.3, PartitionSizeLimit: 100}
	d := openDurable(t, path, cfg)
	var keep ID
	for i := 0; i < 200; i++ {
		id, _ := d.Insert(Doc{"attr": i})
		if i == 117 {
			keep = id
		} else {
			d.Delete(id)
		}
	}
	big, _ := os.Stat(path)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	small, _ := os.Stat(path)
	if small.Size() >= big.Size() {
		t.Fatalf("checkpoint did not shrink log: %d -> %d", big.Size(), small.Size())
	}
	// Table still works and survives another recovery with the same id.
	doc, ok := d.Get(keep)
	if !ok || doc["attr"] != int64(117) {
		t.Fatalf("doc after checkpoint = %v, %v", doc, ok)
	}
	d.Insert(Doc{"post": "checkpoint"})
	d.Close()

	d2 := openDurable(t, path, cfg)
	defer d2.Close()
	if d2.Len() != 2 {
		t.Fatalf("recovered Len = %d", d2.Len())
	}
	if doc, ok := d2.Get(keep); !ok || doc["attr"] != int64(117) {
		t.Fatalf("id not preserved across checkpoint: %v, %v", doc, ok)
	}
}

func TestDurableSyncAndMiss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	d := openDurable(t, path, Config{})
	d.Insert(Doc{"a": 1})
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if ok, err := d.Update(999, Doc{"x": 1}); ok || err != nil {
		t.Fatalf("update miss = %v, %v", ok, err)
	}
	if ok, err := d.Delete(999); ok || err != nil {
		t.Fatalf("delete miss = %v, %v", ok, err)
	}
	d.Close()
}

func TestDurableManyAttributesReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	cfg := Config{}
	d := openDurable(t, path, cfg)
	for i := 0; i < 50; i++ {
		d.Insert(Doc{fmt.Sprintf("attr_%02d", i): i})
	}
	d.Close()
	d2 := openDurable(t, path, cfg)
	defer d2.Close()
	for i := 0; i < 50; i++ {
		if got := len(d2.Query(fmt.Sprintf("attr_%02d", i))); got != 1 {
			t.Fatalf("attr_%02d query = %d", i, got)
		}
	}
}

func TestDurableCompactReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	cfg := Config{Weight: 0.5, PartitionSizeLimit: 50}
	d := openDurable(t, path, cfg)
	var ids []ID
	for i := 0; i < 200; i++ {
		id, _ := d.Insert(Doc{"a": 1, "b": 2})
		ids = append(ids, id)
	}
	for i, id := range ids {
		if i%40 != 0 {
			d.Delete(id)
		}
	}
	if _, err := d.Compact(0.5); err != nil {
		t.Fatal(err)
	}
	before := partitionShape(d.Table)
	d.Close()

	d2 := openDurable(t, path, cfg)
	defer d2.Close()
	after := partitionShape(d2.Table)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("compacted layout not reproduced:\nbefore %v\nafter  %v", before, after)
	}
}

func TestDurableCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	d := openDurable(t, path, Config{})
	if _, err := d.Insert(Doc{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: got %v, want nil (no-op)", err)
	}
	// Every mutating entry point must refuse cleanly after Close.
	if _, err := d.Insert(Doc{"b": 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: got %v, want ErrClosed", err)
	}
	if _, err := d.Update(1, Doc{"b": 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Update after Close: got %v, want ErrClosed", err)
	}
	if _, err := d.Delete(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: got %v, want ErrClosed", err)
	}
	if _, err := d.Compact(0.5); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close: got %v, want ErrClosed", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: got %v, want ErrClosed", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: got %v, want ErrClosed", err)
	}
	// The table stays readable in memory.
	if d.Len() != 1 {
		t.Fatalf("Len after Close = %d, want 1", d.Len())
	}
}

// TestDurableCloseCheckpointRace exercises the server-shutdown shape:
// drain (sync + checkpoint) racing a deferred Close. Whatever the
// interleaving, nothing may deadlock, panic, or corrupt the log, and the
// losers must see ErrClosed rather than touching a closed file.
func TestDurableCloseCheckpointRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("r%d.wal", round))
		d := openDurable(t, path, Config{})
		for i := 0; i < 50; i++ {
			if _, err := d.Insert(Doc{"k": i, "round": round}); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for _, f := range []func() error{d.Checkpoint, d.Sync, d.Close, d.Close} {
			wg.Add(1)
			go func(f func() error) {
				defer wg.Done()
				if err := f(); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("racing op: %v", err)
				}
			}(f)
		}
		wg.Wait()
		// The log must replay to the full contents regardless of which
		// operation won.
		re := openDurable(t, path, Config{})
		if re.Len() != 50 {
			t.Fatalf("round %d: recovered %d docs, want 50", round, re.Len())
		}
		re.Close()
	}
}

func TestDurableLSNAndSyncTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	d := openDurable(t, path, Config{})
	if got := d.LastLSN(); got != 0 {
		t.Fatalf("fresh LastLSN = %d, want 0", got)
	}
	if _, err := d.Insert(Doc{"a": 1}); err != nil {
		t.Fatal(err)
	}
	lsn := d.LastLSN()
	if lsn == 0 {
		t.Fatal("LastLSN did not advance after Insert")
	}
	if d.DurableLSN() >= lsn {
		t.Fatal("insert should not be durable before any sync")
	}
	if err := d.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	if d.DurableLSN() < lsn {
		t.Fatalf("DurableLSN = %d after SyncTo(%d)", d.DurableLSN(), lsn)
	}
	// A second SyncTo for covered history must not fsync again.
	syncs := walSyncCount(t, d)
	if err := d.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	if got := walSyncCount(t, d); got != syncs {
		t.Fatalf("covered SyncTo fsynced anyway (%d -> %d)", syncs, got)
	}
	// LSNs stay monotonic across Checkpoint, and checkpointed history is
	// durable by construction.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d.DurableLSN() < lsn || d.LastLSN() < lsn {
		t.Fatalf("LSN clock went backwards across Checkpoint: last=%d durable=%d want >= %d",
			d.LastLSN(), d.DurableLSN(), lsn)
	}
	if _, err := d.Insert(Doc{"b": 2}); err != nil {
		t.Fatal(err)
	}
	if d.LastLSN() <= lsn {
		t.Fatal("LastLSN did not advance past pre-checkpoint history")
	}
	if err := d.SyncTo(d.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close: covered LSNs succeed, uncovered would be ErrClosed.
	if err := d.SyncTo(d.DurableLSN()); err != nil {
		t.Fatalf("SyncTo(covered) after Close: %v", err)
	}
}

// walSyncCount observes fsyncs through the telemetry registry.
func walSyncCount(t *testing.T, d *DurableTable) int64 {
	t.Helper()
	if d.Observer() == nil {
		r := NewObserver()
		d.SetObserver(r)
	}
	return d.Observer().Counter(obs.CWALSyncs)
}
