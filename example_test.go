package cinderella_test

import (
	"fmt"
	"sort"

	"cinderella"
)

// Example shows the minimal workflow: open a table, insert irregular
// documents, and query by attribute with partition pruning.
func Example() {
	tbl := cinderella.Open(cinderella.Config{Weight: 0.2, PartitionSizeLimit: 1000})

	tbl.Insert(cinderella.Doc{"name": "Canon S120", "aperture": 2.0})
	tbl.Insert(cinderella.Doc{"name": "WD4000FYYZ", "rotation": 7200})
	tbl.Insert(cinderella.Doc{"name": "Sony SLT-A99", "aperture": 2.8})

	var names []string
	for _, r := range tbl.Query("aperture") {
		names = append(names, r.Doc["name"].(string))
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output: [Canon S120 Sony SLT-A99]
}

// ExampleTable_QueryWhere demonstrates value predicates pruned by zone
// maps.
func ExampleTable_QueryWhere() {
	tbl := cinderella.Open(cinderella.Config{})
	tbl.Insert(cinderella.Doc{"sku": "a", "price": 19.99})
	tbl.Insert(cinderella.Doc{"sku": "b", "price": 149.00})
	tbl.Insert(cinderella.Doc{"sku": "c", "price": 99.50})

	rows, _ := tbl.QueryWhere(cinderella.Where("price", "<", 100.0))
	fmt.Println(len(rows), "cheap products")
	// Output: 2 cheap products
}

// ExampleTable_QueryWithReport shows how to observe partition pruning.
func ExampleTable_QueryWithReport() {
	tbl := cinderella.Open(cinderella.Config{Weight: 0.2, PartitionSizeLimit: 100})
	for i := 0; i < 10; i++ {
		tbl.Insert(cinderella.Doc{"camera_sensor": i})
		tbl.Insert(cinderella.Doc{"disk_rpm": i})
	}
	_, rep := tbl.QueryWithReport("disk_rpm")
	fmt.Printf("touched %d of %d partitions\n", rep.PartitionsTouched, rep.PartitionsTotal)
	// Output: touched 1 of 2 partitions
}
