// Catalog: the product-catalog scenario motivating the paper. A shop
// continuously ingests products of evolving categories into one universal
// table; Cinderella keeps category-like partitions without anyone
// modelling a schema, and category-style queries stay cheap as the
// catalog grows.
//
// The example also demonstrates updates (a product gains attributes and
// migrates to a better partition) and deletes (discontinued lines).
package main

import (
	"fmt"
	"math/rand"

	"cinderella"
)

// category describes a product family by its characteristic attributes.
type category struct {
	name  string
	attrs []string
}

var categories = []category{
	{"camera", []string{"resolution", "aperture", "sensor", "screen"}},
	{"phone", []string{"resolution", "screen", "storage", "battery", "os"}},
	{"tv", []string{"screen", "tuner", "panel", "hdmi_ports"}},
	{"disk", []string{"storage", "rotation", "interface", "cache"}},
	{"gps", []string{"screen", "maps", "battery", "waterproof"}},
}

func main() {
	tbl := cinderella.Open(cinderella.Config{
		Weight:             0.3,
		PartitionSizeLimit: 2000,
	})
	rng := rand.New(rand.NewSource(7))

	// Ingest a stream of products. New models appear with slightly
	// different attribute subsets — the irregularity of real catalogs.
	var firstCamera cinderella.ID
	for i := 0; i < 10000; i++ {
		cat := categories[rng.Intn(len(categories))]
		doc := cinderella.Doc{
			"name":   fmt.Sprintf("%s-%04d", cat.name, i),
			"weight": 50 + rng.Intn(10000),
			"price":  float64(rng.Intn(300000)) / 100,
		}
		for _, a := range cat.attrs {
			if rng.Float64() < 0.85 { // not every model has every attribute
				doc[a] = rng.Intn(1000)
			}
		}
		id := tbl.Insert(doc)
		if cat.name == "camera" && firstCamera == 0 {
			firstCamera = id
		}
	}
	fmt.Printf("ingested %d products into %d partitions\n", tbl.Len(), len(tbl.Partitions()))

	// Category-style queries prune everything else.
	for _, probe := range []string{"aperture", "tuner", "rotation"} {
		rows, rep := tbl.QueryWithReport(probe)
		fmt.Printf("query(%-9s): %5d hits, touched %d/%d partitions\n",
			probe, len(rows), rep.PartitionsTouched, rep.PartitionsTotal)
	}

	// A product line evolves: the camera gains connectivity attributes
	// (the paper's "soon we will see cameras with mobile connectivity").
	doc, _ := tbl.Get(firstCamera)
	doc["wifi"] = 1
	doc["mobile"] = "LTE"
	delete(doc, "storage") // and loses its storage card slot
	tbl.Update(firstCamera, doc)
	got, _ := tbl.Get(firstCamera)
	fmt.Printf("updated camera now has %d attributes\n", len(got))

	// A category is discontinued: delete all GPS units.
	removed := 0
	for _, r := range tbl.Query("maps") {
		if tbl.Delete(r.ID) {
			removed++
		}
	}
	fmt.Printf("discontinued %d gps units; %d products remain in %d partitions\n",
		removed, tbl.Len(), len(tbl.Partitions()))
}
