// DBpedia-like: irregular person records with a long-tail attribute
// distribution (the paper's main evaluation data). The example compares
// the universal table against Cinderella on identical data and shows the
// read-volume reduction for selective queries.
//
// It is fully self-contained: a compact generator below produces
// person-like records (athletes, politicians, artists, …) whose rare
// attributes cluster by latent type, like the real DBpedia extract.
package main

import (
	"fmt"
	"math/rand"

	"cinderella"
)

// personType is a latent class with characteristic attributes.
type personType struct {
	name  string
	attrs []string
}

var types = []personType{
	{"athlete", []string{"team", "position", "league", "debut_year"}},
	{"politician", []string{"party", "office", "term_start", "constituency"}},
	{"artist", []string{"genre", "instrument", "label", "active_since"}},
	{"scientist", []string{"field", "institution", "doctoral_advisor", "known_for"}},
	{"actor", []string{"years_active", "notable_film", "agency", "awards"}},
}

func generate(n int, seed int64) []cinderella.Doc {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]cinderella.Doc, 0, n)
	for i := 0; i < n; i++ {
		// Zipf-ish type popularity.
		t := types[min(rng.Intn(len(types)), rng.Intn(len(types)))]
		doc := cinderella.Doc{"name": fmt.Sprintf("person-%06d", i)}
		if rng.Float64() < 0.9 {
			doc["birth_date"] = 1900 + rng.Intn(100)
		}
		if rng.Float64() < 0.4 {
			doc["birth_place"] = fmt.Sprintf("city-%d", rng.Intn(500))
		}
		for _, a := range t.attrs {
			if rng.Float64() < 0.7 {
				doc[a] = rng.Intn(1000)
			}
		}
		docs = append(docs, doc)
	}
	return docs
}

func main() {
	docs := generate(50000, 42)

	load := func(cfg cinderella.Config) *cinderella.Table {
		tbl := cinderella.Open(cfg)
		for _, d := range docs {
			tbl.Insert(d)
		}
		return tbl
	}

	universal := load(cinderella.Config{Strategy: cinderella.StrategyUniversal})
	cind := load(cinderella.Config{Weight: 0.2, PartitionSizeLimit: 2000})

	fmt.Printf("loaded %d person records\n", cind.Len())
	fmt.Printf("universal table: %d partition(s); cinderella: %d partitions\n\n",
		len(universal.Partitions()), len(cind.Partitions()))

	// Selective queries: attributes specific to one person type.
	fmt.Printf("%-18s %12s %12s %10s %10s\n", "query", "univ KB", "cind KB", "reduction", "hits")
	for _, probe := range []string{"doctoral_advisor", "constituency", "instrument", "birth_place", "birth_date"} {
		universal.ResetIOStats()
		uRows := universal.Query(probe)
		_, _, uBytes, _ := universal.IOStats()

		cind.ResetIOStats()
		cRows := cind.Query(probe)
		_, _, cBytes, _ := cind.IOStats()

		if len(uRows) != len(cRows) {
			panic("result mismatch between partitionings")
		}
		red := float64(uBytes) / float64(max64(cBytes, 1))
		fmt.Printf("%-18s %12d %12d %9.1fx %10d\n",
			probe, uBytes/1024, cBytes/1024, red, len(cRows))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
