// Quickstart: open a table, insert a handful of irregular records, query
// by attribute, and inspect the partitioning Cinderella built.
package main

import (
	"fmt"

	"cinderella"
)

func main() {
	tbl := cinderella.Open(cinderella.Config{
		Weight:             0.2,
		PartitionSizeLimit: 1000,
	})

	// The universal table of the paper's Figure 1: electronic devices
	// with wildly different attribute sets.
	tbl.Insert(cinderella.Doc{"name": "Canon PowerShot S120", "resolution": 12.1, "aperture": 2.0, "screen": 3.0, "weight": 198})
	tbl.Insert(cinderella.Doc{"name": "Sony SLT-A99", "resolution": 24.0, "screen": 3.0, "weight": 733})
	tbl.Insert(cinderella.Doc{"name": "Samsung Galaxy S4", "resolution": 13.0, "screen": 4.3, "storage": "32GB", "weight": 133})
	tbl.Insert(cinderella.Doc{"name": "Apple iPod touch", "resolution": 5.0, "screen": 4.0, "storage": "64GB", "weight": 88})
	tbl.Insert(cinderella.Doc{"name": "LG 60LA7408", "resolution": 0.0, "screen": 40.0, "tuner": "DVB-T/C/S", "weight": 9800})
	tbl.Insert(cinderella.Doc{"name": "WD4000FYYZ", "storage": "4TB", "rotation": 7200})
	tbl.Insert(cinderella.Doc{"name": "Garmin Dakota 20", "screen": 2.6, "form_factor": "3.5\"", "weight": 150})

	// Query: which devices have an aperture (cameras with built-in lens)?
	fmt.Println("devices with aperture:")
	for _, r := range tbl.Query("aperture") {
		fmt.Printf("  %v (f/%v)\n", r.Doc["name"], r.Doc["aperture"])
	}

	// Query with OR semantics: anything with a tuner or a rotation speed.
	fmt.Println("TVs and disks:")
	for _, r := range tbl.Query("tuner", "rotation") {
		fmt.Printf("  %v\n", r.Doc["name"])
	}

	// The pruning report shows how many partitions the query skipped.
	_, rep := tbl.QueryWithReport("rotation")
	fmt.Printf("query(rotation): touched %d of %d partitions (%d pruned)\n",
		rep.PartitionsTouched, rep.PartitionsTotal, rep.PartitionsPruned)

	fmt.Printf("partitions after load: %d\n", len(tbl.Partitions()))
	for i, p := range tbl.Partitions() {
		fmt.Printf("  partition %d: %d records, attrs %v\n", i, p.Records, p.Attributes)
	}
}
