// Store: the production-shaped workflow — a durable document store with
// write-ahead logging, crash recovery, checkpointing, value-predicate
// queries over zone maps, and partition compaction after churn.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cinderella"
)

func main() {
	dir, err := os.MkdirTemp("", "cinderella-store")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "catalog.wal")
	cfg := cinderella.Config{Weight: 0.3, PartitionSizeLimit: 500}

	// Session 1: ingest, then "crash" (close without checkpoint).
	store, err := cinderella.OpenFile(path, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var cameraID cinderella.ID
	for i := 0; i < 2000; i++ {
		var doc cinderella.Doc
		switch i % 3 {
		case 0:
			doc = cinderella.Doc{"sku": i, "kind": "camera", "aperture": 1.4 + float64(i%40)/10, "price": 199.0 + float64(i%900)}
		case 1:
			doc = cinderella.Doc{"sku": i, "kind": "tv", "screen": 32 + i%60, "price": 299.0 + float64(i%2500)}
		default:
			doc = cinderella.Doc{"sku": i, "kind": "disk", "capacity_tb": 1 + i%20, "price": 59.0 + float64(i%400)}
		}
		id, err := store.Insert(doc)
		if err != nil {
			log.Fatal(err)
		}
		if cameraID == 0 && i%3 == 0 {
			cameraID = id
		}
	}
	if err := store.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: %d documents in %d partitions\n", store.Len(), len(store.Partitions()))
	store.Close()

	// Session 2: recover, query with predicates, churn, compact.
	store, err = cinderella.OpenFile(path, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Printf("session 2: recovered %d documents in %d partitions\n",
		store.Len(), len(store.Partitions()))

	if doc, ok := store.Get(cameraID); ok {
		fmt.Printf("recovered first camera: sku=%v aperture=%v\n", doc["sku"], doc["aperture"])
	}

	// Zone-map pruned range query: cheap cameras with bright lenses.
	rows, rep := store.QueryWhere(
		cinderella.Where("aperture", "<=", 2.0),
		cinderella.Where("price", "<", 400.0),
	)
	fmt.Printf("bright cheap cameras: %d (touched %d/%d partitions)\n",
		len(rows), rep.PartitionsTouched, rep.PartitionsTotal)

	// Discontinue all disks, then compact the fragmented partitions.
	removed := 0
	for _, r := range store.Query("capacity_tb") {
		if ok, err := store.Delete(r.ID); err != nil {
			log.Fatal(err)
		} else if ok {
			removed++
		}
	}
	before := len(store.Partitions())
	merges, err := store.Compact(0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted %d disks; compacted %d -> %d partitions (%d merges)\n",
		removed, before, len(store.Partitions()), merges)

	// Checkpoint shrinks the log to the live data.
	fi, _ := os.Stat(path)
	if err := store.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fi2, _ := os.Stat(path)
	fmt.Printf("checkpoint: log %d KB -> %d KB\n", fi.Size()/1024, fi2.Size()/1024)
}
