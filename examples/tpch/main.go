// TPC-H schema recovery: the paper's regular-data experiment through the
// public API. Perfectly regular rows of eight different relational
// schemas are inserted into one Cinderella table; the algorithm should
// recover exactly the original tables as partitions — proof that
// Cinderella "does no harm" when the data would have fit a classic
// schema.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cinderella"
)

// relation is one regular schema: a fixed column list.
type relation struct {
	name string
	cols []string
	rows int
}

var relations = []relation{
	{"region", []string{"r_regionkey", "r_name", "r_comment"}, 5},
	{"nation", []string{"n_nationkey", "n_name", "n_regionkey", "n_comment"}, 25},
	{"supplier", []string{"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"}, 200},
	{"customer", []string{"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone", "c_acctbal", "c_mktsegment", "c_comment"}, 1500},
	{"part", []string{"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container", "p_retailprice", "p_comment"}, 2000},
	{"partsupp", []string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"}, 8000},
	{"orders", []string{"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority", "o_comment"}, 15000},
	{"lineitem", []string{"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"}, 30000},
}

func main() {
	tbl := cinderella.Open(cinderella.Config{
		Weight:             0.5,
		PartitionSizeLimit: 2000, // the paper's "Cinderella II" setting
	})
	rng := rand.New(rand.NewSource(1))

	// Interleave rows of all relations, as a live system would see them.
	type pending struct {
		rel  relation
		left int
	}
	queue := make([]pending, len(relations))
	total := 0
	for i, r := range relations {
		queue[i] = pending{r, r.rows}
		total += r.rows
	}
	for inserted := 0; inserted < total; {
		i := rng.Intn(len(queue))
		if queue[i].left == 0 {
			continue
		}
		queue[i].left--
		inserted++
		doc := cinderella.Doc{}
		for _, c := range queue[i].rel.cols {
			doc[c] = rng.Intn(100000)
		}
		tbl.Insert(doc)
	}
	fmt.Printf("inserted %d rows of %d relational schemas\n", tbl.Len(), len(relations))

	// Check: every partition's attribute set must equal exactly one
	// relation's column set.
	want := map[string]string{}
	for _, r := range relations {
		cols := append([]string(nil), r.cols...)
		sort.Strings(cols)
		want[strings.Join(cols, ",")] = r.name
	}
	parts := tbl.Partitions()
	perRelation := map[string]int{}
	impure := 0
	for _, p := range parts {
		attrs := append([]string(nil), p.Attributes...)
		sort.Strings(attrs)
		name, ok := want[strings.Join(attrs, ",")]
		if !ok {
			impure++
			continue
		}
		perRelation[name]++
	}
	fmt.Printf("partitions: %d total, %d impure\n", len(parts), impure)
	for _, r := range relations {
		fmt.Printf("  %-9s -> %d partition(s)\n", r.name, perRelation[r.name])
	}
	if impure == 0 {
		fmt.Println("Cinderella recovered the relational schema exactly (paper Table I).")
	} else {
		fmt.Println("WARNING: some partitions mix schemas.")
	}
}
