module cinderella

go 1.22
