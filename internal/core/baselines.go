package core

import (
	"fmt"
	"sort"

	"cinderella/internal/synopsis"
)

// baseBook carries the bookkeeping shared by all baseline strategies.
type baseBook struct {
	parts  map[PartitionID]*partition
	loc    map[EntityID]PartitionID
	nextID PartitionID
	moved  MoveListener
	mode   SizeMode
}

func newBaseBook(mode SizeMode) baseBook {
	return baseBook{
		parts: make(map[PartitionID]*partition),
		loc:   make(map[EntityID]PartitionID),
		mode:  mode,
	}
}

func (b *baseBook) entitySize(e *Entity) int64 {
	if b.mode == SizeBytes {
		return e.Size
	}
	return 1
}

func (b *baseBook) SetMoveListener(l MoveListener) { b.moved = l }

func (b *baseBook) notify(pl Placement) {
	if b.moved != nil {
		b.moved(pl)
	}
}

func (b *baseBook) Locate(id EntityID) (PartitionID, bool) {
	pid, ok := b.loc[id]
	return pid, ok
}

func (b *baseBook) Partitions() []PartitionInfo {
	out := make([]PartitionInfo, 0, len(b.parts))
	for _, p := range b.parts {
		out = append(out, p.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (b *baseBook) addTo(p *partition, e *Entity, from PartitionID) PartitionID {
	ent := *e
	p.add(&ent, b.entitySize(&ent))
	b.loc[e.ID] = p.id
	b.notify(Placement{Entity: e.ID, From: from, To: p.id})
	return p.id
}

func (b *baseBook) deleteFrom(id EntityID, dropEmpty bool) {
	pid, ok := b.loc[id]
	if !ok {
		return
	}
	p := b.parts[pid]
	e := p.members[id]
	p.remove(id, b.entitySize(e))
	delete(b.loc, id)
	if dropEmpty && len(p.members) == 0 {
		delete(b.parts, pid)
		b.notify(Placement{Entity: 0, From: pid, To: NoPartition})
	}
}

func (b *baseBook) newPartition() *partition {
	b.nextID++
	p := newPartition(b.nextID)
	b.parts[p.id] = p
	return p
}

// Single keeps every entity in one partition: the unpartitioned universal
// table the paper uses as its baseline.
type Single struct {
	baseBook
}

// NewSingle returns the universal-table baseline.
func NewSingle(mode SizeMode) *Single {
	return &Single{baseBook: newBaseBook(mode)}
}

// Insert places e into the single partition.
func (s *Single) Insert(e Entity) PartitionID {
	var p *partition
	if len(s.parts) == 0 {
		p = s.newPartition()
	} else {
		p = s.parts[1]
	}
	return s.addTo(p, &e, NoPartition)
}

// Delete removes e; the single partition survives even when empty.
func (s *Single) Delete(id EntityID) { s.deleteFrom(id, false) }

// Update rewrites the entity in place.
func (s *Single) Update(e Entity) PartitionID {
	s.deleteFrom(e.ID, false)
	return s.Insert(e)
}

// Hash spreads entities over a fixed number of partitions by entity id,
// the load-balancing scheme of web-scale stores (Bigtable/Dynamo/
// Cassandra in the related work). It ignores schema properties entirely,
// so partition synopses converge to the full attribute set and pruning
// almost never applies.
type Hash struct {
	baseBook
	k    int
	pids []PartitionID
}

// NewHash returns a hash partitioner over k partitions.
func NewHash(k int, mode SizeMode) *Hash {
	if k <= 0 {
		panic(fmt.Sprintf("core: hash partitioner needs k > 0, got %d", k))
	}
	return &Hash{baseBook: newBaseBook(mode), k: k}
}

// Insert places e by hashing its id.
func (h *Hash) Insert(e Entity) PartitionID {
	if h.pids == nil {
		h.pids = make([]PartitionID, h.k)
		for i := 0; i < h.k; i++ {
			h.pids[i] = h.newPartition().id
		}
	}
	// Fibonacci hashing of the 64-bit id.
	slot := int((uint64(e.ID) * 0x9E3779B97F4A7C15) % uint64(h.k))
	return h.addTo(h.parts[h.pids[slot]], &e, NoPartition)
}

// Delete removes e; hash partitions are never dropped.
func (h *Hash) Delete(id EntityID) { h.deleteFrom(id, false) }

// Update rewrites the entity (same hash slot, so it stays put).
func (h *Hash) Update(e Entity) PartitionID {
	h.deleteFrom(e.ID, false)
	return h.Insert(e)
}

// RoundRobin fills fixed-capacity partitions in arrival order: the
// partition bound of Cinderella without any schema awareness. It isolates
// how much of Cinderella's benefit comes from *bounding* partitions versus
// *clustering* them.
type RoundRobin struct {
	baseBook
	maxSize int64
	current PartitionID
}

// NewRoundRobin returns an arrival-order partitioner with the given
// capacity per partition.
func NewRoundRobin(maxSize int64, mode SizeMode) *RoundRobin {
	if maxSize <= 0 {
		panic("core: round-robin partitioner needs positive capacity")
	}
	return &RoundRobin{baseBook: newBaseBook(mode), maxSize: maxSize}
}

// Insert appends e to the current partition, opening a new one at the
// capacity boundary.
func (r *RoundRobin) Insert(e Entity) PartitionID {
	var p *partition
	if r.current != 0 {
		p = r.parts[r.current]
	}
	if p == nil || p.size+r.entitySize(&e) > r.maxSize {
		p = r.newPartition()
		r.current = p.id
	}
	return r.addTo(p, &e, NoPartition)
}

// Delete removes e, dropping emptied partitions.
func (r *RoundRobin) Delete(id EntityID) { r.deleteFrom(id, true) }

// Update rewrites the entity in its partition (arrival order is sticky).
func (r *RoundRobin) Update(e Entity) PartitionID {
	pid, ok := r.loc[e.ID]
	if !ok {
		return r.Insert(e)
	}
	p := r.parts[pid]
	old := p.members[e.ID]
	p.remove(e.ID, r.entitySize(old))
	return r.addTo(p, &e, pid)
}

// SchemaExact groups entities by their exact attribute signature: every
// partition is perfectly homogeneous, the w = 0 limit of Cinderella. It
// is the strongest pruning baseline and the reference partitioning for the
// TPC-H schema-recovery check.
type SchemaExact struct {
	baseBook
	bySig   map[string]PartitionID
	maxSize int64 // 0 = unbounded
}

// NewSchemaExact returns the exact-signature partitioner. maxSize of 0
// disables the capacity bound; otherwise full signature groups spill into
// fresh partitions of the same signature.
func NewSchemaExact(maxSize int64, mode SizeMode) *SchemaExact {
	return &SchemaExact{
		baseBook: newBaseBook(mode),
		bySig:    make(map[string]PartitionID),
		maxSize:  maxSize,
	}
}

func sigOf(s *synopsis.Set) string { return s.String() }

// Insert places e with all entities sharing its exact attribute set.
func (x *SchemaExact) Insert(e Entity) PartitionID {
	sig := sigOf(e.Syn)
	var p *partition
	if pid, ok := x.bySig[sig]; ok {
		// The mapped partition may be gone (dropped when emptied) or full.
		if live := x.parts[pid]; live != nil &&
			!(x.maxSize > 0 && live.size+x.entitySize(&e) > x.maxSize) {
			p = live
		}
	}
	if p == nil {
		p = x.newPartition()
		x.bySig[sig] = p.id
	}
	return x.addTo(p, &e, NoPartition)
}

// Delete removes e, dropping emptied partitions.
func (x *SchemaExact) Delete(id EntityID) {
	pid, ok := x.loc[id]
	if !ok {
		return
	}
	p := x.parts[pid]
	sig := sigOf(p.members[id].Syn)
	x.deleteFrom(id, true)
	if _, alive := x.parts[pid]; alive {
		return
	}
	// The partition was dropped; clear its signature mapping so future
	// inserts do not resolve to a dead partition id.
	if x.bySig[sig] == pid {
		delete(x.bySig, sig)
	}
}

// Update moves the entity to the partition of its new signature.
func (x *SchemaExact) Update(e Entity) PartitionID {
	pid, ok := x.loc[e.ID]
	if !ok {
		return x.Insert(e)
	}
	p := x.parts[pid]
	old := p.members[e.ID]
	if old.Syn.Equal(e.Syn) {
		p.remove(e.ID, x.entitySize(old))
		return x.addTo(p, &e, pid)
	}
	x.Delete(e.ID)
	ne := e
	sig := sigOf(ne.Syn)
	var target *partition
	if tp, ok := x.bySig[sig]; ok {
		if live := x.parts[tp]; live != nil &&
			!(x.maxSize > 0 && live.size+x.entitySize(&ne) > x.maxSize) {
			target = live
		}
	}
	if target == nil {
		target = x.newPartition()
		x.bySig[sig] = target.id
	}
	return x.addTo(target, &ne, pid)
}

var (
	_ Assigner = (*Single)(nil)
	_ Assigner = (*Hash)(nil)
	_ Assigner = (*RoundRobin)(nil)
	_ Assigner = (*SchemaExact)(nil)
)
