package core

import (
	"math/rand"
	"testing"
)

func TestSingleKeepsOnePartition(t *testing.T) {
	s := NewSingle(SizeCount)
	for i := 1; i <= 100; i++ {
		s.Insert(ent(EntityID(i), i%10, 10+i%5))
	}
	ps := s.Partitions()
	if len(ps) != 1 || ps[0].Entities != 100 {
		t.Fatalf("partitions = %+v", ps)
	}
	s.Delete(1)
	if s.Partitions()[0].Entities != 99 {
		t.Fatal("delete failed")
	}
	if _, ok := s.Locate(1); ok {
		t.Fatal("deleted entity located")
	}
	s.Update(ent(2, 99))
	if !s.Partitions()[0].Synopsis.Contains(99) {
		t.Fatal("update did not refresh synopsis")
	}
	if len(s.Partitions()) != 1 {
		t.Fatal("update changed partition count")
	}
}

func TestSingleSurvivesEmpty(t *testing.T) {
	s := NewSingle(SizeCount)
	s.Insert(ent(1, 1))
	s.Delete(1)
	if len(s.Partitions()) != 1 {
		t.Fatal("single partition should survive emptiness")
	}
	s.Insert(ent(2, 2))
	if len(s.Partitions()) != 1 {
		t.Fatal("reinsert should reuse the partition")
	}
}

func TestHashSpreadsEntities(t *testing.T) {
	h := NewHash(8, SizeCount)
	for i := 1; i <= 8000; i++ {
		h.Insert(ent(EntityID(i), i%3))
	}
	ps := h.Partitions()
	if len(ps) != 8 {
		t.Fatalf("partitions = %d, want 8", len(ps))
	}
	for _, p := range ps {
		if p.Entities < 500 || p.Entities > 1500 {
			t.Fatalf("hash balance off: %+v", p)
		}
	}
}

func TestHashStablePlacement(t *testing.T) {
	h := NewHash(4, SizeCount)
	pid := h.Insert(ent(42, 1))
	h.Delete(42)
	if got := h.Insert(ent(42, 2)); got != pid {
		t.Fatalf("hash placement not stable: %v vs %v", got, pid)
	}
	if got := h.Update(ent(42, 3)); got != pid {
		t.Fatalf("update moved hash entity: %v vs %v", got, pid)
	}
}

func TestHashBadKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHash(0) did not panic")
		}
	}()
	NewHash(0, SizeCount)
}

func TestRoundRobinCapacity(t *testing.T) {
	r := NewRoundRobin(10, SizeCount)
	for i := 1; i <= 95; i++ {
		r.Insert(ent(EntityID(i), i%7))
	}
	ps := r.Partitions()
	if len(ps) != 10 {
		t.Fatalf("partitions = %d, want 10", len(ps))
	}
	for i, p := range ps {
		want := 10
		if i == len(ps)-1 {
			want = 5
		}
		if p.Entities != want {
			t.Fatalf("partition %d has %d entities, want %d", i, p.Entities, want)
		}
	}
}

func TestRoundRobinDeleteDropsEmpty(t *testing.T) {
	r := NewRoundRobin(2, SizeCount)
	r.Insert(ent(1, 1))
	r.Insert(ent(2, 1))
	r.Insert(ent(3, 1))
	if len(r.Partitions()) != 2 {
		t.Fatal("setup failed")
	}
	r.Delete(1)
	r.Delete(2)
	if len(r.Partitions()) != 1 {
		t.Fatalf("empty partition not dropped: %d", len(r.Partitions()))
	}
}

func TestRoundRobinBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRoundRobin(0) did not panic")
		}
	}()
	NewRoundRobin(0, SizeCount)
}

func TestSchemaExactGroupsBySignature(t *testing.T) {
	x := NewSchemaExact(0, SizeCount)
	sigs := [][]int{{1, 2}, {1, 2, 3}, {4}, {1, 2}, {4}}
	for i, s := range sigs {
		x.Insert(ent(EntityID(i+1), s...))
	}
	ps := x.Partitions()
	if len(ps) != 3 {
		t.Fatalf("partitions = %d, want 3", len(ps))
	}
	// Every partition must be perfectly homogeneous: all members share
	// the partition synopsis.
	p1, _ := x.Locate(1)
	p4, _ := x.Locate(4)
	if p1 != p4 {
		t.Fatal("same-signature entities not co-located")
	}
	p3, _ := x.Locate(3)
	p5, _ := x.Locate(5)
	if p3 != p5 {
		t.Fatal("signature {4} entities not co-located")
	}
}

func TestSchemaExactCapacitySpill(t *testing.T) {
	x := NewSchemaExact(3, SizeCount)
	for i := 1; i <= 7; i++ {
		x.Insert(ent(EntityID(i), 1, 2))
	}
	ps := x.Partitions()
	if len(ps) != 3 {
		t.Fatalf("partitions = %d, want 3 (3+3+1)", len(ps))
	}
	for _, p := range ps {
		if p.Size > 3 {
			t.Fatalf("partition over capacity: %+v", p)
		}
	}
}

func TestSchemaExactDelete(t *testing.T) {
	x := NewSchemaExact(0, SizeCount)
	x.Insert(ent(1, 1, 2))
	x.Insert(ent(2, 3))
	x.Delete(1)
	if len(x.Partitions()) != 1 {
		t.Fatalf("partitions = %d, want 1", len(x.Partitions()))
	}
	// Re-insert same signature works after its partition was dropped.
	x.Insert(ent(3, 1, 2))
	if len(x.Partitions()) != 2 {
		t.Fatalf("partitions = %d, want 2", len(x.Partitions()))
	}
}

func TestSchemaExactUpdateMovesAcrossSignatures(t *testing.T) {
	x := NewSchemaExact(0, SizeCount)
	x.Insert(ent(1, 1, 2))
	x.Insert(ent(2, 1, 2))
	x.Insert(ent(3, 9))
	p3, _ := x.Locate(3)
	got := x.Update(ent(1, 9))
	if got != p3 {
		t.Fatalf("update placed entity in %v, want %v", got, p3)
	}
	// Same-signature update stays put.
	p2, _ := x.Locate(2)
	if got := x.Update(ent(2, 1, 2)); got != p2 {
		t.Fatal("same-signature update moved entity")
	}
}

func TestAssignersAgreeOnMembership(t *testing.T) {
	// Every Assigner must keep Locate consistent with Partitions under a
	// random workload of inserts, updates, and deletes.
	mk := func() []Assigner {
		return []Assigner{
			NewCinderella(Config{Weight: 0.4, MaxSize: 20}),
			NewSingle(SizeCount),
			NewHash(4, SizeCount),
			NewRoundRobin(20, SizeCount),
			NewSchemaExact(0, SizeCount),
		}
	}
	for _, a := range mk() {
		rng := rand.New(rand.NewSource(17))
		live := make(map[EntityID]bool)
		nextID := EntityID(1)
		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(10); {
			case op < 6 || len(live) == 0:
				a.Insert(ent(nextID, rng.Intn(5), 5+rng.Intn(5)))
				live[nextID] = true
				nextID++
			case op < 8:
				// delete a random live entity
				for id := range live {
					a.Delete(id)
					delete(live, id)
					break
				}
			default:
				for id := range live {
					a.Update(ent(id, rng.Intn(5), 5+rng.Intn(5)))
					break
				}
			}
		}
		total := 0
		for _, p := range a.Partitions() {
			total += p.Entities
		}
		if total != len(live) {
			t.Fatalf("%T: partitions hold %d entities, want %d", a, total, len(live))
		}
		for id := range live {
			if _, ok := a.Locate(id); !ok {
				t.Fatalf("%T: live entity %d unlocatable", a, id)
			}
		}
	}
}

func TestSchemaExactStaleSignatureAfterDrop(t *testing.T) {
	// Regression: with a capacity bound, deleting every member of a
	// signature's partition used to leave the signature mapped to the
	// dropped partition id; the next insert then dereferenced a missing
	// partition.
	x := NewSchemaExact(40, SizeCount)
	id := EntityID(1)
	x.Insert(ent(id, 1, 2))
	x.Delete(id)
	if len(x.Partitions()) != 0 {
		t.Fatalf("partitions = %d", len(x.Partitions()))
	}
	// Must not panic, and must place the entity.
	pid := x.Insert(ent(2, 1, 2))
	if pid == NoPartition {
		t.Fatal("reinsert failed")
	}
	// Same for the Update path.
	x.Insert(ent(3, 9))
	x.Delete(3)
	if got := x.Update(ent(2, 9)); got == NoPartition {
		t.Fatal("update into dropped signature failed")
	}
}
