package core

import (
	"math/rand"
	"testing"

	"cinderella/internal/synopsis"
)

// benchEntities builds n entities with DBpedia-like synopses: a handful of
// common attributes plus a sample from a class-specific block, over a
// universe of 1024 attribute ids.
func benchEntities(n int, seed int64) []Entity {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entity, n)
	for i := range out {
		s := synopsis.New(1024)
		s.Add(0)
		s.Add(1)
		class := rng.Intn(8)
		base := 8 + class*120
		for j := 0; j < 12; j++ {
			s.Add(base + rng.Intn(120))
		}
		out[i] = Entity{ID: EntityID(i + 1), Syn: s}
	}
	return out
}

func benchCatalog(b *testing.B, useIndex bool) (*Cinderella, []Entity) {
	b.Helper()
	c := NewCinderella(Config{Weight: 0.5, MaxSize: 100, UseCatalogIndex: useIndex})
	for _, e := range benchEntities(5000, 1) {
		c.Insert(e)
	}
	probes := benchEntities(256, 2)
	return c, probes
}

// BenchmarkFindBest measures the steady-state insert-path scan: rating one
// incoming entity against the catalog. The regression target is 0
// allocs/op — the scan reuses the incrementally maintained ordered
// catalog, the epoch-stamped visited buffer, and the elements scratch
// instead of allocating per call.
func BenchmarkFindBest(b *testing.B) {
	run := func(b *testing.B, useIndex bool) {
		c, probes := benchCatalog(b, useIndex)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := &probes[i%len(probes)]
			best, _ := c.findBest(p, nil)
			if best == nil {
				b.Fatal("findBest found no partition")
			}
		}
	}
	b.Run("scan", func(b *testing.B) { run(b, false) })
	b.Run("catalog-index", func(b *testing.B) { run(b, true) })
}

// BenchmarkInsert covers the full insert path (placement + synopsis
// maintenance + occasional splits), the end-to-end cost the paper's
// Figure 7 tracks.
func BenchmarkInsert(b *testing.B) {
	run := func(b *testing.B, useIndex bool) {
		ents := benchEntities(b.N, 3)
		c := NewCinderella(Config{Weight: 0.5, MaxSize: 100, UseCatalogIndex: useIndex})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Insert(ents[i])
		}
	}
	b.Run("scan", func(b *testing.B) { run(b, false) })
	b.Run("catalog-index", func(b *testing.B) { run(b, true) })
}
