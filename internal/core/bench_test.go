package core

import (
	"math/rand"
	"testing"

	"cinderella/internal/synopsis"
)

// benchEntities builds n entities with DBpedia-like synopses: a handful of
// common attributes plus a sample from a class-specific block, over a
// universe of 1024 attribute ids.
func benchEntities(n int, seed int64) []Entity {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entity, n)
	for i := range out {
		s := synopsis.New(1024)
		s.Add(0)
		s.Add(1)
		class := rng.Intn(8)
		base := 8 + class*120
		for j := 0; j < 12; j++ {
			s.Add(base + rng.Intn(120))
		}
		out[i] = Entity{ID: EntityID(i + 1), Syn: s}
	}
	return out
}

func benchCatalog(b *testing.B, useIndex bool) (*Cinderella, []Entity) {
	b.Helper()
	c := NewCinderella(Config{Weight: 0.5, MaxSize: 100, UseCatalogIndex: useIndex})
	for _, e := range benchEntities(5000, 1) {
		c.Insert(e)
	}
	probes := benchEntities(256, 2)
	return c, probes
}

// BenchmarkFindBest measures the steady-state insert-path scan: rating one
// incoming entity against the catalog. The regression target is 0
// allocs/op — the scan reuses the incrementally maintained ordered
// catalog, the epoch-stamped visited buffer, and the elements scratch
// instead of allocating per call.
func BenchmarkFindBest(b *testing.B) {
	run := func(b *testing.B, useIndex bool) {
		c, probes := benchCatalog(b, useIndex)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := &probes[i%len(probes)]
			best, _ := c.findBest(p, nil)
			if best == nil {
				b.Fatal("findBest found no partition")
			}
		}
	}
	b.Run("scan", func(b *testing.B) { run(b, false) })
	b.Run("catalog-index", func(b *testing.B) { run(b, true) })
}

// benchClassEntities builds n entities with class-local synopses: 12
// attributes sampled from one of `classes` disjoint 24-attribute blocks
// (DBpedia-style infobox attributes without the universal properties).
// Same-class entities overlap enough to rate positively against their
// class's partitions — entities cluster instead of opening singleton
// partitions — while attribute selectivity across classes is what the
// inverted catalog index exploits: a workload where some attribute
// appears in every entity forces every partition into the candidate set
// and no index can beat a plain scan.
func benchClassEntities(n, classes, idBase int, seed int64) []Entity {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entity, n)
	for i := range out {
		s := synopsis.New(classes * 24)
		base := rng.Intn(classes) * 24
		for j := 0; j < 12; j++ {
			s.Add(base + rng.Intn(24))
		}
		out[i] = Entity{ID: EntityID(idBase + i + 1), Syn: s}
	}
	return out
}

// BenchmarkInsert covers the full insert path (placement + synopsis
// maintenance + occasional splits), the end-to-end cost the paper's
// Figure 7 tracks, at three catalog scales. The linear scan rates every
// partition per insert, so its cost grows with the catalog; the postings
// index rates only partitions sharing an attribute with the entity. The
// acceptance gate is index < scan at >=256 partitions; all three scales
// exceed that (see the reported "partitions" metric for the actual
// catalog size reached — the sub-bench names count prefill entities).
func BenchmarkInsert(b *testing.B) {
	scales := []struct {
		name    string
		prefill int
		classes int
	}{
		{"pre5k", 5000, 16},
		{"pre20k", 20000, 32},
		{"pre80k", 80000, 64},
	}
	for _, sc := range scales {
		run := func(b *testing.B, useIndex bool) {
			c := NewCinderella(Config{Weight: 0.5, MaxSize: 100, UseCatalogIndex: useIndex})
			for _, e := range benchClassEntities(sc.prefill, sc.classes, 0, 1) {
				c.Insert(e)
			}
			probes := benchClassEntities(b.N, sc.classes, sc.prefill, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Insert(probes[i])
			}
			b.StopTimer()
			b.ReportMetric(float64(c.NumPartitions()), "partitions")
		}
		b.Run(sc.name+"/scan", func(b *testing.B) { run(b, false) })
		b.Run(sc.name+"/index", func(b *testing.B) { run(b, true) })
	}
}
