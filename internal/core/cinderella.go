package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
)

// Cinderella is the online partitioner of Algorithm 1. It is not safe for
// concurrent use; callers (the table layer) serialize operations.
type Cinderella struct {
	cfg    Config
	parts  map[PartitionID]*partition
	loc    map[EntityID]PartitionID
	nextID PartitionID
	moved  MoveListener
	rng    *rand.Rand

	// ordered is the catalog in ascending partition-id order, maintained
	// incrementally: ids are monotonic so creation appends, and drops
	// splice by binary search. Catalog scans read it directly instead of
	// re-sorting the map on every insert.
	ordered []*partition

	// attrIndex maps attribute id -> postings: the partitions whose synopsis
	// contains the attribute, as a slice sorted by ascending partition id
	// (only when cfg.UseCatalogIndex). A sorted slice beats the former inner
	// map on the scan side — candidates are read off a contiguous postings
	// run instead of a randomized map walk — while ids stay unique via
	// binary-search insert/delete and each partition remembers its indexed
	// attributes (idxSyn) so removals touch only its own postings.
	attrIndex map[int][]*partition

	// Insert-path scratch, reused across operations so the steady-state
	// findBest allocates nothing: visited de-duplicates index candidates by
	// epoch stamp (bumped per scan) and elemScratch backs Syn.Elements.
	visited     map[PartitionID]uint64
	visitEpoch  uint64
	elemScratch []int

	stats OpStats

	// obs, when set, receives live telemetry: counter deltas published
	// once per public operation (see publish) and structured decision
	// trace events. Nil means uninstrumented; the hot paths then pay only
	// nil checks and findBest stays allocation-free either way.
	obs     *obs.Registry
	lastPub OpStats

	// blender, when set, post-processes every findBest rating — the
	// reclusterer's workload-blended objective. Nil (the default, and
	// outside recluster batches) leaves Algorithm 1's attribute rating
	// untouched.
	blender RatingBlender
}

// RatingBlender adjusts the attribute-synopsis rating of one
// entity/partition pair. The reclusterer installs one for the duration
// of a re-rate batch, blending in a workload-relevance term derived
// from the recent query mix; the returned score replaces attrScore in
// findBest's comparison (negative best still opens a new partition,
// which is how workload-pure partitions get seeded).
type RatingBlender interface {
	Blend(e *Entity, pid PartitionID, pSyn *synopsis.Set, attrScore float64) float64
}

// SetRatingBlender installs (or, with nil, removes) the rating
// post-processor. Callers serialize with all other operations, same as
// every Cinderella method.
func (c *Cinderella) SetRatingBlender(b RatingBlender) { c.blender = b }

// Members returns the ids of pid's current members in insertion order
// (skipping ids whose slots were deleted). The reclusterer snapshots a
// victim's membership through this before re-rating each entity.
func (c *Cinderella) Members(pid PartitionID) []EntityID {
	p := c.parts[pid]
	if p == nil {
		return nil
	}
	out := make([]EntityID, 0, len(p.members))
	for _, id := range p.order {
		if _, ok := p.members[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// OpStats counts partitioner events for the experiments (Figure 8 reports
// split counts: 448/100/0 for B = 500/5000/50000 on the DBpedia set).
type OpStats struct {
	Inserts        int64
	Deletes        int64
	Updates        int64
	UpdateMoves    int64
	Splits         int64
	SplitCascades  int64 // splits triggered while redistributing a split
	SplitMoves     int64 // entities relocated by splits or merges
	Merges         int64 // partition merges performed by Compact
	NewPartitions  int64
	DropPartitions int64
	RatedPairs     int64 // entity/partition ratings computed
}

// NewCinderella returns a partitioner for cfg. It panics on invalid
// configuration (programmer error); use cfg.Validate to check first.
func NewCinderella(cfg Config) *Cinderella {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	seed := cfg.RandSeed
	if seed == 0 {
		seed = 1
	}
	c := &Cinderella{
		cfg:   cfg,
		parts: make(map[PartitionID]*partition),
		loc:   make(map[EntityID]PartitionID),
		rng:   rand.New(rand.NewSource(seed)),
	}
	if cfg.UseCatalogIndex {
		c.attrIndex = make(map[int][]*partition)
		c.visited = make(map[PartitionID]uint64)
	}
	return c
}

// SetMoveListener registers the placement observer.
func (c *Cinderella) SetMoveListener(l MoveListener) { c.moved = l }

// SetObserver attaches (or detaches, with nil) a telemetry registry.
// Counter publication starts from the current stats, so attaching to a
// live partitioner does not replay history.
func (c *Cinderella) SetObserver(r *obs.Registry) {
	c.obs = r
	c.lastPub = c.stats
}

// publish pushes the operation-counter deltas accumulated since the last
// publication into the registry: one batch of atomic adds per public
// operation instead of one per event, keeping instrumentation off the
// findBest inner loop.
func (c *Cinderella) publish() {
	if c.obs == nil {
		return
	}
	cur, prev := c.stats, c.lastPub
	c.lastPub = cur
	c.obs.Add(obs.CInserts, cur.Inserts-prev.Inserts)
	c.obs.Add(obs.CDeletes, cur.Deletes-prev.Deletes)
	c.obs.Add(obs.CUpdates, cur.Updates-prev.Updates)
	c.obs.Add(obs.CUpdateMoves, cur.UpdateMoves-prev.UpdateMoves)
	c.obs.Add(obs.CSplits, cur.Splits-prev.Splits)
	c.obs.Add(obs.CSplitCascades, cur.SplitCascades-prev.SplitCascades)
	c.obs.Add(obs.CSplitMoves, cur.SplitMoves-prev.SplitMoves)
	c.obs.Add(obs.CMerges, cur.Merges-prev.Merges)
	c.obs.Add(obs.CPartitionsCreated, cur.NewPartitions-prev.NewPartitions)
	c.obs.Add(obs.CPartitionsDropped, cur.DropPartitions-prev.DropPartitions)
	c.obs.Add(obs.CRatings, cur.RatedPairs-prev.RatedPairs)
}

// trace appends a decision event when a registry is attached.
func (c *Cinderella) trace(ev obs.Event) {
	if c.obs != nil {
		c.obs.TraceEvent(ev)
	}
}

// Config returns the active configuration.
func (c *Cinderella) Config() Config { return c.cfg }

// Stats returns a copy of the operation counters.
func (c *Cinderella) Stats() OpStats { return c.stats }

// NumPartitions returns the current partition count.
func (c *Cinderella) NumPartitions() int { return len(c.parts) }

// Locate returns the partition holding id.
func (c *Cinderella) Locate(id EntityID) (PartitionID, bool) {
	pid, ok := c.loc[id]
	return pid, ok
}

// Partitions snapshots all partition descriptors, ordered by id.
func (c *Cinderella) Partitions() []PartitionInfo {
	out := make([]PartitionInfo, 0, len(c.ordered))
	for _, p := range c.ordered {
		out = append(out, p.info())
	}
	return out
}

// Insert implements INSERTENTITY of Algorithm 1 against the full catalog.
func (c *Cinderella) Insert(e Entity) PartitionID {
	if e.ID == 0 {
		panic("core: entity id 0 is reserved")
	}
	if _, dup := c.loc[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate insert of entity %d", e.ID))
	}
	c.stats.Inserts++
	ent := e // private copy; synopsis is shared but treated immutably
	pid := c.insert(&ent, nil, NoPartition)
	c.publish()
	return pid
}

// insert places ent. If restrict is non-nil, only those partitions are
// candidates and no new partition may be created (the split
// redistribution mode of Algorithm 1 line 32). prev reports where the
// entity came from, for move notification.
func (c *Cinderella) insert(ent *Entity, restrict []*partition, prev PartitionID) PartitionID {
	best, bestRating := c.findBest(ent, restrict)

	// Negative best rating (or empty catalog): the entity fits nowhere
	// well; open a new partition (Algorithm 1 lines 9–13). Disabled in
	// restricted mode, where the better of the two targets always wins.
	if restrict == nil && (best == nil || bestRating < 0) {
		p := c.newPartition()
		p.add(ent, c.cfg.entitySize(ent))
		p.starterA = ent.ID
		c.indexAdd(p, ent.Syn)
		c.loc[ent.ID] = p.id
		c.trace(obs.Event{Kind: obs.EvInsert, Entity: uint64(ent.ID), To: uint64(p.id)})
		c.notify(Placement{Entity: ent.ID, From: prev, To: p.id})
		return p.id
	}

	// Update the split starters with the incoming entity (lines 15–24).
	best.updateStarters(ent)

	// Full partition: split (lines 26–33), then place ent among the two
	// new partitions.
	// The split candidate set is the partition's members plus ent, so a
	// split is feasible whenever the partition holds at least one entity.
	if best.size+c.cfg.entitySize(ent) > c.cfg.MaxSize && len(best.members) >= 1 {
		return c.split(best, ent, prev)
	}

	// Normal case (line 36).
	c.indexAdd(best, ent.Syn)
	best.add(ent, c.cfg.entitySize(ent))
	c.loc[ent.ID] = best.id
	if restrict == nil {
		c.trace(obs.Event{Kind: obs.EvInsert, Entity: uint64(ent.ID), To: uint64(best.id), Rating: bestRating})
	}
	c.notify(Placement{Entity: ent.ID, From: prev, To: best.id})
	return best.id
}

// findBest scans the catalog (or the restricted candidate set) for the
// best-rated partition, Algorithm 1 lines 3–7.
func (c *Cinderella) findBest(ent *Entity, restrict []*partition) (*partition, float64) {
	var best *partition
	bestRating := math.Inf(-1)
	sizeE := c.cfg.entitySize(ent)

	consider := func(p *partition) {
		c.stats.RatedPairs++
		r := rate(c.cfg.Weight, ent, p.syn, sizeE, p.size)
		score := r.Global
		if c.cfg.DisableNormalization {
			score = r.Local
		}
		if c.blender != nil {
			score = c.blender.Blend(ent, p.id, p.syn, score)
		}
		if score > bestRating || (score == bestRating && (best == nil || p.id < best.id)) {
			bestRating = score
			best = p
		}
	}

	switch {
	case restrict != nil:
		for _, p := range restrict {
			consider(p)
		}
	case c.attrIndex != nil:
		// Candidate partitions share at least one attribute with the
		// entity. Disjoint partitions all rate identically (pure negative
		// evidence); one representative is enough when no overlapping
		// partition scores non-negative — and a disjoint rating is always
		// negative for w<1, so it can never beat a non-negative overlap
		// score. We therefore rate overlapping candidates only; if none
		// exists or all rate negative, a new partition is opened, which is
		// exactly what a full scan would conclude (any disjoint partition
		// also rates negative).
		//
		// Candidates are de-duplicated with the epoch-stamped visited
		// buffer (reused across inserts) instead of a fresh map, and the
		// index hands back the *partition directly — the steady-state scan
		// allocates nothing.
		c.visitEpoch++
		epoch := c.visitEpoch
		c.elemScratch = ent.Syn.Elements(c.elemScratch[:0])
		for _, a := range c.elemScratch {
			for _, p := range c.attrIndex[a] {
				if c.visited[p.id] == epoch {
					continue
				}
				c.visited[p.id] = epoch
				consider(p)
			}
		}
		if best == nil && c.cfg.Weight == 1 {
			// w=1 ignores negative evidence; disjoint partitions rate 0 and
			// are admissible. Fall back to a full scan for correctness.
			for _, p := range c.ordered {
				consider(p)
			}
		}
	default:
		for _, p := range c.ordered {
			consider(p)
		}
	}
	return best, bestRating
}

// split reorganizes full partition p around its split starters and places
// incoming entity ent into one of the two results (Algorithm 1 lines
// 26–33 plus the documented clarification that ent participates).
func (c *Cinderella) split(p *partition, ent *Entity, prev PartitionID) PartitionID {
	c.stats.Splits++

	starterA, starterB := c.chooseStarters(p, ent)

	pa := c.newPartition()
	pb := c.newPartition()

	// Move the starters first (lines 29–30). Either starter may be the
	// incoming entity itself (it can have claimed a starter slot in
	// updateStarters).
	place := func(target *partition, se *Entity) {
		from := NoPartition
		if se.ID != ent.ID {
			p.remove(se.ID, c.cfg.entitySize(se))
			from = p.id
		}
		target.add(se, c.cfg.entitySize(se))
		target.starterA = se.ID
		c.indexAdd(target, se.Syn)
		c.loc[se.ID] = target.id
		if from != NoPartition {
			c.stats.SplitMoves++
			c.notify(Placement{Entity: se.ID, From: from, To: target.id})
		} else {
			c.notify(Placement{Entity: se.ID, From: prev, To: target.id})
		}
	}
	place(pa, starterA)
	place(pb, starterB)

	// Redistribute the remaining members through the insert procedure
	// restricted to the two new partitions (lines 31–33). This can cascade
	// into further splits, which the paper notes is possible but rare.
	targets := []*partition{pa, pb}
	rest := p.liveOrder()
	for _, id := range rest {
		m, ok := p.members[id]
		if !ok {
			continue
		}
		p.remove(id, c.cfg.entitySize(m))
		c.stats.SplitMoves++
		before := c.stats.Splits
		c.insert(m, targets, p.id)
		if c.stats.Splits != before {
			c.stats.SplitCascades += c.stats.Splits - before
			// A cascade replaced one of the targets; refresh the live set.
			targets = c.liveTargets(targets)
		}
	}

	// Place the incoming entity itself unless it already went in as a
	// starter.
	var result PartitionID
	if pid, placed := c.loc[ent.ID]; placed {
		result = pid
	} else {
		result = c.insert(ent, c.liveTargets(targets), prev)
	}

	if c.obs != nil {
		ev := obs.Event{
			Kind: obs.EvSplit, Entity: uint64(ent.ID), From: uint64(p.id),
			To: uint64(pa.id), To2: uint64(pb.id),
			StarterA: uint64(starterA.ID), StarterB: uint64(starterB.ID),
		}
		// Resulting synopsis sizes; a cascade may have replaced a target.
		if _, live := c.parts[pa.id]; live {
			ev.SynA = pa.syn.Len()
		}
		if _, live := c.parts[pb.id]; live {
			ev.SynB = pb.syn.Len()
		}
		c.trace(ev)
	}

	// The old partition is empty now; drop it (its id disappears from the
	// catalog, like the paper's DROP of the split table).
	c.dropPartition(p)
	return result
}

// liveTargets filters a candidate list down to partitions still in the
// catalog (cascaded splits drop and replace targets).
func (c *Cinderella) liveTargets(targets []*partition) []*partition {
	out := targets[:0]
	for _, t := range targets {
		if _, ok := c.parts[t.id]; ok {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		// All original targets were themselves split away; fall back to a
		// full catalog scan.
		return nil
	}
	return out
}

// chooseStarters resolves the split-starter pair, honouring the configured
// policy and repairing missing starters after deletions. The incoming
// entity ent is a legitimate candidate (it may already hold a slot).
func (c *Cinderella) chooseStarters(p *partition, ent *Entity) (*Entity, *Entity) {
	resolve := func(id EntityID) *Entity {
		if id == 0 {
			return nil
		}
		if id == ent.ID {
			return ent
		}
		return p.members[id]
	}

	candidates := func() []*Entity {
		out := make([]*Entity, 0, len(p.members)+1)
		for _, id := range p.liveOrder() {
			out = append(out, p.members[id])
		}
		out = append(out, ent)
		return out
	}

	switch c.cfg.StarterPolicy {
	case StarterExact:
		return mostDifferentPair(candidates())
	case StarterRandom:
		cs := candidates()
		i := c.rng.Intn(len(cs))
		j := c.rng.Intn(len(cs) - 1)
		if j >= i {
			j++
		}
		return cs[i], cs[j]
	}

	a, b := resolve(p.starterA), resolve(p.starterB)
	if a != nil && b != nil && a.ID != b.ID {
		return a, b
	}
	// Starter slots were invalidated by deletions; repair with the exact
	// pair over current members (splits are rare, partitions bounded).
	return mostDifferentPair(candidates())
}

// mostDifferentPair returns the pair with maximal synopsis difference
// (quadratic; used by StarterExact and starter repair).
func mostDifferentPair(es []*Entity) (*Entity, *Entity) {
	if len(es) < 2 {
		panic("core: split of partition with fewer than two entities")
	}
	bi, bj, bd := 0, 1, -1
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			if d := diff(es[i], es[j]); d > bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return es[bi], es[bj]
}

// Delete removes an entity (Section III: the partitioning itself remains
// unchanged; empty partitions are deleted).
func (c *Cinderella) Delete(id EntityID) {
	pid, ok := c.loc[id]
	if !ok {
		return
	}
	c.stats.Deletes++
	p := c.parts[pid]
	e := p.members[id]
	p.remove(id, c.cfg.entitySize(e))
	delete(c.loc, id)
	c.indexRebuild(p)
	c.trace(obs.Event{Kind: obs.EvDelete, Entity: uint64(id), From: uint64(pid)})
	if len(p.members) == 0 {
		c.dropPartition(p)
	}
	c.publish()
}

// Update re-runs the insert rating for a changed entity; the entity moves
// only if a different partition wins (Section III).
func (c *Cinderella) Update(e Entity) PartitionID {
	pid, ok := c.loc[e.ID]
	if !ok {
		return c.Insert(e)
	}
	c.stats.Updates++
	p := c.parts[pid]
	old := p.members[e.ID]

	// Temporarily take the entity out so ratings do not count it twice.
	p.remove(e.ID, c.cfg.entitySize(old))
	delete(c.loc, e.ID)
	c.indexRebuild(p)

	ent := e
	best, bestRating := c.findBest(&ent, nil)

	if best != nil && best.id == pid && bestRating >= 0 {
		// Same partition wins: update in place.
		p.add(&ent, c.cfg.entitySize(&ent))
		p.updateStarters(&ent)
		c.indexAdd(p, ent.Syn)
		c.loc[e.ID] = pid
		c.trace(obs.Event{Kind: obs.EvUpdate, Entity: uint64(e.ID), From: uint64(pid), To: uint64(pid), Rating: bestRating})
		c.publish()
		return pid
	}
	// A different partition (or a fresh one) wins: move via insert. The
	// vacated partition may now be empty.
	newPID := c.insert(&ent, nil, pid)
	c.stats.UpdateMoves++
	if op, ok := c.parts[pid]; ok && len(op.members) == 0 {
		c.dropPartition(op)
	}
	c.trace(obs.Event{Kind: obs.EvUpdate, Entity: uint64(e.ID), From: uint64(pid), To: uint64(newPID)})
	c.publish()
	return newPID
}

func (c *Cinderella) newPartition() *partition {
	c.nextID++
	c.stats.NewPartitions++
	p := newPartition(c.nextID)
	c.parts[p.id] = p
	// Ids are monotonically increasing, so appending keeps the catalog
	// slice id-sorted without re-sorting.
	c.ordered = append(c.ordered, p)
	c.trace(obs.Event{Kind: obs.EvNewPartition, To: uint64(p.id)})
	return p
}

func (c *Cinderella) dropPartition(p *partition) {
	if len(p.members) != 0 {
		panic("core: dropping non-empty partition")
	}
	c.stats.DropPartitions++
	delete(c.parts, p.id)
	if i := sort.Search(len(c.ordered), func(i int) bool { return c.ordered[i].id >= p.id }); i < len(c.ordered) && c.ordered[i].id == p.id {
		c.ordered = append(c.ordered[:i], c.ordered[i+1:]...)
	}
	if c.visited != nil {
		delete(c.visited, p.id)
	}
	c.indexRemoveAll(p)
	c.trace(obs.Event{Kind: obs.EvDrop, From: uint64(p.id)})
	c.notify(Placement{Entity: 0, From: p.id, To: NoPartition})
}

// notify reports a placement if a listener is registered. A Placement
// with Entity==0 signals that partition From was dropped. Relocations of
// existing entities (From set) are traced as moves.
func (c *Cinderella) notify(pl Placement) {
	if pl.Entity != 0 && pl.From != NoPartition {
		c.trace(obs.Event{Kind: obs.EvMove, Entity: uint64(pl.Entity), From: uint64(pl.From), To: uint64(pl.To)})
	}
	if c.moved != nil {
		c.moved(pl)
	}
}

// --- inverted attribute index (UseCatalogIndex ablation) ---

func (c *Cinderella) indexAdd(p *partition, syn *synopsis.Set) {
	if c.attrIndex == nil {
		return
	}
	if p.idxSyn == nil {
		p.idxSyn = synopsis.New(0)
	}
	syn.ForEach(func(a int) {
		if p.idxSyn.Contains(a) {
			return
		}
		p.idxSyn.Add(a)
		c.attrIndex[a] = postingsInsert(c.attrIndex[a], p)
	})
}

// indexRebuild re-derives index membership for p after attribute refcounts
// dropped (deletes/updates can shrink a partition synopsis). Only p's own
// indexed attributes (idxSyn) are visited, not the whole index.
func (c *Cinderella) indexRebuild(p *partition) {
	if c.attrIndex == nil || p.idxSyn == nil {
		return
	}
	p.idxSyn.ForEach(func(a int) {
		if p.syn.Contains(a) {
			return
		}
		p.idxSyn.Remove(a)
		c.postingsRemove(a, p)
	})
}

func (c *Cinderella) indexRemoveAll(p *partition) {
	if c.attrIndex == nil || p.idxSyn == nil {
		return
	}
	p.idxSyn.ForEach(func(a int) {
		c.postingsRemove(a, p)
	})
	p.idxSyn = nil
}

// postingsInsert adds p to an id-sorted postings slice, keeping order.
// Callers guarantee p is absent (idxSyn gates duplicates).
func postingsInsert(ps []*partition, p *partition) []*partition {
	i := sort.Search(len(ps), func(i int) bool { return ps[i].id >= p.id })
	ps = append(ps, nil)
	copy(ps[i+1:], ps[i:])
	ps[i] = p
	return ps
}

// postingsRemove splices p out of attribute a's postings slice and drops
// the map entry when the slice empties.
func (c *Cinderella) postingsRemove(a int, p *partition) {
	ps := c.attrIndex[a]
	i := sort.Search(len(ps), func(i int) bool { return ps[i].id >= p.id })
	if i >= len(ps) || ps[i].id != p.id {
		return
	}
	ps = append(ps[:i], ps[i+1:]...)
	if len(ps) == 0 {
		delete(c.attrIndex, a)
	} else {
		c.attrIndex[a] = ps
	}
}

var _ Assigner = (*Cinderella)(nil)
