package core

import (
	"math/rand"
	"testing"

	"cinderella/internal/synopsis"
)

func cfg(w float64, b int64) Config { return Config{Weight: w, MaxSize: b} }

func ent(id EntityID, attrs ...int) Entity {
	return Entity{ID: id, Syn: synopsis.Of(attrs...), Size: int64(8 * len(attrs))}
}

func TestInsertFirstEntityCreatesPartition(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	pid := c.Insert(ent(1, 1, 2, 3))
	if pid == NoPartition {
		t.Fatal("no partition assigned")
	}
	if c.NumPartitions() != 1 {
		t.Fatalf("NumPartitions = %d", c.NumPartitions())
	}
	ps := c.Partitions()
	if ps[0].Entities != 1 || !ps[0].Synopsis.Equal(synopsis.Of(1, 2, 3)) {
		t.Fatalf("partition info = %+v", ps[0])
	}
	if got, ok := c.Locate(1); !ok || got != pid {
		t.Fatalf("Locate = %v,%v", got, ok)
	}
}

func TestInsertZeroIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(id=0) did not panic")
		}
	}()
	NewCinderella(cfg(0.5, 10)).Insert(Entity{ID: 0, Syn: synopsis.Of(1)})
}

func TestInsertDuplicatePanics(t *testing.T) {
	c := NewCinderella(cfg(0.5, 10))
	c.Insert(ent(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Insert did not panic")
		}
	}()
	c.Insert(ent(1, 2))
}

func TestNewCinderellaInvalidConfigPanics(t *testing.T) {
	cases := []Config{
		{Weight: -0.1, MaxSize: 10},
		{Weight: 1.1, MaxSize: 10},
		{Weight: 0.5, MaxSize: 0},
		{Weight: 0.5, MaxSize: 10, SizeMode: 7},
	}
	for i, bad := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			NewCinderella(bad)
		}()
	}
}

func TestHomogeneousEntitiesShareAPartition(t *testing.T) {
	c := NewCinderella(cfg(0.5, 1000))
	for i := EntityID(1); i <= 50; i++ {
		c.Insert(ent(i, 1, 2, 3))
	}
	if c.NumPartitions() != 1 {
		t.Fatalf("NumPartitions = %d, want 1", c.NumPartitions())
	}
	if c.Partitions()[0].Entities != 50 {
		t.Fatalf("Entities = %d", c.Partitions()[0].Entities)
	}
}

func TestDisjointEntitiesGetSeparatePartitions(t *testing.T) {
	c := NewCinderella(cfg(0.5, 1000))
	c.Insert(ent(1, 1, 2, 3))
	c.Insert(ent(2, 10, 11, 12))
	c.Insert(ent(3, 20, 21, 22))
	if c.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d, want 3", c.NumPartitions())
	}
}

func TestWeightZeroYieldsPerfectHomogeneity(t *testing.T) {
	// Paper: "In the extreme case of w = 0 all created partitions are
	// completely homogeneous."
	c := NewCinderella(cfg(0, 1000))
	rng := rand.New(rand.NewSource(5))
	sigs := [][]int{{1, 2}, {1, 2, 3}, {4, 5}, {1}, {2, 3, 4, 5}}
	for i := EntityID(1); i <= 200; i++ {
		c.Insert(ent(i, sigs[rng.Intn(len(sigs))]...))
	}
	if got := c.NumPartitions(); got != len(sigs) {
		t.Fatalf("NumPartitions = %d, want %d", got, len(sigs))
	}
	// Every partition synopsis must exactly match each member's synopsis:
	// sparseness 0.
	for _, p := range c.Partitions() {
		if p.Entities == 0 {
			t.Fatalf("empty partition %d in catalog", p.ID)
		}
	}
}

func TestSimilarEntitiesClusterDespiteNoise(t *testing.T) {
	// Camera-ish entities share a core schema with per-entity extras; they
	// should co-locate under a medium weight rather than each opening a
	// partition.
	c := NewCinderella(cfg(0.5, 1000))
	for i := EntityID(1); i <= 30; i++ {
		attrs := []int{1, 2, 3, 4, 5}
		attrs = append(attrs, 100+int(i%7)) // one uncommon attribute each
		c.Insert(ent(i, attrs...))
	}
	if got := c.NumPartitions(); got != 1 {
		t.Fatalf("NumPartitions = %d, want 1 (noise split the cluster)", got)
	}
}

func TestSplitOnCapacity(t *testing.T) {
	c := NewCinderella(cfg(0.5, 4))
	// Two clearly different schemas arriving interleaved; capacity 4
	// forces a split on the 5th entity even if they all co-locate first.
	c.Insert(ent(1, 1, 2))
	c.Insert(ent(2, 1, 2))
	c.Insert(ent(3, 1, 2))
	c.Insert(ent(4, 1, 2))
	before := c.Stats().Splits
	c.Insert(ent(5, 1, 2)) // exceeds B=4 → split
	if c.Stats().Splits != before+1 {
		t.Fatalf("Splits = %d, want %d", c.Stats().Splits, before+1)
	}
	// All five entities remain placed, none lost.
	total := 0
	for _, p := range c.Partitions() {
		total += p.Entities
		if p.Size > 4 {
			t.Fatalf("partition %d over capacity: %d", p.ID, p.Size)
		}
	}
	if total != 5 {
		t.Fatalf("total entities = %d, want 5", total)
	}
}

func TestSplitSeparatesSchemas(t *testing.T) {
	// Mixed partition of two schemas at capacity: the split should pull
	// the schemas apart (starters are the most-different pair).
	// Two schemas overlapping in {1,2} co-locate at w = 0.9 until the
	// partition fills; the split must then pull them apart because the
	// starters are the most-different pair.
	c := NewCinderella(cfg(0.9, 8))
	id := EntityID(1)
	for i := 0; i < 4; i++ {
		c.Insert(ent(id, 1, 2, 3, 4))
		id++
		c.Insert(ent(id, 1, 2, 7, 8))
		id++
	}
	if c.NumPartitions() != 1 {
		t.Fatalf("setup: schemas did not co-locate, %d partitions", c.NumPartitions())
	}
	c.Insert(ent(id, 1, 2, 3, 4))
	if c.Stats().Splits == 0 {
		t.Fatal("expected a split")
	}
	// After the split, at least one partition must be schema-pure.
	pure := 0
	for _, p := range c.Partitions() {
		if p.Synopsis.Equal(synopsis.Of(1, 2, 3, 4)) || p.Synopsis.Equal(synopsis.Of(1, 2, 7, 8)) {
			pure++
		}
	}
	if pure == 0 {
		t.Fatalf("split did not separate schemas: %+v", c.Partitions())
	}
}

func TestSplitPreservesAllEntities(t *testing.T) {
	c := NewCinderella(cfg(0.5, 10))
	rng := rand.New(rand.NewSource(99))
	n := 500
	for i := 1; i <= n; i++ {
		attrs := []int{rng.Intn(5), 5 + rng.Intn(5), 10 + rng.Intn(10)}
		c.Insert(ent(EntityID(i), attrs...))
	}
	total := 0
	for _, p := range c.Partitions() {
		total += p.Entities
	}
	if total != n {
		t.Fatalf("entities after many splits = %d, want %d", total, n)
	}
	for i := 1; i <= n; i++ {
		if _, ok := c.Locate(EntityID(i)); !ok {
			t.Fatalf("entity %d lost", i)
		}
	}
}

func TestSingletonOversizeSplit(t *testing.T) {
	// Capacity 1: every second entity forces a split of a singleton
	// partition; the algorithm must not panic and must keep both entities.
	c := NewCinderella(cfg(0.5, 1))
	c.Insert(ent(1, 1, 2))
	c.Insert(ent(2, 1, 2))
	total := 0
	for _, p := range c.Partitions() {
		total += p.Entities
		if p.Entities > 1 {
			t.Fatalf("partition over entity capacity: %+v", p)
		}
	}
	if total != 2 {
		t.Fatalf("total = %d, want 2", total)
	}
}

func TestDeleteRemovesEntity(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	c.Insert(ent(1, 1, 2))
	c.Insert(ent(2, 1, 2))
	c.Delete(1)
	if _, ok := c.Locate(1); ok {
		t.Fatal("deleted entity still located")
	}
	if c.Partitions()[0].Entities != 1 {
		t.Fatalf("Entities = %d", c.Partitions()[0].Entities)
	}
	c.Delete(1) // no-op
	c.Delete(99)
	if c.Stats().Deletes != 1 {
		t.Fatalf("Deletes = %d, want 1", c.Stats().Deletes)
	}
}

func TestDeleteDropsEmptyPartition(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	c.Insert(ent(1, 1, 2))
	c.Insert(ent(2, 50, 51))
	if c.NumPartitions() != 2 {
		t.Fatalf("NumPartitions = %d", c.NumPartitions())
	}
	c.Delete(1)
	if c.NumPartitions() != 1 {
		t.Fatalf("empty partition not dropped: %d", c.NumPartitions())
	}
}

func TestDeleteShrinksSynopsis(t *testing.T) {
	// Synopses are exact (refcounted), so removing the only entity with an
	// attribute removes the attribute from the partition synopsis — keeps
	// pruning sound after deletions.
	c := NewCinderella(cfg(0.9, 100))
	c.Insert(ent(1, 1, 2))
	c.Insert(ent(2, 1, 2, 3))
	if c.NumPartitions() != 1 {
		t.Fatalf("setup: NumPartitions = %d", c.NumPartitions())
	}
	c.Delete(2)
	if !c.Partitions()[0].Synopsis.Equal(synopsis.Of(1, 2)) {
		t.Fatalf("synopsis after delete = %v", c.Partitions()[0].Synopsis)
	}
}

func TestUpdateInPlace(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	p1 := c.Insert(ent(1, 1, 2, 3))
	c.Insert(ent(2, 1, 2, 3))
	// Minor change: still fits best where it is.
	got := c.Update(ent(1, 1, 2, 3, 4))
	if got != p1 {
		t.Fatalf("update moved entity: %v -> %v", p1, got)
	}
	if c.Stats().UpdateMoves != 0 {
		t.Fatalf("UpdateMoves = %d, want 0", c.Stats().UpdateMoves)
	}
	// Synopsis reflects the new attribute.
	if !c.Partitions()[0].Synopsis.Contains(4) {
		t.Fatal("partition synopsis missing updated attribute")
	}
}

func TestUpdateMovesOnSchemaChange(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	c.Insert(ent(1, 1, 2, 3))
	c.Insert(ent(2, 1, 2, 3))
	p2 := c.Insert(ent(3, 50, 51, 52))
	// Entity 1 mutates into the other schema: must move to p2.
	got := c.Update(ent(1, 50, 51, 52))
	if got != p2 {
		t.Fatalf("update placed entity in %v, want %v", got, p2)
	}
	if c.Stats().UpdateMoves != 1 {
		t.Fatalf("UpdateMoves = %d, want 1", c.Stats().UpdateMoves)
	}
}

func TestUpdateUnknownInserts(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	pid := c.Update(ent(1, 1, 2))
	if pid == NoPartition {
		t.Fatal("Update of unknown entity did not insert")
	}
	if _, ok := c.Locate(1); !ok {
		t.Fatal("entity not present after Update-insert")
	}
}

func TestUpdateVacatedPartitionDropped(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	c.Insert(ent(1, 1, 2, 3))
	c.Insert(ent(2, 50, 51))
	c.Insert(ent(3, 50, 51))
	c.Update(ent(1, 50, 51))
	if c.NumPartitions() != 1 {
		t.Fatalf("vacated partition not dropped: %d", c.NumPartitions())
	}
}

func TestMoveListenerSeesAllPlacements(t *testing.T) {
	c := NewCinderella(cfg(0.5, 4))
	shadow := make(map[EntityID]PartitionID)
	live := make(map[PartitionID]bool)
	c.SetMoveListener(func(pl Placement) {
		if pl.Entity == 0 {
			// Partition drop signal.
			if !live[pl.From] {
				t.Fatalf("drop of unknown partition %d", pl.From)
			}
			delete(live, pl.From)
			return
		}
		live[pl.To] = true
		shadow[pl.Entity] = pl.To
	})
	rng := rand.New(rand.NewSource(3))
	for i := 1; i <= 300; i++ {
		c.Insert(ent(EntityID(i), rng.Intn(4), 4+rng.Intn(4)))
	}
	// The shadow built purely from listener events must agree with Locate.
	for i := 1; i <= 300; i++ {
		want, _ := c.Locate(EntityID(i))
		if shadow[EntityID(i)] != want {
			t.Fatalf("entity %d: listener says %v, Locate says %v", i, shadow[EntityID(i)], want)
		}
	}
	// Live partition set must agree with the catalog.
	if len(live) != c.NumPartitions() {
		t.Fatalf("listener live = %d, catalog = %d", len(live), c.NumPartitions())
	}
}

func TestStatsCounters(t *testing.T) {
	c := NewCinderella(cfg(0.5, 2))
	c.Insert(ent(1, 1))
	c.Insert(ent(2, 1))
	c.Insert(ent(3, 1)) // forces split
	c.Delete(1)
	st := c.Stats()
	if st.Inserts != 3 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Splits == 0 {
		t.Fatal("split not counted")
	}
	if st.RatedPairs == 0 {
		t.Fatal("no pairs rated")
	}
}

func TestSmallerWeightMorePartitions(t *testing.T) {
	// Paper Figure 7(a): lower weight → more partitions.
	counts := make([]int, 0, 3)
	for _, w := range []float64{0.1, 0.5, 0.9} {
		c := NewCinderella(cfg(w, 5000))
		rng := rand.New(rand.NewSource(11))
		for i := 1; i <= 2000; i++ {
			attrs := []int{0, 1} // common core
			for a := 2; a < 30; a++ {
				if rng.Float64() < 0.15 {
					attrs = append(attrs, a)
				}
			}
			c.Insert(ent(EntityID(i), attrs...))
		}
		counts = append(counts, c.NumPartitions())
	}
	if !(counts[0] >= counts[1] && counts[1] >= counts[2]) {
		t.Fatalf("partition counts not decreasing in w: %v", counts)
	}
	if counts[0] == counts[2] {
		t.Fatalf("weight had no effect: %v", counts)
	}
}

func TestCatalogIndexMatchesFullScan(t *testing.T) {
	// The inverted-index variant must produce the same partitioning as
	// the linear catalog scan (placement decisions are identical).
	mk := func(idx bool) *Cinderella {
		return NewCinderella(Config{Weight: 0.4, MaxSize: 50, UseCatalogIndex: idx})
	}
	a, b := mk(false), mk(true)
	rng := rand.New(rand.NewSource(21))
	type op struct {
		id    EntityID
		attrs []int
	}
	var ops []op
	for i := 1; i <= 1500; i++ {
		attrs := []int{rng.Intn(3)}
		for j := 0; j < rng.Intn(6); j++ {
			attrs = append(attrs, rng.Intn(40))
		}
		ops = append(ops, op{EntityID(i), attrs})
	}
	for _, o := range ops {
		a.Insert(ent(o.id, o.attrs...))
		b.Insert(ent(o.id, o.attrs...))
	}
	if a.NumPartitions() != b.NumPartitions() {
		t.Fatalf("partition counts diverge: scan=%d index=%d", a.NumPartitions(), b.NumPartitions())
	}
	// Co-location structure must be identical: entities sharing a
	// partition under scan share one under index.
	groupOf := func(c *Cinderella) map[PartitionID][]EntityID {
		g := make(map[PartitionID][]EntityID)
		for _, o := range ops {
			pid, _ := c.Locate(o.id)
			g[pid] = append(g[pid], o.id)
		}
		return g
	}
	ga, gb := groupOf(a), groupOf(b)
	// Build co-membership key: for each entity, the set of peers.
	peers := func(g map[PartitionID][]EntityID) map[EntityID]PartitionID {
		m := make(map[EntityID]PartitionID)
		for pid, mem := range g {
			for _, id := range mem {
				m[id] = pid
			}
		}
		return m
	}
	pa, pb := peers(ga), peers(gb)
	for _, o1 := range ops[:200] {
		for _, o2 := range ops[:200] {
			same1 := pa[o1.id] == pa[o2.id]
			same2 := pb[o1.id] == pb[o2.id]
			if same1 != same2 {
				t.Fatalf("co-location diverges for %d,%d", o1.id, o2.id)
			}
		}
	}
}

func TestStarterPolicies(t *testing.T) {
	for _, pol := range []StarterPolicy{StarterIncremental, StarterExact, StarterRandom} {
		c := NewCinderella(Config{Weight: 0.5, MaxSize: 6, StarterPolicy: pol, RandSeed: 7})
		rng := rand.New(rand.NewSource(13))
		for i := 1; i <= 300; i++ {
			c.Insert(ent(EntityID(i), rng.Intn(6), 6+rng.Intn(6)))
		}
		total := 0
		for _, p := range c.Partitions() {
			total += p.Entities
			if p.Size > 6 {
				t.Fatalf("policy %d: partition over capacity", pol)
			}
		}
		if total != 300 {
			t.Fatalf("policy %d: total = %d, want 300", pol, total)
		}
	}
}

func TestDeletedStarterRepairedOnSplit(t *testing.T) {
	c := NewCinderella(cfg(0.9, 6))
	for i := 1; i <= 6; i++ {
		c.Insert(ent(EntityID(i), 1, 2, i+10))
	}
	// Delete whatever entities currently hold the starter slots.
	ps := c.Partitions()
	if len(ps) != 1 {
		t.Skipf("setup produced %d partitions", len(ps))
	}
	p := c.parts[ps[0].ID]
	c.Delete(p.starterA)
	if p.starterB != 0 {
		c.Delete(p.starterB)
	}
	// Refill to capacity and force a split: starters must be repaired.
	next := EntityID(100)
	for c.Stats().Splits == 0 {
		c.Insert(ent(next, 1, 2, int(next)))
		next++
		if next > 200 {
			t.Fatal("no split occurred")
		}
	}
	total := 0
	for _, pi := range c.Partitions() {
		total += pi.Entities
	}
	if _, ok := c.Locate(3); !ok {
		t.Fatal("entity lost after starter-repair split")
	}
	_ = total
}
