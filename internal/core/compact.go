package core

import (
	"math"
	"sort"

	"cinderella/internal/obs"
)

// Compact merges underfilled partitions into well-fitting peers. The
// paper notes that many small partitions increase query overhead (more
// union branches) and catalog cost; deletions and low weights both
// produce them. Compact treats each small partition as a pseudo-entity
// (its synopsis and total size) and applies the Section IV rating against
// every other partition; a non-negative best rating with room to spare
// merges the two.
//
// threshold is the fill fraction below which a partition is considered
// underfilled (e.g. 0.25 → partitions under 25 % of MaxSize are merge
// candidates). Compact returns the number of merges performed. The
// partitioning invariants (placement map, synopses, capacity) are
// maintained; moves are reported through the MoveListener like split
// moves.
func (c *Cinderella) Compact(threshold float64) int {
	if threshold <= 0 {
		return 0
	}
	limit := int64(threshold * float64(c.cfg.MaxSize))
	merges := 0
	for {
		merged := c.compactOnce(limit)
		if !merged {
			c.publish()
			return merges
		}
		merges++
	}
}

// compactOnce performs the single best merge of an underfilled partition,
// returning false when none is possible.
func (c *Cinderella) compactOnce(limit int64) bool {
	// Candidates: smallest first, so fragments coalesce before touching
	// healthier partitions.
	var cands []*partition
	for _, p := range c.parts {
		if p.size <= limit {
			cands = append(cands, p)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size < cands[j].size
		}
		return cands[i].id < cands[j].id
	})

	for _, small := range cands {
		if _, live := c.parts[small.id]; !live {
			continue
		}
		target := c.bestMergeTarget(small)
		if target == nil {
			continue
		}
		c.merge(small, target)
		return true
	}
	return false
}

// bestMergeTarget rates the small partition as a pseudo-entity against
// all other partitions with enough room; nil if no partition rates
// non-negative.
func (c *Cinderella) bestMergeTarget(small *partition) *partition {
	pseudo := &Entity{Syn: small.syn, Size: small.bytes}
	sizeSmall := small.size
	var best *partition
	bestRating := math.Inf(-1)
	for _, p := range c.ordered {
		if p.id == small.id || p.size+sizeSmall > c.cfg.MaxSize {
			continue
		}
		c.stats.RatedPairs++
		r := rate(c.cfg.Weight, pseudo, p.syn, sizeSmall, p.size)
		score := r.Global
		if c.cfg.DisableNormalization {
			score = r.Local
		}
		if score > bestRating {
			bestRating = score
			best = p
		}
	}
	if best == nil || bestRating < 0 {
		return nil
	}
	return best
}

// merge moves every member of src into dst and drops src.
func (c *Cinderella) merge(src, dst *partition) {
	for _, id := range src.liveOrder() {
		m, ok := src.members[id]
		if !ok {
			continue
		}
		src.remove(id, c.cfg.entitySize(m))
		dst.add(m, c.cfg.entitySize(m))
		dst.updateStarters(m)
		c.indexAdd(dst, m.Syn)
		c.loc[id] = dst.id
		c.stats.SplitMoves++
		c.notify(Placement{Entity: id, From: src.id, To: dst.id})
	}
	c.stats.Merges++
	c.trace(obs.Event{Kind: obs.EvMerge, From: uint64(src.id), To: uint64(dst.id)})
	c.dropPartition(src)
}
