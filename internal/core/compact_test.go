package core

import (
	"math/rand"
	"testing"

	"cinderella/internal/synopsis"
)

func TestCompactMergesFragments(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	// Build two partitions of the same schema by exceeding capacity, then
	// delete most members so both become tiny fragments.
	for i := 1; i <= 150; i++ {
		c.Insert(ent(EntityID(i), 1, 2, 3))
	}
	if c.NumPartitions() < 2 {
		t.Skipf("setup produced %d partitions", c.NumPartitions())
	}
	for i := 1; i <= 150; i++ {
		if i%25 != 0 { // keep 6 entities
			c.Delete(EntityID(i))
		}
	}
	before := c.NumPartitions()
	merges := c.Compact(0.25)
	if merges == 0 {
		t.Fatalf("no merges on %d fragmented partitions", before)
	}
	if c.NumPartitions() >= before {
		t.Fatalf("partitions %d -> %d", before, c.NumPartitions())
	}
	// All survivors still placed exactly once.
	total := 0
	for _, p := range c.Partitions() {
		total += p.Entities
		if p.Size > 100 {
			t.Fatalf("merged partition over capacity: %+v", p)
		}
	}
	if total != 6 {
		t.Fatalf("entities after compact = %d, want 6", total)
	}
}

func TestCompactRespectsSchemaBoundaries(t *testing.T) {
	// Disjoint schemas rate negative against each other; Compact must not
	// merge them even when both are tiny.
	c := NewCinderella(cfg(0.5, 100))
	c.Insert(ent(1, 1, 2))
	c.Insert(ent(2, 50, 51))
	if got := c.Compact(1.0); got != 0 {
		t.Fatalf("merged disjoint schemas: %d merges", got)
	}
	if c.NumPartitions() != 2 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
}

func TestCompactRespectsCapacity(t *testing.T) {
	c := NewCinderella(cfg(0.9, 10))
	for i := 1; i <= 10; i++ {
		c.Insert(ent(EntityID(i), 1, 2))
	}
	// One full partition; a second partition with same schema appears
	// after overflow.
	c.Insert(ent(11, 1, 2))
	before := c.NumPartitions()
	c.Compact(1.0)
	// Nothing to merge: combined size would exceed B.
	total := 0
	for _, p := range c.Partitions() {
		total += p.Entities
		if p.Size > 10 {
			t.Fatalf("over capacity after compact: %+v", p)
		}
	}
	if total != 11 {
		t.Fatalf("entities = %d", total)
	}
	_ = before
}

func TestCompactZeroThresholdNoop(t *testing.T) {
	c := NewCinderella(cfg(0.5, 10))
	c.Insert(ent(1, 1))
	if got := c.Compact(0); got != 0 {
		t.Fatalf("threshold 0 merged %d", got)
	}
}

func TestCompactNotifiesMoves(t *testing.T) {
	c := NewCinderella(cfg(0.5, 100))
	shadow := map[EntityID]PartitionID{}
	c.SetMoveListener(func(pl Placement) {
		if pl.Entity != 0 {
			shadow[pl.Entity] = pl.To
		}
	})
	for i := 1; i <= 150; i++ {
		c.Insert(ent(EntityID(i), 1, 2, 3))
	}
	for i := 1; i <= 150; i++ {
		if i%50 != 0 {
			c.Delete(EntityID(i))
			delete(shadow, EntityID(i))
		}
	}
	c.Compact(0.5)
	for id, pid := range shadow {
		got, ok := c.Locate(id)
		if !ok || got != pid {
			t.Fatalf("entity %d: listener %v, Locate %v,%v", id, pid, got, ok)
		}
	}
	if c.Stats().Merges == 0 {
		t.Log("no merges occurred (acceptable if single partition remained)")
	}
}

func TestCompactKeepsInvariantsUnderChurn(t *testing.T) {
	c := NewCinderella(cfg(0.4, 30))
	rng := rand.New(rand.NewSource(12))
	live := map[EntityID]*synopsis.Set{}
	next := EntityID(1)
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			s := synopsis.Of(rng.Intn(6), 6+rng.Intn(6))
			c.Insert(Entity{ID: next, Syn: s})
			live[next] = s
			next++
		}
		// Heavy deletion.
		for id := range live {
			if rng.Float64() < 0.7 {
				c.Delete(id)
				delete(live, id)
			}
		}
		c.Compact(0.3)
		checkInvariants(t, c, live)
	}
}
