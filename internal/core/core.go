// Package core implements the paper's primary contribution: the Cinderella
// online partitioning algorithm (Algorithm 1) together with its partition
// rating (Section IV), split-starter maintenance, and the delete/update
// adjustment routines. It also provides the baseline partitioning
// strategies the evaluation compares against.
//
// The package is deliberately storage-agnostic: it decides *placement* of
// entities identified by an id, a synopsis, and a size. The table layer
// (package table) binds placements to heap segments and physically moves
// records when the partitioner reports moves.
package core

import (
	"fmt"

	"cinderella/internal/synopsis"
)

// EntityID identifies an entity across its lifetime in a table.
type EntityID uint64

// PartitionID identifies a partition in the catalog. Partition ids are
// never reused.
type PartitionID uint64

// Entity is the partitioner's view of a record: identity, synopsis, and
// size. For entity-based partitioning the synopsis lists instantiated
// attributes; for workload-based partitioning it lists the queries the
// entity is relevant to.
type Entity struct {
	ID   EntityID
	Syn  *synopsis.Set
	Size int64 // byte footprint; used when Config.SizeMode == SizeBytes
}

// SizeMode selects the unit of the SIZE() function from the paper.
type SizeMode uint8

const (
	// SizeCount charges 1 per entity; the partition size limit B is then a
	// row-count limit, matching the paper's experiments ("500 entities").
	SizeCount SizeMode = iota
	// SizeBytes charges the entity's byte footprint; B becomes a byte limit.
	SizeBytes
)

// StarterPolicy selects how split starters are maintained (ablation).
type StarterPolicy uint8

const (
	// StarterIncremental is the paper's heuristic: keep a pair, and replace
	// one of them whenever the incoming entity forms a more different pair.
	StarterIncremental StarterPolicy = iota
	// StarterExact recomputes the most-different pair over all members
	// before each split (quadratic; the cost the paper's heuristic avoids).
	StarterExact
	// StarterRandom picks two random members at split time (lower bound on
	// starter quality).
	StarterRandom
)

// Config parameterizes a Cinderella partitioner.
type Config struct {
	// Weight is w ∈ [0,1]: the balance between positive evidence
	// (homogeneity) and negative evidence (heterogeneity). The paper finds
	// 0.2–0.5 reasonable.
	Weight float64
	// MaxSize is the partition size limit B, in SizeMode units.
	MaxSize int64
	// SizeMode selects entity-count or byte sizing. Default SizeCount.
	SizeMode SizeMode
	// StarterPolicy selects split-starter maintenance. Default incremental.
	StarterPolicy StarterPolicy
	// DisableNormalization drops the global-rating denominator
	// r = r'/((SIZE(p)+SIZE(e))·|e∨p|) and compares raw local ratings r'
	// across partitions instead (ablation).
	DisableNormalization bool
	// UseCatalogIndex maintains an inverted attribute→partitions index and
	// rates only partitions sharing at least one attribute with the entity
	// (plus tracking the best disjoint rating analytically). This is the
	// "specialized data structures" direction from the paper's future work.
	UseCatalogIndex bool
	// RandSeed seeds the PRNG used by StarterRandom. Zero means seed 1.
	RandSeed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Weight < 0 || c.Weight > 1 {
		return fmt.Errorf("core: weight %v out of [0,1]", c.Weight)
	}
	if c.MaxSize <= 0 {
		return fmt.Errorf("core: max size %d must be positive", c.MaxSize)
	}
	if c.SizeMode != SizeCount && c.SizeMode != SizeBytes {
		return fmt.Errorf("core: unknown size mode %d", c.SizeMode)
	}
	return nil
}

// entitySize returns SIZE(e) in configured units.
func (c Config) entitySize(e *Entity) int64 {
	if c.SizeMode == SizeBytes {
		return e.Size
	}
	return 1
}

// Placement describes where an entity lives after an operation.
type Placement struct {
	Entity EntityID
	From   PartitionID // 0 (NoPartition) for fresh inserts
	To     PartitionID
}

// NoPartition is the zero PartitionID, never assigned to a real partition.
const NoPartition PartitionID = 0

// MoveListener observes every physical placement change: fresh inserts
// (From == NoPartition), split moves, and update moves. The table layer
// uses it to relocate records between segments.
type MoveListener func(Placement)

// Assigner is the placement interface shared by Cinderella and the
// baseline strategies.
type Assigner interface {
	// Insert places a new entity and returns its partition.
	Insert(e Entity) PartitionID
	// Delete removes an entity. Unknown ids are a no-op.
	Delete(id EntityID)
	// Update re-evaluates an entity after its synopsis/size changed and
	// returns its (possibly new) partition.
	Update(e Entity) PartitionID
	// Locate returns the partition currently holding id.
	Locate(id EntityID) (PartitionID, bool)
	// Partitions returns a snapshot of all partition descriptors.
	Partitions() []PartitionInfo
	// SetMoveListener registers the observer for placement changes. It
	// must be called before any Insert.
	SetMoveListener(MoveListener)
}

// PartitionInfo is a read-only partition descriptor for catalogs, pruning,
// and metrics.
type PartitionInfo struct {
	ID       PartitionID
	Synopsis *synopsis.Set // exact union of member synopses (do not modify)
	Entities int           // member count
	Size     int64         // total size in SizeMode units
	Bytes    int64         // total byte footprint regardless of SizeMode
}
