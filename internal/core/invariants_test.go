package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cinderella/internal/synopsis"
)

// checkInvariants validates the structural invariants of a Cinderella
// catalog against the set of entities believed live:
//
//  1. every live entity is located in exactly one partition;
//  2. partition Entities/Size equal the member aggregates;
//  3. the partition synopsis is exactly the union of member synopses;
//  4. no multi-entity partition exceeds MaxSize (count mode);
//  5. no empty partitions linger in the catalog.
func checkInvariants(t *testing.T, c *Cinderella, live map[EntityID]*synopsis.Set) {
	t.Helper()
	seen := make(map[EntityID]PartitionID)
	for pid, p := range c.parts {
		if len(p.members) == 0 {
			t.Fatalf("invariant 5: empty partition %d in catalog", pid)
		}
		var size int64
		union := synopsis.New(0)
		for id, m := range p.members {
			if prev, dup := seen[id]; dup {
				t.Fatalf("invariant 1: entity %d in partitions %d and %d", id, prev, pid)
			}
			seen[id] = pid
			size += c.cfg.entitySize(m)
			union.UnionWith(m.Syn)
			if got, ok := c.loc[id]; !ok || got != pid {
				t.Fatalf("invariant 1: loc[%d] = %d,%v but member of %d", id, got, ok, pid)
			}
		}
		if int64(len(p.members)) != int64(p.info().Entities) || size != p.size {
			t.Fatalf("invariant 2: partition %d size mismatch", pid)
		}
		if !union.Equal(p.syn) {
			t.Fatalf("invariant 3: partition %d synopsis %v != union %v", pid, p.syn, union)
		}
		if len(p.members) >= 2 && p.size > c.cfg.MaxSize {
			t.Fatalf("invariant 4: partition %d size %d > B %d", pid, p.size, c.cfg.MaxSize)
		}
	}
	if len(seen) != len(live) {
		t.Fatalf("invariant 1: %d entities placed, %d live", len(seen), len(live))
	}
	for id := range live {
		if _, ok := seen[id]; !ok {
			t.Fatalf("invariant 1: live entity %d missing from all partitions", id)
		}
	}
}

// TestPropCinderellaInvariants drives random workloads against random
// configurations and checks all catalog invariants afterwards.
func TestPropCinderellaInvariants(t *testing.T) {
	f := func(seed int64, wTenths uint8, bRaw uint8, ops []uint16) bool {
		w := float64(wTenths%11) / 10
		b := int64(bRaw%60) + 2
		c := NewCinderella(Config{Weight: w, MaxSize: b})
		rng := rand.New(rand.NewSource(seed))
		live := make(map[EntityID]*synopsis.Set)
		ids := []EntityID{}
		next := EntityID(1)
		for _, op := range ops {
			switch {
			case op%4 != 3 || len(ids) == 0:
				n := 1 + rng.Intn(8)
				attrs := make([]int, n)
				for i := range attrs {
					attrs[i] = rng.Intn(25)
				}
				s := synopsis.Of(attrs...)
				c.Insert(Entity{ID: next, Syn: s, Size: int64(8 * s.Len())})
				live[next] = s
				ids = append(ids, next)
				next++
			case op%8 == 3:
				i := rng.Intn(len(ids))
				c.Delete(ids[i])
				delete(live, ids[i])
				ids = append(ids[:i], ids[i+1:]...)
			default:
				i := rng.Intn(len(ids))
				s := synopsis.Of(rng.Intn(25), rng.Intn(25))
				c.Update(Entity{ID: ids[i], Syn: s, Size: int64(8 * s.Len())})
				live[ids[i]] = s
			}
		}
		checkInvariants(t, c, live)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropWeightZeroHomogeneous: under w = 0 every partition is perfectly
// homogeneous — each member synopsis equals the partition synopsis.
func TestPropWeightZeroHomogeneous(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		c := NewCinderella(Config{Weight: 0, MaxSize: 1000})
		rng := rand.New(rand.NewSource(seed))
		next := EntityID(1)
		for range ops {
			n := 1 + rng.Intn(4)
			attrs := make([]int, n)
			for i := range attrs {
				attrs[i] = rng.Intn(8)
			}
			c.Insert(Entity{ID: next, Syn: synopsis.Of(attrs...)})
			next++
		}
		for _, p := range c.parts {
			for _, m := range p.members {
				if !m.Syn.Equal(p.syn) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropInsertOrderPreservesEntityCount: any insertion order of the same
// multiset of entities places every entity exactly once.
func TestPropInsertOrderPreservesEntityCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type spec struct {
			id    EntityID
			attrs []int
		}
		specs := make([]spec, 400)
		for i := range specs {
			n := 1 + rng.Intn(6)
			attrs := make([]int, n)
			for j := range attrs {
				attrs[j] = rng.Intn(30)
			}
			specs[i] = spec{EntityID(i + 1), attrs}
		}
		rng.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })
		c := NewCinderella(Config{Weight: 0.3, MaxSize: 25})
		for _, s := range specs {
			c.Insert(Entity{ID: s.id, Syn: synopsis.Of(s.attrs...)})
		}
		total := 0
		for _, p := range c.Partitions() {
			total += p.Entities
		}
		return total == len(specs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCinderellaInsert(b *testing.B) {
	benchInsert(b, Config{Weight: 0.5, MaxSize: 5000})
}

func BenchmarkCinderellaInsertIndexed(b *testing.B) {
	benchInsert(b, Config{Weight: 0.5, MaxSize: 5000, UseCatalogIndex: true})
}

func benchInsert(b *testing.B, cfg Config) {
	rng := rand.New(rand.NewSource(1))
	syns := make([]*synopsis.Set, 1024)
	for i := range syns {
		n := 2 + rng.Intn(10)
		attrs := make([]int, n)
		for j := range attrs {
			attrs[j] = rng.Intn(100)
		}
		syns[i] = synopsis.Of(attrs...)
	}
	c := NewCinderella(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(Entity{ID: EntityID(i + 1), Syn: syns[i%len(syns)]})
	}
}
