package core

import (
	"cinderella/internal/synopsis"
)

// partition is the mutable catalog entry for one partition: its synopsis
// (kept exact via attribute reference counts), its members, and the pair
// of split starters.
type partition struct {
	id      PartitionID
	syn     *synopsis.Set
	refs    map[int]int // attribute id -> number of members carrying it
	members map[EntityID]*Entity
	order   []EntityID // insertion order (iteration determinism for splits)
	size    int64      // in SizeMode units
	bytes   int64      // raw bytes
	// Split starters: the heuristically most-different member pair.
	// Either may be 0 (unset) after deletions or right after creation.
	starterA EntityID
	starterB EntityID
	// idxSyn, when the catalog index is enabled, records the attributes
	// under which this partition currently appears in attrIndex, so index
	// removal walks only this partition's own postings. Nil when the index
	// is off or the partition was never indexed.
	idxSyn *synopsis.Set
}

func newPartition(id PartitionID) *partition {
	return &partition{
		id:      id,
		syn:     synopsis.New(0),
		refs:    make(map[int]int),
		members: make(map[EntityID]*Entity),
	}
}

// add registers e as a member and maintains the exact synopsis.
func (p *partition) add(e *Entity, size int64) {
	p.members[e.ID] = e
	p.order = append(p.order, e.ID)
	p.size += size
	p.bytes += e.Size
	e.Syn.ForEach(func(a int) {
		if p.refs[a] == 0 {
			p.syn.Add(a)
		}
		p.refs[a]++
	})
}

// remove unregisters the member with the given id and returns it.
func (p *partition) remove(id EntityID, size int64) *Entity {
	e, ok := p.members[id]
	if !ok {
		return nil
	}
	delete(p.members, id)
	p.size -= size
	p.bytes -= e.Size
	e.Syn.ForEach(func(a int) {
		p.refs[a]--
		if p.refs[a] == 0 {
			delete(p.refs, a)
			p.syn.Remove(a)
		}
	})
	if p.starterA == id {
		p.starterA = 0
	}
	if p.starterB == id {
		p.starterB = 0
	}
	// Compact the order slice lazily only when it has grown far beyond the
	// member count; lookups tolerate stale ids.
	if len(p.order) > 4*(len(p.members)+1) {
		kept := p.order[:0]
		for _, oid := range p.order {
			if _, live := p.members[oid]; live {
				kept = append(kept, oid)
			}
		}
		p.order = kept
	}
	return e
}

// liveOrder returns member ids in insertion order.
func (p *partition) liveOrder() []EntityID {
	out := make([]EntityID, 0, len(p.members))
	for _, id := range p.order {
		if _, ok := p.members[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// diff is the paper's DIFF(): the symmetric difference cardinality of two
// entity synopses.
func diff(a, b *Entity) int {
	return synopsis.XorCard(a.Syn, b.Syn)
}

// updateStarters implements Algorithm 1 lines 12–24: seed missing
// starters, otherwise replace one if the incoming entity forms a more
// different pair with an existing starter.
func (p *partition) updateStarters(e *Entity) {
	switch {
	case p.starterA == 0 && p.starterB == 0:
		p.starterA = e.ID
	case p.starterA == 0:
		// Repair after a deletion: slot the entity straight in.
		p.starterA = e.ID
	case p.starterB == 0:
		p.starterB = e.ID
	default:
		ea, eb := p.members[p.starterA], p.members[p.starterB]
		if ea == nil || eb == nil {
			// Starter ids that no longer resolve (should not happen; be
			// safe): reset and reseed.
			p.starterA, p.starterB = e.ID, 0
			return
		}
		// Algorithm 1 lines 18–24, verbatim: whichever pairing with e is
		// (at least tied for) most different wins.
		rEA := diff(e, ea)
		rEB := diff(e, eb)
		rAB := diff(ea, eb)
		max := rEA
		if rEB > max {
			max = rEB
		}
		if rAB > max {
			max = rAB
		}
		switch {
		case rEA == max && rEA > rAB:
			p.starterB = e.ID // e pairs with eA
		case rEB == max && rEB > rAB:
			p.starterA = e.ID // e pairs with eB
		}
	}
}

// info snapshots the partition for external consumption.
func (p *partition) info() PartitionInfo {
	return PartitionInfo{
		ID:       p.id,
		Synopsis: p.syn,
		Entities: len(p.members),
		Size:     p.size,
		Bytes:    p.bytes,
	}
}
