package core

import (
	"cinderella/internal/synopsis"
)

// Rating holds the decomposed scores of an entity/partition pair, exposed
// so that tests, tooling, and EXPERIMENTS.md can report per-term evidence.
type Rating struct {
	Homogeneity     int64   // h⁺  = (SIZE(p)+SIZE(e))·|e ∧ p|
	EntityHetero    int64   // hₑ⁻ = SIZE(e)·|¬e ∧ p|
	PartitionHetero int64   // hₚ⁻ = SIZE(p)·|e ∧ ¬p|
	Local           float64 // r'  = w·h⁺ − (1−w)(hₑ⁻+hₚ⁻)
	Global          float64 // r   = r' / ((SIZE(p)+SIZE(e))·|e ∨ p|)
}

// rate computes the Section IV rating of entity e against partition p.
// sizeE and sizeP are SIZE(e) and SIZE(p) in the configured units.
// All four cardinalities come from the fused single-pass kernel: the
// rating is the insert-path inner loop (it runs once per candidate
// partition per insert), so one traversal instead of four matters.
func rate(w float64, e *Entity, pSyn *synopsis.Set, sizeE, sizeP int64) Rating {
	andC, orC, missEC, missPC := synopsis.RateCards(e.Syn, pSyn)
	and, or := int64(andC), int64(orC)
	missE := int64(missEC) // |¬e ∧ p|
	missP := int64(missPC) // |e ∧ ¬p|

	r := Rating{
		Homogeneity:     (sizeP + sizeE) * and,
		EntityHetero:    sizeE * missE,
		PartitionHetero: sizeP * missP,
	}
	r.Local = w*float64(r.Homogeneity) - (1-w)*float64(r.EntityHetero+r.PartitionHetero)
	denom := float64((sizeP + sizeE) * or)
	if denom > 0 {
		r.Global = r.Local / denom
	} else {
		// Both synopses empty: a perfectly (vacuously) homogeneous match.
		r.Global = 0
	}
	return r
}

// Rate exposes the rating of an entity against a partition synopsis for
// diagnostics and tests.
func (c *Cinderella) Rate(e Entity, pid PartitionID) (Rating, bool) {
	p, ok := c.parts[pid]
	if !ok {
		return Rating{}, false
	}
	return rate(c.cfg.Weight, &e, p.syn, c.cfg.entitySize(&e), p.size), true
}
