package core

import (
	"math"
	"testing"

	"cinderella/internal/synopsis"
)

// TestRatingHandComputed checks the Section IV formulas against a fully
// hand-computed example.
func TestRatingHandComputed(t *testing.T) {
	// Entity attrs {0,1,2,3}, size 4. Partition attrs {2,3,4,5,6}, size 10.
	e := &Entity{ID: 1, Syn: synopsis.Of(0, 1, 2, 3)}
	pSyn := synopsis.Of(2, 3, 4, 5, 6)
	const sizeE, sizeP = 4, 10
	const w = 0.5

	r := rate(w, e, pSyn, sizeE, sizeP)

	// |e∧p| = 2, |¬e∧p| = 3, |e∧¬p| = 2, |e∨p| = 7.
	if r.Homogeneity != (sizeP+sizeE)*2 {
		t.Errorf("h+ = %d, want %d", r.Homogeneity, (sizeP+sizeE)*2)
	}
	if r.EntityHetero != sizeE*3 {
		t.Errorf("he- = %d, want %d", r.EntityHetero, sizeE*3)
	}
	if r.PartitionHetero != sizeP*2 {
		t.Errorf("hp- = %d, want %d", r.PartitionHetero, sizeP*2)
	}
	wantLocal := w*float64(28) - (1-w)*float64(12+20)
	if r.Local != wantLocal {
		t.Errorf("r' = %v, want %v", r.Local, wantLocal)
	}
	wantGlobal := wantLocal / float64((sizeP+sizeE)*7)
	if math.Abs(r.Global-wantGlobal) > 1e-12 {
		t.Errorf("r = %v, want %v", r.Global, wantGlobal)
	}
}

// TestRatingPerfectMatch: identical synopses yield pure positive evidence.
func TestRatingPerfectMatch(t *testing.T) {
	e := &Entity{ID: 1, Syn: synopsis.Of(1, 2, 3)}
	r := rate(0.5, e, synopsis.Of(1, 2, 3), 1, 5)
	if r.EntityHetero != 0 || r.PartitionHetero != 0 {
		t.Errorf("heterogeneity nonzero for perfect match: %+v", r)
	}
	if r.Global <= 0 {
		t.Errorf("perfect match should rate positive, got %v", r.Global)
	}
	// r = w·(sizeP+sizeE)·n / ((sizeP+sizeE)·n) = w.
	if math.Abs(r.Global-0.5) > 1e-12 {
		t.Errorf("perfect match global rating = %v, want w = 0.5", r.Global)
	}
}

// TestRatingDisjoint: no shared attribute yields pure negative evidence.
func TestRatingDisjoint(t *testing.T) {
	e := &Entity{ID: 1, Syn: synopsis.Of(1, 2)}
	r := rate(0.5, e, synopsis.Of(3, 4), 1, 5)
	if r.Homogeneity != 0 {
		t.Errorf("h+ = %d, want 0", r.Homogeneity)
	}
	if r.Global >= 0 {
		t.Errorf("disjoint rating should be negative, got %v", r.Global)
	}
}

// TestRatingWeightZero: with w = 0 any heterogeneity turns the rating
// negative, so only perfect matches rate non-negative (paper Section IV).
func TestRatingWeightZero(t *testing.T) {
	e := &Entity{ID: 1, Syn: synopsis.Of(1, 2)}
	if r := rate(0, e, synopsis.Of(1, 2), 1, 3); r.Global != 0 {
		t.Errorf("w=0 perfect match should rate exactly 0, got %v", r.Global)
	}
	if r := rate(0, e, synopsis.Of(1, 2, 3), 1, 3); r.Global >= 0 {
		t.Errorf("w=0 with heterogeneity should rate negative, got %v", r.Global)
	}
}

// TestRatingWeightOne: with w = 1 negative evidence is ignored.
func TestRatingWeightOne(t *testing.T) {
	e := &Entity{ID: 1, Syn: synopsis.Of(1, 9)}
	r := rate(1, e, synopsis.Of(1, 2, 3, 4), 1, 3)
	if r.Global <= 0 {
		t.Errorf("w=1 with any overlap should rate positive, got %v", r.Global)
	}
	r = rate(1, e, synopsis.Of(2, 3), 1, 3)
	if r.Global != 0 {
		t.Errorf("w=1 disjoint should rate 0, got %v", r.Global)
	}
}

// TestRatingMonotoneInWeight: for a fixed pair, the rating grows with w.
func TestRatingMonotoneInWeight(t *testing.T) {
	e := &Entity{ID: 1, Syn: synopsis.Of(1, 2, 5)}
	pSyn := synopsis.Of(1, 2, 3)
	prev := math.Inf(-1)
	for w := 0.0; w <= 1.0; w += 0.1 {
		r := rate(w, e, pSyn, 2, 10)
		if r.Global < prev {
			t.Fatalf("rating not monotone in w at %v: %v < %v", w, r.Global, prev)
		}
		prev = r.Global
	}
}

// TestRatingGlobalBounded: |r| ≤ max(w, 1-w) ≤ 1 by construction, because
// h⁺ ≤ (SIZE(p)+SIZE(e))·|e∨p| and hₑ⁻+hₚ⁻ ≤ (SIZE(p)+SIZE(e))·|e∨p|.
func TestRatingGlobalBounded(t *testing.T) {
	pairs := []struct{ e, p *synopsis.Set }{
		{synopsis.Of(1), synopsis.Of(1)},
		{synopsis.Of(1, 2, 3), synopsis.Of(4, 5, 6)},
		{synopsis.Of(1, 2), synopsis.Of(2, 3)},
		{synopsis.Of(), synopsis.Of(1, 2)},
	}
	for _, w := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, pr := range pairs {
			e := &Entity{ID: 1, Syn: pr.e}
			for _, sizes := range [][2]int64{{1, 1}, {3, 500}, {500, 3}} {
				r := rate(w, e, pr.p, sizes[0], sizes[1])
				if math.Abs(r.Global) > 1.0+1e-9 {
					t.Errorf("w=%v sizes=%v |r|=%v > 1", w, sizes, r.Global)
				}
			}
		}
	}
}

// TestRatingEmptySynopses: rating of an attribute-less entity against an
// attribute-less partition is defined (0), not NaN.
func TestRatingEmptySynopses(t *testing.T) {
	e := &Entity{ID: 1, Syn: synopsis.Of()}
	r := rate(0.5, e, synopsis.Of(), 1, 1)
	if math.IsNaN(r.Global) || r.Global != 0 {
		t.Errorf("empty-vs-empty rating = %v, want 0", r.Global)
	}
}

// TestRateMethod exposes the rating through the partitioner.
func TestRateMethod(t *testing.T) {
	c := NewCinderella(Config{Weight: 0.5, MaxSize: 10})
	e := Entity{ID: 1, Syn: synopsis.Of(1, 2)}
	pid := c.Insert(e)
	r, ok := c.Rate(Entity{ID: 2, Syn: synopsis.Of(1, 2)}, pid)
	if !ok {
		t.Fatal("Rate against existing partition failed")
	}
	if math.Abs(r.Global-0.5) > 1e-12 {
		t.Errorf("perfect-match rate = %v, want 0.5", r.Global)
	}
	if _, ok := c.Rate(e, PartitionID(999)); ok {
		t.Error("Rate against unknown partition succeeded")
	}
}
