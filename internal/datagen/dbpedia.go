// Package datagen produces synthetic irregularly structured data sets.
//
// The paper's DBpedia extract (100 000 person entities, 100 attributes) is
// not redistributable, so Generator synthesizes a data set calibrated to
// the published distribution of Figure 4:
//
//   - two attributes appear on almost every entity,
//   - eleven attributes appear on more than 30 % of entities,
//   - ~85 % of attributes appear on fewer than 10 % of entities,
//   - most entities carry between 2 and 15 attributes, with a tail up to
//     ~27, and the overall universal-table sparseness is ≈ 0.94.
//
// Correlation matters as much as the marginals: Cinderella exploits
// attribute co-occurrence. Entities are therefore drawn from latent
// classes (think "soccer player", "politician") with Zipf-distributed
// popularity; attributes attach to classes, so attributes of one class
// co-occur while attributes of different classes rarely meet — the
// structure the paper describes for real product and person data.
package datagen

import (
	"fmt"
	"math/rand"

	"cinderella/internal/entity"
)

// Config parameterizes the irregular data generator.
type Config struct {
	NumEntities int // default 100000
	NumAttrs    int // total attribute universe, default 100
	NumClasses  int // latent entity classes, default 40
	Seed        int64
}

// withDefaults fills unset fields with the paper's scale.
func (c Config) withDefaults() Config {
	if c.NumEntities == 0 {
		c.NumEntities = 100000
	}
	if c.NumAttrs == 0 {
		c.NumAttrs = 100
	}
	if c.NumClasses == 0 {
		c.NumClasses = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks the configuration for generatable values.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.NumAttrs < 20 {
		return fmt.Errorf("datagen: need at least 20 attributes, got %d", c.NumAttrs)
	}
	if c.NumEntities < 1 {
		return fmt.Errorf("datagen: need at least 1 entity")
	}
	if c.NumClasses < 1 {
		return fmt.Errorf("datagen: need at least 1 class")
	}
	return nil
}

// Dataset is a generated universal-table content: a shared dictionary and
// the entities in generation order.
type Dataset struct {
	Dict     *entity.Dictionary
	Entities []*entity.Entity
}

// Generate builds the data set for cfg. Generation is deterministic in
// cfg.Seed.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	dict := entity.NewDictionary()
	// Attribute ids: 0,1 universal; 2..12 common; 13.. rare.
	for i := 0; i < cfg.NumAttrs; i++ {
		var name string
		switch {
		case i < 2:
			name = fmt.Sprintf("universal_%02d", i)
		case i < 13:
			name = fmt.Sprintf("common_%02d", i)
		default:
			name = fmt.Sprintf("rare_%02d", i)
		}
		dict.ID(name)
	}
	const (
		universalEnd = 2
		commonEnd    = 13
	)

	// Build classes. Class popularity is Zipf-ish: weight ∝ 1/(k+1).
	type class struct {
		common   []int // subset of the 11 common attrs, carried w.p. pCommon
		specific []int // rare attrs characteristic for the class
	}
	classes := make([]class, cfg.NumClasses)
	weights := make([]float64, cfg.NumClasses)
	var wsum float64
	for k := range classes {
		weights[k] = 1 / float64(k+1)
		wsum += weights[k]
		// 3–7 of the common attributes.
		nc := 3 + rng.Intn(5)
		perm := rng.Perm(commonEnd - universalEnd)
		for _, j := range perm[:nc] {
			classes[k].common = append(classes[k].common, universalEnd+j)
		}
	}
	// Distribute rare attributes over classes uniformly: each rare
	// attribute belongs to one or two classes. Uniform (rather than
	// popularity-weighted) assignment keeps rare-attribute frequencies
	// below the 10 % line of Figure 4(a) while popular classes still get a
	// few attributes of their own.
	for a := commonEnd; a < cfg.NumAttrs; a++ {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			k := rng.Intn(cfg.NumClasses)
			classes[k].specific = append(classes[k].specific, a)
		}
	}

	// Value pools: short strings per attribute so sizes vary.
	valueFor := func(attr int) entity.Value {
		switch attr % 3 {
		case 0:
			return entity.Str(fmt.Sprintf("v%d-%d", attr, rng.Intn(1000)))
		case 1:
			return entity.Int(int64(rng.Intn(100000)))
		default:
			return entity.Float(rng.Float64() * 1000)
		}
	}

	ds := &Dataset{Dict: dict, Entities: make([]*entity.Entity, 0, cfg.NumEntities)}
	for i := 0; i < cfg.NumEntities; i++ {
		k := sampleWeighted(rng, weights, wsum)
		cl := classes[k]
		e := &entity.Entity{}
		// Universal attributes.
		if rng.Float64() < 0.97 {
			e.Set(0, valueFor(0))
		}
		if rng.Float64() < 0.90 {
			e.Set(1, valueFor(1))
		}
		// Class-common attributes.
		for _, a := range cl.common {
			if rng.Float64() < 0.80 {
				e.Set(a, valueFor(a))
			}
		}
		// Class-specific rare attributes.
		for _, a := range cl.specific {
			if rng.Float64() < 0.45 {
				e.Set(a, valueFor(a))
			}
		}
		// Idiosyncratic noise: occasionally one random attribute. Noise
		// must stay rare — in real irregular data rare attributes cluster
		// with their entity type; uniform noise would smear every rare
		// attribute across all partitions and destroy pruning for any
		// partitioner.
		if rng.Float64() < 0.08 {
			a := rng.Intn(cfg.NumAttrs)
			e.Set(a, valueFor(a))
		}
		// A small fraction of entities is exceptionally rich: they belong
		// to a second (and sometimes third) class, like a person who is
		// both athlete and politician. This produces Figure 4(b)'s tail
		// up to ~27 attributes while keeping co-occurrence structure.
		if rng.Float64() < 0.03 {
			extraClasses := 1 + rng.Intn(2)
			for x := 0; x < extraClasses; x++ {
				c2 := classes[rng.Intn(cfg.NumClasses)]
				for _, a := range c2.common {
					if rng.Float64() < 0.8 {
						e.Set(a, valueFor(a))
					}
				}
				for _, a := range c2.specific {
					if rng.Float64() < 0.6 {
						e.Set(a, valueFor(a))
					}
				}
			}
		}
		// Guarantee non-empty entities (the paper's data has ≥ 2 attrs on
		// nearly everything).
		if e.NumAttrs() == 0 {
			e.Set(0, valueFor(0))
		}
		ds.Entities = append(ds.Entities, e)
	}
	return ds, nil
}

// sampleWeighted draws an index proportionally to weights.
func sampleWeighted(rng *rand.Rand, weights []float64, sum float64) int {
	x := rng.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the entities in place (the paper inserts "in random
// order") deterministically in seed.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.Entities), func(i, j int) {
		d.Entities[i], d.Entities[j] = d.Entities[j], d.Entities[i]
	})
}

// Sparseness returns the universal-table sparseness of the data set: the
// fraction of empty cells in the (entities × instantiated attributes)
// grid. The paper reports 0.94 for its DBpedia extract.
func (d *Dataset) Sparseness() float64 {
	attrs := map[int]struct{}{}
	var filled int64
	for _, e := range d.Entities {
		for _, f := range e.Fields() {
			attrs[f.Attr] = struct{}{}
		}
		filled += int64(e.NumAttrs())
	}
	total := int64(len(d.Entities)) * int64(len(attrs))
	if total == 0 {
		return 0
	}
	return 1 - float64(filled)/float64(total)
}

// RegularDataset generates a perfectly regular data set: n entities all
// instantiating the same attrs (ids 0..attrs-1). Used by tests as the
// TPC-H-like degenerate case.
func RegularDataset(n, attrs int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dict := entity.NewDictionary()
	for i := 0; i < attrs; i++ {
		dict.ID(fmt.Sprintf("col_%02d", i))
	}
	ds := &Dataset{Dict: dict}
	for i := 0; i < n; i++ {
		e := &entity.Entity{}
		for a := 0; a < attrs; a++ {
			e.Set(a, entity.Int(int64(rng.Intn(1000))))
		}
		ds.Entities = append(ds.Entities, e)
	}
	return ds
}
