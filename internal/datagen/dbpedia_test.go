package datagen

import (
	"testing"

	"cinderella/internal/metrics"
	"cinderella/internal/synopsis"
)

func genSmall(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(Config{NumEntities: 20000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func synopses(ds *Dataset) []*synopsis.Set {
	out := make([]*synopsis.Set, len(ds.Entities))
	for i, e := range ds.Entities {
		out[i] = e.Synopsis()
	}
	return out
}

func TestGenerateCount(t *testing.T) {
	ds := genSmall(t)
	if len(ds.Entities) != 20000 {
		t.Fatalf("entities = %d", len(ds.Entities))
	}
	if ds.Dict.Len() != 100 {
		t.Fatalf("attrs = %d", ds.Dict.Len())
	}
	for i, e := range ds.Entities {
		if e.NumAttrs() == 0 {
			t.Fatalf("entity %d has no attributes", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{NumEntities: 500, Seed: 7})
	b, _ := Generate(Config{NumEntities: 500, Seed: 7})
	for i := range a.Entities {
		if !a.Entities[i].Equal(b.Entities[i]) {
			t.Fatalf("entity %d differs between runs", i)
		}
	}
	c, _ := Generate(Config{NumEntities: 500, Seed: 8})
	same := 0
	for i := range a.Entities {
		if a.Entities[i].Equal(c.Entities[i]) {
			same++
		}
	}
	if same == len(a.Entities) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateValidate(t *testing.T) {
	bad := []Config{
		{NumAttrs: 5},
		{NumEntities: -1},
		{NumClasses: -2},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestFigure4aShape verifies the attribute-frequency calibration targets
// from Figure 4(a).
func TestFigure4aShape(t *testing.T) {
	ds := genSmall(t)
	n := float64(len(ds.Entities))
	freq := metrics.FrequencyDistribution(synopses(ds))

	// "two attributes are extremely common and appear on almost every
	// entity"
	if float64(freq[0])/n < 0.85 || float64(freq[1])/n < 0.80 {
		t.Errorf("top-2 attribute frequencies too low: %v %v", float64(freq[0])/n, float64(freq[1])/n)
	}
	// "Eleven attributes are fairly common and appear on over 30% of the
	// entities" — allow 9–15.
	over30 := 0
	for _, f := range freq {
		if float64(f)/n > 0.30 {
			over30++
		}
	}
	if over30 < 8 || over30 > 16 {
		t.Errorf("attributes over 30%% = %d, want ≈ 13 (2 universal + 11 common)", over30)
	}
	// "85% of the attributes appear on less than 10% of the entities" —
	// allow 75–95 of 100.
	under10 := 0
	for _, f := range freq {
		if float64(f)/n < 0.10 {
			under10++
		}
	}
	under10 += 100 - len(freq) // attributes that never appeared
	if under10 < 70 || under10 > 95 {
		t.Errorf("attributes under 10%% = %d, want ≈ 85", under10)
	}
}

// TestFigure4bShape verifies the attributes-per-entity calibration from
// Figure 4(b): majority between 2 and 15, tail bounded near 27.
func TestFigure4bShape(t *testing.T) {
	ds := genSmall(t)
	counts := metrics.AttrsPerEntity(synopses(ds))
	in2to15, max := 0, 0
	for _, c := range counts {
		if c >= 2 && c <= 15 {
			in2to15++
		}
		if c > max {
			max = c
		}
	}
	if frac := float64(in2to15) / float64(len(counts)); frac < 0.80 {
		t.Errorf("fraction of entities with 2–15 attrs = %v, want > 0.80", frac)
	}
	if max > 35 {
		t.Errorf("max attrs per entity = %d, want tail ≲ 30", max)
	}
	if max < 16 {
		t.Errorf("max attrs per entity = %d, want a tail beyond 15", max)
	}
}

// TestSparsenessNearPaper: the paper's extract has sparseness 0.94.
func TestSparsenessNearPaper(t *testing.T) {
	ds := genSmall(t)
	sp := ds.Sparseness()
	if sp < 0.88 || sp > 0.97 {
		t.Errorf("sparseness = %v, want ≈ 0.94", sp)
	}
}

func TestShuffleDeterministicPermutation(t *testing.T) {
	a, _ := Generate(Config{NumEntities: 300, Seed: 3})
	b, _ := Generate(Config{NumEntities: 300, Seed: 3})
	a.Shuffle(9)
	b.Shuffle(9)
	for i := range a.Entities {
		if !a.Entities[i].Equal(b.Entities[i]) {
			t.Fatal("shuffle not deterministic")
		}
	}
	// Shuffle is a permutation: same multiset of attr-counts.
	c, _ := Generate(Config{NumEntities: 300, Seed: 3})
	sum := func(d *Dataset) int {
		s := 0
		for _, e := range d.Entities {
			s += e.NumAttrs()
		}
		return s
	}
	if sum(a) != sum(c) {
		t.Fatal("shuffle lost entities")
	}
}

func TestRegularDataset(t *testing.T) {
	ds := RegularDataset(50, 8, 1)
	if len(ds.Entities) != 50 {
		t.Fatalf("entities = %d", len(ds.Entities))
	}
	for _, e := range ds.Entities {
		if e.NumAttrs() != 8 {
			t.Fatalf("regular entity has %d attrs, want 8", e.NumAttrs())
		}
	}
	if sp := ds.Sparseness(); sp != 0 {
		t.Fatalf("regular sparseness = %v, want 0", sp)
	}
}
