package engine

import (
	"sort"
	"strings"

	"cinderella/internal/entity"
)

// AggKind enumerates the supported aggregate functions.
type AggKind uint8

// Supported aggregates.
const (
	Sum AggKind = iota
	Avg
	Count
	Min
	Max
	CountDistinct
)

// AggSpec declares one aggregate output: the function applied to an
// expression over input rows. Expr may be nil for Count(*).
type AggSpec struct {
	Kind AggKind
	Expr Expr
	Name string
}

// HashAggregate groups rows by key columns and computes aggregates. The
// output schema is the group-by columns followed by the aggregate names.
type HashAggregate struct {
	In      Operator
	GroupBy []int
	Aggs    []AggSpec

	out []Row
	pos int
}

type aggState struct {
	group Row
	sum   []float64
	min   []Value
	max   []Value
	n     []int64
	seen  []map[string]struct{}
}

// Schema returns group-by columns plus aggregate names.
func (a *HashAggregate) Schema() Schema {
	in := a.In.Schema()
	out := make(Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		out = append(out, in[g])
	}
	for _, s := range a.Aggs {
		out = append(out, s.Name)
	}
	return out
}

// Open drains the input and materializes group results, ordered by group
// key for determinism.
func (a *HashAggregate) Open() {
	a.In.Open()
	groups := map[string]*aggState{}
	var order []string
	for {
		r, ok := a.In.Next()
		if !ok {
			break
		}
		var kb strings.Builder
		for _, g := range a.GroupBy {
			kb.WriteString(r[g].String())
			kb.WriteByte(0)
		}
		k := kb.String()
		st, ok := groups[k]
		if !ok {
			st = &aggState{
				group: make(Row, len(a.GroupBy)),
				sum:   make([]float64, len(a.Aggs)),
				min:   make([]Value, len(a.Aggs)),
				max:   make([]Value, len(a.Aggs)),
				n:     make([]int64, len(a.Aggs)),
				seen:  make([]map[string]struct{}, len(a.Aggs)),
			}
			for i, g := range a.GroupBy {
				st.group[i] = r[g]
			}
			for i, spec := range a.Aggs {
				if spec.Kind == CountDistinct {
					st.seen[i] = make(map[string]struct{})
				}
			}
			groups[k] = st
			order = append(order, k)
		}
		for i, spec := range a.Aggs {
			var v Value
			if spec.Expr != nil {
				v = spec.Expr(r)
			}
			switch spec.Kind {
			case Sum, Avg:
				if !v.IsNull() {
					st.sum[i] += v.AsFloat()
					st.n[i]++
				}
			case Count:
				if spec.Expr == nil || !v.IsNull() {
					st.n[i]++
				}
			case CountDistinct:
				if !v.IsNull() {
					st.seen[i][v.String()] = struct{}{}
				}
			case Min:
				// The zero Value is null, so a null min means "unset".
				if !v.IsNull() && (st.min[i].IsNull() || CompareValues(v, st.min[i]) < 0) {
					st.min[i] = v
				}
			case Max:
				if !v.IsNull() && (st.max[i].IsNull() || CompareValues(v, st.max[i]) > 0) {
					st.max[i] = v
				}
			}
		}
	}
	a.In.Close()

	sort.Strings(order)
	a.out = a.out[:0]
	for _, k := range order {
		st := groups[k]
		row := make(Row, 0, len(a.GroupBy)+len(a.Aggs))
		row = append(row, st.group...)
		for i, spec := range a.Aggs {
			switch spec.Kind {
			case Sum:
				row = append(row, entity.Float(st.sum[i]))
			case Avg:
				if st.n[i] == 0 {
					row = append(row, entity.Null())
				} else {
					row = append(row, entity.Float(st.sum[i]/float64(st.n[i])))
				}
			case Count:
				row = append(row, entity.Int(st.n[i]))
			case CountDistinct:
				row = append(row, entity.Int(int64(len(st.seen[i]))))
			case Min:
				row = append(row, st.min[i])
			case Max:
				row = append(row, st.max[i])
			}
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
}

// Next returns the next group row.
func (a *HashAggregate) Next() (Row, bool) {
	if a.pos >= len(a.out) {
		return nil, false
	}
	r := a.out[a.pos]
	a.pos++
	return r, true
}

// Close releases group state.
func (a *HashAggregate) Close() { a.out = nil }

// ScalarAgg runs an aggregation without grouping and returns the single
// result row (all aggregates over the whole input). Convenient for the
// scalar subqueries in several TPC-H queries.
func ScalarAgg(in Operator, aggs ...AggSpec) Row {
	agg := &HashAggregate{In: in, Aggs: aggs}
	rows := Collect(agg)
	if len(rows) == 0 {
		// No input rows: sums are 0, counts 0, min/max null.
		out := make(Row, len(aggs))
		for i, s := range aggs {
			switch s.Kind {
			case Count, CountDistinct:
				out[i] = entity.Int(0)
			case Sum:
				out[i] = entity.Float(0)
			default:
				out[i] = entity.Null()
			}
		}
		return out
	}
	return rows[0]
}
