// Package engine is a small volcano-style relational query engine: scans,
// filters, projections, hash joins, hash aggregation, sorting, and
// union-all over row sources. The TPC-H experiment (paper Table I) runs
// all 22 queries through this engine, either against regular tables or
// against views that union Cinderella partitions.
//
// Plans are built programmatically (there is no SQL parser); expressions
// are Go closures over rows. Values reuse entity.Value, so universal-table
// entities convert to rows without copying conversions.
package engine

import (
	"fmt"
	"sort"

	"cinderella/internal/entity"
)

// Value aliases the dynamically typed value of the entity model.
type Value = entity.Value

// Row is one tuple.
type Row []Value

// Schema names the columns of a row stream.
type Schema []string

// ColIndex returns the position of a named column, or panics — plans are
// built by code, so a miss is a programming error.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("engine: unknown column %q in schema %v", name, s))
}

// Operator is the volcano iterator contract. Operators are single-use:
// Open, then Next until ok is false, then Close.
type Operator interface {
	Schema() Schema
	Open()
	Next() (Row, bool)
	Close()
}

// Expr evaluates a scalar over a row.
type Expr func(Row) Value

// Pred evaluates a boolean over a row.
type Pred func(Row) bool

// Col returns an Expr reading column i.
func Col(i int) Expr { return func(r Row) Value { return r[i] } }

// Const returns an Expr yielding a fixed value.
func Const(v Value) Expr { return func(Row) Value { return v } }

// Collect drains an operator into a materialized result.
func Collect(op Operator) []Row {
	op.Open()
	defer op.Close()
	var out []Row
	for {
		r, ok := op.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// --- scan ---

// RowSource produces rows for a scan. Implementations: materialized
// slices (regular tables) and universal-table partition views.
type RowSource interface {
	Schema() Schema
	// Rows invokes fn for every row; stops early if fn returns false.
	Rows(fn func(Row) bool)
}

// SliceSource is a materialized RowSource.
type SliceSource struct {
	Cols Schema
	Data []Row
}

// Schema returns the source schema.
func (s *SliceSource) Schema() Schema { return s.Cols }

// Rows iterates the materialized rows.
func (s *SliceSource) Rows(fn func(Row) bool) {
	for _, r := range s.Data {
		if !fn(r) {
			return
		}
	}
}

// Scan is a full scan over a RowSource. Because RowSource exposes a
// callback iteration, Scan materializes lazily in chunks via a pull
// adapter: it simply buffers the callback into a slice on Open. Sources
// are in-memory in this system, so this costs one slice of row headers.
type Scan struct {
	Src  RowSource
	rows []Row
	pos  int
}

// NewScan returns a scan over src.
func NewScan(src RowSource) *Scan { return &Scan{Src: src} }

// Schema returns the source schema.
func (s *Scan) Schema() Schema { return s.Src.Schema() }

// Open materializes the iteration buffer.
func (s *Scan) Open() {
	s.rows = s.rows[:0]
	s.Src.Rows(func(r Row) bool {
		s.rows = append(s.rows, r)
		return true
	})
	s.pos = 0
}

// Next returns the next row.
func (s *Scan) Next() (Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

// Close releases the buffer.
func (s *Scan) Close() { s.rows = nil }

// --- filter ---

// Filter passes rows satisfying a predicate.
type Filter struct {
	In   Operator
	Cond Pred
}

// Schema returns the input schema.
func (f *Filter) Schema() Schema { return f.In.Schema() }

// Open opens the input.
func (f *Filter) Open() { f.In.Open() }

// Next returns the next matching row.
func (f *Filter) Next() (Row, bool) {
	for {
		r, ok := f.In.Next()
		if !ok {
			return nil, false
		}
		if f.Cond(r) {
			return r, true
		}
	}
}

// Close closes the input.
func (f *Filter) Close() { f.In.Close() }

// --- project ---

// Project computes output columns from each input row.
type Project struct {
	In    Operator
	Cols  Schema
	Exprs []Expr
}

// Schema returns the projected schema.
func (p *Project) Schema() Schema { return p.Cols }

// Open opens the input.
func (p *Project) Open() { p.In.Open() }

// Next projects the next row.
func (p *Project) Next() (Row, bool) {
	r, ok := p.In.Next()
	if !ok {
		return nil, false
	}
	out := make(Row, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = e(r)
	}
	return out, true
}

// Close closes the input.
func (p *Project) Close() { p.In.Close() }

// --- limit ---

// Limit passes at most N rows.
type Limit struct {
	In Operator
	N  int
	n  int
}

// Schema returns the input schema.
func (l *Limit) Schema() Schema { return l.In.Schema() }

// Open opens the input and resets the counter.
func (l *Limit) Open() { l.In.Open(); l.n = 0 }

// Next returns the next row while under the limit.
func (l *Limit) Next() (Row, bool) {
	if l.n >= l.N {
		return nil, false
	}
	r, ok := l.In.Next()
	if !ok {
		return nil, false
	}
	l.n++
	return r, true
}

// Close closes the input.
func (l *Limit) Close() { l.In.Close() }

// --- sort ---

// OrderBy sorts the input by a less function (materializing).
type OrderBy struct {
	In   Operator
	Less func(a, b Row) bool
	rows []Row
	pos  int
}

// Schema returns the input schema.
func (o *OrderBy) Schema() Schema { return o.In.Schema() }

// Open drains and sorts the input.
func (o *OrderBy) Open() {
	o.In.Open()
	o.rows = o.rows[:0]
	for {
		r, ok := o.In.Next()
		if !ok {
			break
		}
		o.rows = append(o.rows, r)
	}
	o.In.Close()
	sort.SliceStable(o.rows, func(i, j int) bool { return o.Less(o.rows[i], o.rows[j]) })
	o.pos = 0
}

// Next returns the next row in order.
func (o *OrderBy) Next() (Row, bool) {
	if o.pos >= len(o.rows) {
		return nil, false
	}
	r := o.rows[o.pos]
	o.pos++
	return r, true
}

// Close releases the buffer.
func (o *OrderBy) Close() { o.rows = nil }

// --- union all ---

// UnionAll concatenates child streams with identical schemas.
type UnionAll struct {
	Children []Operator
	idx      int
}

// Schema returns the first child's schema.
func (u *UnionAll) Schema() Schema {
	if len(u.Children) == 0 {
		return nil
	}
	return u.Children[0].Schema()
}

// Open opens all children.
func (u *UnionAll) Open() {
	for _, c := range u.Children {
		c.Open()
	}
	u.idx = 0
}

// Next pulls from the current child, advancing on exhaustion.
func (u *UnionAll) Next() (Row, bool) {
	for u.idx < len(u.Children) {
		if r, ok := u.Children[u.idx].Next(); ok {
			return r, true
		}
		u.idx++
	}
	return nil, false
}

// Close closes all children.
func (u *UnionAll) Close() {
	for _, c := range u.Children {
		c.Close()
	}
}

// CompareValues orders two values of the same kind; ints and floats
// compare numerically across kinds. Nulls sort first.
func CompareValues(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.Kind() == entity.KindString || b.Kind() == entity.KindString {
		as, bs := a.AsString(), b.AsString()
		switch {
		case as < bs:
			return -1
		case as > bs:
			return 1
		}
		return 0
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

// LessBy builds a Less function over ordered column indexes; negative
// index -i-1 means descending on column i.
func LessBy(cols ...int) func(a, b Row) bool {
	return func(a, b Row) bool {
		for _, c := range cols {
			idx, desc := c, false
			if c < 0 {
				idx, desc = -c-1, true
			}
			cmp := CompareValues(a[idx], b[idx])
			if desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	}
}
