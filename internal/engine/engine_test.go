package engine

import (
	"testing"

	"cinderella/internal/entity"
)

func src(cols Schema, rows ...Row) *SliceSource {
	return &SliceSource{Cols: cols, Data: rows}
}

func iv(i int64) Value   { return entity.Int(i) }
func fv(f float64) Value { return entity.Float(f) }
func sv(s string) Value  { return entity.Str(s) }

func people() *SliceSource {
	return src(Schema{"id", "name", "age"},
		Row{iv(1), sv("ann"), iv(30)},
		Row{iv(2), sv("bob"), iv(25)},
		Row{iv(3), sv("cat"), iv(35)},
		Row{iv(4), sv("dan"), iv(25)},
	)
}

func TestSchemaColIndex(t *testing.T) {
	s := Schema{"a", "b"}
	if s.ColIndex("b") != 1 {
		t.Fatal("ColIndex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown column did not panic")
		}
	}()
	s.ColIndex("zzz")
}

func TestScanCollect(t *testing.T) {
	rows := Collect(NewScan(people()))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1].AsString() != "ann" {
		t.Fatalf("row0 = %v", rows[0])
	}
}

func TestScanReusable(t *testing.T) {
	sc := NewScan(people())
	a := Collect(sc)
	b := Collect(sc)
	if len(a) != len(b) {
		t.Fatal("scan not reusable after Close")
	}
}

func TestFilter(t *testing.T) {
	f := &Filter{
		In:   NewScan(people()),
		Cond: func(r Row) bool { return r[2].AsInt() == 25 },
	}
	rows := Collect(f)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestProject(t *testing.T) {
	p := &Project{
		In:   NewScan(people()),
		Cols: Schema{"name", "age2"},
		Exprs: []Expr{
			Col(1),
			func(r Row) Value { return iv(r[2].AsInt() * 2) },
		},
	}
	rows := Collect(p)
	if len(rows) != 4 || rows[0][1].AsInt() != 60 {
		t.Fatalf("rows = %v", rows)
	}
	if p.Schema()[0] != "name" {
		t.Fatal("schema wrong")
	}
}

func TestLimit(t *testing.T) {
	l := &Limit{In: NewScan(people()), N: 2}
	if got := len(Collect(l)); got != 2 {
		t.Fatalf("rows = %d", got)
	}
	l = &Limit{In: NewScan(people()), N: 0}
	if got := len(Collect(l)); got != 0 {
		t.Fatalf("rows = %d", got)
	}
	l = &Limit{In: NewScan(people()), N: 100}
	if got := len(Collect(l)); got != 4 {
		t.Fatalf("rows = %d", got)
	}
}

func TestOrderBy(t *testing.T) {
	o := &OrderBy{In: NewScan(people()), Less: LessBy(2, 1)} // age asc, name asc
	rows := Collect(o)
	wantNames := []string{"bob", "dan", "ann", "cat"}
	for i, w := range wantNames {
		if rows[i][1].AsString() != w {
			t.Fatalf("order = %v", rows)
		}
	}
	// Descending by age.
	o = &OrderBy{In: NewScan(people()), Less: LessBy(-3)}
	rows = Collect(o)
	if rows[0][1].AsString() != "cat" {
		t.Fatalf("desc order = %v", rows)
	}
}

func TestUnionAll(t *testing.T) {
	u := &UnionAll{Children: []Operator{NewScan(people()), NewScan(people())}}
	if got := len(Collect(u)); got != 8 {
		t.Fatalf("rows = %d", got)
	}
	empty := &UnionAll{}
	if got := len(Collect(empty)); got != 0 {
		t.Fatalf("empty union rows = %d", got)
	}
	if empty.Schema() != nil {
		t.Fatal("empty union schema")
	}
}

func TestCompareValues(t *testing.T) {
	if CompareValues(iv(1), iv(2)) >= 0 {
		t.Fatal("1 < 2 failed")
	}
	if CompareValues(fv(2.5), iv(2)) <= 0 {
		t.Fatal("2.5 > 2 failed")
	}
	if CompareValues(sv("a"), sv("b")) >= 0 {
		t.Fatal("a < b failed")
	}
	if CompareValues(entity.Null(), iv(0)) >= 0 {
		t.Fatal("null should sort first")
	}
	if CompareValues(entity.Null(), entity.Null()) != 0 {
		t.Fatal("null == null failed")
	}
	if CompareValues(iv(3), iv(3)) != 0 {
		t.Fatal("3 == 3 failed")
	}
}

func orders() *SliceSource {
	return src(Schema{"oid", "pid", "qty"},
		Row{iv(100), iv(1), iv(5)},
		Row{iv(101), iv(1), iv(3)},
		Row{iv(102), iv(3), iv(9)},
		Row{iv(103), iv(9), iv(1)}, // dangling pid
	)
}

func TestHashJoinInner(t *testing.T) {
	j := &HashJoin{
		Left:     NewScan(orders()),
		Right:    NewScan(people()),
		LeftKey:  KeyCols(1),
		RightKey: KeyCols(0),
		Type:     Inner,
	}
	rows := Collect(j)
	if len(rows) != 3 {
		t.Fatalf("inner join rows = %d, want 3", len(rows))
	}
	// Concatenated schema.
	if len(j.Schema()) != 6 {
		t.Fatalf("schema = %v", j.Schema())
	}
	// First joined row carries the person name.
	if rows[0][4].AsString() != "ann" {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	j := &HashJoin{
		Left:     NewScan(orders()),
		Right:    NewScan(people()),
		LeftKey:  KeyCols(1),
		RightKey: KeyCols(0),
		Type:     LeftOuter,
	}
	rows := Collect(j)
	if len(rows) != 4 {
		t.Fatalf("left join rows = %d, want 4", len(rows))
	}
	var dangling Row
	for _, r := range rows {
		if r[0].AsInt() == 103 {
			dangling = r
		}
	}
	if dangling == nil || !dangling[3].IsNull() {
		t.Fatalf("dangling row = %v", dangling)
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	semi := &HashJoin{
		Left:     NewScan(people()),
		Right:    NewScan(orders()),
		LeftKey:  KeyCols(0),
		RightKey: KeyCols(1),
		Type:     Semi,
	}
	rows := Collect(semi)
	if len(rows) != 2 { // ann(1) and cat(3) have orders
		t.Fatalf("semi rows = %d, want 2", len(rows))
	}
	if len(semi.Schema()) != 3 {
		t.Fatal("semi join schema must be left only")
	}
	anti := &HashJoin{
		Left:     NewScan(people()),
		Right:    NewScan(orders()),
		LeftKey:  KeyCols(0),
		RightKey: KeyCols(1),
		Type:     Anti,
	}
	rows = Collect(anti)
	if len(rows) != 2 { // bob, dan
		t.Fatalf("anti rows = %d, want 2", len(rows))
	}
}

func TestHashJoinExtraPredicate(t *testing.T) {
	j := &HashJoin{
		Left:     NewScan(orders()),
		Right:    NewScan(people()),
		LeftKey:  KeyCols(1),
		RightKey: KeyCols(0),
		Type:     Inner,
		Extra:    func(l, r Row) bool { return l[2].AsInt() > 4 },
	}
	rows := Collect(j)
	if len(rows) != 2 { // qty 5 and 9
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestHashJoinMultiKey(t *testing.T) {
	l := src(Schema{"a", "b"}, Row{iv(1), iv(2)}, Row{iv(1), iv(3)})
	r := src(Schema{"x", "y"}, Row{iv(1), iv(2)}, Row{iv(1), iv(9)})
	j := &HashJoin{
		Left: NewScan(l), Right: NewScan(r),
		LeftKey: KeyCols(0, 1), RightKey: KeyCols(0, 1),
		Type: Inner,
	}
	if rows := Collect(j); len(rows) != 1 {
		t.Fatalf("multi-key join rows = %d, want 1", len(rows))
	}
}

func TestHashAggregate(t *testing.T) {
	a := &HashAggregate{
		In:      NewScan(people()),
		GroupBy: []int{2}, // age
		Aggs: []AggSpec{
			{Kind: Count, Name: "n"},
			{Kind: Sum, Expr: Col(0), Name: "sum_id"},
			{Kind: Min, Expr: Col(1), Name: "min_name"},
			{Kind: Max, Expr: Col(1), Name: "max_name"},
			{Kind: Avg, Expr: Col(0), Name: "avg_id"},
		},
	}
	rows := Collect(a)
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rows))
	}
	// Groups sorted by key string; age 25 has 2 members (bob, dan).
	var g25 Row
	for _, r := range rows {
		if r[0].AsInt() == 25 {
			g25 = r
		}
	}
	if g25 == nil || g25[1].AsInt() != 2 {
		t.Fatalf("g25 = %v", g25)
	}
	if g25[2].AsFloat() != 6 { // ids 2+4
		t.Fatalf("sum = %v", g25[2])
	}
	if g25[3].AsString() != "bob" || g25[4].AsString() != "dan" {
		t.Fatalf("min/max = %v %v", g25[3], g25[4])
	}
	if g25[5].AsFloat() != 3 {
		t.Fatalf("avg = %v", g25[5])
	}
	if got := a.Schema(); got[0] != "age" || got[1] != "n" {
		t.Fatalf("schema = %v", got)
	}
}

func TestHashAggregateCountDistinct(t *testing.T) {
	a := &HashAggregate{
		In:   NewScan(people()),
		Aggs: []AggSpec{{Kind: CountDistinct, Expr: Col(2), Name: "ages"}},
	}
	rows := Collect(a)
	if len(rows) != 1 || rows[0][0].AsInt() != 3 {
		t.Fatalf("count distinct = %v", rows)
	}
}

func TestHashAggregateNullsIgnored(t *testing.T) {
	s := src(Schema{"v"},
		Row{iv(1)}, Row{entity.Null()}, Row{iv(3)},
	)
	a := &HashAggregate{
		In: NewScan(s),
		Aggs: []AggSpec{
			{Kind: Sum, Expr: Col(0), Name: "s"},
			{Kind: Count, Expr: Col(0), Name: "c"},
			{Kind: Min, Expr: Col(0), Name: "mn"},
			{Kind: Max, Expr: Col(0), Name: "mx"},
		},
	}
	rows := Collect(a)
	r := rows[0]
	if r[0].AsFloat() != 4 || r[1].AsInt() != 2 {
		t.Fatalf("sum/count = %v", r)
	}
	if r[2].AsInt() != 1 || r[3].AsInt() != 3 {
		t.Fatalf("min/max = %v", r)
	}
}

func TestHashAggregateNullFirstMinMax(t *testing.T) {
	s := src(Schema{"v"}, Row{entity.Null()}, Row{iv(5)})
	rows := Collect(&HashAggregate{
		In:   NewScan(s),
		Aggs: []AggSpec{{Kind: Min, Expr: Col(0), Name: "mn"}},
	})
	if rows[0][0].AsInt() != 5 {
		t.Fatalf("min after leading null = %v", rows[0][0])
	}
}

func TestScalarAgg(t *testing.T) {
	r := ScalarAgg(NewScan(people()),
		AggSpec{Kind: Count, Name: "n"},
		AggSpec{Kind: Avg, Expr: Col(2), Name: "avg_age"},
	)
	if r[0].AsInt() != 4 || r[1].AsFloat() != 28.75 {
		t.Fatalf("scalar agg = %v", r)
	}
	// Empty input: count 0, avg null, sum 0.
	empty := src(Schema{"v"})
	r = ScalarAgg(NewScan(empty),
		AggSpec{Kind: Count, Name: "n"},
		AggSpec{Kind: Avg, Expr: Col(0), Name: "a"},
		AggSpec{Kind: Sum, Expr: Col(0), Name: "s"},
	)
	if r[0].AsInt() != 0 || !r[1].IsNull() || r[2].AsFloat() != 0 {
		t.Fatalf("empty scalar agg = %v", r)
	}
}

func TestConstExpr(t *testing.T) {
	c := Const(iv(7))
	if c(nil).AsInt() != 7 {
		t.Fatal("Const wrong")
	}
}
