package engine

import (
	"strings"

	"cinderella/internal/entity"
)

// JoinType selects the join semantics of HashJoin.
type JoinType uint8

// Supported join types. Semi and anti joins emit only left-side columns.
const (
	Inner JoinType = iota
	LeftOuter
	Semi
	Anti
)

// KeyFunc extracts a join key from a row. Keys compare by string equality
// (see KeyOf helpers).
type KeyFunc func(Row) string

// KeyCols builds a KeyFunc concatenating the given column values.
func KeyCols(cols ...int) KeyFunc {
	return func(r Row) string {
		if len(cols) == 1 {
			return keyOf(r[cols[0]])
		}
		var b strings.Builder
		for i, c := range cols {
			if i > 0 {
				b.WriteByte(0)
			}
			b.WriteString(keyOf(r[c]))
		}
		return b.String()
	}
}

func keyOf(v Value) string {
	return v.String()
}

// HashJoin joins Build (right) into Probe (left) streams on equal keys.
// The right side is materialized into a hash table on Open.
type HashJoin struct {
	Left, Right       Operator
	LeftKey, RightKey KeyFunc
	Type              JoinType
	// Extra optionally filters joined pairs (non-equi residual predicate);
	// it sees the concatenated row for Inner/LeftOuter and the pair for
	// Semi/Anti.
	Extra func(l, r Row) bool

	ht      map[string][]Row
	pending []Row
	outCols Schema
}

// Schema returns left+right columns for Inner/LeftOuter, left columns for
// Semi/Anti.
func (j *HashJoin) Schema() Schema {
	if j.outCols != nil {
		return j.outCols
	}
	switch j.Type {
	case Semi, Anti:
		j.outCols = j.Left.Schema()
	default:
		ls, rs := j.Left.Schema(), j.Right.Schema()
		out := make(Schema, 0, len(ls)+len(rs))
		out = append(out, ls...)
		out = append(out, rs...)
		j.outCols = out
	}
	return j.outCols
}

// Open materializes the right side into the hash table.
func (j *HashJoin) Open() {
	j.Right.Open()
	j.ht = make(map[string][]Row)
	for {
		r, ok := j.Right.Next()
		if !ok {
			break
		}
		k := j.RightKey(r)
		j.ht[k] = append(j.ht[k], r)
	}
	j.Right.Close()
	j.Left.Open()
	j.pending = nil
}

// Next produces the next joined row.
func (j *HashJoin) Next() (Row, bool) {
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			return r, true
		}
		l, ok := j.Left.Next()
		if !ok {
			return nil, false
		}
		matches := j.ht[j.LeftKey(l)]
		switch j.Type {
		case Semi:
			if j.anyMatch(l, matches) {
				return l, true
			}
		case Anti:
			if !j.anyMatch(l, matches) {
				return l, true
			}
		case Inner:
			for _, m := range matches {
				if j.Extra == nil || j.Extra(l, m) {
					j.pending = append(j.pending, concatRows(l, m))
				}
			}
		case LeftOuter:
			found := false
			for _, m := range matches {
				if j.Extra == nil || j.Extra(l, m) {
					j.pending = append(j.pending, concatRows(l, m))
					found = true
				}
			}
			if !found {
				nulls := make(Row, len(j.Right.Schema()))
				for i := range nulls {
					nulls[i] = entity.Null()
				}
				j.pending = append(j.pending, concatRows(l, nulls))
			}
		}
	}
}

func (j *HashJoin) anyMatch(l Row, matches []Row) bool {
	for _, m := range matches {
		if j.Extra == nil || j.Extra(l, m) {
			return true
		}
	}
	return false
}

func concatRows(l, r Row) Row {
	out := make(Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// Close closes the left input and releases the hash table.
func (j *HashJoin) Close() {
	j.Left.Close()
	j.ht = nil
	j.pending = nil
}
