package entity

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Marshal encodes the entity into a compact binary record:
//
//	uvarint fieldCount
//	per field: uvarint attrId, byte kind, payload
//
// Integer and float payloads are fixed 8 bytes; strings are uvarint length
// plus bytes. The encoding is deterministic (fields are sorted by id).
func (e *Entity) Marshal(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.fields)))
	for _, f := range e.fields {
		dst = binary.AppendUvarint(dst, uint64(f.Attr))
		dst = append(dst, byte(f.Value.kind))
		switch f.Value.kind {
		case KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Value.i))
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Value.f))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(f.Value.s)))
			dst = append(dst, f.Value.s...)
		}
	}
	return dst
}

// MarshalRemap encodes the entity like Marshal but maps every attribute
// id through remap first. remap must be injective over the entity's
// attributes and must report ok for all of them; a false return aborts
// with an error naming the offending id. The output field order follows
// the entity's (pre-remap) order, which may not be ascending in the
// remapped id space — Unmarshal and UnmarshalInto restore the sorted
// invariant on decode. The wire layer uses this to translate records
// from a shard-local dictionary into the wire dictionary without
// mutating entities that may be shared with concurrent readers.
func (e *Entity) MarshalRemap(dst []byte, remap func(int) (int, bool)) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(e.fields)))
	for _, f := range e.fields {
		id, ok := remap(f.Attr)
		if !ok {
			return nil, fmt.Errorf("entity: no remapping for attribute id %d", f.Attr)
		}
		dst = binary.AppendUvarint(dst, uint64(id))
		dst = append(dst, byte(f.Value.kind))
		switch f.Value.kind {
		case KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Value.i))
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Value.f))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(f.Value.s)))
			dst = append(dst, f.Value.s...)
		}
	}
	return dst, nil
}

// Remap rewrites every attribute id in place through remap and restores
// the sorted-fields invariant. remap must be injective; a false return
// aborts with an error and leaves the entity in an unspecified state
// (callers discard it on error). The cached synopsis is invalidated; the
// byte size is unchanged (ids do not contribute to SIZE()). The sort is
// an insertion sort: remappings between dense dictionaries are
// near-order-preserving, so the common case is a single linear pass and
// no allocation — this keeps the binary ingest path at zero allocations
// per op.
func (e *Entity) Remap(remap func(int) (int, bool)) error {
	for i := range e.fields {
		id, ok := remap(e.fields[i].Attr)
		if !ok {
			return fmt.Errorf("entity: no remapping for attribute id %d", e.fields[i].Attr)
		}
		e.fields[i].Attr = id
	}
	for i := 1; i < len(e.fields); i++ {
		for j := i; j > 0 && e.fields[j-1].Attr > e.fields[j].Attr; j-- {
			e.fields[j-1], e.fields[j] = e.fields[j], e.fields[j-1]
		}
	}
	e.syn = nil
	return nil
}

// Unmarshal decodes a record produced by Marshal. It returns the decoded
// entity and the number of bytes consumed.
func Unmarshal(src []byte) (*Entity, int, error) {
	e := &Entity{}
	n, err := UnmarshalInto(e, src)
	if err != nil {
		return nil, 0, err
	}
	return e, n, nil
}

// UnmarshalInto decodes a record produced by Marshal into dst, reusing
// dst's field storage. It returns the number of bytes consumed. On error
// dst is left in an unspecified state. In steady state (dst's field
// slice has grown to the workload's arity) a decode of numeric fields
// allocates nothing; each string value costs exactly one allocation —
// the copy out of the caller's (typically pooled and reused) buffer.
func UnmarshalInto(dst *Entity, src []byte) (int, error) {
	dst.fields = dst.fields[:0]
	dst.syn = nil
	dst.size = 0
	n, off := binary.Uvarint(src)
	if off <= 0 {
		return 0, fmt.Errorf("entity: corrupt record header")
	}
	// A field occupies at least 3 bytes (attr id, kind, empty-string
	// length), so any larger count is corrupt; checking up front bounds
	// the allocation below against hostile headers.
	if n > uint64(len(src)-off)/3 {
		return 0, fmt.Errorf("entity: field count %d exceeds record size", n)
	}
	// The header names the exact arity: size the field slice once instead
	// of letting append grow it a word at a time (scan decodes are the
	// hottest allocation site in the system).
	if uint64(cap(dst.fields)) < n {
		dst.fields = make([]Field, 0, n)
	}
	const maxAttr = 1 << 31 // dictionary ids are small and dense
	for i := uint64(0); i < n; i++ {
		attr, k := binary.Uvarint(src[off:])
		if k <= 0 {
			return 0, fmt.Errorf("entity: corrupt attribute id at offset %d", off)
		}
		if attr > maxAttr {
			return 0, fmt.Errorf("entity: implausible attribute id %d", attr)
		}
		off += k
		if off >= len(src) {
			return 0, fmt.Errorf("entity: truncated record")
		}
		kind := ValueKind(src[off])
		off++
		var v Value
		switch kind {
		case KindInt:
			if off+8 > len(src) {
				return 0, fmt.Errorf("entity: truncated int value")
			}
			v = Int(int64(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case KindFloat:
			if off+8 > len(src) {
				return 0, fmt.Errorf("entity: truncated float value")
			}
			v = Float(math.Float64frombits(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case KindString:
			l, k := binary.Uvarint(src[off:])
			if k <= 0 {
				return 0, fmt.Errorf("entity: corrupt string length at offset %d", off)
			}
			off += k
			// Compare in uint64 space: a hostile length must not be
			// truncated to a negative int before the bounds check.
			if l > uint64(len(src)-off) {
				return 0, fmt.Errorf("entity: truncated string value")
			}
			v = Str(string(src[off : off+int(l)]))
			off += int(l)
		default:
			return 0, fmt.Errorf("entity: unknown value kind %d", kind)
		}
		// Records are written sorted, so appending keeps the invariant;
		// fall back to Set if an out-of-order record sneaks in.
		if m := len(dst.fields); m > 0 && dst.fields[m-1].Attr >= int(attr) {
			dst.Set(int(attr), v)
			continue
		}
		dst.fields = append(dst.fields, Field{Attr: int(attr), Value: v})
		dst.size += fieldOverhead + v.Size()
	}
	return off, nil
}
