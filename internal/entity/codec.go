package entity

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Marshal encodes the entity into a compact binary record:
//
//	uvarint fieldCount
//	per field: uvarint attrId, byte kind, payload
//
// Integer and float payloads are fixed 8 bytes; strings are uvarint length
// plus bytes. The encoding is deterministic (fields are sorted by id).
func (e *Entity) Marshal(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.fields)))
	for _, f := range e.fields {
		dst = binary.AppendUvarint(dst, uint64(f.Attr))
		dst = append(dst, byte(f.Value.kind))
		switch f.Value.kind {
		case KindInt:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Value.i))
		case KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Value.f))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(f.Value.s)))
			dst = append(dst, f.Value.s...)
		}
	}
	return dst
}

// Unmarshal decodes a record produced by Marshal. It returns the decoded
// entity and the number of bytes consumed.
func Unmarshal(src []byte) (*Entity, int, error) {
	n, off := binary.Uvarint(src)
	if off <= 0 {
		return nil, 0, fmt.Errorf("entity: corrupt record header")
	}
	// A field occupies at least 3 bytes (attr id, kind, empty-string
	// length), so any larger count is corrupt; checking up front bounds
	// the allocation below against hostile headers.
	if n > uint64(len(src)-off)/3 {
		return nil, 0, fmt.Errorf("entity: field count %d exceeds record size", n)
	}
	e := &Entity{fields: make([]Field, 0, n)}
	const maxAttr = 1 << 31 // dictionary ids are small and dense
	for i := uint64(0); i < n; i++ {
		attr, k := binary.Uvarint(src[off:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("entity: corrupt attribute id at offset %d", off)
		}
		if attr > maxAttr {
			return nil, 0, fmt.Errorf("entity: implausible attribute id %d", attr)
		}
		off += k
		if off >= len(src) {
			return nil, 0, fmt.Errorf("entity: truncated record")
		}
		kind := ValueKind(src[off])
		off++
		var v Value
		switch kind {
		case KindInt:
			if off+8 > len(src) {
				return nil, 0, fmt.Errorf("entity: truncated int value")
			}
			v = Int(int64(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case KindFloat:
			if off+8 > len(src) {
				return nil, 0, fmt.Errorf("entity: truncated float value")
			}
			v = Float(math.Float64frombits(binary.LittleEndian.Uint64(src[off:])))
			off += 8
		case KindString:
			l, k := binary.Uvarint(src[off:])
			if k <= 0 {
				return nil, 0, fmt.Errorf("entity: corrupt string length at offset %d", off)
			}
			off += k
			// Compare in uint64 space: a hostile length must not be
			// truncated to a negative int before the bounds check.
			if l > uint64(len(src)-off) {
				return nil, 0, fmt.Errorf("entity: truncated string value")
			}
			v = Str(string(src[off : off+int(l)]))
			off += int(l)
		default:
			return nil, 0, fmt.Errorf("entity: unknown value kind %d", kind)
		}
		// Records are written sorted, so appending keeps the invariant;
		// fall back to Set if an out-of-order record sneaks in.
		if m := len(e.fields); m > 0 && e.fields[m-1].Attr >= int(attr) {
			e.Set(int(attr), v)
			continue
		}
		e.fields = append(e.fields, Field{Attr: int(attr), Value: v})
		e.size += fieldOverhead + v.Size()
	}
	return e, off, nil
}
