// Package entity models the irregularly structured records that live in a
// universal table: sparse sets of attribute→value pairs over a shared,
// growing attribute dictionary.
//
// The attribute dictionary maps attribute names to small dense integer ids
// so that entity and partition synopses can be represented as bitsets
// (package synopsis) and values as sparse id→value lists.
package entity

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"cinderella/internal/synopsis"
)

// Dictionary assigns stable dense ids to attribute names. It is safe for
// concurrent use. The zero value is not usable; call NewDictionary.
type Dictionary struct {
	mu    sync.RWMutex
	ids   map[string]int
	names []string
}

// NewDictionary returns an empty attribute dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]int)}
}

// ID returns the id for name, assigning a fresh one if the name is new.
func (d *Dictionary) ID(name string) int {
	d.mu.RLock()
	id, ok := d.ids[name]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[name]; ok {
		return id
	}
	id = len(d.names)
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the id for name without assigning, and whether it exists.
func (d *Dictionary) Lookup(name string) (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the attribute name for id. It panics on unknown ids.
func (d *Dictionary) Name(id int) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.names) {
		panic(fmt.Sprintf("entity: unknown attribute id %d", id))
	}
	return d.names[id]
}

// Len returns the number of known attributes.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// Names returns a copy of all attribute names, indexed by id.
func (d *Dictionary) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// Value is a single attribute value. Universal tables hold wildly mixed
// content, so values are dynamically typed over a small closed set.
type Value struct {
	kind ValueKind
	i    int64
	f    float64
	s    string
}

// ValueKind enumerates the supported value types.
type ValueKind uint8

// Supported value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
)

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Kind returns the value's kind.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer content; valid only for KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float content; for KindInt it converts.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string content; valid only for KindString.
func (v Value) AsString() string { return v.s }

// Size returns the value's storage footprint in bytes, as charged by the
// storage layer and the SIZE() function of the paper.
func (v Value) Size() int64 {
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 8
	case KindString:
		return int64(len(v.s))
	}
	return 0
}

// String renders the value for debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	case KindString:
		return fmt.Sprintf("%q", v.s)
	}
	return "?"
}

// Equal reports whether two values have the same kind and content.
// Floats compare by bit pattern so that NaN values round-trip through
// storage as equal to themselves.
func (v Value) Equal(w Value) bool {
	if v.kind == KindFloat && w.kind == KindFloat {
		return math.Float64bits(v.f) == math.Float64bits(w.f)
	}
	return v == w
}

// Field is one attribute→value pair of an entity.
type Field struct {
	Attr  int // attribute id from the Dictionary
	Value Value
}

// Entity is a sparse record: the set of attributes it instantiates plus
// their values. Fields are kept sorted by attribute id. An Entity's
// synopsis is the bitset of its attribute ids.
type Entity struct {
	fields []Field
	syn    *synopsis.Set
	size   int64 // cached byte size: per-field overhead + value bytes
}

// fieldOverhead is the bookkeeping cost charged per stored field (attribute
// id + length/kind headers), mirroring a slotted-page cell header.
const fieldOverhead = 8

// New builds an entity from fields. Duplicate attributes keep the last
// value. The input slice is not retained.
func New(fields []Field) *Entity {
	e := &Entity{}
	for _, f := range fields {
		e.Set(f.Attr, f.Value)
	}
	return e
}

// Set inserts or replaces the value for attr. Setting a null value is
// equivalent to Unset.
func (e *Entity) Set(attr int, v Value) {
	if v.IsNull() {
		e.Unset(attr)
		return
	}
	i := sort.Search(len(e.fields), func(i int) bool { return e.fields[i].Attr >= attr })
	if i < len(e.fields) && e.fields[i].Attr == attr {
		e.size += v.Size() - e.fields[i].Value.Size()
		e.fields[i].Value = v
		return
	}
	e.fields = append(e.fields, Field{})
	copy(e.fields[i+1:], e.fields[i:])
	e.fields[i] = Field{Attr: attr, Value: v}
	e.size += fieldOverhead + v.Size()
	e.syn = nil
}

// Unset removes attr from the entity if present.
func (e *Entity) Unset(attr int) {
	i := sort.Search(len(e.fields), func(i int) bool { return e.fields[i].Attr >= attr })
	if i >= len(e.fields) || e.fields[i].Attr != attr {
		return
	}
	e.size -= fieldOverhead + e.fields[i].Value.Size()
	e.fields = append(e.fields[:i], e.fields[i+1:]...)
	e.syn = nil
}

// Get returns the value for attr and whether the attribute is set.
func (e *Entity) Get(attr int) (Value, bool) {
	i := sort.Search(len(e.fields), func(i int) bool { return e.fields[i].Attr >= attr })
	if i < len(e.fields) && e.fields[i].Attr == attr {
		return e.fields[i].Value, true
	}
	return Null(), false
}

// Has reports whether the entity instantiates attr.
func (e *Entity) Has(attr int) bool {
	_, ok := e.Get(attr)
	return ok
}

// Fields returns the entity's fields sorted by attribute id. The returned
// slice is owned by the entity and must not be modified.
func (e *Entity) Fields() []Field { return e.fields }

// NumAttrs returns the number of instantiated attributes.
func (e *Entity) NumAttrs() int { return len(e.fields) }

// Size returns the entity's byte footprint: SIZE(e) in the paper.
func (e *Entity) Size() int64 { return e.size }

// Synopsis returns the entity's attribute bitset. The result is cached and
// must not be modified by callers.
func (e *Entity) Synopsis() *synopsis.Set {
	if e.syn == nil {
		max := 0
		if n := len(e.fields); n > 0 {
			max = e.fields[n-1].Attr + 1
		}
		s := synopsis.New(max)
		for _, f := range e.fields {
			s.Add(f.Attr)
		}
		e.syn = s
	}
	return e.syn
}

// Clone returns a deep copy of the entity.
func (e *Entity) Clone() *Entity {
	c := &Entity{size: e.size}
	c.fields = make([]Field, len(e.fields))
	copy(c.fields, e.fields)
	return c
}

// Equal reports whether two entities have identical fields.
func (e *Entity) Equal(o *Entity) bool {
	if len(e.fields) != len(o.fields) {
		return false
	}
	for i, f := range e.fields {
		if o.fields[i].Attr != f.Attr || !o.fields[i].Value.Equal(f.Value) {
			return false
		}
	}
	return true
}

// String renders the entity using raw attribute ids.
func (e *Entity) String() string {
	s := "["
	for i, f := range e.fields {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d=%s", f.Attr, f.Value)
	}
	return s + "]"
}

// Builder helps construct entities by attribute name against a Dictionary.
type Builder struct {
	dict *Dictionary
	e    *Entity
}

// NewBuilder returns a builder that resolves names through dict.
func NewBuilder(dict *Dictionary) *Builder {
	return &Builder{dict: dict, e: &Entity{}}
}

// Set assigns a value to the named attribute and returns the builder.
func (b *Builder) Set(name string, v Value) *Builder {
	b.e.Set(b.dict.ID(name), v)
	return b
}

// Build returns the entity and resets the builder for reuse.
func (b *Builder) Build() *Entity {
	e := b.e
	b.e = &Entity{}
	return e
}
