package entity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cinderella/internal/synopsis"
)

func TestDictionaryAssignsDenseIDs(t *testing.T) {
	d := NewDictionary()
	a := d.ID("name")
	b := d.ID("weight")
	c := d.ID("name") // repeat
	if a != 0 || b != 1 || c != 0 {
		t.Fatalf("ids = %d,%d,%d; want 0,1,0", a, b, c)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Name(1) != "weight" {
		t.Fatalf("Name(1) = %q", d.Name(1))
	}
	if id, ok := d.Lookup("weight"); !ok || id != 1 {
		t.Fatalf("Lookup(weight) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) should fail")
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "name" {
		t.Fatalf("Names = %v", names)
	}
}

func TestDictionaryNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name(5) did not panic")
		}
	}()
	NewDictionary().Name(5)
}

func TestDictionaryConcurrent(t *testing.T) {
	d := NewDictionary()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				d.ID("attr" + string(rune('a'+i%26)))
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if d.Len() != 26 {
		t.Fatalf("Len = %d, want 26", d.Len())
	}
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind ValueKind
		size int64
	}{
		{Null(), KindNull, 0},
		{Int(42), KindInt, 8},
		{Float(2.5), KindFloat, 8},
		{Str("abc"), KindString, 3},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v Kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.Size() != c.size {
			t.Errorf("%v Size = %d, want %d", c.v, c.v.Size(), c.size)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull wrong")
	}
	if Int(7).AsInt() != 7 || Int(7).AsFloat() != 7.0 {
		t.Error("Int accessors wrong")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("Float accessor wrong")
	}
	if Str("x").AsString() != "x" {
		t.Error("Str accessor wrong")
	}
}

func TestEntitySetGetUnset(t *testing.T) {
	e := &Entity{}
	e.Set(3, Int(30))
	e.Set(1, Str("one"))
	e.Set(2, Float(2.0))
	if e.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d, want 3", e.NumAttrs())
	}
	// Fields sorted by attr id.
	fs := e.Fields()
	for i := 1; i < len(fs); i++ {
		if fs[i-1].Attr >= fs[i].Attr {
			t.Fatalf("fields not sorted: %v", fs)
		}
	}
	if v, ok := e.Get(2); !ok || v.AsFloat() != 2.0 {
		t.Fatalf("Get(2) = %v,%v", v, ok)
	}
	if _, ok := e.Get(5); ok {
		t.Fatal("Get(5) should miss")
	}
	if !e.Has(1) || e.Has(9) {
		t.Fatal("Has wrong")
	}
	e.Unset(2)
	if e.Has(2) || e.NumAttrs() != 2 {
		t.Fatal("Unset failed")
	}
	e.Unset(2) // no-op
	// Replace keeps count, updates size.
	before := e.Size()
	e.Set(1, Str("longer string"))
	if e.NumAttrs() != 2 {
		t.Fatal("replace changed attr count")
	}
	if e.Size() != before-3+13 {
		t.Fatalf("Size after replace = %d", e.Size())
	}
}

func TestEntitySetNullIsUnset(t *testing.T) {
	e := &Entity{}
	e.Set(1, Int(1))
	e.Set(1, Null())
	if e.Has(1) || e.NumAttrs() != 0 || e.Size() != 0 {
		t.Fatal("Set(Null) should unset")
	}
}

func TestEntitySizeAccounting(t *testing.T) {
	e := &Entity{}
	if e.Size() != 0 {
		t.Fatal("empty entity has nonzero size")
	}
	e.Set(0, Int(1))       // 8 overhead + 8
	e.Set(1, Str("abcde")) // 8 + 5
	if e.Size() != 8+8+8+5 {
		t.Fatalf("Size = %d, want 29", e.Size())
	}
	e.Unset(0)
	if e.Size() != 8+5 {
		t.Fatalf("Size = %d, want 13", e.Size())
	}
}

func TestEntitySynopsis(t *testing.T) {
	e := New([]Field{{Attr: 2, Value: Int(1)}, {Attr: 7, Value: Int(2)}})
	s := e.Synopsis()
	if !s.Equal(synopsis.Of(2, 7)) {
		t.Fatalf("Synopsis = %v", s)
	}
	// Cache invalidated on mutation.
	e.Set(9, Int(3))
	if !e.Synopsis().Equal(synopsis.Of(2, 7, 9)) {
		t.Fatalf("Synopsis after Set = %v", e.Synopsis())
	}
	e.Unset(2)
	if !e.Synopsis().Equal(synopsis.Of(7, 9)) {
		t.Fatalf("Synopsis after Unset = %v", e.Synopsis())
	}
}

func TestEntityCloneEqual(t *testing.T) {
	e := New([]Field{{Attr: 1, Value: Str("a")}, {Attr: 2, Value: Int(2)}})
	c := e.Clone()
	if !e.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(3, Int(3))
	if e.Equal(c) || e.Has(3) {
		t.Fatal("clone not independent")
	}
	d := New([]Field{{Attr: 1, Value: Str("b")}, {Attr: 2, Value: Int(2)}})
	if e.Equal(d) {
		t.Fatal("entities with different values reported equal")
	}
}

func TestNewDuplicateAttrsKeepsLast(t *testing.T) {
	e := New([]Field{{Attr: 1, Value: Int(1)}, {Attr: 1, Value: Int(2)}})
	if v, _ := e.Get(1); v.AsInt() != 2 {
		t.Fatalf("Get(1) = %v, want 2", v)
	}
	if e.NumAttrs() != 1 {
		t.Fatalf("NumAttrs = %d, want 1", e.NumAttrs())
	}
}

func TestBuilder(t *testing.T) {
	d := NewDictionary()
	b := NewBuilder(d)
	e1 := b.Set("name", Str("Canon")).Set("weight", Int(198)).Build()
	e2 := b.Set("name", Str("Sony")).Build()
	if e1.NumAttrs() != 2 || e2.NumAttrs() != 1 {
		t.Fatalf("builder reuse broken: %d, %d", e1.NumAttrs(), e2.NumAttrs())
	}
	id, _ := d.Lookup("name")
	if v, ok := e2.Get(id); !ok || v.AsString() != "Sony" {
		t.Fatalf("e2 name = %v,%v", v, ok)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	e := New([]Field{
		{Attr: 0, Value: Int(-5)},
		{Attr: 3, Value: Float(3.25)},
		{Attr: 1000, Value: Str("hello world")},
	})
	buf := e.Marshal(nil)
	got, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !got.Equal(e) {
		t.Fatalf("round trip: got %v want %v", got, e)
	}
	if got.Size() != e.Size() {
		t.Fatalf("size after round trip: %d vs %d", got.Size(), e.Size())
	}
}

func TestMarshalEmptyEntity(t *testing.T) {
	e := &Entity{}
	buf := e.Marshal(nil)
	got, _, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAttrs() != 0 {
		t.Fatal("empty entity round trip failed")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                            // empty
		{0x02},                        // promises 2 fields, has none
		{0x01, 0x00},                  // field without kind byte
		{0x01, 0x00, 0x01},            // int value truncated
		{0x01, 0x00, 0x09},            // unknown kind
		{0x01, 0x00, 0x03, 0x05, 'a'}, // string truncated
	}
	for i, c := range cases {
		if _, _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestPropMarshalRoundTrip(t *testing.T) {
	f := func(attrs []uint16, ints []int64, strs []string) bool {
		e := &Entity{}
		for i, a := range attrs {
			switch i % 3 {
			case 0:
				if len(ints) > 0 {
					e.Set(int(a), Int(ints[i%len(ints)]))
				}
			case 1:
				if len(strs) > 0 {
					e.Set(int(a), Str(strs[i%len(strs)]))
				}
			case 2:
				e.Set(int(a), Float(float64(a)/3))
			}
		}
		got, n, err := Unmarshal(e.Marshal(nil))
		return err == nil && n == len(e.Marshal(nil)) && got.Equal(e) && got.Size() == e.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSizeMatchesFields(t *testing.T) {
	f := func(attrs []uint16, strs []string) bool {
		e := &Entity{}
		for i, a := range attrs {
			if len(strs) > 0 && i%2 == 0 {
				e.Set(int(a), Str(strs[i%len(strs)]))
			} else {
				e.Set(int(a), Int(int64(i)))
			}
		}
		var want int64
		for _, fd := range e.Fields() {
			want += 8 + fd.Value.Size()
		}
		return e.Size() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEntitySet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		e := &Entity{}
		for j := 0; j < 15; j++ {
			e.Set(rng.Intn(100), Int(int64(j)))
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	e := &Entity{}
	for j := 0; j < 15; j++ {
		e.Set(j*7, Str("some value text"))
	}
	buf := make([]byte, 0, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.Marshal(buf[:0])
	}
}
