package entity

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the record decoder against arbitrary bytes: it
// must either reject the input or produce an entity that re-marshals
// canonically (decode∘encode is a fixpoint).
func FuzzUnmarshal(f *testing.F) {
	// Seed with valid records of each kind plus corrupt fragments.
	e := New([]Field{
		{Attr: 0, Value: Int(-5)},
		{Attr: 3, Value: Float(3.25)},
		{Attr: 70, Value: Str("hello")},
	})
	f.Add(e.Marshal(nil))
	f.Add((&Entity{}).Marshal(nil))
	f.Add([]byte{0x01, 0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Round trip must be canonical from here on.
		enc := got.Marshal(nil)
		again, m, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m != len(enc) || !again.Equal(got) {
			t.Fatalf("decode/encode not a fixpoint")
		}
		if !bytes.Equal(enc, again.Marshal(nil)) {
			t.Fatalf("encoding not canonical")
		}
	})
}
