package experiments

import (
	"io"
	"sort"

	"cinderella/internal/core"
	"cinderella/internal/storage"
	"cinderella/internal/table"
)

// CacheRow reports buffer-cache behaviour for one partitioning under the
// selective workload.
type CacheRow struct {
	Strategy   string
	Partitions int
	HitRatio   float64
	Hits       int64
	Misses     int64
}

// CacheResult is the locality experiment (paper future work: "caching").
type CacheResult struct {
	CachePages int
	TablePages int
	Rows       []CacheRow
}

// CacheLocality measures buffer-cache hit ratios for a repeated selective
// workload with a cache smaller than the table. A Cinderella
// partitioning re-touches the same few partitions per query, so their
// pages stay resident; the universal table scans everything every time
// and, once the table exceeds the cache, thrashes (sequential flooding).
func CacheLocality(o Options) CacheResult {
	o = o.withDefaults()
	ds := dataset(o)

	// Use the three most selective queries of the workload (the queries
	// Cinderella is built for), repeated like a live dashboard: their
	// combined working set fits a cache that the full table does not.
	queries := buildWorkload(ds, o)
	sort.Slice(queries, func(i, j int) bool {
		return queries[i].Selectivity < queries[j].Selectivity
	})
	selective := queries
	if len(selective) > 3 {
		selective = selective[:3]
	}

	run := func(label string, mk func() core.Assigner, cachePages int) (CacheRow, int) {
		cache := storage.NewBufferCache(cachePages)
		tbl := table.New(table.Config{
			Dict:        ds.Dict,
			Partitioner: mk(),
			Cache:       cache,
		})
		for _, e := range ds.Entities {
			tbl.Insert(e.Clone())
		}
		pages := 0
		for _, pv := range tbl.Partitions() {
			pages += pv.Pages
		}
		cache.Reset() // measure steady-state queries, not the load
		for round := 0; round < 5; round++ {
			for _, q := range selective {
				tbl.SelectSynopsis(q.Attrs)
			}
		}
		h, m := cache.Stats()
		return CacheRow{
			Strategy:   label,
			Partitions: tbl.NumPartitions(),
			HitRatio:   cache.HitRatio(),
			Hits:       h,
			Misses:     m,
		}, pages
	}

	// Size the cache to half the universal table: selective working sets
	// fit, full scans do not.
	probe := table.New(table.Config{Dict: ds.Dict, Partitioner: core.NewSingle(core.SizeCount)})
	for _, e := range ds.Entities {
		probe.Insert(e.Clone())
	}
	tablePages := 0
	for _, pv := range probe.Partitions() {
		tablePages += pv.Pages
	}
	cachePages := tablePages / 2
	if cachePages < 2 {
		cachePages = 2
	}

	res := CacheResult{CachePages: cachePages, TablePages: tablePages}
	for _, cfg := range []namedAssigner{
		{"universal", func() core.Assigner { return core.NewSingle(core.SizeCount) }},
		{"cinderella w=0.2", func() core.Assigner { return cind(0.2, 5000) }},
		{"cinderella w=0.5", func() core.Assigner { return cind(0.5, 5000) }},
	} {
		row, _ := run(cfg.label, cfg.mk, cachePages)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print renders the locality comparison.
func (r CacheResult) Print(w io.Writer) {
	fprintf(w, "Buffer-cache locality (cache %d pages, table %d pages; 5 rounds of selective queries)\n",
		r.CachePages, r.TablePages)
	fprintf(w, "  %-18s %12s %10s %12s %12s\n", "strategy", "partitions", "hit ratio", "hits", "misses")
	for _, row := range r.Rows {
		fprintf(w, "  %-18s %12d %9.1f%% %12d %12d\n",
			row.Strategy, row.Partitions, 100*row.HitRatio, row.Hits, row.Misses)
	}
}

// Get returns the hit ratio of a strategy by label (tests).
func (r CacheResult) Get(label string) float64 {
	for _, row := range r.Rows {
		if row.Strategy == label {
			return row.HitRatio
		}
	}
	return -1
}
