package experiments

import (
	"io"
	"math/rand"

	"cinderella/internal/core"
	"cinderella/internal/datagen"
	"cinderella/internal/metrics"
	"cinderella/internal/table"
	"cinderella/internal/workload"
)

// ChurnPoint is the partitioning state after one churn round.
type ChurnPoint struct {
	Round      int
	Entities   int
	Partitions int
	Efficiency float64
}

// ChurnSeries is one maintenance policy's trajectory.
type ChurnSeries struct {
	Label  string
	Points []ChurnPoint
}

// ChurnResult compares maintenance policies under sustained
// modification churn.
type ChurnResult struct {
	Rows []ChurnSeries
}

// Churn exercises the full modification mix of the Online Partitioning
// Problem (Definition 2): after the initial load, each round deletes a
// fraction of entities, updates another fraction (entities change their
// attribute sets, e.g. records gaining fields over time), and inserts
// replacements. The EFFICIENCY of the partitioning is measured after
// every round — the paper's objective is precisely to keep this high
// while the table is modified. One series runs plain Cinderella; the
// second additionally compacts underfilled partitions each round.
func Churn(o Options) ChurnResult {
	o = o.withDefaults()

	run := func(label string, compact bool) ChurnSeries {
		ds := dataset(o)
		queries := buildWorkload(ds, o)
		qsyns := workload.Synopses(queries)

		tbl := table.New(table.Config{
			Dict:        ds.Dict,
			Partitioner: cind(0.2, 5000),
		})
		rng := rand.New(rand.NewSource(o.Seed + 7))
		var live []core.EntityID
		for _, e := range ds.Entities {
			live = append(live, tbl.Insert(e.Clone()))
		}
		// Fresh entities for replacement inserts and updates come from a
		// second generated batch with the same distribution.
		extra, err := datagen.Generate(datagen.Config{
			NumEntities: o.Entities, NumAttrs: 100, Seed: o.Seed + 100,
		})
		if err != nil {
			panic(err)
		}
		nextExtra := 0
		fresh := func() *datagen.Dataset { return extra }

		s := ChurnSeries{Label: label}
		measure := func(round int) {
			ents := make([]metrics.Sized, 0, tbl.Len())
			for _, syn := range tbl.EntitySynopses() {
				ents = append(ents, metrics.Sized{Syn: syn, Size: 1})
			}
			parts := make([]metrics.Sized, 0, tbl.NumPartitions())
			for _, pv := range tbl.Partitions() {
				parts = append(parts, metrics.Sized{Syn: pv.Synopsis, Size: int64(pv.Entities)})
			}
			s.Points = append(s.Points, ChurnPoint{
				Round:      round,
				Entities:   tbl.Len(),
				Partitions: tbl.NumPartitions(),
				Efficiency: metrics.Efficiency(ents, parts, qsyns),
			})
		}
		measure(0)

		const rounds = 5
		for round := 1; round <= rounds; round++ {
			// Delete 20 % of live entities.
			rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
			del := len(live) / 5
			for _, id := range live[:del] {
				tbl.Delete(id)
			}
			live = live[del:]
			// Update 10 %: replace their content with a fresh profile.
			upd := len(live) / 10
			for _, id := range live[:upd] {
				e := fresh().Entities[nextExtra%len(extra.Entities)].Clone()
				nextExtra++
				tbl.Update(id, e)
			}
			// Insert replacements back to the original cardinality.
			for tbl.Len() < o.Entities {
				e := fresh().Entities[nextExtra%len(extra.Entities)].Clone()
				nextExtra++
				live = append(live, tbl.Insert(e))
			}
			if compact {
				tbl.Compact(0.1)
			}
			measure(round)
		}
		return s
	}

	return ChurnResult{Rows: []ChurnSeries{
		run("cinderella", false),
		run("cinderella+compact", true),
	}}
}

// Print renders the churn trajectories.
func (r ChurnResult) Print(w io.Writer) {
	fprintf(w, "Partitioning quality under modification churn (delete 20%% / update 10%% / reinsert, per round)\n")
	for _, s := range r.Rows {
		fprintf(w, "series %s\n", s.Label)
		fprintf(w, "  %-6s %10s %12s %12s\n", "round", "entities", "partitions", "efficiency")
		for _, p := range s.Points {
			fprintf(w, "  %-6d %10d %12d %12.4f\n", p.Round, p.Entities, p.Partitions, p.Efficiency)
		}
	}
}

// Final returns the last-round point of a series (tests).
func (r ChurnResult) Final(label string) (ChurnPoint, bool) {
	for _, s := range r.Rows {
		if s.Label == label && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1], true
		}
	}
	return ChurnPoint{}, false
}
