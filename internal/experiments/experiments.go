// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V). Each experiment returns a typed result with a
// Print method producing the rows/series the paper reports; cmd/
// cinderella-bench and the top-level benchmarks drive them.
//
// Experiment index (see DESIGN.md):
//
//	Fig4   — attribute distribution of the (synthetic) DBpedia data set
//	Fig5   — query time vs. selectivity for B ∈ {500, 5000, 50000}
//	Fig6   — query time vs. selectivity for w ∈ {0.2, 0.5, 0.8}
//	Fig7   — influence of w on the partitioning (4 subplots)
//	Fig8   — insert time distribution and split counts per B
//	TableI — TPC-H: 22 queries on regular tables vs. Cinderella views
//	Efficiency — Definition 1 across partitioning strategies
package experiments

import (
	"fmt"
	"io"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/datagen"
	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
	"cinderella/internal/workload"
)

// Options scales the experiments. The zero value reproduces the paper's
// dimensions (100 000 entities); tests use smaller values.
type Options struct {
	Entities int   // DBpedia-like entity count; default 100000
	Seed     int64 // PRNG seed; default 1
	TPCHSF   float64
	// QueryBuckets × QueriesPerBucket representative queries.
	QueryBuckets     int
	QueriesPerBucket int
	// Obs, when non-nil, is the telemetry registry experiments feed (the
	// hotpath snapshot replay uses it; cmd/cinderella-bench passes the
	// registry behind its -obs endpoint). Experiments that compare
	// instrumented against uninstrumented runs manage their own.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Entities == 0 {
		o.Entities = 100000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TPCHSF == 0 {
		o.TPCHSF = 0.01
	}
	if o.QueryBuckets == 0 {
		o.QueryBuckets = 10
	}
	if o.QueriesPerBucket == 0 {
		o.QueriesPerBucket = 3
	}
	return o
}

// dataset builds the shuffled DBpedia-like data set for o.
func dataset(o Options) *datagen.Dataset {
	ds, err := datagen.Generate(datagen.Config{NumEntities: o.Entities, Seed: o.Seed})
	if err != nil {
		panic(err)
	}
	ds.Shuffle(o.Seed + 1)
	return ds
}

// loadTable inserts the data set into a fresh universal table using the
// given partitioner and returns it together with per-insert durations.
func loadTable(ds *datagen.Dataset, p core.Assigner, timings bool) (*table.Table, []time.Duration) {
	tbl := table.New(table.Config{Dict: ds.Dict, Partitioner: p})
	var durs []time.Duration
	if timings {
		durs = make([]time.Duration, 0, len(ds.Entities))
	}
	for _, e := range ds.Entities {
		if timings {
			start := time.Now()
			tbl.Insert(e.Clone())
			durs = append(durs, time.Since(start))
		} else {
			tbl.Insert(e.Clone())
		}
	}
	return tbl, durs
}

// entSynopses extracts entity synopses once per data set.
func entSynopses(ds *datagen.Dataset) []*synopsis.Set {
	out := make([]*synopsis.Set, len(ds.Entities))
	for i, e := range ds.Entities {
		out[i] = e.Synopsis()
	}
	return out
}

// buildWorkload generates, measures, and selects the representative query
// set used by Fig5/Fig6/Efficiency.
func buildWorkload(ds *datagen.Dataset, o Options) []workload.Query {
	qs := workload.Generate(entSynopses(ds), 20)
	workload.Measure(qs, entSynopses(ds))
	return workload.Representatives(qs, o.QueryBuckets, o.QueriesPerBucket)
}

// runQueries executes the representative queries against tbl and returns
// per-query wall time and bytes read.
type queryRun struct {
	Query     workload.Query
	Duration  time.Duration
	BytesRead int64
	Touched   int
	Pruned    int
	Rows      int
}

func runQueries(tbl *table.Table, queries []workload.Query) []queryRun {
	out := make([]queryRun, 0, len(queries))
	for _, q := range queries {
		// Bytes read are deterministic; wall time is the best of three
		// runs after one warm-up, otherwise allocator noise at the
		// millisecond scale swamps the selectivity trend.
		tbl.Stats().Reset()
		_, rep := tbl.SelectWithReport(q.Attrs)
		_, _, bytes, _, _ := tbl.Stats().Snapshot()
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			tbl.SelectSynopsis(q.Attrs)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		out = append(out, queryRun{
			Query: q, Duration: best, BytesRead: bytes,
			Touched: rep.PartitionsTouched, Pruned: rep.PartitionsPruned,
			Rows: rep.EntitiesReturned,
		})
	}
	return out
}

// cind returns a Cinderella partitioner with the standard settings.
func cind(w float64, b int64) core.Assigner {
	return core.NewCinderella(core.Config{Weight: w, MaxSize: b})
}

// fprintf writes to w, swallowing the error (report writers are
// in-memory or stdout).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
