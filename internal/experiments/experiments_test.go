package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// small returns quick options for CI-scale runs.
func small() Options {
	return Options{Entities: 4000, Seed: 5, TPCHSF: 0.001, QueryBuckets: 5, QueriesPerBucket: 2}
}

func TestFig4Shapes(t *testing.T) {
	r := Fig4(small())
	if r.Entities != 4000 {
		t.Fatalf("entities = %d", r.Entities)
	}
	if len(r.Freq) == 0 || r.Freq[0] < 0.8 {
		t.Fatalf("top attribute frequency = %v", r.Freq)
	}
	// Frequencies sorted descending.
	for i := 1; i < len(r.Freq); i++ {
		if r.Freq[i] > r.Freq[i-1] {
			t.Fatal("frequencies not sorted")
		}
	}
	// Histogram covers all entities.
	total := 0
	for _, c := range r.AttrsPerEntity {
		total += c
	}
	if total != r.Entities {
		t.Fatalf("histogram total = %d", total)
	}
	if r.Sparseness < 0.85 || r.Sparseness > 0.97 {
		t.Fatalf("sparseness = %v", r.Sparseness)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("Print output wrong")
	}
}

func TestFig5Shapes(t *testing.T) {
	r := Fig5(small())
	if len(r.Series) != 4 {
		t.Fatalf("series = %d", len(r.Series))
	}
	if r.Series[0].Label != "universal" || r.Series[0].Partitions != 1 {
		t.Fatalf("baseline = %+v", r.Series[0])
	}
	// Smaller B → at least as many partitions.
	b500, b50000 := r.Series[1].Partitions, r.Series[3].Partitions
	if b500 < b50000 {
		t.Fatalf("partitions: B=500 %d < B=50000 %d", b500, b50000)
	}
	// Headline claim: selective queries read much less data than the
	// universal table (compare bytes read, which is deterministic).
	sp := r.MeanSpeedupBelow("B=500", 0.2)
	if sp < 1.5 {
		t.Fatalf("B=500 selective read-reduction = %vx, want > 1.5x", sp)
	}
	// Low-selectivity queries gain little (ratio near 1).
	base, b := r.Series[0], r.Series[1]
	for i, p := range b.Points {
		if p.Selectivity > 0.6 && p.KBRead > 0 {
			ratio := base.Points[i].KBRead / p.KBRead
			if ratio > 3 {
				t.Fatalf("unselective query claims %vx reduction — implausible", ratio)
			}
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("Print output wrong")
	}
}

func TestFig6Shapes(t *testing.T) {
	r := Fig6(small())
	if len(r.Series) != 4 {
		t.Fatalf("series = %d", len(r.Series))
	}
	// Lower weight → more partitions (Figure 7a seen through Fig6's
	// configurations).
	w2, w8 := seriesByLabel(t, r, "w=0.2").Partitions, seriesByLabel(t, r, "w=0.8").Partitions
	if w2 <= w8 {
		t.Fatalf("partitions: w=0.2 %d <= w=0.8 %d", w2, w8)
	}
	// Selective queries benefit at the paper's recommended w=0.2.
	if sp := r.MeanSpeedupBelow("w=0.2", 0.2); sp < 1.5 {
		t.Fatalf("w=0.2 selective read-reduction = %vx", sp)
	}
}

func seriesByLabel(t *testing.T, r Fig5Result, label string) QuerySeries {
	t.Helper()
	for _, s := range r.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("series %q missing", label)
	return QuerySeries{}
}

func TestFig7Shapes(t *testing.T) {
	r := Fig7(small())
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// (a) partitions decrease (weakly) as w grows, with a sharp drop from
	// w=0 to medium weights.
	if r.Rows[0].Weight != 0 || r.Rows[10].Weight != 1 {
		t.Fatal("weight sweep wrong")
	}
	if r.Rows[0].Partitions <= r.Rows[5].Partitions {
		t.Fatalf("w=0 partitions %d <= w=0.5 partitions %d", r.Rows[0].Partitions, r.Rows[5].Partitions)
	}
	if r.Rows[5].Partitions < r.Rows[10].Partitions {
		t.Fatalf("w=0.5 partitions %d < w=1 partitions %d", r.Rows[5].Partitions, r.Rows[10].Partitions)
	}
	// (d) sparseness: exactly 0 at w=0; grows with w; medium weights stay
	// below the data set's sparseness.
	if r.Rows[0].SparsenessP.Max != 0 {
		t.Fatalf("w=0 sparseness max = %v, want 0", r.Rows[0].SparsenessP.Max)
	}
	if r.Rows[5].SparsenessP.Median >= r.DataSparseness {
		t.Fatalf("w=0.5 median partition sparseness %v >= data sparseness %v",
			r.Rows[5].SparsenessP.Median, r.DataSparseness)
	}
	// (b,c) entities and attributes per partition grow with w.
	if r.Rows[2].EntitiesPP.Max > r.Rows[8].EntitiesPP.Max {
		t.Fatalf("entities/partition not growing: w=0.2 max %v > w=0.8 max %v",
			r.Rows[2].EntitiesPP.Max, r.Rows[8].EntitiesPP.Max)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("Print output wrong")
	}
}

func TestFig8Shapes(t *testing.T) {
	r := Fig8(small())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Split count decreases with B (paper: 448 / 100 / 0 at 100k scale).
	if !(r.Rows[0].Splits >= r.Rows[1].Splits && r.Rows[1].Splits >= r.Rows[2].Splits) {
		t.Fatalf("splits not decreasing in B: %d, %d, %d",
			r.Rows[0].Splits, r.Rows[1].Splits, r.Rows[2].Splits)
	}
	if r.Rows[0].Splits == 0 {
		t.Fatal("B=500 produced no splits at 4000 entities")
	}
	for _, row := range r.Rows {
		if row.Histogram.Total() != 4000 {
			t.Fatalf("B=%d histogram total = %d", row.B, row.Histogram.Total())
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Fatal("Print output wrong")
	}
}

func TestTableIShapes(t *testing.T) {
	r := TableI(small())
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Scenario != "Standard TPC-H" || r.Rows[0].Percent != 100 {
		t.Fatalf("baseline = %+v", r.Rows[0])
	}
	for _, row := range r.Rows[1:] {
		// The paper's core claim: Cinderella recovers the TPC-H schema
		// exactly.
		if !row.PureSchema {
			t.Fatalf("%s: partitions not schema-pure", row.Scenario)
		}
		if row.Partitions < 8 {
			t.Fatalf("%s: %d partitions for 8 tables", row.Scenario, row.Partitions)
		}
		// Overhead is bounded (paper sees ≤ 9%; wall clock at tiny scale
		// is noisy, so accept up to 3x).
		if row.Percent > 300 {
			t.Fatalf("%s: overhead %v%%", row.Scenario, row.Percent)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("Print output wrong")
	}
}

func TestEfficiencyOrdering(t *testing.T) {
	r := Efficiency(small())
	uni := r.Get("universal")
	hash := r.Get("hash-16")
	cin := r.Get("cinderella w=0.2")
	exact := r.Get("schema-exact")
	if uni < 0 || hash < 0 || cin < 0 || exact < 0 {
		t.Fatalf("missing strategies: %+v", r.Rows)
	}
	// Definition 1 is a fraction of read data: always in (0, 1].
	for _, row := range r.Rows {
		if row.Efficiency <= 0 || row.Efficiency > 1 {
			t.Fatalf("%s efficiency %v out of (0,1]", row.Strategy, row.Efficiency)
		}
	}
	// Cinderella must beat the universal table and hash partitioning;
	// schema-exact is the pruning upper bound among entity-based schemes.
	if cin <= uni {
		t.Fatalf("cinderella efficiency %v <= universal %v", cin, uni)
	}
	if cin <= hash {
		t.Fatalf("cinderella efficiency %v <= hash %v", cin, hash)
	}
	if exact < cin*0.9 {
		t.Fatalf("schema-exact %v unexpectedly below cinderella %v", exact, cin)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "EFFICIENCY") {
		t.Fatal("Print output wrong")
	}
}

func TestSortPoints(t *testing.T) {
	pts := []SeriesPoint{{Selectivity: 0.9}, {Selectivity: 0.1}}
	sortPoints(pts)
	if pts[0].Selectivity != 0.1 {
		t.Fatal("sortPoints broken")
	}
}

func TestCacheLocality(t *testing.T) {
	r := CacheLocality(small())
	uni := r.Get("universal")
	cin := r.Get("cinderella w=0.2")
	if uni < 0 || cin < 0 {
		t.Fatalf("missing rows: %+v", r.Rows)
	}
	// Cinderella's locality must beat the universal table's under a
	// cache smaller than the table: at least as good a hit ratio and
	// strictly fewer misses (the ratio alone can collapse to 0 on both
	// sides at tiny scale when even the selective working set exceeds
	// the cache).
	if cin < uni {
		t.Fatalf("cache hit ratio: cinderella %.3f < universal %.3f", cin, uni)
	}
	var uniMiss, cinMiss int64 = -1, -1
	for _, row := range r.Rows {
		switch row.Strategy {
		case "universal":
			uniMiss = row.Misses
		case "cinderella w=0.2":
			cinMiss = row.Misses
		}
	}
	if cinMiss <= 0 || uniMiss <= 0 || cinMiss >= uniMiss {
		t.Fatalf("cache misses: cinderella %d, universal %d", cinMiss, uniMiss)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Buffer-cache") {
		t.Fatal("Print output wrong")
	}
}

func TestChurn(t *testing.T) {
	r := Churn(small())
	plain, ok1 := r.Final("cinderella")
	comp, ok2 := r.Final("cinderella+compact")
	if !ok1 || !ok2 {
		t.Fatalf("missing series: %+v", r.Rows)
	}
	// Cardinality restored each round.
	if plain.Entities != 4000 || comp.Entities != 4000 {
		t.Fatalf("entities = %d / %d", plain.Entities, comp.Entities)
	}
	// Efficiency stays meaningful after heavy churn (> half the initial).
	first := r.Rows[0].Points[0].Efficiency
	if plain.Efficiency < first*0.5 {
		t.Fatalf("efficiency collapsed: %v -> %v", first, plain.Efficiency)
	}
	// Compaction must not leave more partitions than no maintenance.
	if comp.Partitions > plain.Partitions {
		t.Fatalf("compact series has more partitions: %d > %d", comp.Partitions, plain.Partitions)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "churn") {
		t.Fatal("Print output wrong")
	}
}
