package experiments

import (
	"io"
	"sort"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/metrics"
)

// --- Figure 4: attribute distribution of the data set ---

// Fig4Result holds the two distributions of Figure 4.
type Fig4Result struct {
	Entities int
	// Freq is, per attribute (sorted descending), the fraction of
	// entities instantiating it: Figure 4(a).
	Freq []float64
	// AttrsPerEntity histograms the number of attributes per entity:
	// index i counts entities with exactly i attributes: Figure 4(b).
	AttrsPerEntity []int
	Sparseness     float64
}

// Fig4 generates the data set and computes its distributions.
func Fig4(o Options) Fig4Result {
	o = o.withDefaults()
	ds := dataset(o)
	syns := entSynopses(ds)
	res := Fig4Result{Entities: len(ds.Entities), Sparseness: ds.Sparseness()}
	for _, c := range metrics.FrequencyDistribution(syns) {
		res.Freq = append(res.Freq, float64(c)/float64(len(ds.Entities)))
	}
	counts := metrics.AttrsPerEntity(syns)
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	res.AttrsPerEntity = make([]int, max+1)
	for _, c := range counts {
		res.AttrsPerEntity[c]++
	}
	return res
}

// Print renders the Figure 4 series.
func (r Fig4Result) Print(w io.Writer) {
	fprintf(w, "Figure 4 — attribute distribution (n=%d entities, sparseness=%.3f)\n", r.Entities, r.Sparseness)
	fprintf(w, "(a) attribute frequency (rank: fraction of entities)\n")
	for i, f := range r.Freq {
		fprintf(w, "  %3d  %.4f\n", i+1, f)
	}
	fprintf(w, "(b) attributes per entity (count: entities)\n")
	for n, c := range r.AttrsPerEntity {
		if c > 0 {
			fprintf(w, "  %3d  %d\n", n, c)
		}
	}
}

// --- Figures 5 and 6: query execution time vs. selectivity ---

// SeriesPoint is one measured query in a Fig5/Fig6 series.
type SeriesPoint struct {
	Selectivity float64
	Millis      float64
	KBRead      float64
	Touched     int
	Pruned      int
}

// QuerySeries is the measurement of one table configuration.
type QuerySeries struct {
	Label      string
	Partitions int
	Points     []SeriesPoint
}

// Fig5Result (also used by Fig6) compares query time across
// configurations, including the universal-table baseline.
type Fig5Result struct {
	Title  string
	Series []QuerySeries
}

// Fig5 measures query time vs. selectivity for B ∈ {500, 5000, 50000} at
// w = 0.5, against the universal table.
func Fig5(o Options) Fig5Result {
	o = o.withDefaults()
	return sweepQueries(o, "Figure 5 — query time vs selectivity, varying B (w=0.5)",
		[]namedAssigner{
			{"universal", func() core.Assigner { return core.NewSingle(core.SizeCount) }},
			{"B=500", func() core.Assigner { return cind(0.5, 500) }},
			{"B=5000", func() core.Assigner { return cind(0.5, 5000) }},
			{"B=50000", func() core.Assigner { return cind(0.5, 50000) }},
		})
}

// Fig6 measures query time vs. selectivity for w ∈ {0.2, 0.5, 0.8} at
// B = 5000, against the universal table.
func Fig6(o Options) Fig5Result {
	o = o.withDefaults()
	return sweepQueries(o, "Figure 6 — query time vs selectivity, varying w (B=5000)",
		[]namedAssigner{
			{"universal", func() core.Assigner { return core.NewSingle(core.SizeCount) }},
			{"w=0.2", func() core.Assigner { return cind(0.2, 5000) }},
			{"w=0.5", func() core.Assigner { return cind(0.5, 5000) }},
			{"w=0.8", func() core.Assigner { return cind(0.8, 5000) }},
		})
}

type namedAssigner struct {
	label string
	mk    func() core.Assigner
}

func sweepQueries(o Options, title string, configs []namedAssigner) Fig5Result {
	ds := dataset(o)
	queries := buildWorkload(ds, o)
	res := Fig5Result{Title: title}
	for _, cfg := range configs {
		tbl, _ := loadTable(ds, cfg.mk(), false)
		runs := runQueries(tbl, queries)
		s := QuerySeries{Label: cfg.label, Partitions: tbl.NumPartitions()}
		for _, r := range runs {
			s.Points = append(s.Points, SeriesPoint{
				Selectivity: r.Query.Selectivity,
				Millis:      float64(r.Duration.Microseconds()) / 1000,
				KBRead:      float64(r.BytesRead) / 1024,
				Touched:     r.Touched,
				Pruned:      r.Pruned,
			})
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// Print renders each series as selectivity/time/bytes rows.
func (r Fig5Result) Print(w io.Writer) {
	fprintf(w, "%s\n", r.Title)
	for _, s := range r.Series {
		fprintf(w, "series %-10s (%d partitions)\n", s.Label, s.Partitions)
		fprintf(w, "  %-12s %10s %12s %8s %8s\n", "selectivity", "ms", "KB read", "touched", "pruned")
		for _, p := range s.Points {
			fprintf(w, "  %-12.4f %10.3f %12.1f %8d %8d\n", p.Selectivity, p.Millis, p.KBRead, p.Touched, p.Pruned)
		}
	}
}

// MeanSpeedupBelow returns baseline-time / series-time averaged over
// queries with selectivity < cut, comparing a series to the baseline
// (first) series. Used by acceptance checks.
func (r Fig5Result) MeanSpeedupBelow(label string, cut float64) float64 {
	base := r.Series[0]
	var target *QuerySeries
	for i := range r.Series {
		if r.Series[i].Label == label {
			target = &r.Series[i]
		}
	}
	if target == nil {
		return 0
	}
	var sum float64
	n := 0
	for i, p := range target.Points {
		if p.Selectivity >= cut || p.KBRead == 0 {
			continue
		}
		sum += base.Points[i].KBRead / p.KBRead
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// --- Figure 7: influence of the weight on the partitioning ---

// Fig7Row is one weight setting's partitioning profile.
type Fig7Row struct {
	Weight      float64
	Partitions  int
	EntitiesPP  metrics.Summary // entities per partition
	AttrsPP     metrics.Summary // attributes per partition
	SparsenessP metrics.Summary // sparseness per partition
}

// Fig7Result aggregates the weight sweep (B = 5000).
type Fig7Result struct {
	DataSparseness float64
	Rows           []Fig7Row
}

// Fig7 partitions the data set for w ∈ {0, 0.1, …, 1} at B = 5000 and
// profiles the result.
func Fig7(o Options) Fig7Result {
	o = o.withDefaults()
	ds := dataset(o)
	res := Fig7Result{DataSparseness: ds.Sparseness()}
	for wi := 0; wi <= 10; wi++ {
		w := float64(wi) / 10
		tbl, _ := loadTable(ds, cind(w, 5000), false)
		var ents, attrs, sparse []float64
		for _, pv := range tbl.Partitions() {
			ents = append(ents, float64(pv.Entities))
			attrs = append(attrs, float64(pv.Synopsis.Len()))
			sparse = append(sparse, metrics.Sparseness(tbl.MemberSynopses(pv.ID)))
		}
		res.Rows = append(res.Rows, Fig7Row{
			Weight:      w,
			Partitions:  tbl.NumPartitions(),
			EntitiesPP:  metrics.Summarize(ents),
			AttrsPP:     metrics.Summarize(attrs),
			SparsenessP: metrics.Summarize(sparse),
		})
	}
	return res
}

// Print renders the four subplots of Figure 7 as columns.
func (r Fig7Result) Print(w io.Writer) {
	fprintf(w, "Figure 7 — influence of weight w (B=5000, data sparseness %.3f)\n", r.DataSparseness)
	fprintf(w, "  %-5s %10s | %-28s | %-28s | %-28s\n", "w", "partitions",
		"entities/partition", "attrs/partition", "sparseness/partition")
	for _, row := range r.Rows {
		fprintf(w, "  %-5.1f %10d | med=%-7.0f p75=%-7.0f max=%-7.0f | med=%-7.0f p75=%-7.0f max=%-7.0f | med=%-.3f p75=%-.3f max=%-.3f\n",
			row.Weight, row.Partitions,
			row.EntitiesPP.Median, row.EntitiesPP.P75, row.EntitiesPP.Max,
			row.AttrsPP.Median, row.AttrsPP.P75, row.AttrsPP.Max,
			row.SparsenessP.Median, row.SparsenessP.P75, row.SparsenessP.Max)
	}
}

// --- Figure 8: insert execution time ---

// Fig8Row is the insert profile for one partition size limit.
type Fig8Row struct {
	B          int64
	Histogram  *metrics.Histogram // insert latency in ms, decade buckets
	Splits     int64
	Cascades   int64
	Partitions int
	Mean       time.Duration
	P99        time.Duration
}

// Fig8Result aggregates insert timing per B.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 loads the data set for B ∈ {500, 5000, 50000} at w = 0.5 timing
// every insert; the paper reports 448/100/0 splits at 100k entities.
func Fig8(o Options) Fig8Result {
	o = o.withDefaults()
	ds := dataset(o)
	var res Fig8Result
	for _, b := range []int64{500, 5000, 50000} {
		p := core.NewCinderella(core.Config{Weight: 0.5, MaxSize: b})
		tbl, durs := loadTable(ds, p, true)
		h := metrics.NewLogHistogram(0.001, 7) // 1µs … 1000ms bounds
		var total time.Duration
		ms := make([]float64, len(durs))
		for i, d := range durs {
			m := float64(d.Microseconds()) / 1000
			ms[i] = m
			h.Observe(m)
			total += d
		}
		st := p.Stats()
		res.Rows = append(res.Rows, Fig8Row{
			B: b, Histogram: h,
			Splits: st.Splits, Cascades: st.SplitCascades,
			Partitions: tbl.NumPartitions(),
			Mean:       total / time.Duration(len(durs)),
			P99:        time.Duration(metrics.Quantile(ms, 0.99) * float64(time.Millisecond)),
		})
	}
	return res
}

// Print renders the insert latency distribution per B.
func (r Fig8Result) Print(w io.Writer) {
	fprintf(w, "Figure 8 — insert execution time by partition size limit (w=0.5)\n")
	for _, row := range r.Rows {
		fprintf(w, "B=%-6d partitions=%-5d splits=%-4d cascades=%-3d mean=%v p99=%v\n",
			row.B, row.Partitions, row.Splits, row.Cascades, row.Mean, row.P99)
		for i, c := range row.Histogram.Counts {
			if c > 0 {
				fprintf(w, "  %-14s ms: %d inserts\n", row.Histogram.BucketLabel(i), c)
			}
		}
	}
}

// sortPoints orders series points by selectivity (used by tests).
func sortPoints(pts []SeriesPoint) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Selectivity < pts[j].Selectivity })
}
