package experiments

import (
	"io"
	"runtime"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
	"cinderella/internal/workload"
)

// Hotpath measures the three optimized hot paths end to end — the fused
// rating kernel, the allocation-free insert path, and the parallel
// partition scan — and reports a machine-readable baseline that
// cmd/cinderella-bench serializes into BENCH_hotpath.json so later PRs
// can track the trajectory.

// HotpathResult is the hot-path baseline. All times are wall-clock on the
// benchmarking machine; GOMAXPROCS records how much parallelism the
// select comparison had available (on a single-core box the parallel scan
// degenerates to serial by design).
type HotpathResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Entities   int `json:"entities"`

	// Rating kernel: ns per entity/partition rating, fused single-pass
	// RateCards versus the four-call AndCard/OrCard/AndNotCard×2 baseline.
	FusedNsPerRating    float64 `json:"fused_ns_per_rating"`
	FourCallNsPerRating float64 `json:"fourcall_ns_per_rating"`
	RatingSpeedup       float64 `json:"rating_speedup"`

	// Insert path: mean ns per Insert into a fresh table (full placement
	// incl. splits), catalog scan vs. inverted catalog index.
	InsertScanNsPerOp  float64 `json:"insert_scan_ns_per_op"`
	InsertIndexNsPerOp float64 `json:"insert_catalog_index_ns_per_op"`
	Partitions         int     `json:"partitions"`

	// Query scan: mean ms per representative query, serial vs. pooled
	// parallel partition scans (identical results by construction).
	Queries            int     `json:"queries"`
	SerialMsPerQuery   float64 `json:"serial_ms_per_query"`
	ParallelMsPerQuery float64 `json:"parallel_ms_per_query"`
	SelectSpeedup      float64 `json:"select_speedup"`
	ParallelismWorkers int     `json:"parallelism_workers"`

	// Obs is the telemetry snapshot of one instrumented replay of the
	// query workload (registry attached after load, so the insert timings
	// above stay comparable across PRs): query counters and the streaming
	// EFFICIENCY of the final partitioning.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Hotpath runs the hot-path benchmarks at o's scale.
func Hotpath(o Options) HotpathResult {
	o = o.withDefaults()
	res := HotpathResult{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		Entities:           o.Entities,
		ParallelismWorkers: runtime.GOMAXPROCS(0),
	}

	ds := dataset(o)

	// --- insert path (also builds the table the other phases reuse) ---
	tblScan, dursScan := loadTable(ds, cind(0.5, 5000), true)
	res.InsertScanNsPerOp = meanNs(dursScan)
	res.Partitions = tblScan.NumPartitions()
	_, dursIdx := loadTable(ds, core.NewCinderella(core.Config{
		Weight: 0.5, MaxSize: 5000, UseCatalogIndex: true,
	}), true)
	res.InsertIndexNsPerOp = meanNs(dursIdx)

	// --- rating kernel ---
	// Pairs shaped like the insert loop sees them: entity synopsis against
	// partition synopsis.
	parts := tblScan.Partitions()
	var pairs [][2]*synopsis.Set
	for i, e := range ds.Entities {
		if len(pairs) >= 512 {
			break
		}
		pairs = append(pairs, [2]*synopsis.Set{e.Synopsis(), parts[i%len(parts)].Synopsis})
	}
	res.FusedNsPerRating = timePerOp(pairs, func(e, p *synopsis.Set) int {
		and, or, missE, missP := synopsis.RateCards(e, p)
		return and + or + missE + missP
	})
	res.FourCallNsPerRating = timePerOp(pairs, func(e, p *synopsis.Set) int {
		return synopsis.AndCard(e, p) + synopsis.OrCard(e, p) +
			synopsis.AndNotCard(p, e) + synopsis.AndNotCard(e, p)
	})
	if res.FusedNsPerRating > 0 {
		res.RatingSpeedup = res.FourCallNsPerRating / res.FusedNsPerRating
	}

	// --- query scan, serial vs parallel on the same table ---
	queries := buildWorkload(ds, o)
	res.Queries = len(queries)
	tblScan.SetParallelism(1)
	res.SerialMsPerQuery = meanQueryMs(tblScan, queries)
	tblScan.SetParallelism(0) // GOMAXPROCS workers
	res.ParallelMsPerQuery = meanQueryMs(tblScan, queries)
	if res.ParallelMsPerQuery > 0 {
		res.SelectSpeedup = res.SerialMsPerQuery / res.ParallelMsPerQuery
	}

	// One instrumented replay for the telemetry snapshot. The registry is
	// attached only now, after all timing comparisons are done.
	reg := o.Obs
	if reg == nil {
		reg = obs.New(obs.Options{})
	}
	tblScan.SetObserver(reg)
	for _, q := range queries {
		tblScan.SelectSynopsis(q.Attrs)
	}
	snap := reg.Snapshot()
	res.Obs = &snap
	return res
}

var hotpathSink int

// timePerOp measures ns per f(pair) over enough repetitions to smooth
// timer noise.
func timePerOp(pairs [][2]*synopsis.Set, f func(e, p *synopsis.Set) int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	// Warm-up pass.
	for _, pr := range pairs {
		hotpathSink += f(pr[0], pr[1])
	}
	ops := 0
	start := time.Now()
	for time.Since(start) < 50*time.Millisecond {
		for _, pr := range pairs {
			hotpathSink += f(pr[0], pr[1])
		}
		ops += len(pairs)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// meanQueryMs runs every query once for warm-up, then reports the mean
// wall time of a measured pass.
func meanQueryMs(tbl *table.Table, queries []workload.Query) float64 {
	if len(queries) == 0 {
		return 0
	}
	for _, q := range queries {
		tbl.SelectSynopsis(q.Attrs)
	}
	start := time.Now()
	for _, q := range queries {
		tbl.SelectSynopsis(q.Attrs)
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(len(queries))
}

func meanNs(durs []time.Duration) float64 {
	if len(durs) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	return float64(total.Nanoseconds()) / float64(len(durs))
}

// Print renders the baseline like the other experiment reports.
func (r HotpathResult) Print(w io.Writer) {
	fprintf(w, "HOTPATH baseline (GOMAXPROCS=%d, %d CPUs, %d entities, %d partitions)\n",
		r.GOMAXPROCS, r.NumCPU, r.Entities, r.Partitions)
	fprintf(w, "  rating kernel:   fused %.1f ns/op vs four-call %.1f ns/op (%.2fx)\n",
		r.FusedNsPerRating, r.FourCallNsPerRating, r.RatingSpeedup)
	fprintf(w, "  insert path:     scan %.0f ns/op, catalog-index %.0f ns/op\n",
		r.InsertScanNsPerOp, r.InsertIndexNsPerOp)
	fprintf(w, "  query scan:      serial %.3f ms/q vs parallel %.3f ms/q (%.2fx, %d workers, %d queries)\n",
		r.SerialMsPerQuery, r.ParallelMsPerQuery, r.SelectSpeedup, r.ParallelismWorkers, r.Queries)
	if r.Obs != nil {
		fprintf(w, "  telemetry:       efficiency=%.4f (bytes %.4f), %d partitions scanned, %d pruned\n",
			r.Obs.Efficiency, r.Obs.EfficiencyBytes,
			r.Obs.Counters["cinderella_partitions_scanned_total"],
			r.Obs.Counters["cinderella_partitions_pruned_total"])
	}
}
