package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestHotpath(t *testing.T) {
	r := Hotpath(small())
	if r.FusedNsPerRating <= 0 || r.FourCallNsPerRating <= 0 {
		t.Fatalf("rating timings missing: %+v", r)
	}
	if r.InsertScanNsPerOp <= 0 || r.InsertIndexNsPerOp <= 0 {
		t.Fatalf("insert timings missing: %+v", r)
	}
	if r.Queries == 0 || r.SerialMsPerQuery <= 0 || r.ParallelMsPerQuery <= 0 {
		t.Fatalf("query timings missing: %+v", r)
	}
	if r.Partitions == 0 {
		t.Fatal("no partitions recorded")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "HOTPATH") || !strings.Contains(buf.String(), "rating kernel") {
		t.Fatalf("Print output wrong: %q", buf.String())
	}
}
