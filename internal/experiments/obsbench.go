package experiments

import (
	"io"
	"runtime"
	"time"

	"cinderella/internal/datagen"
	"cinderella/internal/obs"
	"cinderella/internal/table"
	"cinderella/internal/workload"
)

// ObsOverhead measures what the telemetry layer costs: the same load and
// query workload runs on an uninstrumented table (nil registry — the
// production default) and on a fully instrumented one (counters,
// histograms, streaming EFFICIENCY, event trace). The acceptance budget
// for this repo is < 5 % on the insert path; cmd/cinderella-bench
// serializes the result as BENCH_obs.json.

// ObsOverheadResult compares instrumented against uninstrumented runs.
type ObsOverheadResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Entities   int `json:"entities"`
	Queries    int `json:"queries"`

	UninstrumentedNsPerInsert float64 `json:"uninstrumented_ns_per_insert"`
	InstrumentedNsPerInsert   float64 `json:"instrumented_ns_per_insert"`
	InsertOverheadPct         float64 `json:"insert_overhead_pct"`

	UninstrumentedMsPerQuery float64 `json:"uninstrumented_ms_per_query"`
	InstrumentedMsPerQuery   float64 `json:"instrumented_ms_per_query"`
	QueryOverheadPct         float64 `json:"query_overhead_pct"`

	// Snapshot is the instrumented run's final registry state, proving
	// the counters, histograms, and EFFICIENCY estimator were live while
	// the overhead above was measured.
	Snapshot obs.Snapshot `json:"snapshot"`
}

// ObsOverhead runs the comparison at o's scale. Each variant is loaded
// and queried rounds times; the best round counts, which filters
// allocator and scheduler noise the same way the hotpath baseline does.
func ObsOverhead(o Options) ObsOverheadResult {
	o = o.withDefaults()
	res := ObsOverheadResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Entities:   o.Entities,
	}

	ds := dataset(o)
	queries := buildWorkload(ds, o)
	res.Queries = len(queries)

	const rounds = 3
	var lastReg *obs.Registry
	for i := 0; i < rounds; i++ {
		// Alternate the order inside each round so neither variant
		// systematically benefits from a warmer heap.
		plainIns, plainQ := obsRun(ds, queries, nil)
		reg := obs.New(obs.Options{})
		instrIns, instrQ := obsRun(ds, queries, reg)
		lastReg = reg

		if res.UninstrumentedNsPerInsert == 0 || plainIns < res.UninstrumentedNsPerInsert {
			res.UninstrumentedNsPerInsert = plainIns
		}
		if res.InstrumentedNsPerInsert == 0 || instrIns < res.InstrumentedNsPerInsert {
			res.InstrumentedNsPerInsert = instrIns
		}
		if res.UninstrumentedMsPerQuery == 0 || plainQ < res.UninstrumentedMsPerQuery {
			res.UninstrumentedMsPerQuery = plainQ
		}
		if res.InstrumentedMsPerQuery == 0 || instrQ < res.InstrumentedMsPerQuery {
			res.InstrumentedMsPerQuery = instrQ
		}
	}
	if res.UninstrumentedNsPerInsert > 0 {
		res.InsertOverheadPct = 100 * (res.InstrumentedNsPerInsert - res.UninstrumentedNsPerInsert) /
			res.UninstrumentedNsPerInsert
	}
	if res.UninstrumentedMsPerQuery > 0 {
		res.QueryOverheadPct = 100 * (res.InstrumentedMsPerQuery - res.UninstrumentedMsPerQuery) /
			res.UninstrumentedMsPerQuery
	}
	res.Snapshot = lastReg.Snapshot()
	return res
}

// obsRun loads a fresh table (instrumented iff reg != nil) and replays
// the query workload, returning mean ns/insert and mean ms/query.
func obsRun(ds *datagen.Dataset, queries []workload.Query, reg *obs.Registry) (nsPerInsert, msPerQuery float64) {
	tbl := table.New(table.Config{Dict: ds.Dict, Partitioner: cind(0.5, 5000), Obs: reg})
	start := time.Now()
	for _, e := range ds.Entities {
		tbl.Insert(e.Clone())
	}
	nsPerInsert = float64(time.Since(start).Nanoseconds()) / float64(len(ds.Entities))
	msPerQuery = meanQueryMs(tbl, queries)
	return
}

// Print renders the comparison like the other experiment reports.
func (r ObsOverheadResult) Print(w io.Writer) {
	fprintf(w, "OBSERVABILITY overhead (GOMAXPROCS=%d, %d entities, %d queries)\n",
		r.GOMAXPROCS, r.Entities, r.Queries)
	fprintf(w, "  insert path:  uninstrumented %.0f ns/op, instrumented %.0f ns/op (%+.2f%%)\n",
		r.UninstrumentedNsPerInsert, r.InstrumentedNsPerInsert, r.InsertOverheadPct)
	fprintf(w, "  query path:   uninstrumented %.3f ms/q, instrumented %.3f ms/q (%+.2f%%)\n",
		r.UninstrumentedMsPerQuery, r.InstrumentedMsPerQuery, r.QueryOverheadPct)
	fprintf(w, "  instrumented run: efficiency=%.4f partitions=%d ratings=%d trace-events=%d\n",
		r.Snapshot.Efficiency, r.Snapshot.Partitions,
		r.Snapshot.Counters["cinderella_ratings_total"], r.Snapshot.TraceEvents)
}
