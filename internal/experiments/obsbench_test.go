package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestObsOverhead(t *testing.T) {
	r := ObsOverhead(small())
	if r.UninstrumentedNsPerInsert <= 0 || r.InstrumentedNsPerInsert <= 0 {
		t.Fatalf("insert timings missing: %+v", r)
	}
	if r.UninstrumentedMsPerQuery <= 0 || r.InstrumentedMsPerQuery <= 0 {
		t.Fatalf("query timings missing: %+v", r)
	}
	if r.Queries == 0 {
		t.Fatal("no queries recorded")
	}

	// The instrumented run's snapshot must prove the telemetry was live:
	// every insert counted, the estimator fed, the trace populated.
	s := r.Snapshot
	if got := s.Counters["cinderella_inserts_total"]; got != int64(r.Entities) {
		t.Fatalf("snapshot inserts = %d, want %d", got, r.Entities)
	}
	if s.Counters["cinderella_queries_total"] == 0 {
		t.Fatal("snapshot saw no queries")
	}
	if s.Efficiency <= 0 || s.Efficiency > 1 {
		t.Fatalf("snapshot efficiency = %v, want (0,1]", s.Efficiency)
	}
	if s.Partitions == 0 {
		t.Fatal("snapshot has no partitions")
	}
	if s.TraceEvents == 0 {
		t.Fatal("snapshot has no trace events")
	}

	// The result is what cinderella-bench -json serializes; it must
	// marshal cleanly (no Inf/NaN ratios at any scale).
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("marshal result: %v", err)
	}

	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "OBSERVABILITY") {
		t.Fatalf("Print output wrong: %q", buf.String())
	}
}

// TestHotpathObsSnapshot: the hotpath baseline embeds a telemetry
// snapshot of the instrumented query replay.
func TestHotpathObsSnapshot(t *testing.T) {
	r := Hotpath(small())
	if r.Obs == nil {
		t.Fatal("hotpath result has no obs snapshot")
	}
	if r.Obs.Counters["cinderella_queries_total"] != int64(r.Queries) {
		t.Fatalf("snapshot queries = %d, want %d",
			r.Obs.Counters["cinderella_queries_total"], r.Queries)
	}
	if r.Obs.Efficiency <= 0 || r.Obs.Efficiency > 1 {
		t.Fatalf("snapshot efficiency = %v, want (0,1]", r.Obs.Efficiency)
	}
}
