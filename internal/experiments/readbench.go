package experiments

import (
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/datagen"
	"cinderella/internal/obs"
	"cinderella/internal/table"
	"cinderella/internal/workload"
)

// readBenchSelectiveCut is the measured-selectivity bound below which a
// workload query counts as "selective" for the sidecar report.
const readBenchSelectiveCut = 0.25

// ReadBench measures the lock-free snapshot read path end to end: writer
// tail latency under a continuous full-scan read load (snapshot mode vs.
// the historical RWMutex mode), and the fraction of record decodes the
// per-record synopsis sidecar avoids on the representative query
// workload. cmd/cinderella-bench serializes the result into
// BENCH_read.json so later PRs can track the trajectory.

// ReadBenchResult is the read-path baseline. Latencies are wall-clock
// microseconds on the benchmarking machine; the headline number is
// WriterP99Improvement — how much better writer p99 gets when full scans
// stop holding the table lock.
type ReadBenchResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Entities   int `json:"entities"`
	Writers    int `json:"writers"`
	Readers    int `json:"readers"`
	PhaseMs    int `json:"phase_ms"`

	// Writers only, snapshot mode: the uncontended mutation baseline.
	SoloP50Us float64 `json:"solo_writer_p50_us"`
	SoloP99Us float64 `json:"solo_writer_p99_us"`

	// Writers vs. concurrent ScanAll readers, snapshot mode.
	SnapP50Us       float64 `json:"snapshot_writer_p50_us"`
	SnapP99Us       float64 `json:"snapshot_writer_p99_us"`
	SnapWriteOpsSec float64 `json:"snapshot_write_ops_per_sec"`
	SnapScansSec    float64 `json:"snapshot_scans_per_sec"`

	// Writers vs. concurrent ScanAll readers, locked (RWMutex) mode.
	LockedP50Us       float64 `json:"locked_writer_p50_us"`
	LockedP99Us       float64 `json:"locked_writer_p99_us"`
	LockedWriteOpsSec float64 `json:"locked_write_ops_per_sec"`
	LockedScansSec    float64 `json:"locked_scans_per_sec"`

	// LockedP99Us / SnapP99Us: writer tail-latency improvement from
	// taking full scans off the table lock.
	WriterP99Improvement float64 `json:"writer_p99_improvement"`

	// Sidecar pruning over the representative query workload in snapshot
	// mode: of the live records in partitions that survived partition-level
	// pruning, the fraction whose decode the record synopsis skipped.
	// The selective_* fields cover only queries with measured selectivity
	// ≤ readBenchSelectiveCut — the queries where per-record pruning is
	// the point — and selective_decode_avoided_fraction is the headline.
	Queries                 int     `json:"queries"`
	RecordsDecoded          int64   `json:"records_decoded"`
	DecodesSkipped          int64   `json:"decodes_skipped"`
	DecodeAvoidedFraction   float64 `json:"decode_avoided_fraction"`
	SelectiveQueries        int     `json:"selective_queries"`
	SelectiveDecoded        int64   `json:"selective_records_decoded"`
	SelectiveSkipped        int64   `json:"selective_decodes_skipped"`
	SelectiveDecodeAvoided  float64 `json:"selective_decode_avoided_fraction"`
	SelectiveSelectivityCut float64 `json:"selective_selectivity_cut"`

	// Obs is the telemetry snapshot of the instrumented query replay.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// mixResult is one read/write phase: merged writer latencies plus
// throughput on both sides.
type mixResult struct {
	p50, p99    time.Duration
	writeOpsSec float64
	scansSec    float64
}

// readMix races writer goroutines (insert/update/delete against the
// shared table) with reader goroutines (full ScanAll loops) for d and
// reports writer latency percentiles. readers == 0 gives the
// uncontended writer baseline.
func readMix(tbl *table.Table, ds *datagen.Dataset, writers, readers int, d time.Duration) mixResult {
	stop := make(chan struct{})
	lats := make([][]time.Duration, writers)
	var scans atomic.Int64

	var wwg, rwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			var mine []core.EntityID
			recorded := make([]time.Duration, 0, 4096)
			for {
				select {
				case <-stop:
					lats[w] = recorded
					return
				default:
				}
				op := rng.Intn(10)
				start := time.Now()
				switch {
				case op < 2 && len(mine) > 0: // delete
					k := rng.Intn(len(mine))
					tbl.Delete(mine[k])
					mine = append(mine[:k], mine[k+1:]...)
				case op < 4 && len(mine) > 0: // update
					tbl.Update(mine[rng.Intn(len(mine))], ds.Entities[rng.Intn(len(ds.Entities))].Clone())
				default: // insert
					mine = append(mine, tbl.Insert(ds.Entities[rng.Intn(len(ds.Entities))].Clone()))
				}
				recorded = append(recorded, time.Since(start))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := tbl.ScanAll()
				_ = res
				scans.Add(1)
			}
		}()
	}

	time.Sleep(d)
	close(stop)
	wwg.Wait()
	rwg.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		return all[int(q*float64(len(all)-1))]
	}
	return mixResult{
		p50:         pct(0.50),
		p99:         pct(0.99),
		writeOpsSec: float64(len(all)) / d.Seconds(),
		scansSec:    float64(scans.Load()) / d.Seconds(),
	}
}

// ReadBench runs the read-path benchmarks at o's scale.
func ReadBench(o Options) ReadBenchResult {
	o = o.withDefaults()
	const (
		writers = 8
		readers = 8
		phase   = 1200 * time.Millisecond
	)
	res := ReadBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Entities:   o.Entities,
		Writers:    writers,
		Readers:    readers,
		PhaseMs:    int(phase.Milliseconds()),
	}

	ds := dataset(o)
	tbl, _ := loadTable(ds, cind(0.5, 5000), false)

	// Phase 1 — writers alone, snapshot mode: the uncontended baseline.
	solo := readMix(tbl, ds, writers, 0, phase)
	res.SoloP50Us = float64(solo.p50.Nanoseconds()) / 1e3
	res.SoloP99Us = float64(solo.p99.Nanoseconds()) / 1e3

	// Phase 2 — writers vs. full-scan readers on the lock-free path.
	snap := readMix(tbl, ds, writers, readers, phase)
	res.SnapP50Us = float64(snap.p50.Nanoseconds()) / 1e3
	res.SnapP99Us = float64(snap.p99.Nanoseconds()) / 1e3
	res.SnapWriteOpsSec = snap.writeOpsSec
	res.SnapScansSec = snap.scansSec

	// Phase 3 — the same mix with reads back on the RWMutex, so every
	// full scan excludes every mutation for its whole duration.
	tbl.SetLockedReads(true)
	locked := readMix(tbl, ds, writers, readers, phase)
	tbl.SetLockedReads(false)
	res.LockedP50Us = float64(locked.p50.Nanoseconds()) / 1e3
	res.LockedP99Us = float64(locked.p99.Nanoseconds()) / 1e3
	res.LockedWriteOpsSec = locked.writeOpsSec
	res.LockedScansSec = locked.scansSec
	if res.SnapP99Us > 0 {
		res.WriterP99Improvement = res.LockedP99Us / res.SnapP99Us
	}

	// Phase 4 — sidecar decode avoidance over the representative query
	// workload, instrumented. Selective queries (the low-selectivity
	// buckets, where most records in a scanned partition are irrelevant)
	// are replayed as their own group so their skip fraction is visible
	// next to the whole-workload number.
	queries := buildWorkload(ds, o)
	res.Queries = len(queries)
	res.SelectiveSelectivityCut = readBenchSelectiveCut
	var selective, broad []workload.Query
	for _, q := range queries {
		if q.Selectivity <= readBenchSelectiveCut {
			selective = append(selective, q)
		} else {
			broad = append(broad, q)
		}
	}
	res.SelectiveQueries = len(selective)

	reg := o.Obs
	if reg == nil {
		reg = obs.New(obs.Options{})
	}
	tbl.SetObserver(reg)
	replay := func(qs []workload.Query) (decoded, skipped int64) {
		d0, s0 := reg.Counter(obs.CScanDecoded), reg.Counter(obs.CScanDecodeSkipped)
		for _, q := range qs {
			tbl.SelectSynopsis(q.Attrs)
		}
		return reg.Counter(obs.CScanDecoded) - d0, reg.Counter(obs.CScanDecodeSkipped) - s0
	}
	res.SelectiveDecoded, res.SelectiveSkipped = replay(selective)
	bd, bs := replay(broad)
	res.RecordsDecoded = res.SelectiveDecoded + bd
	res.DecodesSkipped = res.SelectiveSkipped + bs
	if total := res.RecordsDecoded + res.DecodesSkipped; total > 0 {
		res.DecodeAvoidedFraction = float64(res.DecodesSkipped) / float64(total)
	}
	if total := res.SelectiveDecoded + res.SelectiveSkipped; total > 0 {
		res.SelectiveDecodeAvoided = float64(res.SelectiveSkipped) / float64(total)
	}
	snapObs := reg.Snapshot()
	res.Obs = &snapObs
	return res
}

// Print renders the baseline like the other experiment reports.
func (r ReadBenchResult) Print(w io.Writer) {
	fprintf(w, "READ baseline (GOMAXPROCS=%d, %d CPUs, %d entities, %dw/%dr, %dms phases)\n",
		r.GOMAXPROCS, r.NumCPU, r.Entities, r.Writers, r.Readers, r.PhaseMs)
	fprintf(w, "  writers alone:   p50 %.1f us, p99 %.1f us\n", r.SoloP50Us, r.SoloP99Us)
	fprintf(w, "  snapshot reads:  writer p50 %.1f us, p99 %.1f us (%.0f w-ops/s, %.1f scans/s)\n",
		r.SnapP50Us, r.SnapP99Us, r.SnapWriteOpsSec, r.SnapScansSec)
	fprintf(w, "  locked reads:    writer p50 %.1f us, p99 %.1f us (%.0f w-ops/s, %.1f scans/s)\n",
		r.LockedP50Us, r.LockedP99Us, r.LockedWriteOpsSec, r.LockedScansSec)
	fprintf(w, "  writer p99 under full scans: %.1fx better lock-free\n", r.WriterP99Improvement)
	fprintf(w, "  sidecar:         %d decoded, %d skipped (%.1f%% of decodes avoided, %d queries)\n",
		r.RecordsDecoded, r.DecodesSkipped, 100*r.DecodeAvoidedFraction, r.Queries)
	fprintf(w, "  selective (sel<=%.2f): %d decoded, %d skipped (%.1f%% avoided, %d queries)\n",
		r.SelectiveSelectivityCut, r.SelectiveDecoded, r.SelectiveSkipped,
		100*r.SelectiveDecodeAvoided, r.SelectiveQueries)
}
