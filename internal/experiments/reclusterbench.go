package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cinderella"
	"cinderella/internal/obs"
	"cinderella/internal/recluster"
)

// ReclusterBench measures the background reclusterer against the
// adversarial workload it exists for: a table whose layout has adapted
// to one query family is hit by a sudden shift to an orthogonal
// family. Without reclustering the layout is frozen at whatever
// EFFICIENCY the shift leaves it; with the manager ticking, the
// workload-blended re-rating migrates entities until the new family
// reads efficiently again. The headline number is RecoveredFraction —
// how much of the efficiency lost at the shift the reclusterer wins
// back — gated at >= 0.5 by scripts/verify.sh. The bench also proves
// the governor's point: writer p99 with the reclusterer migrating
// concurrently must stay within 10% of the same write load without it,
// and a WAL reopen after all migrations must recount exactly.

// ReclusterBenchResult is serialized as BENCH_recluster.json.
type ReclusterBenchResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Entities   int `json:"entities"`
	FamilySize int `json:"family_size"`
	Rounds     int `json:"rounds"`

	// EFFICIENCY (Definition 1, relevant/read bytes) over one sweep of
	// the active query family: the layout adapted to family A, family B
	// on that frozen layout (the no-recluster baseline), and family B
	// after the reclusterer chased the shift.
	EffAdaptedA   float64 `json:"eff_adapted_a"`
	EffFrozenB    float64 `json:"eff_frozen_b"`
	EffRecoveredB float64 `json:"eff_recovered_b"`

	// RecoveredFraction = (recovered - frozen) / (adapted - frozen):
	// 0 means the reclusterer did nothing, 1 means family B reads as
	// efficiently as family A did before the shift.
	RecoveredFraction float64 `json:"recovered_fraction"`
	RecoveredOK       bool    `json:"recovered_ok"`

	Moves    int64 `json:"moves"`
	Examined int64 `json:"examined"`

	// Writer latency under a live query load, with and without the
	// reclusterer migrating concurrently.
	WriterBaselineP99Ms   float64 `json:"writer_baseline_p99_ms"`
	WriterReclusterP99Ms  float64 `json:"writer_recluster_p99_ms"`
	WriterP99OverheadPct  float64 `json:"writer_p99_overhead_pct"`
	WriterP99WithinBudget bool    `json:"writer_p99_within_budget"`

	// Durability proof: reopening the WAL after all migrations yields
	// exactly the inserted entities, no losses, no duplicates.
	ReopenCount      int  `json:"reopen_count"`
	ReopenCountOK    bool `json:"reopen_count_ok"`
	ReopenNoDupsOK   bool `json:"reopen_no_dups_ok"`
	WriterP99Samples int  `json:"writer_p99_samples"`
}

// reclusterDoc builds the adversarial entity: two common attributes
// plus one from the fast-cycling "a" family and one from the
// slow-cycling "b" family, k = √entities values each. Every a×b
// combination occurs roughly once, so a partition grouping entities
// by their a value necessarily spans many b values and vice versa — a
// layout can serve one family efficiently, never both.
func reclusterDoc(i, k int) cinderella.Doc {
	return cinderella.Doc{
		"c0":                        i,
		"c1":                        "x",
		fmt.Sprintf("a%d", i%k):     1,
		fmt.Sprintf("b%d", (i/k)%k): 1,
	}
}

// familySize picks k so each a×b combination holds ~1 entity.
func familySize(entities int) int {
	k := int(math.Ceil(math.Sqrt(float64(entities))))
	if k < 8 {
		k = 8
	}
	return k
}

// reclusterSweep runs one query per attribute of the family and
// returns the aggregate relevant/read byte ratio.
func reclusterSweep(t *cinderella.Table, family string, k int) float64 {
	var read, relevant int64
	for i := 0; i < k; i++ {
		_, rep := t.QueryWithReport(fmt.Sprintf("%s%d", family, i))
		read += rep.BytesRead
		relevant += rep.BytesRelevant
	}
	if read == 0 {
		return 0
	}
	return float64(relevant) / float64(read)
}

// ReclusterBench runs the shift experiment at o's scale (Entities is
// the table size; partitions hold 16 entities so the combination
// space always exceeds partition purity).
func ReclusterBench(o Options) (ReclusterBenchResult, error) {
	o = o.withDefaults()
	res := ReclusterBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Entities:   o.Entities,
	}

	dir, err := os.MkdirTemp("", "cinderella-reclusterbench")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "recluster.wal")

	reg := obs.New(obs.Options{})
	cfg := cinderella.Config{PartitionSizeLimit: 16, Obs: reg}
	dt, err := cinderella.OpenFile(path, cfg)
	if err != nil {
		return res, err
	}

	k := familySize(o.Entities)
	res.FamilySize = k
	for i := 0; i < o.Entities; i++ {
		if _, err := dt.Insert(reclusterDoc(i, k)); err != nil {
			return res, err
		}
	}

	m := recluster.New(dt, reg, recluster.Config{
		BatchSize:    128,
		MaxVictims:   maxInt(16, o.Entities/16/16), // ~1/16th of the partitions per round
		MinQueries:   2,
		Alpha:        0.9,
		QueryMixSize: 2 * k, // the blender must see the whole family
	})
	defer m.Close()

	// adapt sweeps one family and ticks the reclusterer until the
	// family's efficiency plateaus, returning the final sweep's ratio.
	adapt := func(family string) float64 {
		prev := -1.0
		for r := 0; r < 32; r++ {
			res.Rounds++
			reclusterSweep(dt.Table, family, k)
			m.Tick()
			cur := reclusterSweep(dt.Table, family, k)
			if r >= 8 && math.Abs(cur-prev) < 0.001 {
				break
			}
			prev = cur
		}
		return reclusterSweep(dt.Table, family, k)
	}

	// Phase A: let the layout adapt to the a-family workload.
	res.EffAdaptedA = adapt("a")

	// The shift: forget the old heat, measure family B on the frozen
	// layout — this IS the no-recluster baseline, since without the
	// manager the layout never changes again.
	reg.DecayHeat(0)
	res.EffFrozenB = reclusterSweep(dt.Table, "b", k)

	// Recovery: chase the new family until it plateaus.
	res.EffRecoveredB = adapt("b")
	if gap := res.EffAdaptedA - res.EffFrozenB; gap > 0 {
		res.RecoveredFraction = (res.EffRecoveredB - res.EffFrozenB) / gap
	}
	res.RecoveredOK = res.RecoveredFraction >= 0.5
	res.Moves = reg.Counter(obs.CReclusterMoves)
	res.Examined = reg.Counter(obs.CReclusterExamined)

	// Writer p99: one insert stream under a live query load, split into
	// alternating chunks with the reclusterer idle and migrating under
	// its production governor — interleaving keeps table growth and
	// catalog size identical for both variants. The reader sweeps
	// family A against the B-adapted layout, so the active chunks have
	// real victims to chew on.
	reg.DecayHeat(0)
	// A move costs about one insert of CPU (same re-rating), and the
	// per-entity lock bracket means a colliding writer waits one move,
	// not one batch. So p99 stays clean as long as fewer than 1% of
	// inserts collide: rate × move-duration < 1%. 25 moves/s against
	// ~0.1ms moves is 0.25%, a 4x margin.
	governed := recluster.New(dt, reg, recluster.Config{
		BatchSize:      8,
		MaxVictims:     2,
		MinQueries:     2,
		Alpha:          0.9,
		QueryMixSize:   2 * k,
		MaxMovesPerSec: 25,
	})
	res.WriterBaselineP99Ms, res.WriterReclusterP99Ms = writerP99(dt, reg, governed, o.Entities, k)
	governed.Close()
	res.WriterP99Samples = writerSamples
	if res.WriterBaselineP99Ms > 0 {
		res.WriterP99OverheadPct = 100 * (res.WriterReclusterP99Ms - res.WriterBaselineP99Ms) /
			res.WriterBaselineP99Ms
	}
	// 10% relative, with sub-50µs absolute headroom against timer noise
	// at microsecond-scale insert latencies.
	res.WriterP99WithinBudget = res.WriterP99OverheadPct <= 10.0 ||
		res.WriterReclusterP99Ms-res.WriterBaselineP99Ms <= 0.05

	inserted := dt.Len()
	if err := dt.Close(); err != nil {
		return res, err
	}

	// Reopen: WAL replay must reconstruct every entity exactly once.
	dt2, err := cinderella.OpenFile(path, cinderella.Config{PartitionSizeLimit: 16})
	if err != nil {
		return res, err
	}
	defer dt2.Close()
	recs := dt2.ScanAll()
	res.ReopenCount = len(recs)
	res.ReopenCountOK = len(recs) == inserted
	seen := make(map[cinderella.ID]bool, len(recs))
	res.ReopenNoDupsOK = true
	for _, rec := range recs {
		if seen[rec.ID] {
			res.ReopenNoDupsOK = false
			break
		}
		seen[rec.ID] = true
	}
	return res, nil
}

const (
	writerSamples = 2000 // per variant
	writerChunk   = 100  // inserts per alternating chunk
)

// writerP99 inserts 2×writerSamples entities in alternating chunks —
// reclusterer idle, reclusterer migrating — while a background reader
// sweeps the a-family (keeping the heat map and query mix live).
// Interleaving the variants inside one stream keeps catalog size and
// heap state identical for both. Returns (idle p99, migrating p99) in
// milliseconds.
func writerP99(dt *cinderella.DurableTable, reg *obs.Registry, m *recluster.Manager, base, k int) (float64, float64) {
	var (
		stop   atomic.Bool
		active atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			reclusterSweep(dt.Table, "a", k)
			if active.Load() {
				m.Tick()
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()

	idle := make([]float64, 0, writerSamples)
	migr := make([]float64, 0, writerSamples)
	for i := 0; len(idle) < writerSamples || len(migr) < writerSamples; i++ {
		chunkActive := (i/writerChunk)%2 == 1
		active.Store(chunkActive)
		start := time.Now()
		dt.Insert(reclusterDoc(base+i, k))
		ms := float64(time.Since(start).Microseconds()) / 1000
		if chunkActive {
			if len(migr) < writerSamples {
				migr = append(migr, ms)
			}
		} else if len(idle) < writerSamples {
			idle = append(idle, ms)
		}
	}
	stop.Store(true)
	wg.Wait()
	return p99(idle), p99(migr)
}

func p99(lat []float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Float64s(lat)
	idx := int(math.Ceil(0.99*float64(len(lat)))) - 1
	if idx < 0 {
		idx = 0
	}
	return lat[idx]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Print renders the report like the other experiments.
func (r ReclusterBenchResult) Print(w io.Writer) {
	fprintf(w, "RECLUSTER shift recovery (GOMAXPROCS=%d, %d entities, %d-attr families, %d rounds)\n",
		r.GOMAXPROCS, r.Entities, r.FamilySize, r.Rounds)
	fprintf(w, "  efficiency: adapted(A)=%.3f frozen(B)=%.3f recovered(B)=%.3f\n",
		r.EffAdaptedA, r.EffFrozenB, r.EffRecoveredB)
	fprintf(w, "  recovered-fraction=%.3f ok=%v (moves=%d examined=%d)\n",
		r.RecoveredFraction, r.RecoveredOK, r.Moves, r.Examined)
	fprintf(w, "  writer p99: idle %.3f ms, reclustering %.3f ms (%+.2f%%) within-budget=%v (%d samples)\n",
		r.WriterBaselineP99Ms, r.WriterReclusterP99Ms, r.WriterP99OverheadPct,
		r.WriterP99WithinBudget, r.WriterP99Samples)
	fprintf(w, "  reopen: %d records count-ok=%v no-dups=%v\n",
		r.ReopenCount, r.ReopenCountOK, r.ReopenNoDupsOK)
}
