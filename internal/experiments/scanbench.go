package experiments

import (
	"io"
	"runtime"
	"time"

	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
	"cinderella/internal/workload"
)

// ScanBench measures the word-parallel bitmap scan kernel against the
// per-record sidecar baseline (internal/table bitmap.go): selective
// query throughput in both modes, a full result/report equivalence
// sweep, and the cold-tier payoff — a frozen partition the kernel
// prunes completely charges zero cold bytes. cmd/cinderella-bench
// serializes the result into BENCH_scan.json.
//
// The timed replay runs on the coarse-partitioning arm of the paper's
// Fig. 5 sweep (B = 50000): with few, wide partitions, partition-level
// synopses prune almost nothing and nearly every visited record is
// irrelevant — the regime where the per-record sidecar pays its
// pointer chase + word-AND per record and the kernel's 64-records-per-
// word-op evaluation is the operative mechanism. The fine-grained
// clustered table (the B = 5000 standard arm) is also measured and
// reported as a secondary ratio: there Cinderella's partition pruning
// already concentrates relevant records, so both modes are bound by
// decoding the hits and the ratio is structurally near 1.

// scanBenchSelectiveCut bounds the measured selectivity of the queries
// in the timed replay: the kernel's job is the selective regime, where
// most visited records are irrelevant and decode-skipping dominates.
const scanBenchSelectiveCut = 0.25

// scanBenchBudget is the required selective speedup of the bitmap
// kernel over the sidecar baseline (the PR's acceptance gate).
const scanBenchBudget = 3.0

// scanBenchCoarseB is the partition-size bound for the timed replay's
// table: Fig. 5's largest arm, where partition pruning is weakest and
// record-level skipping carries the scan.
const scanBenchCoarseB = 50000

// scanBenchClusteredB is the standard clustered configuration used by
// the equivalence sweep, the cold-tier probe, and the secondary ratio.
const scanBenchClusteredB = 5000

// ScanBenchResult is the scan-kernel baseline.
type ScanBenchResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Entities   int `json:"entities"`

	// The timed replay: selective representative queries, one phase per
	// scan mode over the same hot coarse-partitioned table.
	Queries          int     `json:"queries"`
	SelectiveQueries int     `json:"selective_queries"`
	SelectivityCut   float64 `json:"selectivity_cut"`
	PhaseMs          int     `json:"phase_ms"`
	PartitionMaxSize int     `json:"partition_max_size"` // the replay table's B (Fig. 5 coarse arm)

	SidecarQPS       float64 `json:"sidecar_queries_per_sec"`
	BitmapQPS        float64 `json:"bitmap_queries_per_sec"`
	SidecarUsPerQ    float64 `json:"sidecar_us_per_query"`
	BitmapUsPerQ     float64 `json:"bitmap_us_per_query"`
	Speedup          float64 `json:"speedup"`
	WithinBudget     bool    `json:"within_budget"` // Speedup >= SpeedupBudget
	SpeedupBudget    float64 `json:"speedup_budget"`
	BitmapWords      int64   `json:"bitmap_words"` // kernel word ops in the bitmap phase
	BitmapHits       int64   `json:"bitmap_hits"`  // kernel candidates in the bitmap phase
	BitmapWordsPerQ  float64 `json:"bitmap_words_per_query"`
	RecordsPerWordOp float64 `json:"records_per_word_op"` // records ruled on per 64-bit op

	// The secondary ratio on the standard clustered table, where
	// partition pruning already concentrates relevant records and both
	// modes are decode-bound.
	ClusteredPartitionMaxSize int     `json:"clustered_partition_max_size"`
	ClusteredSidecarQPS       float64 `json:"clustered_sidecar_queries_per_sec"`
	ClusteredBitmapQPS        float64 `json:"clustered_bitmap_queries_per_sec"`
	ClusteredSpeedup          float64 `json:"clustered_speedup"`

	// The equivalence sweep: every representative query plus predicate
	// probes, bitmap vs. sidecar, on both tables, hot and frozen —
	// results and QueryReport must be bit-identical.
	EquivalenceQueries int  `json:"equivalence_queries"`
	EquivalenceOK      bool `json:"equivalence_ok"`

	// The cold-tier prune check: with every partition frozen, a
	// conjunctive query over a never-co-occurring attribute pair touches
	// partitions (their synopses contain both attributes) but decodes
	// nothing — so no cold block may be inflated.
	FrozenPartitions     int   `json:"frozen_partitions"`
	PruneProbePartitions int   `json:"prune_probe_partitions_touched"`
	PruneProbeColdBytes  int64 `json:"prune_probe_cold_bytes"`
	PruneZeroColdOK      bool  `json:"prune_zero_cold_ok"`
}

// anyPred builds a predicate that every entity instantiating attr
// satisfies. The generated data's value kind is deterministic per
// attribute (attr % 3), so a matching-kind >= minimum probe matches
// exactly "attr present".
func anyPred(attr int) table.Pred {
	if attr%3 == 0 {
		return table.Pred{Attr: attr, Op: table.Ge, Value: entity.Str("")}
	}
	return table.Pred{Attr: attr, Op: table.Ge, Value: entity.Float(-1)}
}

// sameScanResults compares two result sets for bit-identity (order,
// ids, contents).
func sameScanResults(a, b []table.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Entity.Equal(b[i].Entity) {
			return false
		}
	}
	return true
}

// ScanBench runs the scan-kernel benchmark at o's scale.
func ScanBench(o Options) ScanBenchResult {
	o = o.withDefaults()
	const phase = 1200 * time.Millisecond
	res := ScanBenchResult{
		GOMAXPROCS:                runtime.GOMAXPROCS(0),
		NumCPU:                    runtime.NumCPU(),
		Entities:                  o.Entities,
		SelectivityCut:            scanBenchSelectiveCut,
		SpeedupBudget:             scanBenchBudget,
		PhaseMs:                   int(phase.Milliseconds()),
		PartitionMaxSize:          scanBenchCoarseB,
		ClusteredPartitionMaxSize: scanBenchClusteredB,
	}

	ds := dataset(o)
	tbl, _ := loadTable(ds, cind(0.5, scanBenchClusteredB), false)
	coarse, _ := loadTable(ds, cind(0.5, scanBenchCoarseB), false)
	reg := o.Obs
	if reg == nil {
		reg = obs.New(obs.Options{})
	}
	tbl.SetObserver(reg)
	coarse.SetObserver(reg)

	queries := buildWorkload(ds, o)
	res.Queries = len(queries)
	var selective []workload.Query
	for _, q := range queries {
		if q.Selectivity <= scanBenchSelectiveCut {
			selective = append(selective, q)
		}
	}
	if len(selective) == 0 {
		selective = queries // tiny smoke scales may have no selective bucket
	}
	res.SelectiveQueries = len(selective)

	// Phase 1 — equivalence sweep over both hot tables: every
	// representative query, bitmap vs. sidecar, results and reports
	// bit-identical.
	res.EquivalenceOK = true
	checkEquiv := func(t *table.Table, run func() ([]table.Result, table.QueryReport)) {
		t.SetBitmapScans(true)
		br, brep := run()
		t.SetBitmapScans(false)
		sr, srep := run()
		t.SetBitmapScans(true)
		res.EquivalenceQueries++
		if !sameScanResults(br, sr) || brep != srep {
			res.EquivalenceOK = false
		}
	}
	for _, q := range queries {
		q := q
		checkEquiv(tbl, func() ([]table.Result, table.QueryReport) { return tbl.SelectWithReport(q.Attrs) })
		checkEquiv(coarse, func() ([]table.Result, table.QueryReport) { return coarse.SelectWithReport(q.Attrs) })
		attrs := q.Attrs.Elements(nil)
		if len(attrs) > 0 {
			preds := []table.Pred{anyPred(attrs[0])}
			if len(attrs) > 1 {
				preds = append(preds, anyPred(attrs[1]))
			}
			checkEquiv(tbl, func() ([]table.Result, table.QueryReport) { return tbl.SelectWhere(preds) })
		}
	}

	// Phase 2 — the timed selective replay, one time-boxed phase per
	// mode (sidecar first so the bitmap phase cannot inherit a warmer
	// allocator). One warm-up pass each. The headline ratio runs on the
	// coarse table; the clustered table's ratio is the secondary number.
	//
	// Scheduling is an equal time slice per query (the rate-metric
	// aggregation): each representative query gets d/len(selective) of
	// wall time and throughput is total completions over total time.
	// A single shared loop would instead let the bucket's heaviest
	// queries — whose cost is dominated by materializing their large
	// result sets, identical in both modes — consume nearly all the
	// phase and mask the scan-path difference this benchmark isolates.
	replayFor := func(t *table.Table, d time.Duration) (qps float64, ran int) {
		for _, q := range selective {
			t.SelectSynopsis(q.Attrs)
		}
		slice := d / time.Duration(len(selective))
		var total time.Duration
		for _, q := range selective {
			start := time.Now()
			for time.Since(start) < slice {
				t.SelectSynopsis(q.Attrs)
				ran++
			}
			total += time.Since(start)
		}
		return float64(ran) / total.Seconds(), ran
	}
	coarse.SetBitmapScans(false)
	res.SidecarQPS, _ = replayFor(coarse, phase)
	coarse.SetBitmapScans(true)
	w0, h0 := reg.Counter(obs.CScanBitmapWords), reg.Counter(obs.CScanBitmapHits)
	d0 := reg.Counter(obs.CScanDecoded)
	s0 := reg.Counter(obs.CScanDecodeSkipped)
	var bitmapRan int
	res.BitmapQPS, bitmapRan = replayFor(coarse, phase)
	res.BitmapWords = reg.Counter(obs.CScanBitmapWords) - w0
	res.BitmapHits = reg.Counter(obs.CScanBitmapHits) - h0
	ruled := reg.Counter(obs.CScanDecoded) - d0 + reg.Counter(obs.CScanDecodeSkipped) - s0
	if res.SidecarQPS > 0 {
		res.SidecarUsPerQ = 1e6 / res.SidecarQPS
	}
	if res.BitmapQPS > 0 {
		res.BitmapUsPerQ = 1e6 / res.BitmapQPS
	}
	if bitmapRan > 0 {
		res.BitmapWordsPerQ = float64(res.BitmapWords) / float64(bitmapRan)
	}
	if res.BitmapWords > 0 {
		res.RecordsPerWordOp = float64(ruled) / float64(res.BitmapWords)
	}
	if res.SidecarQPS > 0 {
		res.Speedup = res.BitmapQPS / res.SidecarQPS
	}
	res.WithinBudget = res.Speedup >= scanBenchBudget

	tbl.SetBitmapScans(false)
	res.ClusteredSidecarQPS, _ = replayFor(tbl, phase/2)
	tbl.SetBitmapScans(true)
	res.ClusteredBitmapQPS, _ = replayFor(tbl, phase/2)
	if res.ClusteredSidecarQPS > 0 {
		res.ClusteredSpeedup = res.ClusteredBitmapQPS / res.ClusteredSidecarQPS
	}

	// Phase 3 — freeze every clustered partition and probe the cold-tier
	// prune path: a conjunction over two attributes that never co-occur
	// in one entity touches every partition whose synopsis holds both,
	// yet the kernel decodes nothing, so zero cold bytes may be
	// inflated. The frozen equivalence sweep reruns a slice of the
	// workload across both tiers.
	for _, pv := range tbl.Partitions() {
		tbl.FreezePartition(pv.ID)
	}
	res.FrozenPartitions = len(tbl.FrozenPartitions())

	if a, b, ok := disjointCoverPair(entSynopses(ds), tbl); ok {
		preds := []table.Pred{anyPred(a), anyPred(b)}
		tbl.Stats().Reset()
		hits, rep := tbl.SelectWhere(preds)
		_, cold := tbl.Stats().ColdSnapshot()
		res.PruneProbePartitions = rep.PartitionsTouched
		res.PruneProbeColdBytes = cold
		res.PruneZeroColdOK = len(hits) == 0 && rep.PartitionsTouched > 0 && cold == 0
	}

	for i, q := range queries {
		if i%4 != 0 {
			continue
		}
		q := q
		checkEquiv(tbl, func() ([]table.Result, table.QueryReport) { return tbl.SelectWithReport(q.Attrs) })
	}
	return res
}

// disjointCoverPair finds an attribute pair (a, b) that never co-occurs
// in a single entity but does co-occur in at least one partition's
// attribute synopsis — the shape where record-level pruning matters and
// partition-level pruning cannot help.
func disjointCoverPair(syns []*synopsis.Set, tbl *table.Table) (int, int, bool) {
	co := make(map[[2]int]struct{})
	var scratch []int
	for _, s := range syns {
		scratch = s.Elements(scratch[:0])
		for i := 0; i < len(scratch); i++ {
			for j := i + 1; j < len(scratch); j++ {
				co[[2]int{scratch[i], scratch[j]}] = struct{}{}
			}
		}
	}
	for _, pv := range tbl.Partitions() {
		attrs := pv.Synopsis.Elements(nil)
		// Bound the pair search per partition; wide synopses would make
		// it quadratic in the hundreds otherwise.
		if len(attrs) > 48 {
			attrs = attrs[:48]
		}
		for i := 0; i < len(attrs); i++ {
			for j := i + 1; j < len(attrs); j++ {
				if _, seen := co[[2]int{attrs[i], attrs[j]}]; !seen {
					return attrs[i], attrs[j], true
				}
			}
		}
	}
	return 0, 0, false
}

// Print renders the baseline like the other experiment reports.
func (r ScanBenchResult) Print(w io.Writer) {
	fprintf(w, "SCAN kernel (GOMAXPROCS=%d, %d CPUs, %d entities, %d selective of %d queries, sel<=%.2f)\n",
		r.GOMAXPROCS, r.NumCPU, r.Entities, r.SelectiveQueries, r.Queries, r.SelectivityCut)
	fprintf(w, "  coarse arm (B=%d):\n", r.PartitionMaxSize)
	fprintf(w, "    sidecar baseline: %.0f q/s (%.1f us/query)\n", r.SidecarQPS, r.SidecarUsPerQ)
	fprintf(w, "    bitmap kernel:    %.0f q/s (%.1f us/query)\n", r.BitmapQPS, r.BitmapUsPerQ)
	fprintf(w, "    speedup: %.2fx (budget %.1fx, within=%v)\n", r.Speedup, r.SpeedupBudget, r.WithinBudget)
	fprintf(w, "    kernel: %d word ops, %d candidates (%.1f records ruled per word op)\n",
		r.BitmapWords, r.BitmapHits, r.RecordsPerWordOp)
	fprintf(w, "  clustered arm (B=%d): %.0f -> %.0f q/s (%.2fx; decode-bound, pruning already concentrated)\n",
		r.ClusteredPartitionMaxSize, r.ClusteredSidecarQPS, r.ClusteredBitmapQPS, r.ClusteredSpeedup)
	fprintf(w, "  equivalence: %d queries bitmap==sidecar: %v\n", r.EquivalenceQueries, r.EquivalenceOK)
	fprintf(w, "  cold prune: %d frozen partitions, probe touched %d, cold bytes %d (zero-cold ok=%v)\n",
		r.FrozenPartitions, r.PruneProbePartitions, r.PruneProbeColdBytes, r.PruneZeroColdOK)
}
