package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cinderella"
	"cinderella/client"
	"cinderella/internal/obs"
	"cinderella/internal/server"
	"cinderella/internal/wire"
)

// ServerBench measures what group commit buys the service layer: the
// durable-insert throughput of N concurrent writers when every write
// pays its own WAL fsync versus when a single batching committer
// coalesces the acknowledgements (internal/server). Both modes run
// against a real WAL on disk, so the speedup is the fsync amortization
// the paper's durability story needs, not a micro-benchmark artifact.
// The acceptance bar for this repo is GroupSpeedup ≥ 3 at 64 clients;
// cmd/cinderella-bench serializes the result as BENCH_server.json.

// ServerBenchResult compares per-op sync against group commit.
type ServerBenchResult struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Clients    int     `json:"clients"`
	SecsPerRun float64 `json:"secs_per_run"`

	// Direct calls into DurableTable: the pure storage-layer comparison.
	PerOpOpsPerSec float64 `json:"per_op_ops_per_sec"`
	PerOpSyncs     int64   `json:"per_op_syncs"`
	GroupOpsPerSec float64 `json:"group_ops_per_sec"`
	GroupCommits   int64   `json:"group_commits"`
	GroupMeanBatch float64 `json:"group_mean_batch"`
	GroupSpeedup   float64 `json:"group_speedup"`

	// The same comparison end-to-end over HTTP through the server and the
	// typed client (informational: includes JSON + transport cost).
	HTTPPerOpOpsPerSec float64 `json:"http_per_op_ops_per_sec"`
	HTTPGroupOpsPerSec float64 `json:"http_group_ops_per_sec"`
	HTTPGroupSpeedup   float64 `json:"http_group_speedup"`

	// The binary wire protocol (internal/wire) with client-side batching,
	// sharing the same group committer. This is the network-gap fix: the
	// acceptance bar is WireVsHTTPGroup ≥ 3 at 64 clients.
	WireBatchOpsPerSec float64 `json:"wire_batch_ops_per_sec"`
	WireBytesPerOp     float64 `json:"wire_bytes_per_op"`
	WireOps            int64   `json:"wire_ops"`
	WireFrames         int64   `json:"wire_frames"`
	WireVsHTTPGroup    float64 `json:"wire_vs_http_group"`
}

// ServerBench runs the comparison with 64 concurrent clients and a
// fixed wall-clock budget per mode.
func ServerBench(o Options) ServerBenchResult {
	return serverBench(64, 400*time.Millisecond)
}

func serverBench(clients int, dur time.Duration) ServerBenchResult {
	res := ServerBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Clients:    clients,
		SecsPerRun: dur.Seconds(),
	}

	docs := benchDocs(16384)
	var seq atomic.Uint64
	nextDoc := func() cinderella.Doc { return docs[int(seq.Add(1))%len(docs)] }

	// Direct, per-op sync: every insert pays its own fsync.
	perOpOps, perOpReg := directRun(clients, dur, func(d *cinderella.DurableTable, _ *obs.Registry) func() error {
		return func() error {
			if _, err := d.Insert(nextDoc()); err != nil {
				return err
			}
			return d.Sync()
		}
	})
	res.PerOpOpsPerSec = perOpOps
	res.PerOpSyncs = perOpReg.Counter(obs.CWALSyncs)

	// Direct, group commit: inserts share fsyncs through the committer.
	var com *server.Committer
	groupOps, groupReg := directRun(clients, dur, func(d *cinderella.DurableTable, reg *obs.Registry) func() error {
		com = server.NewCommitter(d, 0, 0, reg)
		return func() error {
			if _, err := d.Insert(nextDoc()); err != nil {
				return err
			}
			return com.Commit(context.Background(), d.LastLSN())
		}
	})
	com.Stop()
	res.GroupOpsPerSec = groupOps
	res.GroupCommits = groupReg.Counter(obs.CGroupCommits)
	if res.GroupCommits > 0 {
		res.GroupMeanBatch = float64(groupReg.Counter(obs.CGroupCommitOps)) / float64(res.GroupCommits)
	}
	if res.PerOpOpsPerSec > 0 {
		res.GroupSpeedup = res.GroupOpsPerSec / res.PerOpOpsPerSec
	}

	// End-to-end over HTTP, both server modes.
	res.HTTPPerOpOpsPerSec = httpRun(clients, dur, true, nextDoc)
	res.HTTPGroupOpsPerSec = httpRun(clients, dur, false, nextDoc)
	if res.HTTPPerOpOpsPerSec > 0 {
		res.HTTPGroupSpeedup = res.HTTPGroupOpsPerSec / res.HTTPPerOpOpsPerSec
	}

	// End-to-end over the binary wire protocol with client batching.
	res.WireBatchOpsPerSec, res.WireBytesPerOp, res.WireOps, res.WireFrames = wireRun(clients, dur, nextDoc)
	if res.HTTPGroupOpsPerSec > 0 {
		res.WireVsHTTPGroup = res.WireBatchOpsPerSec / res.HTTPGroupOpsPerSec
	}
	return res
}

// directRun opens a fresh WAL-backed table, lets setup build the
// per-worker op, and hammers it from `clients` goroutines for dur.
func directRun(clients int, dur time.Duration, setup func(*cinderella.DurableTable, *obs.Registry) func() error) (opsPerSec float64, reg *obs.Registry) {
	dir, err := os.MkdirTemp("", "cinderella-serverbench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	reg = obs.New(obs.Options{})
	d, err := cinderella.OpenFile(filepath.Join(dir, "bench.wal"), cinderella.Config{
		PartitionSizeLimit: 4096,
		Obs:                reg,
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()

	op := setup(d, reg)
	var acked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := op(); err != nil {
					panic(err)
				}
				acked.Add(1)
			}
		}()
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(acked.Load()) / elapsed.Seconds(), reg
}

// httpRun measures acked inserts/s through a real Server + Client pair,
// with the server either fsyncing per op or group-committing.
func httpRun(clients int, dur time.Duration, perOpSync bool, nextDoc func() cinderella.Doc) float64 {
	dir, err := os.MkdirTemp("", "cinderella-serverbench-http")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	d, err := cinderella.OpenFile(filepath.Join(dir, "bench.wal"), cinderella.Config{
		PartitionSizeLimit: 4096,
	})
	if err != nil {
		panic(err)
	}
	srv := server.New(d, server.Config{
		MaxInflight: clients,
		MaxQueue:    clients,
		PerOpSync:   perOpSync,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Finish(false)
	}()

	cl, err := client.New(ts.URL)
	if err != nil {
		panic(err)
	}
	var acked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.Insert(context.Background(), nextDoc()); err != nil {
					panic(err)
				}
				acked.Add(1)
			}
		}()
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(acked.Load()) / elapsed.Seconds()
}

// wireRun measures acked inserts/s through the binary wire server and
// the batching binary client, sharing a group committer the way
// cinderellad wires them together. Returns throughput, frame bytes per
// acked op, and the server's op/frame counters (frames < ops shows the
// client batching at work).
func wireRun(clients int, dur time.Duration, nextDoc func() cinderella.Doc) (opsPerSec, bytesPerOp float64, ops, frames int64) {
	dir, err := os.MkdirTemp("", "cinderella-serverbench-wire")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	reg := obs.New(obs.Options{})
	d, err := cinderella.OpenFile(filepath.Join(dir, "bench.wal"), cinderella.Config{
		PartitionSizeLimit: 4096,
		Obs:                reg,
	})
	if err != nil {
		panic(err)
	}
	com := server.NewCommitter(d, 0, 0, reg)
	wsrv := wire.New(d, com, wire.Config{Obs: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go wsrv.Serve(ln)

	conns := clients/8 + 1
	if conns > 16 {
		conns = 16
	}
	bc, err := client.NewBinary(ln.Addr().String(), client.WithConns(conns))
	if err != nil {
		panic(err)
	}
	defer func() {
		bc.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		wsrv.Shutdown(ctx)
		cancel()
		com.Stop()
		d.Close()
	}()

	var acked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := bc.Insert(context.Background(), nextDoc()); err != nil {
					panic(err)
				}
				acked.Add(1)
			}
		}()
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	opsPerSec = float64(acked.Load()) / elapsed.Seconds()
	if n := acked.Load(); n > 0 {
		bytesPerOp = float64(bc.BytesSent()+bc.BytesReceived()) / float64(n)
	}
	return opsPerSec, bytesPerOp, reg.Counter(obs.CWireOps), reg.Counter(obs.CWireFrames)
}

// benchDocs builds a pool of small documents cycling through a few
// schema shapes so the partitioner has real (if light) work to do. The
// pool is built outside the timed region: the benchmark measures the
// cost of durability, not of allocating request payloads. Inserting a
// pooled doc repeatedly is safe — Insert only reads the map.
func benchDocs(n int) []cinderella.Doc {
	docs := make([]cinderella.Doc, n)
	for i := range docs {
		doc := cinderella.Doc{"id": int64(i), "name": fmt.Sprintf("entity-%d", i)}
		switch i % 3 {
		case 0:
			doc["population"] = int64(i * 17)
		case 1:
			doc["elevation"] = float64(i) * 0.25
		default:
			doc["kind"] = "irregular"
		}
		docs[i] = doc
	}
	return docs
}

// Print renders the comparison like the other experiment reports.
func (r ServerBenchResult) Print(w io.Writer) {
	fprintf(w, "SERVER group commit (GOMAXPROCS=%d, %d clients, %.1fs per mode)\n",
		r.GOMAXPROCS, r.Clients, r.SecsPerRun)
	fprintf(w, "  direct:  per-op sync %.0f ops/s (%d fsyncs), group commit %.0f ops/s "+
		"(%d commits, mean batch %.1f) — %.1fx\n",
		r.PerOpOpsPerSec, r.PerOpSyncs, r.GroupOpsPerSec,
		r.GroupCommits, r.GroupMeanBatch, r.GroupSpeedup)
	fprintf(w, "  http:    per-op sync %.0f ops/s, group commit %.0f ops/s — %.1fx\n",
		r.HTTPPerOpOpsPerSec, r.HTTPGroupOpsPerSec, r.HTTPGroupSpeedup)
	fprintf(w, "  binary:  batched wire %.0f ops/s (%.1f bytes/op, %d ops over %d frames) — %.1fx vs http group\n",
		r.WireBatchOpsPerSec, r.WireBytesPerOp, r.WireOps, r.WireFrames, r.WireVsHTTPGroup)
}
