package experiments

import (
	"bytes"
	"testing"
	"time"
)

// TestServerBenchSmoke runs the group-commit comparison at a tiny scale:
// both modes must make progress and the group path must coalesce.
func TestServerBenchSmoke(t *testing.T) {
	r := serverBench(8, 60*time.Millisecond)
	if r.PerOpOpsPerSec <= 0 || r.GroupOpsPerSec <= 0 {
		t.Fatalf("no progress: per-op %.0f ops/s, group %.0f ops/s", r.PerOpOpsPerSec, r.GroupOpsPerSec)
	}
	if r.HTTPPerOpOpsPerSec <= 0 || r.HTTPGroupOpsPerSec <= 0 {
		t.Fatalf("no HTTP progress: %.0f / %.0f ops/s", r.HTTPPerOpOpsPerSec, r.HTTPGroupOpsPerSec)
	}
	if r.GroupCommits <= 0 || r.GroupMeanBatch < 1 {
		t.Fatalf("committer never batched: %d commits, mean %.1f", r.GroupCommits, r.GroupMeanBatch)
	}
	if r.WireBatchOpsPerSec <= 0 || r.WireOps <= 0 {
		t.Fatalf("no wire progress: %.0f ops/s, %d ops", r.WireBatchOpsPerSec, r.WireOps)
	}
	if r.WireFrames >= r.WireOps {
		t.Fatalf("wire client never batched: %d frames for %d ops", r.WireFrames, r.WireOps)
	}
	// No throughput assertion here — 60ms on a loaded CI box is noise
	// territory; cmd/cinderella-bench -exp server runs the real thing.
	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}
