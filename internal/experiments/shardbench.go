package experiments

import (
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cinderella"
	"cinderella/internal/datagen"
	"cinderella/internal/entity"
	"cinderella/internal/shard"
	"cinderella/internal/workload"
)

// ShardBench measures what hash-sharding the write path buys: aggregate
// durable-insert throughput of W concurrent writers against a Sharded
// store at N ∈ {1, 2, 4, 8} shards, on the DBpedia-style workload with a
// deliberately small B so the catalog grows into the thousands. Each
// shard runs an independent Cinderella partitioner over ~1/N of the
// data, so the O(#partitions) rating scan per insert does ~N× less work
// — the speedup is algorithmic (catalog-size reduction), not just
// core-count, and survives on machines with few cores. The run also
// checks the two things sharding must not cost: EFFICIENCY (Definition
// 1, measured over the representative query workload through the
// cross-shard fan-out) within 10% of unsharded, and durability — every
// acknowledged insert is present after Sync + Close + reopen (replay).
// cmd/cinderella-bench serializes the result as BENCH_shard.json.

// ShardRunResult is one sharding degree's measurement.
type ShardRunResult struct {
	Shards          int     `json:"shards"`
	InsertOpsPerSec float64 `json:"insert_ops_per_sec"`
	InsertWallSecs  float64 `json:"insert_wall_secs"`
	Partitions      int     `json:"partitions"`
	Efficiency      float64 `json:"efficiency"`
	Acked           int     `json:"acked"`
	ReopenDocs      int     `json:"reopen_docs"`
}

// ShardBenchResult is the scaling series plus the acceptance summary.
type ShardBenchResult struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Entities   int     `json:"entities"`
	Workers    int     `json:"workers"`
	B          int64   `json:"b"`
	W          float64 `json:"w"`
	Queries    int     `json:"queries"`

	Configs []ShardRunResult `json:"configs"`

	// Speedup8x is insert throughput at 8 shards over 1 shard; the
	// acceptance bar is ≥ 3. EfficiencyDelta8x is |eff(8)−eff(1)|/eff(1)
	// (bar: ≤ 0.10). DrainLossless is true iff every config's reopen
	// recount matched its acknowledged inserts.
	Speedup8x         float64 `json:"speedup_8x"`
	EfficiencyDelta8x float64 `json:"efficiency_delta_8x_vs_1"`
	DrainLossless     bool    `json:"drain_lossless"`
}

// shardBenchB keeps per-shard catalogs large enough that the insert
// path's rating scan dominates: at B=100 the 200k-entity workload builds
// a ~5000-partition unsharded catalog. The weight is the paper's
// "purer partitions" end (w=0.2): purity enforced by the rating itself
// transfers to small per-shard catalogs, where at w=0.5 purity leans on
// candidate diversity — which sharding divides by N — and EFFICIENCY
// degrades past the 10% acceptance bar.
const (
	shardBenchB = 100
	shardBenchW = 0.2
)

// ShardBench runs the scaling series at o's scale with 8 writer
// goroutines. On boxes with GOMAXPROCS < 8 it raises GOMAXPROCS to 8
// for the duration (and records NumCPU honestly): the sharded speedup
// is catalog-size reduction, so it does not depend on physical cores,
// but the writers need scheduler slots to interleave.
func ShardBench(o Options) ShardBenchResult {
	o = o.withDefaults()
	const workers = 8
	res := ShardBenchResult{
		NumCPU:   runtime.NumCPU(),
		Entities: o.Entities,
		Workers:  workers,
		B:        shardBenchB,
		W:        shardBenchW,
	}
	if runtime.GOMAXPROCS(0) < workers {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}
	res.GOMAXPROCS = runtime.GOMAXPROCS(0)

	ds := dataset(o)
	docs := shardBenchDocs(ds)
	queries := shardQueryAttrs(ds, buildWorkload(ds, o))
	res.Queries = len(queries)

	res.DrainLossless = true
	for _, n := range []int{1, 2, 4, 8} {
		run := shardRun(docs, queries, n, workers)
		res.Configs = append(res.Configs, run)
		if run.ReopenDocs != run.Acked {
			res.DrainLossless = false
		}
	}
	first, last := res.Configs[0], res.Configs[len(res.Configs)-1]
	if first.InsertOpsPerSec > 0 {
		res.Speedup8x = last.InsertOpsPerSec / first.InsertOpsPerSec
	}
	if first.Efficiency > 0 {
		d := (last.Efficiency - first.Efficiency) / first.Efficiency
		if d < 0 {
			d = -d
		}
		res.EfficiencyDelta8x = d
	}
	return res
}

// shardRun loads docs into a fresh n-shard store from `workers`
// goroutines, measures wall-clock throughput (inserts plus one final
// vector sync, so every acked doc is durable inside the timed region),
// runs the query workload for EFFICIENCY, then closes, reopens (full
// WAL replay), and recounts.
func shardRun(docs []cinderella.Doc, queries [][]string, n, workers int) ShardRunResult {
	dir, err := os.MkdirTemp("", "cinderella-shardbench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	cfg := shard.Options{Shards: n, Config: cinderella.Config{
		Weight:             shardBenchW,
		PartitionSizeLimit: shardBenchB,
	}}
	s, err := shard.Open(dir, cfg)
	if err != nil {
		panic(err)
	}

	var next, acked atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				if _, err := s.Insert(docs[i]); err != nil {
					panic(err)
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := s.Sync(); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	run := ShardRunResult{
		Shards:          n,
		InsertOpsPerSec: float64(acked.Load()) / elapsed.Seconds(),
		InsertWallSecs:  elapsed.Seconds(),
		Partitions:      len(s.Partitions()),
		Acked:           int(acked.Load()),
	}

	// Definition 1 over the representative queries, through the
	// cross-shard fan-out: relevant records read over total records
	// read (record counts on both sides, unit-consistent).
	var scanned, returned int64
	for _, attrs := range queries {
		_, rep := s.QueryWithReport(attrs...)
		scanned += int64(rep.EntitiesScanned)
		returned += int64(rep.EntitiesReturned)
	}
	if scanned > 0 {
		run.Efficiency = float64(returned) / float64(scanned)
	}

	if err := s.Close(); err != nil {
		panic(err)
	}
	re, err := shard.Open(dir, cfg)
	if err != nil {
		panic(err)
	}
	run.ReopenDocs = re.Len()
	if err := re.Close(); err != nil {
		panic(err)
	}
	return run
}

// shardBenchDocs converts the generated entities to root-level Docs so
// the bench exercises the same path the daemon serves (dictionary
// lookups included).
func shardBenchDocs(ds *datagen.Dataset) []cinderella.Doc {
	docs := make([]cinderella.Doc, len(ds.Entities))
	for i, e := range ds.Entities {
		doc := make(cinderella.Doc, e.NumAttrs())
		for _, f := range e.Fields() {
			name := ds.Dict.Name(f.Attr)
			switch f.Value.Kind() {
			case entity.KindInt:
				doc[name] = f.Value.AsInt()
			case entity.KindFloat:
				doc[name] = f.Value.AsFloat()
			case entity.KindString:
				doc[name] = f.Value.AsString()
			}
		}
		docs[i] = doc
	}
	return docs
}

// shardQueryAttrs renders the representative queries as attribute-name
// lists for the root-level Query API.
func shardQueryAttrs(ds *datagen.Dataset, qs []workload.Query) [][]string {
	out := make([][]string, 0, len(qs))
	for _, q := range qs {
		var names []string
		q.Attrs.ForEach(func(a int) {
			names = append(names, ds.Dict.Name(a))
		})
		out = append(out, names)
	}
	return out
}

// Print renders the scaling series like the other experiment reports.
func (r ShardBenchResult) Print(w io.Writer) {
	fprintf(w, "SHARD scaling (GOMAXPROCS=%d, %d CPUs, %d entities, B=%d, w=%.1f, %d writers, %d queries)\n",
		r.GOMAXPROCS, r.NumCPU, r.Entities, r.B, r.W, r.Workers, r.Queries)
	for _, c := range r.Configs {
		fprintf(w, "  %d shard(s): %8.0f inserts/s (%.2fs), %4d partitions, efficiency %.4f, reopen %d/%d\n",
			c.Shards, c.InsertOpsPerSec, c.InsertWallSecs, c.Partitions,
			c.Efficiency, c.ReopenDocs, c.Acked)
	}
	fprintf(w, "  8x vs 1x: %.2fx throughput, efficiency delta %.2f%%, drain lossless: %v\n",
		r.Speedup8x, r.EfficiencyDelta8x*100, r.DrainLossless)
}
