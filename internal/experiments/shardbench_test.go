package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestShardBenchSmoke runs the scaling series at a tiny scale: every
// config must load everything, survive the reopen recount, and report a
// sane EFFICIENCY. No speedup assertion — at this scale the catalogs
// are too small for the rating scan to dominate; cmd/cinderella-bench
// -exp shard runs the real thing.
func TestShardBenchSmoke(t *testing.T) {
	r := ShardBench(small())
	if len(r.Configs) != 4 {
		t.Fatalf("want 4 configs, got %d", len(r.Configs))
	}
	for _, c := range r.Configs {
		if c.Acked != r.Entities {
			t.Fatalf("%d shards: acked %d of %d inserts", c.Shards, c.Acked, r.Entities)
		}
		if c.ReopenDocs != c.Acked {
			t.Fatalf("%d shards: reopen recount %d != acked %d", c.Shards, c.ReopenDocs, c.Acked)
		}
		if c.InsertOpsPerSec <= 0 || c.Partitions <= 0 {
			t.Fatalf("%d shards: no progress: %+v", c.Shards, c)
		}
		if c.Efficiency <= 0 || c.Efficiency > 1 {
			t.Fatalf("%d shards: efficiency %v out of (0,1]", c.Shards, c.Efficiency)
		}
	}
	if !r.DrainLossless {
		t.Fatal("drain reported lossy despite matching recounts")
	}
	if r.GOMAXPROCS < r.Workers {
		t.Fatalf("GOMAXPROCS %d not raised to the %d writers", r.GOMAXPROCS, r.Workers)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "SHARD scaling") {
		t.Fatalf("Print output wrong: %q", buf.String())
	}
}
