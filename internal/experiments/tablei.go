package experiments

import (
	"io"
	"math"
	"runtime"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/metrics"
	"cinderella/internal/table"
	"cinderella/internal/tpch"
	"cinderella/internal/tpchq"
	"cinderella/internal/workload"
)

// TableIRow is one scenario of the paper's Table I.
type TableIRow struct {
	Scenario   string
	B          int64 // 0 for the baseline
	Total      time.Duration
	Percent    float64 // relative to the baseline
	Partitions int
	PureSchema bool // all partitions exactly match a TPC-H table schema
}

// TableIResult is the full Table I comparison.
type TableIResult struct {
	SF   float64
	Rows []TableIRow
}

// TableI loads TPC-H-style data at o.TPCHSF and measures the total
// execution time of all 22 queries on (a) the regular tables and (b)
// Cinderella-partitioned universal tables with B ∈ {500, 2000, 10000} —
// the paper's scenarios Standard / Cinderella I / II / III.
func TableI(o Options) TableIResult {
	o = o.withDefaults()
	data := tpch.Generate(o.TPCHSF, o.Seed)

	res := TableIResult{SF: o.TPCHSF}

	// Baseline: one stored table per TPC-H table, so both sides pay the
	// same storage-scan and decode costs (like the paper's PostgreSQL
	// baseline).
	base := runAll22(tpch.NewStoredCatalog(data))
	res.Rows = append(res.Rows, TableIRow{
		Scenario: "Standard TPC-H", Total: base, Percent: 100,
	})

	for i, b := range []int64{500, 2000, 10000} {
		tbl := table.New(table.Config{
			Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: b}),
		})
		tpch.LoadUniversal(data, tbl)
		cat := tpch.NewUniversalCatalog(tbl)
		total := runAll22(cat)
		pure, nparts := tpch.SchemaPurity(tbl)
		res.Rows = append(res.Rows, TableIRow{
			Scenario:   []string{"Cinderella I", "Cinderella II", "Cinderella III"}[i],
			B:          b,
			Total:      total,
			Percent:    100 * float64(total) / float64(base),
			Partitions: nparts,
			PureSchema: pure == nparts,
		})
	}
	return res
}

// runAll22 measures the 22-query suite: one untimed warm-up round, a GC
// to isolate scenarios from each other's garbage, then the best of two
// timed rounds (wall-clock noise at second-scale runs otherwise swamps
// the few-percent differences the experiment is about).
func runAll22(c tpch.Catalog) time.Duration {
	for _, q := range tpchq.All {
		q.Run(c)
	}
	best := time.Duration(math.MaxInt64)
	for round := 0; round < 2; round++ {
		runtime.GC()
		start := time.Now()
		for _, q := range tpchq.All {
			q.Run(c)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// Print renders Table I in the paper's layout.
func (r TableIResult) Print(w io.Writer) {
	fprintf(w, "Table I — query execution time on regular data (TPC-H-style, SF %.3g)\n", r.SF)
	fprintf(w, "  %-18s %-22s %14s %10s %12s %s\n",
		"Scenario", "Partition size limit", "total time", "percent", "partitions", "schema-pure")
	for _, row := range r.Rows {
		lim := "—"
		if row.B > 0 {
			lim = fmt_int(row.B) + " entities"
		}
		pure := ""
		if row.B > 0 {
			if row.PureSchema {
				pure = "yes"
			} else {
				pure = "NO"
			}
		}
		fprintf(w, "  %-18s %-22s %14v %9.2f%% %12d %s\n",
			row.Scenario, lim, row.Total.Round(time.Millisecond), row.Percent, row.Partitions, pure)
	}
}

func fmt_int(n int64) string {
	// Small helper to render 10000 as "10 000" like the paper.
	s := ""
	digits := []byte{}
	for n > 0 {
		digits = append(digits, byte('0'+n%10))
		n /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		s += string(digits[i])
		if i%3 == 0 && i != 0 {
			s += " "
		}
	}
	return s
}

// --- Efficiency: Definition 1 across strategies ---

// EfficiencyRow reports the EFFICIENCY of one partitioning strategy.
type EfficiencyRow struct {
	Strategy   string
	Partitions int
	Efficiency float64
}

// EfficiencyResult compares strategies on the DBpedia-like workload.
type EfficiencyResult struct {
	Rows []EfficiencyRow
}

// Efficiency computes Definition 1 for the universal table, hash,
// round-robin, schema-exact, and Cinderella partitionings under the
// representative workload.
func Efficiency(o Options) EfficiencyResult {
	o = o.withDefaults()
	ds := dataset(o)
	queries := buildWorkload(ds, o)
	qsyns := workload.Synopses(queries)

	strategies := []namedAssigner{
		{"universal", func() core.Assigner { return core.NewSingle(core.SizeBytes) }},
		{"hash-16", func() core.Assigner { return core.NewHash(16, core.SizeBytes) }},
		{"roundrobin", func() core.Assigner { return core.NewRoundRobin(1<<20, core.SizeBytes) }},
		{"cinderella w=0.2", func() core.Assigner { return cind(0.2, 5000) }},
		{"cinderella w=0.5", func() core.Assigner { return cind(0.5, 5000) }},
		{"schema-exact", func() core.Assigner { return core.NewSchemaExact(0, core.SizeBytes) }},
	}

	// SIZE() must use the same unit on both sides of Definition 1;
	// entity counts are exact and unit-consistent (logical entity sizes
	// vs. encoded record bytes would skew the ratio).
	var res EfficiencyResult
	for _, s := range strategies {
		tbl, _ := loadTable(ds, s.mk(), false)
		ents := make([]metrics.Sized, 0, tbl.Len())
		for _, syn := range tbl.EntitySynopses() {
			ents = append(ents, metrics.Sized{Syn: syn, Size: 1})
		}
		parts := make([]metrics.Sized, 0, tbl.NumPartitions())
		for _, pv := range tbl.Partitions() {
			parts = append(parts, metrics.Sized{Syn: pv.Synopsis, Size: int64(pv.Entities)})
		}
		eff := metrics.Efficiency(ents, parts, qsyns)
		res.Rows = append(res.Rows, EfficiencyRow{
			Strategy:   s.label,
			Partitions: tbl.NumPartitions(),
			Efficiency: eff,
		})
	}
	return res
}

// Print renders the efficiency comparison.
func (r EfficiencyResult) Print(w io.Writer) {
	fprintf(w, "EFFICIENCY (Definition 1) under the representative workload\n")
	fprintf(w, "  %-18s %12s %12s\n", "strategy", "partitions", "efficiency")
	for _, row := range r.Rows {
		fprintf(w, "  %-18s %12d %12.4f\n", row.Strategy, row.Partitions, row.Efficiency)
	}
}

// Get returns the efficiency of a strategy by label (tests).
func (r EfficiencyResult) Get(label string) float64 {
	for _, row := range r.Rows {
		if row.Strategy == label {
			return row.Efficiency
		}
	}
	return -1
}
