package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"cinderella"
	"cinderella/internal/obs"
	"cinderella/internal/tier"
)

// TierBench measures heat-driven tiered storage against the workload it
// exists for: a Zipf-skewed read mix where a handful of attribute
// groups absorb nearly all queries and the long tail goes quiet. The
// tiering manager freezes the quiet partitions into compressed cold
// segments until the resident footprint fits a budget of ~50% of the
// working set, and the bench then proves the four claims the design
// makes:
//
//   - the budget is actually met (WithinBudget),
//   - cold data really compresses (compressed/raw < 0.6),
//   - queries over the hot set pay nothing for the cold tier — hot p99
//     with half the table frozen stays within 10% of the untiered p99,
//   - pruning needs no cold bytes: a hot-set query with frozen
//     partitions present charges zero cold reads, because the pruning
//     metadata (synopsis, zone maps, sidecar) stays hot.
//
// A final close/reopen proves the durable half: the WAL replay recounts
// exactly and the tier manifest re-freezes the cold set.

// TierBenchResult is serialized as BENCH_tier.json.
type TierBenchResult struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entities   int     `json:"entities"`
	Groups     int     `json:"groups"`
	HotGroups  int     `json:"hot_groups"`
	ZipfS      float64 `json:"zipf_s"`
	HotQueries int     `json:"hot_queries"` // p99 sample count per phase
	Rounds     int     `json:"rounds"`      // settle loop ticks

	// Resident-byte budget: the hot-tier ceiling is half the working
	// set, and the manager must actually get under it.
	WorkingSetBytes     int64 `json:"working_set_bytes"`
	TargetResidentBytes int64 `json:"target_resident_bytes"`
	ResidentBytesAfter  int64 `json:"resident_bytes_after"`
	WithinBudget        bool  `json:"within_budget"`

	FrozenPartitions int `json:"frozen_partitions"`
	HotPartitions    int `json:"hot_partitions"`

	// Compression across the frozen set.
	ColdCompressedBytes int64   `json:"cold_compressed_bytes"`
	ColdRawBytes        int64   `json:"cold_raw_bytes"`
	CompressRatio       float64 `json:"compress_ratio"`
	CompressOK          bool    `json:"compress_ok"`

	// Hot-path tax: p99 over the identical hot-set query sequence,
	// before tiering and with the cold tier in place.
	HotP99UntieredMs   float64 `json:"hot_p99_untiered_ms"`
	HotP99TieredMs     float64 `json:"hot_p99_tiered_ms"`
	HotP99OverheadPct  float64 `json:"hot_p99_overhead_pct"`
	HotP99WithinBudget bool    `json:"hot_p99_within_budget"`

	// Pruning honesty: one hot-set query with the cold tier populated
	// must charge zero cold pages/bytes; a full scan must charge a
	// nonzero amount (the I/O accounting does not hide cold reads).
	PruneColdPagesRead int64 `json:"prune_cold_pages_read"`
	PruneColdBytesRead int64 `json:"prune_cold_bytes_read"`
	PruneZeroColdOK    bool  `json:"prune_zero_cold_ok"`
	ColdProbeBytesRead int64 `json:"cold_probe_bytes_read"`
	ColdProbeChargedOK bool  `json:"cold_probe_charged_ok"`

	Freezes int64 `json:"freezes"`
	Thaws   int64 `json:"thaws"`

	// Durability: reopen after freezing must recount exactly and
	// restore the frozen set from the tier manifest.
	ReopenCount     int  `json:"reopen_count"`
	ReopenCountOK   bool `json:"reopen_count_ok"`
	ReopenFrozen    int  `json:"reopen_frozen"`
	ReopenBothTiers bool `json:"reopen_both_tiers"`
}

// tierPad is the compressible payload every entity carries so partition
// pages have realistic bulk for deflate to chew on.
var tierPad = strings.Repeat("adaptive-online-partitioning ", 4)

// tierDoc builds entity i of group k: two attributes common to the
// whole table plus one group attribute, so partitions cluster by group
// and a query on g<k> prunes every other group's partitions.
func tierDoc(i, k int) cinderella.Doc {
	return cinderella.Doc{
		"c0":                  i,
		"pad":                 fmt.Sprintf("%s%06d", tierPad, i),
		fmt.Sprintf("g%d", k): 1,
	}
}

// TierBench runs the tiering experiment at o's scale.
func TierBench(o Options) (TierBenchResult, error) {
	o = o.withDefaults()
	res := TierBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Entities:   o.Entities,
		ZipfS:      1.3,
	}

	// 64 groups at full scale; shrink with the table so every group
	// still spans at least a couple of partitions.
	groups := 64
	if o.Entities < 64*64 {
		groups = maxInt(8, o.Entities/64)
	}
	res.Groups = groups
	perGroup := o.Entities / groups

	dir, err := os.MkdirTemp("", "cinderella-tierbench")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "tier.wal")

	reg := obs.New(obs.Options{})
	cfg := cinderella.Config{Weight: 0.8, PartitionSizeLimit: 128, Obs: reg}
	dt, err := cinderella.OpenFile(path, cfg)
	if err != nil {
		return res, err
	}

	// Group-contiguous insert order: the partitioner sees runs of
	// identical schemas and builds group-pure partitions, the layout a
	// converged Cinderella table has anyway.
	for i := 0; i < o.Entities; i++ {
		k := i / perGroup
		if k >= groups {
			k = groups - 1
		}
		if _, err := dt.Insert(tierDoc(i, k)); err != nil {
			return res, err
		}
	}

	// The Zipf query mix: group k is drawn with probability ∝ (1+k)^-s,
	// so low-numbered groups absorb nearly all heat. The hot set is the
	// top 8 groups — every other group's partitions are tiering fodder.
	z := rand.NewZipf(rand.New(rand.NewSource(o.Seed)), res.ZipfS, 1, uint64(groups-1))
	const mixLen = 2000
	hotGroups := maxInt(2, groups/8)
	if hotGroups > 8 {
		hotGroups = 8
	}
	res.HotGroups = hotGroups
	var fullSeq, hotSeq []int
	for i := 0; i < mixLen; i++ {
		k := int(z.Uint64())
		fullSeq = append(fullSeq, k)
		if k < hotGroups {
			hotSeq = append(hotSeq, k)
		}
	}
	res.HotQueries = len(hotSeq)
	attr := func(k int) string { return fmt.Sprintf("g%d", k) }

	// Phase 1 — untiered baseline. One full-mix sweep establishes the
	// heat map (tail groups included, so mid-heat partitions exist and
	// must cool off before freezing); the hot subsequence is then timed.
	for _, k := range fullSeq {
		dt.Query(attr(k))
	}
	res.HotP99UntieredMs = p99(timeQueries(dt, hotSeq, attr))

	for _, ts := range dt.TierStates() {
		res.WorkingSetBytes += ts.RawBytes
	}
	res.TargetResidentBytes = res.WorkingSetBytes / 2

	// Phase 2 — tiering settles. Each round keeps the hot groups' heat
	// moving (one query per hot group) and ticks the manager; the tail
	// goes idle and freezes coldest-first until the budget is met.
	mgr := tier.New(tier.Single(dt), reg, tier.Config{
		TargetResidentBytes: res.TargetResidentBytes,
		MinIdleTicks:        2,
		MaxFreezesPerTick:   32,
	})
	defer mgr.Close()
	for res.Rounds = 0; res.Rounds < 96; res.Rounds++ {
		for k := 0; k < hotGroups; k++ {
			dt.Query(attr(k))
		}
		round := mgr.Tick()
		if res.Rounds >= 3 && len(round.Frozen) == 0 {
			break
		}
	}

	var resident int64
	for _, ts := range dt.TierStates() {
		resident += ts.ResidentBytes
		if ts.Frozen {
			res.FrozenPartitions++
			res.ColdCompressedBytes += ts.ResidentBytes
			res.ColdRawBytes += ts.RawBytes
		} else {
			res.HotPartitions++
		}
	}
	res.ResidentBytesAfter = resident
	res.WithinBudget = resident <= res.TargetResidentBytes
	if res.ColdRawBytes > 0 {
		res.CompressRatio = float64(res.ColdCompressedBytes) / float64(res.ColdRawBytes)
	}
	res.CompressOK = res.FrozenPartitions > 0 && res.CompressRatio < 0.6

	// Phase 3 — pruning honesty, then the tiered hot p99 over the same
	// subsequence. The order matters: the prune check needs pristine
	// cold counters, and it must run with the cold tier fully populated.
	dt.ResetIOStats()
	dt.Query(attr(0))
	res.PruneColdPagesRead, res.PruneColdBytesRead = dt.ColdIOStats()
	res.PruneZeroColdOK = res.FrozenPartitions > 0 && res.PruneColdBytesRead == 0 &&
		res.PruneColdPagesRead == 0

	dt.ResetIOStats()
	dt.ScanAll() // touches every partition — the cold toll must show up
	_, res.ColdProbeBytesRead = dt.ColdIOStats()
	res.ColdProbeChargedOK = res.ColdProbeBytesRead > 0

	res.HotP99TieredMs = p99(timeQueries(dt, hotSeq, attr))
	if res.HotP99UntieredMs > 0 {
		res.HotP99OverheadPct = 100 * (res.HotP99TieredMs - res.HotP99UntieredMs) /
			res.HotP99UntieredMs
	}
	// 10% relative, with sub-50µs absolute headroom against timer noise
	// at microsecond-scale query latencies (same budget the recluster
	// bench gives its writer p99).
	res.HotP99WithinBudget = res.HotP99OverheadPct <= 10.0 ||
		res.HotP99TieredMs-res.HotP99UntieredMs <= 0.05

	res.Freezes, res.Thaws = dt.TierCounters()

	// Phase 4 — durability. Close releases the WAL; reopen replays it
	// and the tier manifest re-freezes the cold set.
	inserted := dt.Len()
	if err := dt.Close(); err != nil {
		return res, err
	}
	dt2, err := cinderella.OpenFile(path, cinderella.Config{Weight: 0.8, PartitionSizeLimit: 128})
	if err != nil {
		return res, err
	}
	defer dt2.Close()
	res.ReopenCount = len(dt2.ScanAll())
	res.ReopenCountOK = res.ReopenCount == inserted
	res.ReopenFrozen = len(dt2.FrozenPartitions())
	reopenStates := dt2.TierStates()
	res.ReopenBothTiers = res.ReopenFrozen > 0 && len(reopenStates) > res.ReopenFrozen
	return res, nil
}

// timeQueries returns per-query wall times in milliseconds over the
// sequence: a fresh GC cycle and one warm-up pass, then the best of
// four timed runs per query. Hot queries materialize tens of KB of
// results each, so at the millisecond scale a p99 of single runs just
// measures which queries a GC pause happened to land on; taking the
// min over four runs makes a query's number its actual cost (same
// discipline as runQueries, which the selectivity figures rely on).
func timeQueries(dt *cinderella.DurableTable, seq []int, attr func(int) string) []float64 {
	runtime.GC()
	for _, k := range seq {
		dt.Query(attr(k))
	}
	out := make([]float64, 0, len(seq))
	for _, k := range seq {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 4; i++ {
			start := time.Now()
			dt.Query(attr(k))
			if d := time.Since(start); d < best {
				best = d
			}
		}
		out = append(out, float64(best.Microseconds())/1000)
	}
	return out
}

// Print renders the report like the other experiments.
func (r TierBenchResult) Print(w io.Writer) {
	fprintf(w, "TIER cold-storage budget (GOMAXPROCS=%d, %d entities, %d groups, zipf s=%.1f, %d rounds)\n",
		r.GOMAXPROCS, r.Entities, r.Groups, r.ZipfS, r.Rounds)
	fprintf(w, "  resident: working-set=%dKB target=%dKB after=%dKB within-budget=%v\n",
		r.WorkingSetBytes/1024, r.TargetResidentBytes/1024, r.ResidentBytesAfter/1024, r.WithinBudget)
	fprintf(w, "  tiers: hot=%d frozen=%d (freezes=%d thaws=%d)\n",
		r.HotPartitions, r.FrozenPartitions, r.Freezes, r.Thaws)
	fprintf(w, "  compression: %dKB/%dKB ratio=%.3f ok=%v\n",
		r.ColdCompressedBytes/1024, r.ColdRawBytes/1024, r.CompressRatio, r.CompressOK)
	fprintf(w, "  hot p99: untiered %.3f ms, tiered %.3f ms (%+.2f%%) within-budget=%v (%d samples)\n",
		r.HotP99UntieredMs, r.HotP99TieredMs, r.HotP99OverheadPct, r.HotP99WithinBudget, r.HotQueries)
	fprintf(w, "  pruning: cold charge %d pages / %d bytes ok=%v; cold probe charged %d bytes ok=%v\n",
		r.PruneColdPagesRead, r.PruneColdBytesRead, r.PruneZeroColdOK,
		r.ColdProbeBytesRead, r.ColdProbeChargedOK)
	fprintf(w, "  reopen: %d records count-ok=%v frozen=%d both-tiers=%v\n",
		r.ReopenCount, r.ReopenCountOK, r.ReopenFrozen, r.ReopenBothTiers)
}
