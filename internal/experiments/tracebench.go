package experiments

import (
	"io"
	"runtime"
	"time"

	"cinderella/internal/datagen"
	"cinderella/internal/obs"
	"cinderella/internal/table"
	"cinderella/internal/workload"
)

// TraceBench measures what the query-tracing subsystem costs at its
// production defaults: 1-in-64 span sampling with the always-on
// partition heat map, against a registry with the tracer disabled and
// heat collection off. Both variants carry the base telemetry layer
// (whose own cost BENCH_obs.json budgets), so the delta isolates
// tracing: the per-query span skeleton, the heat-map atomic adds, and
// the sampled 1/64th's detail recording. The acceptance budget is
// <= 5 % on the query path; cmd/cinderella-bench serializes the result
// as BENCH_trace.json and scripts/verify.sh gates on WithinBudget.

// TraceBenchResult compares traced against trace-disabled query runs
// and carries the skewed-workload heat-map demo.
type TraceBenchResult struct {
	GOMAXPROCS  int `json:"gomaxprocs"`
	Entities    int `json:"entities"`
	Queries     int `json:"queries"`
	SampleEvery int `json:"sample_every"`

	BaselineMsPerQuery float64 `json:"baseline_ms_per_query"`
	TracedMsPerQuery   float64 `json:"traced_ms_per_query"`
	OverheadPct        float64 `json:"overhead_pct"`
	// WithinBudget holds when the relative overhead is within 5 % or the
	// absolute delta is under 50 µs/query — at sub-millisecond query
	// times a few microseconds of allocator noise can exceed 5 %
	// relative while being far below any meaningful cost.
	WithinBudget bool `json:"within_budget"`

	// Liveness proof for the traced run: sampled span count and heat-map
	// coverage, plus the skew demo — after a skewed query mix, the
	// coldest partitions by Definition-1 read ratio (the background
	// reclusterer's worst-offender shortlist).
	SampledTraces  int64               `json:"sampled_traces"`
	HeatPartitions int                 `json:"heat_partitions"`
	HeatColdest    []obs.PartitionHeat `json:"heat_coldest,omitempty"`
}

// TraceBench runs the comparison at o's scale. Each variant is loaded
// and queried rounds times; the best round counts, filtering allocator
// and scheduler noise like the other overhead benches.
func TraceBench(o Options) TraceBenchResult {
	o = o.withDefaults()
	res := TraceBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Entities:   o.Entities,
	}

	ds := dataset(o)
	queries := buildWorkload(ds, o)
	res.Queries = len(queries)

	const rounds = 3
	var lastReg *obs.Registry
	for i := 0; i < rounds; i++ {
		// Alternate plain/traced inside each round so neither variant
		// systematically benefits from a warmer heap.
		plainReg := obs.New(obs.Options{TraceSampleEvery: -1, DisableHeat: true})
		plainQ := traceRun(ds, queries, plainReg)
		reg := obs.New(obs.Options{})
		tracedQ := traceRun(ds, queries, reg)
		lastReg = reg
		res.SampleEvery = reg.TraceSampleEvery()

		if res.BaselineMsPerQuery == 0 || plainQ < res.BaselineMsPerQuery {
			res.BaselineMsPerQuery = plainQ
		}
		if res.TracedMsPerQuery == 0 || tracedQ < res.TracedMsPerQuery {
			res.TracedMsPerQuery = tracedQ
		}
	}
	if res.BaselineMsPerQuery > 0 {
		res.OverheadPct = 100 * (res.TracedMsPerQuery - res.BaselineMsPerQuery) /
			res.BaselineMsPerQuery
	}
	const absBudgetMs = 0.05 // 50 µs/query of absolute headroom against timer noise
	res.WithinBudget = res.OverheadPct <= 5.0 ||
		res.TracedMsPerQuery-res.BaselineMsPerQuery <= absBudgetMs
	res.SampledTraces = lastReg.Counter(obs.CTraceSampled)

	// Skew demo: hammer the first few workload queries so their touched
	// partitions accumulate reads far beyond their relevance, then ask
	// the heat map for the worst Definition-1 offenders.
	res.HeatColdest, res.HeatPartitions = heatSkewDemo(ds, queries)
	return res
}

// traceRun loads a fresh instrumented table and replays the query
// workload through the traced read path, returning mean ms/query (one
// warm-up pass, then the measured pass).
func traceRun(ds *datagen.Dataset, queries []workload.Query, reg *obs.Registry) float64 {
	tbl := table.New(table.Config{Dict: ds.Dict, Partitioner: cind(0.5, 5000), Obs: reg})
	for _, e := range ds.Entities {
		tbl.Insert(e.Clone())
	}
	if len(queries) == 0 {
		return 0
	}
	for _, q := range queries {
		tbl.SelectWithReport(q.Attrs)
	}
	start := time.Now()
	for _, q := range queries {
		tbl.SelectWithReport(q.Attrs)
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(len(queries))
}

// heatSkewDemo runs a deliberately skewed mix — a handful of hot
// queries repeated many times over the full workload — and returns the
// coldest partitions by read ratio plus total heat coverage.
func heatSkewDemo(ds *datagen.Dataset, queries []workload.Query) ([]obs.PartitionHeat, int) {
	reg := obs.New(obs.Options{})
	tbl := table.New(table.Config{Dict: ds.Dict, Partitioner: cind(0.5, 5000), Obs: reg})
	for _, e := range ds.Entities {
		tbl.Insert(e.Clone())
	}
	hot := queries
	if len(hot) > 3 {
		hot = hot[:3]
	}
	for i := 0; i < 30; i++ {
		for _, q := range hot {
			tbl.SelectWithReport(q.Attrs)
		}
	}
	for _, q := range queries {
		tbl.SelectWithReport(q.Attrs)
	}
	return reg.ColdestPartitions(5, 2), len(reg.HeatSnapshot())
}

// Print renders the comparison like the other experiment reports.
func (r TraceBenchResult) Print(w io.Writer) {
	fprintf(w, "TRACE overhead (GOMAXPROCS=%d, %d entities, %d queries, 1-in-%d sampling, heat on)\n",
		r.GOMAXPROCS, r.Entities, r.Queries, r.SampleEvery)
	fprintf(w, "  query path:   trace-off %.3f ms/q, traced %.3f ms/q (%+.2f%%) within-budget=%v\n",
		r.BaselineMsPerQuery, r.TracedMsPerQuery, r.OverheadPct, r.WithinBudget)
	fprintf(w, "  traced run: sampled-traces=%d heat-partitions=%d\n",
		r.SampledTraces, r.HeatPartitions)
	if len(r.HeatColdest) > 0 {
		fprintf(w, "  coldest partitions after skewed mix (relevant/read, recluster candidates):\n")
		for _, h := range r.HeatColdest {
			fprintf(w, "    partition %-5d queries=%-4d read=%-8d relevant=%-8d ratio=%.3f\n",
				h.Partition, h.Queries, h.RecordsRead, h.RecordsRelevant, h.ReadRatio)
		}
	}
}
