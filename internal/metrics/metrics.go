// Package metrics implements the paper's evaluation measures: the
// partitioning EFFICIENCY of Definition 1, per-partition sparseness, and
// the distribution summaries (histograms, quantiles) behind Figures 4, 7,
// and 8.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"cinderella/internal/synopsis"
)

// Sized pairs a synopsis with a size, describing either an entity or a
// partition for the efficiency computation.
type Sized struct {
	Syn  *synopsis.Set
	Size int64
}

// Efficiency computes Definition 1:
//
//	EFFICIENCY(P) = Σ_{q∈W,e∈T} sgn(|e∧q|)·SIZE(e) / Σ_{q∈W,p∈P} sgn(|p∧q|)·SIZE(p)
//
// i.e. the fraction of read data that is actually relevant to the
// workload. It returns a value in [0,1]; a workload that touches nothing
// yields 1 (vacuously perfect). Efficiency is 0 only if partitions are
// read without any relevant entity, which cannot happen with exact
// synopses, so values near 0 indicate very heterogeneous partitions.
func Efficiency(entities, partitions []Sized, workload []*synopsis.Set) float64 {
	var relevant, read int64
	for _, q := range workload {
		for _, e := range entities {
			if synopsis.Intersects(e.Syn, q) {
				relevant += e.Size
			}
		}
		for _, p := range partitions {
			if synopsis.Intersects(p.Syn, q) {
				read += p.Size
			}
		}
	}
	if read == 0 {
		return 1
	}
	return float64(relevant) / float64(read)
}

// Sparseness returns the fraction of empty cells in the (entities ×
// attributes) grid spanned by the given entity synopses, the measure of
// Figure 7(d). A single-entity group has sparseness 0 by definition of
// its own schema; an empty group yields 0.
func Sparseness(members []*synopsis.Set) float64 {
	if len(members) == 0 {
		return 0
	}
	union := synopsis.New(0)
	var filled int64
	for _, m := range members {
		union.UnionWith(m)
		filled += int64(m.Len())
	}
	total := int64(len(members)) * int64(union.Len())
	if total == 0 {
		return 0
	}
	return 1 - float64(filled)/float64(total)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("metrics: quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary holds the five-number summary plus mean of a sample.
type Summary struct {
	N                          int
	Min, P25, Median, P75, Max float64
	Mean                       float64
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("metrics: summary of empty sample")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return Summary{
		N:      len(xs),
		Min:    Quantile(xs, 0),
		P25:    Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		P75:    Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
		Mean:   sum / float64(len(xs)),
	}
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p25=%.3g med=%.3g p75=%.3g max=%.3g mean=%.3g",
		s.N, s.Min, s.P25, s.Median, s.P75, s.Max, s.Mean)
}

// Histogram counts samples into fixed buckets.
type Histogram struct {
	// Bounds are the upper bucket bounds; a sample x lands in the first
	// bucket with x <= Bounds[i], or the overflow bucket otherwise.
	Bounds []float64
	Counts []int64 // len(Bounds)+1, last is overflow
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not ascending")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// NewLogHistogram returns a histogram with n decade bounds starting at lo:
// lo, 10·lo, 100·lo, … Used for Figure 8's insert latency distribution.
func NewLogHistogram(lo float64, n int) *Histogram {
	bounds := make([]float64, n)
	b := lo
	for i := range bounds {
		bounds[i] = b
		b *= 10
	}
	return NewHistogram(bounds...)
}

// Observe adds a sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	h.Counts[i]++
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BucketLabel renders the range of bucket i for reporting.
func (h *Histogram) BucketLabel(i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("<= %g", h.Bounds[0])
	case i < len(h.Bounds):
		return fmt.Sprintf("(%g, %g]", h.Bounds[i-1], h.Bounds[i])
	default:
		return fmt.Sprintf("> %g", h.Bounds[len(h.Bounds)-1])
	}
}

// FrequencyDistribution computes, for every attribute appearing in the
// entity synopses, the number of entities instantiating it, sorted
// descending: Figure 4(a).
func FrequencyDistribution(entities []*synopsis.Set) []int {
	counts := map[int]int{}
	for _, e := range entities {
		for _, a := range e.Elements(nil) {
			counts[a]++
		}
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// AttrsPerEntity returns the attribute count of every entity: Figure 4(b).
func AttrsPerEntity(entities []*synopsis.Set) []int {
	out := make([]int, len(entities))
	for i, e := range entities {
		out[i] = e.Len()
	}
	return out
}
