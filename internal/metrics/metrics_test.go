package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"cinderella/internal/synopsis"
)

func TestEfficiencyPerfectPartitioning(t *testing.T) {
	// Two schema-pure partitions; each query touches exactly the relevant
	// one, so every read byte is relevant: efficiency 1.
	entities := []Sized{
		{synopsis.Of(1, 2), 10}, {synopsis.Of(1, 2), 10},
		{synopsis.Of(5, 6), 20}, {synopsis.Of(5, 6), 20},
	}
	partitions := []Sized{
		{synopsis.Of(1, 2), 20},
		{synopsis.Of(5, 6), 40},
	}
	workload := []*synopsis.Set{synopsis.Of(1), synopsis.Of(5)}
	if got := Efficiency(entities, partitions, workload); got != 1 {
		t.Fatalf("efficiency = %v, want 1", got)
	}
}

func TestEfficiencyUniversalTable(t *testing.T) {
	// One partition holding everything: a query relevant to half the data
	// reads all of it → efficiency 0.5.
	entities := []Sized{
		{synopsis.Of(1), 10}, {synopsis.Of(2), 10},
	}
	partitions := []Sized{{synopsis.Of(1, 2), 20}}
	workload := []*synopsis.Set{synopsis.Of(1)}
	if got := Efficiency(entities, partitions, workload); got != 0.5 {
		t.Fatalf("efficiency = %v, want 0.5", got)
	}
}

func TestEfficiencyEmptyWorkload(t *testing.T) {
	if got := Efficiency(nil, nil, nil); got != 1 {
		t.Fatalf("efficiency of empty workload = %v, want 1", got)
	}
}

func TestEfficiencyPrunedPartitionNotCharged(t *testing.T) {
	entities := []Sized{
		{synopsis.Of(1), 10},
		{synopsis.Of(9), 1000}, // irrelevant, in its own partition
	}
	partitions := []Sized{
		{synopsis.Of(1), 10},
		{synopsis.Of(9), 1000},
	}
	workload := []*synopsis.Set{synopsis.Of(1)}
	if got := Efficiency(entities, partitions, workload); got != 1 {
		t.Fatalf("pruned partition charged: efficiency = %v", got)
	}
}

func TestPropEfficiencyBounds(t *testing.T) {
	f := func(seeds []uint16) bool {
		var entities []Sized
		part := Sized{Syn: synopsis.New(0)}
		for _, s := range seeds {
			syn := synopsis.Of(int(s % 16))
			entities = append(entities, Sized{syn, int64(s%100) + 1})
			part.Syn.UnionWith(syn)
			part.Size += int64(s%100) + 1
		}
		if len(entities) == 0 {
			return true
		}
		w := []*synopsis.Set{synopsis.Of(3), synopsis.Of(7, 9)}
		got := Efficiency(entities, []Sized{part}, w)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseness(t *testing.T) {
	// 2 entities over union of 4 attrs, 2+2 filled -> 1 - 4/8 = 0.5.
	got := Sparseness([]*synopsis.Set{synopsis.Of(1, 2), synopsis.Of(3, 4)})
	if got != 0.5 {
		t.Fatalf("sparseness = %v, want 0.5", got)
	}
	// Homogeneous group: 0.
	if got := Sparseness([]*synopsis.Set{synopsis.Of(1, 2), synopsis.Of(1, 2)}); got != 0 {
		t.Fatalf("homogeneous sparseness = %v, want 0", got)
	}
	if got := Sparseness(nil); got != 0 {
		t.Fatalf("empty sparseness = %v", got)
	}
	if got := Sparseness([]*synopsis.Set{synopsis.Of()}); got != 0 {
		t.Fatalf("attribute-less sparseness = %v", got)
	}
}

func TestPropSparsenessBounds(t *testing.T) {
	f := func(rows []uint32) bool {
		members := make([]*synopsis.Set, 0, len(rows))
		for _, r := range rows {
			s := synopsis.New(0)
			for b := 0; b < 16; b++ {
				if r&(1<<b) != 0 {
					s.Add(b)
				}
			}
			if !s.Empty() {
				members = append(members, s)
			}
		}
		sp := Sparseness(members)
		return sp >= 0 && sp < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	// Input not mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(nil) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, x := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(x)
	}
	want := []int64{2, 1, 1, 1} // (..1], (1,10], (10,100], overflow
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.BucketLabel(0) != "<= 1" || h.BucketLabel(3) != "> 100" {
		t.Fatalf("labels: %q %q", h.BucketLabel(0), h.BucketLabel(3))
	}
	if h.BucketLabel(1) != "(1, 10]" {
		t.Fatalf("mid label: %q", h.BucketLabel(1))
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds accepted")
		}
	}()
	NewHistogram(10, 1)
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(0.001, 5)
	if len(h.Bounds) != 5 {
		t.Fatalf("bounds = %v", h.Bounds)
	}
	if math.Abs(h.Bounds[4]-10) > 1e-9 {
		t.Fatalf("last bound = %v, want 10", h.Bounds[4])
	}
}

func TestFrequencyDistribution(t *testing.T) {
	es := []*synopsis.Set{
		synopsis.Of(1, 2),
		synopsis.Of(1),
		synopsis.Of(1, 3),
	}
	got := FrequencyDistribution(es)
	want := []int{3, 1, 1}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("freq = %v, want %v", got, want)
	}
}

func TestAttrsPerEntity(t *testing.T) {
	es := []*synopsis.Set{synopsis.Of(1, 2, 3), synopsis.Of(9)}
	got := AttrsPerEntity(es)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("attrs = %v", got)
	}
}
