package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The partition heat map: always-on per-partition access accounting.
//
// Every finished query folds its per-partition scan stats (PartSpan,
// the same data that feeds span trees) into one heatEntry per
// (shard, partition). The map answers the reclusterer's question —
// which partitions are read a lot but rarely relevant — directly: each
// entry carries Definition 1's per-partition numerator (records
// relevant) and denominator (records read), plus the decode/skip split
// and byte volumes, and the snapshot epoch at last touch.
//
// The write path is two atomic adds per counter per touched partition
// behind an RWMutex read-lock map lookup; entries are created once and
// never removed (partition ids are not reused, and the live set is
// bounded), so steady state is lock-free in practice.

// heatKey identifies one partition in one shard (-1 = unsharded).
type heatKey struct {
	shard int32
	pid   uint64
}

// heatEntry is one partition's cumulative access counters.
type heatEntry struct {
	queries       atomic.Int64
	read          atomic.Int64 // records visited by scans (Definition 1 denominator)
	relevant      atomic.Int64 // records returned (Definition 1 numerator)
	decoded       atomic.Int64
	skipped       atomic.Int64
	bytesRead     atomic.Int64
	bytesRelevant atomic.Int64
	bytesSkipped  atomic.Int64
	lastEpoch     atomic.Int64 // snapshot epoch at last touch
	lastQuery     atomic.Int64 // CQueries value at last touch
}

type heatMap struct {
	mu sync.RWMutex
	m  map[heatKey]*heatEntry
}

func newHeatMap() *heatMap {
	return &heatMap{m: make(map[heatKey]*heatEntry)}
}

func (h *heatMap) entry(k heatKey) *heatEntry {
	h.mu.RLock()
	e := h.m[k]
	h.mu.RUnlock()
	if e != nil {
		return e
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if e = h.m[k]; e == nil {
		e = &heatEntry{}
		h.m[k] = e
	}
	return e
}

// note folds one query's partition stats in. parts carry their shard id
// already stamped by FinishQuery.
func (h *heatMap) note(parts []PartSpan, epoch, querySeq int64) {
	for i := range parts {
		p := &parts[i]
		e := h.entry(heatKey{shard: p.Shard, pid: p.Partition})
		e.queries.Add(1)
		e.read.Add(p.Scanned)
		e.relevant.Add(p.Returned)
		e.decoded.Add(p.Decoded)
		e.skipped.Add(p.Skipped)
		e.bytesRead.Add(p.BytesRead)
		e.bytesRelevant.Add(p.BytesRelevant)
		e.bytesSkipped.Add(p.BytesSkipped)
		e.lastEpoch.Store(epoch)
		e.lastQuery.Store(querySeq)
	}
}

// PartitionHeat is one partition's row in the heat snapshot — the
// /debug/heat wire format and the reclusterer's input.
type PartitionHeat struct {
	Shard           int32   `json:"shard"`
	Partition       uint64  `json:"partition"`
	Queries         int64   `json:"queries"`
	RecordsRead     int64   `json:"records_read"`
	RecordsRelevant int64   `json:"records_relevant"`
	RecordsDecoded  int64   `json:"records_decoded"`
	RecordsSkipped  int64   `json:"records_skipped"`
	BytesRead       int64   `json:"bytes_read"`
	BytesRelevant   int64   `json:"bytes_relevant"`
	BytesDecoded    int64   `json:"bytes_decoded"`
	BytesSkipped    int64   `json:"bytes_skipped"`
	// ReadRatio is Definition 1 restricted to this partition:
	// records relevant / records read. 1 when never read.
	ReadRatio        float64 `json:"read_ratio"`
	LastTouchedEpoch int64   `json:"last_touched_epoch"`
	LastQuerySeq     int64   `json:"last_query_seq"`
}

// HeatEnabled reports whether the heat map is collecting (it is unless
// Options.DisableHeat was set, a knob that exists for overhead
// baselines only).
func (r *Registry) HeatEnabled() bool {
	return r != nil && r.heat != nil
}

// HeatSnapshot returns one row per (shard, partition) ever touched by a
// query, ordered by shard then partition id. Nil-safe.
func (r *Registry) HeatSnapshot() []PartitionHeat {
	if r == nil || r.heat == nil {
		return nil
	}
	h := r.heat
	h.mu.RLock()
	out := make([]PartitionHeat, 0, len(h.m))
	for k, e := range h.m {
		read := e.read.Load()
		rel := e.relevant.Load()
		bytesRead := e.bytesRead.Load()
		bytesSkipped := e.bytesSkipped.Load()
		out = append(out, PartitionHeat{
			Shard:            k.shard,
			Partition:        k.pid,
			Queries:          e.queries.Load(),
			RecordsRead:      read,
			RecordsRelevant:  rel,
			RecordsDecoded:   e.decoded.Load(),
			RecordsSkipped:   e.skipped.Load(),
			BytesRead:        bytesRead,
			BytesRelevant:    e.bytesRelevant.Load(),
			BytesDecoded:     bytesRead - bytesSkipped,
			BytesSkipped:     bytesSkipped,
			ReadRatio:        effRatio(rel, read),
			LastTouchedEpoch: e.lastEpoch.Load(),
			LastQuerySeq:     e.lastQuery.Load(),
		})
	}
	h.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Partition < out[j].Partition
	})
	return out
}

// ColdestPartitions returns up to n heat rows with the lowest
// relevant/read ratio among partitions that served at least minQueries
// queries — the reclusterer's worst-offender shortlist, coldest first
// (ties broken by higher read volume, then shard/partition id for
// determinism). Nil-safe.
func (r *Registry) ColdestPartitions(n, minQueries int) []PartitionHeat {
	rows := r.HeatSnapshot()
	if len(rows) == 0 || n <= 0 {
		return nil
	}
	filtered := rows[:0]
	for _, row := range rows {
		if row.Queries >= int64(minQueries) && row.RecordsRead > 0 {
			filtered = append(filtered, row)
		}
	}
	sort.SliceStable(filtered, func(i, j int) bool {
		if filtered[i].ReadRatio != filtered[j].ReadRatio {
			return filtered[i].ReadRatio < filtered[j].ReadRatio
		}
		return filtered[i].RecordsRead > filtered[j].RecordsRead
	})
	if len(filtered) > n {
		filtered = filtered[:n]
	}
	return filtered
}
