package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The partition heat map: always-on per-partition access accounting.
//
// Every finished query folds its per-partition scan stats (PartSpan,
// the same data that feeds span trees) into one heatEntry per
// (shard, partition). The map answers the reclusterer's question —
// which partitions are read a lot but rarely relevant — directly: each
// entry carries Definition 1's per-partition numerator (records
// relevant) and denominator (records read), plus the decode/skip split
// and byte volumes, and the snapshot epoch at last touch.
//
// The write path is two atomic adds per counter per touched partition
// behind an RWMutex read-lock map lookup; entries are created once and
// never removed (partition ids are not reused, and the live set is
// bounded), so steady state is lock-free in practice.

// heatKey identifies one partition in one shard (-1 = unsharded).
type heatKey struct {
	shard int32
	pid   uint64
}

// heatEntry is one partition's cumulative access counters.
type heatEntry struct {
	queries       atomic.Int64
	read          atomic.Int64 // records visited by scans (Definition 1 denominator)
	relevant      atomic.Int64 // records returned (Definition 1 numerator)
	decoded       atomic.Int64
	skipped       atomic.Int64
	bytesRead     atomic.Int64
	bytesRelevant atomic.Int64
	bytesSkipped  atomic.Int64
	lastEpoch     atomic.Int64 // snapshot epoch at last touch
	lastQuery     atomic.Int64 // CQueries value at last touch
}

type heatMap struct {
	mu sync.RWMutex
	m  map[heatKey]*heatEntry

	// Exponential decay state. halfLifeNs == 0 leaves counters
	// cumulative (the pre-decay behavior); when armed, every read-side
	// snapshot first folds in 0.5^(elapsed/halfLife) so the map ranks
	// partitions by the *recent* workload — the reclusterer must not
	// chase a partition that was only cold last week. nowNs is swapped
	// out by tests to drive virtual time.
	halfLifeNs atomic.Int64
	lastDecay  atomic.Int64 // nowNs() at the last applied decay
	nowNs      func() int64
}

func newHeatMap() *heatMap {
	h := &heatMap{
		m:     make(map[heatKey]*heatEntry),
		nowNs: func() int64 { return time.Now().UnixNano() },
	}
	return h
}

// scale multiplies every cumulative counter by factor (the last-touch
// markers are timestamps, not volumes, and keep their values). Counts
// round down, so idle partitions decay all the way to zero and fall
// below ColdestPartitions' min-queries floor.
func (e *heatEntry) scale(factor float64) {
	for _, c := range []*atomic.Int64{
		&e.queries, &e.read, &e.relevant, &e.decoded, &e.skipped,
		&e.bytesRead, &e.bytesRelevant, &e.bytesSkipped,
	} {
		c.Store(int64(float64(c.Load()) * factor))
	}
}

func (h *heatMap) decay(factor float64) {
	if !(factor >= 0) || factor >= 1 {
		return
	}
	h.mu.Lock()
	for _, e := range h.m {
		e.scale(factor)
	}
	h.mu.Unlock()
}

// maybeDecay applies any half-life decay owed since the last
// application. It runs on the snapshot path (not the per-query hot
// path) and batches elapsed time into quarter-half-life steps so the
// factor stays meaningfully below 1.
func (h *heatMap) maybeDecay() {
	hl := h.halfLifeNs.Load()
	if hl <= 0 {
		return
	}
	now := h.nowNs()
	last := h.lastDecay.Load()
	elapsed := now - last
	if elapsed < hl/4 {
		return
	}
	if !h.lastDecay.CompareAndSwap(last, now) {
		return // another snapshot is decaying
	}
	h.decay(math.Exp2(-float64(elapsed) / float64(hl)))
}

func (h *heatMap) entry(k heatKey) *heatEntry {
	h.mu.RLock()
	e := h.m[k]
	h.mu.RUnlock()
	if e != nil {
		return e
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if e = h.m[k]; e == nil {
		e = &heatEntry{}
		h.m[k] = e
	}
	return e
}

// note folds one query's partition stats in. parts carry their shard id
// already stamped by FinishQuery.
func (h *heatMap) note(parts []PartSpan, epoch, querySeq int64) {
	for i := range parts {
		p := &parts[i]
		e := h.entry(heatKey{shard: p.Shard, pid: p.Partition})
		e.queries.Add(1)
		e.read.Add(p.Scanned)
		e.relevant.Add(p.Returned)
		e.decoded.Add(p.Decoded)
		e.skipped.Add(p.Skipped)
		e.bytesRead.Add(p.BytesRead)
		e.bytesRelevant.Add(p.BytesRelevant)
		e.bytesSkipped.Add(p.BytesSkipped)
		e.lastEpoch.Store(epoch)
		e.lastQuery.Store(querySeq)
	}
}

// PartitionHeat is one partition's row in the heat snapshot — the
// /debug/heat wire format and the reclusterer's input.
type PartitionHeat struct {
	Shard           int32  `json:"shard"`
	Partition       uint64 `json:"partition"`
	Queries         int64  `json:"queries"`
	RecordsRead     int64  `json:"records_read"`
	RecordsRelevant int64  `json:"records_relevant"`
	RecordsDecoded  int64  `json:"records_decoded"`
	RecordsSkipped  int64  `json:"records_skipped"`
	BytesRead       int64  `json:"bytes_read"`
	BytesRelevant   int64  `json:"bytes_relevant"`
	BytesDecoded    int64  `json:"bytes_decoded"`
	BytesSkipped    int64  `json:"bytes_skipped"`
	// ReadRatio is Definition 1 restricted to this partition:
	// records relevant / records read. 1 when never read.
	ReadRatio        float64 `json:"read_ratio"`
	LastTouchedEpoch int64   `json:"last_touched_epoch"`
	LastQuerySeq     int64   `json:"last_query_seq"`
}

// HeatEnabled reports whether the heat map is collecting (it is unless
// Options.DisableHeat was set, a knob that exists for overhead
// baselines only).
func (r *Registry) HeatEnabled() bool {
	return r != nil && r.heat != nil
}

// SetHeatHalfLife arms exponential heat decay: counters lose half
// their weight every d of wall time, so heat rankings follow the
// recent workload. d <= 0 disarms decay (counters stay cumulative,
// the historical behavior). Nil-safe.
func (r *Registry) SetHeatHalfLife(d time.Duration) {
	if r == nil || r.heat == nil {
		return
	}
	r.heat.lastDecay.Store(r.heat.nowNs())
	r.heat.halfLifeNs.Store(int64(d))
}

// HeatHalfLife reports the armed decay half-life (0 = disarmed).
func (r *Registry) HeatHalfLife() time.Duration {
	if r == nil || r.heat == nil {
		return 0
	}
	return time.Duration(r.heat.halfLifeNs.Load())
}

// DecayHeat immediately multiplies every heat counter by factor in
// [0, 1) — an explicit decay step for callers that pace decay
// themselves (benches, tests) rather than by wall clock. Nil-safe.
func (r *Registry) DecayHeat(factor float64) {
	if r == nil || r.heat == nil {
		return
	}
	r.heat.decay(factor)
}

// ResetHeat zeroes one partition's heat counters. The reclusterer
// calls it after migrating a victim: the old counters described a
// membership that no longer exists, and fresh queries should measure
// the partition from scratch. Nil-safe; unknown keys are a no-op.
func (r *Registry) ResetHeat(shard int32, pid uint64) {
	if r == nil || r.heat == nil {
		return
	}
	h := r.heat
	h.mu.RLock()
	e := h.m[heatKey{shard: shard, pid: pid}]
	h.mu.RUnlock()
	if e != nil {
		e.scale(0)
	}
}

// HeatRatio returns the current relevant/read ratio for one partition
// and whether the partition has been read at all since its counters
// were last reset. Nil-safe.
func (r *Registry) HeatRatio(shard int32, pid uint64) (float64, bool) {
	if r == nil || r.heat == nil {
		return 0, false
	}
	h := r.heat
	h.mu.RLock()
	e := h.m[heatKey{shard: shard, pid: pid}]
	h.mu.RUnlock()
	if e == nil {
		return 0, false
	}
	read := e.read.Load()
	if read == 0 {
		return 0, false
	}
	return effRatio(e.relevant.Load(), read), true
}

// HeatSnapshot returns one row per (shard, partition) ever touched by a
// query, ordered by shard then partition id. Nil-safe.
func (r *Registry) HeatSnapshot() []PartitionHeat {
	if r == nil || r.heat == nil {
		return nil
	}
	h := r.heat
	h.maybeDecay()
	h.mu.RLock()
	out := make([]PartitionHeat, 0, len(h.m))
	for k, e := range h.m {
		read := e.read.Load()
		rel := e.relevant.Load()
		bytesRead := e.bytesRead.Load()
		bytesSkipped := e.bytesSkipped.Load()
		out = append(out, PartitionHeat{
			Shard:            k.shard,
			Partition:        k.pid,
			Queries:          e.queries.Load(),
			RecordsRead:      read,
			RecordsRelevant:  rel,
			RecordsDecoded:   e.decoded.Load(),
			RecordsSkipped:   e.skipped.Load(),
			BytesRead:        bytesRead,
			BytesRelevant:    e.bytesRelevant.Load(),
			BytesDecoded:     bytesRead - bytesSkipped,
			BytesSkipped:     bytesSkipped,
			ReadRatio:        effRatio(rel, read),
			LastTouchedEpoch: e.lastEpoch.Load(),
			LastQuerySeq:     e.lastQuery.Load(),
		})
	}
	h.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Partition < out[j].Partition
	})
	return out
}

// ColdestPartitions returns up to n heat rows with the lowest
// relevant/read ratio among partitions that served at least minQueries
// queries — the reclusterer's worst-offender shortlist, coldest first
// (ties broken by higher read volume, then shard/partition id for
// determinism). Nil-safe.
func (r *Registry) ColdestPartitions(n, minQueries int) []PartitionHeat {
	rows := r.HeatSnapshot()
	if len(rows) == 0 || n <= 0 {
		return nil
	}
	filtered := rows[:0]
	for _, row := range rows {
		if row.Queries >= int64(minQueries) && row.RecordsRead > 0 {
			filtered = append(filtered, row)
		}
	}
	sort.SliceStable(filtered, func(i, j int) bool {
		if filtered[i].ReadRatio != filtered[j].ReadRatio {
			return filtered[i].ReadRatio < filtered[j].ReadRatio
		}
		return filtered[i].RecordsRead > filtered[j].RecordsRead
	})
	if len(filtered) > n {
		filtered = filtered[:n]
	}
	return filtered
}
