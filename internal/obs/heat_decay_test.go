package obs

import (
	"testing"
	"time"
)

// TestHeatDecayRecentWorkloadWins pins the reason decay exists: a
// partition that was efficient long ago but is cold under the current
// workload must rank as the coldest once the old history is decayed,
// while without decay the accumulated totals keep it looking healthy.
func TestHeatDecayRecentWorkloadWins(t *testing.T) {
	decayed := New(Options{})
	control := New(Options{})

	// Old phase: partition 1 is hot (90% relevant), partition 2 cold.
	for i := 0; i < 100; i++ {
		for _, r := range []*Registry{decayed, control} {
			finishOne(r, 1, 100, 90, 1000)
			finishOne(r, 2, 100, 5, 1000)
		}
	}
	// The workload shifts: only one registry forgets the old phase.
	decayed.DecayHeat(0.01)
	// New phase: partition 1 turns cold, partition 2 turns hot.
	for i := 0; i < 20; i++ {
		for _, r := range []*Registry{decayed, control} {
			finishOne(r, 1, 100, 5, 1000)
			finishOne(r, 2, 100, 90, 1000)
		}
	}

	cold := decayed.ColdestPartitions(2, 1)
	if len(cold) != 2 || cold[0].Partition != 1 {
		t.Fatalf("with decay, coldest = %+v, want partition 1 first", cold)
	}
	if cold[0].ReadRatio >= 0.2 {
		t.Fatalf("with decay, partition 1 ratio = %v, want recent (~0.09), not the cumulative blend", cold[0].ReadRatio)
	}
	// Control: cumulative totals still rank the old-cold partition 2
	// first, i.e. the old-hot/new-cold partition 1 sits lower ("sinks")
	// only because stale history props it up.
	ctl := control.ColdestPartitions(2, 1)
	if len(ctl) != 2 || ctl[0].Partition != 2 {
		t.Fatalf("without decay, coldest = %+v, want stale partition 2 first", ctl)
	}
}

// TestHeatHalfLife exercises wall-clock decay through a virtual clock:
// counters halve per half-life, idle partitions sink below the
// min-queries floor and drop off the coldest shortlist entirely.
func TestHeatHalfLife(t *testing.T) {
	r := New(Options{})
	now := int64(0)
	r.heat.nowNs = func() int64 { return now }
	r.SetHeatHalfLife(time.Minute)
	if r.HeatHalfLife() != time.Minute {
		t.Fatalf("HeatHalfLife = %v, want 1m", r.HeatHalfLife())
	}

	for i := 0; i < 64; i++ {
		finishOne(r, 9, 100, 5, 1000)
	}
	if rows := r.ColdestPartitions(1, 8); len(rows) != 1 || rows[0].Queries != 64 {
		t.Fatalf("pre-decay rows = %+v, want partition 9 with 64 queries", rows)
	}

	now += int64(3 * time.Minute)
	rows := r.HeatSnapshot()
	if len(rows) != 1 || rows[0].Queries != 8 {
		t.Fatalf("after 3 half-lives, rows = %+v, want 64/8 = 8 queries", rows)
	}
	// Ratio is scale-invariant under decay.
	if got := rows[0].ReadRatio; got != 0.05 {
		t.Fatalf("ReadRatio after decay = %v, want 0.05", got)
	}
	// An idle partition keeps decaying below the floor and vanishes
	// from the victim shortlist.
	now += int64(10 * time.Minute)
	if rows := r.ColdestPartitions(1, 8); len(rows) != 0 {
		t.Fatalf("after 13 idle half-lives, shortlist = %+v, want empty", rows)
	}
}

// TestHeatResetAndRatio covers the reclusterer's post-migration reset:
// counters zero out, HeatRatio reports absence until fresh reads
// arrive, then reflects only the post-reset workload.
func TestHeatResetAndRatio(t *testing.T) {
	r := New(Options{})
	finishOne(r, 3, 100, 10, 1000)
	if ratio, ok := r.HeatRatio(-1, 3); !ok || ratio != 0.1 {
		t.Fatalf("HeatRatio = %v,%v, want 0.1,true", ratio, ok)
	}
	r.ResetHeat(-1, 3)
	if _, ok := r.HeatRatio(-1, 3); ok {
		t.Fatal("HeatRatio reported a ratio for a reset partition")
	}
	finishOne(r, 3, 100, 90, 1000)
	if ratio, ok := r.HeatRatio(-1, 3); !ok || ratio != 0.9 {
		t.Fatalf("HeatRatio after reset+reads = %v,%v, want 0.9,true", ratio, ok)
	}
}
