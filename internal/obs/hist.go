package obs

import "sync/atomic"

// Histogram is a fixed-bucket latency histogram with atomic counts.
// Samples are nanoseconds; buckets are cumulative-exported in seconds on
// /metrics (Prometheus convention). Observe allocates nothing and takes
// a handful of nanoseconds: a short linear scan over the bounds beats a
// binary search at this bucket count.
type Histogram struct {
	boundsNs []int64        // ascending upper bounds, nanoseconds
	counts   []atomic.Int64 // len(boundsNs)+1, last is overflow (+Inf)
	sumNs    atomic.Int64
	total    atomic.Int64
}

// latencyBoundsNs is the default bucket ladder: 1µs … 1s in decades with
// a 2/5 split inside each decade, wide enough for in-memory inserts and
// fsync latencies alike.
var latencyBoundsNs = []int64{
	1_000, 2_000, 5_000, // 1µs, 2µs, 5µs
	10_000, 20_000, 50_000, // 10µs …
	100_000, 200_000, 500_000, // 100µs …
	1_000_000, 10_000_000, 100_000_000, // 1ms, 10ms, 100ms
	1_000_000_000, // 1s
}

func newLatencyHistogram() Histogram {
	return Histogram{
		boundsNs: latencyBoundsNs,
		counts:   make([]atomic.Int64, len(latencyBoundsNs)+1),
	}
}

// batchBounds is the bucket ladder for group-commit batch sizes: powers
// of two up to far past the committer's early-flush threshold. Samples
// are operation counts, not nanoseconds; the export scale is 1.
var batchBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

func newBatchHistogram() Histogram {
	return Histogram{
		boundsNs: batchBounds,
		counts:   make([]atomic.Int64, len(batchBounds)+1),
	}
}

// Observe records one sample (in nanoseconds).
func (h *Histogram) Observe(ns int64) {
	i := 0
	for i < len(h.boundsNs) && ns > h.boundsNs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
	h.total.Add(1)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// SumNs returns the sum of all observed samples in nanoseconds.
func (h *Histogram) SumNs() int64 { return h.sumNs.Load() }

// snapshot copies the histogram state for JSON serialization.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.total.Load(),
		BoundsNs: h.boundsNs,
		Counts:   make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.MeanNs = float64(h.sumNs.Load()) / float64(s.Count)
	}
	return s
}
