package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
)

// The ops endpoint. Serve (or Mux, for embedding) exposes:
//
//	/metrics     Prometheus text exposition format, no external deps
//	/debug/vars  expvar (the registry snapshot is published as "cinderella")
//	/debug/heat  per-partition heat map, JSON (see heat.go)
//	/debug/slow  slow-query log and recent sampled traces, JSON
//	/debug/tier  tiering manager status and freeze/thaw counters, JSON
//	/debug/pprof net/http/pprof profiles
//
// cmd/cinderella-load and cmd/cinderella-bench wire it behind -obs :PORT.

// expvarReg is the registry backing the published "cinderella" expvar;
// the latest registry to call Mux/Serve wins.
var expvarReg atomic.Pointer[Registry]

var publishExpvar = func() func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			expvar.Publish("cinderella", expvar.Func(func() any {
				return expvarReg.Load().Snapshot()
			}))
		}
	}
}()

// Mux returns an http.ServeMux serving the ops endpoint for r.
func (r *Registry) Mux() *http.ServeMux {
	expvarReg.Store(r)
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/heat", r.handleHeat)
	mux.HandleFunc("/debug/slow", r.handleSlow)
	mux.HandleFunc("/debug/recluster", r.handleRecluster)
	mux.HandleFunc("/debug/tier", r.handleTier)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "cinderella ops endpoint\n\n/metrics\n/debug/vars\n/debug/heat\n/debug/slow\n/debug/recluster\n/debug/tier\n/debug/pprof/\n")
	})
	return mux
}

// Serve blocks serving the ops endpoint on addr (e.g. ":8080").
func (r *Registry) Serve(addr string) error {
	return http.ListenAndServe(addr, r.Mux())
}

// handleHeat serves the per-partition heat map as JSON. ?by=ratio sorts
// coldest (lowest relevant/read) first; ?limit=N truncates; ?min=Q
// drops partitions with fewer than Q queries (default 0).
func (r *Registry) handleHeat(w http.ResponseWriter, req *http.Request) {
	limit, _ := strconv.Atoi(req.URL.Query().Get("limit"))
	minQ, _ := strconv.Atoi(req.URL.Query().Get("min"))
	var rows []PartitionHeat
	if req.URL.Query().Get("by") == "ratio" {
		n := limit
		if n <= 0 {
			n = int(^uint(0) >> 1)
		}
		rows = r.ColdestPartitions(n, minQ)
	} else {
		rows = r.HeatSnapshot()
		if minQ > 0 {
			kept := rows[:0]
			for _, row := range rows {
				if row.Queries >= int64(minQ) {
					kept = append(kept, row)
				}
			}
			rows = kept
		}
		if limit > 0 && len(rows) > limit {
			rows = rows[:limit]
		}
	}
	writeDebugJSON(w, map[string]any{
		"enabled":        r.HeatEnabled(),
		"snapshot_epoch": r.SnapshotEpoch(),
		"partitions":     len(rows),
		"heat":           rows,
	})
}

// handleSlow serves the slow-query log (oldest first) plus the
// recent-sampled-traces ring as JSON.
func (r *Registry) handleSlow(w http.ResponseWriter, _ *http.Request) {
	slow, total := r.SlowDump()
	writeDebugJSON(w, map[string]any{
		"threshold_ns": int64(r.SlowThreshold()),
		"slow_total":   total,
		"slow":         slow,
		"sample_every": r.TraceSampleEvery(),
		"sampled":      r.RecentTraces(),
	})
}

// handleRecluster serves the reclusterer's live status: whether a
// manager is attached (enabled), its Status snapshot, the victim
// outcome ring, and the recluster counters. With no manager installed
// it still answers — enabled:false — so probes need no special case.
func (r *Registry) handleRecluster(w http.ResponseWriter, _ *http.Request) {
	status, enabled := r.reclusterStatusValue()
	writeDebugJSON(w, map[string]any{
		"enabled":  enabled,
		"status":   status,
		"outcomes": r.ReclusterOutcomes(),
		"counters": map[string]int64{
			"rounds":   r.Counter(CReclusterRounds),
			"batches":  r.Counter(CReclusterBatches),
			"moves":    r.Counter(CReclusterMoves),
			"examined": r.Counter(CReclusterExamined),
		},
	})
}

// handleTier serves the tiering manager's live status: whether a
// manager is attached (enabled), its Status snapshot (per-partition
// tier states, resident-byte budget, reheat activity), and the
// freeze/thaw transition counters. With no manager installed it still
// answers — enabled:false — so probes need no special case.
func (r *Registry) handleTier(w http.ResponseWriter, _ *http.Request) {
	status, enabled := r.tierStatusValue()
	writeDebugJSON(w, map[string]any{
		"enabled": enabled,
		"status":  status,
		"counters": map[string]int64{
			"freezes": r.Counter(CTierFreezes),
			"thaws":   r.Counter(CTierThaws),
		},
	})
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client disconnects only
}

// WriteMetrics writes the registry in the Prometheus text exposition
// format: every counter, the gauges (partition count and the streaming
// EFFICIENCY estimates), and the latency histograms with cumulative
// buckets in seconds.
func (r *Registry) WriteMetrics(w io.Writer) {
	for c := Counter(0); c < numCounters; c++ {
		// Labeled counters ('{' in the name) are samples of a shared
		// family, rendered below with a single HELP/TYPE header.
		if strings.ContainsRune(counterNames[c], '{') {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			counterNames[c], counterHelp[c], counterNames[c], counterNames[c], r.Counter(c))
	}

	// Per-protocol traffic families: one family per direction, one sample
	// per protocol, so dashboards can sum or split by the proto label.
	byteFamily := func(name, help string, httpC, wireC Counter) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s{proto=\"http\"} %d\n", name, r.Counter(httpC))
		fmt.Fprintf(w, "%s{proto=\"binary\"} %d\n", name, r.Counter(wireC))
	}
	byteFamily("cinderella_server_bytes_in_total", "Request bytes received, by protocol.", CBytesInHTTP, CBytesInWire)
	byteFamily("cinderella_server_bytes_out_total", "Response bytes sent, by protocol.", CBytesOutHTTP, CBytesOutWire)

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, formatFloat(v))
	}
	gauge("cinderella_partitions", "Current partition count.", float64(r.Partitions()))
	gauge("cinderella_server_inflight", "HTTP API requests currently executing.", float64(r.ServerInflight()))
	gauge("cinderella_server_queued", "HTTP API requests waiting in the admission queue.", float64(r.ServerQueued()))
	gauge("cinderella_wire_connections", "Open binary wire protocol connections.", float64(r.WireConns()))
	gauge("cinderella_snapshot_epoch", "Snapshot-publication epoch of the lock-free read path.", float64(r.SnapshotEpoch()))
	gauge("cinderella_efficiency",
		"Streaming EFFICIENCY (Definition 1, entity-count units) over all queries.",
		r.Efficiency())
	winEff, winN := r.WindowEfficiency()
	gauge("cinderella_efficiency_window",
		"Streaming EFFICIENCY over the last-N-queries window.", winEff)
	gauge("cinderella_efficiency_window_queries",
		"Number of queries currently in the EFFICIENCY window.", float64(winN))
	gauge("cinderella_efficiency_bytes",
		"Streaming EFFICIENCY with SIZE() in record bytes: relevant bytes / bytes read.",
		r.EfficiencyBytes())

	// Per-shard attribution series (present only when shard views exist).
	if shards := r.ShardSnapshots(); len(shards) > 0 {
		shardFamily := func(name, help, typ string, value func(ShardSnapshot) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for _, s := range shards {
				fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, s.Shard, value(s))
			}
		}
		shardFamily("cinderella_shard_inserts_total", "Entities inserted, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.Inserts })
		shardFamily("cinderella_shard_deletes_total", "Entities deleted, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.Deletes })
		shardFamily("cinderella_shard_updates_total", "Entity updates, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.Updates })
		shardFamily("cinderella_shard_queries_total", "Queries scanned, by shard (fan-out counts each shard).", "counter",
			func(s ShardSnapshot) int64 { return s.Queries })
		shardFamily("cinderella_shard_wal_appends_total", "WAL appends, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.WALAppends })
		shardFamily("cinderella_shard_scan_records_decoded_total", "Records decoded by query scans, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.ScanDecoded })
		shardFamily("cinderella_shard_scan_decode_skipped_total", "Records the sidecar pruned without decoding, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.ScanSkipped })
		shardFamily("cinderella_shard_partitions", "Current partition count, by shard.", "gauge",
			func(s ShardSnapshot) int64 { return s.Partitions })
	}

	// Query-tracing gauges and the bounded per-partition heat families.
	gauge("cinderella_slow_threshold_seconds",
		"Armed slow-query threshold (0 = slow log disarmed).",
		float64(r.SlowThreshold())/1e9)
	gauge("cinderella_trace_sample_period",
		"Span tracer sampling period: every N-th query is traced in detail (0 = disabled).",
		float64(r.TraceSampleEvery()))
	if r.HeatEnabled() {
		gauge("cinderella_heat_partitions",
			"Partitions tracked by the heat map (touched by at least one query).",
			float64(len(r.HeatSnapshot())))
		// Label cardinality stays bounded: only the heatExportLimit
		// coldest partitions (lowest relevant/read ratio) are exported as
		// labeled series; the full map is at /debug/heat.
		if cold := r.ColdestPartitions(heatExportLimit, 1); len(cold) > 0 {
			heatFamily := func(name, help, typ string, value func(PartitionHeat) string) {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
				for _, p := range cold {
					fmt.Fprintf(w, "%s{shard=\"%d\",partition=\"%d\"} %s\n", name, p.Shard, p.Partition, value(p))
				}
			}
			heatFamily("cinderella_partition_read_ratio",
				"Per-partition EFFICIENCY (records relevant / records read) for the coldest partitions.", "gauge",
				func(p PartitionHeat) string { return formatFloat(p.ReadRatio) })
			heatFamily("cinderella_partition_heat_queries_total",
				"Queries that scanned the partition, for the coldest partitions.", "counter",
				func(p PartitionHeat) string { return strconv.FormatInt(p.Queries, 10) })
			heatFamily("cinderella_partition_heat_records_read_total",
				"Records read from the partition by queries, for the coldest partitions.", "counter",
				func(p PartitionHeat) string { return strconv.FormatInt(p.RecordsRead, 10) })
		}
	}

	// Recluster victim outcomes: efficiency at selection vs. measured
	// after migration, one labeled sample per victim partition (the
	// ring keeps the latest outcome per partition; cardinality is
	// bounded by the ring itself).
	if outcomes := r.ReclusterOutcomes(); len(outcomes) > 0 {
		type vkey struct {
			shard int32
			pid   uint64
		}
		latest := make(map[vkey]ReclusterOutcome, len(outcomes))
		var order []vkey
		for _, o := range outcomes { // oldest first: later wins
			k := vkey{o.Shard, o.Partition}
			if _, seen := latest[k]; !seen {
				order = append(order, k)
			}
			latest[k] = o
		}
		victimFamily := func(name, help string, value func(ReclusterOutcome) (string, bool)) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, k := range order {
				if v, ok := value(latest[k]); ok {
					fmt.Fprintf(w, "%s{shard=\"%d\",partition=\"%d\"} %s\n", name, k.shard, k.pid, v)
				}
			}
		}
		victimFamily("cinderella_recluster_victim_ratio_before",
			"Per-partition EFFICIENCY a recluster victim was selected at.",
			func(o ReclusterOutcome) (string, bool) { return formatFloat(o.RatioBefore), true })
		victimFamily("cinderella_recluster_victim_ratio_after",
			"Per-partition EFFICIENCY measured from fresh queries after the victim was migrated.",
			func(o ReclusterOutcome) (string, bool) { return formatFloat(o.RatioAfter), o.AfterKnown })
		victimFamily("cinderella_recluster_victim_moved",
			"Entities the reclusterer relocated out of the victim partition.",
			func(o ReclusterOutcome) (string, bool) { return strconv.FormatInt(o.Moved, 10), true })
	}

	for _, nh := range r.histograms() {
		writeHistogram(w, nh.name, nh.help, nh.hist, nh.scale)
	}
}

// heatExportLimit bounds the per-partition labeled series on /metrics.
const heatExportLimit = 16

// writeHistogram renders one histogram family with cumulative buckets.
// scale divides raw sample values (1e9 for nanoseconds→seconds, 1 for
// unit-less samples like batch sizes).
func writeHistogram(w io.Writer, name, help string, h *Histogram, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, b := range h.boundsNs {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(float64(b)/scale), cum)
	}
	cum += h.counts[len(h.boundsNs)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.SumNs())/scale))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
