package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
)

// The ops endpoint. Serve (or Mux, for embedding) exposes:
//
//	/metrics     Prometheus text exposition format, no external deps
//	/debug/vars  expvar (the registry snapshot is published as "cinderella")
//	/debug/pprof net/http/pprof profiles
//
// cmd/cinderella-load and cmd/cinderella-bench wire it behind -obs :PORT.

// expvarReg is the registry backing the published "cinderella" expvar;
// the latest registry to call Mux/Serve wins.
var expvarReg atomic.Pointer[Registry]

var publishExpvar = func() func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			expvar.Publish("cinderella", expvar.Func(func() any {
				return expvarReg.Load().Snapshot()
			}))
		}
	}
}()

// Mux returns an http.ServeMux serving the ops endpoint for r.
func (r *Registry) Mux() *http.ServeMux {
	expvarReg.Store(r)
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "cinderella ops endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve blocks serving the ops endpoint on addr (e.g. ":8080").
func (r *Registry) Serve(addr string) error {
	return http.ListenAndServe(addr, r.Mux())
}

// WriteMetrics writes the registry in the Prometheus text exposition
// format: every counter, the gauges (partition count and the streaming
// EFFICIENCY estimates), and the latency histograms with cumulative
// buckets in seconds.
func (r *Registry) WriteMetrics(w io.Writer) {
	for c := Counter(0); c < numCounters; c++ {
		// Labeled counters ('{' in the name) are samples of a shared
		// family, rendered below with a single HELP/TYPE header.
		if strings.ContainsRune(counterNames[c], '{') {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			counterNames[c], counterHelp[c], counterNames[c], counterNames[c], r.Counter(c))
	}

	// Per-protocol traffic families: one family per direction, one sample
	// per protocol, so dashboards can sum or split by the proto label.
	byteFamily := func(name, help string, httpC, wireC Counter) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s{proto=\"http\"} %d\n", name, r.Counter(httpC))
		fmt.Fprintf(w, "%s{proto=\"binary\"} %d\n", name, r.Counter(wireC))
	}
	byteFamily("cinderella_server_bytes_in_total", "Request bytes received, by protocol.", CBytesInHTTP, CBytesInWire)
	byteFamily("cinderella_server_bytes_out_total", "Response bytes sent, by protocol.", CBytesOutHTTP, CBytesOutWire)

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, formatFloat(v))
	}
	gauge("cinderella_partitions", "Current partition count.", float64(r.Partitions()))
	gauge("cinderella_server_inflight", "HTTP API requests currently executing.", float64(r.ServerInflight()))
	gauge("cinderella_server_queued", "HTTP API requests waiting in the admission queue.", float64(r.ServerQueued()))
	gauge("cinderella_wire_connections", "Open binary wire protocol connections.", float64(r.WireConns()))
	gauge("cinderella_snapshot_epoch", "Snapshot-publication epoch of the lock-free read path.", float64(r.SnapshotEpoch()))
	gauge("cinderella_efficiency",
		"Streaming EFFICIENCY (Definition 1, entity-count units) over all queries.",
		r.Efficiency())
	winEff, winN := r.WindowEfficiency()
	gauge("cinderella_efficiency_window",
		"Streaming EFFICIENCY over the last-N-queries window.", winEff)
	gauge("cinderella_efficiency_window_queries",
		"Number of queries currently in the EFFICIENCY window.", float64(winN))
	gauge("cinderella_efficiency_bytes",
		"Streaming EFFICIENCY with SIZE() in record bytes: relevant bytes / bytes read.",
		r.EfficiencyBytes())

	// Per-shard attribution series (present only when shard views exist).
	if shards := r.ShardSnapshots(); len(shards) > 0 {
		shardFamily := func(name, help, typ string, value func(ShardSnapshot) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for _, s := range shards {
				fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, s.Shard, value(s))
			}
		}
		shardFamily("cinderella_shard_inserts_total", "Entities inserted, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.Inserts })
		shardFamily("cinderella_shard_deletes_total", "Entities deleted, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.Deletes })
		shardFamily("cinderella_shard_updates_total", "Entity updates, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.Updates })
		shardFamily("cinderella_shard_queries_total", "Queries scanned, by shard (fan-out counts each shard).", "counter",
			func(s ShardSnapshot) int64 { return s.Queries })
		shardFamily("cinderella_shard_wal_appends_total", "WAL appends, by shard.", "counter",
			func(s ShardSnapshot) int64 { return s.WALAppends })
		shardFamily("cinderella_shard_partitions", "Current partition count, by shard.", "gauge",
			func(s ShardSnapshot) int64 { return s.Partitions })
	}

	for _, nh := range r.histograms() {
		writeHistogram(w, nh.name, nh.help, nh.hist, nh.scale)
	}
}

// writeHistogram renders one histogram family with cumulative buckets.
// scale divides raw sample values (1e9 for nanoseconds→seconds, 1 for
// unit-less samples like batch sizes).
func writeHistogram(w io.Writer, name, help string, h *Histogram, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, b := range h.boundsNs {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(float64(b)/scale), cum)
	}
	cum += h.counts[len(h.boundsNs)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.SumNs())/scale))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
