// Package obs is the live telemetry layer: a zero-allocation-in-steady-
// state instrumentation registry threaded through the insert path, the
// query path, storage, and the write-ahead log.
//
// The paper's entire argument rests on one number — EFFICIENCY
// (Definition 1: relevant bytes / bytes read) — which package metrics
// computes offline after a run ends. The Registry maintains the same
// numerator and denominator incrementally per query, so the metric is
// readable at any moment: cumulative since start, and windowed over the
// last N queries. Around it sit atomic counters and fixed-bucket latency
// histograms for the hot operations, a bounded event trace recording
// structured partitioner decisions (see trace.go), and an opt-in HTTP
// ops endpoint (see http.go) exposing Prometheus text metrics, expvar,
// and pprof without external dependencies.
//
// Every producer-side method is nil-safe: a nil *Registry is a no-op, so
// the library layers stay dependency-free and uninstrumented hot paths
// pay only a nil check.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter identifies one monotonic counter in the registry.
type Counter uint8

// Registry counters. The partitioner-side counters (inserts through
// ratings) are published by core.Cinderella; the query-side counters are
// published by the table layer; the WAL counters by wal.Writer.
const (
	CInserts Counter = iota
	CUpdates
	CDeletes
	CUpdateMoves
	CSplits
	CSplitCascades
	CSplitMoves // entities relocated by splits or merges
	CMerges
	CPartitionsCreated
	CPartitionsDropped
	CRatings // entity/partition ratings computed

	CQueries
	CPartitionsScanned
	CPartitionsPruned
	CEntitiesScanned
	CEntitiesReturned
	CBytesRead         // live record bytes scanned by queries
	CBytesRelevant     // live record bytes of returned (relevant) records
	CScanDecoded       // records decoded by query scans
	CScanDecodeSkipped // records skipped by the sidecar synopsis without decoding
	CScanBitmapWords   // 64-bit word operations performed by the bitmap scan kernel
	CScanBitmapHits    // candidate records yielded by the bitmap scan kernel

	CWALAppends
	CWALAppendBytes
	CWALSyncs

	// Server-side counters, published by internal/server and the group
	// committer.
	CSrvRequests
	CSrvRejected
	CSrvErrors
	CGroupCommits
	CGroupCommitOps

	// Per-protocol traffic accounting and the binary wire protocol's
	// frame/op counters, published by internal/server (http) and
	// internal/wire (binary). The byte counters export as one labeled
	// family per direction: cinderella_server_bytes_{in,out}_total{proto=...}.
	CBytesInHTTP
	CBytesOutHTTP
	CBytesInWire
	CBytesOutWire
	CWireFrames
	CWireOps
	CWireErrors
	CWireRejected

	// Query-tracing counters, published by FinishQuery (span.go).
	CTraceSampled
	CSlowQueries

	// Reclustering counters, published by internal/recluster
	// (recluster.go).
	CReclusterRounds
	CReclusterBatches
	CReclusterMoves
	CReclusterExamined

	// Tiered-storage counters, published by the table layer's freeze
	// and thaw transitions (internal/table tier.go).
	CTierFreezes
	CTierThaws

	numCounters
)

// counterNames maps counters to their Prometheus metric names.
var counterNames = [numCounters]string{
	CInserts:           "cinderella_inserts_total",
	CUpdates:           "cinderella_updates_total",
	CDeletes:           "cinderella_deletes_total",
	CUpdateMoves:       "cinderella_update_moves_total",
	CSplits:            "cinderella_splits_total",
	CSplitCascades:     "cinderella_split_cascades_total",
	CSplitMoves:        "cinderella_split_moves_total",
	CMerges:            "cinderella_merges_total",
	CPartitionsCreated: "cinderella_partitions_created_total",
	CPartitionsDropped: "cinderella_partitions_dropped_total",
	CRatings:           "cinderella_ratings_total",
	CQueries:           "cinderella_queries_total",
	CPartitionsScanned: "cinderella_partitions_scanned_total",
	CPartitionsPruned:  "cinderella_partitions_pruned_total",
	CEntitiesScanned:   "cinderella_entities_scanned_total",
	CEntitiesReturned:  "cinderella_entities_returned_total",
	CBytesRead:         "cinderella_query_bytes_read_total",
	CBytesRelevant:     "cinderella_query_bytes_relevant_total",
	CScanDecoded:       "cinderella_scan_records_decoded_total",
	CScanDecodeSkipped: "cinderella_scan_decode_skipped_total",
	CScanBitmapWords:   "cinderella_scan_bitmap_words_total",
	CScanBitmapHits:    "cinderella_scan_bitmap_hits_total",
	CWALAppends:        "cinderella_wal_appends_total",
	CWALAppendBytes:    "cinderella_wal_append_bytes_total",
	CWALSyncs:          "cinderella_wal_syncs_total",
	CSrvRequests:       "cinderella_server_requests_total",
	CSrvRejected:       "cinderella_server_rejected_total",
	CSrvErrors:         "cinderella_server_errors_total",
	CGroupCommits:      "cinderella_server_group_commits_total",
	CGroupCommitOps:    "cinderella_server_group_commit_ops_total",
	// Labeled names ('{' present) are skipped by the generic /metrics
	// loop and rendered as proper labeled families in WriteMetrics; the
	// expvar snapshot uses them verbatim as map keys.
	CBytesInHTTP:  `cinderella_server_bytes_in_total{proto="http"}`,
	CBytesOutHTTP: `cinderella_server_bytes_out_total{proto="http"}`,
	CBytesInWire:  `cinderella_server_bytes_in_total{proto="binary"}`,
	CBytesOutWire: `cinderella_server_bytes_out_total{proto="binary"}`,
	CWireFrames:   "cinderella_wire_frames_total",
	CWireOps:      "cinderella_wire_ops_total",
	CWireErrors:   "cinderella_wire_errors_total",
	CWireRejected: "cinderella_wire_rejected_total",
	CTraceSampled: "cinderella_trace_sampled_total",
	CSlowQueries:  "cinderella_slow_queries_total",

	CReclusterRounds:   "cinderella_recluster_rounds_total",
	CReclusterBatches:  "cinderella_recluster_batches_total",
	CReclusterMoves:    "cinderella_recluster_moves_total",
	CReclusterExamined: "cinderella_recluster_examined_total",

	CTierFreezes: "cinderella_tier_freezes_total",
	CTierThaws:   "cinderella_tier_thaws_total",
}

// counterHelp documents each counter for the /metrics HELP lines.
var counterHelp = [numCounters]string{
	CInserts:           "Entities inserted through the partitioner.",
	CUpdates:           "Entity updates processed by the partitioner.",
	CDeletes:           "Entity deletes processed by the partitioner.",
	CUpdateMoves:       "Updates that relocated the entity to another partition.",
	CSplits:            "Partition splits performed (Algorithm 1 lines 26-33).",
	CSplitCascades:     "Splits triggered while redistributing another split.",
	CSplitMoves:        "Entities physically relocated by splits or merges.",
	CMerges:            "Partition merges performed by Compact.",
	CPartitionsCreated: "Partitions created.",
	CPartitionsDropped: "Partitions dropped.",
	CRatings:           "Entity/partition ratings computed (Section IV kernel invocations).",
	CQueries:           "Attribute-set and predicate queries executed.",
	CPartitionsScanned: "Partitions scanned by queries (survived synopsis pruning).",
	CPartitionsPruned:  "Partitions pruned by queries without touching data.",
	CEntitiesScanned:   "Live records visited by query scans.",
	CEntitiesReturned:  "Records returned by queries (relevant to the query).",
	CBytesRead:         "Live record bytes read by query scans.",
	CBytesRelevant:     "Live record bytes of records relevant to their query.",
	CScanDecoded:       "Records decoded by query scans.",
	CScanDecodeSkipped: "Records the record-synopsis sidecar pruned without decoding.",
	CScanBitmapWords:   "64-bit word operations performed by the word-parallel bitmap scan kernel.",
	CScanBitmapHits:    "Candidate records the bitmap scan kernel could not rule out (decoded).",
	CWALAppends:        "Operations appended to the write-ahead log.",
	CWALAppendBytes:    "Payload bytes appended to the write-ahead log.",
	CWALSyncs:          "Write-ahead-log fsyncs.",
	CSrvRequests:       "HTTP API requests admitted and served.",
	CSrvRejected:       "HTTP API requests rejected with 503 (admission queue full or draining).",
	CSrvErrors:         "HTTP API requests answered with a 4xx/5xx error status.",
	CGroupCommits:      "Group-commit batches flushed (one WAL fsync each, at most).",
	CGroupCommitOps:    "Acknowledged operations covered by group-commit batches.",
	CBytesInHTTP:       "Request bytes received, by protocol.",
	CBytesOutHTTP:      "Response bytes sent, by protocol.",
	CBytesInWire:       "Request bytes received, by protocol.",
	CBytesOutWire:      "Response bytes sent, by protocol.",
	CWireFrames:        "Binary wire protocol frames served.",
	CWireOps:           "Operations applied through the binary wire protocol.",
	CWireErrors:        "Binary wire frames answered with an error status (or dropped as malformed).",
	CWireRejected:      "Binary wire write frames rejected with a retryable status (draining).",
	CTraceSampled:      "Root query spans captured by the 1-in-N span tracer.",
	CSlowQueries:       "Queries at or over the slow-query threshold, retained in the slow log.",
	CReclusterRounds:   "Reclusterer rounds completed (one heat-map victim scan each).",
	CReclusterBatches:  "Victim-partition migration batches executed by the reclusterer.",
	CReclusterMoves:    "Entities relocated to another partition by reclustering.",
	CReclusterExamined: "Entities re-rated by the reclusterer (moved or kept in place).",
	CTierFreezes:       "Partitions frozen into the compressed cold storage tier.",
	CTierThaws:         "Partitions thawed back into the hot tier (mutation or reheat).",
}

// effSample is one query's contribution to the windowed estimator.
type effSample struct {
	relevant, read int64 // Definition 1 units (entity counts)
}

// Options sizes a Registry. The zero value picks the defaults.
type Options struct {
	// EffWindow is the number of most-recent queries in the windowed
	// EFFICIENCY estimate. Default 256.
	EffWindow int
	// TraceCap bounds the event trace ring. Default 4096; negative
	// disables tracing entirely.
	TraceCap int
	// TraceSampleEvery is the query span tracer's sampling period: every
	// N-th query gets a detailed span (prune rationale, per-partition
	// scan timing). Default 64; 1 traces everything; negative disables
	// the span tracer (heat accounting and slow-query synthesis remain).
	TraceSampleEvery int
	// SlowLogCap bounds the slow-query span ring. Default 128.
	SlowLogCap int
	// TraceRecentCap bounds the recent-sampled-traces ring. Default 64.
	TraceRecentCap int
	// DisableHeat turns off the per-partition heat map. It exists only
	// so overhead benchmarks can measure an untraced baseline; the heat
	// map is meant to stay on unconditionally in production.
	DisableHeat bool
}

// Registry aggregates live telemetry for one table (or one process — it
// is safe for concurrent use by any number of producers and readers).
//
// A Registry is a handle over shared state: ShardView returns additional
// handles that feed the same aggregate totals but also attribute a core
// subset of the counters to one shard and stamp the shard id onto trace
// events. All handles of one registry family are interchangeable for
// reading; producers hold the handle for the shard they belong to.
type Registry struct {
	*state
	shard int32      // shard id stamped on trace events; -1 = unsharded
	slot  *shardSlot // per-shard counter block; nil on the root handle
}

// state is the shared body behind every handle of one registry family.
type state struct {
	counters   [numCounters]atomic.Int64
	partitions atomic.Int64 // gauge: current partition count (unsharded writers)

	// Per-shard counter blocks, created by ShardView. Append-only under
	// shardMu; the slots themselves are atomic.
	shardMu sync.Mutex
	shards  []*shardSlot

	// Server gauges, maintained by internal/server: requests currently
	// executing, and requests waiting in the bounded admission queue.
	srvInflight atomic.Int64
	srvQueued   atomic.Int64

	// snapEpoch is the table's snapshot-publication epoch: how many times
	// a mutation republished partition snapshots for lock-free readers.
	snapEpoch atomic.Int64

	// wireConns is the open-binary-connections gauge, maintained by
	// internal/wire.
	wireConns atomic.Int64

	insertNs    Histogram
	queryNs     Histogram
	walAppendNs Histogram
	walSyncNs   Histogram
	serverNs    Histogram
	batchSize   Histogram // group-commit batch sizes (unit: operations)
	wireBatch   Histogram // binary wire batch sizes (unit: operations per frame)

	// Streaming EFFICIENCY (Definition 1). The cumulative sums use the
	// paper's entity-count SIZE() units, mirroring the offline
	// metrics.Efficiency computation exactly; the byte-valued sums are
	// kept in the counters (CBytesRelevant / CBytesRead).
	effMu       sync.Mutex
	effRelevant int64
	effRead     int64
	effRing     []effSample
	effNext     int
	effLen      int

	trace *Trace

	// Query tracing (span.go) and the partition heat map (heat.go).
	// traceEvery is immutable after New (0 = tracer disabled); slowNs is
	// the armed slow-query threshold (0 = disarmed).
	traceEvery int64
	sampleTick atomic.Uint64
	traceID    atomic.Uint64
	slowNs     atomic.Int64
	slow       *spanRing
	recent     *spanRing
	heat       *heatMap // nil when Options.DisableHeat

	// Reclustering support (recluster.go): the recent query-shape mix
	// the workload-blended rating is derived from, the victim-outcome
	// ring rendered on /metrics and /debug/recluster, and the live
	// status provider installed by the recluster manager. qmix is nil
	// when the heat map is disabled — both exist for the reclusterer.
	qmix            *qmixRing
	reclMu          sync.Mutex
	reclOutcomes    []ReclusterOutcome
	reclNext        int
	reclLen         int
	reclusterStatus atomic.Pointer[func() any]

	// tierStatus is the live status provider behind /debug/tier,
	// installed by the tiering manager (internal/tier).
	tierStatus atomic.Pointer[func() any]
}

// shardSlot attributes a core counter subset to one shard. The aggregate
// totals in state.counters remain exact; slots are an additional
// attribution dimension, not a partition of every counter.
type shardSlot struct {
	id          int32
	inserts     atomic.Int64
	deletes     atomic.Int64
	updates     atomic.Int64
	queries     atomic.Int64
	walAppends  atomic.Int64
	scanDecoded atomic.Int64 // records decoded by this shard's query scans
	scanSkipped atomic.Int64 // records its sidecar pruned without decoding
	partitions  atomic.Int64 // gauge: this shard's partition count
}

// New returns a Registry sized by opts.
func New(opts Options) *Registry {
	if opts.EffWindow <= 0 {
		opts.EffWindow = 256
	}
	if opts.TraceCap == 0 {
		opts.TraceCap = 4096
	}
	if opts.TraceSampleEvery == 0 {
		opts.TraceSampleEvery = 64
	}
	if opts.SlowLogCap <= 0 {
		opts.SlowLogCap = 128
	}
	if opts.TraceRecentCap <= 0 {
		opts.TraceRecentCap = 64
	}
	st := &state{
		insertNs:    newLatencyHistogram(),
		queryNs:     newLatencyHistogram(),
		walAppendNs: newLatencyHistogram(),
		walSyncNs:   newLatencyHistogram(),
		serverNs:    newLatencyHistogram(),
		batchSize:   newBatchHistogram(),
		wireBatch:   newBatchHistogram(),
		effRing:     make([]effSample, opts.EffWindow),
		slow:        newSpanRing(opts.SlowLogCap),
		recent:      newSpanRing(opts.TraceRecentCap),
	}
	if opts.TraceSampleEvery > 0 {
		st.traceEvery = int64(opts.TraceSampleEvery)
	}
	if !opts.DisableHeat {
		st.heat = newHeatMap()
		st.qmix = newQmixRing(qmixCap)
	}
	if opts.TraceCap > 0 {
		st.trace = newTrace(opts.TraceCap)
	}
	return &Registry{state: st, shard: -1}
}

// ShardView returns a handle that feeds this registry's aggregate state
// and additionally attributes inserts/deletes/updates/queries/WAL appends
// and the partition gauge to shard id, stamping the id onto trace events.
// Repeated calls with the same id share one slot. Nil-safe (returns nil).
func (r *Registry) ShardView(id int) *Registry {
	if r == nil {
		return nil
	}
	r.shardMu.Lock()
	defer r.shardMu.Unlock()
	for _, s := range r.shards {
		if s.id == int32(id) {
			return &Registry{state: r.state, shard: int32(id), slot: s}
		}
	}
	s := &shardSlot{id: int32(id)}
	r.shards = append(r.shards, s)
	return &Registry{state: r.state, shard: int32(id), slot: s}
}

// Add increments counter c by n. Nil-safe no-op.
func (r *Registry) Add(c Counter, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.counters[c].Add(n)
	if r.slot != nil {
		switch c {
		case CInserts:
			r.slot.inserts.Add(n)
		case CDeletes:
			r.slot.deletes.Add(n)
		case CUpdates:
			r.slot.updates.Add(n)
		case CWALAppends:
			r.slot.walAppends.Add(n)
		case CScanDecoded:
			r.slot.scanDecoded.Add(n)
		case CScanDecodeSkipped:
			r.slot.scanSkipped.Add(n)
		}
	}
}

// Counter returns the current value of c; 0 on a nil registry.
func (r *Registry) Counter(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// SetPartitions updates the current-partition-count gauge. A shard view
// writes its shard's gauge; the aggregate reported by Partitions is the
// unsharded gauge plus the per-shard gauges. Nil-safe.
func (r *Registry) SetPartitions(n int64) {
	if r == nil {
		return
	}
	if r.slot != nil {
		r.slot.partitions.Store(n)
		return
	}
	r.partitions.Store(n)
}

// Partitions returns the partition-count gauge summed across the
// unsharded writer and all shard views.
func (r *Registry) Partitions() int64 {
	if r == nil {
		return 0
	}
	n := r.partitions.Load()
	r.shardMu.Lock()
	for _, s := range r.shards {
		n += s.partitions.Load()
	}
	r.shardMu.Unlock()
	return n
}

// ObserveInsertNs records one insert's wall time. Nil-safe.
func (r *Registry) ObserveInsertNs(ns int64) {
	if r == nil {
		return
	}
	r.insertNs.Observe(ns)
}

// ObserveWALAppendNs records one WAL append's wall time. Nil-safe.
func (r *Registry) ObserveWALAppendNs(ns int64) {
	if r == nil {
		return
	}
	r.walAppendNs.Observe(ns)
}

// ObserveWALSyncNs records one WAL fsync's wall time. Nil-safe.
func (r *Registry) ObserveWALSyncNs(ns int64) {
	if r == nil {
		return
	}
	r.walSyncNs.Observe(ns)
}

// ObserveServerNs records one served HTTP request's wall time. Nil-safe.
func (r *Registry) ObserveServerNs(ns int64) {
	if r == nil {
		return
	}
	r.serverNs.Observe(ns)
}

// ObserveBatchSize records one group-commit batch's operation count.
// Nil-safe.
func (r *Registry) ObserveBatchSize(ops int64) {
	if r == nil {
		return
	}
	r.batchSize.Observe(ops)
}

// ObserveWireBatch records one binary wire batch frame's operation
// count. Nil-safe.
func (r *Registry) ObserveWireBatch(ops int64) {
	if r == nil {
		return
	}
	r.wireBatch.Observe(ops)
}

// AddWireConns adjusts the open-binary-connections gauge by delta
// (+1 on accept, -1 on close). Nil-safe.
func (r *Registry) AddWireConns(delta int64) {
	if r == nil {
		return
	}
	r.wireConns.Add(delta)
}

// WireConns returns the number of currently open binary wire
// connections.
func (r *Registry) WireConns() int64 {
	if r == nil {
		return 0
	}
	return r.wireConns.Load()
}

// AddServerInflight adjusts the executing-requests gauge by delta
// (+1 on admit, -1 on completion). Nil-safe.
func (r *Registry) AddServerInflight(delta int64) {
	if r == nil {
		return
	}
	r.srvInflight.Add(delta)
}

// ServerInflight returns the number of requests currently executing.
func (r *Registry) ServerInflight() int64 {
	if r == nil {
		return 0
	}
	return r.srvInflight.Load()
}

// AddServerQueued adjusts the admission-queue-depth gauge by delta.
// Nil-safe.
func (r *Registry) AddServerQueued(delta int64) {
	if r == nil {
		return
	}
	r.srvQueued.Add(delta)
}

// ServerQueued returns the number of requests waiting for admission.
func (r *Registry) ServerQueued() int64 {
	if r == nil {
		return 0
	}
	return r.srvQueued.Load()
}

// SetSnapshotEpoch updates the snapshot-publication-epoch gauge (the
// table layer calls it after publishing new partition snapshots).
// Nil-safe.
func (r *Registry) SetSnapshotEpoch(n int64) {
	if r == nil {
		return
	}
	r.snapEpoch.Store(n)
}

// SnapshotEpoch returns the snapshot-publication-epoch gauge.
func (r *Registry) SnapshotEpoch() int64 {
	if r == nil {
		return 0
	}
	return r.snapEpoch.Load()
}

// NoteQuery folds one executed query into the registry: the pruning and
// volume counters, the query latency histogram, and the streaming
// EFFICIENCY estimator.
//
// relevant and read are Definition 1's per-query numerator and
// denominator in entity-count units: the number of entities relevant to
// the query, and the number of live entities in all partitions the query
// had to read. Because partition synopses are exact, the table layer's
// EntitiesReturned/EntitiesScanned counters are precisely these sums,
// so the cumulative estimate equals the offline metrics.Efficiency of
// the replayed workload. Nil-safe.
func (r *Registry) NoteQuery(touched, pruned, relevant, read, bytesRelevant, bytesRead, ns int64) {
	if r == nil {
		return
	}
	r.counters[CQueries].Add(1)
	r.counters[CPartitionsScanned].Add(touched)
	r.counters[CPartitionsPruned].Add(pruned)
	r.counters[CEntitiesReturned].Add(relevant)
	r.counters[CEntitiesScanned].Add(read)
	r.counters[CBytesRelevant].Add(bytesRelevant)
	r.counters[CBytesRead].Add(bytesRead)
	r.queryNs.Observe(ns)
	if r.slot != nil {
		r.slot.queries.Add(1)
	}

	r.effMu.Lock()
	r.effRelevant += relevant
	r.effRead += read
	r.effRing[r.effNext] = effSample{relevant: relevant, read: read}
	r.effNext = (r.effNext + 1) % len(r.effRing)
	if r.effLen < len(r.effRing) {
		r.effLen++
	}
	r.effMu.Unlock()
}

// Efficiency returns the cumulative streaming EFFICIENCY (Definition 1)
// over every query observed so far, in entity-count SIZE() units. Like
// metrics.Efficiency, an empty denominator (no query read anything)
// yields 1 — vacuously perfect. A nil registry reports 1.
func (r *Registry) Efficiency() float64 {
	if r == nil {
		return 1
	}
	r.effMu.Lock()
	rel, read := r.effRelevant, r.effRead
	r.effMu.Unlock()
	return effRatio(rel, read)
}

// WindowEfficiency returns the EFFICIENCY over the last-N-queries window
// (N = Options.EffWindow), plus how many queries the window holds.
func (r *Registry) WindowEfficiency() (eff float64, queries int) {
	if r == nil {
		return 1, 0
	}
	r.effMu.Lock()
	var rel, read int64
	for i := 0; i < r.effLen; i++ {
		rel += r.effRing[i].relevant
		read += r.effRing[i].read
	}
	n := r.effLen
	r.effMu.Unlock()
	return effRatio(rel, read), n
}

// EfficiencyBytes returns the cumulative EFFICIENCY with SIZE() in
// record bytes: query-relevant bytes over bytes read.
func (r *Registry) EfficiencyBytes() float64 {
	if r == nil {
		return 1
	}
	return effRatio(r.Counter(CBytesRelevant), r.Counter(CBytesRead))
}

func effRatio(relevant, read int64) float64 {
	if read == 0 {
		return 1
	}
	return float64(relevant) / float64(read)
}

// TraceEvent appends a partitioner decision to the event trace ring,
// stamping the handle's shard id (-1 on unsharded handles). Nil-safe; a
// no-op when tracing is disabled.
func (r *Registry) TraceEvent(ev Event) {
	if r == nil || r.trace == nil {
		return
	}
	ev.Shard = r.shard
	r.trace.add(ev)
}

// TraceDump snapshots the event trace, oldest first. Nil (and
// trace-disabled) registries return nil.
func (r *Registry) TraceDump() []Event {
	if r == nil || r.trace == nil {
		return nil
	}
	return r.trace.Dump()
}

// TraceSeq returns the total number of events ever traced (the ring may
// retain fewer).
func (r *Registry) TraceSeq() uint64 {
	if r == nil || r.trace == nil {
		return 0
	}
	return r.trace.Seq()
}

// HistogramSnapshot is the JSON-friendly state of one latency histogram.
type HistogramSnapshot struct {
	Count    int64   `json:"count"`
	MeanNs   float64 `json:"mean_ns"`
	BoundsNs []int64 `json:"bounds_ns"`
	Counts   []int64 `json:"counts"` // len(BoundsNs)+1, last is overflow
}

// ShardSnapshot is the per-shard attribution block of a Snapshot.
type ShardSnapshot struct {
	Shard       int32 `json:"shard"`
	Inserts     int64 `json:"inserts"`
	Deletes     int64 `json:"deletes"`
	Updates     int64 `json:"updates"`
	Queries     int64 `json:"queries"`
	WALAppends  int64 `json:"wal_appends"`
	ScanDecoded int64 `json:"scan_decoded"`
	ScanSkipped int64 `json:"scan_decode_skipped"`
	Partitions  int64 `json:"partitions"`
}

// Snapshot is a point-in-time JSON-serializable view of the registry,
// embedded by cmd/cinderella-bench -json so BENCH_*.json files carry
// observability data.
type Snapshot struct {
	Counters         map[string]int64             `json:"counters"`
	Partitions       int64                        `json:"partitions"`
	ServerInflight   int64                        `json:"server_inflight"`
	ServerQueued     int64                        `json:"server_queued"`
	WireConns        int64                        `json:"wire_connections"`
	SnapshotEpoch    int64                        `json:"snapshot_epoch"`
	Efficiency       float64                      `json:"efficiency"`
	EfficiencyBytes  float64                      `json:"efficiency_bytes"`
	WindowEfficiency float64                      `json:"window_efficiency"`
	WindowQueries    int                          `json:"window_queries"`
	Histograms       map[string]HistogramSnapshot `json:"histograms"`
	TraceEvents      uint64                       `json:"trace_events"`
	Shards           []ShardSnapshot              `json:"shards,omitempty"`
	SlowThresholdNs  int64                        `json:"slow_threshold_ns,omitempty"`
	Heat             []PartitionHeat              `json:"heat,omitempty"`
}

// ShardSnapshots returns the per-shard attribution blocks, ordered by
// shard id. Empty when no shard views exist.
func (r *Registry) ShardSnapshots() []ShardSnapshot {
	if r == nil {
		return nil
	}
	r.shardMu.Lock()
	out := make([]ShardSnapshot, 0, len(r.shards))
	for _, s := range r.shards {
		out = append(out, ShardSnapshot{
			Shard:       s.id,
			Inserts:     s.inserts.Load(),
			Deletes:     s.deletes.Load(),
			Updates:     s.updates.Load(),
			Queries:     s.queries.Load(),
			WALAppends:  s.walAppends.Load(),
			ScanDecoded: s.scanDecoded.Load(),
			ScanSkipped: s.scanSkipped.Load(),
			Partitions:  s.partitions.Load(),
		})
	}
	r.shardMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// Snapshot captures the registry. Nil registries return a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Efficiency: 1, EfficiencyBytes: 1, WindowEfficiency: 1}
	}
	s := Snapshot{
		Counters:        make(map[string]int64, int(numCounters)),
		Partitions:      r.Partitions(),
		ServerInflight:  r.ServerInflight(),
		ServerQueued:    r.ServerQueued(),
		WireConns:       r.WireConns(),
		SnapshotEpoch:   r.SnapshotEpoch(),
		Efficiency:      r.Efficiency(),
		EfficiencyBytes: r.EfficiencyBytes(),
		Histograms:      make(map[string]HistogramSnapshot, 6),
		TraceEvents:     r.TraceSeq(),
	}
	s.WindowEfficiency, s.WindowQueries = r.WindowEfficiency()
	s.Shards = r.ShardSnapshots()
	s.SlowThresholdNs = int64(r.SlowThreshold())
	s.Heat = r.HeatSnapshot()
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[counterNames[c]] = r.counters[c].Load()
	}
	for _, h := range r.histograms() {
		s.Histograms[h.name] = h.hist.snapshot()
	}
	return s
}

// namedHist pairs a histogram with its Prometheus family name. scale
// divides raw sample values on export: 1e9 turns nanosecond samples
// into seconds (the Prometheus duration convention); 1 leaves unit-less
// samples (batch sizes) untouched.
type namedHist struct {
	name  string
	help  string
	hist  *Histogram
	scale float64
}

func (r *Registry) histograms() []namedHist {
	return []namedHist{
		{"cinderella_insert_duration_seconds", "Wall time of table inserts (placement incl. splits).", &r.insertNs, 1e9},
		{"cinderella_query_duration_seconds", "Wall time of table queries (pruning + scan + merge).", &r.queryNs, 1e9},
		{"cinderella_wal_append_duration_seconds", "Wall time of WAL record appends.", &r.walAppendNs, 1e9},
		{"cinderella_wal_sync_duration_seconds", "Wall time of WAL fsyncs.", &r.walSyncNs, 1e9},
		{"cinderella_server_request_duration_seconds", "Wall time of served HTTP API requests (admission wait incl.).", &r.serverNs, 1e9},
		{"cinderella_server_group_commit_batch_size", "Operations acknowledged per group-commit batch.", &r.batchSize, 1},
		{"cinderella_wire_batch_ops", "Operations per binary wire batch frame.", &r.wireBatch, 1},
	}
}
