package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp: every producer-side method must be callable on a
// nil registry — the library layers rely on this to stay uninstrumented
// for free.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Add(CInserts, 1)
	r.SetPartitions(7)
	r.ObserveInsertNs(100)
	r.ObserveWALAppendNs(100)
	r.ObserveWALSyncNs(100)
	r.NoteQuery(1, 2, 3, 4, 5, 6, 7)
	r.TraceEvent(Event{Kind: EvInsert})
	if got := r.Counter(CInserts); got != 0 {
		t.Fatalf("nil Counter = %d, want 0", got)
	}
	if got := r.Partitions(); got != 0 {
		t.Fatalf("nil Partitions = %d, want 0", got)
	}
	if got := r.Efficiency(); got != 1 {
		t.Fatalf("nil Efficiency = %v, want 1 (vacuously perfect)", got)
	}
	if got := r.EfficiencyBytes(); got != 1 {
		t.Fatalf("nil EfficiencyBytes = %v, want 1", got)
	}
	if eff, n := r.WindowEfficiency(); eff != 1 || n != 0 {
		t.Fatalf("nil WindowEfficiency = %v,%d, want 1,0", eff, n)
	}
	if d := r.TraceDump(); d != nil {
		t.Fatalf("nil TraceDump = %v, want nil", d)
	}
	s := r.Snapshot()
	if s.Efficiency != 1 {
		t.Fatalf("nil Snapshot.Efficiency = %v, want 1", s.Efficiency)
	}
}

func TestCountersAndGauge(t *testing.T) {
	r := New(Options{})
	r.Add(CRatings, 5)
	r.Add(CRatings, 3)
	r.Add(CSplits, 0) // zero adds are dropped but harmless
	if got := r.Counter(CRatings); got != 8 {
		t.Fatalf("CRatings = %d, want 8", got)
	}
	r.SetPartitions(12)
	if got := r.Partitions(); got != 12 {
		t.Fatalf("Partitions = %d, want 12", got)
	}
}

// TestEfficiencyStreaming validates Definition 1's streaming form:
// cumulative sums, the read==0 → 1 convention, and the windowed ring.
func TestEfficiencyStreaming(t *testing.T) {
	r := New(Options{EffWindow: 2})
	if got := r.Efficiency(); got != 1 {
		t.Fatalf("no queries: Efficiency = %v, want 1", got)
	}

	// q1: 3 relevant of 10 read; q2: 7 of 10.
	r.NoteQuery(1, 0, 3, 10, 30, 100, 0)
	r.NoteQuery(1, 0, 7, 10, 70, 100, 0)
	if got, want := r.Efficiency(), float64(10)/float64(20); got != want {
		t.Fatalf("Efficiency = %v, want %v", got, want)
	}
	if got, want := r.EfficiencyBytes(), float64(100)/float64(200); got != want {
		t.Fatalf("EfficiencyBytes = %v, want %v", got, want)
	}

	// q3 evicts q1 from the window: window = q2,q3.
	r.NoteQuery(1, 0, 1, 10, 10, 100, 0)
	eff, n := r.WindowEfficiency()
	if want := float64(8) / float64(20); eff != want || n != 2 {
		t.Fatalf("WindowEfficiency = %v,%d, want %v,2", eff, n, want)
	}
	// Cumulative is unaffected by eviction.
	if got, want := r.Efficiency(), float64(11)/float64(30); got != want {
		t.Fatalf("cumulative Efficiency = %v, want %v", got, want)
	}

	// Counters were fed too.
	if got := r.Counter(CQueries); got != 3 {
		t.Fatalf("CQueries = %d, want 3", got)
	}
	if got := r.Counter(CEntitiesScanned); got != 30 {
		t.Fatalf("CEntitiesScanned = %d, want 30", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newLatencyHistogram()
	h.Observe(500)           // ≤ 1µs bucket
	h.Observe(1_000)         // boundary: still ≤ 1µs
	h.Observe(1_001)         // 2µs bucket
	h.Observe(2_000_000_000) // beyond 1s: overflow
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	s := h.snapshot()
	if s.Counts[0] != 2 {
		t.Fatalf("first bucket = %d, want 2", s.Counts[0])
	}
	if s.Counts[1] != 1 {
		t.Fatalf("second bucket = %d, want 1", s.Counts[1])
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	wantMean := float64(500+1_000+1_001+2_000_000_000) / 4
	if math.Abs(s.MeanNs-wantMean) > 1e-9 {
		t.Fatalf("MeanNs = %v, want %v", s.MeanNs, wantMean)
	}
}

// TestTraceWraparound: once more events than capacity have been added,
// the ring must retain exactly the newest cap events, oldest first, with
// contiguous sequence numbers.
func TestTraceWraparound(t *testing.T) {
	const cap = 8
	r := New(Options{TraceCap: cap})
	const total = 3*cap + 5
	for i := 0; i < total; i++ {
		r.TraceEvent(Event{Kind: EvInsert, Entity: uint64(i)})
	}
	if got := r.TraceSeq(); got != total {
		t.Fatalf("TraceSeq = %d, want %d", got, total)
	}
	dump := r.TraceDump()
	if len(dump) != cap {
		t.Fatalf("dump has %d events, want %d", len(dump), cap)
	}
	for i, ev := range dump {
		wantSeq := uint64(total - cap + i)
		if ev.Seq != wantSeq {
			t.Fatalf("dump[%d].Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Entity != wantSeq {
			t.Fatalf("dump[%d].Entity = %d, want %d (payload must ride with its seq)", i, ev.Entity, wantSeq)
		}
	}
}

// TestTracePartialFill: before wraparound, Dump returns everything added
// so far in insertion order.
func TestTracePartialFill(t *testing.T) {
	r := New(Options{TraceCap: 16})
	for i := 0; i < 5; i++ {
		r.TraceEvent(Event{Kind: EvNewPartition, To: uint64(i)})
	}
	dump := r.TraceDump()
	if len(dump) != 5 {
		t.Fatalf("dump has %d events, want 5", len(dump))
	}
	for i, ev := range dump {
		if ev.Seq != uint64(i) || ev.To != uint64(i) {
			t.Fatalf("dump[%d] = %+v, want seq/to %d", i, ev, i)
		}
	}
}

// TestTraceDisabled: a negative TraceCap disables tracing entirely.
func TestTraceDisabled(t *testing.T) {
	r := New(Options{TraceCap: -1})
	r.TraceEvent(Event{Kind: EvInsert})
	if got := r.TraceSeq(); got != 0 {
		t.Fatalf("disabled TraceSeq = %d, want 0", got)
	}
	if d := r.TraceDump(); d != nil {
		t.Fatalf("disabled TraceDump = %v, want nil", d)
	}
}

// TestTraceConcurrentWriters hammers the ring from many goroutines; under
// -race this validates the locking, and afterwards the ring must hold
// exactly the last cap sequence numbers with no duplicates or gaps.
func TestTraceConcurrentWriters(t *testing.T) {
	const cap = 64
	r := New(Options{TraceCap: cap})
	const writers = 8
	const perWriter = 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.TraceEvent(Event{Kind: EvMove, Entity: uint64(w), From: uint64(i)})
			}
		}(w)
	}
	wg.Wait()

	if got := r.TraceSeq(); got != writers*perWriter {
		t.Fatalf("TraceSeq = %d, want %d", got, writers*perWriter)
	}
	dump := r.TraceDump()
	if len(dump) != cap {
		t.Fatalf("dump has %d events, want %d", len(dump), cap)
	}
	for i, ev := range dump {
		wantSeq := uint64(writers*perWriter - cap + i)
		if ev.Seq != wantSeq {
			t.Fatalf("dump[%d].Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
	}
}

// TestSnapshotJSON: the snapshot must round-trip through encoding/json —
// the bench harness embeds it in BENCH_*.json files.
func TestSnapshotJSON(t *testing.T) {
	r := New(Options{})
	r.Add(CInserts, 2)
	r.SetPartitions(3)
	r.ObserveInsertNs(1500)
	r.NoteQuery(2, 1, 4, 9, 40, 90, 2500)
	r.TraceEvent(Event{Kind: EvSplit, From: 1, To: 2, To2: 3})

	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	if back.Counters["cinderella_inserts_total"] != 2 {
		t.Fatalf("round-tripped inserts = %d, want 2", back.Counters["cinderella_inserts_total"])
	}
	if back.Partitions != 3 {
		t.Fatalf("round-tripped partitions = %d, want 3", back.Partitions)
	}
	if want := float64(4) / float64(9); back.Efficiency != want {
		t.Fatalf("round-tripped efficiency = %v, want %v", back.Efficiency, want)
	}
	if back.TraceEvents != 1 {
		t.Fatalf("round-tripped trace events = %d, want 1", back.TraceEvents)
	}
}

// TestMetricsEndpoint drives the ops mux through httptest and checks the
// Prometheus exposition: the acceptance-named families must be present
// with correct values, and histograms must expose cumulative buckets.
func TestMetricsEndpoint(t *testing.T) {
	r := New(Options{})
	r.Add(CRatings, 42)
	r.SetPartitions(5)
	r.NoteQuery(1, 3, 2, 4, 20, 40, 1000)
	r.ObserveWALSyncNs(3_000_000) // lands in the 10ms bucket

	srv := httptest.NewServer(r.Mux())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(raw)

	for _, want := range []string{
		"cinderella_ratings_total 42",
		"cinderella_partitions 5",
		"cinderella_efficiency 0.5",
		"cinderella_queries_total 1",
		"cinderella_partitions_pruned_total 3",
		"cinderella_wal_sync_duration_seconds_bucket{le=\"0.01\"} 1",
		"cinderella_wal_sync_duration_seconds_bucket{le=\"+Inf\"} 1",
		"cinderella_wal_sync_duration_seconds_count 1",
		"# TYPE cinderella_efficiency gauge",
		"# TYPE cinderella_ratings_total counter",
		"# TYPE cinderella_wal_sync_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Buckets below 10ms must not have counted the 3ms fsync's family
	// neighbours: the 1ms bucket stays at 0 cumulative.
	if !strings.Contains(body, "cinderella_wal_sync_duration_seconds_bucket{le=\"0.001\"} 0") {
		t.Errorf("/metrics: 1ms sync bucket should be 0")
	}

	// /debug/vars must serve the published snapshot.
	resp2, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp2.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	cvar, ok := vars["cinderella"]
	if !ok {
		t.Fatal("/debug/vars has no cinderella var")
	}
	var snap Snapshot
	if err := json.Unmarshal(cvar, &snap); err != nil {
		t.Fatalf("decode cinderella var: %v", err)
	}
	if snap.Counters["cinderella_ratings_total"] != 42 {
		t.Fatalf("expvar snapshot ratings = %d, want 42", snap.Counters["cinderella_ratings_total"])
	}

	// pprof index responds.
	resp3, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Fatalf("GET /debug/pprof/: status %d", resp3.StatusCode)
	}
}
