package obs

// Reclustering support: the query-shape mix recorder (what does the
// recent workload ask for?), the victim-outcome ring behind the
// /metrics efficiency-before/after gauges, and the /debug/recluster
// status-provider hook the recluster manager installs. The data lives
// here rather than in internal/recluster so the ops surface (metrics,
// debug endpoints) can render it without importing the control loop.

import (
	"sort"
	"sync"

	"cinderella/internal/synopsis"
)

// qmixCap bounds the query-shape ring: enough recent queries to
// estimate the mix, small enough that a full aggregation per recluster
// round is trivial.
const qmixCap = 512

// qmixShape is one recorded query attribute set, stamped with the
// shard handle that recorded it (-1 = unsharded).
type qmixShape struct {
	shard int32
	attrs []int
}

type qmixRing struct {
	mu   sync.Mutex
	buf  []qmixShape
	next int
	len  int
}

func newQmixRing(n int) *qmixRing {
	return &qmixRing{buf: make([]qmixShape, n)}
}

// NoteQueryShape records one query's attribute set into the recent-mix
// ring, stamped with this handle's shard. The table's select path
// calls it once per query; it is one short lock plus one small copy,
// and a no-op when the heat map (and with it the reclusterer's whole
// input surface) is disabled. Nil-safe.
func (r *Registry) NoteQueryShape(q *synopsis.Set) {
	if r == nil || r.qmix == nil || q == nil || q.Empty() {
		return
	}
	attrs := q.Elements(nil)
	qm := r.qmix
	qm.mu.Lock()
	qm.buf[qm.next] = qmixShape{shard: r.shard, attrs: attrs}
	qm.next = (qm.next + 1) % len(qm.buf)
	if qm.len < len(qm.buf) {
		qm.len++
	}
	qm.mu.Unlock()
}

// QueryShape is one distinct query attribute set in the recent mix,
// with its multiplicity. Attribute ids are shard-local dictionary ids:
// a shape recorded by shard 2's handle only makes sense against shard
// 2's dictionary, which is why QueryMix filters by shard.
type QueryShape struct {
	Shard int32 `json:"shard"`
	Attrs []int `json:"attrs"`
	Count int64 `json:"count"`
}

// QueryMix aggregates the recent query-shape ring for one shard into
// up to max distinct shapes, most frequent first (ties by ascending
// attribute set, for determinism). Nil-safe.
func (r *Registry) QueryMix(shard int32, max int) []QueryShape {
	if r == nil || r.qmix == nil || max <= 0 {
		return nil
	}
	qm := r.qmix
	qm.mu.Lock()
	byKey := make(map[string]*QueryShape)
	for i := 0; i < qm.len; i++ {
		s := &qm.buf[i]
		if s.shard != shard {
			continue
		}
		key := attrKey(s.attrs)
		sh := byKey[key]
		if sh == nil {
			sh = &QueryShape{Shard: shard, Attrs: append([]int(nil), s.attrs...)}
			byKey[key] = sh
		}
		sh.Count++
	}
	qm.mu.Unlock()
	out := make([]QueryShape, 0, len(byKey))
	for _, sh := range byKey {
		out = append(out, *sh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return lessInts(out[i].Attrs, out[j].Attrs)
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// attrKey encodes an ascending attribute-id slice (Elements order) as
// a map key. Varint-ish byte packing would be overkill: the mix is
// aggregated once per recluster round, not per query.
func attrKey(attrs []int) string {
	b := make([]byte, 0, len(attrs)*3)
	for _, a := range attrs {
		for a >= 0x80 {
			b = append(b, byte(a)|0x80)
			a >>= 7
		}
		b = append(b, byte(a))
	}
	return string(b)
}

func lessInts(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// reclusterOutcomeCap bounds the victim-outcome ring (newest wins).
const reclusterOutcomeCap = 64

// ReclusterOutcome records one victim partition's migration and the
// efficiency it was selected at versus the efficiency measured from
// fresh queries afterwards. RatioAfter is only meaningful once the
// partition has been read again post-migration (AfterKnown).
type ReclusterOutcome struct {
	Shard       int32   `json:"shard"`
	Partition   uint64  `json:"partition"`
	RatioBefore float64 `json:"ratio_before"`
	RatioAfter  float64 `json:"ratio_after"`
	AfterKnown  bool    `json:"after_known"`
	Examined    int64   `json:"examined"`
	Moved       int64   `json:"moved"`
}

// RecordReclusterOutcome appends one victim outcome to the bounded
// ring rendered on /metrics and /debug/recluster. Nil-safe.
func (r *Registry) RecordReclusterOutcome(o ReclusterOutcome) {
	if r == nil {
		return
	}
	r.reclMu.Lock()
	if r.reclOutcomes == nil {
		r.reclOutcomes = make([]ReclusterOutcome, reclusterOutcomeCap)
	}
	r.reclOutcomes[r.reclNext] = o
	r.reclNext = (r.reclNext + 1) % len(r.reclOutcomes)
	if r.reclLen < len(r.reclOutcomes) {
		r.reclLen++
	}
	r.reclMu.Unlock()
}

// ReclusterOutcomes returns the retained victim outcomes, oldest
// first. Nil-safe.
func (r *Registry) ReclusterOutcomes() []ReclusterOutcome {
	if r == nil {
		return nil
	}
	r.reclMu.Lock()
	defer r.reclMu.Unlock()
	out := make([]ReclusterOutcome, 0, r.reclLen)
	start := r.reclNext - r.reclLen
	for i := 0; i < r.reclLen; i++ {
		out = append(out, r.reclOutcomes[(start+i+len(r.reclOutcomes))%len(r.reclOutcomes)])
	}
	return out
}

// SetReclusterStatus installs (or, with nil, removes) the live status
// provider behind /debug/recluster. The recluster manager installs a
// closure over its Status method; registration order relative to Mux
// does not matter. Nil-safe.
func (r *Registry) SetReclusterStatus(f func() any) {
	if r == nil {
		return
	}
	if f == nil {
		r.reclusterStatus.Store(nil)
		return
	}
	r.reclusterStatus.Store(&f)
}

// reclusterStatusValue resolves the installed provider, reporting
// whether a reclusterer is attached at all.
func (r *Registry) reclusterStatusValue() (any, bool) {
	if r == nil {
		return nil, false
	}
	f := r.reclusterStatus.Load()
	if f == nil {
		return nil, false
	}
	return (*f)(), true
}
