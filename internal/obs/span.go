package obs

import (
	"sync"
	"time"
)

// Query spans: the per-query trace model.
//
// A QuerySpan follows one query end-to-end — ingress (server/wire),
// shard fan-out, per-partition prune verdicts, and the segment scans
// with their decoded-vs-sidecar-skipped split. The tracer is tiered so
// the always-on cost stays near zero:
//
//   - Heat accounting (heat.go) is unconditional: every query's
//     per-partition scan stats feed the heat map regardless of
//     sampling. It is the signal the background reclusterer consumes,
//     so it can never be sampled away.
//
//   - A span skeleton (one allocation, aggregate counters, per-shard
//     children) is built for every query while the tracer is enabled,
//     so the slow-query log always captures a full tree.
//
//   - Expensive detail — prune rationale per pruned partition, the
//     query description string — is recorded only when the span is
//     sampled (1-in-N) or the slow log is armed.
//
//   - Per-partition scan timing (a clock read per partition) is
//     recorded only for sampled spans.
//
// Sampled root spans land in a bounded recent-traces ring; spans whose
// total latency crosses the slow threshold land in the slow-query ring.
// Both are exposed by /debug/slow (http.go). Forced spans (the server's
// ?trace=1, the wire protocol's trace flag) bypass sampling and are
// returned inline to the caller.

// SpanKind names the query shape a span covers.
type SpanKind string

// Span kinds, matching the table layer's three read paths.
const (
	KindSelect      SpanKind = "select"
	KindSelectWhere SpanKind = "select-where"
	KindScanAll     SpanKind = "scan-all"
)

// PruneReason explains why a partition was skipped without reading it.
type PruneReason uint8

// Prune verdicts recorded on sampled spans.
const (
	// PruneSynopsisDisjoint: the partition's attribute synopsis shares no
	// attribute with the query (Select's OR shape).
	PruneSynopsisDisjoint PruneReason = iota
	// PruneSynopsisMissing: the partition's synopsis misses a predicate
	// attribute, so no member can satisfy the conjunction.
	PruneSynopsisMissing
	// PruneZoneMiss: a predicate cannot overlap the partition's value
	// zone for its attribute.
	PruneZoneMiss
)

func (pr PruneReason) String() string {
	switch pr {
	case PruneSynopsisDisjoint:
		return "synopsis-disjoint"
	case PruneSynopsisMissing:
		return "synopsis-missing-attr"
	case PruneZoneMiss:
		return "zone-no-overlap"
	}
	return "unknown"
}

// PruneSpan is one pruned partition's verdict.
type PruneSpan struct {
	Partition uint64 `json:"partition"`
	Reason    string `json:"reason"`
}

// PartSpan is one scanned partition's contribution to a query: the
// records visited, the decoded/sidecar-skipped split, and the byte
// volumes charged. The same struct feeds the heat map and the span
// tree. ScanNs is populated only on sampled spans.
type PartSpan struct {
	Shard         int32  `json:"shard"`
	Partition     uint64 `json:"partition"`
	Scanned       int64  `json:"records_scanned"`
	Returned      int64  `json:"records_returned"`
	Decoded       int64  `json:"records_decoded"`
	Skipped       int64  `json:"records_skipped"`
	BytesRead     int64  `json:"bytes_read"`
	BytesRelevant int64  `json:"bytes_relevant"`
	BytesSkipped  int64  `json:"bytes_skipped"`
	ScanNs        int64  `json:"scan_ns,omitempty"`
	// Bitmap-kernel attribution: set when the partition was scanned by
	// the word-parallel bitmap path instead of the per-record sidecar
	// loop (see internal/table bitmap.go).
	Bitmap      bool  `json:"bitmap,omitempty"`
	BitmapWords int64 `json:"bitmap_words,omitempty"`
	BitmapHits  int64 `json:"bitmap_hits,omitempty"`
}

// QueryAgg is the aggregate side of one finished query, mirroring the
// table layer's QueryReport.
type QueryAgg struct {
	PartitionsTotal   int64
	PartitionsTouched int64
	PartitionsPruned  int64
	EntitiesScanned   int64
	EntitiesReturned  int64
	BytesRead         int64
	BytesRelevant     int64
}

// QuerySpan is one query's trace node. Roots cover a whole query; a
// sharded query's root holds one child span per shard, in shard order
// (the fan-out merge is deterministic). All exported fields are the
// /debug/slow and inline-trace wire format.
type QuerySpan struct {
	ID                uint64       `json:"trace_id"`
	Kind              SpanKind     `json:"kind"`
	Query             string       `json:"query,omitempty"`
	Shard             int32        `json:"shard"` // -1 on roots and unsharded tables
	Sampled           bool         `json:"sampled"`
	DurationNs        int64        `json:"duration_ns"`
	PartitionsTotal   int64        `json:"partitions_total"`
	PartitionsTouched int64        `json:"partitions_touched"`
	PartitionsPruned  int64        `json:"partitions_pruned"`
	EntitiesScanned   int64        `json:"entities_scanned"`
	EntitiesReturned  int64        `json:"entities_returned"`
	BytesRead         int64        `json:"bytes_read"`
	BytesRelevant     int64        `json:"bytes_relevant"`
	Parts             []PartSpan   `json:"partitions,omitempty"`
	Prunes            []PruneSpan  `json:"prunes,omitempty"`
	Children          []*QuerySpan `json:"shards,omitempty"`

	child  bool // a fan-out child: the parent owns retention and slow-logging
	detail bool // record prune rationale and the query description
}

// WantDetail reports whether the span wants the query description and
// per-partition prune rationale (sampled, or the slow log is armed).
// Nil-safe: a nil span wants nothing.
func (sp *QuerySpan) WantDetail() bool { return sp != nil && sp.detail }

// TimeScans reports whether per-partition scan timing should be
// recorded (sampled spans only). Nil-safe.
func (sp *QuerySpan) TimeScans() bool { return sp != nil && sp.Sampled }

// SetQuery attaches the human-readable query description. Nil-safe.
func (sp *QuerySpan) SetQuery(q string) {
	if sp != nil {
		sp.Query = q
	}
}

// Prune records one pruned partition's verdict. No-op unless the span
// wants detail. Nil-safe.
func (sp *QuerySpan) Prune(pid uint64, reason PruneReason) {
	if sp == nil || !sp.detail {
		return
	}
	sp.Prunes = append(sp.Prunes, PruneSpan{Partition: pid, Reason: reason.String()})
}

// ResetPrunes clears recorded prune verdicts. Snapshot SelectWhere
// retries its prune pass when a zone rebuild races the capture; the
// retry re-records from scratch. Nil-safe.
func (sp *QuerySpan) ResetPrunes() {
	if sp != nil {
		sp.Prunes = sp.Prunes[:0]
	}
}

// NewChild creates the per-shard child span for a fan-out. The caller
// creates children serially (in shard order) before launching the
// fan-out goroutines; each goroutine then writes only its own child.
// Nil-safe: a nil parent yields a nil child.
func (sp *QuerySpan) NewChild(shard int32) *QuerySpan {
	if sp == nil {
		return nil
	}
	c := &QuerySpan{
		ID:      sp.ID,
		Kind:    sp.Kind,
		Shard:   shard,
		Sampled: sp.Sampled,
		child:   true,
		detail:  sp.detail,
	}
	sp.Children = append(sp.Children, c)
	return c
}

// sumChildren folds the per-shard children's aggregates into the root.
func (sp *QuerySpan) sumChildren() {
	for _, c := range sp.Children {
		sp.PartitionsTotal += c.PartitionsTotal
		sp.PartitionsTouched += c.PartitionsTouched
		sp.PartitionsPruned += c.PartitionsPruned
		sp.EntitiesScanned += c.EntitiesScanned
		sp.EntitiesReturned += c.EntitiesReturned
		sp.BytesRead += c.BytesRead
		sp.BytesRelevant += c.BytesRelevant
	}
}

// spanRing is a bounded mutex ring of retained spans (the slow-query
// log and the recent-sampled-traces buffer).
type spanRing struct {
	mu   sync.Mutex
	buf  []*QuerySpan
	next int
	n    int
	seq  uint64 // total spans ever added; the ring retains the last len(buf)
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{buf: make([]*QuerySpan, capacity)}
}

func (g *spanRing) add(sp *QuerySpan) {
	g.mu.Lock()
	g.buf[g.next] = sp
	g.next = (g.next + 1) % len(g.buf)
	if g.n < len(g.buf) {
		g.n++
	}
	g.seq++
	g.mu.Unlock()
}

// dump returns the retained spans, oldest first.
func (g *spanRing) dump() []*QuerySpan {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*QuerySpan, 0, g.n)
	start := g.next - g.n
	if start < 0 {
		start += len(g.buf)
	}
	for i := 0; i < g.n; i++ {
		out = append(out, g.buf[(start+i)%len(g.buf)])
	}
	return out
}

func (g *spanRing) total() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seq
}

// StartQuery begins a span for one query, making the 1-in-N sampling
// decision. Returns nil when the registry is nil or the span tracer is
// disabled (Options.TraceSampleEvery < 0) — heat accounting and slow
// synthesis still happen in FinishQuery. The span's Shard is the
// handle's shard id.
func (r *Registry) StartQuery(kind SpanKind) *QuerySpan {
	if r == nil || r.traceEvery == 0 {
		return nil
	}
	sampled := r.traceEvery == 1 || (r.sampleTick.Add(1)-1)%uint64(r.traceEvery) == 0
	return &QuerySpan{
		ID:      r.traceID.Add(1),
		Kind:    kind,
		Shard:   r.shard,
		Sampled: sampled,
		detail:  sampled || r.slowNs.Load() > 0,
	}
}

// StartQueryForced begins a span that bypasses sampling — the server's
// ?trace=1 and the wire protocol's trace flag. The span is treated as
// sampled (full detail, per-partition timing) and is returned inline to
// the caller in addition to normal retention. Nil-safe.
func (r *Registry) StartQueryForced(kind SpanKind) *QuerySpan {
	if r == nil {
		return nil
	}
	return &QuerySpan{
		ID:      r.traceID.Add(1),
		Kind:    kind,
		Shard:   r.shard,
		Sampled: true,
		detail:  true,
	}
}

// FinishQuery completes one query's span bookkeeping:
//
//   - feeds parts into the always-on heat map (keyed by this handle's
//     shard id),
//   - fills sp's duration, aggregates, and partition details,
//   - on root spans: retains sampled spans in the recent ring and
//     over-threshold spans in the slow-query ring (children are merged
//     and retained by their parent's FinishQuery).
//
// A sharded root passes parts == nil (its children carry the parts) and
// its aggregates are summed from the children. When sp is nil (tracer
// disabled) the heat map is still fed, and a minimal span is
// synthesized for the slow log if the query crossed the threshold.
// Nil-safe.
func (r *Registry) FinishQuery(sp *QuerySpan, ns int64, agg QueryAgg, parts []PartSpan) {
	if r == nil {
		return
	}
	if len(parts) > 0 {
		for i := range parts {
			parts[i].Shard = r.shard
		}
		if r.heat != nil {
			r.heat.note(parts, r.snapEpoch.Load(), r.counters[CQueries].Load())
		}
	}
	slowNs := r.slowNs.Load()
	if sp == nil {
		if slowNs > 0 && ns >= slowNs {
			sp = &QuerySpan{Shard: r.shard, DurationNs: ns, Parts: parts}
			sp.applyAgg(agg)
			r.counters[CSlowQueries].Add(1)
			r.slow.add(sp)
		}
		return
	}
	sp.DurationNs = ns
	sp.Parts = parts
	if len(sp.Children) > 0 {
		sp.sumChildren()
	} else {
		sp.applyAgg(agg)
	}
	if sp.child {
		return
	}
	if sp.Sampled {
		r.counters[CTraceSampled].Add(1)
		r.recent.add(sp)
	}
	if slowNs > 0 && ns >= slowNs {
		r.counters[CSlowQueries].Add(1)
		r.slow.add(sp)
	}
}

func (sp *QuerySpan) applyAgg(agg QueryAgg) {
	sp.PartitionsTotal = agg.PartitionsTotal
	sp.PartitionsTouched = agg.PartitionsTouched
	sp.PartitionsPruned = agg.PartitionsPruned
	sp.EntitiesScanned = agg.EntitiesScanned
	sp.EntitiesReturned = agg.EntitiesReturned
	sp.BytesRead = agg.BytesRead
	sp.BytesRelevant = agg.BytesRelevant
}

// SetSlowThreshold arms (d > 0) or disarms (d <= 0) the slow-query log.
// Queries whose total latency reaches d are retained in the slow ring
// with their full span tree. Nil-safe.
func (r *Registry) SetSlowThreshold(d time.Duration) {
	if r == nil {
		return
	}
	r.slowNs.Store(int64(d))
}

// SlowThreshold returns the armed slow-query threshold (0 = disarmed).
func (r *Registry) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowNs.Load())
}

// SlowDump returns the retained slow-query spans, oldest first, plus
// the total number of slow queries ever observed (the ring may retain
// fewer). Nil-safe.
func (r *Registry) SlowDump() ([]*QuerySpan, uint64) {
	if r == nil {
		return nil, 0
	}
	return r.slow.dump(), r.slow.total()
}

// RecentTraces returns the retained sampled root spans, oldest first.
// Nil-safe.
func (r *Registry) RecentTraces() []*QuerySpan {
	if r == nil {
		return nil
	}
	return r.recent.dump()
}

// TraceSampleEvery returns the sampling period (every N-th query is
// traced in detail); 0 means the span tracer is disabled.
func (r *Registry) TraceSampleEvery() int {
	if r == nil {
		return 0
	}
	return int(r.traceEvery)
}
