package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// finishOne runs one fake query through the registry: a span from
// StartQuery, one scanned partition, and aggregates consistent with it.
func finishOne(r *Registry, pid uint64, scanned, returned, ns int64) *QuerySpan {
	sp := r.StartQuery(KindSelect)
	parts := []PartSpan{{
		Partition: pid,
		Scanned:   scanned,
		Returned:  returned,
		Decoded:   returned,
		Skipped:   scanned - returned,
		BytesRead: scanned * 10, BytesRelevant: returned * 10, BytesSkipped: (scanned - returned) * 10,
	}}
	r.FinishQuery(sp, ns, QueryAgg{
		PartitionsTotal: 1, PartitionsTouched: 1,
		EntitiesScanned: scanned, EntitiesReturned: returned,
		BytesRead: scanned * 10, BytesRelevant: returned * 10,
	}, parts)
	return sp
}

// TestTraceSamplingCadence pins the 1-in-N contract: with
// TraceSampleEvery=4, exactly every fourth StartQuery is sampled, every
// query still gets a span skeleton, and only sampled roots land in the
// recent-traces ring and the sampled counter.
func TestTraceSamplingCadence(t *testing.T) {
	r := New(Options{TraceSampleEvery: 4})
	if got := r.TraceSampleEvery(); got != 4 {
		t.Fatalf("TraceSampleEvery = %d, want 4", got)
	}
	var sampled int
	for i := 0; i < 8; i++ {
		sp := finishOne(r, 1, 10, 2, 1000)
		if sp == nil {
			t.Fatalf("query %d: no span skeleton while tracer enabled", i)
		}
		if sp.Sampled {
			sampled++
			if !sp.WantDetail() {
				t.Fatalf("query %d: sampled span does not want detail", i)
			}
			if !sp.TimeScans() {
				t.Fatalf("query %d: sampled span does not time scans", i)
			}
		} else {
			// Slow log disarmed: unsampled spans skip the expensive detail.
			if sp.WantDetail() || sp.TimeScans() {
				t.Fatalf("query %d: unsampled span records detail with slow log disarmed", i)
			}
		}
	}
	if sampled != 2 {
		t.Fatalf("sampled %d of 8 queries at 1-in-4, want 2", sampled)
	}
	if got := r.Counter(CTraceSampled); got != 2 {
		t.Fatalf("CTraceSampled = %d, want 2", got)
	}
	recent := r.RecentTraces()
	if len(recent) != 2 {
		t.Fatalf("recent ring holds %d spans, want 2", len(recent))
	}
	// Retained spans carry the filled-in skeleton: duration, aggregates,
	// and the per-partition scan rows.
	for _, sp := range recent {
		if sp.DurationNs != 1000 || sp.EntitiesScanned != 10 || sp.EntitiesReturned != 2 {
			t.Fatalf("retained span not filled: %+v", sp)
		}
		if len(sp.Parts) != 1 || sp.Parts[0].Partition != 1 {
			t.Fatalf("retained span parts = %+v, want partition 1", sp.Parts)
		}
	}

	// Arming the slow log upgrades unsampled spans to detail (the slow
	// ring must capture prune rationale even for the unsampled majority).
	r.SetSlowThreshold(time.Second)
	var unsampledDetail bool
	for i := 0; i < 4; i++ {
		if sp := r.StartQuery(KindSelect); !sp.Sampled && sp.WantDetail() {
			unsampledDetail = true
		}
	}
	if !unsampledDetail {
		t.Fatal("no unsampled span wanted detail with the slow log armed")
	}
}

// TestTraceDisabledStillFeedsHeatAndSlowLog pins the tiering contract
// for TraceSampleEvery < 0: StartQuery yields nil, but FinishQuery keeps
// feeding the always-on heat map, and an over-threshold query still gets
// a synthesized span in the slow ring.
func TestTraceDisabledStillFeedsHeatAndSlowLog(t *testing.T) {
	r := New(Options{TraceSampleEvery: -1})
	if sp := r.StartQuery(KindSelect); sp != nil {
		t.Fatalf("StartQuery returned %+v with the tracer disabled", sp)
	}
	if got := r.TraceSampleEvery(); got != 0 {
		t.Fatalf("TraceSampleEvery = %d with tracer disabled, want 0", got)
	}

	finishOne(r, 7, 100, 25, 1000)
	heat := r.HeatSnapshot()
	if len(heat) != 1 || heat[0].Partition != 7 {
		t.Fatalf("heat = %+v, want exactly partition 7", heat)
	}
	h := heat[0]
	if h.Queries != 1 || h.RecordsRead != 100 || h.RecordsRelevant != 25 {
		t.Fatalf("heat row = %+v, want queries=1 read=100 relevant=25", h)
	}
	if h.ReadRatio != 0.25 {
		t.Fatalf("ReadRatio = %v, want 0.25", h.ReadRatio)
	}
	if h.BytesDecoded != h.BytesRead-h.BytesSkipped {
		t.Fatalf("BytesDecoded = %d, want read-skipped = %d", h.BytesDecoded, h.BytesRead-h.BytesSkipped)
	}

	// Under the threshold: nothing synthesized.
	r.SetSlowThreshold(time.Millisecond)
	finishOne(r, 7, 10, 1, int64(time.Millisecond)-1)
	if slow, total := r.SlowDump(); len(slow) != 0 || total != 0 {
		t.Fatalf("slow ring = %d/%d after a fast query", len(slow), total)
	}
	// Over it: a minimal span appears with aggregates and parts attached.
	finishOne(r, 7, 10, 1, int64(2*time.Millisecond))
	slow, total := r.SlowDump()
	if len(slow) != 1 || total != 1 {
		t.Fatalf("slow ring = %d/%d after a slow query, want 1/1", len(slow), total)
	}
	if sp := slow[0]; sp.DurationNs != int64(2*time.Millisecond) || sp.EntitiesScanned != 10 || len(sp.Parts) != 1 {
		t.Fatalf("synthesized slow span = %+v", sp)
	}
	if got := r.Counter(CSlowQueries); got != 1 {
		t.Fatalf("CSlowQueries = %d, want 1", got)
	}
}

// TestTraceForcedBypassesSampling pins the ?trace=1 path: a forced span
// is fully sampled and detailed even when the tracer is disabled.
func TestTraceForcedBypassesSampling(t *testing.T) {
	r := New(Options{TraceSampleEvery: -1})
	sp := r.StartQueryForced(KindSelectWhere)
	if sp == nil || !sp.Sampled || !sp.WantDetail() || !sp.TimeScans() {
		t.Fatalf("forced span = %+v, want sampled with detail", sp)
	}
	sp.Prune(3, PruneZoneMiss)
	r.FinishQuery(sp, 500, QueryAgg{PartitionsTotal: 2, PartitionsPruned: 1}, nil)
	if len(sp.Prunes) != 1 || sp.Prunes[0].Reason != "zone-no-overlap" {
		t.Fatalf("prunes = %+v", sp.Prunes)
	}
	// Forced spans also count as sampled retention.
	if got := r.Counter(CTraceSampled); got != 1 {
		t.Fatalf("CTraceSampled = %d, want 1", got)
	}
}

// TestTraceSlowRingBounded overflows the slow ring and checks bounded
// retention with an exact total and oldest-first dump order.
func TestTraceSlowRingBounded(t *testing.T) {
	r := New(Options{TraceSampleEvery: -1, SlowLogCap: 2})
	r.SetSlowThreshold(time.Nanosecond)
	for i := 1; i <= 5; i++ {
		finishOne(r, uint64(i), int64(i), 0, int64(time.Millisecond))
	}
	slow, total := r.SlowDump()
	if total != 5 {
		t.Fatalf("slow total = %d, want 5", total)
	}
	if len(slow) != 2 {
		t.Fatalf("slow ring retained %d, want cap 2", len(slow))
	}
	// Oldest-first: queries 4 then 5 (identified by their scan volume).
	if slow[0].EntitiesScanned != 4 || slow[1].EntitiesScanned != 5 {
		t.Fatalf("slow dump order = [%d, %d], want [4, 5]",
			slow[0].EntitiesScanned, slow[1].EntitiesScanned)
	}
	if got := r.Counter(CSlowQueries); got != 5 {
		t.Fatalf("CSlowQueries = %d, want 5", got)
	}
}

// TestTraceShardFanOutMerge builds a sharded root span by hand the way
// internal/shard does — children created in shard order, each finished
// by its shard's registry handle — and checks the root sums the children
// while the heat map attributes each partition to its shard.
func TestTraceShardFanOutMerge(t *testing.T) {
	r := New(Options{TraceSampleEvery: 1})
	sv := []*Registry{r.ShardView(0), r.ShardView(1)}

	root := r.StartQuery(KindSelect)
	root.SetQuery("select(a)")
	children := []*QuerySpan{root.NewChild(0), root.NewChild(1)}
	for i, c := range children {
		if c.Shard != int32(i) || !c.Sampled {
			t.Fatalf("child %d = %+v", i, c)
		}
		parts := []PartSpan{{Partition: uint64(10 + i), Scanned: 10, Returned: int64(i)}}
		sv[i].FinishQuery(c, 100, QueryAgg{
			PartitionsTotal: 3, PartitionsTouched: 1, PartitionsPruned: 2,
			EntitiesScanned: 10, EntitiesReturned: int64(i),
		}, parts)
		// Children are merged by the parent, never retained on their own.
		if got := len(r.RecentTraces()); got != 0 {
			t.Fatalf("child %d retained itself: recent ring has %d spans", i, got)
		}
		if parts[0].Shard != int32(i) {
			t.Fatalf("child %d part shard = %d, want %d (stamped by the shard handle)", i, parts[0].Shard, i)
		}
	}
	r.FinishQuery(root, 250, QueryAgg{}, nil)

	if root.PartitionsTotal != 6 || root.PartitionsTouched != 2 || root.PartitionsPruned != 4 {
		t.Fatalf("root partition sums = %d/%d/%d, want 6/2/4",
			root.PartitionsTotal, root.PartitionsTouched, root.PartitionsPruned)
	}
	if root.EntitiesScanned != 20 || root.EntitiesReturned != 1 {
		t.Fatalf("root entity sums = %d/%d, want 20/1", root.EntitiesScanned, root.EntitiesReturned)
	}
	if root.Shard != -1 {
		t.Fatalf("root shard = %d, want -1", root.Shard)
	}
	if got := r.RecentTraces(); len(got) != 1 || got[0] != root {
		t.Fatalf("recent ring = %v, want just the root", got)
	}

	heat := r.HeatSnapshot()
	if len(heat) != 2 {
		t.Fatalf("heat rows = %d, want 2 (one per shard)", len(heat))
	}
	for i, h := range heat {
		if h.Shard != int32(i) || h.Partition != uint64(10+i) {
			t.Fatalf("heat[%d] = shard %d partition %d, want shard %d partition %d",
				i, h.Shard, h.Partition, i, 10+i)
		}
	}

	// The span tree is the wire format: it must round-trip as JSON with
	// the children under "shards".
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatalf("marshal root span: %v", err)
	}
	var back QuerySpan
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal root span: %v", err)
	}
	if len(back.Children) != 2 || back.Children[1].Parts[0].Partition != 11 {
		t.Fatalf("round-tripped span tree = %s", b)
	}
}

// TestTraceDebugEndpoints drives /debug/heat and /debug/slow through
// httptest and checks the JSON shapes the README documents.
func TestTraceDebugEndpoints(t *testing.T) {
	r := New(Options{TraceSampleEvery: 1})
	r.SetSlowThreshold(time.Nanosecond)
	finishOne(r, 1, 100, 80, int64(time.Millisecond)) // warm partition
	finishOne(r, 2, 100, 5, int64(time.Millisecond))  // cold partition

	srv := httptest.NewServer(r.Mux())
	defer srv.Close()

	var heat struct {
		Enabled    bool            `json:"enabled"`
		Partitions int             `json:"partitions"`
		Heat       []PartitionHeat `json:"heat"`
	}
	getJSON(t, srv.URL+"/debug/heat", &heat)
	if !heat.Enabled || heat.Partitions != 2 || len(heat.Heat) != 2 {
		t.Fatalf("/debug/heat = %+v", heat)
	}

	// ?by=ratio&limit=1 returns just the coldest partition.
	getJSON(t, srv.URL+"/debug/heat?by=ratio&limit=1", &heat)
	if len(heat.Heat) != 1 || heat.Heat[0].Partition != 2 {
		t.Fatalf("/debug/heat?by=ratio&limit=1 = %+v, want partition 2", heat.Heat)
	}
	// ?min filters by query count.
	getJSON(t, srv.URL+"/debug/heat?min=2", &heat)
	if len(heat.Heat) != 0 {
		t.Fatalf("/debug/heat?min=2 = %+v, want empty (each partition saw 1 query)", heat.Heat)
	}

	var slow struct {
		ThresholdNs int64        `json:"threshold_ns"`
		SlowTotal   uint64       `json:"slow_total"`
		Slow        []*QuerySpan `json:"slow"`
		SampleEvery int          `json:"sample_every"`
		Sampled     []*QuerySpan `json:"sampled"`
	}
	getJSON(t, srv.URL+"/debug/slow", &slow)
	if slow.ThresholdNs != 1 || slow.SlowTotal != 2 || len(slow.Slow) != 2 {
		t.Fatalf("/debug/slow = threshold %d, %d/%d slow", slow.ThresholdNs, len(slow.Slow), slow.SlowTotal)
	}
	if slow.SampleEvery != 1 || len(slow.Sampled) != 2 {
		t.Fatalf("/debug/slow sampled ring = every %d, %d spans", slow.SampleEvery, len(slow.Sampled))
	}
	if sp := slow.Slow[0]; sp.Kind != KindSelect || len(sp.Parts) != 1 {
		t.Fatalf("slow span over the wire = %+v", sp)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestMetricsHelpTypeCoverage parses the full /metrics exposition and
// requires every sample to belong to a family announced by a preceding
// HELP and TYPE pair — no orphan samples, no duplicate headers — and
// pins the family list the dashboards depend on, including the tracing
// gauges, the heat families, and the per-shard decode attribution.
func TestMetricsHelpTypeCoverage(t *testing.T) {
	r := New(Options{TraceSampleEvery: 1})
	r.SetSlowThreshold(time.Millisecond)
	// Exercise every conditional family: shard views with decode
	// attribution, heat rows, and one of everything countable.
	for c := Counter(0); c < numCounters; c++ {
		r.Add(c, 1)
	}
	sv := r.ShardView(0)
	sv.Add(CScanDecoded, 7)
	sv.Add(CScanDecodeSkipped, 3)
	sv.SetPartitions(2)
	sp := sv.StartQuery(KindSelect)
	sv.FinishQuery(sp, int64(2*time.Millisecond), QueryAgg{PartitionsTotal: 1, PartitionsTouched: 1},
		[]PartSpan{{Partition: 4, Scanned: 10, Returned: 1, Decoded: 7, Skipped: 3, BytesRead: 100, BytesSkipped: 30}})
	r.NoteQuery(1, 0, 1, 10, 10, 100, 1000)
	r.ObserveInsertNs(100)
	r.ObserveWALAppendNs(100)
	r.ObserveWALSyncNs(100)
	r.ObserveServerNs(100)
	r.ObserveBatchSize(4)
	r.ObserveWireBatch(4)

	var buf strings.Builder
	r.WriteMetrics(&buf)

	type family struct{ help, typ bool }
	families := map[string]*family{}
	ensure := func(name string) *family {
		f := families[name]
		if f == nil {
			f = &family{}
			families[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			f := ensure(name)
			if f.help {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			f.help = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q for %s", ln+1, typ, name)
			}
			f := ensure(name)
			if !f.help {
				t.Fatalf("line %d: TYPE before HELP for %s", ln+1, name)
			}
			if f.typ {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			f.typ = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			// Sample: "<name>[{labels}] <value>". Histogram samples use
			// the family name plus a _bucket/_sum/_count suffix.
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b := strings.TrimSuffix(name, suf); b != name && families[b] != nil {
					base = b
					break
				}
			}
			f := families[base]
			if f == nil || !f.help || !f.typ {
				t.Fatalf("line %d: sample %q without preceding HELP+TYPE", ln+1, line)
			}
		}
	}
	for name, f := range families {
		if !f.typ {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
		if !strings.HasPrefix(name, "cinderella_") {
			t.Errorf("family %s outside the cinderella_ namespace", name)
		}
	}

	// The golden family list: everything a dashboard or the verify gate
	// references must be announced. Growing the list is fine; losing a
	// family is a break.
	for _, want := range []string{
		"cinderella_inserts_total",
		"cinderella_queries_total",
		"cinderella_scan_records_decoded_total",
		"cinderella_scan_decode_skipped_total",
		"cinderella_server_bytes_in_total",
		"cinderella_server_bytes_out_total",
		"cinderella_partitions",
		"cinderella_snapshot_epoch",
		"cinderella_efficiency",
		"cinderella_efficiency_bytes",
		"cinderella_trace_sampled_total",
		"cinderella_slow_queries_total",
		"cinderella_slow_threshold_seconds",
		"cinderella_trace_sample_period",
		"cinderella_heat_partitions",
		"cinderella_partition_read_ratio",
		"cinderella_partition_heat_queries_total",
		"cinderella_partition_heat_records_read_total",
		"cinderella_shard_queries_total",
		"cinderella_shard_scan_records_decoded_total",
		"cinderella_shard_scan_decode_skipped_total",
		"cinderella_shard_partitions",
		"cinderella_query_duration_seconds",
		"cinderella_insert_duration_seconds",
	} {
		if f := families[want]; f == nil || !f.help || !f.typ {
			t.Errorf("required family %s missing from /metrics", want)
		}
	}

	// The per-shard decode attribution (the PR-4 ShardView pattern) must
	// carry exactly what the shard handle's scan path recorded via Add;
	// FinishQuery feeds the heat map, not the counters.
	body := buf.String()
	for _, want := range []string{
		`cinderella_shard_scan_records_decoded_total{shard="0"} 7`,
		`cinderella_shard_scan_decode_skipped_total{shard="0"} 3`,
		`cinderella_partition_read_ratio{shard="0",partition="4"} 0.1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceStartQueryNilRegistry pins nil-safety across the span API.
func TestTraceStartQueryNilRegistry(t *testing.T) {
	var r *Registry
	if sp := r.StartQuery(KindSelect); sp != nil {
		t.Fatal("nil registry produced a span")
	}
	if sp := r.StartQueryForced(KindSelect); sp != nil {
		t.Fatal("nil registry produced a forced span")
	}
	r.FinishQuery(nil, 1, QueryAgg{}, []PartSpan{{Partition: 1}})
	r.SetSlowThreshold(time.Second)
	if d := r.SlowThreshold(); d != 0 {
		t.Fatalf("nil SlowThreshold = %v", d)
	}
	if slow, total := r.SlowDump(); slow != nil || total != 0 {
		t.Fatal("nil SlowDump not empty")
	}
	if r.RecentTraces() != nil || r.TraceSampleEvery() != 0 || r.HeatSnapshot() != nil || r.HeatEnabled() {
		t.Fatal("nil registry trace accessors not empty")
	}
	var sp *QuerySpan
	if sp.WantDetail() || sp.TimeScans() {
		t.Fatal("nil span wants work")
	}
	sp.SetQuery("q")
	sp.Prune(1, PruneZoneMiss)
	sp.ResetPrunes()
	if c := sp.NewChild(0); c != nil {
		t.Fatal("nil span produced a child")
	}
}
