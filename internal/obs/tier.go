package obs

// Tiered-storage observability: the live status provider behind
// /debug/tier. The tiering manager (internal/tier) installs a closure
// over its Status method, mirroring the reclusterer's arrangement; the
// freeze/thaw transition counters themselves are ordinary registry
// counters (CTierFreezes, CTierThaws) published by the table layer.

// SetTierStatus installs (or, with nil, removes) the live status
// provider behind /debug/tier. Nil-safe.
func (r *Registry) SetTierStatus(f func() any) {
	if r == nil {
		return
	}
	if f == nil {
		r.tierStatus.Store(nil)
		return
	}
	r.tierStatus.Store(&f)
}

// tierStatusValue resolves the installed provider, reporting whether a
// tiering manager is attached at all.
func (r *Registry) tierStatusValue() (any, bool) {
	if r == nil {
		return nil, false
	}
	f := r.tierStatus.Load()
	if f == nil {
		return nil, false
	}
	return (*f)(), true
}
