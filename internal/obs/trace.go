package obs

import "sync"

// The event trace records structured partitioner decisions in a bounded
// in-memory ring: which partition an insert chose and at what rating,
// which starter pair seeded a split and what the resulting partitions
// look like, when partitions appear and disappear. Dump snapshots the
// ring for post-mortem analysis in tests and experiments — the
// micro-scale counterpart of the paper's Figure 8 split accounting.

// EventKind tags a trace event.
type EventKind uint8

// Trace event kinds.
const (
	// EvInsert is an unrestricted placement decision: Entity was placed
	// into To at Rating (0 when a fresh partition was opened because no
	// candidate rated non-negative).
	EvInsert EventKind = iota + 1
	// EvNewPartition records partition To entering the catalog.
	EvNewPartition
	// EvSplit records a full split of From into To and To2, seeded by
	// the starter pair (StarterA, StarterB); SynA/SynB are the resulting
	// partitions' synopsis sizes after redistribution (0 if a cascade
	// replaced that target).
	EvSplit
	// EvMove is a physical relocation of Entity from From to To (split
	// redistribution, cascade, or merge).
	EvMove
	// EvUpdate records an entity update: To is the (possibly unchanged)
	// partition after re-rating.
	EvUpdate
	// EvDelete records an entity delete out of From.
	EvDelete
	// EvDrop records partition From leaving the catalog.
	EvDrop
	// EvMerge records Compact merging partition From into To.
	EvMerge
)

// String names the kind for dumps and JSON.
func (k EventKind) String() string {
	switch k {
	case EvInsert:
		return "insert"
	case EvNewPartition:
		return "new-partition"
	case EvSplit:
		return "split"
	case EvMove:
		return "move"
	case EvUpdate:
		return "update"
	case EvDelete:
		return "delete"
	case EvDrop:
		return "drop"
	case EvMerge:
		return "merge"
	}
	return "unknown"
}

// Event is one structured partitioner decision. Field meaning depends on
// Kind (see the kind constants); unused fields are zero. Shard is the id
// of the shard whose partitioner emitted the event (-1 when the producer
// is an unsharded table); TraceEvent stamps it from the handle.
type Event struct {
	Seq      uint64    `json:"seq"`
	Kind     EventKind `json:"kind"`
	Shard    int32     `json:"shard"`
	Entity   uint64    `json:"entity,omitempty"`
	From     uint64    `json:"from,omitempty"`
	To       uint64    `json:"to,omitempty"`
	To2      uint64    `json:"to2,omitempty"`
	Rating   float64   `json:"rating,omitempty"`
	StarterA uint64    `json:"starter_a,omitempty"`
	StarterB uint64    `json:"starter_b,omitempty"`
	SynA     int       `json:"syn_a,omitempty"`
	SynB     int       `json:"syn_b,omitempty"`
}

// Trace is the bounded event ring. Writers are serialized by a mutex —
// the partitioner itself is single-writer, but independent tables may
// share one registry — and the preallocated buffer keeps the steady
// state allocation-free.
type Trace struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // total events ever added
}

func newTrace(capacity int) *Trace {
	return &Trace{buf: make([]Event, capacity)}
}

// add stamps ev with the next sequence number and stores it, evicting
// the oldest event once the ring is full.
func (t *Trace) add(ev Event) {
	t.mu.Lock()
	ev.Seq = t.seq
	t.buf[t.seq%uint64(len(t.buf))] = ev
	t.seq++
	t.mu.Unlock()
}

// Seq returns the total number of events ever added.
func (t *Trace) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dump snapshots the retained events, oldest first.
func (t *Trace) Dump() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	capU := uint64(len(t.buf))
	if n > capU {
		out := make([]Event, 0, capU)
		for i := n - capU; i < n; i++ {
			out = append(out, t.buf[i%capU])
		}
		return out
	}
	out := make([]Event, n)
	copy(out, t.buf[:n])
	return out
}
