package recluster_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"cinderella"
	"cinderella/internal/obs"
	"cinderella/internal/recluster"
)

// shiftDoc builds one adversarial entity: two common attributes plus
// one attribute from the "a" family (fast-cycling) and one from the
// "b" family (slow-cycling), assigned independently. With 64 a×b
// combinations and 16-entity partitions, a partition can be pure in
// one family or the other but never both — whichever family the
// current workload queries decides which grouping is efficient.
func shiftDoc(i int) cinderella.Doc {
	return cinderella.Doc{
		"c0":                        i,
		"c1":                        "x",
		fmt.Sprintf("a%d", i%8):     1,
		fmt.Sprintf("b%d", (i/8)%8): 1,
	}
}

// sweep runs one query per attribute of the given family and returns
// the aggregate relevant/read byte ratio — Definition 1's EFFICIENCY
// over the sweep.
func sweep(t *cinderella.Table, family string) float64 {
	var read, relevant int64
	for i := 0; i < 8; i++ {
		_, rep := t.QueryWithReport(fmt.Sprintf("%s%d", family, i))
		read += rep.BytesRead
		relevant += rep.BytesRelevant
	}
	if read == 0 {
		return 0
	}
	return float64(relevant) / float64(read)
}

// TestReclusterRecoversAfterShift drives the full loop end to end: a
// durable table is trained on workload A, the workload shifts to B,
// and manager ticks with the workload-blended rating must migrate
// entities until B's efficiency improves over the frozen layout.
func TestReclusterRecoversAfterShift(t *testing.T) {
	reg := cinderella.NewObserver()
	cfg := cinderella.Config{PartitionSizeLimit: 16, Obs: reg}
	dt, err := cinderella.OpenFile(filepath.Join(t.TempDir(), "shift.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()

	const docs = 512
	for i := 0; i < docs; i++ {
		if _, err := dt.Insert(shiftDoc(i)); err != nil {
			t.Fatal(err)
		}
	}

	m := recluster.New(dt, reg, recluster.Config{
		BatchSize:  64,
		MaxVictims: 8,
		MinQueries: 2,
		Alpha:      0.9,
	})
	defer m.Close()

	// Phase A: warm the heat map and the query mix with the a-family
	// workload, then let the reclusterer adapt the layout to it.
	for r := 0; r < 4; r++ {
		sweep(dt.Table, "a")
		m.Tick()
	}
	effAdapted := sweep(dt.Table, "a")

	// The workload shifts: forget the old mix, measure B on the frozen
	// layout, then let the reclusterer chase the new workload.
	reg.DecayHeat(0)
	effFrozen := sweep(dt.Table, "b")
	for r := 0; r < 8; r++ {
		sweep(dt.Table, "b")
		m.Tick()
	}
	effRecovered := sweep(dt.Table, "b")

	t.Logf("adapted(A)=%.3f frozen(B)=%.3f recovered(B)=%.3f", effAdapted, effFrozen, effRecovered)
	if effRecovered <= effFrozen {
		t.Fatalf("reclustering did not improve shifted-workload efficiency: frozen %.3f, recovered %.3f",
			effFrozen, effRecovered)
	}
	if got := reg.Counter(obs.CReclusterMoves); got == 0 {
		t.Fatal("no recluster moves recorded")
	}

	// Integrity: every entity survived the migrations exactly once.
	recs := dt.ScanAll()
	if len(recs) != docs {
		t.Fatalf("ScanAll after reclustering = %d records, want %d", len(recs), docs)
	}
	seen := make(map[cinderella.ID]bool, docs)
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate entity %d after reclustering", r.ID)
		}
		seen[r.ID] = true
	}

	st := m.Status()
	if st.Rounds == 0 || st.Moved == 0 {
		t.Fatalf("status = %+v, want rounds and moves", st)
	}
	if len(reg.ReclusterOutcomes()) == 0 {
		t.Fatal("no recluster outcomes settled")
	}
}

// TestDebugReclusterEndpoint pins the operational surface: with a
// manager attached, /debug/recluster reports enabled with live status;
// the metrics page exports the recluster counter families.
func TestDebugReclusterEndpoint(t *testing.T) {
	reg := cinderella.NewObserver()
	cfg := cinderella.Config{PartitionSizeLimit: 16, Obs: reg}
	dt, err := cinderella.OpenFile(filepath.Join(t.TempDir(), "dbg.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()

	srv := httptest.NewServer(reg.Mux())
	defer srv.Close()

	body := httpGet(t, srv.URL+"/debug/recluster")
	if !strings.Contains(body, `"enabled": false`) {
		t.Fatalf("pre-manager /debug/recluster = %s, want enabled false", body)
	}

	m := recluster.New(dt, reg, recluster.Config{MinQueries: 1})
	defer m.Close()
	for i := 0; i < 64; i++ {
		if _, err := dt.Insert(shiftDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	sweep(dt.Table, "a")
	m.Tick()

	body = httpGet(t, srv.URL+"/debug/recluster")
	for _, want := range []string{`"enabled": true`, `"rounds": 1`, `"batch_size"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/recluster = %s, missing %q", body, want)
		}
	}

	metrics := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"cinderella_recluster_rounds_total 1",
		"cinderella_recluster_moves_total",
		"cinderella_recluster_batches_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
