// Package recluster closes the observe→decide→act loop: a background
// manager that watches the partition heat map (per-partition EFFICIENCY
// from internal/obs), picks the partitions that are read a lot but
// rarely relevant, and incrementally re-rates their entities through
// the Cinderella Update/move machinery against a workload-blended
// rating — all online, in bounded batches under a write-rate governor,
// without stopping writers.
//
// Decide: victims come from ColdestPartitions (min-queries floor)
// re-ranked by wasted read volume, (1 - ratio) · bytes read — a
// partition that wastes gigabytes outranks one that wastes kilobytes
// at an equally bad ratio.
//
// Act: each victim entity is re-rated with Algorithm 1's attribute
// rating blended with a workload-relevance term derived from the
// recent query-shape mix (obs.QueryMix): score' = (1-α)·attr +
// α·Σ w_q·rel(e,q) / Σ w_q over the queries that scan the candidate
// partition, where rel is +1 when the entity matches the query and -1
// when it would be dead weight in a scanned partition. A negative
// blended best opens a fresh partition — that is how workload-pure
// partitions get seeded after a workload shift.
//
// Every move is an ordinary table mutation (seqlock bracket, WAL
// append), so snapshot readers, crash recovery, and the group
// committer treat reclustering like any other write traffic.
package recluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
)

// Store is the reclusterer's view of the data plane: one bounded
// re-rate-and-move batch against one (shard, partition) victim.
// *cinderella.DurableTable implements it ignoring shard (-1 in heat
// rows); shard.Sharded routes to the owning shard.
type Store interface {
	ReclusterPartition(shard int, pid uint64, max int, blender core.RatingBlender) (table.ReclusterResult, error)
}

// Config tunes the manager. Zero values take the documented defaults.
type Config struct {
	// Interval between background rounds (Run). Default 5s.
	Interval time.Duration
	// BatchSize bounds entities re-rated per victim per round. Default 64.
	BatchSize int
	// MaxVictims bounds victims migrated per round. Default 4.
	MaxVictims int
	// MinQueries is the heat floor: partitions with fewer (decayed)
	// queries are never victims. Default 16.
	MinQueries int
	// VictimThreshold: only partitions with relevant/read below this
	// qualify — an efficient partition is not worth rewriting. Default 0.75.
	VictimThreshold float64
	// Alpha is the workload-blend weight in [0,1]: 0 = pure attribute
	// rating, 1 = pure workload relevance. Default 0.5.
	Alpha float64
	// MaxMovesPerSec is the write-rate governor (token bucket). <= 0
	// means unlimited.
	MaxMovesPerSec float64
	// QueryMixSize bounds how many distinct recent query shapes feed
	// the blend. Default 16.
	QueryMixSize int
	// HeatHalfLife, when > 0, arms exponential heat decay on the
	// registry so victims reflect the recent workload.
	HeatHalfLife time.Duration
	// VictimFilter, when set, vetoes candidates: a (shard, partition)
	// for which it returns false is never selected. The daemon installs
	// the tiering manager's not-frozen check here so the reclusterer
	// does not re-rate a partition the tierer just compressed (every
	// re-rated member would thaw it again, and the two background
	// services would fight over the same partition).
	VictimFilter func(shard int32, pid uint64) bool
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaxVictims <= 0 {
		c.MaxVictims = 4
	}
	if c.MinQueries <= 0 {
		c.MinQueries = 16
	}
	if c.VictimThreshold <= 0 {
		c.VictimThreshold = 0.75
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.Alpha > 1 {
		c.Alpha = 1
	}
	if c.QueryMixSize <= 0 {
		c.QueryMixSize = 16
	}
	return c
}

// Victim is one migrated partition in the round/status reports.
type Victim struct {
	Shard       int32   `json:"shard"`
	Partition   uint64  `json:"partition"`
	RatioBefore float64 `json:"ratio_before"`
	BytesRead   int64   `json:"bytes_read"`
	Examined    int     `json:"examined"`
	Moved       int     `json:"moved"`
}

// ShardProgress attributes cumulative recluster work to one shard.
type ShardProgress struct {
	Shard    int32 `json:"shard"`
	Batches  int64 `json:"batches"`
	Examined int64 `json:"examined"`
	Moved    int64 `json:"moved"`
}

// Round summarizes one Tick.
type Round struct {
	Victims   []Victim `json:"victims"`
	Examined  int      `json:"examined"`
	Moved     int      `json:"moved"`
	Throttled bool     `json:"throttled"`
	Paused    bool     `json:"paused"`
	Err       string   `json:"err,omitempty"`
}

// Status is the /debug/recluster snapshot.
type Status struct {
	Paused         bool            `json:"paused"`
	Interval       string          `json:"interval"`
	BatchSize      int             `json:"batch_size"`
	MaxVictims     int             `json:"max_victims"`
	MinQueries     int             `json:"min_queries"`
	Alpha          float64         `json:"alpha"`
	MaxMovesPerSec float64         `json:"max_moves_per_sec"`
	HeatHalfLife   string          `json:"heat_half_life"`
	Rounds         int64           `json:"rounds"`
	Batches        int64           `json:"batches"`
	Examined       int64           `json:"examined"`
	Moved          int64           `json:"moved"`
	Throttled      int64           `json:"throttled_rounds"`
	LastVictims    []Victim        `json:"last_victims"`
	PerShard       []ShardProgress `json:"per_shard"`
}

// Manager drives reclustering. Ticks are serialized (Run calls Tick;
// tests and benches may call Tick directly between Run ticks only if
// Run is not active — normally one driver owns the manager).
type Manager struct {
	cfg Config
	st  Store
	reg *obs.Registry

	mu          sync.Mutex
	paused      bool
	rounds      int64
	batches     int64
	examined    int64
	moved       int64
	throttled   int64
	lastVictims []Victim
	perShard    map[int32]*ShardProgress

	// Governor token bucket.
	tokens     float64
	lastRefill time.Time
	now        func() time.Time // swapped by tests
}

// New returns a manager and installs its status provider on reg (so
// /debug/recluster answers) plus the configured heat half-life. Call
// Run to recluster in the background, or Tick for synchronous rounds.
func New(st Store, reg *obs.Registry, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		st:       st,
		reg:      reg,
		perShard: make(map[int32]*ShardProgress),
		now:      time.Now,
	}
	m.lastRefill = m.now()
	if cfg.MaxMovesPerSec > 0 {
		m.tokens = m.burst() // start with a full bucket
	}
	if cfg.HeatHalfLife > 0 {
		reg.SetHeatHalfLife(cfg.HeatHalfLife)
	}
	reg.SetReclusterStatus(func() any { return m.Status() })
	return m
}

// Close detaches the manager from the registry's status surface.
func (m *Manager) Close() { m.reg.SetReclusterStatus(nil) }

// Pause suspends reclustering: Ticks become no-ops until Resume. The
// daemon pauses the manager when drain begins so shutdown never races
// a migration batch.
func (m *Manager) Pause() {
	m.mu.Lock()
	m.paused = true
	m.mu.Unlock()
}

// Resume lifts Pause.
func (m *Manager) Resume() {
	m.mu.Lock()
	m.paused = false
	m.mu.Unlock()
}

// Run ticks every cfg.Interval until ctx is canceled.
func (m *Manager) Run(ctx context.Context) {
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Tick()
		}
	}
}

// Status snapshots the manager for /debug/recluster.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		Paused:         m.paused,
		Interval:       m.cfg.Interval.String(),
		BatchSize:      m.cfg.BatchSize,
		MaxVictims:     m.cfg.MaxVictims,
		MinQueries:     m.cfg.MinQueries,
		Alpha:          m.cfg.Alpha,
		MaxMovesPerSec: m.cfg.MaxMovesPerSec,
		HeatHalfLife:   m.cfg.HeatHalfLife.String(),
		Rounds:         m.rounds,
		Batches:        m.batches,
		Examined:       m.examined,
		Moved:          m.moved,
		Throttled:      m.throttled,
		LastVictims:    append([]Victim(nil), m.lastVictims...),
	}
	for _, p := range m.perShard {
		s.PerShard = append(s.PerShard, *p)
	}
	sort.Slice(s.PerShard, func(i, j int) bool { return s.PerShard[i].Shard < s.PerShard[j].Shard })
	return s
}

// burst is the governor bucket capacity: at least one full round.
func (m *Manager) burst() float64 {
	b := m.cfg.MaxMovesPerSec
	if min := float64(m.cfg.BatchSize); b < min {
		b = min
	}
	return b
}

// refill tops the bucket up by elapsed wall time. Caller holds mu.
func (m *Manager) refill() {
	if m.cfg.MaxMovesPerSec <= 0 {
		return
	}
	now := m.now()
	m.tokens += now.Sub(m.lastRefill).Seconds() * m.cfg.MaxMovesPerSec
	m.lastRefill = now
	if b := m.burst(); m.tokens > b {
		m.tokens = b
	}
}

// Tick runs one round: settle last round's outcomes, select victims
// from the heat map, migrate them (per-shard workers), account. It is
// the synchronous entry the bench and tests drive; Run calls it on a
// timer.
func (m *Manager) Tick() Round {
	m.mu.Lock()
	if m.paused {
		m.mu.Unlock()
		return Round{Paused: true}
	}
	m.refill()
	m.mu.Unlock()

	m.settleOutcomes()

	victims := m.selectVictims()
	var round Round
	if len(victims) == 0 {
		m.finishRound(&round, nil)
		return round
	}

	// Governor: hand each victim its batch allowance up front; when the
	// bucket runs dry the remaining victims wait for a later round.
	type job struct {
		v     Victim
		allow int
	}
	var jobs []job
	m.mu.Lock()
	for _, v := range victims {
		allow := m.cfg.BatchSize
		if m.cfg.MaxMovesPerSec > 0 {
			if m.tokens < 1 {
				round.Throttled = true
				break
			}
			if t := int(m.tokens); t < allow {
				allow = t
			}
			m.tokens -= float64(allow)
		}
		jobs = append(jobs, job{v: v, allow: allow})
	}
	m.mu.Unlock()

	// Per-shard workers: victims on different shards migrate in
	// parallel (each shard's table serializes internally anyway);
	// victims within one shard run in order.
	byShard := make(map[int32][]int)
	for i, j := range jobs {
		byShard[j.v.Shard] = append(byShard[j.v.Shard], i)
	}
	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		lastErr error
	)
	for shard, idxs := range byShard {
		blender := m.blenderFor(shard)
		wg.Add(1)
		go func(shard int32, idxs []int, blender core.RatingBlender) {
			defer wg.Done()
			for _, i := range idxs {
				j := &jobs[i]
				vb := blender
				if blender != nil {
					// Eviction pressure: the victim's measured waste is
					// charged against its own candidacy, so entities only
					// stay when attribute and workload affinity outweigh
					// the observed inefficiency.
					vb = &victimBlender{
						inner:    blender,
						victim:   core.PartitionID(j.v.Partition),
						pressure: m.cfg.Alpha * (1 - j.v.RatioBefore),
					}
				}
				res, err := m.st.ReclusterPartition(int(shard), j.v.Partition, j.allow, vb)
				if err != nil {
					errMu.Lock()
					lastErr = err
					errMu.Unlock()
					return
				}
				jobs[i].v.Examined = res.Examined
				jobs[i].v.Moved = res.Moved
				m.account(shard, res)
				if res.Moved > 0 {
					// The old counters describe a membership that no
					// longer exists; measure the partition afresh.
					m.reg.ResetHeat(shard, j.v.Partition)
				}
			}
		}(shard, idxs, blender)
	}
	wg.Wait()

	done := make([]Victim, 0, len(jobs))
	for _, j := range jobs {
		done = append(done, j.v)
		round.Examined += j.v.Examined
		round.Moved += j.v.Moved
	}
	round.Victims = done
	if lastErr != nil {
		round.Err = lastErr.Error()
	}
	m.finishRound(&round, done)
	return round
}

// finishRound publishes counters and rolls the round into the status.
func (m *Manager) finishRound(round *Round, victims []Victim) {
	m.reg.Add(obs.CReclusterRounds, 1)
	m.mu.Lock()
	m.rounds++
	if round.Throttled {
		m.throttled++
	}
	if victims != nil {
		m.lastVictims = victims
	}
	m.mu.Unlock()
}

// account publishes one victim batch's counters and shard progress.
func (m *Manager) account(shard int32, res table.ReclusterResult) {
	m.reg.Add(obs.CReclusterBatches, 1)
	m.reg.Add(obs.CReclusterExamined, int64(res.Examined))
	m.reg.Add(obs.CReclusterMoves, int64(res.Moved))
	m.mu.Lock()
	m.batches++
	m.examined += int64(res.Examined)
	m.moved += int64(res.Moved)
	p := m.perShard[shard]
	if p == nil {
		p = &ShardProgress{Shard: shard}
		m.perShard[shard] = p
	}
	p.Batches++
	p.Examined += int64(res.Examined)
	p.Moved += int64(res.Moved)
	m.mu.Unlock()
}

// settleOutcomes records efficiency-after for the previous round's
// victims: their heat was reset at migration, so whatever ratio the
// fresh queries produced since is the "after" measurement.
func (m *Manager) settleOutcomes() {
	m.mu.Lock()
	victims := m.lastVictims
	m.lastVictims = nil
	m.mu.Unlock()
	for _, v := range victims {
		if v.Examined == 0 {
			continue
		}
		after, known := m.reg.HeatRatio(v.Shard, v.Partition)
		m.reg.RecordReclusterOutcome(obs.ReclusterOutcome{
			Shard:       v.Shard,
			Partition:   v.Partition,
			RatioBefore: v.RatioBefore,
			RatioAfter:  after,
			AfterKnown:  known,
			Examined:    int64(v.Examined),
			Moved:       int64(v.Moved),
		})
	}
}

// selectVictims ranks the heat map's coldest partitions by wasted read
// volume, (1 - ratio) · bytes read, and keeps the worst MaxVictims
// below the efficiency threshold.
func (m *Manager) selectVictims() []Victim {
	rows := m.reg.ColdestPartitions(4*m.cfg.MaxVictims, m.cfg.MinQueries)
	var out []Victim
	for _, row := range rows {
		if row.ReadRatio >= m.cfg.VictimThreshold {
			continue
		}
		if m.cfg.VictimFilter != nil && !m.cfg.VictimFilter(row.Shard, row.Partition) {
			continue
		}
		out = append(out, Victim{
			Shard:       row.Shard,
			Partition:   row.Partition,
			RatioBefore: row.ReadRatio,
			BytesRead:   row.BytesRead,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		wi := (1 - out[i].RatioBefore) * float64(out[i].BytesRead)
		wj := (1 - out[j].RatioBefore) * float64(out[j].BytesRead)
		return wi > wj
	})
	if len(out) > m.cfg.MaxVictims {
		out = out[:m.cfg.MaxVictims]
	}
	return out
}

// blenderFor builds the workload blender for one shard from the recent
// query-shape mix (attribute ids are shard-local, so each shard gets
// its own blender). Nil — pure attribute rating — when no recent
// queries were recorded.
func (m *Manager) blenderFor(shard int32) core.RatingBlender {
	mix := m.reg.QueryMix(shard, m.cfg.QueryMixSize)
	if len(mix) == 0 {
		return nil
	}
	b := &workloadBlender{alpha: m.cfg.Alpha}
	for _, shape := range mix {
		b.queries = append(b.queries, synopsis.Of(shape.Attrs...))
		b.weights = append(b.weights, float64(shape.Count))
	}
	return b
}

// workloadBlender scores an entity/partition pair by how the recent
// query mix would experience the entity living there: +w_q when query
// q scans the partition and the entity matches it, -w_q when q scans
// it and the entity is dead weight. Queries that never scan the
// partition are silent. The normalized term lands in [-1, 1], the same
// scale as the normalized attribute rating it is blended with.
type workloadBlender struct {
	alpha   float64
	queries []*synopsis.Set
	weights []float64
}

// victimBlender wraps the shard's workload blender with eviction
// pressure against the partition currently under reclustering. A
// mixed partition is a local optimum for the plain blend — the ±w
// workload votes cancel and the attribute score keeps every entity in
// place. The victim, however, was selected on measured evidence that
// its layout wastes (1-ratio) of its read volume, so that waste is
// subtracted from the victim's own score (scaled by alpha, the trust
// in workload evidence). When the handicapped best goes negative,
// Cinderella's open-new-partition rule fires and seeds a
// workload-pure partition that then attracts its peers; partitions
// the workload reads efficiently are never victims and feel no
// pressure.
type victimBlender struct {
	inner    core.RatingBlender
	victim   core.PartitionID
	pressure float64
}

func (b *victimBlender) Blend(e *core.Entity, pid core.PartitionID, pSyn *synopsis.Set, attrScore float64) float64 {
	s := b.inner.Blend(e, pid, pSyn, attrScore)
	if pid == b.victim {
		s -= b.pressure
	}
	return s
}

func (b *workloadBlender) Blend(e *core.Entity, _ core.PartitionID, pSyn *synopsis.Set, attrScore float64) float64 {
	var num, den float64
	for i, q := range b.queries {
		if !synopsis.Intersects(pSyn, q) {
			continue
		}
		w := b.weights[i]
		den += w
		if synopsis.Intersects(e.Syn, q) {
			num += w
		} else {
			num -= w
		}
	}
	if den == 0 {
		return attrScore
	}
	return (1-b.alpha)*attrScore + b.alpha*(num/den)
}
