package recluster

import (
	"sync"
	"testing"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
)

// fakeStore records ReclusterPartition calls and reports every allowed
// entity as examined and moved.
type fakeStore struct {
	mu    sync.Mutex
	calls []fakeCall
}

type fakeCall struct {
	shard int
	pid   uint64
	max   int
}

func (f *fakeStore) ReclusterPartition(shard int, pid uint64, max int, _ core.RatingBlender) (table.ReclusterResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, fakeCall{shard, pid, max})
	return table.ReclusterResult{Examined: max, Moved: max}, nil
}

// heatQuery feeds one fake query for partition pid into the registry:
// scanned records at the given relevant ratio, bytesPerRecord bytes each.
func heatQuery(r *obs.Registry, pid uint64, scanned, returned, bytesPerRecord int64) {
	sp := r.StartQuery(obs.KindSelect)
	r.FinishQuery(sp, 1000, obs.QueryAgg{
		PartitionsTotal: 1, PartitionsTouched: 1,
		EntitiesScanned: scanned, EntitiesReturned: returned,
		BytesRead: scanned * bytesPerRecord, BytesRelevant: returned * bytesPerRecord,
	}, []obs.PartSpan{{
		Partition: pid, Scanned: scanned, Returned: returned, Decoded: returned,
		Skipped: scanned - returned, BytesRead: scanned * bytesPerRecord,
		BytesRelevant: returned * bytesPerRecord, BytesSkipped: (scanned - returned) * bytesPerRecord,
	}})
}

// TestVictimSelection pins the decide step: victims are the coldest
// partitions re-ranked by wasted read volume (1-ratio)·bytes, with
// efficient partitions excluded by the threshold.
func TestVictimSelection(t *testing.T) {
	reg := obs.New(obs.Options{})
	st := &fakeStore{}
	m := New(st, reg, Config{BatchSize: 10, MaxVictims: 4, MinQueries: 1, VictimThreshold: 0.75})
	defer m.Close()

	for i := 0; i < 4; i++ {
		heatQuery(reg, 1, 100, 5, 10)     // cold, tiny volume
		heatQuery(reg, 2, 100, 10, 10000) // cold-ish, huge wasted volume
		heatQuery(reg, 3, 100, 90, 10000) // efficient: never a victim
	}
	round := m.Tick()
	if round.Throttled {
		t.Fatalf("round throttled with no governor: %+v", round)
	}
	if len(st.calls) != 2 {
		t.Fatalf("store calls = %+v, want victims 2 then 1", st.calls)
	}
	if st.calls[0].pid != 2 || st.calls[1].pid != 1 {
		t.Fatalf("victim order = %+v, want wasted-volume ranking [2 1]", st.calls)
	}
	for _, c := range st.calls {
		if c.max != 10 {
			t.Fatalf("batch allowance = %d, want BatchSize 10", c.max)
		}
	}
	if round.Moved != 20 || round.Examined != 20 {
		t.Fatalf("round = %+v, want 20 moved/examined", round)
	}
	st2 := m.Status()
	if st2.Rounds != 1 || st2.Moved != 20 || st2.Batches != 2 {
		t.Fatalf("status = %+v", st2)
	}
	if len(st2.PerShard) != 1 || st2.PerShard[0].Shard != -1 || st2.PerShard[0].Moved != 20 {
		t.Fatalf("per-shard progress = %+v, want shard -1 with 20 moves", st2.PerShard)
	}
	if got := reg.Counter(obs.CReclusterMoves); got != 20 {
		t.Fatalf("CReclusterMoves = %d, want 20", got)
	}
}

// TestGovernorThrottles pins the write-rate governor: a round stops
// handing out batches when the token bucket runs dry and resumes after
// wall time refills it.
func TestGovernorThrottles(t *testing.T) {
	reg := obs.New(obs.Options{})
	st := &fakeStore{}
	m := New(st, reg, Config{BatchSize: 10, MaxVictims: 4, MinQueries: 1, MaxMovesPerSec: 10})
	defer m.Close()
	now := time.Unix(0, 0)
	m.now = func() time.Time { return now }
	m.lastRefill = now

	mkCold := func() {
		for i := 0; i < 4; i++ {
			heatQuery(reg, 1, 100, 5, 100)
			heatQuery(reg, 2, 100, 5, 200)
		}
	}
	mkCold()
	round := m.Tick()
	if !round.Throttled {
		t.Fatalf("round not throttled with a 10-token bucket and two 10-entity victims: %+v", round)
	}
	if len(st.calls) != 1 || st.calls[0].max != 10 {
		t.Fatalf("calls = %+v, want one full batch then dry bucket", st.calls)
	}

	// No wall time passed: the bucket is still dry.
	mkCold() // the migrated victim's heat was reset; re-warm both
	if m.Tick(); len(st.calls) != 1 {
		t.Fatalf("calls after dry tick = %+v, want still 1", st.calls)
	}

	// One second refills 10 tokens: the next victim batch proceeds.
	now = now.Add(time.Second)
	mkCold()
	m.Tick()
	if len(st.calls) != 2 {
		t.Fatalf("calls after refill = %+v, want 2", st.calls)
	}
}

// TestPauseResume pins the drain interaction: a paused manager's ticks
// are no-ops, and Resume restores normal rounds.
func TestPauseResume(t *testing.T) {
	reg := obs.New(obs.Options{})
	st := &fakeStore{}
	m := New(st, reg, Config{BatchSize: 10, MaxVictims: 2, MinQueries: 1})
	defer m.Close()
	for i := 0; i < 4; i++ {
		heatQuery(reg, 1, 100, 5, 100)
	}
	m.Pause()
	if round := m.Tick(); !round.Paused {
		t.Fatalf("tick while paused = %+v, want Paused", round)
	}
	if len(st.calls) != 0 {
		t.Fatalf("paused tick reached the store: %+v", st.calls)
	}
	if !m.Status().Paused {
		t.Fatal("status does not report paused")
	}
	m.Resume()
	if round := m.Tick(); round.Paused || round.Moved == 0 {
		t.Fatalf("tick after resume = %+v, want a real round", round)
	}
}

// TestOutcomeSettlement pins the before/after accounting: a migrated
// victim's heat is reset at migration, and the next round records an
// outcome whose after-ratio reflects only post-migration queries.
func TestOutcomeSettlement(t *testing.T) {
	reg := obs.New(obs.Options{})
	st := &fakeStore{}
	m := New(st, reg, Config{BatchSize: 10, MaxVictims: 1, MinQueries: 1})
	defer m.Close()
	for i := 0; i < 4; i++ {
		heatQuery(reg, 5, 100, 5, 100)
	}
	m.Tick() // migrates partition 5, resets its heat
	if _, known := reg.HeatRatio(-1, 5); known {
		t.Fatal("victim heat not reset after migration")
	}
	// Fresh post-migration reads at a much better ratio.
	for i := 0; i < 4; i++ {
		heatQuery(reg, 5, 100, 90, 100)
	}
	m.Tick() // settles the outcome for partition 5
	outs := reg.ReclusterOutcomes()
	if len(outs) != 1 {
		t.Fatalf("outcomes = %+v, want exactly one", outs)
	}
	o := outs[0]
	if o.Partition != 5 || !o.AfterKnown {
		t.Fatalf("outcome = %+v, want settled partition 5", o)
	}
	if o.RatioBefore != 0.05 || o.RatioAfter != 0.9 {
		t.Fatalf("outcome ratios = %v -> %v, want 0.05 -> 0.9", o.RatioBefore, o.RatioAfter)
	}
}

// TestWorkloadBlender pins the blend math: queries that scan the
// candidate partition vote ±their weight on the entity, queries that
// never scan it are silent, and alpha interpolates with the attribute
// score.
func TestWorkloadBlender(t *testing.T) {
	b := &workloadBlender{
		alpha:   0.5,
		queries: []*synopsis.Set{synopsis.Of(1), synopsis.Of(2), synopsis.Of(9)},
		weights: []float64{3, 1, 100},
	}
	pSyn := synopsis.Of(1, 2, 7) // partition scanned by queries 1 and 2, never by 9
	e := &core.Entity{ID: 1, Syn: synopsis.Of(1, 7)}

	// Entity matches query 1 (+3), is dead weight for query 2 (-1);
	// query 9's weight 100 is silent. wscore = (3-1)/4 = 0.5.
	got := b.Blend(e, 1, pSyn, 0.2)
	want := 0.5*0.2 + 0.5*0.5
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Blend = %v, want %v", got, want)
	}

	// No recent query scans the partition: pure attribute score.
	if got := b.Blend(e, 1, synopsis.Of(7), 0.3); got != 0.3 {
		t.Fatalf("Blend with silent mix = %v, want attrScore 0.3", got)
	}
}
