package server

import (
	"context"
	"sync"
	"time"

	"cinderella/internal/obs"
)

// The group-commit pipeline. Handler goroutines append their operation
// to the WAL (buffered, no fsync) under the table lock, then hand the
// resulting LSN to the Committer and block. A single background loop
// makes whole batches durable with one DurableTable.SyncTo call each —
// at most one fsync per batch — and acknowledges every waiter at once.
// Under N concurrent writers this turns N fsyncs into ~1 without
// weakening the contract: an acknowledged operation is on disk.
//
// Batching policy: by default (maxDelay 0) the loop flushes as soon as
// the previous flush finishes — "natural" batching, where each batch is
// exactly the writers that arrived during the previous fsync. The first
// writer after an idle period pays no artificial wait, and under load
// the batch size self-tunes to the fsync latency. A positive maxDelay
// instead holds each batch open for that window (bounded by maxOps),
// trading first-writer latency for larger batches — useful when fsync
// is very cheap relative to the arrival rate.

// commitReq is one writer waiting for its LSN to become durable.
type commitReq struct {
	lsn  uint64
	done chan error
}

// Syncer is the durability half of a Store: LSN bookkeeping plus the
// coalescing sync the group committer drives. A sharded store's SyncTo
// is a vector sync across all shard WALs behind one global LSN, so the
// committer batches writers across shards without knowing about them.
type Syncer interface {
	LastLSN() uint64
	DurableLSN() uint64
	SyncTo(lsn uint64) error
}

// Committer batches durability waits for a Syncer.
type Committer struct {
	d        Syncer
	obs      *obs.Registry
	maxOps   int
	maxDelay time.Duration

	mu      sync.Mutex
	pending []commitReq
	stopped bool

	kick     chan struct{} // cap 1: wakes the loop when work arrives
	quit     chan struct{}
	quitOnce sync.Once
	done     chan struct{}
}

// NewCommitter starts a group committer for d. maxDelay ≤ 0 (the
// default) selects natural batching: each flush starts as soon as the
// previous one finishes, so batches form from the writers that arrive
// during the fsync. maxDelay > 0 holds each batch open for that window
// instead; maxOps flushes a window-mode batch early once that many
// writers are waiting (default 128).
func NewCommitter(d Syncer, maxOps int, maxDelay time.Duration, reg *obs.Registry) *Committer {
	if maxOps <= 0 {
		maxOps = 128
	}
	c := &Committer{
		d:        d,
		obs:      reg,
		maxOps:   maxOps,
		maxDelay: maxDelay,
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.run()
	return c
}

// Commit blocks until every operation appended at or before lsn is
// durable, the context ends, or the committer is stopped. A nil return
// means the operation is on disk; any other return means the caller
// must not acknowledge durability to its client.
func (c *Committer) Commit(ctx context.Context, lsn uint64) error {
	r := commitReq{lsn: lsn, done: make(chan error, 1)}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		// Stop has flushed everything that was pending; a straggler can
		// still succeed if its history is already durable (SyncTo's
		// fast path) or sync directly if the table is still open.
		return c.d.SyncTo(lsn)
	}
	c.pending = append(c.pending, r)
	n := len(c.pending)
	c.mu.Unlock()

	if n >= c.maxOps {
		c.wake()
	} else if n == 1 {
		c.wake() // first in the window: start the delay timer
	}
	select {
	case err := <-r.done:
		return err
	case <-ctx.Done():
		// The operation may still become durable, but the caller cannot
		// claim so. The loop will complete r.done harmlessly (buffered).
		return ctx.Err()
	}
}

// wake nudges the run loop without blocking.
func (c *Committer) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// run is the single batching loop.
func (c *Committer) run() {
	defer close(c.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-c.kick:
		case <-c.quit:
			c.flush()
			return
		}
		// A batch has started. Unless it is already full, hold the door
		// open for maxDelay so concurrent writers can join.
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		if n == 0 {
			continue
		}
		if c.maxDelay > 0 && n < c.maxOps {
			timer.Reset(c.maxDelay)
		wait:
			for {
				select {
				case <-timer.C:
					break wait
				case <-c.kick:
					// A writer joined; flush early only once the batch
					// is full, otherwise keep the window open.
					c.mu.Lock()
					full := len(c.pending) >= c.maxOps
					c.mu.Unlock()
					if full {
						stopTimer(timer)
						break wait
					}
				case <-c.quit:
					stopTimer(timer)
					c.flush()
					return
				}
			}
		}
		c.flush()
	}
}

// flush takes everything pending, makes it durable with one SyncTo (at
// most one fsync), and acknowledges every waiter.
func (c *Committer) flush() {
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	var max uint64
	for _, r := range batch {
		if r.lsn > max {
			max = r.lsn
		}
	}
	err := c.d.SyncTo(max)
	c.obs.Add(obs.CGroupCommits, 1)
	c.obs.Add(obs.CGroupCommitOps, int64(len(batch)))
	c.obs.ObserveBatchSize(int64(len(batch)))
	for _, r := range batch {
		r.done <- err
	}
}

// stopTimer stops t and drains a concurrently delivered tick.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// Stop flushes all pending waiters and stops the loop. Safe to call
// more than once. After Stop, Commit degrades to a direct SyncTo.
func (c *Committer) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
	c.quitOnce.Do(func() { close(c.quit) })
	<-c.done
	c.flush() // anything that slipped in between stopped=true checks
}
