// Package server is cinderellad's network service layer: the full
// DurableTable API over HTTP/JSON with group-commit writes, bounded
// admission, and graceful drain.
//
// Wire format (all bodies JSON, all errors {"error": "..."}):
//
//	POST /v1/insert      {"doc":{...}}            → {"id":N}
//	POST /v1/bulk        {"ops":[...]}            → {"results":[...]}
//	GET  /v1/doc?id=N                             → {"id":N,"doc":{...}}
//	POST /v1/update      {"id":N,"doc":{...}}     → {"updated":bool}
//	POST /v1/delete      {"id":N}                 → {"deleted":bool}
//	GET  /v1/query?attrs=a,b                      → {"records":[{"id":N,"doc":{...}},...]}
//	GET  /v1/query-report?attrs=a,b               → {"records":[...],"report":{...}}
//	GET  /v1/partitions                           → {"partitions":[...]}
//	POST /v1/compact     {"threshold":F}          → {"merged":N}
//	POST /v1/checkpoint  {}                       → {"checkpointed":true}
//	GET  /v1/health                               → {"status":"ok"|"draining",...}
//
// Document values are int64, float64, or string; JSON booleans coerce
// to int 0/1 (matching ImportJSONL), nested objects/arrays are
// rejected. Integral JSON numbers round-trip as int64.
//
// Ack contract: a 2xx on a mutating route means the operation was
// applied AND its WAL record is fsynced. Handlers append concurrently
// but durability is acknowledged by the group committer (see
// commit.go), which coalesces many operations per fsync.
//
// Backpressure: at most MaxInflight requests execute at once; up to
// MaxQueue more wait. Beyond that — or once draining — requests get
// 503 with a Retry-After header, and the client package backs off and
// retries.
//
// Read/write separation: the read-only routes (/v1/doc, /v1/query,
// /v1/query-report, /v1/partitions) run behind their own MaxReadInflight
// semaphore, never enter the admission queue, and keep being served
// while the server drains — the store's lock-free snapshot reads cannot
// stall or be stalled by the write path, so rejecting or queueing them
// behind writes would only add latency. Reads stop when the listener
// stops.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cinderella"
	"cinderella/internal/obs"
	"cinderella/internal/shard"
)

// Config parameterizes a Server. The zero value picks sane defaults.
type Config struct {
	// MaxInflight bounds concurrently executing mutating requests.
	// Default 128.
	MaxInflight int
	// MaxReadInflight bounds concurrently executing read-only requests
	// (doc fetches, queries, partition listings), which bypass the
	// admission queue and drain rejection entirely. Default: MaxInflight.
	MaxReadInflight int
	// MaxQueue bounds requests waiting for an inflight slot; the
	// admission queue. Requests beyond it are rejected with 503.
	// Default 256.
	MaxQueue int
	// RequestTimeout bounds one request end to end: admission wait,
	// body read, execution, and the group-commit ack. Default 10s.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a request body. Default 1 MiB.
	MaxBodyBytes int64
	// CommitDelay selects the group-commit batching policy (see
	// NewCommitter): 0 (default) is natural batching — each flush starts
	// when the previous fsync finishes — and a positive value holds
	// every batch open for that window instead.
	CommitDelay time.Duration
	// CommitMaxOps flushes a commit batch early at this many waiters.
	CommitMaxOps int
	// PerOpSync disables group commit: every mutating request fsyncs
	// individually. For benchmarking the win, not for production.
	PerOpSync bool
	// Obs receives server counters, gauges, and histograms; its ops
	// endpoint (/metrics, /debug/vars, /debug/pprof) is mounted on the
	// server mux when non-nil.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.MaxReadInflight <= 0 {
		c.MaxReadInflight = c.MaxInflight
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Store is the storage contract the server serves: the exact method set
// of *cinderella.DurableTable, also satisfied by *shard.Sharded. The
// daemon's wire format is identical either way — sharding is invisible
// to clients.
type Store interface {
	Insert(cinderella.Doc) (cinderella.ID, error)
	Get(cinderella.ID) (cinderella.Doc, bool)
	Update(cinderella.ID, cinderella.Doc) (bool, error)
	Delete(cinderella.ID) (bool, error)
	Query(...string) []cinderella.Record
	QueryWithReport(...string) ([]cinderella.Record, cinderella.QueryReport)
	QueryTraced(...string) ([]cinderella.Record, cinderella.QueryReport, *obs.QuerySpan)
	Partitions() []cinderella.PartitionStat
	Compact(float64) (int, error)
	Checkpoint() error
	Len() int
	Sync() error
	Close() error
	Syncer
}

var _ Store = (*cinderella.DurableTable)(nil)
var _ Store = (*shard.Sharded)(nil)

// Server serves a Store over HTTP. Create with New, expose with
// Handler, shut down with BeginDrain + Finish (or Close).
type Server struct {
	d   Store
	cfg Config
	com *Committer
	obs *obs.Registry

	sem      chan struct{} // write inflight slots
	rsem     chan struct{} // read inflight slots (no queue, drain-immune)
	queued   chan struct{} // admission queue slots
	draining chan struct{} // closed by BeginDrain
	mux      *http.ServeMux
}

// New builds a Server around d. The caller keeps ownership of d until
// Finish, which closes it.
func New(d Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		d:        d,
		cfg:      cfg,
		obs:      cfg.Obs,
		sem:      make(chan struct{}, cfg.MaxInflight),
		rsem:     make(chan struct{}, cfg.MaxReadInflight),
		queued:   make(chan struct{}, cfg.MaxQueue),
		draining: make(chan struct{}),
	}
	if !cfg.PerOpSync {
		s.com = NewCommitter(d, cfg.CommitMaxOps, cfg.CommitDelay, cfg.Obs)
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/insert", s.handleInsert)
	s.route("POST /v1/bulk", s.handleBulk)
	s.routeRead("GET /v1/doc", s.handleGet)
	s.route("POST /v1/update", s.handleUpdate)
	s.route("POST /v1/delete", s.handleDelete)
	s.routeRead("GET /v1/query", s.handleQuery)
	s.routeRead("GET /v1/query-report", s.handleQueryReport)
	s.routeRead("GET /v1/partitions", s.handlePartitions)
	s.route("POST /v1/compact", s.handleCompact)
	s.route("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth) // never queued: probes must see a draining server
	if cfg.Obs != nil {
		ops := cfg.Obs.Mux()
		s.mux.Handle("/metrics", ops)
		s.mux.Handle("/debug/", ops)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			writeError(w, http.StatusNotFound, "no such endpoint")
			return
		}
		fmt.Fprint(w, "cinderellad\n\n/v1/{insert,doc,update,delete,query,query-report,partitions,compact,checkpoint,health}\n/metrics\n/debug/{vars,pprof}\n")
	})
	return s
}

// Handler returns the root handler: admission control wrapped around
// the API routes.
func (s *Server) Handler() http.Handler { return s.mux }

// Committer returns the group committer acknowledging this server's
// writes, or nil under PerOpSync. The binary wire server shares it so
// one fsync covers a batch of writes across both protocols.
func (s *Server) Committer() *Committer { return s.com }

// route registers an API handler behind admission control, the request
// timeout, and telemetry.
func (s *Server) route(pattern string, h func(http.ResponseWriter, *http.Request) (int, error)) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if !s.admit(w, r) {
			return
		}
		cr := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
		cw := &countingWriter{ResponseWriter: w}
		defer func() {
			<-s.sem
			s.obs.AddServerInflight(-1)
			s.obs.Add(obs.CBytesInHTTP, cr.n)
			s.obs.Add(obs.CBytesOutHTTP, cw.n)
			s.obs.ObserveServerNs(time.Since(start).Nanoseconds())
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = cr
		w = cw

		code, err := h(w, r)
		s.obs.Add(obs.CSrvRequests, 1)
		if err != nil {
			s.obs.Add(obs.CSrvErrors, 1)
			writeError(w, code, err.Error())
		}
	})
}

// routeRead registers a read-only handler behind the read semaphore.
// Reads never enter the admission queue — snapshot reads are
// writer-independent, so queueing them behind writes would only add
// latency — and are not rejected during drain: a draining node keeps
// answering queries until its listener stops, so clients and operators
// can read from it for the whole drain window. The semaphore still
// bounds concurrent scans; past it, reads get the same 503 + Retry-After
// as writes.
func (s *Server) routeRead(pattern string, h func(http.ResponseWriter, *http.Request) (int, error)) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		select {
		case s.rsem <- struct{}{}:
		default:
			s.reject(w, "read capacity exhausted")
			return
		}
		s.obs.AddServerInflight(1)
		cr := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
		cw := &countingWriter{ResponseWriter: w}
		defer func() {
			<-s.rsem
			s.obs.AddServerInflight(-1)
			s.obs.Add(obs.CBytesInHTTP, cr.n)
			s.obs.Add(obs.CBytesOutHTTP, cw.n)
			s.obs.ObserveServerNs(time.Since(start).Nanoseconds())
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = cr
		w = cw

		code, err := h(w, r)
		s.obs.Add(obs.CSrvRequests, 1)
		if err != nil {
			s.obs.Add(obs.CSrvErrors, 1)
			writeError(w, code, err.Error())
		}
	})
}

// admit applies backpressure: grab an inflight slot immediately, or
// wait in the bounded queue, or reject with 503 + Retry-After. A
// closed draining channel rejects everything (health stays reachable —
// it is registered outside route).
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.isDraining() {
		s.reject(w, "draining")
		return false
	}
	select {
	case s.sem <- struct{}{}:
		s.obs.AddServerInflight(1)
		return true
	default:
	}
	// All inflight slots busy: take a queue slot or bounce.
	select {
	case s.queued <- struct{}{}:
	default:
		s.reject(w, "admission queue full")
		return false
	}
	s.obs.AddServerQueued(1)
	defer func() {
		<-s.queued
		s.obs.AddServerQueued(-1)
	}()
	t := time.NewTimer(s.cfg.RequestTimeout)
	defer stopTimer(t)
	select {
	case s.sem <- struct{}{}:
		s.obs.AddServerInflight(1)
		return true
	case <-s.draining:
		s.reject(w, "draining")
		return false
	case <-r.Context().Done():
		s.reject(w, "client gone")
		return false
	case <-t.C:
		s.reject(w, "queued past request timeout")
		return false
	}
}

// reject answers 503 with a Retry-After hint and counts the rejection.
func (s *Server) reject(w http.ResponseWriter, why string) {
	s.obs.Add(obs.CSrvRejected, 1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, why)
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// ack waits for lsn to be durable under the request context — the
// group-commit ack. With PerOpSync it fsyncs directly instead.
func (s *Server) ack(r *http.Request, lsn uint64) error {
	if s.com == nil {
		return s.d.SyncTo(lsn)
	}
	return s.com.Commit(r.Context(), lsn)
}

// BeginDrain flips the server into drain mode: every subsequent request
// (including on kept-alive connections) is rejected with 503, and
// queued requests are bounced. In-flight requests finish normally.
// Idempotent.
func (s *Server) BeginDrain() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

// Finish completes a drain after the HTTP listener has stopped (e.g.
// http.Server.Shutdown returned): it stops the committer — flushing and
// acknowledging every pending write — syncs, optionally checkpoints,
// and closes the table. Safe to call after BeginDrain even if some
// stragglers still race: post-close operations fail with ErrClosed
// rather than corrupting the log.
func (s *Server) Finish(checkpoint bool) error {
	s.BeginDrain()
	if s.com != nil {
		s.com.Stop()
	}
	var firstErr error
	if err := s.d.Sync(); err != nil && !errors.Is(err, cinderella.ErrClosed) {
		firstErr = err
	}
	if checkpoint {
		if err := s.d.Checkpoint(); err != nil && !errors.Is(err, cinderella.ErrClosed) && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.d.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close is BeginDrain + Finish(false) — the test/embedded convenience.
func (s *Server) Close() error {
	s.BeginDrain()
	return s.Finish(false)
}

// ---- handlers ----

type insertRequest struct {
	Doc map[string]any `json:"doc"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) (int, error) {
	var req insertRequest
	if err := readJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	doc, err := toDoc(req.Doc)
	if err != nil {
		return http.StatusBadRequest, err
	}
	id, err := s.d.Insert(doc)
	if err != nil {
		return opErrStatus(err), err
	}
	if err := s.ack(r, s.d.LastLSN()); err != nil {
		return http.StatusInternalServerError, fmt.Errorf("applied but not durable: %w", err)
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id})
	return 0, nil
}

// bulkOp is one operation in a /v1/bulk request. Op is "insert",
// "update", or "delete"; insert needs doc, update needs id+doc, delete
// needs id.
type bulkOp struct {
	Op  string         `json:"op"`
	ID  uint64         `json:"id,omitempty"`
	Doc map[string]any `json:"doc,omitempty"`
}

type bulkRequest struct {
	Ops []bulkOp `json:"ops"`
}

// bulkResult is one operation's outcome. Mirrors the binary protocol's
// partial-failure contract: ops apply in order, the first hard failure
// carries Error, every later op is Unapplied (and only those may be
// retried — the applied prefix is durable once the 200 arrives).
type bulkResult struct {
	ID        uint64 `json:"id,omitempty"`
	Updated   *bool  `json:"updated,omitempty"`
	Deleted   *bool  `json:"deleted,omitempty"`
	Error     string `json:"error,omitempty"`
	Unapplied bool   `json:"unapplied,omitempty"`
}

// handleBulk is the JSON fallback for clients that want batched writes
// without the binary protocol: many ops per request, one group-commit
// ack covering the applied prefix.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) (int, error) {
	var req bulkRequest
	if err := readJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if len(req.Ops) == 0 {
		return http.StatusBadRequest, errors.New("empty ops list")
	}
	results := make([]bulkResult, len(req.Ops))
	applied := 0
	for i, op := range req.Ops {
		var opErr error
		switch op.Op {
		case "insert":
			var doc cinderella.Doc
			if doc, opErr = toDoc(op.Doc); opErr == nil {
				var id cinderella.ID
				if id, opErr = s.d.Insert(doc); opErr == nil {
					results[i].ID = uint64(id)
				}
			}
		case "update":
			var doc cinderella.Doc
			if doc, opErr = toDoc(op.Doc); opErr == nil {
				var ok bool
				if ok, opErr = s.d.Update(cinderella.ID(op.ID), doc); opErr == nil {
					results[i].Updated = &ok
				}
			}
		case "delete":
			var ok bool
			if ok, opErr = s.d.Delete(cinderella.ID(op.ID)); opErr == nil {
				results[i].Deleted = &ok
			}
		default:
			opErr = fmt.Errorf("unknown op %q", op.Op)
		}
		if opErr != nil {
			results[i].Error = opErr.Error()
			for j := i + 1; j < len(results); j++ {
				results[j].Unapplied = true
			}
			break
		}
		applied++
	}
	if applied > 0 {
		if err := s.ack(r, s.d.LastLSN()); err != nil {
			return http.StatusInternalServerError, fmt.Errorf("applied but not durable: %w", err)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
	return 0, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) (int, error) {
	id, err := idParam(r)
	if err != nil {
		return http.StatusBadRequest, err
	}
	doc, ok := s.d.Get(cinderella.ID(id))
	if !ok {
		return http.StatusNotFound, fmt.Errorf("no document %d", id)
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "doc": doc})
	return 0, nil
}

type updateRequest struct {
	ID  uint64         `json:"id"`
	Doc map[string]any `json:"doc"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) (int, error) {
	var req updateRequest
	if err := readJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	doc, err := toDoc(req.Doc)
	if err != nil {
		return http.StatusBadRequest, err
	}
	ok, err := s.d.Update(cinderella.ID(req.ID), doc)
	if err != nil {
		return opErrStatus(err), err
	}
	if ok {
		if err := s.ack(r, s.d.LastLSN()); err != nil {
			return http.StatusInternalServerError, fmt.Errorf("applied but not durable: %w", err)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"updated": ok})
	return 0, nil
}

type deleteRequest struct {
	ID uint64 `json:"id"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) (int, error) {
	var req deleteRequest
	if err := readJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	ok, err := s.d.Delete(cinderella.ID(req.ID))
	if err != nil {
		return opErrStatus(err), err
	}
	if ok {
		if err := s.ack(r, s.d.LastLSN()); err != nil {
			return http.StatusInternalServerError, fmt.Errorf("applied but not durable: %w", err)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": ok})
	return 0, nil
}

// wireRecord is one query hit on the wire.
type wireRecord struct {
	ID  uint64         `json:"id"`
	Doc cinderella.Doc `json:"doc"`
}

func wireRecords(recs []cinderella.Record) []wireRecord {
	out := make([]wireRecord, len(recs))
	for i, r := range recs {
		out[i] = wireRecord{ID: uint64(r.ID), Doc: r.Doc}
	}
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) (int, error) {
	attrs, err := attrsParam(r)
	if err != nil {
		return http.StatusBadRequest, err
	}
	if wantTrace(r) {
		recs, _, sp := s.d.QueryTraced(attrs...)
		writeJSON(w, http.StatusOK, map[string]any{"records": wireRecords(recs), "trace": sp})
		return 0, nil
	}
	recs := s.d.Query(attrs...)
	writeJSON(w, http.StatusOK, map[string]any{"records": wireRecords(recs)})
	return 0, nil
}

func (s *Server) handleQueryReport(w http.ResponseWriter, r *http.Request) (int, error) {
	attrs, err := attrsParam(r)
	if err != nil {
		return http.StatusBadRequest, err
	}
	if wantTrace(r) {
		recs, rep, sp := s.d.QueryTraced(attrs...)
		writeJSON(w, http.StatusOK, map[string]any{"records": wireRecords(recs), "report": rep, "trace": sp})
		return 0, nil
	}
	recs, rep := s.d.QueryWithReport(attrs...)
	writeJSON(w, http.StatusOK, map[string]any{"records": wireRecords(recs), "report": rep})
	return 0, nil
}

// wantTrace reports whether the request opted into an inline query
// trace (?trace=1). The trace bypasses sampling: the full span tree —
// per-partition scan stats, prune rationale, per-shard children — is
// returned with the results ("trace": null when uninstrumented).
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return false
}

func (s *Server) handlePartitions(w http.ResponseWriter, r *http.Request) (int, error) {
	writeJSON(w, http.StatusOK, map[string]any{"partitions": s.d.Partitions()})
	return 0, nil
}

type compactRequest struct {
	Threshold float64 `json:"threshold"`
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) (int, error) {
	var req compactRequest
	if err := readJSON(r, &req); err != nil {
		return http.StatusBadRequest, err
	}
	if req.Threshold <= 0 || req.Threshold > 1 {
		return http.StatusBadRequest, fmt.Errorf("threshold %v out of (0,1]", req.Threshold)
	}
	n, err := s.d.Compact(req.Threshold)
	if err != nil {
		return opErrStatus(err), err
	}
	if n > 0 {
		if err := s.ack(r, s.d.LastLSN()); err != nil {
			return http.StatusInternalServerError, fmt.Errorf("applied but not durable: %w", err)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"merged": n})
	return 0, nil
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) (int, error) {
	if err := s.d.Checkpoint(); err != nil {
		return opErrStatus(err), err
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": true})
	return 0, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.isDraining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"docs":        s.d.Len(),
		"durable_lsn": s.d.DurableLSN(),
		"last_lsn":    s.d.LastLSN(),
	})
}

// opErrStatus maps DurableTable errors to HTTP statuses.
func opErrStatus(err error) int {
	if errors.Is(err, cinderella.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ---- wire helpers ----

// readJSON decodes one JSON body with number fidelity (integral JSON
// numbers stay int64 via toDoc).
func readJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("body exceeds %d bytes", tooBig.Limit)
		}
		return fmt.Errorf("bad JSON body: %w", err)
	}
	// Trailing garbage means a malformed request, not a second document.
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// toDoc converts a decoded JSON object into a cinderella.Doc: int64 for
// integral numbers, float64 otherwise, strings as-is, booleans as 0/1
// (the ImportJSONL convention), nulls skipped. Nested objects or arrays
// are rejected — universal tables are flat.
func toDoc(obj map[string]any) (cinderella.Doc, error) {
	doc := make(cinderella.Doc, len(obj))
	for k, v := range obj {
		switch x := v.(type) {
		case json.Number:
			if i, err := strconv.ParseInt(x.String(), 10, 64); err == nil {
				doc[k] = i
			} else {
				f, err := x.Float64()
				if err != nil {
					return nil, fmt.Errorf("attribute %q: bad number %q", k, x.String())
				}
				doc[k] = f
			}
		case string:
			doc[k] = x
		case bool:
			if x {
				doc[k] = int64(1)
			} else {
				doc[k] = int64(0)
			}
		case nil:
			// absent attribute
		default:
			return nil, fmt.Errorf("attribute %q: non-scalar value", k)
		}
	}
	return doc, nil
}

// countingReader counts body bytes actually read — the per-protocol
// traffic accounting behind cinderella_server_bytes_in_total.
type countingReader struct {
	r io.ReadCloser
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

func (cr *countingReader) Close() error { return cr.r.Close() }

// countingWriter counts response bytes written.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	cw.n += int64(n)
	return n, err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func idParam(r *http.Request) (uint64, error) {
	raw := r.URL.Query().Get("id")
	if raw == "" {
		return 0, errors.New("missing id parameter")
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad id %q", raw)
	}
	return id, nil
}

func attrsParam(r *http.Request) ([]string, error) {
	raw := r.URL.Query().Get("attrs")
	if raw == "" {
		return nil, errors.New("missing attrs parameter (comma-separated attribute names)")
	}
	parts := strings.Split(raw, ",")
	attrs := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			attrs = append(attrs, p)
		}
	}
	if len(attrs) == 0 {
		return nil, errors.New("empty attrs parameter")
	}
	return attrs, nil
}
