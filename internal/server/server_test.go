package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cinderella"
	"cinderella/client"
	"cinderella/internal/obs"
)

// harness spins up a DurableTable + Server + HTTP listener + client.
type harness struct {
	path string
	d    *cinderella.DurableTable
	srv  *Server
	ts   *httptest.Server
	cl   *client.Client
	reg  *obs.Registry
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	path := filepath.Join(t.TempDir(), "srv.wal")
	return openHarness(t, path, cfg)
}

func openHarness(t *testing.T, path string, cfg Config) *harness {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New(obs.Options{})
	}
	d, err := cinderella.OpenFile(path, cinderella.Config{PartitionSizeLimit: 64, Obs: cfg.Obs})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d, cfg)
	ts := httptest.NewServer(srv.Handler())
	cl, err := client.New(ts.URL, client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{path: path, d: d, srv: srv, ts: ts, cl: cl, reg: cfg.Obs}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return h
}

func TestServerRoundTrip(t *testing.T) {
	h := newHarness(t, Config{})
	ctx := context.Background()

	// Note 2.8, not 2.0: JSON cannot distinguish 2.0 from 2, so integral
	// numbers deliberately round-trip as int64 (the documented wire
	// contract).
	id, err := h.cl.Insert(ctx, client.Doc{"name": "camera", "aperture": 2.8, "zoom": int64(5)})
	if err != nil {
		t.Fatal(err)
	}
	doc, ok, err := h.cl.Get(ctx, id)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if doc["name"] != "camera" || doc["aperture"] != 2.8 || doc["zoom"] != int64(5) {
		t.Fatalf("round-trip mangled values: %#v", doc)
	}
	// Integral floats must stay int64 on the wire, true floats float64.
	if _, isInt := doc["zoom"].(int64); !isInt {
		t.Fatalf("zoom lost integer fidelity: %T", doc["zoom"])
	}

	if ok, err := h.cl.Update(ctx, id, client.Doc{"name": "camera2", "wifi": int64(1)}); err != nil || !ok {
		t.Fatalf("Update: ok=%v err=%v", ok, err)
	}
	if ok, _ := h.cl.Update(ctx, 99999, client.Doc{"x": int64(1)}); ok {
		t.Fatal("Update of unknown id reported true")
	}

	id2, err := h.cl.Insert(ctx, client.Doc{"name": "disk", "rpm": int64(7200)})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := h.cl.Query(ctx, "rpm")
	if err != nil || len(recs) != 1 || recs[0].ID != id2 {
		t.Fatalf("Query(rpm): %v err=%v", recs, err)
	}
	recs, rep, err := h.cl.QueryWithReport(ctx, "wifi")
	if err != nil || len(recs) != 1 {
		t.Fatalf("QueryWithReport: %v err=%v", recs, err)
	}
	if rep.EntitiesReturned != 1 {
		t.Fatalf("report: %+v", rep)
	}

	parts, err := h.cl.Partitions(ctx)
	if err != nil || len(parts) == 0 {
		t.Fatalf("Partitions: %v err=%v", parts, err)
	}
	if _, err := h.cl.Compact(ctx, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := h.cl.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, err := h.cl.Delete(ctx, id); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := h.cl.Get(ctx, id); ok {
		t.Fatal("deleted doc still readable")
	}
	hl, err := h.cl.Health(ctx)
	if err != nil || hl.Status != "ok" || hl.Docs != 1 {
		t.Fatalf("Health: %+v err=%v", hl, err)
	}

	// Everything acked must be recoverable after a clean drain.
	h.ts.Close()
	if err := h.srv.Finish(true); err != nil {
		t.Fatal(err)
	}
	re, err := cinderella.OpenFile(h.path, cinderella.Config{PartitionSizeLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("recovered %d docs, want 1", re.Len())
	}
	if doc, ok := re.Get(id2); !ok || doc["rpm"] != int64(7200) {
		t.Fatalf("recovered doc: %#v ok=%v", doc, ok)
	}
}

func TestServerBadRequests(t *testing.T) {
	h := newHarness(t, Config{})
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/insert", `{"doc":{"nested":{"x":1}}}`, 400},
		{"POST", "/v1/insert", `not json`, 400},
		{"GET", "/v1/doc?id=notanumber", "", 400},
		{"GET", "/v1/doc", "", 400},
		{"GET", "/v1/doc?id=424242", "", 404},
		{"GET", "/v1/query", "", 400},
		{"POST", "/v1/compact", `{"threshold":7}`, 400},
		{"GET", "/v1/nope", "", 404},
		// Wrong method falls through to the catch-all, which 404s.
		{"DELETE", "/v1/insert", "", 404},
	} {
		var body *strings.Reader = strings.NewReader(tc.body)
		req, _ := http.NewRequest(tc.method, h.ts.URL+tc.path, body)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: got %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
	// Oversized body → 400, not applied.
	big := `{"doc":{"s":"` + strings.Repeat("x", 2<<20) + `"}}`
	resp, err := http.Post(h.ts.URL+"/v1/insert", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("oversized body: got %d, want 400", resp.StatusCode)
	}
}

// TestServerGroupCommitCoalesces proves the headline property: many
// concurrent acknowledged writes, far fewer fsyncs.
func TestServerGroupCommitCoalesces(t *testing.T) {
	h := newHarness(t, Config{CommitDelay: 2 * time.Millisecond})
	ctx := context.Background()

	const workers, perWorker = 32, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := h.cl.Insert(ctx, client.Doc{"w": int64(w), "i": int64(i)}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	syncs := h.reg.Counter(obs.CWALSyncs)
	commits := h.reg.Counter(obs.CGroupCommits)
	ops := h.reg.Counter(obs.CGroupCommitOps)
	if ops != total {
		t.Fatalf("group-commit acked %d ops, want %d", ops, total)
	}
	if commits == 0 || syncs == 0 {
		t.Fatalf("no group commits recorded (commits=%d syncs=%d)", commits, syncs)
	}
	// The whole point: far fewer fsyncs than acknowledged writes. Even
	// a modest box coalesces heavily; require at least 2×.
	if syncs*2 > total {
		t.Fatalf("group commit did not coalesce: %d syncs for %d acked inserts", syncs, total)
	}
	t.Logf("coalescing: %d acked inserts, %d fsyncs, %d batches (mean batch %.1f)",
		total, syncs, commits, float64(ops)/float64(commits))
}

// TestServerBackpressure drives the admission queue to saturation and
// expects 503 + Retry-After, while /v1/health stays reachable.
func TestServerBackpressure(t *testing.T) {
	h := newHarness(t, Config{
		MaxInflight: 1,
		MaxQueue:    1,
		CommitDelay: 300 * time.Millisecond, // hold the one slot long enough to saturate
	})
	ctx := context.Background()

	insert := func() *http.Response {
		resp, err := http.Post(h.ts.URL+"/v1/insert", "application/json",
			strings.NewReader(`{"doc":{"a":1}}`))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		return resp
	}

	done := make(chan struct{}, 2)
	go func() { insert().Body.Close(); done <- struct{}{} }() // occupies the inflight slot
	time.Sleep(50 * time.Millisecond)
	go func() { insert().Body.Close(); done <- struct{}{} }() // waits in the queue
	time.Sleep(50 * time.Millisecond)

	resp := insert() // inflight full + queue full → bounced
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if h.reg.Counter(obs.CSrvRejected) == 0 {
		t.Fatal("rejection not counted")
	}
	// Health bypasses admission.
	if hl, err := h.cl.Health(ctx); err != nil || hl.Status != "ok" {
		t.Fatalf("health under load: %+v err=%v", hl, err)
	}
	<-done
	<-done
}

// TestServerDrainLosesNothing is the graceful-drain contract under
// load: writers hammer the server while it drains; afterwards, every
// acknowledged insert must be recoverable from the WAL. Run under
// -race in scripts/verify.sh.
func TestServerDrainLosesNothing(t *testing.T) {
	h := newHarness(t, Config{CommitDelay: time.Millisecond})
	ctx := context.Background()

	const workers = 16
	var mu sync.Mutex
	acked := map[client.ID]int64{} // id → payload

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				payload := int64(w*1_000_000 + i)
				id, err := h.cl.Insert(ctx, client.Doc{"p": payload})
				if err != nil {
					return // drain reached this worker
				}
				mu.Lock()
				acked[id] = payload
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(60 * time.Millisecond) // let the burst build
	h.srv.BeginDrain()
	wg.Wait()
	h.ts.Close()
	if err := h.srv.Finish(true); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// Finish must be idempotent-ish too (drain path racing a defer).
	if err := h.srv.Finish(false); err != nil {
		t.Fatalf("second Finish: %v", err)
	}

	re, err := cinderella.OpenFile(h.path, cinderella.Config{PartitionSizeLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no inserts were acknowledged before drain; test proved nothing")
	}
	for id, payload := range acked {
		doc, ok := re.Get(id)
		if !ok {
			t.Fatalf("acked insert %d lost by drain", id)
		}
		if doc["p"] != payload {
			t.Fatalf("acked insert %d corrupted: %#v", id, doc)
		}
	}
	t.Logf("drain preserved all %d acknowledged inserts", len(acked))
}

// TestServerCrashRecovery simulates the daemon dying mid-burst: the
// table is abandoned without Sync/Close (buffered-but-unsynced WAL
// records never reach the file, like a crash), a torn partial record is
// appended (a write cut mid-flight), and the WAL is reopened. Every
// acknowledged operation must survive; the torn tail must not corrupt
// replay.
func TestServerCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	reg := obs.New(obs.Options{})
	d, err := cinderella.OpenFile(path, cinderella.Config{PartitionSizeLimit: 64, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(d, Config{CommitDelay: time.Millisecond, Obs: reg})
	ts := httptest.NewServer(srv.Handler())
	cl, _ := client.New(ts.URL)
	ctx := context.Background()

	const workers, perWorker = 8, 25
	var mu sync.Mutex
	acked := map[client.ID]int64{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				payload := int64(w*1_000_000 + i)
				id, err := cl.Insert(ctx, client.Doc{"p": payload})
				if err != nil {
					return
				}
				mu.Lock()
				acked[id] = payload
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	// CRASH: no drain, no sync, no close. In-flight batches have been
	// acked (and therefore fsynced); nothing else is guaranteed.
	ts.Close()

	// A torn partial record at the tail — the crash cut a write short.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := cinderella.OpenFile(path, cinderella.Config{PartitionSizeLimit: 64})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("nothing acked; test proved nothing")
	}
	for id, payload := range acked {
		doc, ok := re.Get(id)
		if !ok {
			t.Fatalf("acked insert %d lost in crash (have %d docs, %d acked)", id, re.Len(), len(acked))
		}
		if doc["p"] != payload {
			t.Fatalf("acked insert %d corrupted: %#v", id, doc)
		}
	}
	t.Logf("crash recovery preserved all %d acked inserts (table has %d docs)", len(acked), re.Len())
}

func TestCommitterStopFlushesPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	d, err := cinderella.OpenFile(path, cinderella.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Huge delay: nothing flushes on its own within the test.
	c := NewCommitter(d, 0, time.Hour, nil)

	const n = 10
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			if _, err := d.Insert(cinderella.Doc{"x": 1}); err != nil {
				errs <- err
				return
			}
			errs <- c.Commit(context.Background(), d.LastLSN())
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the waiters pile up
	done := make(chan struct{})
	go func() { c.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung with pending waiters")
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	// Post-stop commits degrade to direct sync and still succeed.
	if _, err := d.Insert(cinderella.Doc{"y": 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(context.Background(), d.LastLSN()); err != nil {
		t.Fatalf("post-stop Commit: %v", err)
	}
	c.Stop() // idempotent
}

func TestCommitterCommitRespectsContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	d, err := cinderella.OpenFile(path, cinderella.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c := NewCommitter(d, 0, time.Hour, nil)
	defer c.Stop()
	if _, err := d.Insert(cinderella.Doc{"x": 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Commit(ctx, d.LastLSN()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Commit under dead context: %v", err)
	}
}

// TestServerPerOpSyncMode covers the benchmark baseline: no committer,
// each write fsyncs itself.
func TestServerPerOpSyncMode(t *testing.T) {
	h := newHarness(t, Config{PerOpSync: true})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := h.cl.Insert(ctx, client.Doc{"i": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if syncs := h.reg.Counter(obs.CWALSyncs); syncs < 5 {
		t.Fatalf("per-op sync mode did only %d fsyncs for 5 inserts", syncs)
	}
	if h.reg.Counter(obs.CGroupCommits) != 0 {
		t.Fatal("per-op sync mode ran group commits")
	}
}

// TestServerReadsServedDuringDrain covers the read/write separation: a
// draining server rejects writes with 503 but keeps serving the
// read-only routes until the listener stops, because snapshot reads are
// independent of the (draining) write path.
func TestServerReadsServedDuringDrain(t *testing.T) {
	h := newHarness(t, Config{})
	ctx := context.Background()

	id, err := h.cl.Insert(ctx, client.Doc{"name": "camera", "aperture": 2.8})
	if err != nil {
		t.Fatal(err)
	}

	h.srv.BeginDrain()

	// Writes must bounce. Raw HTTP: the client package would retry 503s.
	resp, err := http.Post(h.ts.URL+"/v1/insert", "application/json",
		strings.NewReader(`{"doc":{"name":"late"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain insert: got %d, want 503", resp.StatusCode)
	}

	// Reads must keep working, via every read-only route.
	for _, url := range []string{
		"/v1/doc?id=" + strconv.FormatUint(uint64(id), 10),
		"/v1/query?attrs=aperture",
		"/v1/query-report?attrs=aperture",
		"/v1/partitions",
	} {
		resp, err := http.Get(h.ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mid-drain GET %s: got %d, want 200", url, resp.StatusCode)
		}
	}

	// And the results are the real data, not a degraded answer.
	recs, err := h.cl.Query(ctx, "aperture")
	if err != nil || len(recs) != 1 || recs[0].ID != id {
		t.Fatalf("mid-drain Query: %v err=%v", recs, err)
	}
}

func TestServerBulk(t *testing.T) {
	h := newHarness(t, Config{})
	ctx := context.Background()

	// Happy path: inserts, then an update and a delete of the new docs.
	results, err := h.cl.Bulk(ctx, []client.BulkOp{
		{Op: "insert", Doc: client.Doc{"name": "a", "v": int64(1)}},
		{Op: "insert", Doc: client.Doc{"name": "b", "v": int64(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID == 0 || results[1].ID == 0 {
		t.Fatalf("insert results: %+v", results)
	}
	idA, idB := results[0].ID, results[1].ID

	results, err = h.cl.Bulk(ctx, []client.BulkOp{
		{Op: "update", ID: idA, Doc: client.Doc{"name": "a2"}},
		{Op: "delete", ID: idB},
		{Op: "delete", ID: 99999}, // miss, not an error
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Updated == nil || !*results[0].Updated {
		t.Fatalf("update result: %+v", results[0])
	}
	if results[1].Deleted == nil || !*results[1].Deleted {
		t.Fatalf("delete result: %+v", results[1])
	}
	if results[2].Deleted == nil || *results[2].Deleted {
		t.Fatalf("delete-miss result: %+v", results[2])
	}
	if h.d.DurableLSN() < h.d.LastLSN() {
		t.Fatalf("bulk ack before durability: %d < %d", h.d.DurableLSN(), h.d.LastLSN())
	}

	// Partial failure: a bad op mid-list stops the batch. The applied
	// prefix stays applied and durable; the suffix is marked unapplied.
	before := h.d.Len()
	results, err = h.cl.Bulk(ctx, []client.BulkOp{
		{Op: "insert", Doc: client.Doc{"name": "c"}},
		{Op: "frobnicate"},
		{Op: "insert", Doc: client.Doc{"name": "d"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID == 0 || results[0].Error != "" {
		t.Fatalf("applied prefix: %+v", results[0])
	}
	if results[1].Error == "" || !strings.Contains(results[1].Error, "frobnicate") {
		t.Fatalf("failed op: %+v", results[1])
	}
	if !results[2].Unapplied {
		t.Fatalf("suffix not marked unapplied: %+v", results[2])
	}
	if got := h.d.Len(); got != before+1 {
		t.Fatalf("table grew by %d docs, want 1", got-before)
	}
	if h.d.DurableLSN() < h.d.LastLSN() {
		t.Fatalf("applied prefix not durable: %d < %d", h.d.DurableLSN(), h.d.LastLSN())
	}

	// Empty ops list is a client error.
	resp, err := http.Post(h.ts.URL+"/v1/bulk", "application/json", strings.NewReader(`{"ops":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty bulk: got %d, want 400", resp.StatusCode)
	}
}
