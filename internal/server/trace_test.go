package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"cinderella/client"
	"cinderella/internal/obs"
)

// TestServerQueryTraceInline drives ?trace=1 end to end: the server must
// run the query under a forced span (bypassing 1-in-N sampling) and
// return the full span tree inline, while untraced queries keep the
// response shape unchanged.
func TestServerQueryTraceInline(t *testing.T) {
	h := newHarness(t, Config{})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := h.cl.Insert(ctx, client.Doc{"rpm": int64(7200 + i), "disk": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.cl.Insert(ctx, client.Doc{"wifi": int64(1)}); err != nil {
		t.Fatal(err)
	}

	recs, rep, trace, err := h.cl.QueryTraced(ctx, "rpm")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || rep.EntitiesReturned != 3 {
		t.Fatalf("traced query: %d records, report %+v", len(recs), rep)
	}
	if trace == nil {
		t.Fatal("?trace=1 returned no trace from an instrumented server")
	}
	var sp obs.QuerySpan
	if err := json.Unmarshal(trace, &sp); err != nil {
		t.Fatalf("trace is not a span tree: %v\n%s", err, trace)
	}
	if sp.Kind != obs.KindSelect || !sp.Sampled {
		t.Fatalf("span = kind %q sampled %v, want forced select", sp.Kind, sp.Sampled)
	}
	if sp.EntitiesReturned != 3 || sp.PartitionsTotal < 1 || len(sp.Parts) == 0 {
		t.Fatalf("span not filled: %+v", sp)
	}
	if sp.Query == "" {
		t.Fatalf("forced span missing its query description: %+v", sp)
	}

	// Both query routes honour the flag, including trace=true spelling.
	for _, path := range []string{"/v1/query?attrs=rpm&trace=1", "/v1/query-report?attrs=rpm&trace=true"} {
		var body struct {
			Trace json.RawMessage `json:"trace"`
		}
		getBody(t, h, path, &body)
		if body.Trace == nil {
			t.Errorf("%s: no inline trace", path)
		}
	}

	// Untraced responses must not grow a trace field.
	var plain map[string]json.RawMessage
	getBody(t, h, "/v1/query?attrs=rpm", &plain)
	if _, ok := plain["trace"]; ok {
		t.Fatal("untraced /v1/query response carries a trace field")
	}

	// The forced trace also lands in normal retention: the recent ring
	// and the sampled counter see it, and the heat map recorded the scan.
	if got := h.reg.Counter(obs.CTraceSampled); got < 3 {
		t.Fatalf("CTraceSampled = %d, want >= 3 forced traces", got)
	}
	if heat := h.reg.HeatSnapshot(); len(heat) == 0 {
		t.Fatal("no heat rows after traced queries")
	}
}

func getBody(t *testing.T, h *harness, path string, into any) {
	t.Helper()
	resp, err := http.Get(h.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d err %v", path, resp.StatusCode, err)
	}
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}
