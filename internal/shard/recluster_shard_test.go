package shard

import (
	"fmt"
	"testing"

	"cinderella"
	"cinderella/internal/obs"
	"cinderella/internal/recluster"
)

// TestReclusterShardStampedTrace drives the reclusterer against a
// sharded store and pins two properties of the sharded path: migration
// work is attributed to real shard ids in the manager's progress, and
// every trace event emitted by a recluster migration carries the shard
// id of the table that performed it.
func TestReclusterShardStampedTrace(t *testing.T) {
	reg := obs.New(obs.Options{})
	s, err := Open(t.TempDir(), Options{
		Shards: 2,
		Config: cinderella.Config{PartitionSizeLimit: 16, Obs: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 512; i++ {
		doc := cinderella.Doc{
			"c0":                        i,
			"c1":                        "x",
			fmt.Sprintf("a%d", i%8):     1,
			fmt.Sprintf("b%d", (i/8)%8): 1,
		}
		if _, err := s.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}

	// Everything so far (inserts, splits) is pre-recluster noise; only
	// events after this watermark belong to the migrations.
	var watermark uint64
	for _, ev := range reg.TraceDump() {
		if ev.Seq > watermark {
			watermark = ev.Seq
		}
	}

	m := recluster.New(s, reg, recluster.Config{
		BatchSize: 64, MaxVictims: 8, MinQueries: 1, Alpha: 0.9,
	})
	defer m.Close()

	for round := 0; m.Status().Moved == 0 && round < 20; round++ {
		for i := 0; i < 8; i++ {
			s.Query(fmt.Sprintf("b%d", i))
		}
		m.Tick()
	}
	st := m.Status()
	if st.Moved == 0 {
		t.Fatalf("no migrations after 20 rounds: %+v", st)
	}

	// Progress must be attributed to real shards, not the unsharded -1.
	for _, ps := range st.PerShard {
		if ps.Shard < 0 || int(ps.Shard) >= s.Shards() {
			t.Fatalf("progress attributed to invalid shard %d: %+v", ps.Shard, st.PerShard)
		}
	}

	// Every post-watermark move/update event must be shard-stamped.
	var stamped int
	for _, ev := range reg.TraceDump() {
		if ev.Seq <= watermark {
			continue
		}
		if ev.Kind != obs.EvMove && ev.Kind != obs.EvUpdate {
			continue
		}
		if ev.Shard < 0 || int(ev.Shard) >= s.Shards() {
			t.Fatalf("recluster event %+v not shard-stamped", ev)
		}
		stamped++
	}
	if stamped == 0 {
		t.Fatal("no shard-stamped move/update events traced during reclustering")
	}

	// The migrations advance the global LSN clock, so a group committer
	// fsyncing to LastLSN covers them.
	if s.LastLSN() == 0 {
		t.Fatal("recluster moves did not advance the global LSN")
	}
}
