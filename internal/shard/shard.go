// Package shard horizontally composes N independent Cinderella tables
// into one sharded write path. Entities are hash-routed by id, each shard
// owns its own table.Table + partitioner + lock + write-ahead log, so
// mutations on different shards proceed fully in parallel — the scale-out
// move for an online partitioner that must keep up with the ingest stream
// (paper Section III; cf. Schism's per-shard graph partitioning and
// H-Store-style single-threaded-per-shard execution).
//
// Durability is striped: one WAL per shard under dir/shard-<i>/, tied
// together by a manifest (dir/manifest.json) that commits the shard
// topology. A single global LSN clock spans all shards, so the existing
// group-commit machinery (internal/server.Committer) acknowledges writers
// across shards with one logical sync that fans out to the dirty shard
// WALs in parallel. Recovery replays all shards concurrently and refuses
// torn manifests, missing shard directories, and topology changes.
//
// Queries fan out to every shard through the per-shard parallel-select
// machinery and merge in deterministic (shard, partition-id) order;
// Partitions() concatenates per-shard synopses, so Definition-1
// EFFICIENCY accounting stays exact — a query's relevant and read volumes
// are per-partition sums, indifferent to which shard owns the partition.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cinderella"
	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/table"
)

// manifestVersion guards the on-disk layout.
const manifestVersion = 1

// manifestName is the topology commit record inside the shard directory.
const manifestName = "manifest.json"

// walName is each shard's log file inside its shard-<i> directory.
const walName = "shard.wal"

// manifest is the cross-shard consistency record. It is written once at
// initialization (atomically, via tmp+rename) and verified on every
// reopen: a sharded table is only openable with the topology it was
// created with.
type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// Options configures Open.
type Options struct {
	// Shards is the shard count N. Default 1. On reopen it must match the
	// manifest (resharding is not supported).
	Shards int
	// Config is the per-shard table configuration. Config.Obs, when set,
	// is the registry family root: each shard receives its ShardView so
	// counters aggregate exactly and trace events carry the shard id.
	Config cinderella.Config
}

// Sharded is a durable table horizontally partitioned across N
// independent shards. It exposes the same method set as
// *cinderella.DurableTable (the server.Store contract), so the daemon,
// the client, and the wire format are unchanged.
type Sharded struct {
	dir    string
	shards []*cinderella.DurableTable

	// nextID allocates globally unique entity ids; routing hashes the id,
	// so allocation and placement are decoupled and recovery re-seeds the
	// counter from the per-shard maxima.
	nextID atomic.Uint64

	// Global LSN clock. Each applied mutation bumps gAppend *after* its
	// shard append returned (same goroutine), so when a syncer snapshots
	// gAppend and then syncs every shard to its own current LastLSN, all
	// operations with global LSN <= the snapshot are covered. gDurable
	// only advances (max-CAS) to completed snapshots.
	gAppend  atomic.Uint64
	gDurable atomic.Uint64
	// syncMu serializes SyncTo/Sync/Checkpoint snapshots so gDurable
	// advances through consistent cuts.
	syncMu sync.Mutex

	// The binary wire layer negotiates attribute ids against one
	// process-scoped dictionary, but every shard's table owns its own
	// (WAL-logged) dictionary, so the id spaces diverge. wireDict is the
	// process-scoped space; toShard/toWire are per-shard translation
	// caches (index = source id, value = target id, -1 = not yet
	// resolved). Ids are dense and stable in both spaces, so the caches
	// are append-only and never invalidated. wireDict is not persisted:
	// wire ids are session-scoped and clients re-register names after a
	// restart (the wire handshake's session token detects that).
	wireDict *entity.Dictionary
	remapMu  sync.RWMutex
	toShard  [][]int32 // [shard][wire id] -> shard-local id
	toWire   [][]int32 // [shard][shard-local id] -> wire id

	// obs is the registry family's root handle (shard views feed it);
	// fan-out queries start their root spans here. Nil when
	// uninstrumented.
	obs *obs.Registry
}

// Open opens (or creates) a sharded table rooted at dir. Existing shard
// logs are replayed concurrently; the manifest must agree with
// opts.Shards. Layout:
//
//	dir/manifest.json
//	dir/shard-0/shard.wal
//	dir/shard-1/shard.wal
//	...
func Open(dir string, opts Options) (*Sharded, error) {
	n := opts.Shards
	if n == 0 {
		n = 1
	}
	if n < 0 {
		return nil, fmt.Errorf("shard: shard count %d must be positive", n)
	}

	m, err := readManifest(dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh initialization — unless shard directories already exist,
		// which means a previous instance died between creating them and
		// committing the manifest (or the manifest was lost): refuse, the
		// operator must decide.
		if stale, serr := staleShardDirs(dir); serr != nil {
			return nil, serr
		} else if len(stale) > 0 {
			return nil, fmt.Errorf("shard: %s has no %s but existing shard directories %v; refusing to reinitialize over them", dir, manifestName, stale)
		}
		if err := initLayout(dir, n); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("shard: %s/%s has version %d, this binary supports %d", dir, manifestName, m.Version, manifestVersion)
		}
		if m.Shards != n {
			return nil, fmt.Errorf("shard: %s was created with %d shards, reopened with %d (resharding is not supported)", dir, m.Shards, n)
		}
	}

	s := &Sharded{
		dir:      dir,
		shards:   make([]*cinderella.DurableTable, n),
		wireDict: entity.NewDictionary(),
		toShard:  make([][]int32, n),
		toWire:   make([][]int32, n),
		obs:      opts.Config.Obs,
	}

	// Replay all shards concurrently. Each shard directory must exist —
	// a manifest promising a shard whose directory is gone is corruption,
	// not an empty shard.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		cfg := opts.Config
		if opts.Config.Obs != nil {
			cfg.Obs = opts.Config.Obs.ShardView(i)
		}
		wg.Add(1)
		go func(i int, cfg cinderella.Config) {
			defer wg.Done()
			sd := shardDir(dir, i)
			if _, err := os.Stat(sd); err != nil {
				errs[i] = fmt.Errorf("shard: manifest names shard %d but its directory is unusable: %w", i, err)
				return
			}
			d, err := cinderella.OpenFile(filepath.Join(sd, walName), cfg)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			s.shards[i] = d
		}(i, cfg)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, d := range s.shards {
			if d != nil {
				d.Close()
			}
		}
		return nil, err
	}

	// Re-seed the global id allocator and LSN clock from the replayed
	// shards: ids resume above every recovered id, and the clock resumes
	// at the total number of recovered log records (any monotonic origin
	// works — pre-recovery LSNs are durable by construction).
	var maxID cinderella.ID
	var lsn uint64
	for _, d := range s.shards {
		if id := d.LastID(); id > maxID {
			maxID = id
		}
		lsn += d.LastLSN()
	}
	s.nextID.Store(uint64(maxID))
	s.gAppend.Store(lsn)
	s.gDurable.Store(lsn)
	return s, nil
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d", i))
}

// readManifest loads and validates dir/manifest.json. A torn or otherwise
// unparsable manifest is an explicit error, never a silent fresh start.
func readManifest(dir string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("shard: %s/%s is torn or corrupt: %w", dir, manifestName, err)
	}
	if m.Shards <= 0 {
		return m, fmt.Errorf("shard: %s/%s declares %d shards", dir, manifestName, m.Shards)
	}
	return m, nil
}

// staleShardDirs lists shard-* entries under dir (empty when dir does not
// exist).
func staleShardDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) > 6 && e.Name()[:6] == "shard-" {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// initLayout creates the shard directories first and commits the topology
// by atomically renaming the manifest into place last — the manifest is
// the commit point, so a crash mid-initialization leaves either nothing
// usable (no manifest) or a fully formed layout.
func initLayout(dir string, n int) error {
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(shardDir(dir, i), 0o755); err != nil {
			return err
		}
	}
	data, err := json.Marshal(manifest{Version: manifestVersion, Shards: n})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// ShardOf returns the shard index owning id.
func (s *Sharded) ShardOf(id cinderella.ID) int { return s.route(id) }

// route hashes an entity id onto a shard. Sequentially allocated ids are
// scattered by a splitmix64-style finalizer so adjacent ids land on
// different shards and concurrent ingest spreads across all locks.
func (s *Sharded) route(id cinderella.ID) int {
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(s.shards)))
}

// Insert stores doc durably on its shard and returns its globally unique
// id.
func (s *Sharded) Insert(doc cinderella.Doc) (cinderella.ID, error) {
	id := cinderella.ID(s.nextID.Add(1))
	if err := s.shards[s.route(id)].InsertWithID(id, doc); err != nil {
		return 0, err
	}
	s.gAppend.Add(1)
	return id, nil
}

// Get returns the document with the given id.
func (s *Sharded) Get(id cinderella.ID) (cinderella.Doc, bool) {
	if id == 0 {
		return nil, false
	}
	return s.shards[s.route(id)].Get(id)
}

// Update replaces the document durably on its shard.
func (s *Sharded) Update(id cinderella.ID, doc cinderella.Doc) (bool, error) {
	if id == 0 {
		return false, nil
	}
	ok, err := s.shards[s.route(id)].Update(id, doc)
	if ok && err == nil {
		s.gAppend.Add(1)
	}
	return ok, err
}

// Delete removes the document durably from its shard.
func (s *Sharded) Delete(id cinderella.ID) (bool, error) {
	if id == 0 {
		return false, nil
	}
	ok, err := s.shards[s.route(id)].Delete(id)
	if ok && err == nil {
		s.gAppend.Add(1)
	}
	return ok, err
}

// Dict returns the process-scoped wire dictionary. Entities passed to
// InsertEntity/UpdateEntity use its id space; entities returned by
// GetEntity/QueryEntities are translated back into it.
func (s *Sharded) Dict() *entity.Dictionary { return s.wireDict }

// ReclusterPartition delegates one victim-partition batch to the
// owning shard's durable table (heat rows carry the shard id, so the
// reclusterer addresses victims as (shard, partition) pairs). The
// blender must be built from this shard's query mix: attribute ids are
// shard-local. Each logged move advances the global LSN clock so the
// group committer covers recluster writes like any other mutation.
func (s *Sharded) ReclusterPartition(shard int, pid uint64, max int, blender core.RatingBlender) (table.ReclusterResult, error) {
	if shard < 0 || shard >= len(s.shards) {
		return table.ReclusterResult{}, fmt.Errorf("shard: recluster on unknown shard %d of %d", shard, len(s.shards))
	}
	res, err := s.shards[shard].ReclusterPartition(shard, pid, max, blender)
	if res.Moved > 0 {
		s.gAppend.Add(uint64(res.Moved))
	}
	return res, err
}

// shardID translates a wire attribute id to shard si's local id. Unknown
// wire ids (never registered in the wire dictionary) report false — the
// trust boundary for ids decoded from untrusted wire bytes.
func (s *Sharded) shardID(si, w int) (int, bool) {
	s.remapMu.RLock()
	m := s.toShard[si]
	if w >= 0 && w < len(m) && m[w] >= 0 {
		id := int(m[w])
		s.remapMu.RUnlock()
		return id, true
	}
	s.remapMu.RUnlock()
	if w < 0 || w >= s.wireDict.Len() {
		return 0, false
	}
	// Registering the name in the shard dictionary is safe here: the
	// shard WAL logs new attributes with the next mutation on that shard.
	id := s.shards[si].Dict().ID(s.wireDict.Name(w))
	s.remapMu.Lock()
	setRemap(&s.toShard[si], w, int32(id))
	setRemap(&s.toWire[si], id, int32(w))
	s.remapMu.Unlock()
	return id, true
}

// wireID translates shard si's local attribute id to a wire id,
// registering the name in the wire dictionary on first sight. Local ids
// come from decoded shard records, so they are always valid.
func (s *Sharded) wireID(si, local int) int {
	s.remapMu.RLock()
	m := s.toWire[si]
	if local < len(m) && m[local] >= 0 {
		w := int(m[local])
		s.remapMu.RUnlock()
		return w
	}
	s.remapMu.RUnlock()
	w := s.wireDict.ID(s.shards[si].Dict().Name(local))
	s.remapMu.Lock()
	setRemap(&s.toWire[si], local, int32(w))
	setRemap(&s.toShard[si], w, int32(local))
	s.remapMu.Unlock()
	return w
}

// setRemap grows m to cover index k (filling with -1) and sets m[k] = v.
// Callers hold remapMu.
func setRemap(m *[]int32, k int, v int32) {
	for len(*m) <= k {
		*m = append(*m, -1)
	}
	(*m)[k] = v
}

// InsertEntity stores a pre-built entity durably on its shard and
// returns its globally unique id. Attribute ids are in the wire
// dictionary's space; the entity is remapped in place to the owning
// shard's space (it is not retained, but callers must re-encode before
// reuse). Unknown wire ids fail without applying anything.
func (s *Sharded) InsertEntity(e *entity.Entity) (cinderella.ID, error) {
	id := cinderella.ID(s.nextID.Add(1))
	si := s.route(id)
	if err := e.Remap(func(w int) (int, bool) { return s.shardID(si, w) }); err != nil {
		return 0, err
	}
	if err := s.shards[si].InsertEntityWithID(id, e); err != nil {
		return 0, err
	}
	s.gAppend.Add(1)
	return id, nil
}

// UpdateEntity replaces a document durably with a pre-built entity in
// the wire dictionary's id space (see InsertEntity).
func (s *Sharded) UpdateEntity(id cinderella.ID, e *entity.Entity) (bool, error) {
	if id == 0 {
		return false, nil
	}
	si := s.route(id)
	if err := e.Remap(func(w int) (int, bool) { return s.shardID(si, w) }); err != nil {
		return false, err
	}
	ok, err := s.shards[si].UpdateEntity(id, e)
	if ok && err == nil {
		s.gAppend.Add(1)
	}
	return ok, err
}

// GetEntity returns the entity with the given id, remapped into the wire
// dictionary's space. The entity is a fresh decode owned by the caller.
func (s *Sharded) GetEntity(id cinderella.ID) (*entity.Entity, bool) {
	if id == 0 {
		return nil, false
	}
	si := s.route(id)
	e, ok := s.shards[si].GetEntity(id)
	if !ok {
		return nil, false
	}
	// Local ids always translate, so this cannot fail.
	e.Remap(func(local int) (int, bool) { return s.wireID(si, local), true })
	return e, true
}

// QueryEntities fans out like Query but keeps the decoded entities,
// remapped into the wire dictionary's space. The entities are fresh
// per-query decodes owned by the caller.
func (s *Sharded) QueryEntities(attrs ...string) []cinderella.EntityRecord {
	sp, children, start := s.startFan(obs.KindSelect, attrs)
	out := s.queryEntitiesSpanned(children, attrs...)
	s.finishFan(sp, start)
	return out
}

// QueryEntitiesTraced is QueryEntities under a forced trace (sampling
// bypassed, full detail): the wire protocol's trace flag. The root span
// holds one child per shard, merged in shard order; nil when
// uninstrumented.
func (s *Sharded) QueryEntitiesTraced(attrs ...string) ([]cinderella.EntityRecord, *obs.QuerySpan) {
	sp := s.obs.StartQueryForced(obs.KindSelect)
	sp, children, start := s.fanChildren(sp, attrs)
	out := s.queryEntitiesSpanned(children, attrs...)
	s.finishFan(sp, start)
	return out, sp
}

func (s *Sharded) queryEntitiesSpanned(children []*obs.QuerySpan, attrs ...string) []cinderella.EntityRecord {
	per := make([][]cinderella.EntityRecord, len(s.shards))
	var wg sync.WaitGroup
	for i, d := range s.shards {
		wg.Add(1)
		go func(i int, d *cinderella.DurableTable) {
			defer wg.Done()
			recs := d.QueryEntitiesSpanned(children[i], attrs...)
			for _, r := range recs {
				r.Entity.Remap(func(local int) (int, bool) { return s.wireID(i, local), true })
			}
			per[i] = recs
		}(i, d)
	}
	wg.Wait()
	var out []cinderella.EntityRecord
	for _, r := range per {
		out = append(out, r...)
	}
	return out
}

// Len returns the number of live documents across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, d := range s.shards {
		n += d.Len()
	}
	return n
}

// LastID returns the highest entity id ever assigned.
func (s *Sharded) LastID() cinderella.ID {
	return cinderella.ID(s.nextID.Load())
}

// Query fans out to every shard concurrently (each shard runs its own
// pruned, parallel select) and concatenates the results in shard order.
// Per-shard results are partition-id ordered, so the merged order is the
// deterministic (shard, pid) order.
func (s *Sharded) Query(attrs ...string) []cinderella.Record {
	sp, children, start := s.startFan(obs.KindSelect, attrs)
	per := fanOut(s.shards, func(i int, d *cinderella.DurableTable) []cinderella.Record {
		return d.QuerySpanned(children[i], attrs...)
	})
	s.finishFan(sp, start)
	var out []cinderella.Record
	for _, r := range per {
		out = append(out, r...)
	}
	return out
}

// QueryWithReport runs Query and sums the per-shard execution reports.
// Because partition synopses are exact per shard and EFFICIENCY
// (Definition 1) is a ratio of per-partition sums, the summed report's
// EntitiesReturned/EntitiesScanned are exactly the fan-out query's
// relevant and read volumes — sharding never skews the accounting.
func (s *Sharded) QueryWithReport(attrs ...string) ([]cinderella.Record, cinderella.QueryReport) {
	sp, children, start := s.startFan(obs.KindSelect, attrs)
	recs, rep := s.queryWithReportSpanned(children, attrs...)
	s.finishFan(sp, start)
	return recs, rep
}

// QueryTraced is QueryWithReport under a forced trace (sampling
// bypassed, full detail): the server's ?trace=1. The root span holds
// one child per shard, merged in shard order; nil when uninstrumented.
func (s *Sharded) QueryTraced(attrs ...string) ([]cinderella.Record, cinderella.QueryReport, *obs.QuerySpan) {
	sp := s.obs.StartQueryForced(obs.KindSelect)
	sp, children, start := s.fanChildren(sp, attrs)
	recs, rep := s.queryWithReportSpanned(children, attrs...)
	s.finishFan(sp, start)
	return recs, rep, sp
}

func (s *Sharded) queryWithReportSpanned(children []*obs.QuerySpan, attrs ...string) ([]cinderella.Record, cinderella.QueryReport) {
	type shardResult struct {
		recs []cinderella.Record
		rep  cinderella.QueryReport
	}
	per := fanOut(s.shards, func(i int, d *cinderella.DurableTable) shardResult {
		recs, rep := d.QueryWithReportSpanned(children[i], attrs...)
		return shardResult{recs, rep}
	})
	var out []cinderella.Record
	var rep cinderella.QueryReport
	for _, r := range per {
		out = append(out, r.recs...)
		rep.PartitionsTotal += r.rep.PartitionsTotal
		rep.PartitionsTouched += r.rep.PartitionsTouched
		rep.PartitionsPruned += r.rep.PartitionsPruned
		rep.EntitiesScanned += r.rep.EntitiesScanned
		rep.EntitiesReturned += r.rep.EntitiesReturned
		rep.BytesRead += r.rep.BytesRead
		rep.BytesRelevant += r.rep.BytesRelevant
	}
	return out, rep
}

// ScanAll fans the full scan out to every shard concurrently and
// concatenates the per-shard results in shard order. Each shard scans a
// lock-free snapshot (unless locked reads are enabled), so a full scan
// never stalls the sharded write path.
func (s *Sharded) ScanAll() []cinderella.Record {
	sp, children, start := s.startFan(obs.KindScanAll, nil)
	per := fanOut(s.shards, func(i int, d *cinderella.DurableTable) []cinderella.Record {
		return d.ScanAllSpanned(children[i])
	})
	s.finishFan(sp, start)
	var out []cinderella.Record
	for _, r := range per {
		out = append(out, r...)
	}
	return out
}

// SetLockedReads switches every shard's read paths between snapshot mode
// (default) and the historical locked mode (see cinderella.Table).
func (s *Sharded) SetLockedReads(locked bool) {
	for _, d := range s.shards {
		d.SetLockedReads(locked)
	}
}

// SetBitmapScans switches every shard's snapshot scans between the
// word-parallel bitmap kernel (default) and the per-record sidecar path
// (see cinderella.Table).
func (s *Sharded) SetBitmapScans(on bool) {
	for _, d := range s.shards {
		d.SetBitmapScans(on)
	}
}

// Partitions concatenates the per-shard partition synopses in shard
// order; each shard's slice is partition-id ordered, so the result is the
// same deterministic (shard, pid) order queries merge in.
func (s *Sharded) Partitions() []cinderella.PartitionStat {
	per := fanOut(s.shards, func(_ int, d *cinderella.DurableTable) []cinderella.PartitionStat {
		return d.Partitions()
	})
	var out []cinderella.PartitionStat
	for _, p := range per {
		out = append(out, p...)
	}
	return out
}

// fanOut runs fn against every shard concurrently and returns the results
// in shard order.
func fanOut[T any](shards []*cinderella.DurableTable, fn func(int, *cinderella.DurableTable) T) []T {
	out := make([]T, len(shards))
	var wg sync.WaitGroup
	for i, d := range shards {
		wg.Add(1)
		go func(i int, d *cinderella.DurableTable) {
			defer wg.Done()
			out[i] = fn(i, d)
		}(i, d)
	}
	wg.Wait()
	return out
}

// startFan begins a (possibly nil) sampled root span for a fan-out query
// and one child per shard. See fanChildren.
func (s *Sharded) startFan(kind obs.SpanKind, attrs []string) (*obs.QuerySpan, []*obs.QuerySpan, time.Time) {
	return s.fanChildren(s.obs.StartQuery(kind), attrs)
}

// fanChildren attaches one child span per shard to the root sp. Children
// are created serially, in shard order, *before* the goroutine fan-out:
// each goroutine then writes only its own child, and the wg.Wait barrier
// publishes them back, so the merged span tree is deterministic (shard
// order) without any locking. A nil sp yields a slice of nil children —
// every downstream spanned call tolerates nil.
func (s *Sharded) fanChildren(sp *obs.QuerySpan, attrs []string) (*obs.QuerySpan, []*obs.QuerySpan, time.Time) {
	children := make([]*obs.QuerySpan, len(s.shards))
	if sp == nil {
		return nil, children, time.Time{}
	}
	if sp.WantDetail() {
		if attrs == nil {
			sp.SetQuery("scan-all")
		} else {
			sp.SetQuery("select(" + strings.Join(attrs, ",") + ")")
		}
	}
	for i := range s.shards {
		children[i] = sp.NewChild(int32(i))
	}
	return sp, children, time.Now()
}

// finishFan completes the root span: FinishQuery sums the per-shard
// children into the root aggregates. Heat was already fed by each
// shard's own FinishQuery (children carry the shard id), so the root
// passes no part spans.
func (s *Sharded) finishFan(sp *obs.QuerySpan, start time.Time) {
	if sp == nil {
		return
	}
	s.obs.FinishQuery(sp, time.Since(start).Nanoseconds(), obs.QueryAgg{}, nil)
}

// Compact merges underfilled partitions on every shard and returns the
// total number of merges.
func (s *Sharded) Compact(threshold float64) (int, error) {
	total := 0
	for _, d := range s.shards {
		n, err := d.Compact(threshold)
		if err != nil {
			return total, err
		}
		if n > 0 {
			s.gAppend.Add(1)
		}
		total += n
	}
	return total, nil
}

// LastLSN returns the global log sequence number of the most recent
// applied mutation. A writer that just mutated the table passes it to
// SyncTo (or a group committer) to wait for exactly that much history to
// become durable.
func (s *Sharded) LastLSN() uint64 { return s.gAppend.Load() }

// DurableLSN returns the highest global LSN known durable.
func (s *Sharded) DurableLSN() uint64 { return s.gDurable.Load() }

// SyncTo makes every mutation with global LSN <= lsn durable by syncing
// the shards' WALs in parallel (a vector sync). Like the unsharded
// SyncTo it coalesces: a snapshot that already covered lsn returns
// without touching any file, so one group-commit flush acknowledges
// concurrent writers across all shards.
func (s *Sharded) SyncTo(lsn uint64) error {
	if s.gDurable.Load() >= lsn {
		return nil
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.gDurable.Load() >= lsn {
		return nil
	}
	// Every op counted in this snapshot finished its shard append before
	// bumping gAppend, so syncing each shard to its current LastLSN covers
	// the whole snapshot.
	snap := s.gAppend.Load()
	if err := s.syncShards(); err != nil {
		return err
	}
	maxStore(&s.gDurable, snap)
	return nil
}

// Sync makes all applied mutations durable across all shards.
func (s *Sharded) Sync() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	snap := s.gAppend.Load()
	if err := s.syncShards(); err != nil {
		return err
	}
	maxStore(&s.gDurable, snap)
	return nil
}

// syncShards fsyncs every shard WAL concurrently. Callers hold syncMu.
func (s *Sharded) syncShards() error {
	errs := fanOut(s.shards, func(_ int, d *cinderella.DurableTable) error {
		return d.SyncTo(d.LastLSN())
	})
	return errors.Join(errs...)
}

// Checkpoint compacts every shard's log to its live contents. The
// manifest is untouched — checkpointing changes log contents, not
// topology.
func (s *Sharded) Checkpoint() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	snap := s.gAppend.Load()
	errs := fanOut(s.shards, func(_ int, d *cinderella.DurableTable) error {
		return d.Checkpoint()
	})
	if err := errors.Join(errs...); err != nil {
		return err
	}
	maxStore(&s.gDurable, snap)
	return nil
}

// Close syncs and closes every shard log. Idempotent per shard (the
// underlying tables' Close is a no-op the second time).
func (s *Sharded) Close() error {
	errs := fanOut(s.shards, func(_ int, d *cinderella.DurableTable) error {
		return d.Close()
	})
	return errors.Join(errs...)
}

// maxStore advances a monotonic atomic to at least v.
func maxStore(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
