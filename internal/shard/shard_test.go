package shard

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"cinderella"
)

func testConfig() cinderella.Config {
	return cinderella.Config{Weight: 0.5, PartitionSizeLimit: 50}
}

func docFor(rng *rand.Rand) cinderella.Doc {
	d := cinderella.Doc{}
	class := rng.Intn(4)
	for j := 0; j < 6; j++ {
		d[fmt.Sprintf("c%d_a%d", class, rng.Intn(12))] = int64(rng.Intn(100))
	}
	return d
}

func TestShardedBasic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	docs := map[cinderella.ID]cinderella.Doc{}
	for i := 0; i < 500; i++ {
		doc := docFor(rng)
		id, err := s.Insert(doc)
		if err != nil {
			t.Fatal(err)
		}
		docs[id] = doc
	}
	if got := s.Len(); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
	for id, want := range docs {
		got, ok := s.Get(id)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("Get(%d) = %v, %v; want %v", id, got, ok, want)
		}
	}

	// Every shard should own a nontrivial slice of the data (the router
	// scatters sequential ids).
	for i, d := range s.shards {
		if d.Len() < 50 {
			t.Errorf("shard %d holds only %d of 500 docs — router is skewed", i, d.Len())
		}
	}

	// Fan-out query: all records carrying a class-0 attribute, in
	// deterministic (shard, pid) order on repeated runs.
	recs1, rep := s.QueryWithReport("c0_a1", "c0_a2")
	recs2 := s.Query("c0_a1", "c0_a2")
	if len(recs1) != len(recs2) {
		t.Fatalf("Query and QueryWithReport disagree: %d vs %d", len(recs1), len(recs2))
	}
	for i := range recs1 {
		if recs1[i].ID != recs2[i].ID {
			t.Fatalf("fan-out order not deterministic at %d: %d vs %d", i, recs1[i].ID, recs2[i].ID)
		}
	}
	if rep.EntitiesReturned != len(recs1) {
		t.Errorf("report says %d returned, got %d records", rep.EntitiesReturned, len(recs1))
	}
	if rep.PartitionsTotal <= 0 || rep.EntitiesScanned < rep.EntitiesReturned {
		t.Errorf("implausible fan-out report: %+v", rep)
	}

	// Update and delete route to the owning shard.
	var anyID cinderella.ID
	for id := range docs {
		anyID = id
		break
	}
	if ok, err := s.Update(anyID, cinderella.Doc{"c9_z": int64(1)}); !ok || err != nil {
		t.Fatalf("Update = %v, %v", ok, err)
	}
	if ok, err := s.Delete(anyID); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, ok := s.Get(anyID); ok {
		t.Fatal("deleted id still readable")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything replayed, id allocator resumes above old ids.
	s2, err := Open(dir, Options{Shards: 4, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 499 {
		t.Fatalf("reopened Len = %d, want 499", got)
	}
	newID, err := s2.Insert(cinderella.Doc{"x": int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if newID <= 500 {
		t.Fatalf("id allocator reissued old id %d", newID)
	}
}

func TestShardedReshardRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(dir, Options{Shards: 4, Config: testConfig()}); err == nil ||
		!strings.Contains(err.Error(), "resharding") {
		t.Fatalf("reopen with different shard count: err = %v, want resharding refusal", err)
	}
}

func TestShardedTornManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 3, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(cinderella.Doc{"a": int64(1)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash that tore the manifest mid-write: truncate the JSON.
	mp := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Shards: 3, Config: testConfig()}); err == nil ||
		!strings.Contains(err.Error(), "torn or corrupt") {
		t.Fatalf("torn manifest: err = %v, want torn-or-corrupt refusal", err)
	}
}

func TestShardedMissingManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	// Shard directories without a manifest: never silently reinitialize.
	if _, err := Open(dir, Options{Shards: 2, Config: testConfig()}); err == nil ||
		!strings.Contains(err.Error(), "refusing to reinitialize") {
		t.Fatalf("missing manifest: err = %v, want reinit refusal", err)
	}
}

func TestShardedMissingShardDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 3, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Insert(cinderella.Doc{"a": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := os.RemoveAll(shardDir(dir, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Shards: 3, Config: testConfig()}); err == nil ||
		!strings.Contains(err.Error(), "directory is unusable") {
		t.Fatalf("missing shard dir: err = %v, want unusable-directory refusal", err)
	}
}

// copyTree duplicates a shard directory tree, simulating the post-crash
// on-disk state while the original instance still holds its files open.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedCrashRecovery covers the vector-sync durability contract:
// after SyncTo(lsn) returns, a crash (simulated by copying the on-disk
// state out from under the live instance, buffered tails and all) must
// recover every op with global LSN <= lsn, across all shard WALs.
func TestShardedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		if _, err := s.Insert(docFor(rng)); err != nil {
			t.Fatal(err)
		}
	}
	lsn := s.LastLSN()
	if err := s.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	if got := s.DurableLSN(); got < lsn {
		t.Fatalf("DurableLSN = %d after SyncTo(%d)", got, lsn)
	}
	// More inserts after the sync; these may or may not survive the crash.
	for i := 0; i < 50; i++ {
		if _, err := s.Insert(docFor(rng)); err != nil {
			t.Fatal(err)
		}
	}

	crashed := t.TempDir()
	copyTree(t, dir, crashed)
	s2, err := Open(crashed, Options{Shards: 4, Config: testConfig()})
	if err != nil {
		t.Fatalf("recovery after simulated crash: %v", err)
	}
	defer s2.Close()
	if got := s2.Len(); got < 200 {
		t.Fatalf("recovered %d docs, want >= 200 (the synced prefix)", got)
	}
}

// TestShardedN1PlacementIdentity is the property test: a Sharded table
// with N=1, closed and replayed from its WAL, produces exactly the same
// partitioning as the plain in-memory table fed the same workload.
func TestShardedN1PlacementIdentity(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	plain := cinderella.Open(cfg)

	rng := rand.New(rand.NewSource(3))
	var ids []cinderella.ID
	for i := 0; i < 800; i++ {
		doc := docFor(rng)
		sid, err := s.Insert(doc)
		if err != nil {
			t.Fatal(err)
		}
		pid := plain.Insert(doc)
		if sid != pid {
			t.Fatalf("insert %d: sharded id %d != plain id %d", i, sid, pid)
		}
		ids = append(ids, sid)
		// Interleave updates and deletes so the replayed history is not
		// insert-only.
		switch {
		case i%7 == 3:
			victim := ids[rng.Intn(len(ids))]
			doc := docFor(rng)
			so, err := s.Update(victim, doc)
			if err != nil {
				t.Fatal(err)
			}
			po := plain.Update(victim, doc)
			if so != po {
				t.Fatalf("update %d diverged: %v vs %v", victim, so, po)
			}
		case i%11 == 5:
			victim := ids[rng.Intn(len(ids))]
			so, err := s.Delete(victim)
			if err != nil {
				t.Fatal(err)
			}
			po := plain.Delete(victim)
			if so != po {
				t.Fatalf("delete %d diverged: %v vs %v", victim, so, po)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the workload is now *replayed* from the WAL.
	s2, err := Open(dir, Options{Shards: 1, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if s2.Len() != plain.Len() {
		t.Fatalf("Len: sharded %d, plain %d", s2.Len(), plain.Len())
	}
	sp, pp := s2.Partitions(), plain.Partitions()
	if len(sp) != len(pp) {
		t.Fatalf("partition count: sharded %d, plain %d", len(sp), len(pp))
	}
	for i := range sp {
		a, b := sp[i], pp[i]
		sort.Strings(a.Attributes)
		sort.Strings(b.Attributes)
		if a.Records != b.Records || a.Bytes != b.Bytes || !reflect.DeepEqual(a.Attributes, b.Attributes) {
			t.Fatalf("partition %d diverged:\nsharded: %+v\nplain:   %+v", i, a, b)
		}
	}
}

// TestShardedConcurrentWriters is the sharded -race suite: concurrent
// writers on distinct shards, fan-out readers, and a group-commit-style
// syncer all running against one Sharded table.
func TestShardedConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []cinderella.ID
			for i := 0; i < perWriter; i++ {
				id, err := s.Insert(docFor(rng))
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, id)
				if i%10 == 9 {
					if err := s.SyncTo(s.LastLSN()); err != nil {
						t.Error(err)
						return
					}
				}
				if i%17 == 13 {
					if _, err := s.Update(mine[rng.Intn(len(mine))], docFor(rng)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Fan-out readers run while the writers hammer the shards.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Query("c0_a1", "c1_a2")
				s.Partitions()
				s.Len()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()

	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Drain-loses-nothing: every acked insert is in the reopened table.
	s2, err := Open(dir, Options{Shards: 4, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != writers*perWriter {
		t.Fatalf("reopened Len = %d, want %d", got, writers*perWriter)
	}
}

// TestShardedConcurrentWritersScanAll races continuous writers on every
// shard against full-scan and query readers. Under -race this guards
// the fan-out over the per-shard lock-free snapshot reads.
func TestShardedConcurrentWritersScanAll(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4, Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		if _, err := s.Insert(docFor(rng)); err != nil {
			t.Fatal(err)
		}
	}

	const writers = 4
	var wwg, rwg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, writers+4)

	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(seed int64) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []cinderella.ID
			for i := 0; i < 300; i++ {
				switch {
				case len(mine) > 0 && rng.Intn(4) == 0:
					k := rng.Intn(len(mine))
					if _, err := s.Delete(mine[k]); err != nil {
						errs <- err
						return
					}
					mine = append(mine[:k], mine[k+1:]...)
				case len(mine) > 0 && rng.Intn(4) == 0:
					if _, err := s.Update(mine[rng.Intn(len(mine))], docFor(rng)); err != nil {
						errs <- err
						return
					}
				default:
					id, err := s.Insert(docFor(rng))
					if err != nil {
						errs <- err
						return
					}
					mine = append(mine, id)
				}
			}
		}(int64(300 + w))
	}

	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(2) == 0 {
					for _, rec := range s.ScanAll() {
						if rec.Doc == nil {
							errs <- fmt.Errorf("ScanAll returned nil doc for id %d", rec.ID)
							return
						}
					}
				} else {
					attr := fmt.Sprintf("c%d_a%d", rng.Intn(4), rng.Intn(12))
					recs, rep := s.QueryWithReport(attr)
					if len(recs) != rep.EntitiesReturned {
						errs <- fmt.Errorf("query returned %d recs, report says %d", len(recs), rep.EntitiesReturned)
						return
					}
				}
			}
		}(int64(400 + r))
	}

	wwg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Full scan agrees across read modes once writers stop.
	snapRecs := s.ScanAll()
	s.SetLockedReads(true)
	lockRecs := s.ScanAll()
	s.SetLockedReads(false)
	if len(snapRecs) != len(lockRecs) {
		t.Fatalf("snapshot scan %d records, locked scan %d", len(snapRecs), len(lockRecs))
	}
	if len(snapRecs) != s.Len() {
		t.Fatalf("ScanAll %d records, Len %d", len(snapRecs), s.Len())
	}
}
