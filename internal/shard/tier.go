package shard

import (
	"fmt"

	"cinderella"
	"cinderella/internal/tier"
)

// Tiered storage across shards. Each shard's durable table owns its own
// cold tier (images and manifest live under the shard's WAL path), so
// the fan-out here is pure routing: tier states concatenate in shard
// order and freeze/thaw address one (shard, partition) pair, exactly
// like ReclusterPartition. Sharded satisfies tier.Store directly.

// TierStates concatenates the per-shard tier reports in shard order
// (each shard's slice is partition-id ordered).
func (s *Sharded) TierStates() []tier.State {
	per := fanOut(s.shards, func(i int, d *cinderella.DurableTable) []tier.State {
		states := d.TierStates()
		out := make([]tier.State, len(states))
		for j, ts := range states {
			out[j] = tier.State{Shard: i, TierState: ts}
		}
		return out
	})
	var out []tier.State
	for _, p := range per {
		out = append(out, p...)
	}
	return out
}

// FreezePartition freezes one partition on its owning shard (see
// cinderella.DurableTable.FreezePartition).
func (s *Sharded) FreezePartition(shard int, pid uint64) (bool, error) {
	if shard < 0 || shard >= len(s.shards) {
		return false, fmt.Errorf("shard: freeze on unknown shard %d of %d", shard, len(s.shards))
	}
	return s.shards[shard].FreezePartition(pid)
}

// ThawPartition thaws one frozen partition on its owning shard.
func (s *Sharded) ThawPartition(shard int, pid uint64) (bool, error) {
	if shard < 0 || shard >= len(s.shards) {
		return false, fmt.Errorf("shard: thaw on unknown shard %d of %d", shard, len(s.shards))
	}
	return s.shards[shard].ThawPartition(pid)
}

// TierCounters sums the cumulative freeze and thaw transition counts
// across shards.
func (s *Sharded) TierCounters() (freezes, thaws int64) {
	for _, d := range s.shards {
		f, t := d.TierCounters()
		freezes += f
		thaws += t
	}
	return freezes, thaws
}
