package shard

import (
	"math/rand"
	"sync"
	"testing"

	"cinderella/internal/obs"
)

// spanHeatKey / spanHeatTotals mirror the heat map's aggregation when
// folding retained span trees back into per-(shard, partition) cells.
type spanHeatKey struct {
	shard int32
	pid   uint64
}

type spanHeatTotals struct {
	queries, read, relevant, decoded, skipped int64
	bytesRead, bytesRelevant, bytesSkipped    int64
}

// TestTraceShardedHeatMatchesSpans races continuous writers against
// traced fan-out readers on a 4-shard store and requires the heat map to
// equal the fold of every retained root span's children, cell for cell.
// Each shard's parts are stamped with its shard id by the shard's own
// registry handle, so the comparison also pins the per-shard heat
// attribution. Run under -race this covers the serial child creation /
// parallel child fill contract of the fan-out tracer.
func TestTraceShardedHeatMatchesSpans(t *testing.T) {
	const readers, queriesEach, shards = 4, 25, 4
	total := readers * queriesEach
	reg := obs.New(obs.Options{TraceSampleEvery: 1, TraceRecentCap: total})
	cfg := testConfig()
	cfg.Obs = reg
	s, err := Open(t.TempDir(), Options{Shards: shards, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 600; i++ {
		if _, err := s.Insert(docFor(rng)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Insert(docFor(rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(100 + w))
	}

	var rd sync.WaitGroup
	for r := 0; r < readers; r++ {
		rd.Add(1)
		go func(seed int64) {
			defer rd.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesEach; i++ {
				a1 := "c0_a" + string(rune('0'+rng.Intn(10)))
				switch i % 3 {
				case 0:
					s.Query(a1, "c1_a3")
				case 1:
					s.QueryWithReport(a1)
				case 2:
					s.ScanAll()
				}
			}
		}(int64(r))
	}
	rd.Wait()
	close(stop)
	writers.Wait()

	spans := reg.RecentTraces()
	if len(spans) != total {
		t.Fatalf("recent ring holds %d spans, want all %d fan-out queries", len(spans), total)
	}

	fromSpans := map[spanHeatKey]*spanHeatTotals{}
	for _, sp := range spans {
		if sp.Shard != -1 {
			t.Fatalf("root span shard = %d, want -1", sp.Shard)
		}
		if len(sp.Parts) != 0 {
			t.Fatalf("sharded root carries parts directly: %+v", sp.Parts)
		}
		if len(sp.Children) != shards {
			t.Fatalf("root has %d children, want %d", len(sp.Children), shards)
		}
		var scanned, returned int64
		for i, c := range sp.Children {
			if c.Shard != int32(i) {
				t.Fatalf("children out of shard order: child %d has shard %d", i, c.Shard)
			}
			scanned += c.EntitiesScanned
			returned += c.EntitiesReturned
			for _, p := range c.Parts {
				if p.Shard != c.Shard {
					t.Fatalf("part on shard-%d child stamped shard %d", c.Shard, p.Shard)
				}
				k := spanHeatKey{shard: p.Shard, pid: p.Partition}
				tt := fromSpans[k]
				if tt == nil {
					tt = &spanHeatTotals{}
					fromSpans[k] = tt
				}
				tt.queries++
				tt.read += p.Scanned
				tt.relevant += p.Returned
				tt.decoded += p.Decoded
				tt.skipped += p.Skipped
				tt.bytesRead += p.BytesRead
				tt.bytesRelevant += p.BytesRelevant
				tt.bytesSkipped += p.BytesSkipped
			}
		}
		// The root's aggregates are the deterministic child merge.
		if sp.EntitiesScanned != scanned || sp.EntitiesReturned != returned {
			t.Fatalf("root sums %d/%d != child sums %d/%d",
				sp.EntitiesScanned, sp.EntitiesReturned, scanned, returned)
		}
	}

	heat := reg.HeatSnapshot()
	seen := map[spanHeatKey]bool{}
	shardsTouched := map[int32]bool{}
	for _, h := range heat {
		k := spanHeatKey{shard: h.Shard, pid: h.Partition}
		seen[k] = true
		shardsTouched[h.Shard] = true
		want := fromSpans[k]
		if want == nil {
			t.Errorf("heat has (shard %d, partition %d) but no span touched it", h.Shard, h.Partition)
			continue
		}
		if h.Queries != want.queries || h.RecordsRead != want.read ||
			h.RecordsRelevant != want.relevant || h.RecordsDecoded != want.decoded ||
			h.RecordsSkipped != want.skipped || h.BytesRead != want.bytesRead ||
			h.BytesRelevant != want.bytesRelevant || h.BytesSkipped != want.bytesSkipped {
			t.Errorf("(shard %d, partition %d): heat %+v != span fold %+v", h.Shard, h.Partition, h, *want)
		}
	}
	for k := range fromSpans {
		if !seen[k] {
			t.Errorf("spans touched (shard %d, partition %d) but heat has no row", k.shard, k.pid)
		}
	}
	// ScanAll fans out to every shard, so all four must appear in heat.
	for i := int32(0); i < shards; i++ {
		if !shardsTouched[i] {
			t.Errorf("shard %d never appeared in the heat map", i)
		}
	}
}
