package storage

import (
	"math/bits"
	"sort"
	"sync/atomic"

	"cinderella/internal/synopsis"
)

// The attribute-presence bitmap matrix: the record-synopsis sidecar
// transposed into attribute-major form.
//
// The sidecar answers "which attributes does record r have?" one record
// at a time — a pointer chase plus a word-AND per visited record, which
// makes the scan loop memory-bound on irrelevant records. The matrix
// answers the transposed question, "which records have attribute a?",
// as one []uint64 bitset per attribute over *slot positions* (a dense
// numbering of every slot in the page chain, in storage order). A
// query's predicate then compiles into a handful of word operations:
// AND the required attributes' bitsets (OR for Select's union shape),
// fold in the live bitset from the slot directory and the known bitset
// for nil-sidecar records, and every set bit of the result is a record
// that must be decoded — 64 records per machine word, no per-record
// pointer chases.
//
// Maintenance mirrors the sidecar exactly:
//
//   - InsertTagged sets the live bit (plus the known bit and one bit
//     per attribute when the synopsis is known) at the record's fresh
//     position.
//   - Delete copies the live bitset, clears the bit, and swaps the copy
//     in; the attribute bits go stale but are masked by live at
//     evaluation time.
//   - Vacuum and freeze rebuild the matrix from scratch with the page
//     chain.
//
// Concurrency follows the segment's append-only/copy-on-write
// discipline. A published view captures the matrix's slice headers and
// its position count; the only memory a writer later touches in place
// are word-array elements at *fresh* positions (>= the captured count),
// which readers mask off. Those in-place bit stores use atomic writes
// and the kernel uses atomic loads, so the overlap is well-defined (on
// the word, never on the captured bits). Everything that cannot be
// expressed as a fresh-position store — clearing a live bit, growing
// the word arrays, registering a new attribute — copies and swaps like
// a page delete does.

// bitmat is a segment's attribute-presence matrix. All word arrays
// (live, known, every attrs row) always have identical length, grown
// together, so the kernel indexes them uniformly.
type bitmat struct {
	ids      []int      // sorted attribute ids with a presence row; COW
	attrs    [][]uint64 // parallel to ids; outer COW, inner grown by COW
	live     []uint64   // live-record bitset (slot-directory tombstones folded in)
	known    []uint64   // positions inserted with a non-nil synopsis
	pageBase []int      // position of each page's slot 0
	slots    int        // total positions (sum of per-page slot counts)
}

// bmView is the immutable capture of a bitmat published inside a
// SegView (and held by ColdSegment after a freeze). It is a plain
// struct copy taken under the segment's exclusive lock.
type bmView struct {
	ids      []int
	attrs    [][]uint64
	live     []uint64
	known    []uint64
	pageBase []int
	slots    int
}

func (m *bitmat) view() bmView {
	return bmView{
		ids:      m.ids,
		attrs:    m.attrs,
		live:     m.live,
		known:    m.known,
		pageBase: m.pageBase,
		slots:    m.slots,
	}
}

// notePage registers a freshly appended page. Append may write one
// element past every captured header's length — memory no reader
// reaches — and is therefore safe without copying.
func (m *bitmat) notePage() {
	m.pageBase = append(m.pageBase, m.slots)
}

// setBit atomically sets bit pos in w. The writer is single (segment
// mutations are exclusive); the atomicity is for concurrent kernel
// loads of the same word.
func setBit(w []uint64, pos int) {
	i := pos >> 6
	atomic.StoreUint64(&w[i], atomic.LoadUint64(&w[i])|1<<(uint(pos)&63))
}

// ensure grows every word array to cover position pos. Growth copies
// and swaps (captured views keep the old arrays, whose length covers
// every captured position by construction).
func (m *bitmat) ensure(pos int) {
	need := pos>>6 + 1
	if need <= len(m.live) {
		return
	}
	words := len(m.live) * 2
	if words < need {
		words = need
	}
	if words < 4 {
		words = 4
	}
	grow := func(old []uint64) []uint64 {
		w := make([]uint64, words)
		copy(w, old)
		return w
	}
	m.live = grow(m.live)
	m.known = grow(m.known)
	nattrs := make([][]uint64, len(m.attrs))
	for i, row := range m.attrs {
		nattrs[i] = grow(row)
	}
	m.attrs = nattrs
}

// attrRow returns the presence row for attribute id, registering it
// (copy-on-write on the outer slices) on first sight.
func (m *bitmat) attrRow(id int) []uint64 {
	i := sort.SearchInts(m.ids, id)
	if i < len(m.ids) && m.ids[i] == id {
		return m.attrs[i]
	}
	nids := make([]int, len(m.ids)+1)
	nattrs := make([][]uint64, len(m.attrs)+1)
	copy(nids, m.ids[:i])
	copy(nattrs, m.attrs[:i])
	nids[i] = id
	nattrs[i] = make([]uint64, len(m.live))
	copy(nids[i+1:], m.ids[i:])
	copy(nattrs[i+1:], m.attrs[i:])
	m.ids = nids
	m.attrs = nattrs
	return nattrs[i]
}

// noteInsert records a fresh position: the record just appended at the
// end of the page chain, with its (possibly nil) synopsis.
func (m *bitmat) noteInsert(syn *synopsis.Set) {
	pos := m.slots
	m.ensure(pos)
	setBit(m.live, pos)
	if syn != nil {
		setBit(m.known, pos)
		syn.ForEach(func(id int) {
			setBit(m.attrRow(id), pos)
		})
	}
	m.slots++
}

// noteDelete clears the live bit for (page, slot) via copy-on-write.
// The attribute and known bits are left stale: live masks them out of
// every kernel evaluation.
func (m *bitmat) noteDelete(page, slot int) {
	if page >= len(m.pageBase) {
		return
	}
	pos := m.pageBase[page] + slot
	if pos >= m.slots {
		return
	}
	nlive := make([]uint64, len(m.live))
	copy(nlive, m.live)
	nlive[pos>>6] &^= 1 << (uint(pos) & 63)
	m.live = nlive
}

// BitmapProgram is a compiled scan predicate for the word-parallel
// kernel: the attribute ids whose presence rows are combined, and the
// combiner. Disjunction=true is Select's union shape ("has any of
// these"); false is SelectWhere's conjunction shape ("has all of
// these"). Records inserted without a synopsis (known bit clear) are
// always candidates — the caller decodes them to test, exactly like the
// per-record sidecar path treats a nil sidecar entry.
type BitmapProgram struct {
	Attrs       []int
	Disjunction bool
}

// BitmapCand is one candidate yielded by the kernel: a live record the
// program could not rule out, with its stored length. Known reports
// whether the record's synopsis was known to the matrix: a known
// candidate provably satisfies the program (presence rows are exact),
// so the caller can skip re-testing attribute presence after decoding;
// an unknown candidate must be decoded to test, like a nil sidecar
// entry on the per-record path.
type BitmapCand struct {
	ID    RecordID
	N     int32
	Known bool
}

// BitmapScratch holds the kernel's reusable per-scan buffers: the
// resolved attribute rows, the candidate bitset, and the candidate
// list. The table layer pools these so the steady-state scan loop does
// not allocate.
type BitmapScratch struct {
	sets  [][]uint64
	cand  []uint64
	cands []BitmapCand
}

// run evaluates prog over the matrix and returns the candidate list
// (aliasing sc's buffers, valid until sc is reused) plus the number of
// 64-bit word operations performed. lens maps a page to its slot-length
// lookup; it must report 0 for tombstoned slots.
func (bm *bmView) run(prog BitmapProgram, sc *BitmapScratch, lens func(page, slot int) int) (cands []BitmapCand, words int64) {
	nw := (bm.slots + 63) >> 6
	if nw == 0 {
		return sc.cands[:0], 0
	}

	// Resolve the program's attributes to presence rows. A nil entry is
	// an attribute this partition has never seen: identically zero.
	sets := sc.sets[:0]
	for _, id := range prog.Attrs {
		i := sort.SearchInts(bm.ids, id)
		if i < len(bm.ids) && bm.ids[i] == id {
			sets = append(sets, bm.attrs[i])
		} else {
			sets = append(sets, nil)
		}
	}
	sc.sets = sets

	// Phase 1: the candidate bitset, one word at a time —
	//
	//	cand = (combine(attr rows) | ~known) & live
	//
	// Word loads from the matrix are atomic: a concurrent insert may
	// store fresh bits into the final word, which the slots mask below
	// hides. words counts every 64-bit operation, the kernel's unit of
	// work for the scan_bitmap_words counter.
	if cap(sc.cand) < nw {
		sc.cand = make([]uint64, nw)
	}
	cand := sc.cand[:nw]
	for wi := 0; wi < nw; wi++ {
		var w uint64
		if prog.Disjunction {
			for _, s := range sets {
				if s != nil {
					w |= atomic.LoadUint64(&s[wi])
				}
			}
		} else {
			w = ^uint64(0)
			for _, s := range sets {
				if s == nil {
					w = 0
					break
				}
				w &= atomic.LoadUint64(&s[wi])
			}
		}
		w |= ^atomic.LoadUint64(&bm.known[wi])
		w &= atomic.LoadUint64(&bm.live[wi])
		cand[wi] = w
		words += int64(len(sets)) + 2
	}
	if tail := uint(bm.slots) & 63; tail != 0 {
		cand[nw-1] &= 1<<tail - 1
	}

	// Phase 2: walk the set bits in position order, translating each to
	// (page, slot) with a monotone cursor over pageBase.
	out := sc.cands[:0]
	pi := 0
	for wi, w := range cand {
		known := atomic.LoadUint64(&bm.known[wi])
		for w != 0 {
			b := bits.TrailingZeros64(w)
			bit := uint64(1) << uint(b)
			w &^= bit
			pos := wi<<6 + b
			for pi+1 < len(bm.pageBase) && pos >= bm.pageBase[pi+1] {
				pi++
			}
			slot := pos - bm.pageBase[pi]
			n := lens(pi, slot)
			if n == 0 {
				continue // tombstone; live bit should already mask these
			}
			out = append(out, BitmapCand{
				ID:    RecordID{Page: pi, Slot: slot},
				N:     int32(n),
				Known: known&bit != 0,
			})
		}
	}
	sc.cands = out
	return out, words
}

// ScanBitmap runs the word-parallel kernel over the view: it charges
// the partition's full visit — every page and every live record's
// bytes, identical to a completed Scan — in one bulk operation, then
// returns the candidate records the program could not rule out. The
// caller decodes candidates via Record; everything else was skipped at
// 64 records per word op. ok is false when the view predates the matrix
// (e.g. a decoded cold image), in which case nothing is charged and the
// caller must fall back to Scan.
//
// The returned slice aliases sc's buffers and is valid until sc's next
// use. words is the number of 64-bit word operations performed.
func (v *SegView) ScanBitmap(prog BitmapProgram, sc *BitmapScratch) (cands []BitmapCand, words int64, ok bool) {
	if v.bm.live == nil && v.live > 0 {
		return nil, 0, false
	}
	for pi := range v.pages {
		if v.cache != nil {
			v.cache.touch(v.cacheID, pi)
		}
	}
	v.stats.addRead(int64(len(v.pages)), v.bytes, int64(v.live))
	cands, words = v.bm.run(prog, sc, func(page, slot int) int {
		_, n := v.pages[page].slot(slot)
		return n
	})
	return cands, words, true
}

// ScanBitmap is ColdView's kernel entry point. The ordinary charges are
// identical to the hot path; candidate record lengths come from the hot
// per-slot length table, so a frozen partition whose candidates all
// fall in a few blocks only ever inflates those blocks (Record charges
// the cold counters on inflation, exactly like the per-record path).
// ok is false when the segment lacks the hot matrix or length table
// (a decoded cold image); nothing is charged then.
func (v ColdView) ScanBitmap(prog BitmapProgram, sc *BitmapScratch) (cands []BitmapCand, words int64, ok bool) {
	c := v.c
	if (c.bm.live == nil && c.live > 0) || (c.lens == nil && c.numPages > 0) {
		return nil, 0, false
	}
	for pi := 0; pi < c.numPages; pi++ {
		if c.cache != nil {
			c.cache.touch(c.cacheID, pi)
		}
	}
	c.stats.addRead(int64(c.numPages), c.bytes, int64(c.live))
	bm := c.bm.view()
	cands, words = bm.run(prog, sc, func(page, slot int) int {
		return int(c.lens[page][slot])
	})
	return cands, words, true
}
