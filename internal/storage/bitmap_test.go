package storage

import (
	"fmt"
	"testing"

	"cinderella/internal/synopsis"
)

// sidecarCands is the per-record oracle: the candidate set the sidecar
// scan would decode for prog — every live record whose synopsis is
// unknown or satisfies the program's combiner.
func sidecarCands(v interface {
	Scan(fn func(id RecordID, n int, syn *synopsis.Set) bool)
}, prog BitmapProgram) []BitmapCand {
	var out []BitmapCand
	q := synopsis.Of(prog.Attrs...)
	v.Scan(func(id RecordID, n int, syn *synopsis.Set) bool {
		keep := syn == nil
		if !keep {
			if prog.Disjunction {
				keep = synopsis.Intersects(syn, q)
			} else {
				keep = synopsis.Subset(q, syn)
			}
		}
		if keep {
			out = append(out, BitmapCand{ID: id, N: int32(n), Known: syn != nil})
		}
		return true
	})
	return out
}

func candsEqual(a, b []BitmapCand) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bitmapSeg builds a segment with a mixed population: several pages,
// tagged and untagged records, a variety of attribute sets, and a
// sprinkling of deletes.
func bitmapSeg(t *testing.T, n int) *Segment {
	t.Helper()
	seg := NewSegment(nil)
	for i := 0; i < n; i++ {
		b := []byte(fmt.Sprintf("record-%04d-%s", i, "padding-padding-padding-padding"))
		var err error
		if i%11 == 10 {
			_, err = seg.Insert(b) // untagged: unknown, always a candidate
		} else {
			_, err = seg.InsertTagged(b, synopsis.Of(i%7, 7+i%5, 12+i%3))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// Tombstone a spread of records.
	for i := 0; i < n; i += 13 {
		pi, slot := 0, i
		for slot >= seg.pages[pi].NumSlots() {
			slot -= seg.pages[pi].NumSlots()
			pi++
		}
		if err := seg.Delete(RecordID{Page: pi, Slot: slot}); err != nil {
			t.Fatal(err)
		}
	}
	return seg
}

var bitmapProgs = []BitmapProgram{
	{Attrs: []int{1}, Disjunction: true},
	{Attrs: []int{0, 3, 9}, Disjunction: true},
	{Attrs: []int{12}, Disjunction: false},
	{Attrs: []int{2, 8}, Disjunction: false},
	{Attrs: []int{2, 8, 13}, Disjunction: false},
	{Attrs: []int{99}, Disjunction: true},  // never-seen attribute
	{Attrs: []int{99}, Disjunction: false}, // conjunction over a never-seen attribute
	{Attrs: nil, Disjunction: true},        // empty program: only unknowns survive
}

// TestBitmapKernelMatchesSidecar is the storage-level equivalence
// property: for disjunctive and conjunctive programs alike, the kernel's
// candidate list is exactly the records the per-record sidecar scan
// would decode, in the same storage order, across inserts, deletes,
// vacuum, and freeze/thaw cycles.
func TestBitmapKernelMatchesSidecar(t *testing.T) {
	seg := bitmapSeg(t, 700)

	check := func(stage string) {
		t.Helper()
		v := seg.View()
		var sc BitmapScratch
		for _, prog := range bitmapProgs {
			got, words, ok := v.ScanBitmap(prog, &sc)
			if !ok {
				t.Fatalf("%s: ScanBitmap not ok for %+v", stage, prog)
			}
			if words == 0 && v.NumRecords() > 0 {
				t.Fatalf("%s: kernel reported zero word ops over %d records", stage, v.NumRecords())
			}
			want := sidecarCands(&v, prog)
			if !candsEqual(got, want) {
				t.Fatalf("%s: prog %+v: kernel yielded %d candidates, sidecar %d",
					stage, prog, len(got), len(want))
			}
			// Candidate payloads must resolve.
			for _, c := range got {
				if rec := v.Record(c.ID); len(rec) != int(c.N) {
					t.Fatalf("%s: candidate %v length %d, stored %d", stage, c.ID, c.N, len(rec))
				}
			}
		}
	}

	check("initial")
	seg.Vacuum()
	check("after vacuum")

	cold := FreezeSegment(seg)
	cv := cold.View()
	var sc BitmapScratch
	for _, prog := range bitmapProgs {
		got, _, ok := cv.ScanBitmap(prog, &sc)
		if !ok {
			t.Fatalf("cold: ScanBitmap not ok for %+v", prog)
		}
		want := sidecarCands(cv, prog)
		if !candsEqual(got, want) {
			t.Fatalf("cold: prog %+v: kernel %d candidates, sidecar %d", prog, len(got), len(want))
		}
	}

	thawed := cold.Thaw()
	tv := thawed.View()
	for _, prog := range bitmapProgs {
		got, _, ok := tv.ScanBitmap(prog, &sc)
		if !ok {
			t.Fatalf("thawed: ScanBitmap not ok for %+v", prog)
		}
		if want := sidecarCands(&tv, prog); !candsEqual(got, want) {
			t.Fatalf("thawed: prog %+v: kernel %d candidates, sidecar %d", prog, len(got), len(want))
		}
	}
}

// TestBitmapChargesMatchScan pins the charging contract: a completed
// per-record Scan and one ScanBitmap call charge identical Stats deltas
// (pages, bytes, records) against the same view.
func TestBitmapChargesMatchScan(t *testing.T) {
	stats := &Stats{}
	seg := NewSegment(stats)
	for i := 0; i < 400; i++ {
		syn := synopsis.Of(i % 5)
		if _, err := seg.InsertTagged([]byte(fmt.Sprintf("rec-%04d-%s", i, "pad-pad-pad")), syn); err != nil {
			t.Fatal(err)
		}
	}
	v := seg.View()

	stats.Reset()
	v.Scan(func(RecordID, int, *synopsis.Set) bool { return true })
	sp, _, sb, _, sr := stats.Snapshot()

	stats.Reset()
	var sc BitmapScratch
	if _, _, ok := v.ScanBitmap(BitmapProgram{Attrs: []int{1}, Disjunction: true}, &sc); !ok {
		t.Fatal("ScanBitmap not ok")
	}
	bp, _, bb, _, br := stats.Snapshot()

	if sp != bp || sb != bb || sr != br {
		t.Fatalf("charges differ: scan (pages=%d bytes=%d recs=%d), bitmap (pages=%d bytes=%d recs=%d)",
			sp, sb, sr, bp, bb, br)
	}
}

// TestBitmapViewStableUnderMutation captures a view, keeps mutating the
// segment, and verifies the kernel still yields exactly the captured
// candidate set — the bitmap matrix obeys the same snapshot contract as
// the pages and the sidecar.
func TestBitmapViewStableUnderMutation(t *testing.T) {
	seg := bitmapSeg(t, 500)
	v := seg.View()
	prog := BitmapProgram{Attrs: []int{2, 8}, Disjunction: false}
	var sc BitmapScratch
	before, _, ok := v.ScanBitmap(prog, &sc)
	if !ok {
		t.Fatal("ScanBitmap not ok")
	}
	want := append([]BitmapCand(nil), before...)

	// Churn: deletes, fresh inserts (growing the word arrays and adding
	// pages), a new attribute, then a vacuum.
	for i := 0; i < 200; i += 7 {
		pi, slot := 0, i
		for pi < len(seg.pages) && slot >= seg.pages[pi].NumSlots() {
			slot -= seg.pages[pi].NumSlots()
			pi++
		}
		_ = seg.Delete(RecordID{Page: pi, Slot: slot})
	}
	for i := 0; i < 3000; i++ {
		if _, err := seg.InsertTagged([]byte(fmt.Sprintf("late-%05d-%s", i, "padding")), synopsis.Of(500+i%9)); err != nil {
			t.Fatal(err)
		}
	}
	seg.Vacuum()

	got, _, ok := v.ScanBitmap(prog, &sc)
	if !ok {
		t.Fatal("ScanBitmap not ok after churn")
	}
	if !candsEqual(got, want) {
		t.Fatalf("captured view drifted: %d candidates, want %d", len(got), len(want))
	}
}

// TestBitmapDecodedColdImageFallsBack pins the fallback contract: a cold
// segment rebuilt from its wire encoding has neither the matrix nor the
// length table, so ScanBitmap must decline (charging nothing) and leave
// the caller on the per-record path.
func TestBitmapDecodedColdImageFallsBack(t *testing.T) {
	seg := bitmapSeg(t, 300)
	cold := FreezeSegment(seg)
	stats := &Stats{}
	dec, err := DecodeColdSegment(cold.Encode(), stats)
	if err != nil {
		t.Fatal(err)
	}
	var sc BitmapScratch
	_, _, ok := dec.View().ScanBitmap(BitmapProgram{Attrs: []int{1}, Disjunction: true}, &sc)
	if ok {
		t.Fatal("decoded cold image accepted ScanBitmap; want fallback")
	}
	if p, b, r := statsTriple(stats); p != 0 || b != 0 || r != 0 {
		t.Fatalf("declined ScanBitmap charged (pages=%d bytes=%d recs=%d); want nothing", p, b, r)
	}
}

func statsTriple(s *Stats) (int64, int64, int64) {
	p, _, b, _, r := s.Snapshot()
	return p, b, r
}

// TestBitmapColdPruneReadsNoColdBytes is the cold-tier payoff: a frozen
// partition scanned with a program matching nothing inflates no blocks
// — the hot matrix and length table answer the scan with zero cold
// bytes charged.
func TestBitmapColdPruneReadsNoColdBytes(t *testing.T) {
	stats := &Stats{}
	seg := NewSegment(stats)
	for i := 0; i < 400; i++ {
		if _, err := seg.InsertTagged([]byte(fmt.Sprintf("rec-%04d-%s", i, "pad-pad-pad")), synopsis.Of(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	cold := FreezeSegment(seg)
	stats.Reset()

	var sc BitmapScratch
	cands, _, ok := cold.View().ScanBitmap(BitmapProgram{Attrs: []int{42}, Disjunction: true}, &sc)
	if !ok {
		t.Fatal("ScanBitmap not ok on frozen segment")
	}
	if len(cands) != 0 {
		t.Fatalf("program over an absent attribute yielded %d candidates", len(cands))
	}
	if cp, cb := stats.ColdSnapshot(); cp != 0 || cb != 0 {
		t.Fatalf("pruned frozen scan inflated cold data: pages=%d bytes=%d; want 0", cp, cb)
	}
	// The ordinary visit charge still stands (simulated I/O is never
	// skipped), matching the hot path.
	if _, _, b, _, r := stats.Snapshot(); b != cold.LiveBytes() || r != int64(cold.NumRecords()) {
		t.Fatalf("frozen bitmap scan charged bytes=%d recs=%d, want %d/%d",
			b, r, cold.LiveBytes(), cold.NumRecords())
	}
}
