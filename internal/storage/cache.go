package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// BufferCache simulates a bounded page cache shared by many segments —
// the "caching" aspect of physical design named in the paper's future
// work. Page accesses during scans and point reads are routed through
// the cache; the hit/miss counters quantify how much a partitioning's
// access locality is worth: a selective workload over a Cinderella
// partitioning touches few partitions repeatedly and keeps their pages
// resident, while the same workload over a universal table floods the
// cache with full scans.
//
// Two properties matter at scale and shape the implementation:
//
//   - The cache is touched once per page by every parallel partition
//     scan, so a single mutex serializes the whole read path. Large
//     caches are split 16 ways by a hash of the page key; each shard
//     has its own lock, lists, and counters. Tiny caches (below one
//     page per shard region) stay single-sharded so unit-level
//     eviction order remains exact.
//
//   - Replacement is segmented LRU, not plain LRU: a missed page
//     enters a probationary list and is only promoted to the
//     protected list on a re-reference. One sequential scan therefore
//     churns probation and leaves the re-referenced hot set resident,
//     where plain LRU would admit every scanned page straight to MRU
//     and evict the hot set (scan flooding).
type BufferCache struct {
	capacity int
	shards   []cacheShard
}

type pageKey struct {
	seg  uint64
	page int
}

// slruEntry is a resident page; prot tells which list it is on.
type slruEntry struct {
	key  pageKey
	prot bool
}

// cacheShard is one independently locked slice of the cache.
type cacheShard struct {
	mu        sync.Mutex
	capacity  int
	protCap   int        // max protected-list length (~4/5 of capacity)
	probation *list.List // front = most recent; values are *slruEntry
	protected *list.List
	pages     map[pageKey]*list.Element
	hits      int64
	misses    int64
}

// shardThreshold is the capacity below which the cache stays
// single-sharded: splitting a tiny cache 16 ways would give shards of
// zero or one page and make eviction order depend on key hashes.
const shardThreshold = 64

// NewBufferCache returns a cache holding up to capacity pages.
func NewBufferCache(capacity int) *BufferCache {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	if capacity >= shardThreshold {
		n = 16
	}
	c := &BufferCache{capacity: capacity, shards: make([]cacheShard, n)}
	for i := range c.shards {
		cap := capacity / n
		if i < capacity%n {
			cap++
		}
		s := &c.shards[i]
		s.capacity = cap
		if s.protCap = cap * 4 / 5; s.protCap < 1 {
			s.protCap = 1
		}
		s.probation = list.New()
		s.protected = list.New()
		s.pages = make(map[pageKey]*list.Element)
	}
	return c
}

// shard maps a page key onto its shard by a splitmix64-style finalizer,
// so consecutive pages of one segment spread across all locks.
func (c *BufferCache) shard(k pageKey) *cacheShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	x := uint64(k.page)*0x9e3779b97f4a7c15 + k.seg
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return &c.shards[x&15]
}

// touch records an access to (seg, page), returning whether it was a
// hit. Misses are admitted on probation; a hit on a probationary page
// promotes it to the protected list (demoting the protected LRU page
// back to probation when that list is full), so only re-referenced
// pages can displace the hot set.
func (c *BufferCache) touch(seg uint64, page int) bool {
	k := pageKey{seg: seg, page: page}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.pages[k]; ok {
		s.hits++
		e := el.Value.(*slruEntry)
		if e.prot {
			s.protected.MoveToFront(el)
			return true
		}
		// Second reference: promote out of probation.
		s.probation.Remove(el)
		e.prot = true
		s.pages[k] = s.protected.PushFront(e)
		if s.protected.Len() > s.protCap {
			demoted := s.protected.Back()
			s.protected.Remove(demoted)
			d := demoted.Value.(*slruEntry)
			d.prot = false
			s.pages[d.key] = s.probation.PushFront(d)
		}
		return true
	}
	s.misses++
	s.pages[k] = s.probation.PushFront(&slruEntry{key: k})
	if s.probation.Len()+s.protected.Len() > s.capacity {
		victims := s.probation
		if victims.Len() == 0 {
			victims = s.protected
		}
		victim := victims.Back()
		victims.Remove(victim)
		delete(s.pages, victim.Value.(*slruEntry).key)
	}
	return false
}

// evictSegment drops all cached pages of a segment (segment truncated,
// partition dropped, or partition frozen to the cold tier).
func (c *BufferCache) evictSegment(seg uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.pages {
			if k.seg != seg {
				continue
			}
			if el.Value.(*slruEntry).prot {
				s.protected.Remove(el)
			} else {
				s.probation.Remove(el)
			}
			delete(s.pages, k)
		}
		s.mu.Unlock()
	}
}

// Stats returns cumulative hit and miss counts summed over all shards.
func (c *BufferCache) Stats() (hits, misses int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Reset zeroes the counters (the cached set is kept).
func (c *BufferCache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.hits, s.misses = 0, 0
		s.mu.Unlock()
	}
}

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (c *BufferCache) HitRatio() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of resident pages.
func (c *BufferCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.probation.Len() + s.protected.Len()
		s.mu.Unlock()
	}
	return n
}

// segmentIDs issues unique segment identities for cache keys.
var segmentIDs atomic.Uint64

// AttachCache routes this segment's page accesses through the cache.
// Attach before use; pages already resident elsewhere are unaffected.
func (s *Segment) AttachCache(c *BufferCache) {
	if s.cacheID == 0 {
		s.cacheID = segmentIDs.Add(1)
	}
	s.cache = c
}

// touchPage notifies the cache (if any) of a page access.
func (s *Segment) touchPage(page int) {
	if s.cache != nil {
		s.cache.touch(s.cacheID, page)
	}
}

// DropFromCache evicts all of this segment's pages from the cache.
func (s *Segment) DropFromCache() {
	if s.cache != nil {
		s.cache.evictSegment(s.cacheID)
	}
}
