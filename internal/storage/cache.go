package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// BufferCache simulates a bounded page cache shared by many segments,
// with LRU replacement — the "caching" aspect of physical design named in
// the paper's future work. Page accesses during scans and point reads are
// routed through the cache; the hit/miss counters quantify how much a
// partitioning's access locality is worth: a selective workload over a
// Cinderella partitioning touches few partitions repeatedly and keeps
// their pages resident, while the same workload over a universal table
// floods the cache with full scans.
type BufferCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are pageKey
	pages    map[pageKey]*list.Element
	hits     int64
	misses   int64
}

type pageKey struct {
	seg  uint64
	page int
}

// NewBufferCache returns a cache holding up to capacity pages.
func NewBufferCache(capacity int) *BufferCache {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferCache{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[pageKey]*list.Element),
	}
}

// touch records an access to (seg, page), returning whether it was a hit.
func (c *BufferCache) touch(seg uint64, page int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := pageKey{seg: seg, page: page}
	if el, ok := c.pages[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	el := c.lru.PushFront(k)
	c.pages[k] = el
	if c.lru.Len() > c.capacity {
		victim := c.lru.Back()
		c.lru.Remove(victim)
		delete(c.pages, victim.Value.(pageKey))
	}
	return false
}

// evictSegment drops all cached pages of a segment (segment truncated or
// partition dropped).
func (c *BufferCache) evictSegment(seg uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(pageKey).seg == seg {
			c.lru.Remove(el)
			delete(c.pages, el.Value.(pageKey))
		}
		el = next
	}
}

// Stats returns cumulative hit and miss counts.
func (c *BufferCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset zeroes the counters (the cached set is kept).
func (c *BufferCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses = 0, 0
}

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (c *BufferCache) HitRatio() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of resident pages.
func (c *BufferCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// segmentIDs issues unique segment identities for cache keys.
var segmentIDs atomic.Uint64

// AttachCache routes this segment's page accesses through the cache.
// Attach before use; pages already resident elsewhere are unaffected.
func (s *Segment) AttachCache(c *BufferCache) {
	if s.cacheID == 0 {
		s.cacheID = segmentIDs.Add(1)
	}
	s.cache = c
}

// touchPage notifies the cache (if any) of a page access.
func (s *Segment) touchPage(page int) {
	if s.cache != nil {
		s.cache.touch(s.cacheID, page)
	}
}

// DropFromCache evicts all of this segment's pages from the cache.
func (s *Segment) DropFromCache() {
	if s.cache != nil {
		s.cache.evictSegment(s.cacheID)
	}
}
