package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheScanResistance interleaves a point-read working set with a
// full sequential scan several times its size. Under plain LRU the scan
// admits every page straight to MRU and evicts the hot set; under SLRU
// the scanned pages churn probation only, so the hot set must still be
// resident — and hit — after the scan.
func TestCacheScanResistance(t *testing.T) {
	const capacity = 256
	c := NewBufferCache(capacity)

	// Warm a small hot set with repeated point reads: the second touch
	// of each page promotes it to the protected list.
	const hotSet = 32
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < hotSet; p++ {
			c.touch(1, p)
		}
	}

	// One full scan of a cold segment 4x the cache size, interleaved
	// with occasional hot point reads (as parallel queries would).
	for p := 0; p < 4*capacity; p++ {
		c.touch(2, p)
		if p%64 == 0 {
			c.touch(1, p%hotSet)
		}
	}

	// Every hot page must have survived the scan.
	c.Reset()
	for p := 0; p < hotSet; p++ {
		if !c.touch(1, p) {
			t.Fatalf("hot page %d evicted by a sequential scan", p)
		}
	}
	if h, m := c.Stats(); h != hotSet || m != 0 {
		t.Fatalf("post-scan hot set stats = %d/%d, want %d/0", h, m, hotSet)
	}
}

// TestCacheScanThenRepointKeepsProbationBounded drives only misses and
// checks the cache never exceeds its capacity, whichever list pages
// land on.
func TestCacheScanThenRepointKeepsProbationBounded(t *testing.T) {
	c := NewBufferCache(128)
	for p := 0; p < 10_000; p++ {
		c.touch(3, p)
	}
	if c.Len() > 128 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}

// singleLockCache is the pre-sharding BufferCache: one mutex, one plain
// LRU list. It exists only as the "before" half of
// BenchmarkBufferCacheParallel.
type singleLockCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List
	pages    map[pageKey]*list.Element
	hits     int64
	misses   int64
}

func newSingleLockCache(capacity int) *singleLockCache {
	return &singleLockCache{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[pageKey]*list.Element),
	}
}

func (c *singleLockCache) touch(seg uint64, page int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := pageKey{seg: seg, page: page}
	if el, ok := c.pages[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	c.pages[k] = c.lru.PushFront(k)
	if c.lru.Len() > c.capacity {
		victim := c.lru.Back()
		c.lru.Remove(victim)
		delete(c.pages, victim.Value.(pageKey))
	}
	return false
}

// BenchmarkBufferCacheParallel measures page-touch throughput with all
// GOMAXPROCS goroutines hammering the cache, as parallel partition
// scans do. The "single" case is the historical one-mutex LRU; the
// "sharded" case is the live 16-way SLRU.
func BenchmarkBufferCacheParallel(b *testing.B) {
	const capacity = 4096
	const span = 8192 // touched key space: half resident, steady churn
	b.Run("single", func(b *testing.B) {
		c := newSingleLockCache(capacity)
		var seq atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			s := seq.Add(1)
			p := 0
			for pb.Next() {
				c.touch(s%4, p%span)
				p += 7
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		c := NewBufferCache(capacity)
		var seq atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			s := seq.Add(1)
			p := 0
			for pb.Next() {
				c.touch(s%4, p%span)
				p += 7
			}
		})
	})
}
