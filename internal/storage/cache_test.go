package storage

import (
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewBufferCache(2)
	if c.touch(1, 0) { // first access: miss
		t.Fatal("first access should miss")
	}
	if !c.touch(1, 0) { // second access: hit
		t.Fatal("repeat access should hit")
	}
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d/%d", h, m)
	}
	if c.HitRatio() != 0.5 {
		t.Fatalf("ratio = %v", c.HitRatio())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewBufferCache(2)
	c.touch(1, 0) // miss, cache [0]
	c.touch(1, 1) // miss, cache [1,0]
	c.touch(1, 0) // hit,  cache [0,1]
	c.touch(1, 2) // miss, evicts 1 -> cache [2,0]
	if !c.touch(1, 0) {
		t.Fatal("page 0 should still be resident")
	}
	if c.touch(1, 1) {
		t.Fatal("page 1 should have been evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheCapacityClamp(t *testing.T) {
	c := NewBufferCache(0)
	c.touch(1, 0)
	c.touch(1, 1)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheSegmentsIsolated(t *testing.T) {
	c := NewBufferCache(10)
	c.touch(1, 0)
	if c.touch(2, 0) {
		t.Fatal("page 0 of another segment should miss")
	}
}

func TestCacheEvictSegment(t *testing.T) {
	c := NewBufferCache(10)
	c.touch(1, 0)
	c.touch(1, 1)
	c.touch(2, 0)
	c.evictSegment(1)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after evictSegment", c.Len())
	}
	if c.touch(1, 0) {
		t.Fatal("evicted page hit")
	}
	if !c.touch(2, 0) {
		t.Fatal("other segment's page evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewBufferCache(4)
	c.touch(1, 0)
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("Reset did not zero counters")
	}
	// Residency survives Reset.
	if !c.touch(1, 0) {
		t.Fatal("Reset evicted pages")
	}
	if c.HitRatio() != 1 {
		t.Fatalf("ratio = %v", c.HitRatio())
	}
}

func TestSegmentCacheIntegration(t *testing.T) {
	c := NewBufferCache(100)
	seg := NewSegment(nil)
	seg.AttachCache(c)
	rec := make([]byte, 3000)
	var ids []RecordID
	for i := 0; i < 6; i++ { // 2 per page -> 3 pages
		id, err := seg.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	seg.Scan(func(RecordID, []byte) bool { return true })
	_, m := c.Stats()
	if m != 3 {
		t.Fatalf("cold scan misses = %d, want 3", m)
	}
	seg.Scan(func(RecordID, []byte) bool { return true })
	h, _ := c.Stats()
	if h != 3 {
		t.Fatalf("warm scan hits = %d, want 3", h)
	}
	// Point reads touch the cache too.
	c.Reset()
	if _, err := seg.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.Stats(); h != 1 {
		t.Fatalf("point read hits = %d", h)
	}
}

func TestSegmentWithoutCache(t *testing.T) {
	seg := NewSegment(nil)
	seg.Insert([]byte("x"))
	// Must not panic without a cache attached.
	seg.Scan(func(RecordID, []byte) bool { return true })
	seg.DropFromCache()
}

func TestTwoSegmentsShareCache(t *testing.T) {
	c := NewBufferCache(1)
	a, b := NewSegment(nil), NewSegment(nil)
	a.AttachCache(c)
	b.AttachCache(c)
	a.Insert([]byte("a"))
	b.Insert([]byte("b"))
	a.Scan(func(RecordID, []byte) bool { return true }) // miss, resident: a0
	b.Scan(func(RecordID, []byte) bool { return true }) // miss, evicts a0
	a.Scan(func(RecordID, []byte) bool { return true }) // miss again
	h, m := c.Stats()
	if h != 0 || m != 3 {
		t.Fatalf("thrash stats = %d/%d, want 0/3", h, m)
	}
}
