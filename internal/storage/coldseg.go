package storage

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"cinderella/internal/synopsis"
)

// The cold tier: a frozen partition's pages, compressed.
//
// A ColdSegment is the read-only replica of a vacuumed Segment. The 8 KiB
// page images are concatenated into fixed-size runs ("blocks"), each run
// deflate-compressed and checksummed independently, so a point read or a
// scan decompresses only the blocks it touches. The record-synopsis
// sidecar and the live counters stay hot (uncompressed, in memory):
// partition pruning and the per-record decode skip keep working without
// touching a single cold byte.
//
// Reads that survive pruning go through the block-decompression
// admission path: each visited page is touched in the shared BufferCache
// under the cold segment's own cache identity, and every block
// decompression is charged to the Stats cold-read counters (pages +
// raw bytes) on top of the ordinary per-page/per-record read charges —
// Definition-1 EFFICIENCY stays measurable across tiers, and the
// decompression count is the tiering manager's reheat signal.
//
// Durability: Encode serializes the cold segment to a checksummed file
// image (written by the durable layer via tmp+rename, the shard-manifest
// commit discipline). DecodeColdSegment refuses torn, truncated, or
// bit-flipped images with ErrColdCorrupt — the write-ahead log remains
// the row source of truth, so a verified-but-stale file is simply
// rebuilt from the replayed rows, while a corrupt file is surfaced to
// the operator instead of being papered over.

// ErrColdCorrupt is returned when a cold segment file fails its
// structural or checksum verification. It is the cold tier's analogue of
// the shard manifest's torn-file refusal.
var ErrColdCorrupt = errors.New("storage: cold segment file is torn or corrupt")

// coldMagic guards the file format; the trailing byte is the version.
var coldMagic = [8]byte{'C', 'I', 'N', 'D', 'C', 'O', 'L', '1'}

// coldBlockPages is the number of page images per compression block
// (128 KiB raw per block).
const coldBlockPages = 16

// coldHeaderSize is magic(8) + numPages(4) + pagesPerBlock(4) +
// numBlocks(4) + live(4) + liveBytes(8) + headerCRC(4).
const coldHeaderSize = 36

// coldResidentBlocks bounds the per-segment decompressed-block cache: a
// scan in flight keeps its current block (and Record lookups into it)
// hot without re-inflating per record, while the steady-state resident
// cost of a cold segment stays two blocks.
const coldResidentBlocks = 2

// coldBlock is one compressed run of page images.
type coldBlock struct {
	data      []byte // deflate-compressed concatenation of raw pages
	crc       uint32 // crc32 (IEEE) of data
	firstPage int
	numPages  int
}

// ColdSegment is a frozen partition's compressed, read-only page store
// plus its hot metadata. Safe for concurrent readers; it is never
// mutated after construction (mutations thaw the partition first).
type ColdSegment struct {
	blocks  []coldBlock
	sidecar [][]*synopsis.Set // hot: one row per page, nil after Decode
	// bm is the attribute-presence bitmap matrix carried over from the
	// frozen segment, and lens the per-slot stored lengths — both hot,
	// so the bitmap kernel and the sidecar scan can skip frozen records
	// without inflating a single cold block. Zero/nil after Decode (the
	// reopen path re-freezes from replayed rows, rebuilding both).
	bm        bitmat
	lens      [][]uint16
	numPages  int
	live      int
	bytes     int64 // live payload bytes (raw)
	compBytes int64 // total compressed block bytes
	stats     *Stats
	cache     *BufferCache
	cacheID   uint64

	// Decompressed-block cache (tiny LRU) and the reheat signal.
	dmu       sync.Mutex
	resident  map[int][]*Page
	order     []int        // resident block ids, oldest first
	coldReads atomic.Int64 // block decompressions since freeze
}

// FreezeSegment compresses a segment's page chain into a ColdSegment,
// retaining the sidecar and live counters hot. The caller should have
// vacuumed the segment first (freeze compacts by construction at the
// table layer) and must hold exclusive access. The compression is
// charged to the write counters like a physical copy to the cold tier.
func FreezeSegment(s *Segment) *ColdSegment {
	c := &ColdSegment{
		sidecar:  make([][]*synopsis.Set, len(s.sidecar)),
		bm:       s.bm,
		lens:     make([][]uint16, len(s.pages)),
		numPages: len(s.pages),
		live:     s.live,
		bytes:    s.bytes,
		stats:    s.stats,
		cache:    s.cache,
		cacheID:  segmentIDs.Add(1),
		resident: make(map[int][]*Page),
	}
	copy(c.sidecar, s.sidecar)
	for pi, p := range s.pages {
		ln := make([]uint16, p.NumSlots())
		for slot := range ln {
			_, n := p.slot(slot)
			ln[slot] = uint16(n)
		}
		c.lens[pi] = ln
	}
	for first := 0; first < len(s.pages); first += coldBlockPages {
		n := len(s.pages) - first
		if n > coldBlockPages {
			n = coldBlockPages
		}
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			panic("storage: flate writer: " + err.Error())
		}
		for _, p := range s.pages[first : first+n] {
			if _, err := w.Write(p.buf[:]); err != nil {
				panic("storage: freeze compress: " + err.Error())
			}
		}
		if err := w.Close(); err != nil {
			panic("storage: freeze compress: " + err.Error())
		}
		data := append([]byte(nil), buf.Bytes()...)
		c.blocks = append(c.blocks, coldBlock{
			data:      data,
			crc:       crc32.ChecksumIEEE(data),
			firstPage: first,
			numPages:  n,
		})
		c.compBytes += int64(len(data))
	}
	c.stats.addWrite(int64(c.numPages), c.compBytes)
	return c
}

// AttachCache routes the cold segment's page touches through the shared
// buffer cache (the admission path for decompressed cold pages).
func (c *ColdSegment) AttachCache(cache *BufferCache) { c.cache = cache }

// NumPages returns the number of frozen page images.
func (c *ColdSegment) NumPages() int { return c.numPages }

// NumRecords returns the live record count at freeze time.
func (c *ColdSegment) NumRecords() int { return c.live }

// LiveBytes returns the raw live payload bytes at freeze time.
func (c *ColdSegment) LiveBytes() int64 { return c.bytes }

// RawBytes returns the uncompressed page footprint.
func (c *ColdSegment) RawBytes() int64 { return int64(c.numPages) * PageSize }

// CompressedBytes returns the resident compressed footprint.
func (c *ColdSegment) CompressedBytes() int64 { return c.compBytes }

// ColdReads returns the number of block decompressions since freeze —
// the tiering manager's reheat signal.
func (c *ColdSegment) ColdReads() int64 { return c.coldReads.Load() }

// Synopsis returns the hot sidecar entry for id (nil when unknown).
func (c *ColdSegment) Synopsis(id RecordID) *synopsis.Set {
	if id.Page < 0 || id.Page >= len(c.sidecar) {
		return nil
	}
	row := c.sidecar[id.Page]
	if id.Slot < 0 || id.Slot >= len(row) {
		return nil
	}
	return row[id.Slot]
}

// page returns the decompressed page pi, inflating its block on demand.
// Decompressions charge the cold-read counters; the returned page is
// immutable and stays valid after eviction from the resident cache.
func (c *ColdSegment) page(pi int) *Page {
	bi := pi / coldBlockPages
	b := &c.blocks[bi]
	c.dmu.Lock()
	pages, ok := c.resident[bi]
	if !ok {
		pages = c.inflate(b)
		c.resident[bi] = pages
		c.order = append(c.order, bi)
		if len(c.order) > coldResidentBlocks {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.resident, evict)
		}
		c.coldReads.Add(1)
		c.stats.addColdRead(int64(b.numPages), int64(b.numPages)*PageSize)
	}
	c.dmu.Unlock()
	return pages[pi-b.firstPage]
}

// inflate decompresses one block into fresh pages. The block's checksum
// was verified at construction, so a decompression failure here is a
// program bug, not an I/O condition.
func (c *ColdSegment) inflate(b *coldBlock) []*Page {
	r := flate.NewReader(bytes.NewReader(b.data))
	pages := make([]*Page, b.numPages)
	for i := range pages {
		p := &Page{}
		if _, err := io.ReadFull(r, p.buf[:]); err != nil {
			panic("storage: cold block inflate: " + err.Error())
		}
		pages[i] = p
	}
	r.Close()
	return pages
}

// Read returns the record bytes for id, decompressing its block if
// needed. The slice aliases an immutable decompressed page.
func (c *ColdSegment) Read(id RecordID) ([]byte, error) {
	if id.Page < 0 || id.Page >= c.numPages {
		return nil, ErrNotFound
	}
	p := c.page(id.Page)
	rec, ok := p.Read(id.Slot)
	if !ok {
		return nil, ErrNotFound
	}
	if c.cache != nil {
		c.cache.touch(c.cacheID, id.Page)
	}
	c.stats.addRead(1, int64(len(rec)), 1)
	return rec, nil
}

// Thaw rebuilds a hot segment from the frozen page images. Record ids
// are preserved exactly (the pages are byte-identical to the vacuumed
// chain that was frozen), so the table's row index needs no remapping.
// The inflation is charged to the cold-read counters and the rebuilt
// chain to the write counters, like a physical copy back to the hot
// tier. Pages are cloned so still-published cold views never alias a
// mutable page.
func (c *ColdSegment) Thaw() *Segment {
	s := &Segment{
		pages:   make([]*Page, c.numPages),
		sidecar: make([][]*synopsis.Set, len(c.sidecar)),
		bm:      c.bm,
		stats:   c.stats,
		live:    c.live,
		bytes:   c.bytes,
		cache:   c.cache,
	}
	copy(s.sidecar, c.sidecar)
	for pi := 0; pi < c.numPages; pi++ {
		s.pages[pi] = c.page(pi).clone()
	}
	s.stats.addWrite(int64(c.numPages), c.bytes)
	return s
}

// DropFromCache evicts the cold identity's admitted pages from the
// shared buffer cache (partition thawed or dropped).
func (c *ColdSegment) DropFromCache() {
	if c.cache != nil {
		c.cache.evictSegment(c.cacheID)
	}
}

// ColdView is the snapshot-read handle of a cold segment, mirroring
// SegView. The segment is immutable, so the view is just a pointer.
type ColdView struct {
	c *ColdSegment
}

// View returns the cold segment's read view.
func (c *ColdSegment) View() ColdView { return ColdView{c: c} }

// Cold reports whether the view is backed by a cold segment (a zero
// ColdView is not).
func (v ColdView) Cold() bool { return v.c != nil }

// NumRecords returns the live record count at freeze time.
func (v ColdView) NumRecords() int { return v.c.live }

// LiveBytes returns the raw live payload bytes at freeze time.
func (v ColdView) LiveBytes() int64 { return v.c.bytes }

// Scan iterates the frozen records in storage order with the same
// callback contract and I/O accounting as SegView.Scan, plus the
// cold-read charges for each block actually decompressed. The sidecar
// synopsis and stored length passed to fn come from the hot metadata
// (sidecar + lens), so a record — or a whole page — of skips costs no
// block decompression at all: cold bytes are charged only when fn
// materializes a record through Record. Decoded cold images (nil lens)
// fall back to inflating each visited page for its slot directory.
func (v ColdView) Scan(fn func(id RecordID, n int, syn *synopsis.Set) bool) {
	c := v.c
	for pi := 0; pi < c.numPages; pi++ {
		if c.cache != nil {
			c.cache.touch(c.cacheID, pi)
		}
		c.stats.addRead(1, 0, 0)
		row := c.sidecar[pi]
		if c.lens != nil {
			for slot, n16 := range c.lens[pi] {
				n := int(n16)
				if n == 0 {
					continue // tombstone (freeze vacuums, but stay defensive)
				}
				c.stats.addRead(0, int64(n), 1)
				if !fn(RecordID{Page: pi, Slot: slot}, n, row[slot]) {
					return
				}
			}
			continue
		}
		p := c.page(pi)
		for slot := range row {
			_, n := p.slot(slot)
			if n == 0 {
				continue
			}
			c.stats.addRead(0, int64(n), 1)
			if !fn(RecordID{Page: pi, Slot: slot}, n, row[slot]) {
				return
			}
		}
	}
}

// Record returns the payload bytes of a live record previously yielded
// by Scan. Like SegView.Record it charges no additional ordinary I/O;
// if the record's block was evicted from the resident cache in the
// meantime, the re-inflation is charged to the cold counters.
func (v ColdView) Record(id RecordID) []byte {
	p := v.c.page(id.Page)
	off, n := p.slot(id.Slot)
	return p.buf[off : off+n]
}

// Encode serializes the cold segment to its checksummed file image:
//
//	magic+version(8) numPages(4) pagesPerBlock(4) numBlocks(4)
//	live(4) liveBytes(8) headerCRC(4)
//	then per block: compLen(4) blockCRC(4) compressed bytes
//
// The sidecar is not serialized: the WAL is the row source of truth and
// reopen re-derives all hot metadata from the replayed rows; the file
// exists so recovery can verify the cold tier's integrity and so the
// compressed bytes survive independently of the log.
func (c *ColdSegment) Encode() []byte {
	out := make([]byte, coldHeaderSize, coldHeaderSize+int(c.compBytes)+8*len(c.blocks))
	copy(out[0:8], coldMagic[:])
	binary.LittleEndian.PutUint32(out[8:12], uint32(c.numPages))
	binary.LittleEndian.PutUint32(out[12:16], coldBlockPages)
	binary.LittleEndian.PutUint32(out[16:20], uint32(len(c.blocks)))
	binary.LittleEndian.PutUint32(out[20:24], uint32(c.live))
	binary.LittleEndian.PutUint64(out[24:32], uint64(c.bytes))
	binary.LittleEndian.PutUint32(out[32:36], crc32.ChecksumIEEE(out[0:32]))
	var hdr [8]byte
	for _, b := range c.blocks {
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(b.data)))
		binary.LittleEndian.PutUint32(hdr[4:8], b.crc)
		out = append(out, hdr[:]...)
		out = append(out, b.data...)
	}
	return out
}

// DecodeColdSegment parses and verifies a cold segment file image.
// Every structural inconsistency — short header, bad magic, checksum
// mismatch, truncated or oversized payload — returns an error wrapping
// ErrColdCorrupt. The decoded segment has no sidecar (reopen re-freezes
// from the replayed rows); it exists to verify integrity and expose the
// frozen page images.
func DecodeColdSegment(data []byte, stats *Stats) (*ColdSegment, error) {
	if stats == nil {
		stats = &Stats{}
	}
	if len(data) < coldHeaderSize {
		return nil, fmt.Errorf("%w: %d-byte file is shorter than the header", ErrColdCorrupt, len(data))
	}
	if !bytes.Equal(data[0:8], coldMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrColdCorrupt, data[0:8])
	}
	if got, want := crc32.ChecksumIEEE(data[0:32]), binary.LittleEndian.Uint32(data[32:36]); got != want {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrColdCorrupt)
	}
	numPages := int(binary.LittleEndian.Uint32(data[8:12]))
	perBlock := int(binary.LittleEndian.Uint32(data[12:16]))
	numBlocks := int(binary.LittleEndian.Uint32(data[16:20]))
	if perBlock != coldBlockPages {
		return nil, fmt.Errorf("%w: block size %d, this binary uses %d", ErrColdCorrupt, perBlock, coldBlockPages)
	}
	if want := (numPages + perBlock - 1) / perBlock; numBlocks != want {
		return nil, fmt.Errorf("%w: %d blocks for %d pages, want %d", ErrColdCorrupt, numBlocks, numPages, want)
	}
	c := &ColdSegment{
		numPages: numPages,
		live:     int(binary.LittleEndian.Uint32(data[20:24])),
		bytes:    int64(binary.LittleEndian.Uint64(data[24:32])),
		stats:    stats,
		cacheID:  segmentIDs.Add(1),
		resident: make(map[int][]*Page),
	}
	off := coldHeaderSize
	for bi := 0; bi < numBlocks; bi++ {
		if len(data)-off < 8 {
			return nil, fmt.Errorf("%w: truncated at block %d header", ErrColdCorrupt, bi)
		}
		compLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		off += 8
		if len(data)-off < compLen {
			return nil, fmt.Errorf("%w: truncated in block %d payload", ErrColdCorrupt, bi)
		}
		blockData := data[off : off+compLen]
		off += compLen
		if crc32.ChecksumIEEE(blockData) != crc {
			return nil, fmt.Errorf("%w: block %d checksum mismatch", ErrColdCorrupt, bi)
		}
		first := bi * perBlock
		n := numPages - first
		if n > perBlock {
			n = perBlock
		}
		c.blocks = append(c.blocks, coldBlock{
			data:      append([]byte(nil), blockData...),
			crc:       crc,
			firstPage: first,
			numPages:  n,
		})
		c.compBytes += int64(compLen)
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrColdCorrupt, len(data)-off)
	}
	return c, nil
}

// OpenColdSegmentFile reads and verifies a cold segment file. Checksum
// and structural failures wrap ErrColdCorrupt; a missing file returns
// the underlying fs error.
func OpenColdSegmentFile(path string, stats *Stats) (*ColdSegment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := DecodeColdSegment(data, stats)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}
