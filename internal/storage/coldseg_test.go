package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cinderella/internal/synopsis"
)

// buildSegment fills a segment with n deterministic records tagged with
// rotating synopses and returns the expected id → payload map.
func buildSegment(t *testing.T, stats *Stats, n int, seed int64) (*Segment, map[RecordID]string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seg := NewSegment(stats)
	want := make(map[RecordID]string, n)
	for i := 0; i < n; i++ {
		rec := fmt.Sprintf("record-%d-%d-%s", seed, i, string(make([]byte, rng.Intn(200))))
		id, err := seg.InsertTagged([]byte(rec), synopsis.Of(i%7))
		if err != nil {
			t.Fatal(err)
		}
		want[id] = rec
	}
	return seg, want
}

func TestColdFreezeScanRoundTrip(t *testing.T) {
	stats := &Stats{}
	seg, want := buildSegment(t, stats, 500, 1)
	cold := FreezeSegment(seg)

	if cold.NumRecords() != seg.NumRecords() || cold.LiveBytes() != seg.LiveBytes() {
		t.Fatalf("cold counters %d/%d, want %d/%d",
			cold.NumRecords(), cold.LiveBytes(), seg.NumRecords(), seg.LiveBytes())
	}
	if cold.CompressedBytes() >= cold.RawBytes() {
		t.Fatalf("no compression: %d >= %d", cold.CompressedBytes(), cold.RawBytes())
	}

	got := make(map[RecordID]string)
	v := cold.View()
	v.Scan(func(id RecordID, n int, syn *synopsis.Set) bool {
		if syn == nil {
			t.Fatalf("record %v lost its sidecar synopsis", id)
		}
		got[id] = string(v.Record(id))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for id, rec := range want {
		if got[id] != rec {
			t.Fatalf("record %v = %q, want %q", id, got[id], rec)
		}
	}

	// The scan decompressed every block exactly once and charged the
	// cold counters for each raw page.
	cp, cb := stats.ColdSnapshot()
	if cp != int64(cold.NumPages()) || cb != cold.RawBytes() {
		t.Fatalf("cold charges %d pages/%d bytes, want %d/%d", cp, cb, cold.NumPages(), cold.RawBytes())
	}
	if cold.ColdReads() != int64(len(cold.blocks)) {
		t.Fatalf("ColdReads = %d, want %d blocks", cold.ColdReads(), len(cold.blocks))
	}
}

func TestColdThawPreservesRecordIDs(t *testing.T) {
	stats := &Stats{}
	seg, want := buildSegment(t, stats, 300, 2)
	cold := FreezeSegment(seg)
	thawed := cold.Thaw()

	if thawed.NumRecords() != len(want) {
		t.Fatalf("thawed %d records, want %d", thawed.NumRecords(), len(want))
	}
	for id, rec := range want {
		got, err := thawed.Read(id)
		if err != nil {
			t.Fatalf("read %v after thaw: %v", id, err)
		}
		if string(got) != rec {
			t.Fatalf("record %v changed across freeze/thaw", id)
		}
		if thawed.Synopsis(id) == nil {
			t.Fatalf("record %v lost its sidecar across freeze/thaw", id)
		}
	}

	// The thawed segment is mutable and must not corrupt still-live
	// cold views: append and delete, then verify the cold view again.
	if _, err := thawed.Insert([]byte("appended-after-thaw")); err != nil {
		t.Fatal(err)
	}
	var anyID RecordID
	for id := range want {
		anyID = id
		break
	}
	if err := thawed.Delete(anyID); err != nil {
		t.Fatal(err)
	}
	n := 0
	v := cold.View()
	v.Scan(func(id RecordID, _ int, _ *synopsis.Set) bool {
		if string(v.Record(id)) != want[id] {
			t.Fatalf("cold view of %v changed after thawed-segment mutation", id)
		}
		n++
		return true
	})
	if n != len(want) {
		t.Fatalf("cold view sees %d records after mutations, want %d", n, len(want))
	}
}

func TestColdEncodeDecodeRoundTrip(t *testing.T) {
	seg, _ := buildSegment(t, nil, 400, 3)
	cold := FreezeSegment(seg)
	img := cold.Encode()

	dec, err := DecodeColdSegment(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumPages() != cold.NumPages() || dec.NumRecords() != cold.NumRecords() ||
		dec.LiveBytes() != cold.LiveBytes() || dec.CompressedBytes() != cold.CompressedBytes() {
		t.Fatalf("decoded counters differ: %+v", dec)
	}
	// Page images must round-trip exactly.
	for pi := 0; pi < cold.NumPages(); pi++ {
		if dec.page(pi).buf != cold.page(pi).buf {
			t.Fatalf("page %d differs after encode/decode", pi)
		}
	}
}

// TestColdCorruptionRefused flips, truncates, and extends the encoded
// image and requires every damaged variant to be refused with
// ErrColdCorrupt — the same torn-file contract as the shard manifest.
func TestColdCorruptionRefused(t *testing.T) {
	seg, _ := buildSegment(t, nil, 400, 4)
	img := FreezeSegment(seg).Encode()

	damage := map[string][]byte{
		"short-header":    img[:coldHeaderSize-10],
		"truncated-block": img[:len(img)-100],
		"trailing-bytes":  append(append([]byte(nil), img...), 0xAA),
		"empty":           {},
	}
	flip := func(at int) []byte {
		d := append([]byte(nil), img...)
		d[at] ^= 0xFF
		return d
	}
	damage["bad-magic"] = flip(0)
	damage["bad-header-field"] = flip(9)
	damage["bad-block-byte"] = flip(coldHeaderSize + 20)
	damage["bad-last-byte"] = flip(len(img) - 1)

	for name, d := range damage {
		if _, err := DecodeColdSegment(d, nil); !errors.Is(err, ErrColdCorrupt) {
			t.Fatalf("%s: err = %v, want ErrColdCorrupt", name, err)
		}
	}

	// The intact image still opens (the damage helpers copied).
	if _, err := DecodeColdSegment(img, nil); err != nil {
		t.Fatalf("intact image refused: %v", err)
	}
}

func TestColdOpenFile(t *testing.T) {
	dir := t.TempDir()
	seg, _ := buildSegment(t, nil, 200, 5)
	img := FreezeSegment(seg).Encode()
	path := filepath.Join(dir, "cold-1.seg")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenColdSegmentFile(path, nil); err != nil {
		t.Fatal(err)
	}
	// Torn on disk: truncate in place.
	if err := os.Truncate(path, int64(len(img)-37)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenColdSegmentFile(path, nil); !errors.Is(err, ErrColdCorrupt) {
		t.Fatalf("torn file err = %v, want ErrColdCorrupt", err)
	}
	// Missing file: the fs error, not a corruption verdict.
	if _, err := OpenColdSegmentFile(filepath.Join(dir, "absent.seg"), nil); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file err = %v, want ErrNotExist", err)
	}
}

// TestColdPointReadChargesCache verifies the admission path: point
// reads touch the buffer cache under the cold identity and charge
// ordinary + cold I/O.
func TestColdPointReadChargesCache(t *testing.T) {
	stats := &Stats{}
	seg, want := buildSegment(t, stats, 100, 6)
	cache := NewBufferCache(32)
	seg.AttachCache(cache)
	cold := FreezeSegment(seg)

	var ids []RecordID
	for id := range want {
		ids = append(ids, id)
	}
	stats.Reset()
	cache.Reset()
	if _, err := cold.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, m := cache.Stats(); m != 1 {
		t.Fatalf("first cold read cache misses = %d, want 1", m)
	}
	if _, err := cold.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	if h, _ := cache.Stats(); h != 1 {
		t.Fatalf("repeat cold read cache hits = %d, want 1", h)
	}
	pr, _, _, _, rr := stats.Snapshot()
	if pr != 2 || rr != 2 {
		t.Fatalf("ordinary charges pages=%d records=%d, want 2/2", pr, rr)
	}
	if cp, _ := stats.ColdSnapshot(); cp == 0 {
		t.Fatal("no cold pages charged for the first decompression")
	}
}
