package storage

import (
	"fmt"
	"sync"
	"testing"
)

// TestSegmentConcurrentReaders validates the documented reader contract:
// Read and Scan from many goroutines at once (no writer) are race-free,
// including the internally synchronized Stats and BufferCache updates.
// Run under -race this guards the table layer's parallel scan workers.
func TestSegmentConcurrentReaders(t *testing.T) {
	stats := &Stats{}
	seg := NewSegment(stats)
	seg.AttachCache(NewBufferCache(4))
	var ids []RecordID
	for i := 0; i < 500; i++ {
		id, err := seg.Insert([]byte(fmt.Sprintf("record-%04d-%s", i, "padding-padding-padding")))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				if r%2 == 0 {
					n := 0
					seg.Scan(func(_ RecordID, rec []byte) bool {
						if len(rec) == 0 {
							t.Error("empty record during concurrent scan")
							return false
						}
						n++
						return true
					})
					if n != len(ids) {
						t.Errorf("scan saw %d records, want %d", n, len(ids))
					}
				} else {
					for _, id := range ids {
						if _, err := seg.Read(id); err != nil {
							t.Errorf("Read(%v): %v", id, err)
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if got := seg.NumRecords(); got != len(ids) {
		t.Fatalf("NumRecords = %d, want %d", got, len(ids))
	}
}
