// Package storage provides the paged storage substrate underneath the
// universal table: slotted pages, per-partition heap segments, and a pager
// that accounts every page and byte that crosses the (simulated) I/O
// boundary.
//
// The paper's prototype stored each partition as a PostgreSQL table; here
// each partition is a Segment — a chain of fixed-size slotted pages. The
// pager's Stats are the ground truth for the EFFICIENCY metric and for the
// "how much data is actually read" side of every experiment.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed page size in bytes. 8 KiB matches PostgreSQL.
const PageSize = 8192

// pageHeaderSize is slotCount(2) + freeOffset(2).
const pageHeaderSize = 4

// slotSize is offset(2) + length(2) per record slot.
const slotSize = 4

// ErrPageFull is returned by Page.Insert when the record does not fit.
var ErrPageFull = errors.New("storage: page full")

// ErrRecordTooLarge is returned for records that can never fit in a page.
var ErrRecordTooLarge = errors.New("storage: record larger than page")

// MaxRecordSize is the largest record a page can hold.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize

// Page is a slotted page: a fixed byte array with a slot directory growing
// from the front and record payloads growing from the back.
//
// Layout:
//
//	[0:2]  slot count (uint16)
//	[2:4]  free-space offset: start of the payload region (uint16)
//	[4:..] slot directory, 4 bytes per slot: payload offset, length
//	 ...   free space ...
//	[free:] payloads (allocated back-to-front)
//
// A deleted record keeps its slot with length 0 so that slot numbers stay
// stable (record ids embed the slot number).
type Page struct {
	buf [PageSize]byte
}

// NewPage returns an initialized empty page.
func NewPage() *Page {
	p := &Page{}
	p.setSlotCount(0)
	p.setFreeOffset(PageSize)
	return p
}

// clone returns a deep copy of the page (the copy-on-write step for
// deletes: published views keep the original).
func (p *Page) clone() *Page {
	q := &Page{}
	q.buf = p.buf
	return q
}

func (p *Page) slotCount() int      { return int(binary.LittleEndian.Uint16(p.buf[0:2])) }
func (p *Page) setSlotCount(n int)  { binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p *Page) freeOffset() int     { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *Page) setFreeOffset(n int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(n)) }

func (p *Page) slot(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base : base+2])),
		int(binary.LittleEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// FreeSpace returns the bytes available for a new record including its slot.
func (p *Page) FreeSpace() int {
	return p.freeOffset() - pageHeaderSize - p.slotCount()*slotSize
}

// Fits reports whether a record of n bytes can be inserted.
func (p *Page) Fits(n int) bool { return p.FreeSpace() >= n+slotSize }

// NumSlots returns the number of slots (including deleted ones).
func (p *Page) NumSlots() int { return p.slotCount() }

// Insert stores rec in the page and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrRecordTooLarge
	}
	if !p.Fits(len(rec)) {
		return 0, ErrPageFull
	}
	off := p.freeOffset() - len(rec)
	copy(p.buf[off:], rec)
	slot := p.slotCount()
	p.setSlot(slot, off, len(rec))
	p.setSlotCount(slot + 1)
	p.setFreeOffset(off)
	return slot, nil
}

// Read returns the record in slot i, or ok=false if the slot is deleted or
// out of range. The returned slice aliases the page buffer.
func (p *Page) Read(i int) (rec []byte, ok bool) {
	if i < 0 || i >= p.slotCount() {
		return nil, false
	}
	off, length := p.slot(i)
	if length == 0 {
		return nil, false
	}
	return p.buf[off : off+length], true
}

// Delete removes the record in slot i. The space is not compacted; the
// slot remains as a tombstone. Deleting an absent record returns false.
func (p *Page) Delete(i int) bool {
	if i < 0 || i >= p.slotCount() {
		return false
	}
	off, length := p.slot(i)
	if length == 0 {
		return false
	}
	p.setSlot(i, off, 0)
	return true
}

// LiveBytes returns the payload bytes of all live records.
func (p *Page) LiveBytes() int {
	total := 0
	for i := 0; i < p.slotCount(); i++ {
		_, l := p.slot(i)
		total += l
	}
	return total
}

// LiveRecords returns the number of non-deleted records.
func (p *Page) LiveRecords() int {
	n := 0
	for i := 0; i < p.slotCount(); i++ {
		if _, l := p.slot(i); l != 0 {
			n++
		}
	}
	return n
}

// String summarizes the page for debugging.
func (p *Page) String() string {
	return fmt.Sprintf("page{slots=%d live=%d free=%d}", p.slotCount(), p.LiveRecords(), p.FreeSpace())
}
