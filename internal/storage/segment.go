package storage

import (
	"errors"
	"sync/atomic"

	"cinderella/internal/synopsis"
)

// ErrNotFound is returned when a record id does not resolve to a live record.
var ErrNotFound = errors.New("storage: record not found")

// RecordID identifies a record inside a segment: page index + slot.
type RecordID struct {
	Page int
	Slot int
}

// Stats counts simulated I/O. All experiments read these counters to
// report "how much data was actually read", independent of wall time.
// The counters are atomics: parallel partition scans and lock-free
// snapshot readers charge them concurrently without serializing on a
// mutex (which used to be the single shared lock on the scan hot path).
type Stats struct {
	pagesRead   atomic.Int64
	pagesWrit   atomic.Int64
	bytesRead   atomic.Int64
	bytesWrit   atomic.Int64
	recordsRead atomic.Int64

	// Cold-tier reads: pages and raw bytes inflated from compressed
	// cold blocks, charged on top of the ordinary read counters so the
	// cost of touching the cold tier stays separately visible (and
	// "pruning read zero cold bytes" is a checkable claim).
	coldPagesRead atomic.Int64
	coldBytesRead atomic.Int64
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.pagesRead.Store(0)
	s.pagesWrit.Store(0)
	s.bytesRead.Store(0)
	s.bytesWrit.Store(0)
	s.recordsRead.Store(0)
	s.coldPagesRead.Store(0)
	s.coldBytesRead.Store(0)
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() (pagesRead, pagesWrit, bytesRead, bytesWrit, recordsRead int64) {
	return s.pagesRead.Load(), s.pagesWrit.Load(), s.bytesRead.Load(),
		s.bytesWrit.Load(), s.recordsRead.Load()
}

// ColdSnapshot returns the cold-tier read counters: pages and raw bytes
// decompressed from frozen blocks since the last Reset.
func (s *Stats) ColdSnapshot() (coldPagesRead, coldBytesRead int64) {
	return s.coldPagesRead.Load(), s.coldBytesRead.Load()
}

func (s *Stats) addRead(pages, bytes, records int64) {
	s.pagesRead.Add(pages)
	s.bytesRead.Add(bytes)
	s.recordsRead.Add(records)
}

func (s *Stats) addColdRead(pages, bytes int64) {
	s.coldPagesRead.Add(pages)
	s.coldBytesRead.Add(bytes)
}

func (s *Stats) addWrite(pages, bytes int64) {
	s.pagesWrit.Add(pages)
	s.bytesWrit.Add(bytes)
}

// Segment is a heap file: an append-oriented chain of slotted pages. One
// segment backs one partition.
//
// Alongside the pages the segment maintains the record-synopsis sidecar:
// one attribute-synopsis pointer per slot, parallel to the page chain.
// Scans over a published view test a query against the sidecar and decode
// only records that can match — a word-AND instead of a full entity
// decode for every non-matching record. A nil sidecar entry means
// "unknown, decode to test"; tombstones are detected from the slot
// directory (stored length 0), never from the sidecar.
//
// Concurrency: mutations (Insert, Delete, Vacuum) require exclusive
// access. Lock-free readers never touch a Segment directly — they scan a
// SegView published by View() (see view.go), which stays valid under
// concurrent mutation because mutations follow two rules:
//
//   - Inserts only append: a new slot, its payload (written below the
//     previous free offset), and the page header are the only bytes
//     touched, and no published view reads any of them — views bound
//     their iteration by the slot counts captured at View() time.
//   - Everything else copies: Delete clones the 8 KiB page and its
//     sidecar row and swaps the clones in; Vacuum rebuilds the chain from
//     scratch. Pages and rows reachable from a view are never mutated.
//
// The Stats counters and the optional BufferCache are internally
// synchronized, so locked readers (Read, Scan) may also run concurrently
// with each other, as the table layer's locked query mode relies on.
type Segment struct {
	pages   []*Page
	sidecar [][]*synopsis.Set // per page: one entry per slot, nil = unknown
	// bm is the attribute-presence bitmap matrix (see bitmap.go): the
	// sidecar transposed into attribute-major bitsets so snapshot scans
	// can evaluate a query 64 records per word op. Maintained in
	// lockstep with the sidecar by InsertTagged/Delete/Vacuum.
	bm      bitmat
	stats   *Stats
	live    int   // live record count
	bytes   int64 // live payload bytes
	cache   *BufferCache
	cacheID uint64
}

// NewSegment returns an empty segment charging I/O to stats. A nil stats
// is replaced with a private counter, so the zero-config path still works.
func NewSegment(stats *Stats) *Segment {
	if stats == nil {
		stats = &Stats{}
	}
	return &Segment{stats: stats}
}

// Insert appends a record and returns its id. Insertion tries the last
// page first and allocates a new page when it does not fit, matching heap
// file append behaviour. The sidecar entry is unknown (nil); use
// InsertTagged to attach the record's attribute synopsis.
func (s *Segment) Insert(rec []byte) (RecordID, error) {
	return s.InsertTagged(rec, nil)
}

// InsertTagged appends a record together with its attribute synopsis,
// which snapshot scans use to skip decoding records irrelevant to a
// query. The synopsis is retained by pointer and must not be mutated
// afterwards (the table layer's entity synopses are write-once).
func (s *Segment) InsertTagged(rec []byte, syn *synopsis.Set) (RecordID, error) {
	if len(rec) > MaxRecordSize {
		return RecordID{}, ErrRecordTooLarge
	}
	if n := len(s.pages); n > 0 {
		if slot, err := s.pages[n-1].Insert(rec); err == nil {
			s.sidecar[n-1] = append(s.sidecar[n-1], syn)
			s.bm.noteInsert(syn)
			s.noteInsert(rec)
			return RecordID{Page: n - 1, Slot: slot}, nil
		}
	}
	p := NewPage()
	slot, err := p.Insert(rec)
	if err != nil {
		return RecordID{}, err
	}
	s.pages = append(s.pages, p)
	s.sidecar = append(s.sidecar, append(make([]*synopsis.Set, 0, 8), syn))
	s.bm.notePage()
	s.bm.noteInsert(syn)
	s.noteInsert(rec)
	return RecordID{Page: len(s.pages) - 1, Slot: slot}, nil
}

func (s *Segment) noteInsert(rec []byte) {
	s.live++
	s.bytes += int64(len(rec))
	s.stats.addWrite(1, int64(len(rec)))
}

// Read returns the record bytes for id. The returned slice aliases page
// memory and is valid until the record is deleted.
func (s *Segment) Read(id RecordID) ([]byte, error) {
	if id.Page < 0 || id.Page >= len(s.pages) {
		return nil, ErrNotFound
	}
	rec, ok := s.pages[id.Page].Read(id.Slot)
	if !ok {
		return nil, ErrNotFound
	}
	s.touchPage(id.Page)
	s.stats.addRead(1, int64(len(rec)), 1)
	return rec, nil
}

// Delete tombstones the record for id. The page and its sidecar row are
// copied, mutated, and swapped in — published views keep reading the
// pre-delete state.
func (s *Segment) Delete(id RecordID) error {
	if id.Page < 0 || id.Page >= len(s.pages) {
		return ErrNotFound
	}
	rec, ok := s.pages[id.Page].Read(id.Slot)
	if !ok {
		return ErrNotFound
	}
	n := int64(len(rec))
	np := s.pages[id.Page].clone()
	if !np.Delete(id.Slot) {
		return ErrNotFound
	}
	row := s.sidecar[id.Page]
	nrow := make([]*synopsis.Set, len(row))
	copy(nrow, row)
	if id.Slot < len(nrow) {
		nrow[id.Slot] = nil
	}
	s.pages[id.Page] = np
	s.sidecar[id.Page] = nrow
	s.bm.noteDelete(id.Page, id.Slot)
	s.live--
	s.bytes -= n
	s.stats.addWrite(1, 0)
	return nil
}

// Scan iterates all live records in storage order, charging one page read
// per page and the live bytes of each visited record. Iteration stops
// early if fn returns false.
func (s *Segment) Scan(fn func(id RecordID, rec []byte) bool) {
	for pi, p := range s.pages {
		s.touchPage(pi)
		s.stats.addRead(1, 0, 0)
		for slot := 0; slot < p.NumSlots(); slot++ {
			rec, ok := p.Read(slot)
			if !ok {
				continue
			}
			s.stats.addRead(0, int64(len(rec)), 1)
			if !fn(RecordID{Page: pi, Slot: slot}, rec) {
				return
			}
		}
	}
}

// Synopsis returns the sidecar entry for id (nil when unknown or id is
// not live).
func (s *Segment) Synopsis(id RecordID) *synopsis.Set {
	if id.Page < 0 || id.Page >= len(s.sidecar) {
		return nil
	}
	row := s.sidecar[id.Page]
	if id.Slot < 0 || id.Slot >= len(row) {
		return nil
	}
	return row[id.Slot]
}

// Vacuum rewrites the segment without tombstones, reclaiming the space of
// deleted records and dropping empty pages. Sidecar entries move with
// their records. Record ids change; the returned map gives old → new ids
// for the caller to remap its indexes. The rewrite is charged to the
// write counters like a physical copy. Published views keep the old page
// chain.
func (s *Segment) Vacuum() map[RecordID]RecordID {
	remap := make(map[RecordID]RecordID, s.live)
	old := s.pages
	oldSidecar := s.sidecar
	s.pages = nil
	s.sidecar = nil
	s.bm = bitmat{} // rebuilt by the re-inserts below
	s.live = 0
	s.bytes = 0
	s.DropFromCache()
	if s.cacheID != 0 {
		// Still-live views of the old chain keep touching the old
		// cacheID; a fresh identity stops them from aliasing the rebuilt
		// chain's pages in the cache.
		s.cacheID = segmentIDs.Add(1)
	}
	for pi, p := range old {
		row := oldSidecar[pi]
		for slot := 0; slot < p.NumSlots(); slot++ {
			rec, ok := p.Read(slot)
			if !ok {
				continue
			}
			var syn *synopsis.Set
			if slot < len(row) {
				syn = row[slot]
			}
			nid, err := s.InsertTagged(rec, syn)
			if err != nil {
				panic("storage: vacuum re-insert failed: " + err.Error())
			}
			remap[RecordID{Page: pi, Slot: slot}] = nid
		}
	}
	return remap
}

// NumPages returns the number of allocated pages.
func (s *Segment) NumPages() int { return len(s.pages) }

// NumRecords returns the number of live records.
func (s *Segment) NumRecords() int { return s.live }

// LiveBytes returns the payload bytes of live records: the SIZE() of the
// partition this segment backs.
func (s *Segment) LiveBytes() int64 { return s.bytes }

// Stats returns the I/O counter the segment charges to.
func (s *Segment) Stats() *Stats { return s.stats }
