package storage

import (
	"errors"
	"sync"
)

// ErrNotFound is returned when a record id does not resolve to a live record.
var ErrNotFound = errors.New("storage: record not found")

// RecordID identifies a record inside a segment: page index + slot.
type RecordID struct {
	Page int
	Slot int
}

// Stats counts simulated I/O. All experiments read these counters to
// report "how much data was actually read", independent of wall time.
type Stats struct {
	mu          sync.Mutex
	PagesRead   int64
	PagesWrit   int64
	BytesRead   int64
	BytesWrit   int64
	RecordsRead int64
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.PagesRead, s.PagesWrit, s.BytesRead, s.BytesWrit, s.RecordsRead = 0, 0, 0, 0, 0
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() (pagesRead, pagesWrit, bytesRead, bytesWrit, recordsRead int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.PagesRead, s.PagesWrit, s.BytesRead, s.BytesWrit, s.RecordsRead
}

func (s *Stats) addRead(pages, bytes, records int64) {
	s.mu.Lock()
	s.PagesRead += pages
	s.BytesRead += bytes
	s.RecordsRead += records
	s.mu.Unlock()
}

func (s *Stats) addWrite(pages, bytes int64) {
	s.mu.Lock()
	s.PagesWrit += pages
	s.BytesWrit += bytes
	s.mu.Unlock()
}

// Segment is a heap file: an append-oriented chain of slotted pages. One
// segment backs one partition.
//
// Concurrency: mutations (Insert, Delete, Vacuum) require exclusive
// access, but any number of readers may call Read and Scan concurrently
// with each other — the page chain and page contents are only read, and
// the shared mutable state they touch (the Stats counters and the
// optional BufferCache) is internally synchronized. The table layer
// relies on this: its parallel query workers scan disjoint segments under
// a shared read lock that excludes writers.
type Segment struct {
	pages   []*Page
	stats   *Stats
	live    int   // live record count
	bytes   int64 // live payload bytes
	cache   *BufferCache
	cacheID uint64
}

// NewSegment returns an empty segment charging I/O to stats. A nil stats
// is replaced with a private counter, so the zero-config path still works.
func NewSegment(stats *Stats) *Segment {
	if stats == nil {
		stats = &Stats{}
	}
	return &Segment{stats: stats}
}

// Insert appends a record and returns its id. Insertion tries the last
// page first and allocates a new page when it does not fit, matching heap
// file append behaviour.
func (s *Segment) Insert(rec []byte) (RecordID, error) {
	if len(rec) > MaxRecordSize {
		return RecordID{}, ErrRecordTooLarge
	}
	if n := len(s.pages); n > 0 {
		if slot, err := s.pages[n-1].Insert(rec); err == nil {
			s.noteInsert(rec)
			return RecordID{Page: n - 1, Slot: slot}, nil
		}
	}
	p := NewPage()
	slot, err := p.Insert(rec)
	if err != nil {
		return RecordID{}, err
	}
	s.pages = append(s.pages, p)
	s.noteInsert(rec)
	return RecordID{Page: len(s.pages) - 1, Slot: slot}, nil
}

func (s *Segment) noteInsert(rec []byte) {
	s.live++
	s.bytes += int64(len(rec))
	s.stats.addWrite(1, int64(len(rec)))
}

// Read returns the record bytes for id. The returned slice aliases page
// memory and is valid until the record is deleted.
func (s *Segment) Read(id RecordID) ([]byte, error) {
	if id.Page < 0 || id.Page >= len(s.pages) {
		return nil, ErrNotFound
	}
	rec, ok := s.pages[id.Page].Read(id.Slot)
	if !ok {
		return nil, ErrNotFound
	}
	s.touchPage(id.Page)
	s.stats.addRead(1, int64(len(rec)), 1)
	return rec, nil
}

// Delete tombstones the record for id.
func (s *Segment) Delete(id RecordID) error {
	if id.Page < 0 || id.Page >= len(s.pages) {
		return ErrNotFound
	}
	rec, ok := s.pages[id.Page].Read(id.Slot)
	if !ok {
		return ErrNotFound
	}
	n := int64(len(rec))
	if !s.pages[id.Page].Delete(id.Slot) {
		return ErrNotFound
	}
	s.live--
	s.bytes -= n
	s.stats.addWrite(1, 0)
	return nil
}

// Scan iterates all live records in storage order, charging one page read
// per page and the live bytes of each visited record. Iteration stops
// early if fn returns false.
func (s *Segment) Scan(fn func(id RecordID, rec []byte) bool) {
	for pi, p := range s.pages {
		s.touchPage(pi)
		s.stats.addRead(1, 0, 0)
		for slot := 0; slot < p.NumSlots(); slot++ {
			rec, ok := p.Read(slot)
			if !ok {
				continue
			}
			s.stats.addRead(0, int64(len(rec)), 1)
			if !fn(RecordID{Page: pi, Slot: slot}, rec) {
				return
			}
		}
	}
}

// Vacuum rewrites the segment without tombstones, reclaiming the space of
// deleted records and dropping empty pages. Record ids change; the
// returned map gives old → new ids for the caller to remap its indexes.
// The rewrite is charged to the write counters like a physical copy.
func (s *Segment) Vacuum() map[RecordID]RecordID {
	remap := make(map[RecordID]RecordID, s.live)
	old := s.pages
	s.pages = nil
	s.live = 0
	s.bytes = 0
	s.DropFromCache()
	for pi, p := range old {
		for slot := 0; slot < p.NumSlots(); slot++ {
			rec, ok := p.Read(slot)
			if !ok {
				continue
			}
			nid, err := s.Insert(rec)
			if err != nil {
				panic("storage: vacuum re-insert failed: " + err.Error())
			}
			remap[RecordID{Page: pi, Slot: slot}] = nid
		}
	}
	return remap
}

// NumPages returns the number of allocated pages.
func (s *Segment) NumPages() int { return len(s.pages) }

// NumRecords returns the number of live records.
func (s *Segment) NumRecords() int { return s.live }

// LiveBytes returns the payload bytes of live records: the SIZE() of the
// partition this segment backs.
func (s *Segment) LiveBytes() int64 { return s.bytes }

// Stats returns the I/O counter the segment charges to.
func (s *Segment) Stats() *Stats { return s.stats }
