package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageInsertRead(t *testing.T) {
	p := NewPage()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if slots[0] != 0 || slots[1] != 1 || slots[2] != 2 {
		t.Fatalf("slots = %v", slots)
	}
	for i, r := range recs {
		got, ok := p.Read(slots[i])
		if !ok || !bytes.Equal(got, r) {
			t.Fatalf("Read(%d) = %q,%v want %q", slots[i], got, ok, r)
		}
	}
	if p.LiveRecords() != 3 {
		t.Fatalf("LiveRecords = %d", p.LiveRecords())
	}
	if p.LiveBytes() != 5+4+5 {
		t.Fatalf("LiveBytes = %d", p.LiveBytes())
	}
}

func TestPageReadOutOfRange(t *testing.T) {
	p := NewPage()
	if _, ok := p.Read(0); ok {
		t.Fatal("Read on empty page succeeded")
	}
	if _, ok := p.Read(-1); ok {
		t.Fatal("Read(-1) succeeded")
	}
}

func TestPageDelete(t *testing.T) {
	p := NewPage()
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if !p.Delete(s0) {
		t.Fatal("Delete failed")
	}
	if p.Delete(s0) {
		t.Fatal("double Delete succeeded")
	}
	if p.Delete(99) || p.Delete(-1) {
		t.Fatal("Delete out of range succeeded")
	}
	if _, ok := p.Read(s0); ok {
		t.Fatal("read deleted record")
	}
	// Slot numbers stay stable after deletion.
	if got, ok := p.Read(s1); !ok || string(got) != "two" {
		t.Fatalf("Read(s1) = %q,%v", got, ok)
	}
	if p.LiveRecords() != 1 {
		t.Fatalf("LiveRecords = %d", p.LiveRecords())
	}
}

func TestPageFull(t *testing.T) {
	p := NewPage()
	rec := make([]byte, 1000)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("err = %v, want ErrPageFull", err)
			}
			break
		}
		n++
	}
	// 8192-4 header; each record costs 1000+4 -> 8 records.
	if n != 8 {
		t.Fatalf("fit %d records, want 8", n)
	}
	if p.Fits(1000) {
		t.Fatal("Fits should be false")
	}
	if !p.Fits(100) {
		t.Fatal("Fits(100) should be true")
	}
}

func TestPageRecordTooLarge(t *testing.T) {
	p := NewPage()
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); err != ErrRecordTooLarge {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	// Exactly max fits in an empty page.
	if _, err := p.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Fatalf("max record insert: %v", err)
	}
}

func TestPageEmptyRecord(t *testing.T) {
	// Zero-length payloads would be indistinguishable from tombstones, so
	// the table layer never writes them; pages treat them as deleted.
	p := NewPage()
	s, err := p.Insert([]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Read(s); ok {
		t.Log("zero-length record readable (acceptable)")
	}
}

func TestSegmentInsertReadDelete(t *testing.T) {
	st := &Stats{}
	seg := NewSegment(st)
	var ids []RecordID
	for i := 0; i < 100; i++ {
		id, err := seg.Insert([]byte(fmt.Sprintf("record-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if seg.NumRecords() != 100 {
		t.Fatalf("NumRecords = %d", seg.NumRecords())
	}
	rec, err := seg.Read(ids[42])
	if err != nil || string(rec) != "record-042" {
		t.Fatalf("Read = %q,%v", rec, err)
	}
	if err := seg.Delete(ids[42]); err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Read(ids[42]); err != ErrNotFound {
		t.Fatalf("Read deleted = %v, want ErrNotFound", err)
	}
	if err := seg.Delete(ids[42]); err != ErrNotFound {
		t.Fatalf("double Delete = %v", err)
	}
	if err := seg.Delete(RecordID{Page: 99, Slot: 0}); err != ErrNotFound {
		t.Fatalf("Delete bad page = %v", err)
	}
	if seg.NumRecords() != 99 {
		t.Fatalf("NumRecords = %d", seg.NumRecords())
	}
}

func TestSegmentSpansPages(t *testing.T) {
	seg := NewSegment(nil)
	rec := make([]byte, 2000)
	for i := 0; i < 20; i++ {
		if _, err := seg.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	// 4 per page (2000+4 slot each within 8188 usable) -> 5 pages.
	if seg.NumPages() != 5 {
		t.Fatalf("NumPages = %d, want 5", seg.NumPages())
	}
	if seg.LiveBytes() != 40000 {
		t.Fatalf("LiveBytes = %d", seg.LiveBytes())
	}
}

func TestSegmentScan(t *testing.T) {
	seg := NewSegment(nil)
	var want []string
	for i := 0; i < 50; i++ {
		s := fmt.Sprintf("r%02d", i)
		want = append(want, s)
		if _, err := seg.Insert([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	seg.Scan(func(id RecordID, rec []byte) bool {
		got = append(got, string(rec))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order: got[%d]=%q want %q", i, got[i], want[i])
		}
	}
}

func TestSegmentScanEarlyStop(t *testing.T) {
	seg := NewSegment(nil)
	for i := 0; i < 10; i++ {
		seg.Insert([]byte("x"))
	}
	n := 0
	seg.Scan(func(RecordID, []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestSegmentScanSkipsDeleted(t *testing.T) {
	seg := NewSegment(nil)
	var ids []RecordID
	for i := 0; i < 10; i++ {
		id, _ := seg.Insert([]byte{byte('0' + i)})
		ids = append(ids, id)
	}
	seg.Delete(ids[3])
	seg.Delete(ids[7])
	n := 0
	seg.Scan(func(id RecordID, rec []byte) bool {
		if id == ids[3] || id == ids[7] {
			t.Fatal("scan visited deleted record")
		}
		n++
		return true
	})
	if n != 8 {
		t.Fatalf("scanned %d, want 8", n)
	}
}

func TestStatsAccounting(t *testing.T) {
	st := &Stats{}
	seg := NewSegment(st)
	seg.Insert(make([]byte, 100))
	seg.Insert(make([]byte, 200))
	_, pw, _, bw, _ := st.Snapshot()
	if pw != 2 || bw != 300 {
		t.Fatalf("writes: pages=%d bytes=%d", pw, bw)
	}
	st.Reset()
	seg.Scan(func(RecordID, []byte) bool { return true })
	pr, _, br, _, rr := st.Snapshot()
	if pr != 1 {
		t.Fatalf("PagesRead = %d, want 1", pr)
	}
	if br != 300 {
		t.Fatalf("BytesRead = %d, want 300", br)
	}
	if rr != 2 {
		t.Fatalf("RecordsRead = %d, want 2", rr)
	}
}

func TestSegmentSharedStats(t *testing.T) {
	st := &Stats{}
	a, b := NewSegment(st), NewSegment(st)
	a.Insert(make([]byte, 10))
	b.Insert(make([]byte, 20))
	_, pw, _, bw, _ := st.Snapshot()
	if pw != 2 || bw != 30 {
		t.Fatalf("shared stats: pages=%d bytes=%d", pw, bw)
	}
}

func TestPropPageRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		p := NewPage()
		type ins struct {
			slot int
			rec  []byte
		}
		var inserted []ins
		for _, r := range payloads {
			if len(r) == 0 || len(r) > 512 {
				continue
			}
			s, err := p.Insert(r)
			if err != nil {
				break
			}
			inserted = append(inserted, ins{s, r})
		}
		for _, in := range inserted {
			got, ok := p.Read(in.slot)
			if !ok || !bytes.Equal(got, in.rec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropSegmentLiveBytesInvariant(t *testing.T) {
	// LiveBytes always equals the sum of live record lengths, under any
	// interleaving of inserts and deletes.
	f := func(ops []uint16) bool {
		seg := NewSegment(nil)
		rng := rand.New(rand.NewSource(42))
		var ids []RecordID
		lens := map[RecordID]int{}
		for _, op := range ops {
			if op%3 != 0 || len(ids) == 0 {
				n := int(op%300) + 1
				id, err := seg.Insert(make([]byte, n))
				if err != nil {
					return false
				}
				ids = append(ids, id)
				lens[id] = n
			} else {
				i := rng.Intn(len(ids))
				id := ids[i]
				seg.Delete(id)
				delete(lens, id)
				ids = append(ids[:i], ids[i+1:]...)
			}
		}
		var want int64
		for _, n := range lens {
			want += int64(n)
		}
		return seg.LiveBytes() == want && seg.NumRecords() == len(lens)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSegmentInsert(b *testing.B) {
	seg := NewSegment(nil)
	rec := make([]byte, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seg.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentScan(b *testing.B) {
	seg := NewSegment(nil)
	rec := make([]byte, 120)
	for i := 0; i < 10000; i++ {
		seg.Insert(rec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		seg.Scan(func(RecordID, []byte) bool { n++; return true })
		if n != 10000 {
			b.Fatal("bad scan")
		}
	}
}

func TestSegmentVacuum(t *testing.T) {
	seg := NewSegment(nil)
	rec := make([]byte, 2000) // 4 per page
	var ids []RecordID
	for i := 0; i < 20; i++ {
		id, _ := seg.Insert(rec)
		ids = append(ids, id)
	}
	// Delete 3 of every 4 records: pages become mostly dead.
	kept := map[RecordID]bool{}
	for i, id := range ids {
		if i%4 == 0 {
			kept[id] = true
			continue
		}
		seg.Delete(id)
	}
	before := seg.NumPages()
	remap := seg.Vacuum()
	if len(remap) != len(kept) {
		t.Fatalf("remap size = %d, want %d", len(remap), len(kept))
	}
	if seg.NumPages() >= before {
		t.Fatalf("vacuum did not shrink: %d -> %d", before, seg.NumPages())
	}
	if seg.NumRecords() != len(kept) {
		t.Fatalf("records after vacuum = %d", seg.NumRecords())
	}
	for old, nid := range remap {
		if !kept[old] {
			t.Fatalf("vacuum kept deleted record %v", old)
		}
		if _, err := seg.Read(nid); err != nil {
			t.Fatalf("remapped record unreadable: %v", err)
		}
	}
	if seg.LiveBytes() != int64(len(kept)*2000) {
		t.Fatalf("LiveBytes = %d", seg.LiveBytes())
	}
}

func TestSegmentVacuumEmpty(t *testing.T) {
	seg := NewSegment(nil)
	if remap := seg.Vacuum(); len(remap) != 0 {
		t.Fatal("vacuum of empty segment returned mappings")
	}
	id, _ := seg.Insert([]byte("x"))
	seg.Delete(id)
	seg.Vacuum()
	if seg.NumPages() != 0 || seg.NumRecords() != 0 {
		t.Fatalf("fully-deleted segment not emptied: %d pages", seg.NumPages())
	}
}
