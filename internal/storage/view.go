package storage

import (
	"cinderella/internal/synopsis"
)

// SegView is an immutable snapshot of a segment: the page chain, the
// record-synopsis sidecar, and the live counters as of View(). It stays
// valid — and returns exactly the captured state — under any concurrent
// mutation of the segment, without locks:
//
//   - The view owns private copies of the outer page and sidecar arrays,
//     so the segment may grow or swap elements freely.
//   - Iteration is bounded by the per-page slot counts captured in the
//     sidecar rows (len(row) == slots used at capture time), so the
//     mutable page header and any appended slots/payloads are never read.
//   - Deletes and vacuums copy pages instead of mutating them, so every
//     page (and sidecar row) reachable from a view is frozen.
//
// I/O accounting is identical to Segment.Scan: one page read per visited
// page, and each live record's bytes — whether or not the caller decides
// to materialize them. Both skip paths honor that contract: the
// per-record sidecar skip charges each visited record as it goes, and
// the word-parallel bitmap kernel (ScanBitmap) charges the same totals
// — every page, every live record, every live byte — in one bulk
// operation before pruning. A skip of either kind avoids decode CPU
// only, never simulated I/O, which keeps QueryReport and EFFICIENCY
// byte-identical across the locked, snapshot-sidecar, and
// snapshot-bitmap read paths.
type SegView struct {
	pages   []*Page
	rows    [][]*synopsis.Set
	bm      bmView
	live    int
	bytes   int64
	stats   *Stats
	cache   *BufferCache
	cacheID uint64
}

// View publishes the segment's current state as an immutable view. The
// caller must hold the segment's exclusive lock (the table layer calls it
// at the end of each mutation, before releasing the write lock).
func (s *Segment) View() SegView {
	pages := make([]*Page, len(s.pages))
	copy(pages, s.pages)
	rows := make([][]*synopsis.Set, len(s.sidecar))
	copy(rows, s.sidecar)
	return SegView{
		pages:   pages,
		rows:    rows,
		bm:      s.bm.view(),
		live:    s.live,
		bytes:   s.bytes,
		stats:   s.stats,
		cache:   s.cache,
		cacheID: s.cacheID,
	}
}

// NumPages returns the number of pages captured in the view.
func (v *SegView) NumPages() int { return len(v.pages) }

// NumRecords returns the live record count at capture time.
func (v *SegView) NumRecords() int { return v.live }

// LiveBytes returns the live payload bytes at capture time.
func (v *SegView) LiveBytes() int64 { return v.bytes }

// Scan iterates the view's live records in storage order, charging reads
// exactly like Segment.Scan: one page read per page, plus each live
// record's bytes and a record-read at the moment it is visited. For each
// live record fn receives the record id, the stored length, and the
// sidecar synopsis (nil = unknown); fn fetches the payload via Record
// only when it decides to decode, so sidecar-pruned records cost a
// slot-directory read and a word-AND instead of a decode — the skip
// saves decode CPU while the I/O charge for the visit stands. A scan
// that runs to completion therefore charges exactly (NumPages,
// LiveBytes, NumRecords), the same totals ScanBitmap charges up front.
// Iteration stops early if fn returns false.
func (v *SegView) Scan(fn func(id RecordID, n int, syn *synopsis.Set) bool) {
	for pi, p := range v.pages {
		if v.cache != nil {
			v.cache.touch(v.cacheID, pi)
		}
		v.stats.addRead(1, 0, 0)
		row := v.rows[pi]
		for slot := range row {
			_, n := p.slot(slot)
			if n == 0 {
				continue // tombstone
			}
			v.stats.addRead(0, int64(n), 1)
			if !fn(RecordID{Page: pi, Slot: slot}, n, row[slot]) {
				return
			}
		}
	}
}

// Record returns the payload bytes of a live record previously yielded by
// Scan. The slice aliases frozen page memory and stays valid for the
// view's lifetime. No additional I/O is charged: Scan already accounted
// for the record when it visited the slot.
func (v *SegView) Record(id RecordID) []byte {
	off, n := v.pages[id.Page].slot(id.Slot)
	return v.pages[id.Page].buf[off : off+n]
}
