package storage

import (
	"fmt"
	"testing"

	"cinderella/internal/synopsis"
)

// TestSidecarTagging covers the record-synopsis sidecar bookkeeping:
// tagged inserts retain the synopsis by pointer, untagged inserts stay
// unknown, deletes clear the entry, and vacuum moves entries with their
// records.
func TestSidecarTagging(t *testing.T) {
	seg := NewSegment(nil)
	synA := synopsis.Of(1, 2)
	synB := synopsis.Of(3)

	idA, err := seg.InsertTagged([]byte("aaa"), synA)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := seg.InsertTagged([]byte("bbb"), synB)
	if err != nil {
		t.Fatal(err)
	}
	idC, err := seg.Insert([]byte("ccc"))
	if err != nil {
		t.Fatal(err)
	}

	if got := seg.Synopsis(idA); got != synA {
		t.Fatalf("Synopsis(A) = %v, want the tagged pointer", got)
	}
	if got := seg.Synopsis(idB); got != synB {
		t.Fatalf("Synopsis(B) = %v, want the tagged pointer", got)
	}
	if got := seg.Synopsis(idC); got != nil {
		t.Fatalf("Synopsis(untagged) = %v, want nil", got)
	}

	if err := seg.Delete(idA); err != nil {
		t.Fatal(err)
	}
	if got := seg.Synopsis(idA); got != nil {
		t.Fatalf("Synopsis(deleted) = %v, want nil", got)
	}

	remap := seg.Vacuum()
	nb, ok := remap[idB]
	if !ok {
		t.Fatal("vacuum lost record B")
	}
	if got := seg.Synopsis(nb); got == nil || !got.Equal(synB) {
		t.Fatalf("Synopsis after vacuum = %v, want %v", got, synB)
	}
}

// TestViewImmutableUnderMutation is the storage-level snapshot property:
// a view captured before deletes, appends, and vacuum keeps returning
// exactly the captured records, bytes, and sidecar synopses.
func TestViewImmutableUnderMutation(t *testing.T) {
	seg := NewSegment(nil)
	type rec struct {
		id  RecordID
		b   string
		syn *synopsis.Set
	}
	var want []rec
	for i := 0; i < 300; i++ {
		b := fmt.Sprintf("record-%04d-%s", i, "padding-padding-padding-padding")
		syn := synopsis.Of(i % 7)
		id, err := seg.InsertTagged([]byte(b), syn)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rec{id, b, syn})
	}

	v := seg.View()

	// Mutate: delete a third, append enough to grow pages and extend
	// the captured tail page's slot directory, then vacuum everything.
	for i, r := range want {
		if i%3 == 0 {
			if err := seg.Delete(r.id); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := seg.Insert([]byte(fmt.Sprintf("late-%05d-%s", i, "padding-padding"))); err != nil {
			t.Fatal(err)
		}
	}
	seg.Vacuum()

	if v.NumRecords() != len(want) {
		t.Fatalf("view live count %d, want %d", v.NumRecords(), len(want))
	}
	i := 0
	v.Scan(func(id RecordID, n int, syn *synopsis.Set) bool {
		if i >= len(want) {
			t.Fatalf("view yielded more than the captured %d records", len(want))
		}
		w := want[i]
		if id != w.id || n != len(w.b) || syn != w.syn {
			t.Fatalf("view record %d = (%v,%d,%v), want (%v,%d,%v)",
				i, id, n, syn, w.id, len(w.b), w.syn)
		}
		if got := string(v.Record(id)); got != w.b {
			t.Fatalf("view record %d bytes = %q, want %q", i, got, w.b)
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("view yielded %d records, want %d", i, len(want))
	}
}

// TestViewChargesLikeLockedScan pins the accounting contract: a view
// scan charges the shared Stats exactly like Segment.Scan over the same
// data — per-page and per-record, whether or not the caller decodes.
func TestViewChargesLikeLockedScan(t *testing.T) {
	mk := func() *Segment {
		seg := NewSegment(&Stats{})
		var ids []RecordID
		for i := 0; i < 500; i++ {
			b := fmt.Sprintf("record-%04d-%s", i, "padding-padding-padding")
			id, err := seg.InsertTagged([]byte(b), synopsis.Of(i%5))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 0; i < len(ids); i += 4 {
			if err := seg.Delete(ids[i]); err != nil {
				t.Fatal(err)
			}
		}
		seg.Stats().Reset()
		return seg
	}

	locked := mk()
	locked.Scan(func(_ RecordID, _ []byte) bool { return true })
	lpr, _, lbr, _, lrr := locked.Stats().Snapshot()

	snap := mk()
	v := snap.View()
	v.Scan(func(_ RecordID, _ int, _ *synopsis.Set) bool { return true })
	spr, _, sbr, _, srr := snap.Stats().Snapshot()

	if lpr != spr || lbr != sbr || lrr != srr {
		t.Fatalf("locked scan charged (pages=%d bytes=%d records=%d), view scan (pages=%d bytes=%d records=%d)",
			lpr, lbr, lrr, spr, sbr, srr)
	}
}
