package synopsis

import (
	"math/rand"
	"testing"
)

// wordsFromBytes packs a byte string into a word array, 8 bytes per word,
// zero-padding the final partial word. Unequal-length inputs therefore
// exercise the zero-extension contract: every cardinality and Equal must
// treat the shorter set as if padded with zero words.
func wordsFromBytes(b []byte) []uint64 {
	words := make([]uint64, (len(b)+7)/8)
	for i, c := range b {
		words[i/8] |= uint64(c) << (8 * uint(i%8))
	}
	return words
}

// FuzzRateCards differentially tests the fused rating kernel against the
// four naive cardinality calls, plus Equal against XorCard, on arbitrary
// (and in particular unequal-length) word arrays. The sharded merge path
// compares synopses that grew under different shards — so they routinely
// differ in length — and leans on exactly this contract.
func FuzzRateCards(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xff}, []byte{})
	f.Add([]byte{0x01, 0x02, 0x03}, []byte{0x01})
	f.Add([]byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xff},
		[]byte{0x55, 0xaa})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
		[]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, eb, pb []byte) {
		e := &Set{words: wordsFromBytes(eb)}
		p := &Set{words: wordsFromBytes(pb)}

		and, or, missE, missP := RateCards(e, p)
		if want := AndCard(e, p); and != want {
			t.Errorf("RateCards and=%d, AndCard=%d", and, want)
		}
		if want := OrCard(e, p); or != want {
			t.Errorf("RateCards or=%d, OrCard=%d", or, want)
		}
		if want := AndNotCard(p, e); missE != want {
			t.Errorf("RateCards missE=%d, AndNotCard(p,e)=%d", missE, want)
		}
		if want := AndNotCard(e, p); missP != want {
			t.Errorf("RateCards missP=%d, AndNotCard(e,p)=%d", missP, want)
		}

		// Internal consistency of the fused results.
		if or != and+missE+missP {
			t.Errorf("or=%d != and+missE+missP=%d", or, and+missE+missP)
		}
		if x := XorCard(e, p); x != missE+missP {
			t.Errorf("XorCard=%d != missE+missP=%d", x, missE+missP)
		}

		// Equal must agree with "symmetric difference is empty" and must be
		// symmetric, regardless of trailing zero words on either side.
		eq := e.Equal(p)
		if eq != (XorCard(e, p) == 0) {
			t.Errorf("Equal=%v but XorCard=%d", eq, XorCard(e, p))
		}
		if eq != p.Equal(e) {
			t.Errorf("Equal not symmetric: e.Equal(p)=%v p.Equal(e)=%v", eq, p.Equal(e))
		}

		// Zero-extension: appending zero words changes nothing observable.
		ext := &Set{words: append(append([]uint64{}, e.words...), 0, 0)}
		if !ext.Equal(e) || !e.Equal(ext) {
			t.Error("appending zero words broke Equal reflexivity")
		}
		a2, o2, mE2, mP2 := RateCards(ext, p)
		if a2 != and || o2 != or || mE2 != missE || mP2 != missP {
			t.Errorf("zero-extended RateCards=(%d,%d,%d,%d), want (%d,%d,%d,%d)",
				a2, o2, mE2, mP2, and, or, missE, missP)
		}
		if Intersects(e, p) != (and > 0) {
			t.Errorf("Intersects=%v but and=%d", Intersects(e, p), and)
		}
	})
}

// TestRateCardsRandomLengths is the non-fuzz regression companion: random
// unequal-length pairs through the same differential checks, so plain
// `go test` keeps covering the contract between fuzzing sessions.
func TestRateCardsRandomLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		eb := make([]byte, rng.Intn(40))
		pb := make([]byte, rng.Intn(40))
		rng.Read(eb)
		rng.Read(pb)
		e := &Set{words: wordsFromBytes(eb)}
		p := &Set{words: wordsFromBytes(pb)}
		and, or, missE, missP := RateCards(e, p)
		if and != AndCard(e, p) || or != OrCard(e, p) ||
			missE != AndNotCard(p, e) || missP != AndNotCard(e, p) {
			t.Fatalf("case %d: RateCards=(%d,%d,%d,%d) disagrees with naive calls", i, and, or, missE, missP)
		}
		if e.Equal(p) != (XorCard(e, p) == 0) {
			t.Fatalf("case %d: Equal disagrees with XorCard", i)
		}
	}
}
