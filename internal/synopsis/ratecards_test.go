package synopsis

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateCardsBasic(t *testing.T) {
	e := Of(0, 1, 2, 3)    // entity attrs
	p := Of(2, 3, 4, 5, 6) // partition attrs
	and, or, missE, missP := RateCards(e, p)
	if and != 2 || or != 7 || missE != 3 || missP != 2 {
		t.Fatalf("RateCards = (%d,%d,%d,%d), want (2,7,3,2)", and, or, missE, missP)
	}
}

func TestRateCardsEmpty(t *testing.T) {
	and, or, missE, missP := RateCards(Of(), Of())
	if and != 0 || or != 0 || missE != 0 || missP != 0 {
		t.Fatalf("RateCards on empty sets = (%d,%d,%d,%d), want zeros", and, or, missE, missP)
	}
	and, or, missE, missP = RateCards(Of(), Of(1, 900))
	if and != 0 || or != 2 || missE != 2 || missP != 0 {
		t.Fatalf("RateCards(∅,p) = (%d,%d,%d,%d), want (0,2,2,0)", and, or, missE, missP)
	}
}

// TestPropRateCardsMatchesFourCalls: the fused kernel agrees with the four
// separate counting calls on random sets, including sets whose word arrays
// have different lengths (zero-extension semantics).
func TestPropRateCardsMatchesFourCalls(t *testing.T) {
	f := func(as, bs []uint16, widenA, widenB bool) bool {
		a, b := randomSet(as), randomSet(bs)
		// Force unequal word-array lengths in both directions so the tail
		// loops are exercised, not just the common prefix.
		if widenA {
			a.Add(2048 + int(len(as)%7)*64)
		}
		if widenB {
			b.Add(4096 + int(len(bs)%5)*64)
		}
		and, or, missE, missP := RateCards(a, b)
		return and == AndCard(a, b) &&
			or == OrCard(a, b) &&
			missE == AndNotCard(b, a) &&
			missP == AndNotCard(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropRateCardsIdentities: internal consistency of the fused result —
// inclusion/exclusion and the xor decomposition hold.
func TestPropRateCardsIdentities(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := randomSet(as), randomSet(bs)
		and, or, missE, missP := RateCards(a, b)
		return or == and+missE+missP &&
			XorCard(a, b) == missE+missP &&
			a.Len() == and+missP &&
			b.Len() == and+missE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// benchPair builds two ~200-element sets over a 1024 universe, the shape
// of a DBpedia-like entity/partition synopsis pair.
func benchPair() (*Set, *Set) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(1024), New(1024)
	for i := 0; i < 200; i++ {
		x.Add(rng.Intn(1024))
		y.Add(rng.Intn(1024))
	}
	return x, y
}

var sinkInt int

// BenchmarkRate compares the fused single-pass kernel against the
// four-call baseline the rating previously performed.
func BenchmarkRate(b *testing.B) {
	x, y := benchPair()
	b.Run("fourcall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := AndCard(x, y)
			s += OrCard(x, y)
			s += AndNotCard(y, x)
			s += AndNotCard(x, y)
			sinkInt = s
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			and, or, missE, missP := RateCards(x, y)
			sinkInt = and + or + missE + missP
		}
	})
}

func TestForEachMatchesElements(t *testing.T) {
	f := func(as []uint16) bool {
		a := randomSet(as)
		var got []int
		a.ForEach(func(id int) { got = append(got, id) })
		want := a.Elements(nil)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
