// Package synopsis implements the fixed-universe bitset algebra that
// Cinderella uses to describe entities, partitions, and queries.
//
// A synopsis is a set over a universe of attribute (or query) identifiers
// 0..n-1. The partitioning algorithm only ever needs a handful of set
// cardinalities — |e ∧ p|, |e ∨ p|, |e ⊕ p|, |¬e ∧ p|, |e ∧ ¬p| — so the
// package exposes those directly as counting operations that do not
// allocate.
package synopsis

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bitset over a fixed universe of non-negative integer ids.
// The zero value is an empty set over an empty universe; use New or Of for
// sets with capacity. Sets of different lengths may be combined — the
// shorter one is treated as zero-extended.
type Set struct {
	words []uint64
}

// New returns an empty set able to hold ids in [0, universe).
func New(universe int) *Set {
	if universe < 0 {
		universe = 0
	}
	return &Set{words: make([]uint64, (universe+wordBits-1)/wordBits)}
}

// Of returns a set containing exactly the given ids.
func Of(ids ...int) *Set {
	max := -1
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	s := New(max + 1)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// Reset removes all elements, retaining capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// grow ensures the set can hold id.
func (s *Set) grow(id int) {
	need := id/wordBits + 1
	if need <= len(s.words) {
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Add inserts id into the set, growing the universe if necessary.
// It panics on negative ids.
func (s *Set) Add(id int) {
	if id < 0 {
		panic(fmt.Sprintf("synopsis: negative id %d", id))
	}
	s.grow(id)
	s.words[id/wordBits] |= 1 << (uint(id) % wordBits)
}

// Remove deletes id from the set. Removing an absent id is a no-op.
func (s *Set) Remove(id int) {
	if id < 0 || id/wordBits >= len(s.words) {
		return
	}
	s.words[id/wordBits] &^= 1 << (uint(id) % wordBits)
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id int) bool {
	if id < 0 || id/wordBits >= len(s.words) {
		return false
	}
	return s.words[id/wordBits]&(1<<(uint(id)%wordBits)) != 0
}

// Len returns the cardinality |s|.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every element of t to s (s ∪= t).
func (s *Set) UnionWith(t *Set) {
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in t (s ∩= t).
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// DifferenceWith removes every element of t from s (s \= t).
func (s *Set) DifferenceWith(t *Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// AndCard returns |s ∧ t|, the number of shared elements.
func AndCard(s, t *Set) int {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// OrCard returns |s ∨ t|, the size of the union.
func OrCard(s, t *Set) int {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	c := 0
	for i, w := range short {
		c += bits.OnesCount64(long[i] | w)
	}
	for _, w := range long[len(short):] {
		c += bits.OnesCount64(w)
	}
	return c
}

// XorCard returns |s ⊕ t|, the number of elements in exactly one set.
// This is the paper's DIFF() between two entity synopses.
func XorCard(s, t *Set) int {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	c := 0
	for i, w := range short {
		c += bits.OnesCount64(long[i] ^ w)
	}
	for _, w := range long[len(short):] {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndNotCard returns |s ∧ ¬t|, the number of elements of s missing from t.
func AndNotCard(s, t *Set) int {
	c := 0
	for i, w := range s.words {
		if i < len(t.words) {
			c += bits.OnesCount64(w &^ t.words[i])
		} else {
			c += bits.OnesCount64(w)
		}
	}
	return c
}

// RateCards computes, in a single traversal of both word arrays, the four
// cardinalities the Section IV rating needs for an entity synopsis e
// against a partition synopsis p:
//
//	and   = |e ∧ p|   shared elements
//	or    = |e ∨ p|   union size
//	missE = |¬e ∧ p|  elements of p the entity lacks (entity heterogeneity)
//	missP = |e ∧ ¬p|  elements of e the partition lacks (partition heterogeneity)
//
// It is equivalent to AndCard(e,p), OrCard(e,p), AndNotCard(p,e),
// AndNotCard(e,p) but touches each word pair exactly once, which roughly
// quarters the memory traffic of the insert-path hot loop.
func RateCards(e, p *Set) (and, or, missE, missP int) {
	n := len(e.words)
	if len(p.words) < n {
		n = len(p.words)
	}
	for i := 0; i < n; i++ {
		ew, pw := e.words[i], p.words[i]
		both := bits.OnesCount64(ew & pw)
		onlyE := bits.OnesCount64(ew &^ pw)
		onlyP := bits.OnesCount64(pw &^ ew)
		and += both
		or += both + onlyE + onlyP
		missE += onlyP
		missP += onlyE
	}
	// Tail of the longer set: all elements there are exclusive to it.
	for _, w := range e.words[n:] {
		c := bits.OnesCount64(w)
		or += c
		missP += c
	}
	for _, w := range p.words[n:] {
		c := bits.OnesCount64(w)
		or += c
		missE += c
	}
	return and, or, missE, missP
}

// Intersects reports whether |s ∧ t| > 0 without counting. This is the
// pruning test sgn(|p ∧ q|) from the paper: a partition p survives pruning
// for query q iff Intersects(p, q).
func Intersects(s, t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Subset reports whether every element of s is in t.
func Subset(s, t *Set) bool {
	return AndNotCard(s, t) == 0
}

// ForEach calls fn for every id in the set in increasing order. Unlike
// Elements it never allocates, making it the right choice for hot-path
// maintenance loops (partition refcounts, inverted index updates).
func (s *Set) ForEach(fn func(id int)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(i*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// Elements appends all ids in the set, in increasing order, to dst and
// returns the extended slice.
func (s *Set) Elements(dst []int) []int {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, i*wordBits+b)
			w &^= 1 << uint(b)
		}
	}
	return dst
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, id := range s.Elements(nil) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}
