package synopsis

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("New set should be empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if s.Contains(5) {
		t.Fatal("zero set contains 5")
	}
	s.Add(5)
	if !s.Contains(5) {
		t.Fatal("zero set should grow on Add")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(10)
	ids := []int{0, 1, 9, 63, 64, 65, 127, 128, 1000}
	for _, id := range ids {
		s.Add(id)
	}
	for _, id := range ids {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false after Add", id)
		}
	}
	if s.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ids))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) after Remove")
	}
	s.Remove(64) // double remove is a no-op
	s.Remove(99999)
	s.Remove(-3)
	if s.Len() != len(ids)-1 {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ids)-1)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(4).Add(-1)
}

func TestOf(t *testing.T) {
	s := Of(3, 1, 4, 1, 5)
	want := []int{1, 3, 4, 5}
	got := s.Elements(nil)
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestOfEmpty(t *testing.T) {
	s := Of()
	if !s.Empty() {
		t.Fatal("Of() should be empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Of(1, 2, 3)
	c := s.Clone()
	c.Add(10)
	c.Remove(2)
	if !s.Contains(2) || s.Contains(10) {
		t.Fatal("Clone is not independent")
	}
}

func TestReset(t *testing.T) {
	s := Of(1, 2, 3)
	s.Reset()
	if !s.Empty() {
		t.Fatal("Reset did not empty the set")
	}
}

func TestCardinalities(t *testing.T) {
	e := Of(0, 1, 2, 3)    // entity attrs
	p := Of(2, 3, 4, 5, 6) // partition attrs
	if got := AndCard(e, p); got != 2 {
		t.Errorf("|e ∧ p| = %d, want 2", got)
	}
	if got := OrCard(e, p); got != 7 {
		t.Errorf("|e ∨ p| = %d, want 7", got)
	}
	if got := XorCard(e, p); got != 5 {
		t.Errorf("|e ⊕ p| = %d, want 5", got)
	}
	if got := AndNotCard(e, p); got != 2 { // attrs entity has, partition lacks
		t.Errorf("|e ∧ ¬p| = %d, want 2", got)
	}
	if got := AndNotCard(p, e); got != 3 { // attrs partition has, entity lacks
		t.Errorf("|¬e ∧ p| = %d, want 3", got)
	}
}

func TestCardinalitiesDifferentLengths(t *testing.T) {
	small := Of(1)
	big := Of(1, 300)
	if got := AndCard(small, big); got != 1 {
		t.Errorf("AndCard = %d, want 1", got)
	}
	if got := OrCard(small, big); got != 2 {
		t.Errorf("OrCard = %d, want 2", got)
	}
	if got := XorCard(small, big); got != 1 {
		t.Errorf("XorCard = %d, want 1", got)
	}
	if got := AndNotCard(big, small); got != 1 {
		t.Errorf("AndNotCard(big, small) = %d, want 1", got)
	}
	if got := AndNotCard(small, big); got != 0 {
		t.Errorf("AndNotCard(small, big) = %d, want 0", got)
	}
}

func TestIntersects(t *testing.T) {
	if Intersects(Of(1, 2), Of(3, 4)) {
		t.Error("disjoint sets should not intersect")
	}
	if !Intersects(Of(1, 2), Of(2, 3)) {
		t.Error("overlapping sets should intersect")
	}
	if Intersects(Of(), Of(1)) {
		t.Error("empty set intersects nothing")
	}
	if !Intersects(Of(500), Of(500)) {
		t.Error("high-bit intersection missed")
	}
}

func TestSubset(t *testing.T) {
	if !Subset(Of(1, 2), Of(1, 2, 3)) {
		t.Error("Of(1,2) should be subset of Of(1,2,3)")
	}
	if Subset(Of(1, 4), Of(1, 2, 3)) {
		t.Error("Of(1,4) should not be subset of Of(1,2,3)")
	}
	if !Subset(Of(), Of(1)) {
		t.Error("empty set is subset of everything")
	}
}

func TestEqual(t *testing.T) {
	if !Of(1, 2, 3).Equal(Of(3, 2, 1)) {
		t.Error("order should not matter")
	}
	if Of(1, 2).Equal(Of(1, 2, 3)) {
		t.Error("different sets reported equal")
	}
	// Different word lengths, same content.
	a := Of(1)
	b := New(1000)
	b.Add(1)
	if !a.Equal(b) {
		t.Error("sets differing only in capacity should be equal")
	}
	if !b.Equal(a) {
		t.Error("Equal should be symmetric")
	}
}

func TestSetOpsInPlace(t *testing.T) {
	a := Of(1, 2, 3)
	a.UnionWith(Of(3, 4, 500))
	if a.Len() != 5 || !a.Contains(500) {
		t.Fatalf("UnionWith wrong: %v", a)
	}
	a.IntersectWith(Of(2, 3, 4))
	if a.Len() != 3 || a.Contains(1) || a.Contains(500) {
		t.Fatalf("IntersectWith wrong: %v", a)
	}
	a.DifferenceWith(Of(3, 999))
	if a.Len() != 2 || a.Contains(3) {
		t.Fatalf("DifferenceWith wrong: %v", a)
	}
}

func TestIntersectWithShorter(t *testing.T) {
	a := Of(1, 500)
	a.IntersectWith(Of(1))
	if a.Len() != 1 || a.Contains(500) {
		t.Fatalf("IntersectWith shorter set wrong: %v", a)
	}
}

func TestString(t *testing.T) {
	if got := Of(5, 1).String(); got != "{1, 5}" {
		t.Errorf("String = %q, want {1, 5}", got)
	}
	if got := Of().String(); got != "{}" {
		t.Errorf("String = %q, want {}", got)
	}
}

func TestElementsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(0)
	for i := 0; i < 200; i++ {
		s.Add(rng.Intn(2000))
	}
	els := s.Elements(nil)
	if !sort.IntsAreSorted(els) {
		t.Fatal("Elements not sorted")
	}
	if len(els) != s.Len() {
		t.Fatalf("len(Elements) = %d, want Len = %d", len(els), s.Len())
	}
}

// randomSet builds a set from a raw value for property tests.
func randomSet(ids []uint16) *Set {
	s := New(0)
	for _, id := range ids {
		s.Add(int(id % 512))
	}
	return s
}

func TestPropInclusionExclusion(t *testing.T) {
	// |a ∨ b| = |a| + |b| - |a ∧ b|
	f := func(as, bs []uint16) bool {
		a, b := randomSet(as), randomSet(bs)
		return OrCard(a, b) == a.Len()+b.Len()-AndCard(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropXorIdentity(t *testing.T) {
	// |a ⊕ b| = |a ∧ ¬b| + |b ∧ ¬a| = |a ∨ b| - |a ∧ b|
	f := func(as, bs []uint16) bool {
		a, b := randomSet(as), randomSet(bs)
		x := XorCard(a, b)
		return x == AndNotCard(a, b)+AndNotCard(b, a) &&
			x == OrCard(a, b)-AndCard(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIntersectsConsistent(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := randomSet(as), randomSet(bs)
		return Intersects(a, b) == (AndCard(a, b) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSymmetry(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := randomSet(as), randomSet(bs)
		return AndCard(a, b) == AndCard(b, a) &&
			OrCard(a, b) == OrCard(b, a) &&
			XorCard(a, b) == XorCard(b, a) &&
			Intersects(a, b) == Intersects(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropUnionMatchesOrCard(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := randomSet(as), randomSet(bs)
		u := a.Clone()
		u.UnionWith(b)
		return u.Len() == OrCard(a, b) && Subset(a, u) && Subset(b, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCloneEqual(t *testing.T) {
	f := func(as []uint16) bool {
		a := randomSet(as)
		return a.Equal(a.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAndCard(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(1024), New(1024)
	for i := 0; i < 200; i++ {
		x.Add(rng.Intn(1024))
		y.Add(rng.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCard(x, y)
	}
}

func BenchmarkIntersects(b *testing.B) {
	x, y := Of(1000), Of(1001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersects(x, y)
	}
}
