package table

import (
	"sync"

	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// The bitmap-accelerated snapshot scan path.
//
// Snapshot Select/SelectWhere scans default to the word-parallel kernel
// (storage.ScanBitmap): the query compiles into a BitmapProgram over
// the partition's attribute-presence matrix, the kernel yields the
// candidate records 64 per word op, and only candidates are decoded.
// The decode set — and therefore the results, every QueryReport field,
// and every Stats delta — is bit-identical to the per-record sidecar
// scan (scanSnapPart/scanSnapPartWhere), which remains the fallback for
// views that predate the matrix and the differential-testing oracle.
// SetBitmapScans(false) forces the sidecar path everywhere; locked mode
// (SetLockedReads) is untouched and stays the full-decode baseline.

// scanScratch is one partition scan's pooled working set: the kernel's
// buffers (resolved attribute rows, candidate bitset, candidate list)
// plus the hit buffer. Pooling them makes the steady-state bitmap scan
// loop allocation-free (see TestBitmapScanSteadyStateZeroAlloc).
type scanScratch struct {
	bm   storage.BitmapScratch
	hits []Result
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

func getScanScratch() *scanScratch {
	return scanScratchPool.Get().(*scanScratch)
}

// releaseScanScratches returns every bitmap-scanned partition's scratch
// to the pool. Callers must be done with the hit slices (mergeScans has
// copied them out). Hit entries are cleared so pooled buffers do not
// pin decoded entities.
func releaseScanScratches(parts []partScan) {
	for i := range parts {
		sc := parts[i].scratch
		if sc == nil {
			continue
		}
		parts[i].scratch = nil
		parts[i].hits = nil
		clear(sc.hits)
		sc.hits = sc.hits[:0]
		scanScratchPool.Put(sc)
	}
}

// selectProgram compiles an attribute-set query (Select's union shape)
// for the kernel.
func selectProgram(q *synopsis.Set) storage.BitmapProgram {
	return storage.BitmapProgram{Attrs: q.Elements(nil), Disjunction: true}
}

// whereProgram compiles a predicate conjunction's required-attribute
// set for the kernel.
func whereProgram(need *synopsis.Set) storage.BitmapProgram {
	return storage.BitmapProgram{Attrs: need.Elements(nil)}
}

// scanSnapPartBitmap is the bitmap-kernel counterpart of scanSnapPart:
// one partition snapshot, attribute-set query q. ok=false means the
// view predates the matrix (nothing was charged); the caller falls back
// to the per-record path.
func scanSnapPartBitmap(ps *partSnap, q *synopsis.Set, prog storage.BitmapProgram) (partScan, bool) {
	scratch := getScanScratch()
	v := ps.reader()
	cands, words, ok := v.ScanBitmap(prog, &scratch.bm)
	if !ok {
		scanScratchPool.Put(scratch)
		return partScan{}, false
	}
	sc := partScan{pid: ps.pid, scratch: scratch, bitmap: true, bitmapWords: words}
	sc.hits = scratch.hits[:0]
	var bytesDec int64
	for i := range cands {
		id, n := cands[i].ID, int64(cands[i].N)
		eid, e, err := decodeRecord(v.Record(id))
		if err != nil {
			panic("table: corrupt record during bitmap scan: " + err.Error())
		}
		bytesDec += n
		// A known candidate provably intersects q (the matrix rows are the
		// entities' exact attribute sets); only unknown-synopsis records
		// need the post-decode test — mirroring scanSnapPart.
		if q == nil || cands[i].Known || synopsis.Intersects(e.Synopsis(), q) {
			sc.hits = append(sc.hits, Result{ID: eid, Entity: e})
			sc.bytesHit += n
		}
	}
	scratch.hits = sc.hits
	sc.finishBitmap(v, len(cands), bytesDec)
	return sc, true
}

// scanSnapPartWhereBitmap is the bitmap-kernel counterpart of
// scanSnapPartWhere: candidates have (or might have — nil sidecar) all
// predicate attributes; each is decoded and tested against the full
// conjunction.
func scanSnapPartWhereBitmap(ps *partSnap, preds []Pred, prog storage.BitmapProgram) (partScan, bool) {
	scratch := getScanScratch()
	v := ps.reader()
	cands, words, ok := v.ScanBitmap(prog, &scratch.bm)
	if !ok {
		scanScratchPool.Put(scratch)
		return partScan{}, false
	}
	sc := partScan{pid: ps.pid, scratch: scratch, bitmap: true, bitmapWords: words}
	sc.hits = scratch.hits[:0]
	var bytesDec int64
	for i := range cands {
		id, n := cands[i].ID, int64(cands[i].N)
		eid, e, err := decodeRecord(v.Record(id))
		if err != nil {
			panic("table: corrupt record during bitmap scan: " + err.Error())
		}
		bytesDec += n
		if entityMatches(e, preds) {
			sc.hits = append(sc.hits, Result{ID: eid, Entity: e})
			sc.bytesHit += n
		}
	}
	scratch.hits = sc.hits
	sc.finishBitmap(v, len(cands), bytesDec)
	return sc, true
}

// finishBitmap fills the visit counters from the bulk-charged view
// state: every live record was visited (and charged), candidates were
// decoded, the rest were skipped by the kernel.
func (sc *partScan) finishBitmap(v recView, decoded int, bytesDec int64) {
	sc.scanned = v.NumRecords()
	sc.bytesRead = v.LiveBytes()
	sc.decoded = decoded
	sc.skipped = sc.scanned - decoded
	sc.bytesSkip = sc.bytesRead - bytesDec
	sc.bitmapHits = int64(decoded)
}

// SetBitmapScans switches snapshot Select/SelectWhere scans between the
// word-parallel bitmap kernel (default, true) and the per-record
// sidecar path. The sidecar path is retained as the comparison baseline
// for benchmarks and the differential equivalence tests; results,
// QueryReport, and Stats deltas are identical in both modes. Locked
// mode (SetLockedReads) is unaffected.
func (t *Table) SetBitmapScans(on bool) {
	t.bitmapScans.Store(on)
}

// BitmapScans reports whether the bitmap kernel is active for snapshot
// scans.
func (t *Table) BitmapScans() bool { return t.bitmapScans.Load() }
