package table

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// buildDiffTable deterministically grows one table for the differential
// property test: random entities, churn (deletes and updates), and one
// frozen partition. Driving several tables with the same seed yields
// byte-identical tables, so cold-tier counters (which depend on the
// stateful resident-block LRU) can be compared across read modes
// without one mode's scans warming another's cache.
func buildDiffTable(seed int64) (*Table, *storage.Stats) {
	rng := rand.New(rand.NewSource(seed))
	stats := &storage.Stats{}
	tbl := New(Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.35, MaxSize: 60}),
		Stats:       stats,
	})
	var ids []core.EntityID
	for i := 0; i < 600; i++ {
		ids = append(ids, tbl.Insert(randomTestEntity(rng)))
	}
	for _, id := range ids {
		switch rng.Intn(4) {
		case 0:
			tbl.Delete(id)
		case 1:
			tbl.Update(id, randomTestEntity(rng))
		}
	}
	// Freeze the two largest partitions so every probe crosses both
	// tiers. Partition growth is deterministic, so every same-seed table
	// freezes the same data.
	parts := tbl.Partitions()
	for f := 0; f < 2 && f < len(parts); f++ {
		best := -1
		for i, pv := range parts {
			if pv.Entities == 0 {
				continue
			}
			if best < 0 || pv.Entities > parts[best].Entities {
				best = i
			}
		}
		if best < 0 {
			break
		}
		tbl.FreezePartition(parts[best].ID)
		parts = append(parts[:best], parts[best+1:]...)
	}
	return tbl, stats
}

// diffMode is one arm of the differential test: a read-mode
// configuration applied to its own identically-driven table.
type diffMode struct {
	name  string
	tbl   *Table
	stats *storage.Stats
}

func diffModes(seed int64) []diffMode {
	modes := []diffMode{{name: "bitmap"}, {name: "sidecar"}, {name: "locked"}}
	for i := range modes {
		modes[i].tbl, modes[i].stats = buildDiffTable(seed)
	}
	modes[1].tbl.SetBitmapScans(false)
	modes[2].tbl.SetLockedReads(true)
	return modes
}

// ioColdDelta runs fn and returns the table's ordinary I/O counter
// deltas (pages, bytes, records read) plus the cold-tier deltas.
func ioColdDelta(stats *storage.Stats, fn func()) [5]int64 {
	p0, _, b0, _, r0 := stats.Snapshot()
	cp0, cb0 := stats.ColdSnapshot()
	fn()
	p1, _, b1, _, r1 := stats.Snapshot()
	cp1, cb1 := stats.ColdSnapshot()
	return [5]int64{p1 - p0, b1 - b0, r1 - r0, cp1 - cp0, cb1 - cb0}
}

func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Entity.Equal(b[i].Entity) {
			return false
		}
	}
	return true
}

// TestBitmapDifferentialEquivalence is the three-way property test: on
// several seeds, the bitmap kernel, the per-record sidecar path, and
// the locked full-decode baseline return bit-identical results,
// QueryReport counters, and simulated-I/O deltas — ordinary and
// cold-tier — for Select and SelectWhere probes spanning both storage
// tiers.
func TestBitmapDifferentialEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			modes := diffModes(seed)
			if !modes[0].tbl.BitmapScans() {
				t.Fatal("bitmap scans not on by default")
			}

			type outcome struct {
				res []Result
				rep QueryReport
				io  [5]int64
			}
			probe := func(run func(*Table) ([]Result, QueryReport)) [3]outcome {
				var out [3]outcome
				for i, m := range modes {
					out[i].io = ioColdDelta(m.stats, func() {
						out[i].res, out[i].rep = run(m.tbl)
					})
				}
				return out
			}
			check := func(desc string, out [3]outcome) {
				t.Helper()
				for i := 1; i < len(modes); i++ {
					if !sameResults(out[0].res, out[i].res) {
						t.Fatalf("%s: %s returned %d hits, %s %d",
							desc, modes[0].name, len(out[0].res), modes[i].name, len(out[i].res))
					}
					if out[0].rep != out[i].rep {
						t.Fatalf("%s: report %s=%+v, %s=%+v",
							desc, modes[0].name, out[0].rep, modes[i].name, out[i].rep)
					}
					if out[0].io != out[i].io {
						t.Fatalf("%s: io delta %s=%v, %s=%v",
							desc, modes[0].name, out[0].io, modes[i].name, out[i].io)
					}
				}
			}

			for p := 0; p < 12; p++ {
				q := synopsis.Of(p%12, (p+5)%12)
				check(fmt.Sprintf("select probe %d", p), probe(func(tbl *Table) ([]Result, QueryReport) {
					return tbl.SelectWithReport(q)
				}))

				preds := []Pred{{Attr: p % 12, Op: CmpOp(p % 5), Value: entity.Int(int64(p * 9 % 100))}}
				if p%3 == 0 {
					preds = append(preds, Pred{Attr: (p + 3) % 12, Op: Ge, Value: entity.Int(0)})
				}
				check(fmt.Sprintf("where probe %d", p), probe(func(tbl *Table) ([]Result, QueryReport) {
					return tbl.SelectWhere(preds)
				}))
			}
		})
	}
}

// TestBitmapScanConcurrentChurn scans captured snapshots through both
// the kernel and the per-record sidecar path while writers churn the
// table with deletes, updates, vacuums, and tier transitions. Both
// paths must agree on every snapshot, and the race detector must stay
// quiet across the kernel's atomic word loads.
func TestBitmapScanConcurrentChurn(t *testing.T) {
	tbl := newTestTable(0.35, 50)
	rng := rand.New(rand.NewSource(5))
	var ids []core.EntityID
	var idMu sync.Mutex
	for i := 0; i < 400; i++ {
		ids = append(ids, tbl.Insert(randomTestEntity(rng)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(6))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			idMu.Lock()
			id := ids[wrng.Intn(len(ids))]
			switch i % 3 {
			case 0:
				tbl.Delete(id)
			case 1:
				tbl.Update(id, randomTestEntity(wrng))
			default:
				ids = append(ids, tbl.Insert(randomTestEntity(wrng)))
			}
			idMu.Unlock()
			if i%97 == 0 {
				tbl.Vacuum()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, pv := range tbl.Partitions() {
				if i%2 == 0 {
					tbl.FreezePartition(pv.ID)
				} else {
					tbl.ThawPartition(pv.ID)
				}
				break
			}
		}
	}()

	for i := 0; i < 300; i++ {
		q := synopsis.Of(i%12, (i+4)%12)
		prog := selectProgram(q)
		snap := tbl.capture()
		for _, ps := range snap.parts {
			if ps.syn == nil || !synopsis.Intersects(ps.syn, q) {
				continue
			}
			bm, ok := scanSnapPartBitmap(ps, q, prog)
			if !ok {
				continue
			}
			sc := scanSnapPart(ps, q)
			if !sameResults(bm.hits, sc.hits) ||
				bm.scanned != sc.scanned || bm.decoded != sc.decoded ||
				bm.skipped != sc.skipped || bm.bytesRead != sc.bytesRead ||
				bm.bytesHit != sc.bytesHit || bm.bytesSkip != sc.bytesSkip {
				t.Errorf("snapshot %d partition %d: bitmap and sidecar scans disagree", i, ps.pid)
			}
			releaseScanScratches([]partScan{bm})
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestBitmapScanSteadyStateZeroAlloc enforces the pooled-scratch
// guarantee: once the pool is warm, a bitmap partition scan that
// decodes nothing performs zero heap allocations.
func TestBitmapScanSteadyStateZeroAlloc(t *testing.T) {
	tbl := newTestTable(0.5, 5000)
	for i := 0; i < 2000; i++ {
		tbl.Insert(mkEnt(i%7, 7+i%5))
	}
	snap := tbl.capture()
	var ps *partSnap
	for _, p := range snap.parts {
		if p.view.NumRecords() > 0 {
			ps = p
			break
		}
	}
	if ps == nil {
		t.Fatal("no populated partition")
	}

	q := synopsis.Of(999) // matches nothing: pure kernel, no decodes
	prog := selectProgram(q)
	parts := make([]partScan, 1)
	run := func() {
		sc, ok := scanSnapPartBitmap(ps, q, prog)
		if !ok {
			t.Fatal("bitmap scan declined")
		}
		if sc.decoded != 0 {
			t.Fatalf("no-match scan decoded %d records", sc.decoded)
		}
		parts[0] = sc
		releaseScanScratches(parts)
	}
	run() // warm the pool and the scratch buffers

	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Fatalf("steady-state bitmap scan allocates %.1f times per run, want 0", n)
	}
}
