package table

import (
	"math/rand"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/synopsis"
)

// TestModelRandomOps drives a long random workload against the table and
// a trivial in-memory model, checking after every phase that contents,
// point lookups, attribute queries, and predicate queries agree exactly.
// This is the end-to-end guard for the interplay of splits, moves,
// deletes, updates, compaction, and zone maps.
func TestModelRandomOps(t *testing.T) {
	for _, strat := range []struct {
		name string
		mk   func() core.Assigner
	}{
		{"cinderella", func() core.Assigner {
			return core.NewCinderella(core.Config{Weight: 0.35, MaxSize: 40})
		}},
		{"cinderella-indexed", func() core.Assigner {
			return core.NewCinderella(core.Config{Weight: 0.35, MaxSize: 40, UseCatalogIndex: true})
		}},
		{"schemaexact", func() core.Assigner { return core.NewSchemaExact(40, core.SizeCount) }},
		{"hash", func() core.Assigner { return core.NewHash(5, core.SizeCount) }},
	} {
		strat := strat
		t.Run(strat.name, func(t *testing.T) {
			runModel(t, strat.mk())
		})
	}
}

func runModel(t *testing.T, assigner core.Assigner) {
	t.Helper()
	tbl := New(Config{Partitioner: assigner})
	model := map[core.EntityID]*entity.Entity{}
	rng := rand.New(rand.NewSource(99))
	var ids []core.EntityID

	randomEntity := func() *entity.Entity {
		e := &entity.Entity{}
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			attr := rng.Intn(12)
			switch rng.Intn(3) {
			case 0:
				e.Set(attr, entity.Int(int64(rng.Intn(100))))
			case 1:
				e.Set(attr, entity.Float(rng.Float64()*100))
			default:
				e.Set(attr, entity.Str(string(rune('a'+rng.Intn(26)))))
			}
		}
		return e
	}

	check := func() {
		t.Helper()
		if tbl.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", tbl.Len(), len(model))
		}
		// Point lookups.
		for id, want := range model {
			got, ok := tbl.Get(id)
			if !ok || !got.Equal(want) {
				t.Fatalf("Get(%d) = %v,%v; model %v", id, got, ok, want)
			}
		}
		// Attribute query agrees with the model for a few probes.
		for probe := 0; probe < 12; probe += 3 {
			res := tbl.Select(probe)
			want := 0
			for _, e := range model {
				if e.Has(probe) {
					want++
				}
			}
			if len(res) != want {
				t.Fatalf("Select(%d) = %d, model %d", probe, len(res), want)
			}
		}
		// Predicate query agrees for a numeric probe.
		preds := []Pred{{Attr: 3, Op: Lt, Value: entity.Int(50)}}
		res, _ := tbl.SelectWhere(preds)
		want := 0
		for _, e := range model {
			if entityMatches(e, preds) {
				want++
			}
		}
		if len(res) != want {
			t.Fatalf("SelectWhere = %d, model %d", len(res), want)
		}
	}

	for phase := 0; phase < 8; phase++ {
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 6 || len(ids) == 0: // insert
				e := randomEntity()
				id := tbl.Insert(e)
				if _, dup := model[id]; dup {
					t.Fatalf("id %d reused", id)
				}
				model[id] = e
				ids = append(ids, id)
			case r < 8: // delete
				i := rng.Intn(len(ids))
				id := ids[i]
				ok := tbl.Delete(id)
				_, inModel := model[id]
				if ok != inModel {
					t.Fatalf("Delete(%d) = %v, model has %v", id, ok, inModel)
				}
				delete(model, id)
				ids = append(ids[:i], ids[i+1:]...)
			default: // update
				i := rng.Intn(len(ids))
				id := ids[i]
				e := randomEntity()
				if !tbl.Update(id, e) {
					t.Fatalf("Update(%d) failed", id)
				}
				model[id] = e
			}
		}
		if phase%3 == 2 {
			tbl.Compact(0.3)
			tbl.RebuildZoneMaps()
		}
		check()
	}
}

// TestModelWorkloadBased runs the model test under workload-based
// synopses, where placement and pruning use different synopses.
func TestModelWorkloadBased(t *testing.T) {
	queries := []*synopsis.Set{synopsis.Of(0, 1), synopsis.Of(5), synopsis.Of(9, 10, 11)}
	tbl := New(Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.4, MaxSize: 30}),
		Synopsizer:  WorkloadBased{Queries: queries},
	})
	model := map[core.EntityID]*entity.Entity{}
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 1500; i++ {
		e := &entity.Entity{}
		for a := 0; a < 12; a++ {
			if rng.Float64() < 0.25 {
				e.Set(a, entity.Int(int64(a)))
			}
		}
		if e.NumAttrs() == 0 {
			e.Set(0, entity.Int(0))
		}
		id := tbl.Insert(e)
		model[id] = e
	}
	for probe := 0; probe < 12; probe++ {
		res := tbl.Select(probe)
		want := 0
		for _, e := range model {
			if e.Has(probe) {
				want++
			}
		}
		if len(res) != want {
			t.Fatalf("Select(%d) = %d, model %d", probe, len(res), want)
		}
	}
}
