package table

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/metrics"
	"cinderella/internal/obs"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// sizedSnapshot captures the table's live contents as metrics.Sized
// slices — entities and partitions, in both entity-count and record-byte
// SIZE() units — for the offline Definition 1 computation.
func sizedSnapshot(t *testing.T, tbl *Table) (entCnt, entByte, partCnt, partByte []metrics.Sized) {
	t.Helper()
	tbl.mu.RLock()
	defer tbl.mu.RUnlock()
	for pid, seg := range tbl.segs {
		syn := tbl.attrSyn[pid]
		var n, b int64
		seg.Scan(func(_ storage.RecordID, rec []byte) bool {
			_, e, err := decodeRecord(rec)
			if err != nil {
				t.Fatalf("corrupt record: %v", err)
			}
			entCnt = append(entCnt, metrics.Sized{Syn: e.Synopsis(), Size: 1})
			entByte = append(entByte, metrics.Sized{Syn: e.Synopsis(), Size: int64(len(rec))})
			n++
			b += int64(len(rec))
			return true
		})
		if syn == nil {
			if n != 0 {
				t.Fatalf("partition %d has %d records but no synopsis", pid, n)
			}
			continue
		}
		partCnt = append(partCnt, metrics.Sized{Syn: syn, Size: n})
		partByte = append(partByte, metrics.Sized{Syn: syn, Size: b})
	}
	return
}

// TestStreamingEfficiencyMatchesMetrics is the exactness property test:
// replaying a random attribute-set workload against a loaded table, the
// registry's streaming EFFICIENCY must equal the offline
// metrics.Efficiency of Definition 1 bit-for-bit — in entity-count units
// and in record-byte units. This holds because partition synopses are
// exact: a query scans a partition iff the synopsis intersects, and every
// record it returns is exactly a Definition 1 relevant entity.
func TestStreamingEfficiencyMatchesMetrics(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		rng := rand.New(rand.NewSource(seed))
		reg := obs.New(obs.Options{EffWindow: 1024})
		tbl := New(Config{
			Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 50}),
			Obs:         reg,
		})
		fillTable(tbl, 1500, seed)

		// Static partitioning from here on: snapshot it for the offline
		// computation, then replay the workload.
		entCnt, entByte, partCnt, partByte := sizedSnapshot(t, tbl)

		var workload []*synopsis.Set
		for q := 0; q < 60; q++ {
			attrs := make([]int, 1+rng.Intn(4))
			for i := range attrs {
				attrs[i] = rng.Intn(140)
			}
			workload = append(workload, synopsis.Of(attrs...))
		}

		retBefore := reg.Counter(obs.CEntitiesReturned)
		scanBefore := reg.Counter(obs.CEntitiesScanned)
		for _, q := range workload {
			tbl.SelectWithReport(q)
		}

		// Integer sums must match the offline double loop exactly.
		var rel, read int64
		for _, q := range workload {
			for _, e := range entCnt {
				if synopsis.Intersects(e.Syn, q) {
					rel += e.Size
				}
			}
			for _, p := range partCnt {
				if synopsis.Intersects(p.Syn, q) {
					read += p.Size
				}
			}
		}
		if got := reg.Counter(obs.CEntitiesReturned) - retBefore; got != rel {
			t.Fatalf("seed %d: streamed relevant = %d, offline = %d", seed, got, rel)
		}
		if got := reg.Counter(obs.CEntitiesScanned) - scanBefore; got != read {
			t.Fatalf("seed %d: streamed read = %d, offline = %d", seed, got, read)
		}

		// And the ratios are therefore identical floats, not just close.
		offline := metrics.Efficiency(entCnt, partCnt, workload)
		if got := reg.Efficiency(); got != offline {
			t.Fatalf("seed %d: streaming EFFICIENCY %v != offline %v", seed, got, offline)
		}
		offlineBytes := metrics.Efficiency(entByte, partByte, workload)
		if got := reg.EfficiencyBytes(); got != offlineBytes {
			t.Fatalf("seed %d: streaming byte EFFICIENCY %v != offline %v", seed, got, offlineBytes)
		}

		// The window holds the whole replay, so it agrees too.
		winEff, winN := reg.WindowEfficiency()
		if winN != len(workload) || winEff != offline {
			t.Fatalf("seed %d: window EFFICIENCY %v over %d queries, want %v over %d",
				seed, winEff, winN, offline, len(workload))
		}

		// The partition gauge tracks the live catalog.
		if got, want := reg.Partitions(), int64(tbl.NumPartitions()); got != want {
			t.Fatalf("seed %d: partitions gauge = %d, table has %d", seed, got, want)
		}
	}
}

// TestSetParallelismRace flips the scan-worker bound while queries,
// inserts, and stats reads are in flight. Run under -race this is the
// regression test for the parallelism field's atomic conversion.
func TestSetParallelismRace(t *testing.T) {
	tbl := newParTable(0)
	tbl.SetObserver(obs.New(obs.Options{}))
	fillTable(tbl, 600, 13)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Flipper: hammer SetParallelism through its whole range.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tbl.SetParallelism(i % 9) // 0 restores GOMAXPROCS
		}
	}()

	// Writer: keeps partitions changing under the flips.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(17))
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := &entity.Entity{}
			a := 8 + rng.Intn(64)
			e.Set(a, entity.Int(int64(a)))
			e.Set(1, entity.Float(float64(rng.Intn(1000))))
			tbl.Insert(e)
		}
	}()

	// Readers: every query path plus the stats accessors.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					tbl.Select(8 + rng.Intn(64))
				case 1:
					tbl.SelectWhere([]Pred{{Attr: 1, Op: Lt, Value: entity.Float(500)}})
				case 2:
					tbl.QueryStats()
				case 3:
					tbl.ScanAll()
				}
			}
		}(int64(r))
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestTraceLifecycle drives a partition through its whole life —
// creation, inserts, a split with physical moves, deletes, and the final
// drop — and checks the event ring recorded the story in order.
func TestTraceLifecycle(t *testing.T) {
	reg := obs.New(obs.Options{TraceCap: 1 << 16})
	tbl := New(Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 50}),
		Obs:         reg,
	})

	rng := rand.New(rand.NewSource(5))
	var ids []core.EntityID
	for i := 0; i < 1000; i++ {
		class := rng.Intn(4)
		e := &entity.Entity{}
		base := 8 + class*16
		for j := 0; j < 5; j++ {
			a := base + rng.Intn(16)
			e.Set(a, entity.Int(int64(a)))
		}
		ids = append(ids, tbl.Insert(e))
	}
	for _, id := range ids {
		if !tbl.Delete(id) {
			t.Fatalf("delete of %d failed", id)
		}
	}

	if n := tbl.Len(); n != 0 {
		t.Fatalf("table still holds %d entities", n)
	}
	if n := tbl.NumPartitions(); n != 0 {
		t.Fatalf("table still holds %d partitions", n)
	}
	if got := reg.Partitions(); got != 0 {
		t.Fatalf("partitions gauge = %d, want 0", got)
	}

	dump := reg.TraceDump()
	if len(dump) == 0 {
		t.Fatal("empty trace")
	}

	// The very first events: a partition is born, then the first entity
	// moves in.
	if dump[0].Kind != obs.EvNewPartition {
		t.Fatalf("first event is %s, want new-partition", dump[0].Kind)
	}
	if dump[1].Kind != obs.EvInsert || dump[1].To != dump[0].To {
		t.Fatalf("second event is %+v, want insert into partition %d", dump[1], dump[0].To)
	}

	// Sequence numbers are contiguous (nothing was evicted at this cap).
	for i, ev := range dump {
		if ev.Seq != uint64(i) {
			t.Fatalf("dump[%d].Seq = %d; eviction unexpected at cap %d", i, ev.Seq, 1<<16)
		}
	}

	first := map[obs.EventKind]int{}
	last := map[obs.EventKind]int{}
	for i, ev := range dump {
		if _, ok := first[ev.Kind]; !ok {
			first[ev.Kind] = i
		}
		last[ev.Kind] = i
	}
	for _, k := range []obs.EventKind{obs.EvNewPartition, obs.EvInsert, obs.EvSplit, obs.EvMove, obs.EvDelete, obs.EvDrop} {
		if _, ok := first[k]; !ok {
			t.Fatalf("no %s event in trace", k)
		}
	}

	// Lifecycle order: inserts precede the first split, which precedes
	// the deletes, and the trace ends with the last partition dropping
	// right after the delete that emptied it.
	if !(first[obs.EvInsert] < first[obs.EvSplit]) {
		t.Fatalf("first split (%d) before first insert (%d)", first[obs.EvSplit], first[obs.EvInsert])
	}
	if !(first[obs.EvSplit] < first[obs.EvDelete]) {
		t.Fatalf("first delete (%d) before first split (%d)", first[obs.EvDelete], first[obs.EvSplit])
	}
	lastEv := dump[len(dump)-1]
	if lastEv.Kind != obs.EvDrop {
		t.Fatalf("last event is %s, want drop", lastEv.Kind)
	}
	if prev := dump[len(dump)-2]; prev.Kind != obs.EvDelete || prev.From != lastEv.From {
		t.Fatalf("penultimate event %+v should be the delete emptying partition %d", prev, lastEv.From)
	}

	// A split names its source and both targets, and the moves that
	// redistribute it reference real partitions.
	sp := dump[first[obs.EvSplit]]
	if sp.From == 0 && sp.To == 0 {
		t.Fatalf("split event carries no partitions: %+v", sp)
	}
	if sp.To == sp.To2 {
		t.Fatalf("split targets identical: %+v", sp)
	}

	// Counters agree with what the trace witnessed.
	if got := reg.Counter(obs.CInserts); got != 1000 {
		t.Fatalf("CInserts = %d, want 1000", got)
	}
	if got := reg.Counter(obs.CDeletes); got != 1000 {
		t.Fatalf("CDeletes = %d, want 1000", got)
	}
	if reg.Counter(obs.CSplits) < 1 {
		t.Fatal("no splits counted")
	}
	if created, dropped := reg.Counter(obs.CPartitionsCreated), reg.Counter(obs.CPartitionsDropped); created != dropped {
		t.Fatalf("created %d partitions but dropped %d; table is empty", created, dropped)
	}
	if got := reg.Counter(obs.CRatings); got == 0 {
		t.Fatal("no ratings counted")
	}

	// The insert latency histogram saw every insert.
	snap := reg.Snapshot()
	if got := snap.Histograms["cinderella_insert_duration_seconds"].Count; got != 1000 {
		t.Fatalf("insert histogram count = %d, want 1000", got)
	}
}

// benchmarkInsert drives the full insert path (placement, storage write,
// synopsis upkeep) with or without telemetry; the pair quantifies the
// instrumentation overhead the obs acceptance budget caps at 5 %.
func benchmarkInsert(b *testing.B, reg *obs.Registry) {
	rng := rand.New(rand.NewSource(2))
	pool := make([]*entity.Entity, 4096)
	for i := range pool {
		class := rng.Intn(8)
		e := &entity.Entity{}
		base := 8 + class*16
		for j := 0; j < 5; j++ {
			a := base + rng.Intn(16)
			e.Set(a, entity.Int(int64(a)))
		}
		pool[i] = e
	}
	tbl := New(Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 5000}),
		Obs:         reg,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(pool[i%len(pool)].Clone())
	}
}

func BenchmarkInsertUninstrumented(b *testing.B) { benchmarkInsert(b, nil) }

func BenchmarkInsertInstrumented(b *testing.B) {
	benchmarkInsert(b, obs.New(obs.Options{}))
}
