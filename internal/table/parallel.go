package table

import (
	"sync"
	"sync/atomic"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// Parallel partition scans.
//
// Queries that survive pruning scan each remaining partition
// independently: partitions are disjoint, and each scan runs either
// against an immutable snapshot (default mode) or under the table's read
// lock, so the scans are embarrassingly parallel in both modes.
// runScans fans the per-partition work out over a bounded worker pool.
// Determinism is preserved by construction — worker i-th unit writes only
// slot i of a pre-sized result array, and the caller concatenates slots in
// ascending partition-id order, so the result bytes and every QueryReport
// counter are identical to a serial scan regardless of scheduling.

// runScans executes scan(i) for every i in [0, n), using up to
// t.parallelism workers (Config.Parallelism; 1 opts out). scan must write
// only state owned by its index.
func (t *Table) runScans(n int, scan func(i int)) {
	workers := int(t.parallelism.Load())
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			scan(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				scan(i)
			}
		}()
	}
	wg.Wait()
}

// runTimedScans fills parts[i] = scan(i) through the worker pool,
// additionally stamping each slot's scan wall time when timed (sampled
// spans record per-partition timing; everyone else skips the clock
// reads).
func (t *Table) runTimedScans(parts []partScan, timed bool, scan func(i int) partScan) {
	t.runScans(len(parts), func(i int) {
		if !timed {
			parts[i] = scan(i)
			return
		}
		st := time.Now()
		parts[i] = scan(i)
		parts[i].ns = time.Since(st).Nanoseconds()
	})
}

// partScan is one partition's private scan buffer: hits in storage order
// plus the records-visited and byte-volume counters. decoded and skipped
// split the visited records by whether the sidecar synopsis let the scan
// avoid the decode; they feed the telemetry decode counters, the heat
// map, and query spans only — never QueryReport.
type partScan struct {
	pid       core.PartitionID
	hits      []Result
	scanned   int
	decoded   int   // records actually decoded
	skipped   int   // records pruned (sidecar word-AND or bitmap kernel) without decoding
	bytesRead int64 // live record bytes visited
	bytesHit  int64 // live record bytes of hits (relevant to the query)
	bytesSkip int64 // live record bytes of skipped records
	ns        int64 // scan wall time; recorded only for sampled spans

	// Bitmap-kernel attribution (see bitmap.go). scratch is the pooled
	// buffer set backing hits; the query path releases it after the hits
	// have been merged and the span published.
	bitmap      bool
	bitmapWords int64
	bitmapHits  int64
	scratch     *scanScratch
}

// scanPartition scans one partition's segment, decoding every live record
// (the union branch for this partition) and filtering by the query
// synopsis. A nil q keeps every record (full scan).
func (t *Table) scanPartition(pid core.PartitionID, q *synopsis.Set) partScan {
	seg, hot := t.segs[pid]
	if !hot {
		// Frozen partition: locked mode scans the cold view in place (the
		// segment is immutable under the read lock anyway). QueryReport
		// counters are identical to the hot path.
		return scanSnapPart(&partSnap{pid: pid, cold: t.cold[pid].View()}, q)
	}
	ps := partScan{pid: pid}
	seg.Scan(func(rid storage.RecordID, rec []byte) bool {
		ps.scanned++
		ps.bytesRead += int64(len(rec))
		id, e, err := decodeRecord(rec)
		if err != nil {
			panic("table: corrupt record during scan: " + err.Error())
		}
		ps.decoded++
		if q == nil || synopsis.Intersects(e.Synopsis(), q) {
			ps.hits = append(ps.hits, Result{ID: id, Entity: e})
			ps.bytesHit += int64(len(rec))
		}
		return true
	})
	return ps
}

// scanPartitionWhere scans one partition's segment filtering by value
// predicates (conjunction).
func (t *Table) scanPartitionWhere(pid core.PartitionID, preds []Pred) partScan {
	seg, hot := t.segs[pid]
	if !hot {
		return scanSnapPartWhere(&partSnap{pid: pid, cold: t.cold[pid].View()}, preds, predNeed(preds))
	}
	ps := partScan{pid: pid}
	seg.Scan(func(_ storage.RecordID, rec []byte) bool {
		ps.scanned++
		ps.bytesRead += int64(len(rec))
		id, e, err := decodeRecord(rec)
		if err != nil {
			panic("table: corrupt record during scan: " + err.Error())
		}
		ps.decoded++
		if entityMatches(e, preds) {
			ps.hits = append(ps.hits, Result{ID: id, Entity: e})
			ps.bytesHit += int64(len(rec))
		}
		return true
	})
	return ps
}

// mergeScans concatenates per-partition buffers in slot (= partition-id)
// order and folds their counters into rep.
func mergeScans(parts []partScan, rep *QueryReport) []Result {
	var out []Result
	total := 0
	for i := range parts {
		total += len(parts[i].hits)
	}
	if total > 0 {
		out = make([]Result, 0, total)
	}
	for i := range parts {
		rep.EntitiesScanned += parts[i].scanned
		rep.EntitiesReturned += len(parts[i].hits)
		rep.BytesRead += parts[i].bytesRead
		rep.BytesRelevant += parts[i].bytesHit
		out = append(out, parts[i].hits...)
	}
	return out
}
