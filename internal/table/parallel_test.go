package table

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/synopsis"
)

// fillTable inserts n entities spread over k attribute classes so the
// partitioner produces many partitions and queries prune some of them.
func fillTable(tbl *Table, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		class := rng.Intn(8)
		e := &entity.Entity{}
		e.Set(0, entity.Int(int64(i)))
		base := 8 + class*16
		for j := 0; j < 5; j++ {
			a := base + rng.Intn(16)
			e.Set(a, entity.Int(int64(a)))
		}
		e.Set(1, entity.Float(float64(rng.Intn(1000))))
		tbl.Insert(e)
	}
}

func newParTable(parallelism int) *Table {
	return New(Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 50}),
		Parallelism: parallelism,
	})
}

// TestParallelSelectMatchesSerial: the parallel scan must be
// indistinguishable from the serial one — same results in the same order
// and identical QueryReport counters.
func TestParallelSelectMatchesSerial(t *testing.T) {
	serial := newParTable(1)
	parallel := newParTable(8)
	fillTable(serial, 2000, 42)
	fillTable(parallel, 2000, 42)

	queries := [][]int{{8}, {8, 24, 40}, {0}, {99}, {10, 11, 12, 13}}
	for qi, attrs := range queries {
		sres, srep := serial.SelectWithReport(synopsis.Of(attrs...))
		pres, prep := parallel.SelectWithReport(synopsis.Of(attrs...))
		if srep != prep {
			t.Fatalf("query %d: report mismatch: serial %+v, parallel %+v", qi, srep, prep)
		}
		if len(sres) != len(pres) {
			t.Fatalf("query %d: %d results serial, %d parallel", qi, len(sres), len(pres))
		}
		for i := range sres {
			if sres[i].ID != pres[i].ID || !sres[i].Entity.Equal(pres[i].Entity) {
				t.Fatalf("query %d: result %d differs: %v vs %v", qi, i, sres[i], pres[i])
			}
		}
	}

	// Same for predicate queries over zone maps.
	preds := []Pred{{Attr: 1, Op: Lt, Value: entity.Float(250)}}
	sres, srep := serial.SelectWhere(preds)
	pres, prep := parallel.SelectWhere(preds)
	if srep != prep {
		t.Fatalf("SelectWhere report mismatch: %+v vs %+v", srep, prep)
	}
	if len(sres) != len(pres) {
		t.Fatalf("SelectWhere: %d serial, %d parallel", len(sres), len(pres))
	}
	for i := range sres {
		if sres[i].ID != pres[i].ID || !sres[i].Entity.Equal(pres[i].Entity) {
			t.Fatalf("SelectWhere result %d differs", i)
		}
	}

	// And full scans.
	sall, pall := serial.ScanAll(), parallel.ScanAll()
	if len(sall) != len(pall) {
		t.Fatalf("ScanAll: %d serial, %d parallel", len(sall), len(pall))
	}
	for i := range sall {
		if sall[i].ID != pall[i].ID {
			t.Fatalf("ScanAll order differs at %d: %d vs %d", i, sall[i].ID, pall[i].ID)
		}
	}
}

// TestSelectsOverlap asserts that two Selects can run concurrently: a
// Select completes while another reader holds the table's read lock,
// which would deadlock if Select still took the exclusive lock.
func TestSelectsOverlap(t *testing.T) {
	tbl := newParTable(0)
	fillTable(tbl, 500, 7)

	tbl.mu.RLock()
	done := make(chan int, 1)
	go func() {
		done <- len(tbl.Select(8))
	}()
	select {
	case <-done:
		// Select finished under a held read lock: reads overlap.
	case <-time.After(5 * time.Second):
		tbl.mu.RUnlock()
		t.Fatal("Select blocked behind a read lock; reads do not overlap")
	}
	tbl.mu.RUnlock()
}

// TestConcurrentReadersOneWriter races read-only queries against a
// mutating writer; run under -race this validates the RWMutex conversion
// and the parallel scan workers.
func TestConcurrentReadersOneWriter(t *testing.T) {
	tbl := newParTable(0)
	fillTable(tbl, 800, 11)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// One writer: inserts, deletes, updates, compaction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		var ids []core.EntityID
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 5 {
			case 0, 1, 2:
				e := &entity.Entity{}
				a := 8 + rng.Intn(64)
				e.Set(a, entity.Int(int64(a)))
				e.Set(1, entity.Float(float64(rng.Intn(1000))))
				ids = append(ids, tbl.Insert(e))
			case 3:
				if len(ids) > 0 {
					tbl.Delete(ids[rng.Intn(len(ids))])
				}
			case 4:
				tbl.Compact(0.25)
			}
		}
	}()

	// Several readers hammering every read path.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(5) {
				case 0:
					tbl.Select(8 + rng.Intn(64))
				case 1:
					tbl.Get(core.EntityID(1 + rng.Intn(800)))
				case 2:
					tbl.ScanAll()
				case 3:
					tbl.SelectWhere([]Pred{{Attr: 1, Op: Lt, Value: entity.Float(500)}})
				case 4:
					tbl.Partitions()
				}
			}
		}(int64(r))
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// BenchmarkSelectParallel compares the serial scan against the pooled
// parallel scan on the same data and query.
func BenchmarkSelectParallel(b *testing.B) {
	for _, par := range []int{1, 0} {
		name := "serial"
		if par == 0 {
			name = fmt.Sprintf("parallel-%d", newParTable(0).parallelism.Load())
		}
		b.Run(name, func(b *testing.B) {
			tbl := newParTable(par)
			fillTable(tbl, 20000, 5)
			q := synopsis.Of(8, 24, 40, 56, 72, 88, 104, 120)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _ := tbl.SelectWithReport(q)
				if len(res) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}
