package table

import (
	"sort"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// Result is one query hit: the entity id and a decoded copy.
type Result struct {
	ID     core.EntityID
	Entity *entity.Entity
}

// QueryReport describes one query execution for experiments.
type QueryReport struct {
	PartitionsTotal   int
	PartitionsTouched int
	PartitionsPruned  int
	EntitiesScanned   int
	EntitiesReturned  int
}

// Select returns all entities instantiating at least one of the given
// attributes — the paper's
//
//	SELECT … WHERE a1 IS NOT NULL OR a2 IS NOT NULL …
//
// query shape. Partitions whose attribute synopsis is disjoint from the
// query are pruned without touching their data.
func (t *Table) Select(attrs ...int) []Result {
	res, _ := t.SelectWithReport(synopsis.Of(attrs...))
	return res
}

// SelectSynopsis runs Select for a prepared query synopsis.
func (t *Table) SelectSynopsis(q *synopsis.Set) []Result {
	res, _ := t.SelectWithReport(q)
	return res
}

// SelectWithReport runs the query and also returns execution counters.
func (t *Table) SelectWithReport(q *synopsis.Set) ([]Result, QueryReport) {
	t.mu.Lock()
	defer t.mu.Unlock()

	var rep QueryReport
	var out []Result

	pids := make([]core.PartitionID, 0, len(t.segs))
	for pid := range t.segs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	rep.PartitionsTotal = len(pids)
	for _, pid := range pids {
		syn := t.attrSyn[pid]
		if syn == nil || !synopsis.Intersects(syn, q) {
			rep.PartitionsPruned++
			continue
		}
		rep.PartitionsTouched++
		t.scanPartition(pid, q, &out, &rep)
	}

	t.queries.Queries++
	t.queries.PartitionsTouched += int64(rep.PartitionsTouched)
	t.queries.PartitionsPruned += int64(rep.PartitionsPruned)
	t.queries.EntitiesReturned += int64(rep.EntitiesReturned)
	t.queries.EntitiesScanned += int64(rep.EntitiesScanned)
	return out, rep
}

// scanPartition scans one partition's segment, decoding every live record
// (the union branch for this partition) and filtering by the query.
func (t *Table) scanPartition(pid core.PartitionID, q *synopsis.Set, out *[]Result, rep *QueryReport) {
	seg := t.segs[pid]
	seg.Scan(func(rid storage.RecordID, rec []byte) bool {
		rep.EntitiesScanned++
		id, e, err := decodeRecord(rec)
		if err != nil {
			panic("table: corrupt record during scan: " + err.Error())
		}
		if synopsis.Intersects(e.Synopsis(), q) {
			rep.EntitiesReturned++
			*out = append(*out, Result{ID: id, Entity: e})
		}
		return true
	})
}

// ScanAll returns every live entity (a full table scan over all
// partitions, no pruning possible).
func (t *Table) ScanAll() []Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Result
	pids := make([]core.PartitionID, 0, len(t.segs))
	for pid := range t.segs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		t.segs[pid].Scan(func(rid storage.RecordID, rec []byte) bool {
			id, e, err := decodeRecord(rec)
			if err != nil {
				panic("table: corrupt record during scan: " + err.Error())
			}
			out = append(out, Result{ID: id, Entity: e})
			return true
		})
	}
	return out
}
