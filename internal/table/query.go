package table

import (
	"strconv"
	"strings"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// Result is one query hit: the entity id and a decoded copy.
type Result struct {
	ID     core.EntityID
	Entity *entity.Entity
}

// QueryReport describes one query execution for experiments and the
// streaming EFFICIENCY estimator. The json tags are the service-layer
// wire format (GET /v1/query-report).
type QueryReport struct {
	PartitionsTotal   int `json:"partitions_total"`
	PartitionsTouched int `json:"partitions_touched"`
	PartitionsPruned  int `json:"partitions_pruned"`
	EntitiesScanned   int `json:"entities_scanned"`
	EntitiesReturned  int `json:"entities_returned"`
	// BytesRead is the live record bytes of every record visited in the
	// non-pruned partitions — Definition 1's per-query denominator with
	// SIZE() in bytes. BytesRelevant is the subset belonging to returned
	// (relevant) records, the matching numerator.
	BytesRead     int64 `json:"bytes_read"`
	BytesRelevant int64 `json:"bytes_relevant"`
}

// Select returns all entities instantiating at least one of the given
// attributes — the paper's
//
//	SELECT … WHERE a1 IS NOT NULL OR a2 IS NOT NULL …
//
// query shape. Partitions whose attribute synopsis is disjoint from the
// query are pruned without touching their data.
func (t *Table) Select(attrs ...int) []Result {
	res, _ := t.SelectWithReport(synopsis.Of(attrs...))
	return res
}

// SelectSynopsis runs Select for a prepared query synopsis.
func (t *Table) SelectSynopsis(q *synopsis.Set) []Result {
	res, _ := t.SelectWithReport(q)
	return res
}

// SelectWithReport runs the query and also returns execution counters.
// Surviving partitions are scanned by the worker pool (see parallel.go);
// results arrive in ascending partition-id order, identical to a serial
// scan. In the default snapshot mode the query runs against a captured
// consistent cut and never takes the table lock; in locked mode (see
// SetLockedReads) it holds the shared read lock for the whole scan. The
// results and every QueryReport counter are identical in both modes.
func (t *Table) SelectWithReport(q *synopsis.Set) ([]Result, QueryReport) {
	return t.SelectSpanned(q, t.observer().StartQuery(obs.KindSelect))
}

// SelectSpanned runs SelectWithReport filling an externally created
// query span — a shard fan-out child or a forced trace. sp may be nil
// (heat accounting still happens). Root spans are retained by the
// registry in FinishQuery; child spans by their parent's coordinator.
func (t *Table) SelectSpanned(q *synopsis.Set, sp *obs.QuerySpan) ([]Result, QueryReport) {
	if sp.WantDetail() {
		sp.SetQuery(t.describeSelect(q))
	}
	// Record the query's attribute shape into the recent-mix ring; the
	// reclusterer derives its workload-relevance term from it.
	t.observer().NoteQueryShape(q)
	if t.lockedReads.Load() {
		return t.selectLocked(q, sp)
	}
	return t.selectSnap(q, sp)
}

func (t *Table) selectLocked(q *synopsis.Set, sp *obs.QuerySpan) ([]Result, QueryReport) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	start := t.obsStart()

	var rep QueryReport
	pids := t.sortedPIDs()
	rep.PartitionsTotal = len(pids)
	survivors := pids[:0]
	for _, pid := range pids {
		syn := t.attrSyn[pid]
		if syn == nil || !synopsis.Intersects(syn, q) {
			rep.PartitionsPruned++
			sp.Prune(uint64(pid), obs.PruneSynopsisDisjoint)
			continue
		}
		survivors = append(survivors, pid)
	}
	rep.PartitionsTouched = len(survivors)

	parts := make([]partScan, len(survivors))
	t.runTimedScans(parts, sp.TimeScans(), func(i int) partScan {
		return t.scanPartition(survivors[i], q)
	})
	out := mergeScans(parts, &rep)

	ns := lapNs(start)
	t.noteQuery(rep, ns)
	t.noteScans(sp, parts, rep, ns)
	return out, rep
}

func (t *Table) selectSnap(q *synopsis.Set, sp *obs.QuerySpan) ([]Result, QueryReport) {
	start := t.obsStart()
	snap := t.capture()

	var rep QueryReport
	rep.PartitionsTotal = len(snap.parts)
	survivors := make([]*partSnap, 0, len(snap.parts))
	for _, ps := range snap.parts {
		if ps.syn == nil || !synopsis.Intersects(ps.syn, q) {
			rep.PartitionsPruned++
			sp.Prune(uint64(ps.pid), obs.PruneSynopsisDisjoint)
			continue
		}
		survivors = append(survivors, ps)
	}
	rep.PartitionsTouched = len(survivors)

	parts := make([]partScan, len(survivors))
	useBitmap := t.bitmapScans.Load()
	var prog storage.BitmapProgram
	if useBitmap {
		prog = selectProgram(q)
	}
	t.runTimedScans(parts, sp.TimeScans(), func(i int) partScan {
		if useBitmap {
			if sc, ok := scanSnapPartBitmap(survivors[i], q, prog); ok {
				return sc
			}
		}
		return scanSnapPart(survivors[i], q)
	})
	out := mergeScans(parts, &rep)

	ns := lapNs(start)
	t.noteQuery(rep, ns)
	t.noteScans(sp, parts, rep, ns)
	releaseScanScratches(parts)
	return out, rep
}

// ScanAll returns every live entity (a full table scan over all
// partitions, no pruning possible). Partitions are scanned in parallel
// like Select; the result order is ascending partition id, then storage
// order within the partition. Like Select it runs lock-free against a
// snapshot by default and under the read lock in locked mode.
func (t *Table) ScanAll() []Result {
	return t.ScanAllSpanned(t.observer().StartQuery(obs.KindScanAll))
}

// ScanAllSpanned runs ScanAll filling an externally created query span
// (sp may be nil). Full scans feed the heat map and span trees but, as
// before, do not enter the query counters or the EFFICIENCY estimator —
// they have no pruning decision to measure.
func (t *Table) ScanAllSpanned(sp *obs.QuerySpan) []Result {
	if sp.WantDetail() {
		sp.SetQuery("scan-all")
	}
	start := t.obsStart()
	if t.lockedReads.Load() {
		t.mu.RLock()
		defer t.mu.RUnlock()
		pids := t.sortedPIDs()
		parts := make([]partScan, len(pids))
		t.runTimedScans(parts, sp.TimeScans(), func(i int) partScan {
			return t.scanPartition(pids[i], nil)
		})
		var rep QueryReport
		rep.PartitionsTotal = len(pids)
		rep.PartitionsTouched = len(pids)
		out := mergeScans(parts, &rep)
		t.noteScans(sp, parts, rep, lapNs(start))
		return out
	}
	snap := t.capture()
	parts := make([]partScan, len(snap.parts))
	t.runTimedScans(parts, sp.TimeScans(), func(i int) partScan {
		return scanSnapPart(snap.parts[i], nil)
	})
	var rep QueryReport
	rep.PartitionsTotal = len(snap.parts)
	rep.PartitionsTouched = len(snap.parts)
	out := mergeScans(parts, &rep)
	t.noteScans(sp, parts, rep, lapNs(start))
	return out
}

// describeSelect renders the query for span trees: attribute names when
// the table has a dictionary, raw ids otherwise. Built only when a span
// wants detail — never on the unsampled hot path.
func (t *Table) describeSelect(q *synopsis.Set) string {
	var b strings.Builder
	b.WriteString("select(")
	first := true
	q.ForEach(func(id int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(t.attrName(id))
	})
	b.WriteByte(')')
	return b.String()
}

// describeWhere renders a predicate conjunction for span trees.
func (t *Table) describeWhere(preds []Pred) string {
	var b strings.Builder
	b.WriteString("where(")
	for i, p := range preds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(t.attrName(p.Attr))
		b.WriteString(p.Op.String())
		b.WriteString(p.Value.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (t *Table) attrName(id int) string {
	if t.dict != nil && id >= 0 && id < t.dict.Len() {
		return t.dict.Name(id)
	}
	return "#" + strconv.Itoa(id)
}
