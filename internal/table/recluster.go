package table

import (
	"fmt"

	"cinderella/internal/core"
)

// The table half of background reclustering: per-entity re-rate-and-move
// primitives the reclusterer (internal/recluster) drives in bounded
// batches. Each move is one ordinary mutation — write lock, seqlock
// bracket, placement listener — so concurrent snapshot readers and
// writers observe it exactly like an Update; the durable layer wraps it
// with a WAL append so recovery replays it.

// ReclusterMove describes one entity a recluster step relocated: what
// the durable layer needs to log the move as a WAL update op.
type ReclusterMove struct {
	ID   core.EntityID
	From core.PartitionID
	To   core.PartitionID
	Data []byte // marshaled entity content, as a WAL update op carries it
}

// ReclusterResult aggregates one bounded victim batch.
type ReclusterResult struct {
	Examined int // entities re-rated (moved or kept)
	Moved    int
	Moves    []ReclusterMove
}

// PartitionMembers snapshots the member ids of one partition, in
// insertion order. Nil when the assigner is not a Cinderella
// partitioner or the partition does not exist.
func (t *Table) PartitionMembers(pid core.PartitionID) []core.EntityID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.assigner.(*core.Cinderella)
	if !ok {
		return nil
	}
	return c.Members(pid)
}

// ReclusterEntity re-rates one entity against the workload-blended
// objective and moves it if a better partition (or a fresh one) wins.
// It only acts if the entity still lives in expect — the member
// snapshot it came from may be stale by the time the batch reaches it.
// Each call is one self-contained mutation under the write lock and
// seqlock bracket, so writers interleave between calls rather than
// stalling for a whole batch.
func (t *Table) ReclusterEntity(id core.EntityID, expect core.PartitionID, blender core.RatingBlender) (mv ReclusterMove, examined, moved bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.assigner.(*core.Cinderella)
	if !ok {
		return ReclusterMove{}, false, false
	}
	loc, ok := t.rows[id]
	if !ok || loc.pid != expect {
		return ReclusterMove{}, false, false
	}
	rec, err := t.seg(loc.pid).Read(loc.rid)
	if err != nil {
		panic(fmt.Sprintf("table: reclustering entity %d: %v", id, err))
	}
	gotID, e, err := decodeRecord(rec)
	if err != nil || gotID != id {
		panic(fmt.Sprintf("table: corrupt record for entity %d: %v", id, err))
	}

	t.beginMut()
	defer t.endMut()
	// From here this is Update's move discipline: delete the old
	// physical record, re-rate through the partitioner (placement
	// events write the new one), fall back to in-place when it stays.
	if err := t.seg(loc.pid).Delete(loc.rid); err != nil {
		panic(fmt.Sprintf("table: reclustering entity %d: %v", id, err))
	}
	t.refRemove(loc.pid, t.entityAtt[id])
	t.markDirty(loc.pid)
	delete(t.rows, id)
	delete(t.entityAtt, id)

	t.beginOp(id, e)
	c.SetRatingBlender(blender)
	pid := t.assigner.Update(core.Entity{ID: id, Syn: t.synizer.Synopsis(e), Size: e.Size()})
	c.SetRatingBlender(nil)
	if !t.pendingDone {
		rid, err := t.seg(pid).InsertTagged(t.pending, t.pendingAttrs)
		if err != nil {
			panic(fmt.Sprintf("table: rewriting entity %d: %v", id, err))
		}
		t.rows[id] = rowLoc{pid: pid, rid: rid}
		t.entityAtt[id] = t.pendingAttrs
		t.refAdd(pid, t.pendingAttrs)
		t.markDirty(pid)
		t.zoneWiden(pid, e)
		t.pendingDone = true
	}
	t.endOp(id)
	t.observer().SetPartitions(t.numPartsLocked())
	if pid == expect {
		return ReclusterMove{}, true, false
	}
	return ReclusterMove{ID: id, From: expect, To: pid, Data: e.Marshal(nil)}, true, true
}

// ReclusterBatch re-rates up to max members of partition pid (all of
// them when max <= 0) against the blended objective. Locking is
// per-entity, so concurrent writers make progress mid-batch.
func (t *Table) ReclusterBatch(pid core.PartitionID, max int, blender core.RatingBlender) ReclusterResult {
	members := t.PartitionMembers(pid)
	if max > 0 && len(members) > max {
		members = members[:max]
	}
	var res ReclusterResult
	for _, id := range members {
		mv, examined, moved := t.ReclusterEntity(id, pid, blender)
		if examined {
			res.Examined++
		}
		if moved {
			res.Moved++
			res.Moves = append(res.Moves, mv)
		}
	}
	return res
}
