package table

import (
	"runtime"
	"sort"
	"sync/atomic"

	"cinderella/internal/core"
	"cinderella/internal/obs"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// Epoch-based snapshot reads.
//
// Queries do not take the table lock. Instead, every mutation publishes —
// still under the write lock, as its last step — an immutable per-
// partition snapshot: the partition's pruning synopsis plus a frozen view
// of its segment (page chain, record-synopsis sidecar, live counters).
// Readers capture a consistent cut of these snapshots with three atomic
// ingredients and no locks:
//
//   - partHandle: one atomic pointer per partition, swapped to the
//     partition's latest partSnap at the end of each mutation that
//     touched it. partSnap contents are immutable after publication
//     (attribute synopses are copy-on-flip, segment views are
//     copy-on-write; see refAdd and storage.SegView).
//
//   - partDir: the atomic partition directory, an id-ordered handle
//     slice rebuilt only when a partition is created or dropped — the
//     common mutation (an insert into an existing partition) republishes
//     one handle and leaves the directory untouched.
//
//   - snapSeq: a seqlock. Writers make it odd in beginMut and even again
//     in endMut after publishing; a reader captures the directory and
//     every handle, then retries if the sequence was odd or moved. That
//     makes the multi-partition cut atomic — a split that moves records
//     between partitions can never be observed half-applied, so
//     QueryReport and EFFICIENCY accounting stay exact under concurrent
//     writes.
//
// A reader that keeps losing the seqlock race (pathological write storm)
// falls back to capturing under the shared read lock — correctness never
// depends on the optimistic path winning.
//
// Memory reclamation is garbage collection: a captured snapshot pins the
// superseded pages and sidecar rows it references, and they are freed
// when the last in-flight query drops them. Nothing is recycled in
// place, so there is no epoch-advance or hazard-pointer protocol to get
// wrong.

// captureRetries bounds the optimistic seqlock attempts before a reader
// falls back to the read lock.
const captureRetries = 16

// partSnap is one partition's published snapshot. Immutable. Exactly
// one of view and cold is populated: hot partitions publish a segment
// view, frozen partitions a cold view over the compressed tier.
type partSnap struct {
	pid  core.PartitionID
	syn  *synopsis.Set // attribute synopsis for pruning (copy-on-flip, frozen)
	view storage.SegView
	cold storage.ColdView
}

// recView is the scan surface shared by hot segment views and cold
// partition views; the scan loops are tier-agnostic behind it.
// ScanBitmap is the word-parallel kernel entry (see bitmap.go); views
// that predate the presence matrix report ok=false and the scan falls
// back to the per-record Scan.
type recView interface {
	Scan(fn func(id storage.RecordID, n int, syn *synopsis.Set) bool)
	ScanBitmap(prog storage.BitmapProgram, sc *storage.BitmapScratch) ([]storage.BitmapCand, int64, bool)
	Record(id storage.RecordID) []byte
	NumRecords() int
	LiveBytes() int64
}

// reader returns the snapshot's tier-appropriate scan handle.
func (ps *partSnap) reader() recView {
	if ps.cold.Cold() {
		return ps.cold
	}
	return &ps.view
}

// partHandle is the stable per-partition publication slot.
type partHandle struct {
	pid  core.PartitionID
	snap atomic.Pointer[partSnap]
}

// partDir is the atomic partition directory, handles ordered by id.
type partDir struct {
	handles []*partHandle
}

// tableSnap is a consistent cut: every partition's snapshot at one
// logical instant.
type tableSnap struct {
	parts []*partSnap
}

// beginMut opens a mutation: the seqlock goes odd so concurrent captures
// retry instead of observing a half-published cut. Callers hold the
// write lock.
func (t *Table) beginMut() {
	t.snapSeq.Add(1)
}

// markDirty records that pid's segment or synopsis changed and must be
// republished at endMut. Callers hold the write lock.
func (t *Table) markDirty(pid core.PartitionID) {
	t.dirty[pid] = struct{}{}
}

// endMut republishes every dirty partition, rebuilds the directory when
// partitions were created or dropped, and closes the seqlock. Callers
// hold the write lock.
func (t *Table) endMut() {
	changed := len(t.dirty) > 0 || t.dirChanged
	for pid := range t.dirty {
		h := t.handles[pid]
		var ps *partSnap
		if seg, ok := t.segs[pid]; ok {
			ps = &partSnap{pid: pid, syn: t.attrSyn[pid], view: seg.View()}
		} else if cs, ok := t.cold[pid]; ok {
			// Frozen partition: publish the cold view (the segment is
			// immutable, so the view is just a handle).
			ps = &partSnap{pid: pid, syn: t.attrSyn[pid], cold: cs.View()}
		} else {
			// Partition dropped.
			if h != nil {
				delete(t.handles, pid)
				t.dirChanged = true
			}
			continue
		}
		if h == nil {
			h = &partHandle{pid: pid}
			t.handles[pid] = h
			t.dirChanged = true
		}
		h.snap.Store(ps)
	}
	clear(t.dirty)
	if t.dirChanged {
		hs := make([]*partHandle, 0, len(t.handles))
		for _, h := range t.handles {
			hs = append(hs, h)
		}
		sort.Slice(hs, func(i, j int) bool { return hs[i].pid < hs[j].pid })
		t.dir.Store(&partDir{handles: hs})
		t.dirChanged = false
	}
	t.snapSeq.Add(1)
	if changed {
		t.observer().SetSnapshotEpoch(int64(t.epoch.Add(1)))
	}
}

// capture returns a consistent cut of all partition snapshots without
// blocking writers. The optimistic path costs one directory load plus
// one pointer load per partition; contention falls back to the read
// lock.
func (t *Table) capture() tableSnap {
	for try := 0; try < captureRetries; try++ {
		s1 := t.snapSeq.Load()
		if s1&1 != 0 {
			runtime.Gosched()
			continue
		}
		snap := t.loadSnaps()
		if t.snapSeq.Load() == s1 {
			return snap
		}
	}
	// Pathological write pressure: capture under the read lock, which
	// excludes writers (and therefore any open seqlock window).
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.loadSnaps()
}

// loadSnaps loads the directory and every handle's current snapshot.
func (t *Table) loadSnaps() tableSnap {
	dir := t.dir.Load()
	parts := make([]*partSnap, len(dir.handles))
	for i, h := range dir.handles {
		parts[i] = h.snap.Load()
	}
	return tableSnap{parts: parts}
}

// SetLockedReads switches the read paths (Select*, ScanAll, SelectWhere)
// between snapshot mode (default, false) and the historical RWMutex mode,
// where queries hold the shared read lock for the whole scan. The locked
// mode is retained as the comparison baseline for benchmarks and
// equivalence tests; results and QueryReport counters are identical in
// both modes.
func (t *Table) SetLockedReads(locked bool) {
	t.lockedReads.Store(locked)
}

// SnapshotEpoch returns the number of snapshot publications so far (the
// epoch gauge exported to telemetry).
func (t *Table) SnapshotEpoch() uint64 { return t.epoch.Load() }

// scanSnapPart scans one partition snapshot for the attribute-set query
// q (nil = keep everything). Records whose sidecar synopsis is disjoint
// from q are skipped without decoding; their visit is still charged to
// the scanned/byte counters, keeping the report identical to a locked
// scan. Sidecar synopses are the entities' exact attribute sets, so the
// skip never changes the result set.
func scanSnapPart(ps *partSnap, q *synopsis.Set) partScan {
	sc := partScan{pid: ps.pid}
	v := ps.reader()
	v.Scan(func(id storage.RecordID, n int, syn *synopsis.Set) bool {
		sc.scanned++
		sc.bytesRead += int64(n)
		if q != nil && syn != nil && !synopsis.Intersects(syn, q) {
			sc.skipped++
			sc.bytesSkip += int64(n)
			return true
		}
		eid, e, err := decodeRecord(v.Record(id))
		if err != nil {
			panic("table: corrupt record during snapshot scan: " + err.Error())
		}
		sc.decoded++
		// A non-nil sidecar synopsis is the entity's exact attribute set
		// and already passed the intersection test above, so only records
		// without one need the post-decode check.
		if q == nil || syn != nil || synopsis.Intersects(e.Synopsis(), q) {
			sc.hits = append(sc.hits, Result{ID: eid, Entity: e})
			sc.bytesHit += int64(n)
		}
		return true
	})
	return sc
}

// scanSnapPartWhere scans one partition snapshot for a predicate
// conjunction. need is the set of predicate attributes: an entity lacking
// any of them cannot match (SQL null semantics), so records whose sidecar
// synopsis does not cover need are skipped without decoding.
func scanSnapPartWhere(ps *partSnap, preds []Pred, need *synopsis.Set) partScan {
	sc := partScan{pid: ps.pid}
	v := ps.reader()
	v.Scan(func(id storage.RecordID, n int, syn *synopsis.Set) bool {
		sc.scanned++
		sc.bytesRead += int64(n)
		if syn != nil && !synopsis.Subset(need, syn) {
			sc.skipped++
			sc.bytesSkip += int64(n)
			return true
		}
		eid, e, err := decodeRecord(v.Record(id))
		if err != nil {
			panic("table: corrupt record during snapshot scan: " + err.Error())
		}
		sc.decoded++
		if entityMatches(e, preds) {
			sc.hits = append(sc.hits, Result{ID: eid, Entity: e})
			sc.bytesHit += int64(n)
		}
		return true
	})
	return sc
}

// noteScans publishes the per-partition scan results of one query to
// telemetry: the decode/skip counters (attributed per shard through the
// registry handle), the always-on heat map, and — when sp is non-nil —
// the query span. These are CPU-side signals only; they never enter
// QueryReport, whose fields stay bit-identical between read modes.
func (t *Table) noteScans(sp *obs.QuerySpan, parts []partScan, rep QueryReport, ns int64) {
	r := t.observer()
	if r == nil {
		return
	}
	var dec, skip, bmWords, bmHits int64
	for i := range parts {
		dec += int64(parts[i].decoded)
		skip += int64(parts[i].skipped)
		bmWords += parts[i].bitmapWords
		bmHits += parts[i].bitmapHits
	}
	r.Add(obs.CScanDecoded, dec)
	r.Add(obs.CScanDecodeSkipped, skip)
	if bmWords > 0 || bmHits > 0 {
		r.Add(obs.CScanBitmapWords, bmWords)
		r.Add(obs.CScanBitmapHits, bmHits)
	}

	var spans []obs.PartSpan
	if len(parts) > 0 {
		spans = make([]obs.PartSpan, len(parts))
		for i := range parts {
			p := &parts[i]
			spans[i] = obs.PartSpan{
				Partition:     uint64(p.pid),
				Scanned:       int64(p.scanned),
				Returned:      int64(len(p.hits)),
				Decoded:       int64(p.decoded),
				Skipped:       int64(p.skipped),
				BytesRead:     p.bytesRead,
				BytesRelevant: p.bytesHit,
				BytesSkipped:  p.bytesSkip,
				ScanNs:        p.ns,
				Bitmap:        p.bitmap,
				BitmapWords:   p.bitmapWords,
				BitmapHits:    p.bitmapHits,
			}
		}
	}
	r.FinishQuery(sp, ns, obs.QueryAgg{
		PartitionsTotal:   int64(rep.PartitionsTotal),
		PartitionsTouched: int64(rep.PartitionsTouched),
		PartitionsPruned:  int64(rep.PartitionsPruned),
		EntitiesScanned:   int64(rep.EntitiesScanned),
		EntitiesReturned:  int64(rep.EntitiesReturned),
		BytesRead:         rep.BytesRead,
		BytesRelevant:     rep.BytesRelevant,
	}, spans)
}
