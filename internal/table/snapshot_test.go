package table

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/synopsis"
)

// snapContents scans every partition of a captured snapshot and returns
// its full contents by entity id.
func snapContents(snap tableSnap) map[core.EntityID]*entity.Entity {
	out := make(map[core.EntityID]*entity.Entity)
	for _, ps := range snap.parts {
		sc := scanSnapPart(ps, nil)
		for _, r := range sc.hits {
			out[r.ID] = r.Entity
		}
	}
	return out
}

func randomTestEntity(rng *rand.Rand) *entity.Entity {
	e := &entity.Entity{}
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		attr := rng.Intn(12)
		switch rng.Intn(3) {
		case 0:
			e.Set(attr, entity.Int(int64(rng.Intn(100))))
		case 1:
			e.Set(attr, entity.Float(rng.Float64()*100))
		default:
			e.Set(attr, entity.Str(string(rune('a'+rng.Intn(26)))))
		}
	}
	return e
}

// TestSnapshotSeesPreMutationState is the core isolation property: a
// snapshot captured before deletes, updates, splits, compaction, and
// vacuum keeps returning exactly the pre-mutation contents.
func TestSnapshotSeesPreMutationState(t *testing.T) {
	tbl := newTestTable(0.35, 40)
	rng := rand.New(rand.NewSource(11))

	var ids []core.EntityID
	want := make(map[core.EntityID]*entity.Entity)
	for i := 0; i < 300; i++ {
		e := randomTestEntity(rng)
		id := tbl.Insert(e)
		ids = append(ids, id)
		want[id] = e.Clone()
	}

	snap := tbl.capture()

	// Mutate heavily: deletes, updates, enough inserts to force splits
	// (MaxSize 40), then compaction and vacuum.
	for i, id := range ids {
		switch i % 3 {
		case 0:
			tbl.Delete(id)
		case 1:
			tbl.Update(id, randomTestEntity(rng))
		}
	}
	for i := 0; i < 400; i++ {
		tbl.Insert(randomTestEntity(rng))
	}
	tbl.Compact(0.9)
	tbl.Vacuum()

	got := snapContents(snap)
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d entities, want pre-mutation %d", len(got), len(want))
	}
	for id, we := range want {
		ge, ok := got[id]
		if !ok {
			t.Fatalf("snapshot lost entity %d", id)
		}
		if !ge.Equal(we) {
			t.Fatalf("snapshot entity %d = %v, want pre-mutation %v", id, ge, we)
		}
	}
}

// TestSnapshotLockedQueryEquivalence is the property test: on several
// seeds, SelectWithReport and SelectWhere return identical results,
// identical QueryReport counters, and identical simulated-I/O charges in
// snapshot mode and in the historical locked mode.
func TestSnapshotLockedQueryEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tbl := newTestTable(0.35, 60)
			var ids []core.EntityID
			for i := 0; i < 500; i++ {
				ids = append(ids, tbl.Insert(randomTestEntity(rng)))
			}
			for _, id := range ids {
				switch rng.Intn(4) {
				case 0:
					tbl.Delete(id)
				case 1:
					tbl.Update(id, randomTestEntity(rng))
				}
			}

			ioDelta := func(run func()) [5]int64 {
				var before, after [5]int64
				before[0], before[1], before[2], before[3], before[4] = tbl.Stats().Snapshot()
				run()
				after[0], after[1], after[2], after[3], after[4] = tbl.Stats().Snapshot()
				for i := range after {
					after[i] -= before[i]
				}
				return after
			}

			for probe := 0; probe < 12; probe++ {
				q := synopsis.Of(probe, (probe+5)%12)

				var lr, sr []Result
				var lrep, srep QueryReport
				lio := ioDelta(func() {
					tbl.SetLockedReads(true)
					lr, lrep = tbl.SelectWithReport(q)
				})
				sio := ioDelta(func() {
					tbl.SetLockedReads(false)
					sr, srep = tbl.SelectWithReport(q)
				})
				if lrep != srep {
					t.Fatalf("probe %d: locked report %+v != snapshot report %+v", probe, lrep, srep)
				}
				if lio != sio {
					t.Fatalf("probe %d: locked I/O %v != snapshot I/O %v", probe, lio, sio)
				}
				compareResults(t, probe, lr, sr)

				preds := []Pred{{Attr: probe, Op: Ge, Value: entity.Int(10)}}
				tbl.SetLockedReads(true)
				lwr, lwrep := tbl.SelectWhere(preds)
				tbl.SetLockedReads(false)
				swr, swrep := tbl.SelectWhere(preds)
				if lwrep != swrep {
					t.Fatalf("where probe %d: locked report %+v != snapshot report %+v", probe, lwrep, swrep)
				}
				compareResults(t, probe, lwr, swr)

				// The sidecar skip must never change the result set:
				// brute force over the full scan agrees.
				var brute []Result
				for _, r := range tbl.ScanAll() {
					if entityMatches(r.Entity, preds) {
						brute = append(brute, r)
					}
				}
				compareResults(t, probe, brute, swr)
			}
		})
	}
}

func compareResults(t *testing.T, probe int, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("probe %d: %d results vs %d", probe, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Entity.Equal(b[i].Entity) {
			t.Fatalf("probe %d: result %d differs: (%d,%v) vs (%d,%v)",
				probe, i, a[i].ID, a[i].Entity, b[i].ID, b[i].Entity)
		}
	}
}

// TestSnapshotConcurrentWritersReaders races continuous mutators against
// lock-free ScanAll/Select/SelectWhere readers. Run under -race it is
// the data-race guard for the whole publication protocol; without -race
// it still checks the per-query report invariants under concurrency.
func TestSnapshotConcurrentWritersReaders(t *testing.T) {
	tbl := newTestTable(0.35, 50)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		tbl.Insert(randomTestEntity(rng))
	}

	const writers = 4
	const readers = 4
	const opsPerWriter = 400
	var wwg, rwg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(seed int64) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []core.EntityID
			for i := 0; i < opsPerWriter; i++ {
				switch {
				case len(mine) > 0 && rng.Intn(4) == 0:
					k := rng.Intn(len(mine))
					tbl.Delete(mine[k])
					mine = append(mine[:k], mine[k+1:]...)
				case len(mine) > 0 && rng.Intn(4) == 0:
					tbl.Update(mine[rng.Intn(len(mine))], randomTestEntity(rng))
				default:
					mine = append(mine, tbl.Insert(randomTestEntity(rng)))
				}
			}
		}(int64(100 + w))
	}

	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					res := tbl.ScanAll()
					for _, r := range res {
						if r.Entity == nil {
							errs <- fmt.Errorf("ScanAll returned nil entity for id %d", r.ID)
							return
						}
					}
				case 1:
					q := synopsis.Of(rng.Intn(12))
					res, rep := tbl.SelectWithReport(q)
					if len(res) != rep.EntitiesReturned {
						errs <- fmt.Errorf("returned %d results, report says %d", len(res), rep.EntitiesReturned)
						return
					}
					if rep.PartitionsTouched+rep.PartitionsPruned != rep.PartitionsTotal {
						errs <- fmt.Errorf("inconsistent report %+v", rep)
						return
					}
				default:
					preds := []Pred{{Attr: rng.Intn(12), Op: Ge, Value: entity.Int(int64(rng.Intn(100)))}}
					res, rep := tbl.SelectWhere(preds)
					if len(res) != rep.EntitiesReturned {
						errs <- fmt.Errorf("where returned %d results, report says %d", len(res), rep.EntitiesReturned)
						return
					}
				}
			}
		}(int64(200 + r))
	}

	// Readers run for as long as the writers keep mutating.
	wwg.Wait()
	close(stop)
	rwg.Wait()

	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// After the dust settles, snapshot and locked full scans agree.
	snapRes := tbl.ScanAll()
	tbl.SetLockedReads(true)
	lockRes := tbl.ScanAll()
	tbl.SetLockedReads(false)
	compareResults(t, -1, lockRes, snapRes)
}
