// Package table implements the Cinderella-partitioned universal table: it
// binds a placement strategy (package core) to per-partition heap
// segments (package storage) and serves attribute-set queries with
// synopsis-based partition pruning — the query rewrite to a UNION ALL
// over relevant partitions that the paper's prototype performed in
// PostgreSQL.
package table

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// Synopsizer derives the partitioning synopsis of an entity. Entity-based
// partitioning uses the attribute set; workload-based partitioning uses
// the set of queries the entity is relevant to (Section III).
type Synopsizer interface {
	Synopsis(e *entity.Entity) *synopsis.Set
}

// EntityBased is the default Synopsizer: an entity's synopsis is its
// attribute set.
type EntityBased struct{}

// Synopsis returns the entity's attribute bitset.
func (EntityBased) Synopsis(e *entity.Entity) *synopsis.Set { return e.Synopsis() }

// WorkloadBased maps entities to the set of workload queries they are
// relevant to. Entities relevant to the same queries then cluster
// together regardless of their concrete attributes.
type WorkloadBased struct {
	// Queries are the workload's query synopses; bit i of an entity
	// synopsis is set iff the entity is relevant to Queries[i].
	Queries []*synopsis.Set
}

// Synopsis returns the query-relevance bitset of e.
func (w WorkloadBased) Synopsis(e *entity.Entity) *synopsis.Set {
	s := synopsis.New(len(w.Queries))
	es := e.Synopsis()
	for i, q := range w.Queries {
		if synopsis.Intersects(es, q) {
			s.Add(i)
		}
	}
	return s
}

// Config assembles a universal table.
type Config struct {
	// Partitioner decides placement. Defaults to Cinderella with
	// w = 0.5, B = 5000 entities.
	Partitioner core.Assigner
	// Dict is the shared attribute dictionary. Defaults to a fresh one.
	Dict *entity.Dictionary
	// Stats receives the I/O accounting of all segments. Defaults to a
	// private counter.
	Stats *storage.Stats
	// Synopsizer derives partitioning synopses. Defaults to EntityBased.
	Synopsizer Synopsizer
	// Cache, when non-nil, routes all page accesses through a shared
	// buffer cache for locality measurements.
	Cache *storage.BufferCache
	// Parallelism bounds the worker pool used to scan non-pruned
	// partitions in Select/SelectWhere. 0 (default) means GOMAXPROCS;
	// 1 (or negative) opts out and scans serially. Results and
	// QueryReport counters are identical either way: per-worker buffers
	// are merged back in partition-id order.
	Parallelism int
	// Obs, when non-nil, receives live telemetry: operation counters,
	// latency histograms, the streaming EFFICIENCY estimator, and (for
	// partitioners that support it) decision trace events. Nil leaves
	// the table uninstrumented at nil-check cost only.
	Obs *obs.Registry
}

type rowLoc struct {
	pid core.PartitionID
	rid storage.RecordID
}

// Table is a universal table over irregularly structured entities,
// horizontally partitioned by the configured strategy. It is safe for
// concurrent use: mutations serialize behind the write lock, while the
// scan-shaped queries (Select*, SelectWhere, ScanAll) run lock-free
// against published partition snapshots (see snapshot.go) — readers
// never block writers and writers never block readers. Point reads and
// the introspection accessors share the read lock. SetLockedReads
// restores the historical all-reads-under-RLock mode for comparison.
type Table struct {
	mu       sync.RWMutex
	dict     *entity.Dictionary
	assigner core.Assigner
	synizer  Synopsizer
	stats    *storage.Stats

	// parallelism is the worker bound for partition scans (resolved from
	// Config.Parallelism; 1 = serial). Atomic so SetParallelism is safe
	// against concurrent queries without taking the table write lock.
	parallelism atomic.Int32

	// obsv holds the optional telemetry registry. Atomic so lock-free
	// snapshot readers and SetObserver need no lock ordering between
	// them; a nil registry is a no-op at every call site.
	obsv atomic.Pointer[obs.Registry]

	cache *storage.BufferCache

	segs map[core.PartitionID]*storage.Segment
	// cold holds the frozen partitions (see tier.go): a partition lives
	// in exactly one of segs and cold. Frozen partitions keep their
	// pruning synopsis, zone maps, and record sidecar hot; mutations
	// transparently thaw through seg().
	cold map[core.PartitionID]*storage.ColdSegment
	rows map[core.EntityID]rowLoc
	// attrRefs maintains the exact per-partition attribute synopsis for
	// query pruning; it is independent of the partitioner's synopses,
	// which may be query-relevance sets under workload-based mode.
	// attrSyn values are copy-on-flip: they are replaced, never mutated,
	// once published (snapshot readers hold them by pointer).
	attrRefs  map[core.PartitionID]map[int]int
	attrSyn   map[core.PartitionID]*synopsis.Set
	entityAtt map[core.EntityID]*synopsis.Set // attribute synopsis cache
	// zones holds per-partition per-attribute value ranges for predicate
	// pruning (see zonemap.go). Maintained additively. Guarded by zmu —
	// snapshot readers consult zones without holding mu.
	zmu   sync.Mutex
	zones map[core.PartitionID]map[int]*zoneEntry
	// zoneGen counts the events that can remove zone info: RebuildZoneMaps
	// runs and partition drops. Zones only ever widen between those
	// events, which makes them conservatively valid for any snapshot
	// captured after the last one; SelectWhere re-prunes when either
	// raced its capture.
	zoneGen atomic.Uint64

	// Snapshot publication state (see snapshot.go). handles/dirty/
	// dirChanged are writer-private under mu; dir and snapSeq are the
	// reader-facing atomics; epoch counts publications.
	dir        atomic.Pointer[partDir]
	handles    map[core.PartitionID]*partHandle
	dirty      map[core.PartitionID]struct{}
	dirChanged bool
	snapSeq    atomic.Uint64
	epoch      atomic.Uint64

	// lockedReads selects the historical RWMutex read mode (see
	// SetLockedReads).
	lockedReads atomic.Bool

	// bitmapScans selects the word-parallel bitmap kernel for snapshot
	// scans (default true; see bitmap.go and SetBitmapScans).
	bitmapScans atomic.Bool

	nextID core.EntityID

	// in-flight insert/update state consumed by the move listener
	pending      []byte
	pendingID    core.EntityID
	pendingAttrs *synopsis.Set
	pendingDone  bool

	// qmu guards queries: query counters are updated by lock-free
	// readers, so they need their own mutex.
	qmu     sync.Mutex
	queries QueryStats

	// Tier transition counters (see tier.go).
	tierFreezes atomic.Int64
	tierThaws   atomic.Int64
}

// QueryStats aggregates query-side counters.
type QueryStats struct {
	Queries           int64
	PartitionsTouched int64
	PartitionsPruned  int64
	EntitiesReturned  int64
	EntitiesScanned   int64
}

// New builds a table from cfg.
func New(cfg Config) *Table {
	if cfg.Partitioner == nil {
		cfg.Partitioner = core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 5000})
	}
	if cfg.Dict == nil {
		cfg.Dict = entity.NewDictionary()
	}
	if cfg.Stats == nil {
		cfg.Stats = &storage.Stats{}
	}
	if cfg.Synopsizer == nil {
		cfg.Synopsizer = EntityBased{}
	}
	par := cfg.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par < 1 {
		par = 1
	}
	t := &Table{
		dict:      cfg.Dict,
		assigner:  cfg.Partitioner,
		synizer:   cfg.Synopsizer,
		stats:     cfg.Stats,
		cache:     cfg.Cache,
		segs:      make(map[core.PartitionID]*storage.Segment),
		cold:      make(map[core.PartitionID]*storage.ColdSegment),
		rows:      make(map[core.EntityID]rowLoc),
		attrRefs:  make(map[core.PartitionID]map[int]int),
		attrSyn:   make(map[core.PartitionID]*synopsis.Set),
		entityAtt: make(map[core.EntityID]*synopsis.Set),
		zones:     make(map[core.PartitionID]map[int]*zoneEntry),
		handles:   make(map[core.PartitionID]*partHandle),
		dirty:     make(map[core.PartitionID]struct{}),
	}
	t.dir.Store(&partDir{})
	t.parallelism.Store(int32(par))
	t.bitmapScans.Store(true)
	t.assigner.SetMoveListener(t.onPlacement)
	if cfg.Obs != nil {
		t.setObserverLocked(cfg.Obs)
	}
	return t
}

// observer returns the current telemetry registry (nil when detached).
func (t *Table) observer() *obs.Registry { return t.obsv.Load() }

// observable is implemented by partitioners that emit telemetry
// themselves (core.Cinderella); baselines simply lack the method.
type observable interface {
	SetObserver(*obs.Registry)
}

// SetObserver attaches (or detaches, with nil) a telemetry registry to a
// live table, propagating it to the partitioner when supported.
func (t *Table) SetObserver(r *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setObserverLocked(r)
}

func (t *Table) setObserverLocked(r *obs.Registry) {
	t.obsv.Store(r)
	if o, ok := t.assigner.(observable); ok {
		o.SetObserver(r)
	}
	r.SetPartitions(t.numPartsLocked())
	r.SetSnapshotEpoch(int64(t.epoch.Load()))
}

// numPartsLocked counts partitions across both tiers. Callers hold mu.
func (t *Table) numPartsLocked() int64 {
	return int64(len(t.segs) + len(t.cold))
}

// Dict returns the table's attribute dictionary.
func (t *Table) Dict() *entity.Dictionary { return t.dict }

// SetParallelism adjusts the partition-scan worker bound at runtime (see
// Config.Parallelism). n <= 0 restores the GOMAXPROCS default; 1 scans
// serially. The bound is atomic, so it can be flipped while queries are
// in flight: each query reads it once at scan start.
func (t *Table) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	t.parallelism.Store(int32(n))
}

// Stats returns the I/O counter shared by all segments.
func (t *Table) Stats() *storage.Stats { return t.stats }

// QueryStats returns a copy of the query counters.
func (t *Table) QueryStats() QueryStats {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	return t.queries
}

// noteQuery folds one query's counters into the table-wide totals and,
// when instrumented, into the telemetry registry (including the
// streaming EFFICIENCY estimator: EntitiesReturned is Definition 1's
// per-query numerator, EntitiesScanned its denominator — see
// obs.Registry.NoteQuery). Callers may hold no lock at all (snapshot
// reads): the query counters have their own mutex and the registry is
// atomic throughout.
func (t *Table) noteQuery(rep QueryReport, ns int64) {
	t.qmu.Lock()
	t.queries.Queries++
	t.queries.PartitionsTouched += int64(rep.PartitionsTouched)
	t.queries.PartitionsPruned += int64(rep.PartitionsPruned)
	t.queries.EntitiesReturned += int64(rep.EntitiesReturned)
	t.queries.EntitiesScanned += int64(rep.EntitiesScanned)
	t.qmu.Unlock()
	t.observer().NoteQuery(int64(rep.PartitionsTouched), int64(rep.PartitionsPruned),
		int64(rep.EntitiesReturned), int64(rep.EntitiesScanned),
		rep.BytesRelevant, rep.BytesRead, ns)
}

// obsStart returns the wall clock for latency accounting, or the zero
// time when uninstrumented (skipping the clock read on the hot path).
func (t *Table) obsStart() time.Time {
	if t.observer() == nil {
		return time.Time{}
	}
	return time.Now()
}

// lapNs converts a queryStart time into elapsed nanoseconds (0 when
// uninstrumented; the registry is nil then and drops it anyway).
func lapNs(start time.Time) int64 {
	if start.IsZero() {
		return 0
	}
	return time.Since(start).Nanoseconds()
}

// onPlacement reacts to the partitioner's placement stream: it writes the
// in-flight record on fresh placement and physically moves records on
// split/update moves.
func (t *Table) onPlacement(pl core.Placement) {
	if pl.Entity == 0 {
		// Partition dropped.
		seg := t.segs[pl.From]
		if seg != nil {
			if seg.NumRecords() != 0 {
				panic(fmt.Sprintf("table: partitioner dropped non-empty partition %d", pl.From))
			}
			seg.DropFromCache()
		}
		if cs := t.cold[pl.From]; cs != nil {
			// Unreachable in practice: member removals thaw first, so a
			// frozen partition is never empty, and the partitioner only
			// drops empty partitions. Refuse data loss if it ever happens.
			if cs.NumRecords() != 0 {
				panic(fmt.Sprintf("table: partitioner dropped non-empty frozen partition %d", pl.From))
			}
			cs.DropFromCache()
			delete(t.cold, pl.From)
		}
		delete(t.segs, pl.From)
		delete(t.attrRefs, pl.From)
		delete(t.attrSyn, pl.From)
		t.zmu.Lock()
		delete(t.zones, pl.From)
		t.zmu.Unlock()
		// Dropping a partition removes zone info mid-mutation, but a
		// snapshot reader may have captured a pre-mutation cut that still
		// carries the partition's records (its merged-away records only
		// appear in the destination at endMut). Bump the zone generation
		// so selectWhereSnap re-captures instead of pruning that
		// partition against the now-absent zone map.
		t.zoneGen.Add(1)
		t.markDirty(pl.From)
		t.dirChanged = true
		return
	}

	var rec []byte
	var attrs *synopsis.Set
	if pl.Entity == t.pendingID && !t.pendingDone {
		// First physical placement of the in-flight record.
		rec = t.pending
		attrs = t.pendingAttrs
		t.pendingDone = true
	} else {
		// Relocation of an existing record (split or cascade).
		loc, ok := t.rows[pl.Entity]
		if !ok {
			panic(fmt.Sprintf("table: move of unknown entity %d", pl.Entity))
		}
		b, err := t.seg(loc.pid).Read(loc.rid)
		if err != nil {
			panic(fmt.Sprintf("table: moving entity %d: %v", pl.Entity, err))
		}
		rec = append([]byte(nil), b...)
		if err := t.seg(loc.pid).Delete(loc.rid); err != nil {
			panic(fmt.Sprintf("table: deleting moved entity %d: %v", pl.Entity, err))
		}
		attrs = t.entityAtt[pl.Entity]
		t.refRemove(loc.pid, attrs)
		t.markDirty(loc.pid)
	}

	rid, err := t.seg(pl.To).InsertTagged(rec, attrs)
	if err != nil {
		panic(fmt.Sprintf("table: inserting entity %d into partition %d: %v", pl.Entity, pl.To, err))
	}
	t.rows[pl.Entity] = rowLoc{pid: pl.To, rid: rid}
	if t.entityAtt[pl.Entity] == nil {
		t.entityAtt[pl.Entity] = attrs
	}
	t.refAdd(pl.To, attrs)
	t.markDirty(pl.To)
	if _, e, err := decodeRecord(rec); err == nil {
		t.zoneWiden(pl.To, e)
	}
}

// seg returns pid's hot segment for a mutation, creating it when the
// partition is new — and transparently thawing it first when the
// partition is frozen: every write path (insert placement, delete,
// update, recluster move) reaches the segment through here, so the cold
// tier never sees a mutation. Callers hold the write lock.
func (t *Table) seg(pid core.PartitionID) *storage.Segment {
	s, ok := t.segs[pid]
	if !ok {
		if cs, frozen := t.cold[pid]; frozen {
			return t.thawLocked(pid, cs)
		}
		s = storage.NewSegment(t.stats)
		if t.cache != nil {
			s.AttachCache(t.cache)
		}
		t.segs[pid] = s
		t.markDirty(pid)
		t.dirChanged = true
	}
	return s
}

// refAdd and refRemove maintain the exact per-partition attribute
// synopsis. The published sets are copy-on-flip: a set is cloned only
// when membership actually changes (an attribute's refcount crosses zero)
// and the clone replaces the map entry, so pointers held by published
// snapshots stay frozen while the common no-flip case mutates nothing.
func (t *Table) refAdd(pid core.PartitionID, attrs *synopsis.Set) {
	refs := t.attrRefs[pid]
	if refs == nil {
		refs = make(map[int]int)
		t.attrRefs[pid] = refs
		t.attrSyn[pid] = synopsis.New(0)
	}
	var cl *synopsis.Set
	for _, a := range attrs.Elements(nil) {
		if refs[a] == 0 {
			if cl == nil {
				cl = t.attrSyn[pid].Clone()
			}
			cl.Add(a)
		}
		refs[a]++
	}
	if cl != nil {
		t.attrSyn[pid] = cl
	}
}

func (t *Table) refRemove(pid core.PartitionID, attrs *synopsis.Set) {
	refs := t.attrRefs[pid]
	if refs == nil {
		return
	}
	var cl *synopsis.Set
	for _, a := range attrs.Elements(nil) {
		refs[a]--
		if refs[a] == 0 {
			delete(refs, a)
			if cl == nil {
				cl = t.attrSyn[pid].Clone()
			}
			cl.Remove(a)
		}
	}
	if cl != nil {
		t.attrSyn[pid] = cl
	}
}

// Insert stores e and returns its entity id. The entity is not retained;
// callers may reuse it.
func (t *Table) Insert(e *entity.Entity) core.EntityID {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginMut()
	defer t.endMut()
	t.nextID++
	id := t.nextID
	t.insertLocked(id, e)
	return id
}

// InsertWithID stores e under a caller-chosen id; used by write-ahead-log
// replay and checkpoint loading, where ids must survive recovery. It
// panics if id is zero or already live.
func (t *Table) InsertWithID(id core.EntityID, e *entity.Entity) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginMut()
	defer t.endMut()
	if id == 0 {
		panic("table: InsertWithID with id 0")
	}
	if _, dup := t.rows[id]; dup {
		panic(fmt.Sprintf("table: InsertWithID duplicate id %d", id))
	}
	if id > t.nextID {
		t.nextID = id
	}
	t.insertLocked(id, e)
}

// LastID returns the highest entity id ever assigned or inserted (0 when
// the table never held an entity). Sharded recovery seeds its global id
// allocator from the per-shard maxima.
func (t *Table) LastID() core.EntityID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nextID
}

func (t *Table) insertLocked(id core.EntityID, e *entity.Entity) {
	start := t.obsStart()
	t.beginOp(id, e)
	t.assigner.Insert(core.Entity{ID: id, Syn: t.synizer.Synopsis(e), Size: e.Size()})
	t.endOp(id)
	if r := t.observer(); r != nil {
		r.ObserveInsertNs(lapNs(start))
		r.SetPartitions(t.numPartsLocked())
	}
}

// encodeRecord prefixes the marshaled entity with its id so scans can
// recover identity without a side index.
func encodeRecord(id core.EntityID, e *entity.Entity) []byte {
	rec := binary.AppendUvarint(nil, uint64(id))
	return e.Marshal(rec)
}

// decodeRecord splits a stored record into entity id and entity.
func decodeRecord(rec []byte) (core.EntityID, *entity.Entity, error) {
	id, n := binary.Uvarint(rec)
	if n <= 0 {
		return 0, nil, fmt.Errorf("table: corrupt record id")
	}
	e, _, err := entity.Unmarshal(rec[n:])
	return core.EntityID(id), e, err
}

// beginOp stages the record bytes for the placement listener.
func (t *Table) beginOp(id core.EntityID, e *entity.Entity) {
	t.pending = encodeRecord(id, e)
	t.pendingID = id
	t.pendingAttrs = e.Synopsis().Clone()
	t.pendingDone = false
}

// endOp verifies the in-flight record was placed.
func (t *Table) endOp(id core.EntityID) {
	if !t.pendingDone {
		panic(fmt.Sprintf("table: entity %d was never placed", id))
	}
	t.pending, t.pendingID, t.pendingAttrs = nil, 0, nil
}

// Get returns a copy of the entity with the given id.
func (t *Table) Get(id core.EntityID) (*entity.Entity, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	loc, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	var rec []byte
	var err error
	if seg, hot := t.segs[loc.pid]; hot {
		rec, err = seg.Read(loc.rid)
	} else if cs, frozen := t.cold[loc.pid]; frozen {
		// Point read from the cold tier: decompress the record's block,
		// admit the page into the buffer cache, leave the tier frozen.
		rec, err = cs.Read(loc.rid)
	} else {
		panic(fmt.Sprintf("table: entity %d points at missing partition %d", id, loc.pid))
	}
	if err != nil {
		return nil, false
	}
	gotID, e, err := decodeRecord(rec)
	if err != nil || gotID != id {
		panic(fmt.Sprintf("table: corrupt record for entity %d: %v", id, err))
	}
	return e, true
}

// Delete removes the entity. Unknown ids return false.
func (t *Table) Delete(id core.EntityID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginMut()
	defer t.endMut()
	loc, ok := t.rows[id]
	if !ok {
		return false
	}
	if err := t.seg(loc.pid).Delete(loc.rid); err != nil {
		panic(fmt.Sprintf("table: deleting entity %d: %v", id, err))
	}
	t.refRemove(loc.pid, t.entityAtt[id])
	t.markDirty(loc.pid)
	delete(t.rows, id)
	delete(t.entityAtt, id)
	t.assigner.Delete(id)
	t.observer().SetPartitions(t.numPartsLocked())
	return true
}

// Update replaces the entity's content; the partitioner may move it.
func (t *Table) Update(id core.EntityID, e *entity.Entity) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginMut()
	defer t.endMut()
	loc, ok := t.rows[id]
	if !ok {
		return false
	}
	// Remove the old physical record; the listener (or the in-place path
	// below) writes the new one.
	if err := t.seg(loc.pid).Delete(loc.rid); err != nil {
		panic(fmt.Sprintf("table: updating entity %d: %v", id, err))
	}
	t.refRemove(loc.pid, t.entityAtt[id])
	t.markDirty(loc.pid)
	delete(t.rows, id)
	delete(t.entityAtt, id)

	t.beginOp(id, e)
	pid := t.assigner.Update(core.Entity{ID: id, Syn: t.synizer.Synopsis(e), Size: e.Size()})
	if !t.pendingDone {
		// In-place update: the partitioner kept the entity, no placement
		// event fired; write the new bytes into the same partition.
		rid, err := t.seg(pid).InsertTagged(t.pending, t.pendingAttrs)
		if err != nil {
			panic(fmt.Sprintf("table: rewriting entity %d: %v", id, err))
		}
		t.rows[id] = rowLoc{pid: pid, rid: rid}
		t.entityAtt[id] = t.pendingAttrs
		t.refAdd(pid, t.pendingAttrs)
		t.markDirty(pid)
		t.zoneWiden(pid, e)
		t.pendingDone = true
	}
	t.endOp(id)
	t.observer().SetPartitions(t.numPartsLocked())
	return true
}

// Compact asks the partitioner to merge underfilled partitions (fill
// fraction below threshold) into well-fitting peers, physically moving
// the affected records. It returns the number of merges; partitioners
// without merge support return 0.
func (t *Table) Compact(threshold float64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginMut()
	defer t.endMut()
	c, ok := t.assigner.(*core.Cinderella)
	if !ok {
		return 0
	}
	n := c.Compact(threshold)
	t.observer().SetPartitions(t.numPartsLocked())
	return n
}

// Vacuum rewrites every segment without tombstones, reclaiming the space
// left by deletes and updates (which tombstone the old record). It
// returns the number of pages released.
func (t *Table) Vacuum() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginMut()
	defer t.endMut()
	released := 0
	for pid, seg := range t.segs {
		before := seg.NumPages()
		remap := seg.Vacuum()
		released += before - seg.NumPages()
		t.markDirty(pid)
		for id, loc := range t.rows {
			if loc.pid != pid {
				continue
			}
			nid, ok := remap[loc.rid]
			if !ok {
				panic(fmt.Sprintf("table: entity %d lost during vacuum", id))
			}
			t.rows[id] = rowLoc{pid: pid, rid: nid}
		}
	}
	return released
}

// Len returns the number of live entities.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// NumPartitions returns the partition count across both tiers.
func (t *Table) NumPartitions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs) + len(t.cold)
}

// PartitionView describes one partition for metrics and reporting.
type PartitionView struct {
	ID       core.PartitionID
	Synopsis *synopsis.Set // attribute synopsis (snapshot at call time)
	Entities int
	Bytes    int64
	Pages    int
	// Cold marks a frozen partition; CompressedBytes is its resident
	// cold-tier footprint (0 for hot partitions).
	Cold            bool
	CompressedBytes int64
}

// Partitions snapshots the physical partitions of both tiers ordered by
// id.
func (t *Table) Partitions() []PartitionView {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]PartitionView, 0, len(t.segs)+len(t.cold))
	for pid, seg := range t.segs {
		// Clone the synopsis: callers read the views after the lock is
		// released, while inserts keep mutating the live sets.
		out = append(out, PartitionView{
			ID:       pid,
			Synopsis: t.attrSyn[pid].Clone(),
			Entities: seg.NumRecords(),
			Bytes:    seg.LiveBytes(),
			Pages:    seg.NumPages(),
		})
	}
	for pid, cs := range t.cold {
		out = append(out, PartitionView{
			ID:              pid,
			Synopsis:        t.attrSyn[pid].Clone(),
			Entities:        cs.NumRecords(),
			Bytes:           cs.LiveBytes(),
			Pages:           cs.NumPages(),
			Cold:            true,
			CompressedBytes: cs.CompressedBytes(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MemberSynopses returns the attribute synopses of all entities in the
// given partition (for sparseness metrics).
func (t *Table) MemberSynopses(pid core.PartitionID) []*synopsis.Set {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*synopsis.Set
	for id, loc := range t.rows {
		if loc.pid == pid {
			out = append(out, t.entityAtt[id])
		}
	}
	return out
}

// EntitySynopses returns the attribute synopses of all live entities.
func (t *Table) EntitySynopses() []*synopsis.Set {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*synopsis.Set, 0, len(t.rows))
	for id := range t.rows {
		out = append(out, t.entityAtt[id])
	}
	return out
}
