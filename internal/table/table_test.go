package table

import (
	"math/rand"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/datagen"
	"cinderella/internal/entity"
	"cinderella/internal/synopsis"
)

func newTestTable(w float64, b int64) *Table {
	return New(Config{Partitioner: core.NewCinderella(core.Config{Weight: w, MaxSize: b})})
}

func mkEnt(attrs ...int) *entity.Entity {
	e := &entity.Entity{}
	for _, a := range attrs {
		e.Set(a, entity.Int(int64(a)))
	}
	return e
}

func TestInsertGet(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	e := mkEnt(1, 2, 3)
	id := tbl.Insert(e)
	got, ok := tbl.Get(id)
	if !ok {
		t.Fatal("Get missed")
	}
	if !got.Equal(e) {
		t.Fatalf("Get = %v, want %v", got, e)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if _, ok := tbl.Get(999); ok {
		t.Fatal("Get(999) succeeded")
	}
}

func TestInsertAssignsDistinctIDs(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	seen := map[core.EntityID]bool{}
	for i := 0; i < 100; i++ {
		id := tbl.Insert(mkEnt(i % 7))
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestDelete(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	id := tbl.Insert(mkEnt(1, 2))
	if !tbl.Delete(id) {
		t.Fatal("Delete failed")
	}
	if tbl.Delete(id) {
		t.Fatal("double Delete succeeded")
	}
	if _, ok := tbl.Get(id); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestUpdateInPlaceRewritesContent(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	id := tbl.Insert(mkEnt(1, 2))
	tbl.Insert(mkEnt(1, 2))
	e2 := mkEnt(1, 2)
	e2.Set(1, entity.Str("updated"))
	if !tbl.Update(id, e2) {
		t.Fatal("Update failed")
	}
	got, _ := tbl.Get(id)
	if v, _ := got.Get(1); v.AsString() != "updated" {
		t.Fatalf("updated value = %v", v)
	}
	if tbl.Update(999, e2) {
		t.Fatal("Update of unknown id succeeded")
	}
}

func TestUpdateMovesAcrossPartitions(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	id := tbl.Insert(mkEnt(1, 2, 3))
	tbl.Insert(mkEnt(1, 2, 3))
	tbl.Insert(mkEnt(50, 51))
	tbl.Insert(mkEnt(50, 51))
	if tbl.NumPartitions() != 2 {
		t.Fatalf("setup: partitions = %d", tbl.NumPartitions())
	}
	if !tbl.Update(id, mkEnt(50, 51)) {
		t.Fatal("Update failed")
	}
	got, _ := tbl.Get(id)
	if !got.Synopsis().Equal(synopsis.Of(50, 51)) {
		t.Fatalf("entity after move = %v", got)
	}
	// All entities still retrievable and the moved one joined its peers.
	res := tbl.Select(50)
	if len(res) != 3 {
		t.Fatalf("Select(50) = %d results, want 3", len(res))
	}
}

func TestSelectBasic(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	tbl.Insert(mkEnt(1, 2))
	tbl.Insert(mkEnt(2, 3))
	tbl.Insert(mkEnt(7))
	res := tbl.Select(2)
	if len(res) != 2 {
		t.Fatalf("Select(2) = %d results", len(res))
	}
	// OR semantics.
	res = tbl.Select(1, 7)
	if len(res) != 2 {
		t.Fatalf("Select(1,7) = %d results", len(res))
	}
	if res := tbl.Select(99); len(res) != 0 {
		t.Fatalf("Select(99) = %d results", len(res))
	}
}

func TestSelectPrunesPartitions(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	for i := 0; i < 10; i++ {
		tbl.Insert(mkEnt(1, 2, 3))
		tbl.Insert(mkEnt(50, 51, 52))
	}
	if tbl.NumPartitions() != 2 {
		t.Fatalf("partitions = %d, want 2", tbl.NumPartitions())
	}
	_, rep := tbl.SelectWithReport(synopsis.Of(1))
	if rep.PartitionsTouched != 1 || rep.PartitionsPruned != 1 {
		t.Fatalf("report = %+v, want touch 1 prune 1", rep)
	}
	if rep.EntitiesScanned != 10 {
		t.Fatalf("scanned %d entities, want 10 (pruning failed)", rep.EntitiesScanned)
	}
	qs := tbl.QueryStats()
	if qs.Queries != 1 || qs.PartitionsPruned != 1 {
		t.Fatalf("query stats = %+v", qs)
	}
}

func TestSelectAfterDeleteKeepsPruningSound(t *testing.T) {
	tbl := newTestTable(0.9, 100)
	a := tbl.Insert(mkEnt(1, 2))
	tbl.Insert(mkEnt(1, 2, 3))
	tbl.Delete(a)
	// Attribute 1 still present via the second entity.
	if res := tbl.Select(1); len(res) != 1 {
		t.Fatalf("Select(1) = %d", len(res))
	}
}

func TestScanAll(t *testing.T) {
	tbl := newTestTable(0.5, 10)
	n := 57
	for i := 0; i < n; i++ {
		tbl.Insert(mkEnt(i%5, 5+i%3))
	}
	res := tbl.ScanAll()
	if len(res) != n {
		t.Fatalf("ScanAll = %d, want %d", len(res), n)
	}
	seen := map[core.EntityID]bool{}
	for _, r := range res {
		if seen[r.ID] {
			t.Fatalf("duplicate entity %d in scan", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestSplitsKeepRecordsIntact(t *testing.T) {
	// Small partitions force many physical splits; every record must
	// survive with content intact.
	tbl := newTestTable(0.5, 8)
	rng := rand.New(rand.NewSource(4))
	want := map[core.EntityID]*entity.Entity{}
	for i := 0; i < 400; i++ {
		e := mkEnt(rng.Intn(6), 6+rng.Intn(6), 12+rng.Intn(12))
		e.Set(30, entity.Str("payload"))
		id := tbl.Insert(e)
		want[id] = e
	}
	if tbl.Len() != 400 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for id, w := range want {
		got, ok := tbl.Get(id)
		if !ok || !got.Equal(w) {
			t.Fatalf("entity %d corrupted after splits", id)
		}
	}
	// Partition views must account exactly for all entities.
	total := 0
	for _, pv := range tbl.Partitions() {
		total += pv.Entities
	}
	if total != 400 {
		t.Fatalf("partition views sum to %d", total)
	}
}

func TestPartitionViewSynopses(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	tbl.Insert(mkEnt(1, 2))
	tbl.Insert(mkEnt(2, 3))
	pvs := tbl.Partitions()
	if len(pvs) != 1 {
		t.Fatalf("partitions = %d", len(pvs))
	}
	if !pvs[0].Synopsis.Equal(synopsis.Of(1, 2, 3)) {
		t.Fatalf("synopsis = %v", pvs[0].Synopsis)
	}
	if pvs[0].Bytes <= 0 || pvs[0].Pages <= 0 {
		t.Fatalf("view = %+v", pvs[0])
	}
	ms := tbl.MemberSynopses(pvs[0].ID)
	if len(ms) != 2 {
		t.Fatalf("member synopses = %d", len(ms))
	}
	if es := tbl.EntitySynopses(); len(es) != 2 {
		t.Fatalf("entity synopses = %d", len(es))
	}
}

func TestWorkloadBasedSynopsizer(t *testing.T) {
	queries := []*synopsis.Set{synopsis.Of(1), synopsis.Of(5)}
	wb := WorkloadBased{Queries: queries}
	// Entity with attr 1 and 9: relevant only to query 0.
	s := wb.Synopsis(mkEnt(1, 9))
	if !s.Equal(synopsis.Of(0)) {
		t.Fatalf("workload synopsis = %v, want {0}", s)
	}
	// Entities relevant to the same queries cluster even with different
	// attributes.
	tbl := New(Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 100}),
		Synopsizer:  wb,
	})
	tbl.Insert(mkEnt(1, 100)) // relevant to q0
	tbl.Insert(mkEnt(1, 200)) // relevant to q0
	tbl.Insert(mkEnt(5, 300)) // relevant to q1
	if tbl.NumPartitions() != 2 {
		t.Fatalf("workload-based partitions = %d, want 2", tbl.NumPartitions())
	}
	// Attribute pruning still works: query on attr 5 touches one
	// partition.
	_, rep := tbl.SelectWithReport(synopsis.Of(5))
	if rep.PartitionsTouched != 1 {
		t.Fatalf("workload-based pruning: %+v", rep)
	}
}

func TestBaselinePartitionersWork(t *testing.T) {
	for name, mk := range map[string]func() core.Assigner{
		"single":      func() core.Assigner { return core.NewSingle(core.SizeCount) },
		"hash":        func() core.Assigner { return core.NewHash(4, core.SizeCount) },
		"roundrobin":  func() core.Assigner { return core.NewRoundRobin(16, core.SizeCount) },
		"schemaexact": func() core.Assigner { return core.NewSchemaExact(0, core.SizeCount) },
	} {
		tbl := New(Config{Partitioner: mk()})
		ids := make([]core.EntityID, 0, 64)
		for i := 0; i < 64; i++ {
			ids = append(ids, tbl.Insert(mkEnt(i%4, 4+i%2)))
		}
		if tbl.Len() != 64 {
			t.Fatalf("%s: Len = %d", name, tbl.Len())
		}
		if res := tbl.Select(0); len(res) != 16 {
			t.Fatalf("%s: Select(0) = %d, want 16", name, len(res))
		}
		tbl.Delete(ids[0])
		if res := tbl.Select(0); len(res) != 15 {
			t.Fatalf("%s: Select(0) after delete = %d", name, len(res))
		}
	}
}

func TestDefaultsWork(t *testing.T) {
	tbl := New(Config{})
	id := tbl.Insert(mkEnt(1))
	if _, ok := tbl.Get(id); !ok {
		t.Fatal("default-config table broken")
	}
	if tbl.Dict() == nil || tbl.Stats() == nil {
		t.Fatal("default accessors nil")
	}
}

// TestIntegrationDBpediaLike loads a small irregular data set and checks
// the core paper claim end-to-end: selective queries touch far fewer
// partitions (and scan far less data) than the universal table.
func TestIntegrationDBpediaLike(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{NumEntities: 5000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	ds.Shuffle(3)

	// w = 0.2 is the paper's best balance for the DBpedia-like data.
	cind := New(Config{
		Dict:        ds.Dict,
		Partitioner: core.NewCinderella(core.Config{Weight: 0.2, MaxSize: 500}),
	})
	universal := New(Config{
		Dict:        ds.Dict,
		Partitioner: core.NewSingle(core.SizeCount),
	})
	for _, e := range ds.Entities {
		cind.Insert(e.Clone())
		universal.Insert(e.Clone())
	}
	if cind.Len() != 5000 || universal.Len() != 5000 {
		t.Fatal("load failed")
	}

	// A rare attribute: very selective query.
	rareAttr, ok := ds.Dict.Lookup("rare_50")
	if !ok {
		t.Fatal("rare attribute missing")
	}
	wantRes := universal.Select(rareAttr)
	gotRes := cind.Select(rareAttr)
	if len(gotRes) != len(wantRes) {
		t.Fatalf("result mismatch: cinderella %d vs universal %d", len(gotRes), len(wantRes))
	}

	_, repC := cind.SelectWithReport(synopsis.Of(rareAttr))
	_, repU := universal.SelectWithReport(synopsis.Of(rareAttr))
	if repU.EntitiesScanned != 5000 {
		t.Fatalf("universal scanned %d", repU.EntitiesScanned)
	}
	if repC.EntitiesScanned >= repU.EntitiesScanned/2 {
		t.Fatalf("selective query scanned %d of %d entities: pruning ineffective",
			repC.EntitiesScanned, repU.EntitiesScanned)
	}
	if repC.PartitionsPruned == 0 {
		t.Fatal("no partitions pruned")
	}
}

func BenchmarkTableInsert(b *testing.B) {
	tbl := newTestTable(0.5, 5000)
	rng := rand.New(rand.NewSource(1))
	ents := make([]*entity.Entity, 512)
	for i := range ents {
		ents[i] = mkEnt(rng.Intn(10), 10+rng.Intn(10), 20+rng.Intn(40))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(ents[i%len(ents)])
	}
}

func BenchmarkSelectSelective(b *testing.B) {
	tbl := newTestTable(0.5, 500)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		tbl.Insert(mkEnt(rng.Intn(10), 10+rng.Intn(10), 20+rng.Intn(40)))
	}
	q := synopsis.Of(25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.SelectSynopsis(q)
	}
}

func TestTableVacuum(t *testing.T) {
	tbl := newTestTable(0.5, 10000)
	var ids []core.EntityID
	for i := 0; i < 2000; i++ {
		e := mkEnt(1, 2)
		e.Set(3, entity.Str("padding padding padding padding"))
		ids = append(ids, tbl.Insert(e))
	}
	for i, id := range ids {
		if i%5 != 0 {
			tbl.Delete(id)
		}
	}
	pagesBefore := 0
	for _, pv := range tbl.Partitions() {
		pagesBefore += pv.Pages
	}
	released := tbl.Vacuum()
	if released <= 0 {
		t.Fatalf("vacuum released %d pages (before: %d)", released, pagesBefore)
	}
	// Every surviving entity still retrievable with intact content.
	n := 0
	for i, id := range ids {
		if i%5 != 0 {
			continue
		}
		n++
		got, ok := tbl.Get(id)
		if !ok || !got.Has(3) {
			t.Fatalf("entity %d broken after vacuum", id)
		}
	}
	if res := tbl.Select(1); len(res) != n {
		t.Fatalf("Select after vacuum = %d, want %d", len(res), n)
	}
}
