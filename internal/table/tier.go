package table

import (
	"fmt"
	"sort"

	"cinderella/internal/core"
	"cinderella/internal/obs"
	"cinderella/internal/storage"
)

// The table half of heat-driven tiered storage: freeze/thaw transitions
// between the hot tier (mutable heap segments) and the cold tier
// (compressed, read-only storage.ColdSegments), driven by the tiering
// manager (internal/tier) against the partition heat map.
//
// The transitions keep three invariants:
//
//   - A partition lives in exactly one tier: t.segs XOR t.cold.
//   - Everything pruning needs stays hot regardless of tier — the
//     partition attribute synopsis, the zone maps, and the per-record
//     sidecar — so SelectWhere prunes a frozen partition without
//     touching a single cold byte.
//   - Record ids survive both transitions. Freeze vacuums first (so the
//     frozen page chain is compact and tombstone-free) and remaps the
//     row index once; Thaw rebuilds the identical page chain, so the
//     row index needs no change at all.
//
// Each transition is one ordinary mutation — write lock, seqlock
// bracket, snapshot republish — so lock-free readers move between tiers
// atomically: a query captured before the freeze keeps scanning the old
// hot view, one captured after scans the cold view. Mutations reaching
// a frozen partition thaw it transparently inside seg(), which every
// write path goes through.

// TierState describes one partition's storage tier for the tiering
// manager and the /debug/tier surface.
type TierState struct {
	Partition core.PartitionID `json:"partition"`
	Frozen    bool             `json:"frozen"`
	Entities  int              `json:"entities"`
	Bytes     int64            `json:"bytes"` // live payload bytes (SIZE())
	// ResidentBytes is the tier-dependent memory footprint: raw page
	// bytes when hot, compressed block bytes when frozen.
	ResidentBytes int64 `json:"resident_bytes"`
	// RawBytes is the uncompressed page footprint in either tier.
	RawBytes int64 `json:"raw_bytes"`
	// ColdReads counts block decompressions since the freeze — the
	// manager's reheat signal. Always 0 for hot partitions.
	ColdReads int64 `json:"cold_reads"`
}

// TierStates snapshots every partition's tier, ordered by id.
func (t *Table) TierStates() []TierState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TierState, 0, len(t.segs)+len(t.cold))
	for pid, seg := range t.segs {
		out = append(out, TierState{
			Partition:     pid,
			Entities:      seg.NumRecords(),
			Bytes:         seg.LiveBytes(),
			ResidentBytes: int64(seg.NumPages()) * storage.PageSize,
			RawBytes:      int64(seg.NumPages()) * storage.PageSize,
		})
	}
	for pid, cs := range t.cold {
		out = append(out, TierState{
			Partition:     pid,
			Frozen:        true,
			Entities:      cs.NumRecords(),
			Bytes:         cs.LiveBytes(),
			ResidentBytes: cs.CompressedBytes(),
			RawBytes:      cs.RawBytes(),
			ColdReads:     cs.ColdReads(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Partition < out[j].Partition })
	return out
}

// TierCounters returns the cumulative freeze and thaw transition counts.
func (t *Table) TierCounters() (freezes, thaws int64) {
	return t.tierFreezes.Load(), t.tierThaws.Load()
}

// FrozenPartitions returns the ids of all frozen partitions, ascending.
func (t *Table) FrozenPartitions() []core.PartitionID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pids := make([]core.PartitionID, 0, len(t.cold))
	for pid := range t.cold {
		pids = append(pids, pid)
	}
	sortPIDs(pids)
	return pids
}

// FrozenImage serializes pid's cold segment to its checksummed file
// image (see storage.ColdSegment.Encode); the durable layer writes it
// under the tier manifest. Nil when pid is not frozen.
func (t *Table) FrozenImage(pid core.PartitionID) []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, ok := t.cold[pid]
	if !ok {
		return nil
	}
	return cs.Encode()
}

// FreezePartition compacts pid's segment and freezes it into the cold
// tier: the vacuumed page chain is deflate-compressed block by block
// and the hot segment is dropped (its buffer-cache pages with it),
// leaving only the compressed blocks plus the hot pruning metadata
// resident. Returns false when pid has no hot segment (unknown or
// already frozen) or holds no live records.
func (t *Table) FreezePartition(pid core.PartitionID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	seg, ok := t.segs[pid]
	if !ok || seg.NumRecords() == 0 {
		return false
	}
	t.beginMut()
	defer t.endMut()
	// Vacuum first: the frozen chain must be compact (cold bytes are
	// forever — until a thaw — so tombstones would be frozen waste), and
	// the remap below is the last time record ids change in this tier.
	remap := seg.Vacuum()
	for id, loc := range t.rows {
		if loc.pid != pid {
			continue
		}
		nid, ok := remap[loc.rid]
		if !ok {
			panic(fmt.Sprintf("table: entity %d lost during freeze of partition %d", id, pid))
		}
		t.rows[id] = rowLoc{pid: pid, rid: nid}
	}
	cs := storage.FreezeSegment(seg)
	delete(t.segs, pid)
	t.cold[pid] = cs
	t.markDirty(pid)
	t.tierFreezes.Add(1)
	t.observer().Add(obs.CTierFreezes, 1)
	return true
}

// ThawPartition rebuilds pid's hot segment from the cold tier (reheat).
// Returns false when pid is not frozen.
func (t *Table) ThawPartition(pid core.PartitionID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs, ok := t.cold[pid]
	if !ok {
		return false
	}
	t.beginMut()
	defer t.endMut()
	t.thawLocked(pid, cs)
	return true
}

// thawLocked swaps pid from the cold tier back to a hot segment. Record
// ids are preserved (Thaw rebuilds the identical page chain), so the
// row index stays untouched. Callers hold the write lock; the republish
// happens at the enclosing endMut.
func (t *Table) thawLocked(pid core.PartitionID, cs *storage.ColdSegment) *storage.Segment {
	seg := cs.Thaw()
	cs.DropFromCache()
	delete(t.cold, pid)
	t.segs[pid] = seg
	t.markDirty(pid)
	t.tierThaws.Add(1)
	t.observer().Add(obs.CTierThaws, 1)
	return seg
}
